package bayeslsh

import (
	"encoding/binary"
	"fmt"
	"os"

	"bayeslsh/internal/diskidx"
	"bayeslsh/internal/snapshot"
)

// SnapshotSection describes one section of a snapshot file, as
// InspectFile reports it.
type SnapshotSection struct {
	Tag  uint32
	Name string // "meta", "vectors", ... ; "unknown" for foreign tags
	Off  int64  // payload byte offset in the file
	Len  int64  // payload length in bytes
	CRC  uint32 // per-section CRC-32C; 0 for v1/v2 (whole-file checksum)
}

// SnapshotInfo describes a snapshot file of any version without
// building a servable index from it — the surface behind "apss info".
type SnapshotInfo struct {
	Version  int
	Size     int64
	Sections []SnapshotSection

	// Decoded metadata and corpus shape.
	Measure   Measure
	Algorithm Algorithm
	Threshold float64
	Vectors   int
	Dim       int

	// Stats holds the corpus statistics persisted by stats-bearing
	// snapshots (the planner's input); Stats.Zero() reports true for
	// files written before stats persistence.
	Stats CorpusStats
}

// sectionNames maps the shared v1/v2/v3 section tags to display names.
var sectionNames = map[uint32]string{
	sectMeta:          "meta",
	sectVectors:       "vectors",
	sectBitStore:      "bit-store",
	sectMinStore:      "minhash-store",
	sectBitTables:     "bit-tables",
	sectMinhashTables: "minhash-tables",
	sectAllPairs:      "allpairs",
	sectLive:          "live",
}

func sectionName(tag uint32) string {
	if n, ok := sectionNames[tag]; ok {
		return n
	}
	return "unknown"
}

// InspectFile reads a snapshot file's structure — version, section
// table, corpus shape, metadata — verifying its integrity (the
// whole-file checksum for v1/v2, the header and every section checksum
// for v3) without constructing a servable index. It reads any version
// this build knows; errors follow the ReadIndex taxonomy
// (ErrSnapshotFormat, ErrSnapshotVersion, ErrSnapshotChecksum).
func InspectFile(path string) (*SnapshotInfo, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	var pro [len(snapshotMagic) + 4]byte
	pf, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	_, rerr := pf.ReadAt(pro[:], 0)
	pf.Close()
	if rerr != nil || string(pro[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("%w: missing magic", ErrSnapshotFormat)
	}
	switch v := binary.LittleEndian.Uint32(pro[len(snapshotMagic):]); v {
	case SnapshotVersion, LiveSnapshotVersion:
		buf, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return inspectStream(buf, int(v), fi.Size())
	case DiskSnapshotVersion:
		return inspectDisk(path, fi.Size())
	default:
		return nil, fmt.Errorf("%w: found version %d; this build reads versions %d (ReadIndex/LoadFile), %d (ReadLiveIndex/LoadLiveFile) and %d (OpenIndexFile)",
			ErrSnapshotVersion, v, SnapshotVersion, LiveSnapshotVersion, DiskSnapshotVersion)
	}
}

// inspectStream walks a v1/v2 stream snapshot's section framing (u32
// tag, u64 length, payload) after verifying the trailing whole-file
// checksum, decoding only the metadata and the vector section's
// dim/count header.
func inspectStream(buf []byte, version int, size int64) (*SnapshotInfo, error) {
	if _, err := checksummedBody(buf); err != nil {
		return nil, err
	}
	info := &SnapshotInfo{Version: version, Size: size}
	body := buf[:len(buf)-4]
	pos := len(snapshotMagic) + 4
	for pos < len(body) {
		if len(body)-pos < 12 {
			return nil, fmt.Errorf("%w: truncated section header at offset %d", ErrSnapshotFormat, pos)
		}
		tag := binary.LittleEndian.Uint32(body[pos:])
		ln := binary.LittleEndian.Uint64(body[pos+4:])
		pos += 12
		if ln > uint64(len(body)-pos) {
			return nil, fmt.Errorf("%w: section %d declares %d bytes, %d remain", ErrSnapshotFormat, tag, ln, len(body)-pos)
		}
		payload := body[pos : pos+int(ln)]
		info.Sections = append(info.Sections, SnapshotSection{
			Tag: tag, Name: sectionName(tag), Off: int64(pos), Len: int64(ln),
		})
		switch tag {
		case sectMeta:
			meta, err := readMeta(snapshot.NewReader(payload))
			if err != nil {
				return nil, fmt.Errorf("%w: meta: %v", ErrSnapshotFormat, err)
			}
			info.Measure, info.Algorithm, info.Threshold = meta.measure, meta.opts.Algorithm, meta.opts.Threshold
			info.Stats = meta.cstats
		case sectVectors:
			// Collection header: u32 dim, u64 count; the vectors
			// themselves are not decoded.
			r := snapshot.NewReader(payload)
			dim, n := r.U32(), r.U64()
			if err := r.Err(); err != nil {
				return nil, fmt.Errorf("%w: vectors: %v", ErrSnapshotFormat, err)
			}
			info.Dim, info.Vectors = int(dim), int(n)
		}
		pos += int(ln)
	}
	return info, nil
}

// inspectDisk reports a v3 container's section directory, verifying
// every section checksum, and decodes the metadata and flat-corpus
// header.
func inspectDisk(path string, size int64) (*SnapshotInfo, error) {
	f, err := diskidx.Open(path)
	if err != nil {
		return nil, mapDiskOpenErr(err)
	}
	defer f.Close()
	info := &SnapshotInfo{Version: DiskSnapshotVersion, Size: size}
	for _, s := range f.Sections() {
		info.Sections = append(info.Sections, SnapshotSection{
			Tag: s.Tag, Name: sectionName(s.Tag), Off: s.Off, Len: s.Len, CRC: s.CRC,
		})
		l, _ := f.Section(s.Tag)
		b, err := l.Bytes()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrSnapshotChecksum, err)
		}
		switch s.Tag {
		case sectMeta:
			meta, err := readMeta(snapshot.NewReader(b))
			if err != nil {
				return nil, fmt.Errorf("%w: meta: %v", ErrSnapshotFormat, err)
			}
			info.Measure, info.Algorithm, info.Threshold = meta.measure, meta.opts.Algorithm, meta.opts.Threshold
			info.Stats = meta.cstats
		case sectVectors:
			// Flat-collection header: u32 dim, u32 pad, u64 count.
			r := snapshot.NewReader(b)
			dim, _, n := r.U32(), r.U32(), r.U64()
			if err := r.Err(); err != nil {
				return nil, fmt.Errorf("%w: vectors: %v", ErrSnapshotFormat, err)
			}
			info.Dim, info.Vectors = int(dim), int(n)
		}
	}
	return info, nil
}
