package bayeslsh

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"bayeslsh/internal/vector"
)

// liveScript drives a LiveIndex and, in parallel, the model of the
// equivalent corpus: live external ids and their raw vectors, in
// ingestion order with deletions removed.
type liveScript struct {
	t    *testing.T
	li   *LiveIndex
	ids  []int
	vecs []vector.Vector
}

func (s *liveScript) add(v Vec) int {
	s.t.Helper()
	id, err := s.li.Add(v)
	if err != nil {
		s.t.Fatalf("Add: %v", err)
	}
	s.ids = append(s.ids, id)
	s.vecs = append(s.vecs, v.v)
	return id
}

func (s *liveScript) del(id int) {
	s.t.Helper()
	if !s.li.Delete(id) {
		s.t.Fatalf("Delete(%d) reported absent", id)
	}
	for i, x := range s.ids {
		if x == id {
			s.ids = append(s.ids[:i], s.ids[i+1:]...)
			s.vecs = append(s.vecs[:i:i], s.vecs[i+1:]...)
			return
		}
	}
	s.t.Fatalf("Delete(%d): not in model", id)
}

// coldEquivalent builds the cold Index the determinism contract
// compares against: same config and options over the equivalent
// corpus (the model's vectors, same declared Dim).
func (s *liveScript) coldEquivalent(dim int, m Measure, cfg EngineConfig, opts Options) *Index {
	s.t.Helper()
	ds := &Dataset{c: &vector.Collection{Dim: dim, Vecs: s.vecs}}
	ix, err := NewIndex(ds, m, cfg, opts)
	if err != nil {
		s.t.Fatalf("cold equivalent: %v", err)
	}
	return ix
}

// checkEquivalent asserts that the live index answers Query, TopK and
// QueryBatch bit-identically (modulo the external-id map) to the cold
// index over the equivalent corpus, for every supplied query.
func (s *liveScript) checkEquivalent(cold *Index, queries []Vec, label string) {
	s.t.Helper()
	batchLive, err := s.li.QueryBatch(queries, QueryOptions{})
	if err != nil {
		s.t.Fatalf("%s: live QueryBatch: %v", label, err)
	}
	batchCold, err := cold.QueryBatch(queries, QueryOptions{})
	if err != nil {
		s.t.Fatalf("%s: cold QueryBatch: %v", label, err)
	}
	for qi, q := range queries {
		lm, err := s.li.Query(q, QueryOptions{})
		if err != nil {
			s.t.Fatalf("%s: live Query %d: %v", label, qi, err)
		}
		cm, err := cold.Query(q, QueryOptions{})
		if err != nil {
			s.t.Fatalf("%s: cold Query %d: %v", label, qi, err)
		}
		s.compareMatches(lm, cm, fmt.Sprintf("%s: Query %d", label, qi))
		s.compareMatches(batchLive[qi], batchCold[qi], fmt.Sprintf("%s: QueryBatch %d", label, qi))

		lt, err := s.li.TopK(q, 5)
		if err != nil {
			s.t.Fatalf("%s: live TopK %d: %v", label, qi, err)
		}
		ct, err := cold.TopK(q, 5)
		if err != nil {
			s.t.Fatalf("%s: cold TopK %d: %v", label, qi, err)
		}
		s.compareMatches(lt, ct, fmt.Sprintf("%s: TopK %d", label, qi))
	}
}

// compareMatches compares live matches (external ids) to cold matches
// (compact ids) through the model's id map, demanding exact float
// equality — both sides run the same query code over identical
// signature content.
func (s *liveScript) compareMatches(livem, coldm []Match, label string) {
	s.t.Helper()
	if len(livem) != len(coldm) {
		s.t.Fatalf("%s: live %d matches, cold %d\nlive: %v\ncold: %v", label, len(livem), len(coldm), livem, coldm)
	}
	for i := range coldm {
		wantID := s.ids[coldm[i].ID]
		if livem[i].ID != wantID || livem[i].Sim != coldm[i].Sim {
			s.t.Fatalf("%s: match %d = {%d, %v}, want {%d (compact %d), %v}",
				label, i, livem[i].ID, livem[i].Sim, wantID, coldm[i].ID, coldm[i].Sim)
		}
	}
}

// liveQueries assembles the probe set: every live vector (self
// queries), a few deleted vectors' raw forms (must still answer), and
// an out-of-corpus blend.
func (s *liveScript) liveQueries(deleted []Vec) []Vec {
	qs := make([]Vec, 0, len(s.vecs)+len(deleted))
	for _, v := range s.vecs {
		qs = append(qs, Vec{v: v})
	}
	return append(qs, deleted...)
}

// TestLiveEquivalence is the live-index determinism guarantee: for
// every measure and query-serving pipeline, after an interleaving of
// Add, Delete and merges, every query entry point answers
// bit-identically to a cold Index built over the equivalent corpus.
func TestLiveEquivalence(t *testing.T) {
	const seedN, poolN = 100, 160
	for _, tc := range queryTestConfigs() {
		tc := tc
		t.Run(tc.measure.String(), func(t *testing.T) {
			pool := tc.prep(smallDataset(t, poolN))
			for _, alg := range queryAlgorithms() {
				opts := Options{Algorithm: alg, Threshold: tc.threshold}
				seed := &Dataset{c: &vector.Collection{Dim: pool.Dim(), Vecs: pool.c.Vecs[:seedN]}}
				li, err := NewLiveIndex(seed, tc.measure, tc.cfg, opts, LiveConfig{MaxDelta: -1, MaxRatio: -1})
				if err != nil {
					t.Fatalf("%v: %v", alg, err)
				}
				s := &liveScript{t: t, li: li}
				for i := 0; i < seedN; i++ {
					s.ids = append(s.ids, i)
					s.vecs = append(s.vecs, seed.c.Vecs[i])
				}

				// Phase 1: ingest + delete, no merge (delta-heavy state).
				var deleted []Vec
				for i := seedN; i < seedN+30; i++ {
					s.add(pool.Vector(i))
				}
				// External ids equal pool rows here: seeds are rows
				// 0..seedN-1 and adds follow in pool order.
				for _, id := range []int{3, 17, 42, 99, seedN + 5, seedN + 29} {
					deleted = append(deleted, Vec{v: pool.c.Vecs[id]})
					s.del(id)
				}
				cold := s.coldEquivalent(pool.Dim(), tc.measure, tc.cfg, opts)
				s.checkEquivalent(cold, s.liveQueries(deleted), fmt.Sprintf("%v/pre-merge", alg))

				// Phase 2: merge, then mutate on top of the merged base.
				li.Compact()
				if got := li.Stats(); got.Delta != 0 || got.Dead != 0 {
					t.Fatalf("%v: after Compact: %+v, want empty delta and no dead", alg, got)
				}
				for i := seedN + 30; i < poolN; i++ {
					s.add(pool.Vector(i))
				}
				s.del(57)         // a base vector from the original seed
				s.del(seedN + 40) // a post-merge delta vector
				deleted = append(deleted,
					Vec{v: pool.c.Vecs[57]}, Vec{v: pool.c.Vecs[seedN+40]})
				cold = s.coldEquivalent(pool.Dim(), tc.measure, tc.cfg, opts)
				s.checkEquivalent(cold, s.liveQueries(deleted), fmt.Sprintf("%v/post-merge", alg))
				li.Close()
			}
		})
	}
}

// TestLiveVariants covers the option-dependent live paths the main
// matrix skips: multi-probe banding and 1-bit minhash verification.
func TestLiveVariants(t *testing.T) {
	cases := []struct {
		name    string
		measure Measure
		cfg     EngineConfig
		opts    Options
		prep    func(*Dataset) *Dataset
	}{
		{"multiprobe", Cosine, EngineConfig{Seed: 7, SignatureBits: 1024},
			Options{Algorithm: LSHBayesLSH, Threshold: 0.7, MultiProbe: true},
			func(d *Dataset) *Dataset { return d.TfIdf().Normalize() }},
		{"onebit", Jaccard, EngineConfig{Seed: 8},
			Options{Algorithm: LSHBayesLSHLite, Threshold: 0.4, OneBitMinhash: true},
			func(d *Dataset) *Dataset { return d.Binarize() }},
	}
	const seedN, poolN = 100, 140
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			pool := c.prep(smallDataset(t, poolN))
			seed := &Dataset{c: &vector.Collection{Dim: pool.Dim(), Vecs: pool.c.Vecs[:seedN]}}
			li, err := NewLiveIndex(seed, c.measure, c.cfg, c.opts, LiveConfig{MaxDelta: -1, MaxRatio: -1})
			if err != nil {
				t.Fatal(err)
			}
			defer li.Close()
			s := &liveScript{t: t, li: li}
			for i := 0; i < seedN; i++ {
				s.ids = append(s.ids, i)
				s.vecs = append(s.vecs, seed.c.Vecs[i])
			}
			for i := seedN; i < poolN; i++ {
				s.add(pool.Vector(i))
			}
			s.del(11)
			s.del(seedN + 7)
			cold := s.coldEquivalent(pool.Dim(), c.measure, c.cfg, c.opts)
			s.checkEquivalent(cold, s.liveQueries(nil), "pre-merge")
			li.Compact()
			cold = s.coldEquivalent(pool.Dim(), c.measure, c.cfg, c.opts)
			s.checkEquivalent(cold, s.liveQueries(nil), "post-merge")
		})
	}
}

// TestLiveAutoMerge exercises the policy-triggered background merge:
// with a tiny MaxDelta every few adds schedule a merge, and after
// quiescing the index answers exactly like a cold build.
func TestLiveAutoMerge(t *testing.T) {
	const seedN, poolN = 80, 160
	pool := smallDataset(t, poolN).TfIdf().Normalize()
	seed := &Dataset{c: &vector.Collection{Dim: pool.Dim(), Vecs: pool.c.Vecs[:seedN]}}
	opts := Options{Algorithm: LSHBayesLSH, Threshold: 0.7}
	cfg := EngineConfig{Seed: 7, SignatureBits: 1024}
	li, err := NewLiveIndex(seed, Cosine, cfg, opts, LiveConfig{MaxDelta: 8, MaxRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer li.Close()
	s := &liveScript{t: t, li: li}
	for i := 0; i < seedN; i++ {
		s.ids = append(s.ids, i)
		s.vecs = append(s.vecs, seed.c.Vecs[i])
	}
	for i := seedN; i < poolN; i++ {
		s.add(pool.Vector(i))
		if i%13 == 0 {
			s.del(s.ids[len(s.ids)/2])
		}
	}
	li.Compact() // quiesce: every scheduled merge has run
	if st := li.Stats(); st.Merges == 0 {
		t.Fatalf("policy MaxDelta=8 never triggered a merge: %+v", st)
	}
	cold := s.coldEquivalent(pool.Dim(), Cosine, cfg, opts)
	s.checkEquivalent(cold, s.liveQueries(nil), "auto-merge")
}

// TestLiveConcurrent hammers a live index with concurrent queries
// while the main goroutine adds, deletes and merges — the -race
// acceptance criterion. Queries must never error or return a
// tombstoned id; the final state must be cold-equivalent.
func TestLiveConcurrent(t *testing.T) {
	const seedN, poolN = 80, 200
	pool := smallDataset(t, poolN).TfIdf().Normalize()
	seed := &Dataset{c: &vector.Collection{Dim: pool.Dim(), Vecs: pool.c.Vecs[:seedN]}}
	opts := Options{Algorithm: LSHBayesLSH, Threshold: 0.7}
	cfg := EngineConfig{Seed: 7, SignatureBits: 1024, Parallelism: 2}
	li, err := NewLiveIndex(seed, Cosine, cfg, opts, LiveConfig{MaxDelta: 16, MaxRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	s := &liveScript{t: t, li: li}
	for i := 0; i < seedN; i++ {
		s.ids = append(s.ids, i)
		s.vecs = append(s.vecs, seed.c.Vecs[i])
	}

	stopq := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopq:
					return
				default:
				}
				q := pool.Vector((g*31 + i) % poolN)
				if _, err := li.Query(q, QueryOptions{}); err != nil {
					t.Errorf("concurrent Query: %v", err)
					return
				}
				if _, err := li.TopK(q, 3); err != nil {
					t.Errorf("concurrent TopK: %v", err)
					return
				}
			}
		}(g)
	}
	for i := seedN; i < poolN; i++ {
		s.add(pool.Vector(i))
		if i%9 == 0 {
			s.del(s.ids[(i*7)%len(s.ids)])
		}
		if i%17 == 0 {
			// Race the runtime knobs against queries and merges too.
			li.SetRuntime(1+i%3, 0)
		}
		if i%50 == 0 {
			li.Compact()
		}
	}
	close(stopq)
	wg.Wait()
	li.Compact()
	li.Close()

	cold := s.coldEquivalent(pool.Dim(), Cosine, cfg, opts)
	s.checkEquivalent(cold, s.liveQueries(nil), "post-concurrency")
}

// TestLiveDegenerate drives the mutation surface with degenerate
// inputs: typed errors, never panics, well-defined no-ops.
func TestLiveDegenerate(t *testing.T) {
	ds := smallDataset(t, 60).TfIdf().Normalize()
	li, err := NewLiveIndex(ds, Cosine, EngineConfig{Seed: 5, SignatureBits: 512},
		Options{Algorithm: LSH, Threshold: 0.7}, LiveConfig{})
	if err != nil {
		t.Fatal(err)
	}

	// Out-of-range feature: rejected with the typed error, nothing
	// ingested.
	if _, err := li.Add(NewVec(map[uint32]float64{uint32(ds.Dim()): 1})); !errors.Is(err, ErrVecOutOfRange) {
		t.Fatalf("Add(out-of-range) = %v, want ErrVecOutOfRange", err)
	}
	if li.Stats().Delta != 0 {
		t.Fatal("rejected Add left a delta entry")
	}

	// Empty vector: a legal corpus member, invisible to queries.
	id, err := li.Add(NewVec(nil))
	if err != nil {
		t.Fatalf("Add(empty): %v", err)
	}
	if ms, err := li.Query(ds.Vector(0), QueryOptions{}); err != nil {
		t.Fatal(err)
	} else {
		for _, m := range ms {
			if m.ID == id {
				t.Fatal("empty vector matched a query")
			}
		}
	}

	// An AllPairs cosine index applies the offline build's input
	// validation at ingest, so merges cannot fail on a served vector.
	ap, err := NewLiveIndex(ds, Cosine, EngineConfig{Seed: 5, SignatureBits: 512},
		Options{Algorithm: AllPairs, Threshold: 0.7}, LiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ap.Add(NewVec(map[uint32]float64{1: 2, 2: 3})); !errors.Is(err, ErrVecNotNormalized) {
		t.Fatalf("Add(unnormalized) into AllPairs index = %v, want ErrVecNotNormalized", err)
	}
	if _, err := ap.Add(ds.Vector(2)); err != nil {
		t.Fatalf("Add(normalized) into AllPairs index: %v", err)
	}
	if err := ap.Compact(); err != nil {
		t.Fatalf("Compact after valid ingest: %v", err)
	}
	if st := ap.Stats(); st.LastMergeErr != nil {
		t.Fatalf("LastMergeErr after clean merge: %v", st.LastMergeErr)
	}
	ap.Close()

	// Delete: unknown, repeated and out-of-range ids report absent.
	if li.Delete(-1) || li.Delete(1<<30) {
		t.Fatal("Delete of never-issued id reported present")
	}
	if !li.Delete(id) {
		t.Fatal("Delete of live id reported absent")
	}
	if li.Delete(id) {
		t.Fatal("double Delete reported present")
	}

	// TopK beyond the corpus size is clamped, not an error.
	if ms, err := li.TopK(ds.Vector(0), 10*ds.Len()); err != nil || len(ms) > ds.Len() {
		t.Fatalf("TopK(k>Len) = %d matches, err %v", len(ms), err)
	}
	// Empty batch: empty result, no error.
	if out, err := li.QueryBatch(nil, QueryOptions{}); err != nil || len(out) != 0 {
		t.Fatalf("QueryBatch(nil) = %v, %v", out, err)
	}

	// Close: mutations refused, queries still served.
	li.Close()
	li.Close() // idempotent
	if _, err := li.Add(ds.Vector(1)); !errors.Is(err, ErrLiveClosed) {
		t.Fatalf("Add after Close = %v, want ErrLiveClosed", err)
	}
	if li.Delete(0) {
		t.Fatal("Delete after Close reported present")
	}
	if _, err := li.Query(ds.Vector(0), QueryOptions{}); err != nil {
		t.Fatalf("Query after Close: %v", err)
	}
}

// TestLiveDeleteAll deletes every vector: queries must return empty
// results (there is no cold equivalent to compare — an empty corpus
// has no index), merges must cope, and ingest must resume cleanly.
func TestLiveDeleteAll(t *testing.T) {
	ds := smallDataset(t, 20).Binarize()
	li, err := NewLiveIndex(ds, Jaccard, EngineConfig{Seed: 8},
		Options{Algorithm: LSHBayesLSH, Threshold: 0.4}, LiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer li.Close()
	for i := 0; i < 20; i++ {
		if !li.Delete(i) {
			t.Fatalf("Delete(%d) reported absent", i)
		}
	}
	if got := li.Len(); got != 0 {
		t.Fatalf("Len after delete-all = %d", got)
	}
	if ms, err := li.Query(ds.Vector(3), QueryOptions{}); err != nil || len(ms) != 0 {
		t.Fatalf("Query over empty corpus = %v, %v", ms, err)
	}
	li.Compact() // must not rebuild over an empty corpus, must not hang
	if id, err := li.Add(ds.Vector(3)); err != nil || id != 20 {
		t.Fatalf("Add after delete-all = %d, %v (want id 20)", id, err)
	}
	ms, err := li.Query(ds.Vector(3), QueryOptions{})
	if err != nil || len(ms) != 1 || ms[0].ID != 20 || ms[0].Sim != 1 {
		t.Fatalf("Query after resume = %v, %v, want the re-added vector", ms, err)
	}
}
