package bayeslsh

import (
	"errors"
	"testing"
)

// TestDegenerateDatasets covers the typed errors of construction over
// nothing: nil and zero-length datasets must fail with
// ErrEmptyDataset from every entry point, never panic.
func TestDegenerateDatasets(t *testing.T) {
	cases := []struct {
		name string
		ds   *Dataset
	}{
		{"nil", nil},
		{"zero-length", NewDataset(10)},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if _, err := NewEngine(c.ds, Cosine, EngineConfig{Seed: 1}); !errors.Is(err, ErrEmptyDataset) {
				t.Fatalf("NewEngine: %v, want ErrEmptyDataset", err)
			}
			if _, err := NewIndex(c.ds, Cosine, EngineConfig{Seed: 1},
				Options{Algorithm: LSH, Threshold: 0.7}); !errors.Is(err, ErrEmptyDataset) {
				t.Fatalf("NewIndex: %v, want ErrEmptyDataset", err)
			}
		})
	}
}

// TestDegenerateQueries drives every public query entry point with
// empty and degenerate inputs across the candidate sources: empty
// results where that is the semantics, typed errors otherwise, and
// never a panic.
func TestDegenerateQueries(t *testing.T) {
	ds := smallDataset(t, 100).TfIdf().Normalize()
	for _, alg := range []Algorithm{BruteForce, AllPairs, LSH, LSHBayesLSH, AllPairsBayesLSHLite} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			ix, err := NewIndex(ds, Cosine, EngineConfig{Seed: 5, SignatureBits: 512},
				Options{Algorithm: alg, Threshold: 0.7})
			if err != nil {
				t.Fatal(err)
			}
			empties := []struct {
				name string
				q    Vec
			}{
				{"NewVec(nil)", NewVec(nil)},
				{"NewVec(empty map)", NewVec(map[uint32]float64{})},
				{"NewVec(zero weights)", NewVec(map[uint32]float64{3: 0})},
				{"NewSetVec(nil)", NewSetVec(nil)},
				{"zero Vec", Vec{}},
			}
			for _, e := range empties {
				if e.q.Len() != 0 {
					t.Fatalf("%s: Len = %d, want 0", e.name, e.q.Len())
				}
				if ms, err := ix.Query(e.q, QueryOptions{}); err != nil || len(ms) != 0 {
					t.Fatalf("%s: Query = %v, %v; want empty, nil", e.name, ms, err)
				}
				if ms, err := ix.TopK(e.q, 3); err != nil || len(ms) != 0 {
					t.Fatalf("%s: TopK = %v, %v; want empty, nil", e.name, ms, err)
				}
			}

			for _, k := range []int{0, -1, -100} {
				if _, err := ix.TopK(ds.Vector(0), k); !errors.Is(err, ErrBadK) {
					t.Fatalf("TopK(%d): %v, want ErrBadK", k, err)
				}
			}

			// A batch mixing real, empty and out-of-vocabulary queries:
			// per-slot semantics, no cross-contamination.
			oov := NewVec(map[uint32]float64{uint32(ds.Dim()) + 5: 1})
			got, err := ix.QueryBatch([]Vec{ds.Vector(0), NewVec(nil), oov}, QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 3 {
				t.Fatalf("batch returned %d results", len(got))
			}
			if len(got[0]) == 0 {
				t.Fatal("self query found nothing")
			}
			if len(got[1]) != 0 || len(got[2]) != 0 {
				t.Fatalf("empty/OOV queries matched: %v, %v", got[1], got[2])
			}

			// Zero-length batches are fine too.
			if got, err := ix.QueryBatch(nil, QueryOptions{}); err != nil || len(got) != 0 {
				t.Fatalf("nil batch: %v, %v", got, err)
			}
		})
	}
}

// TestQueryClampedInputs pins the well-defined degenerate results of
// the query surface: an empty batch returns an empty (non-nil) result
// with no error, and TopK with k at or beyond the corpus size clamps
// to "everything qualifying" — never a panic, never an error, for
// both candidate sources.
func TestQueryClampedInputs(t *testing.T) {
	ds := smallDataset(t, 80).TfIdf().Normalize()
	for _, alg := range []Algorithm{BruteForce, LSH, AllPairsBayesLSH} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			ix, err := NewIndex(ds, Cosine, EngineConfig{Seed: 5, SignatureBits: 512},
				Options{Algorithm: alg, Threshold: 0.7})
			if err != nil {
				t.Fatal(err)
			}
			batches := []struct {
				name    string
				queries []Vec
			}{
				{"nil slice", nil},
				{"empty slice", []Vec{}},
				{"all-empty queries", []Vec{{}, {}}},
			}
			for _, b := range batches {
				got, err := ix.QueryBatch(b.queries, QueryOptions{})
				if err != nil {
					t.Fatalf("QueryBatch(%s): %v", b.name, err)
				}
				if got == nil || len(got) != len(b.queries) {
					t.Fatalf("QueryBatch(%s) = %v, want %d empty result slots", b.name, got, len(b.queries))
				}
			}
			ks := []struct {
				name string
				k    int
			}{
				{"k == Len", ds.Len()},
				{"k == Len+1", ds.Len() + 1},
				{"k huge", 1 << 30},
			}
			for _, c := range ks {
				got, err := ix.TopK(ds.Vector(0), c.k)
				if err != nil {
					t.Fatalf("TopK(%s): %v", c.name, err)
				}
				if len(got) > ds.Len() {
					t.Fatalf("TopK(%s) returned %d matches over a %d-vector corpus", c.name, len(got), ds.Len())
				}
				for _, m := range got {
					if m.Sim < ix.Threshold() {
						t.Fatalf("TopK(%s) leaked sub-threshold match %+v", c.name, m)
					}
				}
			}
		})
	}
}
