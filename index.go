package bayeslsh

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"bayeslsh/internal/allpairs"
	"bayeslsh/internal/core"
	"bayeslsh/internal/lshindex"
	"bayeslsh/internal/pair"
	"bayeslsh/internal/planner"
	"bayeslsh/internal/stats"
)

// Index is a query-serving similarity index: it builds signatures,
// LSH band tables and/or the AllPairs inverted index once from a
// Dataset, then answers any number of Query, TopK and QueryBatch
// calls without recomputing the join. Build one with NewIndex or
// Engine.BuildIndex.
//
// The Options passed at build time select the candidate source and
// verification exactly as they do for Engine.Search: LSH algorithms
// keep the banded hash tables resident, AllPairs algorithms keep the
// inverted index resident, and the Bayes variants share the batch
// pipeline's verifier (pruning table, concentration cache, Jaccard
// prior). PPJoin has no query-serving form and is rejected.
//
// An Index is immutable after construction and safe for concurrent
// use: signature stores fill lazily under their own synchronization,
// band tables and the inverted index are read-only, and every
// per-candidate verification decision is a pure function of the
// query's and candidate's hash signatures. For a fixed
// EngineConfig.Seed, query results are bit-for-bit identical at any
// Parallelism and BatchSize — and consistent with Engine.Search: a
// query equal to dataset vector i returns, apart from the self-match,
// exactly the pairs involving i that the batch search finds at the
// same threshold, for every pipeline (see docs/QUERYING.md).
type Index struct {
	// eng is the engine view serving this index's queries. It is an
	// atomic pointer so SetRuntime can swap in a detached view (with
	// different runtime knobs) while queries are in flight: a query
	// loads the pointer once per engine access and every view shares
	// the same dataset and signature stores, so any interleaving is
	// valid.
	eng  atomic.Pointer[Engine]
	opts Options // resolved search options the index was built with

	// The candidate structures are interface-typed so one query path
	// serves both residencies: heap tables/index built by BuildIndex or
	// decoded from a v1/v2 snapshot, and read-only views laid over a
	// mapped v3 snapshot by OpenIndexFile.
	bits lshindex.BitsSource    // LSH tables, cosine measures
	mins lshindex.MinhashSource // LSH tables, Jaccard
	ap   allpairs.Source        // AllPairs inverted index
	vq   core.QueryVerifier     // Bayes / Lite verification

	// disk is non-nil for an index served in place from a v3 snapshot
	// (OpenIndexFile): it owns the mapping and the per-section
	// first-touch verification state. nil for heap-resident indexes.
	disk *diskState

	// prior is the fitted Jaccard Beta prior behind vq (the uniform
	// placeholder when the verifier takes none), kept so snapshots can
	// persist it and a loaded index can rebuild the identical verifier
	// without re-enumerating the candidate stream.
	prior stats.Beta

	// Query-signature depths, split by representation and use so each
	// call hashes only what it reads: banding depths feed the table
	// probes, verification depths feed the per-candidate verifier
	// (TopK skips the latter entirely). 0 means unused.
	bandBits, verifyBits int  // packed-bit depths (cosine measures)
	bandMin, verifyMin   int  // minhash depths (Jaccard)
	packOneBit           bool // queries additionally pack minhashes to 1-bit
	approxN              int  // fixed hash count of the LSHApprox estimator

	stats IndexStats

	// cstats are the planner's corpus statistics, collected at build
	// time and persisted in snapshot meta; plan records the pipeline
	// decision (with fired rules when AutoPipeline chose it).
	cstats CorpusStats
	plan   Plan
}

// IndexStats reports what building the index cost and what it holds.
type IndexStats struct {
	// BuildTime is the wall-clock cost of NewIndex/BuildIndex,
	// including signature hashing and table construction.
	BuildTime time.Duration
	// Tables and BandK describe the LSH banding plan (0 for AllPairs
	// and BruteForce sources).
	Tables, BandK int
	// PriorCandidates is the number of candidate pairs enumerated at
	// build time to fit the Jaccard Beta prior — the one build step
	// that scans the corpus like a batch search does, paid once so
	// that every query prunes with exactly the batch prior (0 when no
	// prior is needed).
	PriorCandidates int
}

// NewIndex builds a query-serving index over the dataset: a
// convenience for NewEngine followed by BuildIndex. See NewEngine for
// the dataset contract per measure.
func NewIndex(ds *Dataset, m Measure, cfg EngineConfig, opts Options) (*Index, error) {
	eng, err := NewEngine(ds, m, cfg)
	if err != nil {
		return nil, err
	}
	return eng.BuildIndex(opts)
}

// BuildIndex builds a query-serving index from the engine's cached
// hashing substrate. The engine remains usable for batch searches;
// index queries and batch searches share signature stores, so hashing
// is paid once across both. Options are resolved with the same
// defaults as Search. BuildIndex is BuildIndexContext with
// context.Background() — it cannot be canceled.
func (e *Engine) BuildIndex(opts Options) (*Index, error) {
	return e.BuildIndexContext(context.Background(), opts)
}

// BuildIndexContext is BuildIndex with cooperative cancellation:
// signature fills, candidate enumeration (the prior-fitting step of
// the Jaccard Bayes pipelines) and verifier construction all poll ctx,
// so a long build — for example a background LiveIndex merge — aborts
// promptly once ctx is done. A canceled build returns an error
// wrapping context.Canceled or context.DeadlineExceeded; for a ctx
// that is never canceled the index is bit-identical to BuildIndex's.
func (e *Engine) BuildIndexContext(ctx context.Context, opts Options) (*Index, error) {
	ix, err := e.buildIndexCtx(ctx, opts, nil)
	if err != nil {
		return nil, ctxWrap(err)
	}
	return ix, nil
}

// buildIndexCtx is the shared index-construction path. When prior is
// non-nil it is used verbatim in place of fitting one from the
// candidate stream — the merge path of a LiveIndex, which already
// maintains the corpus prior and must not pay a second enumeration
// (the snapshot loader's rewire serves the same purpose for loads).
func (e *Engine) buildIndexCtx(ctx context.Context, opts Options, prior *stats.Beta) (*Index, error) {
	o, err := opts.withDefaults(e.measure)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	// Resolve AutoPipeline before anything is built, clearing the flag
	// so downstream rebuilds over these Options — a LiveIndex merge, a
	// snapshot load — reproduce the chosen pipeline instead of
	// re-planning over a drifted corpus.
	plan := Plan{Pipeline: planner.Pipeline(o.Algorithm)}
	if o.AutoPipeline {
		o, plan = e.resolveAuto(o, true)
	}
	// The prior defaults to the uniform placeholder so every index —
	// including the non-Bayes pipelines — snapshots a valid one.
	ix := &Index{opts: o, prior: stats.Beta{Alpha: 1, Beta: 1}}
	ix.plan = plan
	ix.cstats = e.corpusPlanner().Stats()
	ix.eng.Store(e)

	// Candidate source.
	switch o.Algorithm {
	case BruteForce:
		// Exhaustive scan per query; nothing to build.
	case AllPairs, AllPairsBayesLSH, AllPairsBayesLSHLite:
		ix.ap, err = allpairs.BuildIndexMeasure(e.workInput(), toExactMeasure(e.measure), o.Threshold)
		if err != nil {
			return nil, err
		}
	case LSH, LSHApprox, LSHBayesLSH, LSHBayesLSHLite:
		k, l, err := e.lshPlan(ctx, o)
		if err != nil {
			return nil, err
		}
		ix.stats.BandK, ix.stats.Tables = k, l
		if e.measure == Jaccard {
			ix.bandMin = k * l
			ix.mins, err = lshindex.BuildMinhash(e.minSigStore().Sigs(), k, l, e.workers())
		} else {
			ix.bandBits = k * l
			ix.bits, err = lshindex.BuildBits(e.bitSigStore().Sigs(), k, l, e.workers(), o.MultiProbe)
		}
		if err != nil {
			return nil, err
		}
	case PPJoin:
		return nil, fmt.Errorf("bayeslsh: PPJoin has no query-serving index (its prefix filter is join-order dependent); use an LSH or AllPairs algorithm")
	default:
		return nil, fmt.Errorf("bayeslsh: unknown algorithm %v", o.Algorithm)
	}

	// Verification.
	switch o.Algorithm {
	case AllPairsBayesLSH, AllPairsBayesLSHLite, LSHBayesLSH, LSHBayesLSHLite:
		if prior != nil {
			ix.prior = *prior
		} else {
			var cands []pair.Pair
			if e.measure == Jaccard && !o.OneBitMinhash {
				// The Jaccard verifier's pruning table depends on the Beta
				// prior, which the batch pipeline fits from its candidate
				// stream. Reproduce that stream once at build so every
				// query shares the batch search's exact prior.
				cands, err = e.candidates(ctx, o)
				if err != nil {
					return nil, err
				}
				pair.SortPairs(cands)
				ix.stats.PriorCandidates = len(cands)
			}
			ix.prior = e.fitPrior(o, cands)
		}
		ix.vq, err = e.bayesVerifierWithPrior(ctx, o, ix.prior)
		if err != nil {
			return nil, err
		}
		if e.measure == Jaccard {
			ix.verifyMin = ix.vq.Params().MaxHashes
			ix.packOneBit = o.OneBitMinhash
		} else {
			ix.verifyBits = ix.vq.Params().MaxHashes
		}
	case LSHApprox:
		n := o.ApproxHashes
		if e.measure == Jaccard {
			if max := e.minSigStore().MaxHashes(); n > max {
				n = max
			}
			if err := e.minSigStore().EnsureAllCtx(ctx, n, e.workers()); err != nil {
				return nil, err
			}
			ix.verifyMin = n
		} else {
			if max := e.bitSigStore().MaxBits(); n > max {
				n = max
			}
			if err := e.bitSigStore().EnsureAllCtx(ctx, n, e.workers()); err != nil {
				return nil, err
			}
			ix.verifyBits = n
		}
		ix.approxN = n
	}

	ix.stats.BuildTime = time.Since(start)
	return ix, nil
}

// engine returns the engine view currently serving the index (see the
// eng field and SetRuntime).
func (ix *Index) engine() *Engine { return ix.eng.Load() }

// Measure returns the index's similarity measure.
func (ix *Index) Measure() Measure { return ix.engine().measure }

// Threshold returns the similarity threshold the index was built at —
// the floor below which candidate generation gives no recall
// guarantee, and the default threshold of Query.
func (ix *Index) Threshold() float64 { return ix.opts.Threshold }

// Options returns the resolved search options the index was built
// with.
func (ix *Index) Options() Options { return ix.opts }

// Len returns the number of indexed corpus vectors.
func (ix *Index) Len() int { return ix.engine().ds.Len() }

// Dim returns the feature-space dimensionality the index was built
// over — the exclusive upper bound on query and ingest feature
// indices.
func (ix *Index) Dim() int { return ix.engine().ds.Dim() }

// Dataset returns the indexed corpus. An index loaded from a snapshot
// carries its corpus with it, so serving processes can, for example,
// query the index with stored vectors (Dataset.Vector) without
// shipping the dataset separately.
func (ix *Index) Dataset() *Dataset { return ix.engine().ds }

// Stats returns build cost and shape statistics.
func (ix *Index) Stats() IndexStats { return ix.stats }

// CorpusStats returns the planner's corpus statistics collected when
// the index was built. They are persisted in snapshots; indexes loaded
// from snapshots written before the planner existed recompute them on
// load (heap residencies) or report the zero value (disk residencies,
// which never scan the mapped corpus eagerly).
func (ix *Index) CorpusStats() CorpusStats { return ix.cstats }

// Plan returns the index's pipeline decision: the pipeline it runs
// (always) and the greedy rules that selected it (only when
// Options.AutoPipeline made the choice; empty Rules means the caller
// configured the pipeline explicitly, or the index was loaded from a
// snapshot, which persists the chosen pipeline but not the rules).
func (ix *Index) Plan() Plan { return ix.plan }
