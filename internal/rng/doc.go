// Package rng provides small, fast, deterministic pseudo-random
// number generators used throughout the library.
//
// # Generators
//
// All randomized components (hash function families, dataset
// synthesis, prior sampling) take an explicit seed so that
// experiments are reproducible run-to-run. The generators are a
// splitmix64 stream (SplitMix64/Mix64, used for seeding and cheap
// stateless hashing), an xoshiro256** stream (Source, the general
// purpose source with uniform, Gaussian via polar Box-Muller,
// exponential, permutation and Zipf sampling), and NewZipf's
// table-based sampler for corpus synthesis.
//
// # Substream derivation
//
// Derive deterministically derives an independent sub-stream seed
// from a master seed and a sequence of identifiers (shard, item id,
// ...). Because the derived seed depends only on (seed, ids), never
// on scheduling, a computation that keys its randomness per work item
// stays deterministic for a fixed master seed under any degree of
// parallelism — the discipline every parallel stage of the engine
// follows. The engine derives each hash family's and the prior
// sampler's master seed this way (additive seed offsets would make
// engines with adjacent seeds share streams).
package rng
