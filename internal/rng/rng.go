package rng

import "math"

// SplitMix64 advances the state x and returns the next value of the
// splitmix64 sequence. It is the canonical way to derive independent
// sub-seeds from one master seed.
func SplitMix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 hashes a single 64-bit value to a well distributed 64-bit value.
// It is stateless: the same input always produces the same output.
func Mix64(x uint64) uint64 {
	return SplitMix64(&x)
}

// Derive deterministically derives an independent sub-stream seed from
// a master seed and a sequence of identifiers (shard, item id, ...).
// Because the derived seed depends only on (seed, ids), never on
// scheduling, a computation that keys its randomness per work item
// stays deterministic for a fixed master seed under any degree of
// parallelism. The engine derives each hash family's and the prior
// sampler's master seed this way (additive seed offsets would make
// engines with adjacent seeds share streams); within a family, the
// hashing substrate applies the same per-work-item discipline with
// its own key mixing (e.g. sighash's per-(feature, block) streams).
func Derive(seed uint64, ids ...uint64) uint64 {
	h := seed
	for _, id := range ids {
		h = Mix64(h ^ (id+1)*0x9e3779b97f4a7c15)
	}
	return h
}

// Source is a deterministic xoshiro256** pseudo-random generator.
// The zero value is not usable; construct with New.
type Source struct {
	s [4]uint64
	// cached second Gaussian from the polar Box-Muller transform
	gauss    float64
	hasGauss bool
}

// New returns a Source seeded from seed via splitmix64, as recommended
// by the xoshiro authors.
func New(seed uint64) *Source {
	var r Source
	r.Seed(seed)
	return &r
}

// Seed resets the generator to the stream determined by seed.
func (r *Source) Seed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = SplitMix64(&sm)
	}
	r.hasGauss = false
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value of the stream.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Uint32 returns the next 32-bit value.
func (r *Source) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	// Lemire's multiply-shift rejection method.
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, bound)
	if lo < bound {
		threshold := (-bound) % bound
		for lo < threshold {
			x = r.Uint64()
			hi, lo = mul64(x, bound)
		}
	}
	return int(hi)
}

func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	mid := t & mask
	c = t >> 32
	t = aLo*bHi + mid
	lo |= (t & mask) << 32
	hi = aHi*bHi + c + t>>32
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal sample (mean 0, stddev 1) using
// the polar Box-Muller method, matching the Gaussian projections used
// by the random-hyperplane LSH family.
func (r *Source) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.gauss = v * f
		r.hasGauss = true
		return u * f
	}
}

// ExpFloat64 returns an exponentially distributed sample with rate 1.
func (r *Source) ExpFloat64() float64 {
	return -math.Log(1 - r.Float64())
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders the first n elements using swap.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Zipf samples from a Zipf(s, v, imax) distribution over {0, ..., imax}
// using inverse-CDF on a precomputed table. It is intended for dataset
// synthesis, where the table cost is amortized over many draws.
type Zipf struct {
	cdf []float64
	r   *Source
}

// NewZipf builds a Zipf sampler over ranks {0..n-1} with exponent s > 0.
// Probability of rank i is proportional to 1/(i+1)^s.
func NewZipf(r *Source, s float64, n int) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with n <= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += math.Pow(float64(i+1), -s)
		cdf[i] = sum
	}
	inv := 1 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf, r: r}
}

// Next draws one rank.
func (z *Zipf) Next() int {
	u := z.r.Float64()
	// binary search for the first index with cdf >= u
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
