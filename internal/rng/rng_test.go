package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(123), New(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := New(124)
	same := 0
	a.Seed(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d identical values", same)
	}
}

func TestSeedResets(t *testing.T) {
	r := New(7)
	first := make([]uint64, 10)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("reseed mismatch at %d: %d vs %d", i, got, first[i])
		}
	}
}

func TestMix64Stateless(t *testing.T) {
	if Mix64(42) != Mix64(42) {
		t.Error("Mix64 not deterministic")
	}
	if Mix64(42) == Mix64(43) {
		t.Error("Mix64(42) == Mix64(43); suspicious")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestIntnRangeAndUniformity(t *testing.T) {
	r := New(2)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d, want ~%v", i, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(3)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("gaussian mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("gaussian variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(4)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		x := r.ExpFloat64()
		if x < 0 {
			t.Fatalf("negative exponential sample %v", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(5)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(6)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Errorf("shuffle changed elements: sum %d vs %d", got, sum)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(7)
	z := NewZipf(r, 1.0, 1000)
	const draws = 100000
	counts := make([]int, 1000)
	for i := 0; i < draws; i++ {
		v := z.Next()
		if v < 0 || v >= 1000 {
			t.Fatalf("zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Rank 0 must dominate rank 99 by roughly the theoretical 100x.
	if counts[0] < 20*counts[99] {
		t.Errorf("zipf skew too weak: rank0=%d rank99=%d", counts[0], counts[99])
	}
	// And the head should not be the only mass.
	tail := 0
	for _, c := range counts[100:] {
		tail += c
	}
	if tail == 0 {
		t.Error("zipf tail received no mass")
	}
}

func TestZipfPanicsOnEmptyDomain(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewZipf(n=0) did not panic")
		}
	}()
	NewZipf(New(1), 1.0, 0)
}

func TestMul64MatchesBigMultiplication(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		// Verify against math/bits-free reference via 32-bit split.
		aLo, aHi := a&0xffffffff, a>>32
		bLo, bHi := b&0xffffffff, b>>32
		t0 := aLo * bLo
		t1 := aHi*bLo + t0>>32
		t2 := aLo*bHi + t1&0xffffffff
		wantLo := t0&0xffffffff | t2<<32
		wantHi := aHi*bHi + t1>>32 + t2>>32
		return hi == wantHi && lo == wantLo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeriveDeterministicAndSensitive(t *testing.T) {
	if Derive(7, 1, 2) != Derive(7, 1, 2) {
		t.Error("Derive is not deterministic")
	}
	seen := map[uint64]bool{Derive(7): true}
	for _, ids := range [][]uint64{{0}, {1}, {2}, {0, 0}, {0, 1}, {1, 0}, {1, 1}} {
		s := Derive(7, ids...)
		if seen[s] {
			t.Errorf("Derive(7, %v) collides with an earlier derivation", ids)
		}
		seen[s] = true
	}
	if Derive(7, 3) == Derive(8, 3) {
		t.Error("Derive ignores the master seed")
	}
	// Streams from derived seeds must not be correlated lockstep.
	a, b := New(Derive(7, 0)), New(Derive(7, 1))
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same != 0 {
		t.Errorf("%d/64 identical draws from sibling streams", same)
	}
}
