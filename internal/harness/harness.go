package harness

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"bayeslsh"
)

// Config controls an experiment run.
type Config struct {
	// Seed drives all randomized components.
	Seed uint64
	// Quick trims datasets and thresholds for fast smoke runs.
	Quick bool
	// Parallelism is the worker count of the engines' sharded search
	// pipeline (see bayeslsh.EngineConfig.Parallelism): 0 selects
	// runtime.NumCPU(), 1 forces the sequential pipeline. Result sets
	// are identical either way for a fixed Seed, so figures and tables
	// can be regenerated in both modes.
	Parallelism int
	// Datasets optionally restricts the corpora (by synthetic name).
	Datasets []string
	// CellTimeout bounds one (algorithm, dataset, threshold) cell —
	// the scaled-down analogue of the paper's 50-hour per-run cap.
	// Cells that exceed it are reported as timed out, exactly as the
	// paper reports missing lines and "≥" speedups. Default 2 minutes
	// (30 s with Quick). Timed-out searches are genuinely aborted via
	// the ctx-aware search API — not abandoned to finish in the
	// background.
	CellTimeout time.Duration

	// ctx cancels the whole run (RunContext sets it); experiment
	// functions thread it into every search.
	ctx context.Context
}

// context returns the run's context, Background when Run (rather than
// RunContext) started it.
func (c Config) context() context.Context {
	if c.ctx == nil {
		return context.Background()
	}
	return c.ctx
}

func (c Config) cellTimeout() time.Duration {
	if c.CellTimeout > 0 {
		return c.CellTimeout
	}
	if c.Quick {
		return 30 * time.Second
	}
	return 2 * time.Minute
}

// Experiments lists the available experiment ids: the paper's figures
// and tables in order, then the repository's extension experiments.
func Experiments() []string {
	return []string{"fig1", "fig2", "fig3", "fig4", "fig5",
		"tab1", "tab2", "tab3", "tab4", "tab5", "ext1"}
}

// Run executes one experiment by id, writing its rows/series to w.
// It cannot be canceled; use RunContext to bound or interrupt a run.
func Run(id string, w io.Writer, cfg Config) error {
	return RunContext(context.Background(), id, w, cfg)
}

// RunContext is Run with cooperative cancellation: every search of
// every cell goes through the ctx-aware search API, so canceling ctx
// (Ctrl-C in cmd/experiments) aborts the matrix mid-cell with all
// pipeline goroutines drained, returning an error that wraps
// context.Canceled or context.DeadlineExceeded.
func RunContext(ctx context.Context, id string, w io.Writer, cfg Config) error {
	cfg.ctx = ctx
	switch id {
	case "fig1":
		return Fig1(w)
	case "fig2":
		return Fig2(w, cfg)
	case "fig3":
		return Fig3(w, cfg)
	case "fig4":
		return Fig4(w, cfg)
	case "fig5":
		return Fig5(w)
	case "tab1":
		return Tab1(w, cfg)
	case "tab2":
		return Tab2(w, cfg)
	case "tab3":
		return Tab3(w, cfg)
	case "tab4":
		return Tab4(w, cfg)
	case "tab5":
		return Tab5(w, cfg)
	case "ext1":
		return Ext1(w, cfg)
	default:
		return fmt.Errorf("harness: unknown experiment %q (have %v)", id, Experiments())
	}
}

// weightedNames and binaryNames select the corpora used for the
// weighted-cosine and binary experiments, as in the paper (binary
// experiments run on the three largest corpora).
func weightedNames(cfg Config) []string {
	if len(cfg.Datasets) > 0 {
		return cfg.Datasets
	}
	if cfg.Quick {
		return []string{"RCV1-sim", "WikiLinks-sim"}
	}
	return bayeslsh.SyntheticNames()
}

func binaryNames(cfg Config) []string {
	if len(cfg.Datasets) > 0 {
		return cfg.Datasets
	}
	if cfg.Quick {
		return []string{"RCV1-sim"}
	}
	return []string{"WikiWords500K-sim", "Orkut-sim", "Twitter-sim"}
}

// thresholds returns the paper's threshold sweep per measure.
func thresholds(m bayeslsh.Measure, quick bool) []float64 {
	var ts []float64
	if m == bayeslsh.Jaccard {
		ts = []float64{0.3, 0.4, 0.5, 0.6, 0.7}
	} else {
		ts = []float64{0.5, 0.6, 0.7, 0.8, 0.9}
	}
	if quick {
		return []float64{ts[0], ts[2], ts[4]}
	}
	return ts
}

// loadWeighted prepares a synthetic corpus for weighted cosine:
// Tf-Idf weighting plus unit normalization, as in the paper.
func loadWeighted(name string) (*bayeslsh.Dataset, error) {
	ds, err := bayeslsh.Synthetic(name)
	if err != nil {
		return nil, err
	}
	return ds.TfIdf().Normalize(), nil
}

// loadBinary prepares a synthetic corpus for the binary measures.
func loadBinary(name string) (*bayeslsh.Dataset, error) {
	ds, err := bayeslsh.Synthetic(name)
	if err != nil {
		return nil, err
	}
	return ds.Binarize(), nil
}

func load(name string, m bayeslsh.Measure) (*bayeslsh.Dataset, error) {
	if m == bayeslsh.Cosine {
		return loadWeighted(name)
	}
	return loadBinary(name)
}

// Cell is one evaluated cell of the experiment matrix.
type Cell struct {
	Dataset   string
	Measure   bayeslsh.Measure
	Algorithm bayeslsh.Algorithm
	Threshold float64
	Output    *bayeslsh.Output
	// Recall is |found ∩ truth| / |truth| against exact ground truth.
	Recall float64
	// ErrFrac is the fraction of reported similarities off by more
	// than 0.05 from the exact similarity; MeanErr the mean absolute
	// error. Both are 0 for exact pipelines.
	ErrFrac float64
	MeanErr float64
	// TimedOut marks a cell killed by Config.CellTimeout; its Output
	// holds only the timeout duration as a lower bound on the true
	// cost (the paper's "≥" entries).
	TimedOut bool
}

// matrixRunner runs cells, caching ground truth per (dataset,
// threshold) and reusing loaded datasets.
type matrixRunner struct {
	cfg     Config
	measure bayeslsh.Measure
	ds      map[string]*bayeslsh.Dataset
	truth   map[string]map[[2]int]float64 // dataset+threshold → pairs
}

func newMatrixRunner(cfg Config, m bayeslsh.Measure) *matrixRunner {
	return &matrixRunner{
		cfg:     cfg,
		measure: m,
		ds:      map[string]*bayeslsh.Dataset{},
		truth:   map[string]map[[2]int]float64{},
	}
}

func (r *matrixRunner) dataset(name string) (*bayeslsh.Dataset, error) {
	if d, ok := r.ds[name]; ok {
		return d, nil
	}
	d, err := load(name, r.measure)
	if err != nil {
		return nil, err
	}
	r.ds[name] = d
	return d, nil
}

// groundTruth computes (and caches) the exact result set via AllPairs.
func (r *matrixRunner) groundTruth(name string, t float64) (map[[2]int]float64, error) {
	key := fmt.Sprintf("%s@%g", name, t)
	if m, ok := r.truth[key]; ok {
		return m, nil
	}
	d, err := r.dataset(name)
	if err != nil {
		return nil, err
	}
	eng, err := bayeslsh.NewEngine(d, r.measure, bayeslsh.EngineConfig{Seed: r.cfg.Seed, Parallelism: r.cfg.Parallelism})
	if err != nil {
		return nil, err
	}
	out, err := eng.SearchContext(r.cfg.context(), bayeslsh.Options{Algorithm: bayeslsh.AllPairs, Threshold: t})
	if err != nil {
		return nil, err
	}
	m := resultMap(out.Results)
	r.truth[key] = m
	return m, nil
}

// runCell executes one pipeline with a fresh engine (so hashing cost
// is included in the timing, matching the paper's full execution
// times) and computes quality metrics. Cells exceeding the configured
// timeout return a Cell with TimedOut set and no output — the
// scaled-down version of the paper's 50-hour kill rule, enforced with
// context.WithTimeout so the timed-out search is actually torn down
// (it used to be abandoned to finish in the background).
func (r *matrixRunner) runCell(name string, alg bayeslsh.Algorithm, t float64, opts bayeslsh.Options) (*Cell, error) {
	d, err := r.dataset(name)
	if err != nil {
		return nil, err
	}
	eng, err := bayeslsh.NewEngine(d, r.measure, bayeslsh.EngineConfig{Seed: r.cfg.Seed, Parallelism: r.cfg.Parallelism})
	if err != nil {
		return nil, err
	}
	opts.Algorithm = alg
	opts.Threshold = t
	timeout := r.cfg.cellTimeout()
	parent := r.cfg.context()
	cellCtx, cancel := context.WithTimeout(parent, timeout)
	defer cancel()
	out, err := eng.SearchContext(cellCtx, opts)
	if err != nil {
		if parent.Err() == nil && errors.Is(err, context.DeadlineExceeded) {
			return &Cell{
				Dataset: name, Measure: r.measure, Algorithm: alg, Threshold: t,
				TimedOut: true,
				Output:   &bayeslsh.Output{Algorithm: alg, Threshold: t, Total: timeout},
			}, nil
		}
		// The run itself was canceled (or the search failed): surface
		// the error instead of mislabeling the cell as timed out.
		return nil, err
	}
	cell := &Cell{Dataset: name, Measure: r.measure, Algorithm: alg, Threshold: t, Output: out}
	truth, err := r.groundTruth(name, t)
	if err != nil {
		return nil, err
	}
	cell.Recall = recallAgainst(out.Results, truth)
	cell.ErrFrac, cell.MeanErr = estimateError(d, r.measure, out.Results)
	return cell, nil
}

func resultMap(rs []bayeslsh.Result) map[[2]int]float64 {
	m := make(map[[2]int]float64, len(rs))
	for _, r := range rs {
		a, b := r.A, r.B
		if a > b {
			a, b = b, a
		}
		m[[2]int{a, b}] = r.Sim
	}
	return m
}

func recallAgainst(rs []bayeslsh.Result, truth map[[2]int]float64) float64 {
	if len(truth) == 0 {
		return 1
	}
	got := resultMap(rs)
	hit := 0
	for k := range truth {
		if _, ok := got[k]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}

// estimateError measures the deviation of reported similarities from
// exact similarities over the output pairs.
func estimateError(d *bayeslsh.Dataset, m bayeslsh.Measure, rs []bayeslsh.Result) (errFrac, meanErr float64) {
	if len(rs) == 0 {
		return 0, 0
	}
	bad := 0
	sum := 0.0
	for _, r := range rs {
		e := math.Abs(d.Similarity(m, r.A, r.B) - r.Sim)
		sum += e
		if e > 0.05 {
			bad++
		}
	}
	return float64(bad) / float64(len(rs)), sum / float64(len(rs))
}

// fmtDur renders a duration with short fixed precision for tables.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}

// sortedKeys returns map keys in sorted order for deterministic
// output.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
