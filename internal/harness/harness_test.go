package harness

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"bayeslsh"
)

func TestExperimentsListAndUnknownID(t *testing.T) {
	ids := Experiments()
	if len(ids) != 11 {
		t.Fatalf("expected 11 experiments, got %v", ids)
	}
	if err := Run("nope", &bytes.Buffer{}, Config{}); err == nil {
		t.Error("unknown experiment id accepted")
	}
}

func TestFig1Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig1(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "0.50\t") {
		t.Errorf("unexpected fig1 output:\n%s", out)
	}
	// 19 similarity rows plus two header lines.
	if lines := strings.Count(out, "\n"); lines < 20 {
		t.Errorf("fig1 produced %d lines", lines)
	}
}

func TestFig5Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig5(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"M(m=24, n=32)", "M(m=96, n=128)", "post_uniform", "post_r^3"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig5 missing %q", want)
		}
	}
	// Posteriors converge: the printed densities at r=0.74 after
	// M(96,128) should be close across priors. Parse the last block's
	// row for r=0.74.
	blocks := strings.Split(out, "## after")
	last := blocks[len(blocks)-1]
	var p1, p2, p3 float64
	found := false
	for _, line := range strings.Split(last, "\n") {
		fields := strings.Fields(line)
		if len(fields) != 4 || fields[0] != "0.74" {
			continue
		}
		var err error
		if p1, err = strconv.ParseFloat(fields[1], 64); err != nil {
			continue
		}
		if p2, err = strconv.ParseFloat(fields[2], 64); err != nil {
			continue
		}
		if p3, err = strconv.ParseFloat(fields[3], 64); err != nil {
			continue
		}
		found = true
		break
	}
	if !found {
		t.Fatal("fig5 row for r=0.74 not found")
	}
	if rel := (max3(p1, p2, p3) - min3(p1, p2, p3)) / max3(p1, p2, p3); rel > 0.35 {
		t.Errorf("posteriors at mode differ by %v after 128 hashes", rel)
	}
}

func max3(a, b, c float64) float64 {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}

func min3(a, b, c float64) float64 {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func TestTab1ListsAllDatasets(t *testing.T) {
	var buf bytes.Buffer
	if err := Tab1(&buf, Config{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range bayeslsh.SyntheticNames() {
		if !strings.Contains(out, name) {
			t.Errorf("tab1 missing dataset %s", name)
		}
	}
}

func TestThresholdsPerMeasure(t *testing.T) {
	if ts := thresholds(bayeslsh.Jaccard, false); ts[0] != 0.3 || ts[len(ts)-1] != 0.7 {
		t.Errorf("jaccard thresholds %v", ts)
	}
	if ts := thresholds(bayeslsh.Cosine, false); ts[0] != 0.5 || ts[len(ts)-1] != 0.9 {
		t.Errorf("cosine thresholds %v", ts)
	}
	if ts := thresholds(bayeslsh.Cosine, true); len(ts) != 3 {
		t.Errorf("quick thresholds %v", ts)
	}
}

func TestQuickExperimentsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full (quick-mode) experiment pipelines")
	}
	cfg := Config{Seed: 3, Quick: true, Datasets: []string{"RCV1-sim"}}
	for _, id := range []string{"fig4", "tab3", "tab4", "ext1"} {
		id := id
		t.Run(id, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Run(id, &buf, cfg); err != nil {
				t.Fatal(err)
			}
			if buf.Len() == 0 {
				t.Fatal("experiment produced no output")
			}
			out := buf.String()
			if strings.Contains(out, "NaN") {
				t.Errorf("output contains NaN:\n%s", out)
			}
		})
	}
}

func TestMatrixRunnerQuickCell(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full pipeline cell")
	}
	cfg := Config{Seed: 1, Quick: true, Datasets: []string{"RCV1-sim"}}
	r := newMatrixRunner(cfg, bayeslsh.Cosine)
	cell, err := r.runCell("RCV1-sim", bayeslsh.AllPairsBayesLSHLite, 0.7, bayeslsh.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cell.Recall < 0.9 {
		t.Errorf("cell recall %v", cell.Recall)
	}
	if cell.Output.Candidates == 0 {
		t.Error("no candidates recorded")
	}
	// Lite reports exact similarities: error metrics must be zero.
	if cell.ErrFrac != 0 || cell.MeanErr > 1e-12 {
		t.Errorf("Lite cell has estimate errors: %v %v", cell.ErrFrac, cell.MeanErr)
	}
	// Ground truth is cached: a second call must not recompute.
	before := len(r.truth)
	if _, err := r.groundTruth("RCV1-sim", 0.7); err != nil {
		t.Fatal(err)
	}
	if len(r.truth) != before {
		t.Error("ground truth not cached")
	}
}
