package harness

import (
	"fmt"
	"io"
	"math"
	"sync"

	"bayeslsh"
	"bayeslsh/internal/stats"
)

// Fig1 regenerates Figure 1: the number of hashes the classical
// maximum-likelihood estimator needs for a δ=γ=0.05 accuracy
// guarantee, as a function of the true similarity. The paper's
// headline: ~350 hashes at s=0.5 versus ~16 at s=0.95.
func Fig1(w io.Writer) error {
	fmt.Fprintln(w, "# Figure 1: hashes required vs similarity (delta=gamma=0.05)")
	fmt.Fprintln(w, "similarity\thashes")
	for s := 0.05; s < 1.0; s += 0.05 {
		n := stats.HashesNeeded(s, 0.05, 0.05, 1, 4096)
		fmt.Fprintf(w, "%.2f\t%d\n", s, n)
	}
	return nil
}

// Fig2 regenerates Figure 2: the running time of LSH+BayesLSH on
// WikiWords100K (t=0.7, cosine) while varying γ, δ, ε one at a time
// over {0.01, 0.03, 0.05, 0.07, 0.09} with the others fixed at 0.05,
// plus the LSH and LSH Approx reference times.
func Fig2(w io.Writer, cfg Config) error {
	const name = "WikiWords100K-sim"
	const t = 0.7
	r := newMatrixRunner(cfg, bayeslsh.Cosine)
	values := []float64{0.01, 0.03, 0.05, 0.07, 0.09}
	if cfg.Quick {
		values = []float64{0.01, 0.05, 0.09}
	}

	fmt.Fprintf(w, "# Figure 2: LSH+BayesLSH runtime vs gamma/delta/epsilon (%s, t=%.1f)\n", name, t)
	fmt.Fprintln(w, "param\tvalue\ttotal_time")
	for _, param := range []string{"gamma", "delta", "epsilon"} {
		for _, v := range values {
			// FalseNegativeRate is pinned so the ε sweep varies only
			// BayesLSH's recall parameter, not LSH candidate generation.
			opts := bayeslsh.Options{Epsilon: 0.05, Delta: 0.05, Gamma: 0.05, FalseNegativeRate: 0.05}
			switch param {
			case "gamma":
				opts.Gamma = v
			case "delta":
				opts.Delta = v
			case "epsilon":
				opts.Epsilon = v
			}
			cell, err := r.runCell(name, bayeslsh.LSHBayesLSH, t, opts)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%s\t%.2f\t%s\n", param, v, fmtDur(cell.Output.Total))
		}
	}
	for _, alg := range []bayeslsh.Algorithm{bayeslsh.LSH, bayeslsh.LSHApprox} {
		cell, err := r.runCell(name, alg, t, bayeslsh.Options{})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "reference\t%v\t%s\n", alg, fmtDur(cell.Output.Total))
	}
	return nil
}

// fig3Measures lists the sub-figure groups of Figure 3: weighted
// cosine on all six corpora (a–f), then Jaccard (g–i) and binary
// cosine (j–l) on the three largest.
func fig3Measures(cfg Config) []struct {
	label    string
	measure  bayeslsh.Measure
	datasets []string
} {
	return []struct {
		label    string
		measure  bayeslsh.Measure
		datasets []string
	}{
		{"3(a-f) Tf-Idf Cosine", bayeslsh.Cosine, weightedNames(cfg)},
		{"3(g-i) Binary Jaccard", bayeslsh.Jaccard, binaryNames(cfg)},
		{"3(j-l) Binary Cosine", bayeslsh.BinaryCosine, binaryNames(cfg)},
	}
}

// Fig3 regenerates Figure 3: full-execution-time comparisons of all
// applicable pipelines across datasets and thresholds, for weighted
// cosine, Jaccard and binary cosine.
func Fig3(w io.Writer, cfg Config) error {
	_, err := fig3Cells(w, cfg)
	return err
}

// fig3Memo caches the evaluated Figure 3 matrix per configuration so
// that Table 2 (which aggregates the same cells) does not re-run it
// when both are requested in one invocation.
var fig3Memo sync.Map

func fig3MemoKey(cfg Config) string {
	return fmt.Sprintf("%d|%v|%v", cfg.Seed, cfg.Quick, cfg.Datasets)
}

// fig3Cells runs (or recalls) the Figure 3 matrix, printing as it
// goes, and returns the cells for reuse by Table 2.
func fig3Cells(w io.Writer, cfg Config) ([]*Cell, error) {
	if cached, ok := fig3Memo.Load(fig3MemoKey(cfg)); ok {
		cells := cached.([]*Cell)
		printFig3(w, cfg, cells)
		return cells, nil
	}
	cells, err := runFig3(w, cfg)
	if err != nil {
		return nil, err
	}
	fig3Memo.Store(fig3MemoKey(cfg), cells)
	return cells, nil
}

// printFig3 re-renders previously evaluated cells.
func printFig3(w io.Writer, cfg Config, cells []*Cell) {
	type key struct {
		m    bayeslsh.Measure
		name string
		alg  bayeslsh.Algorithm
		t    float64
	}
	byKey := make(map[key]*Cell, len(cells))
	for _, c := range cells {
		byKey[key{c.Measure, c.Dataset, c.Algorithm, c.Threshold}] = c
	}
	for _, group := range fig3Measures(cfg) {
		fmt.Fprintf(w, "# Figure %s: total time (seconds) per algorithm and threshold\n", group.label)
		ths := thresholds(group.measure, cfg.Quick)
		for _, name := range group.datasets {
			fmt.Fprintf(w, "## %s\n", name)
			fmt.Fprint(w, "algorithm")
			for _, t := range ths {
				fmt.Fprintf(w, "\tt=%.1f", t)
			}
			fmt.Fprintln(w)
			for _, alg := range bayeslsh.Algorithms(group.measure) {
				fmt.Fprintf(w, "%v", alg)
				for _, t := range ths {
					c := byKey[key{group.measure, name, alg, t}]
					switch {
					case c == nil:
						fmt.Fprint(w, "\t-")
					case c.TimedOut:
						fmt.Fprintf(w, "\t>=%.0f", c.Output.Total.Seconds())
					default:
						fmt.Fprintf(w, "\t%.3f", c.Output.Total.Seconds())
					}
				}
				fmt.Fprintln(w)
			}
		}
	}
}

// runFig3 evaluates the Figure 3 matrix from scratch.
func runFig3(w io.Writer, cfg Config) ([]*Cell, error) {
	var all []*Cell
	for _, group := range fig3Measures(cfg) {
		fmt.Fprintf(w, "# Figure %s: total time (seconds) per algorithm and threshold\n", group.label)
		r := newMatrixRunner(cfg, group.measure)
		for _, name := range group.datasets {
			fmt.Fprintf(w, "## %s\n", name)
			fmt.Fprint(w, "algorithm")
			ths := thresholds(group.measure, cfg.Quick)
			for _, t := range ths {
				fmt.Fprintf(w, "\tt=%.1f", t)
			}
			fmt.Fprintln(w)
			for _, alg := range bayeslsh.Algorithms(group.measure) {
				fmt.Fprintf(w, "%v", alg)
				for _, t := range ths {
					cell, err := r.runCell(name, alg, t, bayeslsh.Options{})
					if err != nil {
						return nil, err
					}
					all = append(all, cell)
					if cell.TimedOut {
						fmt.Fprintf(w, "\t>=%.0f", cell.Output.Total.Seconds())
					} else {
						fmt.Fprintf(w, "\t%.3f", cell.Output.Total.Seconds())
					}
				}
				fmt.Fprintln(w)
			}
		}
	}
	return all, nil
}

// Fig4 regenerates Figure 4: the number of candidates still alive
// after examining each batch of hashes, for AP+BayesLSH and
// LSH+BayesLSH on (a) WikiWords100K t=0.7 cosine, (b) WikiLinks t=0.7
// cosine and (c) WikiWords100K t=0.7 binary cosine.
func Fig4(w io.Writer, cfg Config) error {
	panels := []struct {
		label   string
		name    string
		measure bayeslsh.Measure
	}{
		{"4(a)", "WikiWords100K-sim", bayeslsh.Cosine},
		{"4(b)", "WikiLinks-sim", bayeslsh.Cosine},
		{"4(c)", "WikiWords100K-sim", bayeslsh.BinaryCosine},
	}
	if cfg.Quick {
		panels = panels[:1]
	}
	const t = 0.7
	for _, p := range panels {
		fmt.Fprintf(w, "# Figure %s: surviving candidates vs hashes examined (%s, %v, t=%.1f)\n",
			p.label, p.name, p.measure, t)
		r := newMatrixRunner(cfg, p.measure)
		truth, err := r.groundTruth(p.name, t)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "result_set_size\t%d\n", len(truth))
		for _, alg := range []bayeslsh.Algorithm{bayeslsh.AllPairsBayesLSH, bayeslsh.LSHBayesLSH} {
			cell, err := r.runCell(p.name, alg, t, bayeslsh.Options{})
			if err != nil {
				return err
			}
			if cell.TimedOut {
				fmt.Fprintf(w, "%v\ttimeout\n", alg)
				continue
			}
			fmt.Fprintf(w, "%v\tcandidates=%d\n", alg, cell.Output.Candidates)
			fmt.Fprintln(w, "hashes\tsurviving")
			fmt.Fprintf(w, "0\t%d\n", cell.Output.Candidates)
			k := 32
			for i, s := range cell.Output.SurvivorsByRound {
				fmt.Fprintf(w, "%d\t%d\n", (i+1)*k, s)
				if i >= 7 { // the paper plots the first ~256 hashes
					break
				}
			}
		}
	}
	return nil
}

// Fig5 regenerates the appendix figure: posterior densities of the
// collision probability r under three very different priors
// (p(r) ∝ r⁻³, uniform, r³ on [0.5, 1]) after observing M(24, 32),
// M(48, 64) and M(96, 128) — demonstrating that the data swamps the
// prior.
func Fig5(w io.Writer) error {
	type prior struct {
		name string
		f    func(r float64) float64
	}
	priors := []prior{
		{"r^-3", func(r float64) float64 { return math.Pow(r, -3) }},
		{"uniform", func(r float64) float64 { return 1 }},
		{"r^3", func(r float64) float64 { return math.Pow(r, 3) }},
	}
	events := [][2]int{{24, 32}, {48, 64}, {96, 128}}
	const grid = 26 // r = 0.50, 0.52, ..., 1.00
	fmt.Fprintln(w, "# Figure 5: posterior density of r under three priors (support [0.5, 1])")
	for _, ev := range events {
		m, n := ev[0], ev[1]
		fmt.Fprintf(w, "## after M(m=%d, n=%d)\n", m, n)
		fmt.Fprint(w, "r")
		for _, p := range priors {
			fmt.Fprintf(w, "\tpost_%s", p.name)
		}
		fmt.Fprintln(w)
		// Normalize each posterior numerically over [0.5, 1].
		post := func(p prior, r float64) float64 {
			return p.f(r) * math.Pow(r, float64(m)) * math.Pow(1-r, float64(n-m))
		}
		norms := make([]float64, len(priors))
		const quad = 4001
		h := 0.5 / float64(quad-1)
		for pi, p := range priors {
			sum := 0.0
			for i := 0; i < quad; i++ {
				r := 0.5 + float64(i)*h
				wgt := 2.0
				if i == 0 || i == quad-1 {
					wgt = 1
				} else if i%2 == 1 {
					wgt = 4
				}
				sum += wgt * post(p, r)
			}
			norms[pi] = sum * h / 3
		}
		for i := 0; i < grid; i++ {
			r := 0.5 + 0.02*float64(i)
			fmt.Fprintf(w, "%.2f", r)
			for pi, p := range priors {
				fmt.Fprintf(w, "\t%.4f", post(p, r)/norms[pi])
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w, "# The three posterior columns converge as n grows: the data swamps the prior.")
	return nil
}
