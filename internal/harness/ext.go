package harness

import (
	"fmt"
	"io"

	"bayeslsh"
)

// Ext1 evaluates the repository's implementation of the paper's §6
// extension direction: BayesLSH over 1-bit minwise signatures (b-bit
// minhash, b = 1). For each Jaccard threshold it compares standard
// AP+BayesLSH (32-bit minhashes) against the same pipeline with
// 1-bit signatures: total time, recall, estimate quality. The 1-bit
// variant stores 32× less signature data per hash and compares hashes
// with XOR+popcount, at the cost of roughly double the hash
// comparisons for equal confidence.
func Ext1(w io.Writer, cfg Config) error {
	name := "WikiWords500K-sim"
	if cfg.Quick {
		name = "RCV1-sim"
	}
	if len(cfg.Datasets) > 0 {
		name = cfg.Datasets[0]
	}
	r := newMatrixRunner(cfg, bayeslsh.Jaccard)
	fmt.Fprintf(w, "# Extension 1: 1-bit minwise BayesLSH vs standard minhash BayesLSH (%s, AP candidates)\n", name)
	fmt.Fprintln(w, "threshold\tvariant\ttotal_time\trecall%\terr>0.05%\thashes_compared")
	for _, t := range thresholds(bayeslsh.Jaccard, cfg.Quick) {
		std, err := r.runCell(name, bayeslsh.AllPairsBayesLSH, t, bayeslsh.Options{})
		if err != nil {
			return err
		}
		onebit, err := r.runCell(name, bayeslsh.AllPairsBayesLSH, t,
			bayeslsh.Options{OneBitMinhash: true})
		if err != nil {
			return err
		}
		for _, c := range []struct {
			label string
			cell  *Cell
		}{{"minhash-32bit", std}, {"minhash-1bit", onebit}} {
			if c.cell.TimedOut {
				fmt.Fprintf(w, "%.1f\t%s\ttimeout\t-\t-\t-\n", t, c.label)
				continue
			}
			fmt.Fprintf(w, "%.1f\t%s\t%s\t%.2f\t%.2f\t%d\n",
				t, c.label, fmtDur(c.cell.Output.Total),
				100*c.cell.Recall, 100*c.cell.ErrFrac,
				c.cell.Output.HashesCompared)
		}
	}
	return nil
}
