package harness

import (
	"testing"

	"bayeslsh"
	"bayeslsh/internal/dataset"
	"bayeslsh/internal/vector"
)

// Corpus profiles for the planner suites: three synthetic corpora from
// internal/dataset whose statistics sit in deliberately different
// regions of the planner's feature space — dense (long rows, mild
// skew), skewed (Zipf-heavy vocabulary, spread-out row lengths), and
// sparse (short rows over a wide vocabulary). The planner quality
// harness and the AutoPipeline bit-identity matrix both walk these, so
// "the planner behaves across corpus shapes" means one profile list.

// Profile names one corpus shape of the planner matrix.
type Profile struct {
	Name string
	Spec dataset.Spec
}

// Profiles returns the planner corpus-profile axis.
func Profiles() []Profile {
	return []Profile{
		{Name: "dense", Spec: dataset.Spec{
			Name: "profile-dense", Kind: dataset.Text,
			N: 350, Dim: 1200, AvgLen: 90, ZipfS: 0.7,
			ClusterFrac: 0.4, ClusterSize: 3, MutationRate: 0.15, Seed: 31,
		}},
		{Name: "skewed", Spec: dataset.Spec{
			Name: "profile-skewed", Kind: dataset.Text,
			N: 350, Dim: 5000, AvgLen: 35, ZipfS: 1.5,
			ClusterFrac: 0.4, ClusterSize: 3, MutationRate: 0.2, Seed: 32,
		}},
		{Name: "sparse", Spec: dataset.Spec{
			Name: "profile-sparse", Kind: dataset.Text,
			N: 350, Dim: 20000, AvgLen: 12, ZipfS: 0.9,
			ClusterFrac: 0.4, ClusterSize: 3, MutationRate: 0.2, Seed: 33,
		}},
	}
}

// ProfileDataset generates p's corpus prepared for m — Tf-Idf weighted
// and unit-normalized for Cosine, binarized for the set measures — as
// a module-root Dataset ready for NewEngine.
func ProfileDataset(tb testing.TB, p Profile, m bayeslsh.Measure) *bayeslsh.Dataset {
	tb.Helper()
	c, err := dataset.Generate(p.Spec)
	if err != nil {
		tb.Fatalf("profile %s: %v", p.Name, err)
	}
	if m == bayeslsh.Cosine {
		c = c.TfIdf().Normalize()
	} else {
		c = c.Binarize()
	}
	ds := bayeslsh.NewDataset(c.Dim)
	for _, v := range c.Vecs {
		ds.Add(vecMap(v))
	}
	return ds
}

// vecMap converts an internal sparse vector back to the feature map
// form the public Dataset API accepts.
func vecMap(v vector.Vector) map[uint32]float64 {
	m := make(map[uint32]float64, v.Len())
	for i, ind := range v.Ind {
		m[ind] = v.Val[i]
	}
	return m
}
