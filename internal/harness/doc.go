// Package harness drives the experiments of §5 of the BayesLSH paper:
// it runs every (dataset, measure, algorithm, threshold) cell of the
// evaluation matrix on the synthetic corpora, computes recall and
// accuracy against exact ground truth, and formats the same rows and
// series the paper's tables and figures report.
//
// # Experiments
//
// Every experiment has an id matching the paper's numbering — fig1
// (hashes vs similarity), fig2 (parameter sweep), fig3 (timing across
// all eight pipelines), fig4 (pruning curves), fig5 (prior vs
// posterior), tab1..tab5 (dataset statistics, speedups, recall,
// estimate errors, parameter quality) — plus ext1 for the 1-bit
// minhash extension. Run dispatches on the id and writes the
// formatted artifact to an io.Writer.
//
// # Entry points
//
// The cmd/experiments binary is a thin CLI over this package, and
// bench_test.go at the module root wraps each experiment in a
// testing.B benchmark; Config.Quick trims the matrices so the whole
// suite completes in minutes on modest hardware.
package harness
