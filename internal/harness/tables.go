package harness

import (
	"fmt"
	"io"
	"time"

	"bayeslsh"
)

// Tab1 regenerates Table 1: the statistics of the (synthetic analogue)
// datasets — vector count, dimensionality, average length, non-zeros.
func Tab1(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "# Table 1: dataset details (synthetic analogues)")
	fmt.Fprintln(w, "dataset\tvectors\tdimensions\tavg_len\tnnz")
	for _, name := range weightedNames(cfg) {
		ds, err := bayeslsh.Synthetic(name)
		if err != nil {
			return err
		}
		s := ds.Stats()
		fmt.Fprintf(w, "%s\t%d\t%d\t%.0f\t%d\n", name, s.Vectors, s.Dim, s.AvgLen, s.Nnz)
	}
	return nil
}

// Tab2 regenerates Table 2: the fastest BayesLSH variant per dataset
// and measure (by total time across all thresholds) and its speedup
// over each baseline.
func Tab2(w io.Writer, cfg Config) error {
	cells, err := fig3Cells(io.Discard, cfg)
	if err != nil {
		return err
	}
	// Aggregate total time per (measure, dataset, algorithm).
	type key struct {
		m    bayeslsh.Measure
		name string
		alg  bayeslsh.Algorithm
	}
	totals := map[key]time.Duration{}
	lowerBound := map[key]bool{}           // some cell timed out: total is a lower bound
	groups := map[string]map[string]bool{} // measure label → dataset set
	for _, c := range cells {
		k := key{c.Measure, c.Dataset, c.Algorithm}
		totals[k] += c.Output.Total
		if c.TimedOut {
			lowerBound[k] = true
		}
		ml := c.Measure.String()
		if groups[ml] == nil {
			groups[ml] = map[string]bool{}
		}
		groups[ml][c.Dataset] = true
	}
	bayesVariants := []bayeslsh.Algorithm{
		bayeslsh.AllPairsBayesLSH, bayeslsh.AllPairsBayesLSHLite,
		bayeslsh.LSHBayesLSH, bayeslsh.LSHBayesLSHLite,
	}
	baselines := []bayeslsh.Algorithm{
		bayeslsh.AllPairs, bayeslsh.LSH, bayeslsh.LSHApprox, bayeslsh.PPJoin,
	}
	fmt.Fprintln(w, "# Table 2: fastest BayesLSH variant and speedups over baselines")
	fmt.Fprintln(w, "measure\tdataset\tfastest_variant\tspeedup_AP\tspeedup_LSH\tspeedup_LSHApprox\tspeedup_PPJoin")
	for _, m := range []bayeslsh.Measure{bayeslsh.Cosine, bayeslsh.Jaccard, bayeslsh.BinaryCosine} {
		ml := m.String()
		for _, name := range sortedKeys(groups[ml]) {
			var best bayeslsh.Algorithm
			bestT := time.Duration(0)
			found := false
			for _, v := range bayesVariants {
				k := key{m, name, v}
				t, ok := totals[k]
				if !ok || lowerBound[k] {
					continue
				}
				if !found || t < bestT {
					best, bestT, found = v, t, true
				}
			}
			if !found {
				continue
			}
			fmt.Fprintf(w, "%s\t%s\t%v", ml, name, best)
			for _, b := range baselines {
				k := key{m, name, b}
				if t, ok := totals[k]; ok && bestT > 0 {
					prefix := ""
					if lowerBound[k] {
						prefix = ">=" // baseline timed out: true speedup is larger
					}
					fmt.Fprintf(w, "\t%s%.1fx", prefix, t.Seconds()/bestT.Seconds())
				} else {
					fmt.Fprint(w, "\t-")
				}
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// Tab3 regenerates Table 3: recall of AP+BayesLSH and
// AP+BayesLSH-Lite across datasets and thresholds (weighted cosine).
func Tab3(w io.Writer, cfg Config) error {
	r := newMatrixRunner(cfg, bayeslsh.Cosine)
	ths := thresholds(bayeslsh.Cosine, cfg.Quick)
	for _, alg := range []bayeslsh.Algorithm{bayeslsh.AllPairsBayesLSH, bayeslsh.AllPairsBayesLSHLite} {
		fmt.Fprintf(w, "# Table 3 (%v): recall (%%)\n", alg)
		fmt.Fprint(w, "dataset")
		for _, t := range ths {
			fmt.Fprintf(w, "\tt=%.1f", t)
		}
		fmt.Fprintln(w)
		for _, name := range weightedNames(cfg) {
			fmt.Fprint(w, name)
			for _, t := range ths {
				cell, err := r.runCell(name, alg, t, bayeslsh.Options{})
				if err != nil {
					return err
				}
				if cell.TimedOut {
					fmt.Fprint(w, "\t-")
					continue
				}
				fmt.Fprintf(w, "\t%.2f", 100*cell.Recall)
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// Tab4 regenerates Table 4: the percentage of similarity estimates
// with absolute error above 0.05, for LSH Approx and LSH+BayesLSH.
func Tab4(w io.Writer, cfg Config) error {
	r := newMatrixRunner(cfg, bayeslsh.Cosine)
	ths := thresholds(bayeslsh.Cosine, cfg.Quick)
	for _, alg := range []bayeslsh.Algorithm{bayeslsh.LSHApprox, bayeslsh.LSHBayesLSH} {
		fmt.Fprintf(w, "# Table 4 (%v): %% of estimates with error > 0.05\n", alg)
		fmt.Fprint(w, "dataset")
		for _, t := range ths {
			fmt.Fprintf(w, "\tt=%.1f", t)
		}
		fmt.Fprintln(w)
		for _, name := range weightedNames(cfg) {
			fmt.Fprint(w, name)
			for _, t := range ths {
				cell, err := r.runCell(name, alg, t, bayeslsh.Options{})
				if err != nil {
					return err
				}
				if cell.TimedOut {
					fmt.Fprint(w, "\t-")
					continue
				}
				fmt.Fprintf(w, "\t%.2f", 100*cell.ErrFrac)
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// Tab5 regenerates Table 5: the effect of varying γ, δ, ε one at a
// time (others fixed at 0.05) on the relevant quality metric, for
// LSH+BayesLSH on WikiWords100K at t=0.7: fraction of errors > 0.05
// for γ, mean error for δ, recall for ε.
func Tab5(w io.Writer, cfg Config) error {
	const name = "WikiWords100K-sim"
	const t = 0.7
	r := newMatrixRunner(cfg, bayeslsh.Cosine)
	values := []float64{0.01, 0.03, 0.05, 0.07, 0.09}
	if cfg.Quick {
		values = []float64{0.01, 0.05, 0.09}
	}
	fmt.Fprintf(w, "# Table 5: quality while varying gamma/delta/epsilon (%s, t=%.1f, LSH candidates)\n", name, t)
	fmt.Fprintln(w, "value\terr_frac>0.05 (vary gamma)\tmean_err (vary delta)\trecall%% (vary epsilon)")
	for _, v := range values {
		// FalseNegativeRate is pinned so the ε column varies only
		// BayesLSH's recall parameter, not LSH candidate generation.
		g, err := r.runCell(name, bayeslsh.LSHBayesLSH, t,
			bayeslsh.Options{Epsilon: 0.05, Delta: 0.05, Gamma: v, FalseNegativeRate: 0.05})
		if err != nil {
			return err
		}
		d, err := r.runCell(name, bayeslsh.LSHBayesLSH, t,
			bayeslsh.Options{Epsilon: 0.05, Delta: v, Gamma: 0.05, FalseNegativeRate: 0.05})
		if err != nil {
			return err
		}
		e, err := r.runCell(name, bayeslsh.LSHBayesLSH, t,
			bayeslsh.Options{Epsilon: v, Delta: 0.05, Gamma: 0.05, FalseNegativeRate: 0.05})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%.2f\t%.3f\t%.4f\t%.2f\n", v, g.ErrFrac, d.MeanErr, 100*e.Recall)
	}
	return nil
}
