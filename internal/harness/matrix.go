package harness

import (
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"testing"

	"bayeslsh"
)

// The shared test matrix: one definition of the measures × pipelines ×
// corpus grid that every bit-identity suite walks — the HTTP serving
// harness (internal/server), the sharded scatter-gather equivalence
// suite (internal/cluster), and the module-root query-vs-batch
// cross-check. Keeping the matrix here means a new pipeline or measure
// lands in all three suites by editing one file, and the suites cannot
// drift apart on corpus construction or comparison strictness.

// MatrixCell is one measure × threshold cell of the serving-side
// matrix.
type MatrixCell struct {
	Measure   bayeslsh.Measure
	Threshold float64
}

// Cells returns the serving-side measure matrix: every measure, at a
// threshold where the planted-triple corpus has real matches.
func Cells() []MatrixCell {
	return []MatrixCell{
		{bayeslsh.Cosine, 0.6},
		{bayeslsh.Jaccard, 0.5},
		{bayeslsh.BinaryCosine, 0.6},
	}
}

// Pipelines returns the query-serving pipeline axis for a measure:
// every algorithm the measure supports plus BruteForce, minus PPJoin
// (whose join-order-dependent prefix filter has no query-serving
// index).
func Pipelines(m bayeslsh.Measure) []bayeslsh.Algorithm {
	var out []bayeslsh.Algorithm
	for _, alg := range append(bayeslsh.Algorithms(m), bayeslsh.BruteForce) {
		if alg != bayeslsh.PPJoin {
			out = append(out, alg)
		}
	}
	return out
}

// Corpus builds the deterministic clustered corpus of the serving
// matrix: n vectors over a 400-feature space, in planted near-duplicate
// triples so every pipeline has real matches to return. The returned
// maps are the raw feature maps, index-aligned with the dataset —
// already normalized for Cosine, binarized otherwise — so rendering
// map i in the wire grammar parses back to dataset vector i exactly.
func Corpus(tb testing.TB, m bayeslsh.Measure, n int) (*bayeslsh.Dataset, []map[uint32]float64) {
	tb.Helper()
	const dim = 400
	rng := rand.New(rand.NewSource(7))
	maps := make([]map[uint32]float64, 0, n)
	var center map[uint32]float64
	for i := 0; i < n; i++ {
		if i%3 == 0 || center == nil {
			center = make(map[uint32]float64, 18)
			for len(center) < 18 {
				center[uint32(rng.Intn(dim))] = 0.5 + rng.Float64()
			}
		}
		v := make(map[uint32]float64, len(center)+1)
		for f, w := range center {
			v[f] = w
		}
		if i%3 != 0 {
			// Mutate the copies so similarities vary. The deleted
			// feature is picked deterministically (never by map
			// iteration order — the corpus must be identical run to
			// run) and differs between the two copies, and the added
			// feature is new to the vector and never re-adds the
			// deleted one — so the triple stays pairwise distinct even
			// after binarization collapses the weights (the result
			// cache keys on vector content; a duplicate vector would
			// legitimately turn an expected miss into a hit).
			feats := make([]uint32, 0, len(v))
			for f := range v {
				//apsslint:allow mapiter the keys are sorted before use
				feats = append(feats, f)
			}
			sort.Slice(feats, func(a, b int) bool { return feats[a] < feats[b] })
			del := feats[i%3-1]
			delete(v, del)
			for {
				f := uint32(rng.Intn(dim))
				if _, dup := v[f]; !dup && f != del {
					v[f] = 0.5 + rng.Float64()
					break
				}
			}
		}
		maps = append(maps, PrepMap(m, v))
	}
	ds := bayeslsh.NewDataset(dim)
	for _, v := range maps {
		ds.Add(v)
	}
	return ds, maps
}

// PrepMap puts a raw feature map into the measure's input form:
// unit-normalized for Cosine, binarized for the set measures — the
// same preprocessing a corpus would get, applied to the map itself so
// map and dataset vector stay bit-identical.
func PrepMap(m bayeslsh.Measure, v map[uint32]float64) map[uint32]float64 {
	out := make(map[uint32]float64, len(v))
	if m == bayeslsh.Cosine {
		var ss float64
		for _, w := range v {
			ss += w * w
		}
		norm := math.Sqrt(ss)
		for f, w := range v {
			out[f] = w / norm
		}
	} else {
		for f := range v {
			out[f] = 1
		}
	}
	return out
}

// VecString renders a feature map in the wire grammar, features
// sorted, weights in exact shortest-round-trip form.
func VecString(v map[uint32]float64) string {
	feats := make([]uint32, 0, len(v))
	for f := range v {
		feats = append(feats, f)
	}
	sort.Slice(feats, func(i, j int) bool { return feats[i] < feats[j] })
	var b strings.Builder
	for i, f := range feats {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strconv.FormatUint(uint64(f), 10))
		b.WriteByte(':')
		b.WriteString(strconv.FormatFloat(v[f], 'g', -1, 64))
	}
	return b.String()
}

// LiveConfig is the matrix's live-index tuning: automatic merging off,
// so tests control their compaction points explicitly.
func LiveConfig() bayeslsh.LiveConfig {
	return bayeslsh.LiveConfig{MaxDelta: -1, MaxRatio: -1}
}

// EngineConfig is the matrix's engine tuning: the fixed seed every
// suite shares, which is what makes sharded, served and direct answers
// comparable bit-for-bit.
func EngineConfig() bayeslsh.EngineConfig {
	return bayeslsh.EngineConfig{Seed: 7, Parallelism: 2}
}

// NewLive builds a live index for one measure × pipeline cell under
// the matrix's shared seed and merge tuning.
func NewLive(tb testing.TB, ds *bayeslsh.Dataset, m bayeslsh.Measure, alg bayeslsh.Algorithm, threshold float64) *bayeslsh.LiveIndex {
	tb.Helper()
	li, err := bayeslsh.NewLiveIndex(ds, m, EngineConfig(),
		bayeslsh.Options{Algorithm: alg, Threshold: threshold}, LiveConfig())
	if err != nil {
		tb.Fatal(err)
	}
	return li
}

// MatchesEqual is strict equality: same ids, same float64 bits.
func MatchesEqual(a, b []bayeslsh.Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// QueryCell is one measure's cell of the engine-side (query-vs-batch)
// matrix: its threshold, engine config, and dataset preprocessing.
type QueryCell struct {
	Measure   bayeslsh.Measure
	Threshold float64
	Config    bayeslsh.EngineConfig
	Prep      func(*bayeslsh.Dataset) *bayeslsh.Dataset
}

// QueryCells returns the engine-side matrix, matching the thresholds
// and engine configs of the module's batch agreement tests.
func QueryCells() []QueryCell {
	return []QueryCell{
		{bayeslsh.Cosine, 0.7, bayeslsh.EngineConfig{Seed: 7, SignatureBits: 1024},
			func(d *bayeslsh.Dataset) *bayeslsh.Dataset { return d.TfIdf().Normalize() }},
		{bayeslsh.Jaccard, 0.4, bayeslsh.EngineConfig{Seed: 8},
			func(d *bayeslsh.Dataset) *bayeslsh.Dataset { return d.Binarize() }},
		{bayeslsh.BinaryCosine, 0.7, bayeslsh.EngineConfig{Seed: 9, SignatureBits: 1024},
			func(d *bayeslsh.Dataset) *bayeslsh.Dataset { return d }},
	}
}

// QueryPipelines returns the query-serving pipelines of the engine-side
// matrix; every one is exactly consistent with the batch search (the
// AllPairs candidate test is symmetric in the pair, so even the
// estimate-reporting AllPairsBayesLSH pipeline agrees strictly — see
// docs/QUERYING.md).
func QueryPipelines() []bayeslsh.Algorithm {
	return []bayeslsh.Algorithm{
		bayeslsh.BruteForce, bayeslsh.AllPairs, bayeslsh.LSH, bayeslsh.LSHApprox,
		bayeslsh.LSHBayesLSH, bayeslsh.LSHBayesLSHLite,
		bayeslsh.AllPairsBayesLSH, bayeslsh.AllPairsBayesLSHLite,
	}
}

// BatchPartners extracts, for every vector id, the partners and
// similarities a batch search reports for pairs involving it — the
// ground truth the per-query suites compare against.
func BatchPartners(out *bayeslsh.Output, n int) []map[int]float64 {
	ps := make([]map[int]float64, n)
	for i := range ps {
		ps[i] = map[int]float64{}
	}
	for _, r := range out.Results {
		ps[r.A][r.B] = r.Sim
		ps[r.B][r.A] = r.Sim
	}
	return ps
}
