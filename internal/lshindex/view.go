// Disk-servable (v3) band tables. The v1 stream codec decodes buckets
// into per-band Go maps; the v3 section instead persists each band as
// a sorted bucket run — a sorted key array, a cumulative-end
// directory, and one delta+varint-compressed id blob — and BitsView /
// MinhashView probe it in place by binary search over the mapped
// bytes. Probe results are dedup'd and sorted exactly like the heap
// tables', so the two serve bit-identical candidates.
//
// Section layout (offsets relative to the section start, which is
// page- and therefore 8-aligned):
//
//	u32 k, u32 l, u32 flags (bit 0: multi-probe), u32 pad
//	dir    l × u64  band block offsets, each 8-aligned
//	per band block:
//	  u64 nb                      bucket count
//	  keys  nb × u64              sorted ascending band keys
//	  ends  nb × u64              cumulative byte ends of the id runs
//	  ids   delta+varint runs     bucket i's ids at [ends[i-1], ends[i])
//	  zero padding to 8 bytes
package lshindex

import (
	"fmt"
	"sort"

	"bayeslsh/internal/snapshot"
)

// BitsSource generates candidates from a probed bit signature: the
// heap BitsTables and the mapped BitsView implement it identically.
type BitsSource interface {
	Bands() int
	BandK() int
	Probe(sig []uint64) []int32
}

// MinhashSource is BitsSource for minhash signatures.
type MinhashSource interface {
	Bands() int
	BandK() int
	Probe(sig []uint32) []int32
}

const viewHeader = 16

// bandRun is one band's sorted bucket run, viewed in place.
type bandRun struct {
	keys []uint64
	ends []uint64
	blob []byte
}

// lookup appends bucket key's ids (if present) to dst.
func (b *bandRun) lookup(key uint64, dst []int32, n int) []int32 {
	i := sort.Search(len(b.keys), func(i int) bool { return b.keys[i] >= key })
	if i == len(b.keys) || b.keys[i] != key {
		return dst
	}
	start := uint64(0)
	if i > 0 {
		start = b.ends[i-1]
	}
	dst, _, err := snapshot.DecodeDeltaI32s(dst, b.blob[start:b.ends[i]], int32(n))
	if err != nil {
		// Validate walked every run on first touch; a failure here means
		// the mapping changed underneath us.
		panic(fmt.Sprintf("lshindex: validated bucket run failed to decode: %v", err))
	}
	return dst
}

// validate walks every bucket run once — strictly ascending keys,
// monotone ends, every id run decodable with ids inside the corpus —
// so probes can decode without error paths.
func (b *bandRun) validate(band, n int) error {
	var prevKey uint64
	var prevEnd uint64
	scratch := make([]int32, 0, 64)
	for i := range b.keys {
		if i > 0 && b.keys[i] <= prevKey {
			return fmt.Errorf("%w: band %d: bucket keys not ascending at %d", snapshot.ErrCorrupt, band, i)
		}
		prevKey = b.keys[i]
		end := b.ends[i]
		if end < prevEnd || end > uint64(len(b.blob)) {
			return fmt.Errorf("%w: band %d: run end %d after %d (blob %d)", snapshot.ErrCorrupt, band, end, prevEnd, len(b.blob))
		}
		ids, used, err := snapshot.DecodeDeltaI32s(scratch[:0], b.blob[prevEnd:end], int32(n))
		if err != nil {
			return fmt.Errorf("band %d bucket %d: %w", band, i, err)
		}
		if uint64(used) != end-prevEnd {
			return fmt.Errorf("%w: band %d bucket %d: %d stray bytes", snapshot.ErrCorrupt, band, i, end-prevEnd-uint64(used))
		}
		if len(ids) == 0 {
			return fmt.Errorf("%w: band %d bucket %d: empty bucket", snapshot.ErrCorrupt, band, i)
		}
		prevEnd = end
	}
	if prevEnd != uint64(len(b.blob)) {
		return fmt.Errorf("%w: band %d: %d bytes after last run", snapshot.ErrCorrupt, band, uint64(len(b.blob))-prevEnd)
	}
	return nil
}

// writeFixedBuckets serializes per-band sorted bucket runs.
func writeFixedBuckets(w *snapshot.Writer, k, l int, flags uint32, tables []map[uint64][]int32) {
	w.U32(uint32(k))
	w.U32(uint32(l))
	w.U32(flags)
	w.U32(0)
	type band struct {
		keys []uint64
		ends []uint64
		blob []byte
	}
	bands := make([]band, len(tables))
	off := uint64(viewHeader + 8*len(tables))
	for bi, buckets := range tables {
		b := band{keys: make([]uint64, 0, len(buckets))}
		for key := range buckets {
			//apsslint:allow mapiter keys are sorted below; map order never reaches the stream
			b.keys = append(b.keys, key)
		}
		sort.Slice(b.keys, func(i, j int) bool { return b.keys[i] < b.keys[j] })
		for _, key := range b.keys {
			b.blob = snapshot.AppendDeltaI32s(b.blob, buckets[key])
			b.ends = append(b.ends, uint64(len(b.blob)))
		}
		bands[bi] = b
		w.U64(off)
		size := uint64(8 + 16*len(b.keys) + len(b.blob))
		off += (size + 7) / 8 * 8
	}
	for _, b := range bands {
		w.U64(uint64(len(b.keys)))
		for _, key := range b.keys {
			w.U64(key)
		}
		for _, end := range b.ends {
			w.U64(end)
		}
		w.Raw(b.blob)
		w.Pad(8)
	}
}

// openFixedBuckets lays band views over a writeFixedBuckets payload.
// Bounds are validated here (directory offsets, array extents); the
// full run walk is validate, run on first touch with the checksum.
func openFixedBuckets(buf []byte, l, n int) ([]bandRun, error) {
	if uint64(len(buf)) < uint64(viewHeader)+8*uint64(l) {
		return nil, fmt.Errorf("%w: band section %d bytes for %d bands", snapshot.ErrCorrupt, len(buf), l)
	}
	dir := snapshot.ViewU64s(buf[viewHeader : viewHeader+8*l])
	bands := make([]bandRun, l)
	for bi := range bands {
		off := dir[bi]
		end := uint64(len(buf))
		if bi+1 < l {
			end = dir[bi+1]
		}
		if off%8 != 0 || off < uint64(viewHeader+8*l) || off+8 > end || end > uint64(len(buf)) {
			return nil, fmt.Errorf("%w: band %d block [%d, %d) out of place", snapshot.ErrCorrupt, bi, off, end)
		}
		nb := snapshot.ViewU64s(buf[off : off+8])[0]
		span := end - off - 8
		if nb > span/16 {
			return nil, fmt.Errorf("%w: band %d: %d buckets in %d bytes", snapshot.ErrCorrupt, bi, nb, span)
		}
		keysOff := off + 8
		endsOff := keysOff + 8*nb
		blobOff := endsOff + 8*nb
		b := bandRun{
			keys: snapshot.ViewU64s(buf[keysOff:endsOff]),
			ends: snapshot.ViewU64s(buf[endsOff:blobOff]),
		}
		blobLen := uint64(0)
		if nb > 0 {
			blobLen = b.ends[nb-1]
		}
		if blobLen > end-blobOff {
			return nil, fmt.Errorf("%w: band %d: id blob %d bytes, %d available", snapshot.ErrCorrupt, bi, blobLen, end-blobOff)
		}
		b.blob = buf[blobOff : blobOff+blobLen : blobOff+blobLen]
		bands[bi] = b
	}
	return bands, nil
}

// BitsView serves probes straight from a mapped v3 band section,
// answering identically to the BitsTables that wrote it.
type BitsView struct {
	k, l       int
	multiProbe bool
	n          int
	bands      []bandRun
}

// WriteFixedSection serializes the tables as sorted bucket runs.
func (t *BitsTables) WriteFixedSection(w *snapshot.Writer) {
	flags := uint32(0)
	if t.multiProbe {
		flags = 1
	}
	writeFixedBuckets(w, t.k, t.l, flags, t.tables)
}

// OpenBitsView lays a view over a WriteFixedSection payload for a
// corpus of n vectors.
func OpenBitsView(buf []byte, n int) (*BitsView, error) {
	if len(buf) < viewHeader {
		return nil, fmt.Errorf("%w: band section %d bytes", snapshot.ErrCorrupt, len(buf))
	}
	r := snapshot.NewReader(buf)
	t := &BitsView{k: int(r.U32()), l: int(r.U32()), multiProbe: r.U32()&1 != 0, n: n}
	if t.k < 1 || t.k > 64 || t.l < 1 {
		return nil, fmt.Errorf("%w: band shape k=%d l=%d", snapshot.ErrCorrupt, t.k, t.l)
	}
	var err error
	if t.bands, err = openFixedBuckets(buf, t.l, n); err != nil {
		return nil, err
	}
	return t, nil
}

// Bands returns the number of tables l.
func (t *BitsView) Bands() int { return t.l }

// BandK returns the number of bits per band.
func (t *BitsView) BandK() int { return t.k }

// Validate walks every bucket run (first-touch deep check).
func (t *BitsView) Validate() error {
	for bi := range t.bands {
		if err := t.bands[bi].validate(bi, t.n); err != nil {
			return err
		}
	}
	return nil
}

// Probe mirrors BitsTables.Probe over the mapped runs: same band
// keys, same multi-probe neighborhood, same dedup'd ascending result.
func (t *BitsView) Probe(sig []uint64) []int32 {
	seen := make(map[int32]struct{})
	var scratch []int32
	for band := 0; band < t.l; band++ {
		key := bitsBand(sig, band*t.k, t.k)
		scratch = t.bands[band].lookup(key, scratch[:0], t.n)
		if t.multiProbe {
			for b := 0; b < t.k; b++ {
				scratch = t.bands[band].lookup(key^(1<<b), scratch, t.n)
			}
		}
		for _, id := range scratch {
			seen[id] = struct{}{}
		}
	}
	return sortedIDs(seen)
}

// MinhashView is BitsView for minhash band tables.
type MinhashView struct {
	k, l  int
	n     int
	bands []bandRun
}

// WriteFixedSection serializes the tables as sorted bucket runs.
func (t *MinhashTables) WriteFixedSection(w *snapshot.Writer) {
	writeFixedBuckets(w, t.k, t.l, 0, t.tables)
}

// OpenMinhashView lays a view over a WriteFixedSection payload for a
// corpus of n vectors.
func OpenMinhashView(buf []byte, n int) (*MinhashView, error) {
	if len(buf) < viewHeader {
		return nil, fmt.Errorf("%w: band section %d bytes", snapshot.ErrCorrupt, len(buf))
	}
	r := snapshot.NewReader(buf)
	t := &MinhashView{k: int(r.U32()), l: int(r.U32()), n: n}
	if t.k < 1 || t.l < 1 {
		return nil, fmt.Errorf("%w: band shape k=%d l=%d", snapshot.ErrCorrupt, t.k, t.l)
	}
	var err error
	if t.bands, err = openFixedBuckets(buf, t.l, n); err != nil {
		return nil, err
	}
	return t, nil
}

// Bands returns the number of tables l.
func (t *MinhashView) Bands() int { return t.l }

// BandK returns the number of minhashes per band.
func (t *MinhashView) BandK() int { return t.k }

// Validate walks every bucket run (first-touch deep check).
func (t *MinhashView) Validate() error {
	for bi := range t.bands {
		if err := t.bands[bi].validate(bi, t.n); err != nil {
			return err
		}
	}
	return nil
}

// Probe mirrors MinhashTables.Probe over the mapped runs.
func (t *MinhashView) Probe(sig []uint32) []int32 {
	seen := make(map[int32]struct{})
	scratch := make([]uint64, (t.k+1)/2)
	var ids []int32
	for band := 0; band < t.l; band++ {
		key := minhashBandKey(sig, band, t.k, scratch)
		ids = t.bands[band].lookup(key, ids[:0], t.n)
		for _, id := range ids {
			seen[id] = struct{}{}
		}
	}
	return sortedIDs(seen)
}
