package lshindex

import (
	"testing"

	"bayeslsh/internal/minhash"
	"bayeslsh/internal/pair"
	"bayeslsh/internal/sighash"
	"bayeslsh/internal/testutil"
)

// requireSamePairSet fails unless got and want contain the same pairs.
func requireSamePairSet(t *testing.T, got, want []pair.Pair) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d candidates, want %d", len(got), len(want))
	}
	gs := testutil.PairKeySet(got)
	for _, p := range want {
		if _, ok := gs[p.Key()]; !ok {
			t.Fatalf("missing candidate %v", p)
		}
	}
}

func TestCandidatesBitsParallelMatchesSequential(t *testing.T) {
	c := testutil.SmallTextCorpus(t, 300, 21)
	fam := sighash.NewFamily(c.Dim, 256, 77)
	sigs := fam.SignatureAll(c)
	want, err := CandidatesBits(sigs, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 9} {
		got, err := CandidatesBitsParallel(sigs, 8, 16, workers)
		if err != nil {
			t.Fatal(err)
		}
		requireSamePairSet(t, got, want)
	}
}

func TestCandidatesBitsMultiProbeParallelMatchesSequential(t *testing.T) {
	c := testutil.SmallTextCorpus(t, 300, 22)
	fam := sighash.NewFamily(c.Dim, 256, 78)
	sigs := fam.SignatureAll(c)
	want, err := CandidatesBitsMultiProbe(sigs, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CandidatesBitsMultiProbeParallel(sigs, 8, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	requireSamePairSet(t, got, want)
}

func TestCandidatesMinhashParallelMatchesSequential(t *testing.T) {
	c := testutil.SmallBinaryCorpus(t, 300, 23)
	fam := minhash.NewFamily(96, 79)
	sigs := fam.SignatureAll(c)
	want, err := CandidatesMinhash(sigs, 3, 32)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CandidatesMinhashParallel(sigs, 3, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	requireSamePairSet(t, got, want)
}

func TestParallelValidation(t *testing.T) {
	sigs := [][]uint64{{0}, {1}}
	if _, err := CandidatesBitsParallel(sigs, 8, 100, 4); err == nil {
		t.Error("short signatures accepted")
	}
	if _, err := CandidatesBitsMultiProbeParallel(sigs, 70, 1, 4); err == nil {
		t.Error("k > 64 accepted")
	}
	if _, err := CandidatesMinhashParallel([][]uint32{{1}}, 3, 100, 4); err == nil {
		t.Error("short minhash signatures accepted")
	}
}
