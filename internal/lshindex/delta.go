// Incremental banded tables for the live index's delta segment: the
// same band keys as the built BitsTables/MinhashTables, but grown one
// vector at a time as ingest appends to the memtable. A vector's
// bucket membership depends only on its own signature and the banding
// plan, never on its neighbours, so a query probing base tables plus a
// delta built under the same (k, l, multiProbe) plan sees exactly the
// candidate set a cold build over the combined corpus would produce —
// the property the live index's determinism contract rests on.
//
// Deltas are caller-synchronized: Add calls must be serialized with
// each other and with Probe calls (the live memtable wraps them in its
// RWMutex). Probe takes the visible id bound n so a reader pinned to
// an older generation never sees vectors appended after its snapshot.

package lshindex

// BitsDelta is an incrementally grown set of l banded hash tables over
// packed bit signatures.
type BitsDelta struct {
	k, l       int
	multiProbe bool
	tables     []map[uint64][]int32
}

// NewBitsDelta creates empty delta tables under the banding plan
// (k bits per band, l bands, 1-step multi-probe at query time when
// multiProbe is set) — the plan of the base tables it rides next to.
func NewBitsDelta(k, l int, multiProbe bool) *BitsDelta {
	t := make([]map[uint64][]int32, l)
	for i := range t {
		t[i] = make(map[uint64][]int32)
	}
	return &BitsDelta{k: k, l: l, multiProbe: multiProbe, tables: t}
}

// Add inserts vector id with signature sig (covering at least k*l
// bits) into every band's bucket. Ids must be appended in increasing
// order so bucket lists stay sorted.
func (d *BitsDelta) Add(id int32, sig []uint64) {
	for band := 0; band < d.l; band++ {
		key := bitsBand(sig, band*d.k, d.k)
		d.tables[band][key] = append(d.tables[band][key], id)
	}
}

// Probe returns the ids < n sharing a bucket with sig in any band
// (plus, with multi-probe, any bucket at Hamming distance one from
// sig's band key), deduplicated and in ascending id order — the delta
// twin of BitsTables.Probe.
func (d *BitsDelta) Probe(sig []uint64, n int32) []int32 {
	seen := make(map[int32]struct{})
	for band := 0; band < d.l; band++ {
		key := bitsBand(sig, band*d.k, d.k)
		collectDeltaBucket(seen, d.tables[band][key], n)
		if d.multiProbe {
			for b := 0; b < d.k; b++ {
				collectDeltaBucket(seen, d.tables[band][key^(1<<b)], n)
			}
		}
	}
	return sortedIDs(seen)
}

// MinhashDelta is an incrementally grown set of l banded hash tables
// over minhash signatures.
type MinhashDelta struct {
	k, l   int
	tables []map[uint64][]int32
}

// NewMinhashDelta creates empty delta tables under the banding plan
// (k minhashes per band, l bands).
func NewMinhashDelta(k, l int) *MinhashDelta {
	t := make([]map[uint64][]int32, l)
	for i := range t {
		t[i] = make(map[uint64][]int32)
	}
	return &MinhashDelta{k: k, l: l, tables: t}
}

// Add inserts vector id with signature sig (covering at least k*l
// hashes) into every band's bucket. Ids must be appended in increasing
// order so bucket lists stay sorted.
func (d *MinhashDelta) Add(id int32, sig []uint32) {
	scratch := make([]uint64, (d.k+1)/2)
	for band := 0; band < d.l; band++ {
		key := minhashBandKey(sig, band, d.k, scratch)
		d.tables[band][key] = append(d.tables[band][key], id)
	}
}

// Probe returns the ids < n sharing a bucket with sig in any band,
// deduplicated and in ascending id order — the delta twin of
// MinhashTables.Probe.
func (d *MinhashDelta) Probe(sig []uint32, n int32) []int32 {
	seen := make(map[int32]struct{})
	scratch := make([]uint64, (d.k+1)/2)
	for band := 0; band < d.l; band++ {
		key := minhashBandKey(sig, band, d.k, scratch)
		collectDeltaBucket(seen, d.tables[band][key], n)
	}
	return sortedIDs(seen)
}

// collectDeltaBucket adds the bucket's ids below the visibility bound
// n to the seen-set. Buckets are appended in id order, so the suffix
// beyond the first id >= n is invisible by construction.
func collectDeltaBucket(seen map[int32]struct{}, bucket []int32, n int32) {
	for _, id := range bucket {
		if id >= n {
			return
		}
		seen[id] = struct{}{}
	}
}
