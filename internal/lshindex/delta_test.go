package lshindex

import (
	"math/rand"
	"testing"
)

// TestBitsDeltaMatchesTables is the delta determinism property: a
// query probing delta tables grown one vector at a time sees exactly
// the candidates the batch-built tables over the same signatures
// produce — with and without multi-probe.
func TestBitsDeltaMatchesTables(t *testing.T) {
	const n, k, l, words = 60, 8, 4, 2
	rng := rand.New(rand.NewSource(1))
	sigs := make([][]uint64, n)
	for i := range sigs {
		sigs[i] = []uint64{rng.Uint64(), rng.Uint64()}
	}
	for _, mp := range []bool{false, true} {
		tables, err := BuildBits(sigs, k, l, 1, mp)
		if err != nil {
			t.Fatal(err)
		}
		delta := NewBitsDelta(k, l, mp)
		for i, s := range sigs {
			delta.Add(int32(i), s)
		}
		for i, s := range sigs {
			want := tables.Probe(s)
			got := delta.Probe(s, n)
			if len(got) != len(want) {
				t.Fatalf("mp=%v query %d: delta %v, tables %v", mp, i, got, want)
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("mp=%v query %d: delta %v, tables %v", mp, i, got, want)
				}
			}
		}
		// The visibility bound hides later appends from pinned readers.
		if ids := delta.Probe(sigs[0], 1); len(ids) != 1 || ids[0] != 0 {
			t.Fatalf("mp=%v bounded probe = %v, want [0] (self)", mp, ids)
		}
	}
}

// TestMinhashDeltaMatchesTables is the minhash twin of the bits test.
func TestMinhashDeltaMatchesTables(t *testing.T) {
	const n, k, l = 60, 4, 5
	rng := rand.New(rand.NewSource(2))
	sigs := make([][]uint32, n)
	for i := range sigs {
		s := make([]uint32, k*l)
		for j := range s {
			s[j] = rng.Uint32() % 16 // small alphabet: frequent collisions
		}
		sigs[i] = s
	}
	tables, err := BuildMinhash(sigs, k, l, 1)
	if err != nil {
		t.Fatal(err)
	}
	delta := NewMinhashDelta(k, l)
	for i, s := range sigs {
		delta.Add(int32(i), s)
	}
	for i, s := range sigs {
		want := tables.Probe(s)
		got := delta.Probe(s, n)
		if len(got) != len(want) {
			t.Fatalf("query %d: delta %v, tables %v", i, got, want)
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("query %d: delta %v, tables %v", i, got, want)
			}
		}
	}
	if ids := delta.Probe(sigs[0], 1); len(ids) != 1 || ids[0] != 0 {
		t.Fatalf("bounded probe = %v, want [0]", ids)
	}
}
