package lshindex

import (
	"testing"

	"bayeslsh/internal/pair"
	"bayeslsh/internal/rng"
)

// randomBitSigs generates n packed signatures of nbits bits.
func randomBitSigs(n, nbits int, seed uint64) [][]uint64 {
	src := rng.New(seed)
	sigs := make([][]uint64, n)
	for i := range sigs {
		s := make([]uint64, (nbits+63)/64)
		for w := range s {
			s[w] = src.Uint64()
		}
		sigs[i] = s
	}
	return sigs
}

// randomMinSigs generates n minhash signatures of h hashes with few
// distinct values, so bucket collisions actually occur.
func randomMinSigs(n, h int, seed uint64) [][]uint32 {
	src := rng.New(seed)
	sigs := make([][]uint32, n)
	for i := range sigs {
		s := make([]uint32, h)
		for j := range s {
			s[j] = uint32(src.Intn(4))
		}
		sigs[i] = s
	}
	return sigs
}

// partnersOf maps each id to the set of ids it is paired with.
func partnersOf(ps []pair.Pair, n int) []map[int32]bool {
	m := make([]map[int32]bool, n)
	for i := range m {
		m[i] = map[int32]bool{}
	}
	for _, p := range ps {
		m[p.A][p.B] = true
		m[p.B][p.A] = true
	}
	return m
}

// requireProbeMatches asserts that probing every corpus signature
// returns exactly its batch partners plus itself, in ascending order.
func requireProbeMatches(t *testing.T, n int, probe func(id int) []int32, batch []map[int32]bool) {
	t.Helper()
	for i := 0; i < n; i++ {
		ids := probe(i)
		for j := 1; j < len(ids); j++ {
			if ids[j] <= ids[j-1] {
				t.Fatalf("probe %d: ids not strictly ascending: %v", i, ids)
			}
		}
		got := map[int32]bool{}
		self := false
		for _, id := range ids {
			if id == int32(i) {
				self = true
				continue
			}
			got[id] = true
		}
		if !self {
			t.Fatalf("probe %d: missing the probed signature's own id", i)
		}
		if len(got) != len(batch[i]) {
			t.Fatalf("probe %d: %d partners, batch %d (%v vs %v)", i, len(got), len(batch[i]), got, batch[i])
		}
		for id := range batch[i] {
			if !got[id] {
				t.Fatalf("probe %d: missing batch partner %d", i, id)
			}
		}
	}
}

// TestBitsTablesProbeMatchesCandidates checks the tables' core
// contract: probing corpus signature i yields exactly the ids that
// batch candidate generation pairs i with (plus i itself).
func TestBitsTablesProbeMatchesCandidates(t *testing.T) {
	const n, k, l = 60, 4, 6
	sigs := randomBitSigs(n, k*l, 11)
	cands, err := CandidatesBits(sigs, k, l)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		tb, err := BuildBits(sigs, k, l, workers, false)
		if err != nil {
			t.Fatal(err)
		}
		requireProbeMatches(t, n, func(i int) []int32 { return tb.Probe(sigs[i]) }, partnersOf(cands, n))
	}
}

// TestBitsTablesMultiProbeMatchesCandidates does the same for the
// 1-step multi-probe collision condition.
func TestBitsTablesMultiProbeMatchesCandidates(t *testing.T) {
	const n, k, l = 60, 5, 4
	sigs := randomBitSigs(n, k*l, 12)
	cands, err := CandidatesBitsMultiProbe(sigs, k, l)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := BuildBits(sigs, k, l, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	requireProbeMatches(t, n, func(i int) []int32 { return tb.Probe(sigs[i]) }, partnersOf(cands, n))
}

// TestMinhashTablesProbeMatchesCandidates checks the minhash tables
// against batch minhash banding.
func TestMinhashTablesProbeMatchesCandidates(t *testing.T) {
	const n, k, l = 50, 3, 5
	sigs := randomMinSigs(n, k*l, 13)
	cands, err := CandidatesMinhash(sigs, k, l)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := BuildMinhash(sigs, k, l, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Bands() != l || tb.BandK() != k {
		t.Fatalf("shape accessors: %d/%d, want %d/%d", tb.Bands(), tb.BandK(), l, k)
	}
	requireProbeMatches(t, n, func(i int) []int32 { return tb.Probe(sigs[i]) }, partnersOf(cands, n))
}

// TestBuildTablesValidate checks input validation mirrors the batch
// entry points.
func TestBuildTablesValidate(t *testing.T) {
	sigs := randomBitSigs(4, 64, 1)
	if _, err := BuildBits(sigs, 8, 9, 1, false); err == nil {
		t.Fatal("expected error for too-short signatures")
	}
	if _, err := BuildMinhash(randomMinSigs(4, 6, 1), 3, 3, 1); err == nil {
		t.Fatal("expected error for too-short minhash signatures")
	}
}
