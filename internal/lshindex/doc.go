// Package lshindex implements candidate generation for all-pairs
// similarity search with locality-sensitive hashing, as described in
// §2 of the BayesLSH paper: every object is assigned l signatures,
// each the concatenation of k hashes, and any two objects sharing at
// least one signature become a candidate pair.
//
// For a per-hash collision probability p (p = t for Jaccard minhash,
// p = 1 − arccos(t)/π for cosine hyperplane hashes at threshold t),
// the number of length-k signatures needed for an expected false
// negative rate ε is
//
//	l = ⌈ log ε / log(1 − p^k) ⌉
//
// (Xiao et al., TODS 2011), which NumTables computes. The multi-probe
// variant (Lv et al., VLDB 2007 — reference [17] of the paper) also
// probes the buckets whose band key differs in one bit, reaching the
// same false negative rate with far fewer tables.
//
// # Sharded banding
//
// The l hash tables are mutually independent, so the *Parallel
// variants assign each band to a worker: a band buckets every
// signature, enumerates its within-band collisions into its own list,
// and the lists are deduplicated across bands afterwards. Band keys
// depend only on the signatures and the band index, so the candidate
// set is identical to the sequential scan for any worker count.
package lshindex
