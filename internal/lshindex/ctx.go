package lshindex

import (
	"context"
	"sync"

	"bayeslsh/internal/pair"
	"bayeslsh/internal/shard"
)

// Context-aware candidate generation. Cancellation is polled between
// bands by the shard dispatch and, within a band, between buckets of
// the collision enumeration — the stage whose volume explodes as the
// threshold drops (the paper's §5 worst case), and therefore the stage
// a canceled low-threshold join most needs to escape from. A canceled
// call returns (nil, ctx.Err()) with all band workers drained; a
// non-cancelable ctx takes the plain code paths unchanged.

// CandidatesBitsCtx is CandidatesBitsParallel with cooperative
// cancellation.
func CandidatesBitsCtx(ctx context.Context, sigs [][]uint64, k, l, workers int) ([]pair.Pair, error) {
	if ctx.Done() == nil {
		return CandidatesBitsParallel(sigs, k, l, workers)
	}
	if err := validateBits(sigs, k, l); err != nil {
		return nil, err
	}
	return runBandsCtx(ctx, len(sigs), l, workers, func(band int, stop *shard.Stopper) []pair.Pair {
		buckets := make(map[uint64][]int32)
		fillBitsBuckets(buckets, sigs, band, k)
		return appendBucketPairs(nil, buckets, stop)
	})
}

// CandidatesBitsMultiProbeCtx is CandidatesBitsMultiProbeParallel with
// cooperative cancellation.
func CandidatesBitsMultiProbeCtx(ctx context.Context, sigs [][]uint64, k, l, workers int) ([]pair.Pair, error) {
	if ctx.Done() == nil {
		return CandidatesBitsMultiProbeParallel(sigs, k, l, workers)
	}
	if err := validateBits(sigs, k, l); err != nil {
		return nil, err
	}
	return runBandsCtx(ctx, len(sigs), l, workers, func(band int, stop *shard.Stopper) []pair.Pair {
		buckets := make(map[uint64][]int32)
		fillBitsBuckets(buckets, sigs, band, k)
		ps := appendBucketPairs(nil, buckets, stop)
		forProbePairs(buckets, k, stop, func(a, b int32) { ps = append(ps, pair.Make(a, b)) })
		return ps
	})
}

// CandidatesMinhashCtx is CandidatesMinhashParallel with cooperative
// cancellation.
func CandidatesMinhashCtx(ctx context.Context, sigs [][]uint32, k, l, workers int) ([]pair.Pair, error) {
	if ctx.Done() == nil {
		return CandidatesMinhashParallel(sigs, k, l, workers)
	}
	if err := validateMinhash(sigs, k, l); err != nil {
		return nil, err
	}
	return runBandsCtx(ctx, len(sigs), l, workers, func(band int, stop *shard.Stopper) []pair.Pair {
		buckets := make(map[uint64][]int32)
		scratch := make([]uint64, (k+1)/2)
		fillMinhashBuckets(buckets, sigs, band, k, scratch)
		return appendBucketPairs(nil, buckets, stop)
	})
}

// runBandsCtx is runBands with cooperative cancellation: bands stop
// being dispatched once ctx is done, a band abandoned mid-enumeration
// contributes nothing, and the partially merged candidate set is
// discarded. The surviving-path output is identical to runBands (the
// deduplicating set makes merge order irrelevant and the engine sorts
// afterwards).
func runBandsCtx(ctx context.Context, n, l, workers int, bandPairs func(band int, stop *shard.Stopper) []pair.Pair) ([]pair.Pair, error) {
	stop := shard.NewStopper(ctx)
	defer stop.Close()
	var mu sync.Mutex
	set := pair.NewSet(n)
	err := shard.RunCtx(ctx, l, workers, 1, func(_, _, band int) {
		ps := bandPairs(band, stop)
		if stop.Stopped() {
			return
		}
		mu.Lock()
		for _, p := range ps {
			set.Add(p.A, p.B)
		}
		mu.Unlock()
	})
	if err != nil {
		return nil, err
	}
	return set.Pairs(), nil
}
