// Built hash tables for query serving: the candidate-generation
// functions in this package enumerate within-bucket pairs and discard
// the tables, which is right for one batch join but wasteful when the
// same corpus answers many point queries. BitsTables and MinhashTables
// keep the l banded tables resident so a single out-of-corpus
// signature can be probed against them: the query's band keys are
// computed exactly as the corpus keys were, so a query equal to corpus
// vector i collides with precisely the vectors i collides with in the
// batch scan — the property the engine's query-vs-batch consistency
// guarantee rests on. Tables are immutable after Build and safe for
// any number of concurrent Probe calls.

package lshindex

import (
	"sort"

	"bayeslsh/internal/shard"
)

// BitsTables is a built set of l banded hash tables over packed bit
// signatures (cosine hyperplane hashes), serving point probes.
type BitsTables struct {
	k, l       int
	multiProbe bool
	tables     []map[uint64][]int32
}

// BuildBits builds l banded tables of k bits per band over the corpus
// signatures, sharding table construction over workers goroutines.
// multiProbe enables 1-step multi-probe at query time (each probe also
// inspects the k buckets whose band key differs in one bit), matching
// CandidatesBitsMultiProbe's collision condition.
func BuildBits(sigs [][]uint64, k, l, workers int, multiProbe bool) (*BitsTables, error) {
	if err := validateBits(sigs, k, l); err != nil {
		return nil, err
	}
	t := &BitsTables{k: k, l: l, multiProbe: multiProbe, tables: make([]map[uint64][]int32, l)}
	shard.Run(l, workers, 1, func(_, _, band int) {
		buckets := make(map[uint64][]int32)
		fillBitsBuckets(buckets, sigs, band, k)
		t.tables[band] = buckets
	})
	return t, nil
}

// Bands returns the number of tables l.
func (t *BitsTables) Bands() int { return t.l }

// BandK returns the number of bits per band.
func (t *BitsTables) BandK() int { return t.k }

// Probe returns the ids of corpus vectors sharing a bucket with sig in
// any band (plus, with multi-probe, any bucket at Hamming distance one
// from sig's band key), deduplicated and in ascending id order. sig
// must cover at least k*l bits.
func (t *BitsTables) Probe(sig []uint64) []int32 {
	seen := make(map[int32]struct{})
	for band := 0; band < t.l; band++ {
		key := bitsBand(sig, band*t.k, t.k)
		for _, id := range t.tables[band][key] {
			seen[id] = struct{}{}
		}
		if t.multiProbe {
			for b := 0; b < t.k; b++ {
				for _, id := range t.tables[band][key^(1<<b)] {
					seen[id] = struct{}{}
				}
			}
		}
	}
	return sortedIDs(seen)
}

// MinhashTables is a built set of l banded hash tables over minhash
// signatures, serving point probes.
type MinhashTables struct {
	k, l   int
	tables []map[uint64][]int32
}

// BuildMinhash builds l banded tables of k minhashes per band over the
// corpus signatures, sharding table construction over workers
// goroutines.
func BuildMinhash(sigs [][]uint32, k, l, workers int) (*MinhashTables, error) {
	if err := validateMinhash(sigs, k, l); err != nil {
		return nil, err
	}
	t := &MinhashTables{k: k, l: l, tables: make([]map[uint64][]int32, l)}
	shard.Run(l, workers, 1, func(_, _, band int) {
		buckets := make(map[uint64][]int32)
		scratch := make([]uint64, (k+1)/2)
		fillMinhashBuckets(buckets, sigs, band, k, scratch)
		t.tables[band] = buckets
	})
	return t, nil
}

// Bands returns the number of tables l.
func (t *MinhashTables) Bands() int { return t.l }

// BandK returns the number of minhashes per band.
func (t *MinhashTables) BandK() int { return t.k }

// Probe returns the ids of corpus vectors sharing a bucket with sig in
// any band, deduplicated and in ascending id order. sig must cover at
// least k*l hashes.
func (t *MinhashTables) Probe(sig []uint32) []int32 {
	seen := make(map[int32]struct{})
	scratch := make([]uint64, (t.k+1)/2)
	for band := 0; band < t.l; band++ {
		key := minhashBandKey(sig, band, t.k, scratch)
		for _, id := range t.tables[band][key] {
			seen[id] = struct{}{}
		}
	}
	return sortedIDs(seen)
}

// minhashBandKey computes the band key of hash positions
// [band*k, (band+1)*k) of sig — the same key fillMinhashBuckets
// assigns, factored out so table fills and probes cannot drift apart.
func minhashBandKey(sig []uint32, band, k int, scratch []uint64) uint64 {
	for i := range scratch {
		scratch[i] = 0
	}
	from := band * k
	for i := 0; i < k; i++ {
		scratch[i/2] |= uint64(sig[from+i]) << (32 * (i % 2))
	}
	return fnv1a64(uint64(band)+1, scratch)
}

// sortedIDs flattens a seen-set into an ascending id slice.
func sortedIDs(seen map[int32]struct{}) []int32 {
	if len(seen) == 0 {
		return nil
	}
	ids := make([]int32, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
