package lshindex

import (
	"fmt"
	"math"

	"bayeslsh/internal/pair"
	"bayeslsh/internal/shard"
)

// NumTables returns l = ⌈log ε / log(1 − p^k)⌉, the number of banded
// hash tables required so that a pair with per-hash collision
// probability p is missed with probability at most eps.
func NumTables(p float64, k int, eps float64) int {
	if p <= 0 {
		return 1
	}
	if p >= 1 {
		return 1
	}
	if k <= 0 || eps <= 0 || eps >= 1 {
		panic("lshindex: NumTables needs k > 0 and eps in (0,1)")
	}
	pk := math.Pow(p, float64(k))
	if pk >= 1 {
		return 1
	}
	l := math.Ceil(math.Log(eps) / math.Log(1-pk))
	if l < 1 {
		return 1
	}
	return int(l)
}

// fnv1a64 hashes b with the 64-bit FNV-1a function, seeded.
func fnv1a64(seed uint64, words []uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset) ^ seed*prime
	for _, w := range words {
		for s := 0; s < 64; s += 8 {
			h ^= (w >> s) & 0xff
			h *= prime
		}
	}
	return h
}

// bitsBand extracts bits [from, from+k) of a packed bit signature as a
// uint64. k must be at most 64.
func bitsBand(sig []uint64, from, k int) uint64 {
	word, off := from/64, from%64
	v := sig[word] >> off
	if off+k > 64 {
		v |= sig[word+1] << (64 - off)
	}
	if k < 64 {
		v &= (1 << k) - 1
	}
	return v
}

// CandidatesBits generates candidate pairs from packed bit signatures
// (cosine hyperplane hashes). Band j covers bits [j*k, (j+1)*k). It
// returns an error if the signatures are too short for l bands of k
// bits. k must be in [1, 64].
func CandidatesBits(sigs [][]uint64, k, l int) ([]pair.Pair, error) {
	if err := validateBits(sigs, k, l); err != nil {
		return nil, err
	}
	set := pair.NewSet(len(sigs))
	buckets := make(map[uint64][]int32)
	for band := 0; band < l; band++ {
		clear(buckets)
		fillBitsBuckets(buckets, sigs, band, k)
		collectBuckets(set, buckets)
	}
	return set.Pairs(), nil
}

// fillBitsBuckets buckets band band of every packed bit signature by
// its raw k-bit band value.
func fillBitsBuckets(buckets map[uint64][]int32, sigs [][]uint64, band, k int) {
	from := band * k
	for id, sig := range sigs {
		key := bitsBand(sig, from, k)
		buckets[key] = append(buckets[key], int32(id))
	}
}

// CandidatesMinhash generates candidate pairs from minhash signatures.
// Band j covers hash positions [j*k, (j+1)*k); the band key is a
// 64-bit hash of those k values. It returns an error if signatures
// are too short.
func CandidatesMinhash(sigs [][]uint32, k, l int) ([]pair.Pair, error) {
	if err := validateMinhash(sigs, k, l); err != nil {
		return nil, err
	}
	set := pair.NewSet(len(sigs))
	buckets := make(map[uint64][]int32)
	scratch := make([]uint64, (k+1)/2)
	for band := 0; band < l; band++ {
		clear(buckets)
		fillMinhashBuckets(buckets, sigs, band, k, scratch)
		collectBuckets(set, buckets)
	}
	return set.Pairs(), nil
}

// fillMinhashBuckets hashes band band of every signature into buckets.
func fillMinhashBuckets(buckets map[uint64][]int32, sigs [][]uint32, band, k int, scratch []uint64) {
	for id, sig := range sigs {
		key := minhashBandKey(sig, band, k, scratch)
		buckets[key] = append(buckets[key], int32(id))
	}
}

func collectBuckets(set *pair.Set, buckets map[uint64][]int32) {
	forBucketPairs(buckets, nil, func(a, b int32) { set.Add(a, b) })
}

// forBucketPairs enumerates every within-bucket pair of ids. Each id
// appears in exactly one bucket, so no pair is emitted twice. stop
// (nil for "not cancelable") is polled between buckets and between
// rows of one bucket's quadratic enumeration — the stage whose volume
// explodes as the threshold drops; an aborted enumeration's output is
// discarded by the ctx-aware callers.
func forBucketPairs(buckets map[uint64][]int32, stop *shard.Stopper, emit func(a, b int32)) {
	for _, ids := range buckets {
		if len(ids) < 2 {
			continue
		}
		for i := 0; i < len(ids); i++ {
			if stop.Stopped() {
				return
			}
			for j := i + 1; j < len(ids); j++ {
				emit(ids[i], ids[j])
			}
		}
	}
}

// validateBits checks packed bit signatures against l bands of k bits.
func validateBits(sigs [][]uint64, k, l int) error {
	if k < 1 || k > 64 {
		return fmt.Errorf("lshindex: k = %d outside [1, 64]", k)
	}
	if l < 1 {
		return fmt.Errorf("lshindex: l = %d must be positive", l)
	}
	for i, s := range sigs {
		if len(s)*64 < k*l {
			return fmt.Errorf("lshindex: signature %d has %d bits, need %d", i, len(s)*64, k*l)
		}
	}
	return nil
}

// validateMinhash checks minhash signatures against l bands of k
// hashes.
func validateMinhash(sigs [][]uint32, k, l int) error {
	if k < 1 {
		return fmt.Errorf("lshindex: k = %d must be positive", k)
	}
	if l < 1 {
		return fmt.Errorf("lshindex: l = %d must be positive", l)
	}
	for i, s := range sigs {
		if len(s) < k*l {
			return fmt.Errorf("lshindex: signature %d has %d hashes, need %d", i, len(s), k*l)
		}
	}
	return nil
}
