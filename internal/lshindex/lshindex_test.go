package lshindex

import (
	"math"
	"testing"

	"bayeslsh/internal/exact"
	"bayeslsh/internal/minhash"
	"bayeslsh/internal/sighash"
	"bayeslsh/internal/testutil"
)

func TestNumTablesFormula(t *testing.T) {
	// l = ceil(log eps / log(1 - p^k))
	cases := []struct {
		p    float64
		k    int
		eps  float64
		want int
	}{
		{0.5, 2, 0.03, int(math.Ceil(math.Log(0.03) / math.Log(1-0.25)))},
		{0.9, 4, 0.03, int(math.Ceil(math.Log(0.03) / math.Log(1-math.Pow(0.9, 4))))},
		{0.7, 3, 0.05, int(math.Ceil(math.Log(0.05) / math.Log(1-math.Pow(0.7, 3))))},
	}
	for _, c := range cases {
		if got := NumTables(c.p, c.k, c.eps); got != c.want {
			t.Errorf("NumTables(%v,%d,%v) = %d, want %d", c.p, c.k, c.eps, got, c.want)
		}
	}
	if got := NumTables(0, 3, 0.03); got != 1 {
		t.Errorf("p=0 should give 1 table, got %d", got)
	}
	if got := NumTables(1, 3, 0.03); got != 1 {
		t.Errorf("p=1 should give 1 table, got %d", got)
	}
}

func TestNumTablesPanicsOnBadArgs(t *testing.T) {
	for _, f := range []func(){
		func() { NumTables(0.5, 0, 0.03) },
		func() { NumTables(0.5, 2, 0) },
		func() { NumTables(0.5, 2, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad args did not panic")
				}
			}()
			f()
		}()
	}
}

func TestCandidatesBitsRecall(t *testing.T) {
	// Pairs above the threshold should almost all be generated when l
	// is chosen by the ε formula.
	c := testutil.SmallTextCorpus(t, 300, 21)
	th := 0.7
	k := 8
	p := sighash.CosineToR(th)
	l := NumTables(p, k, 0.03)
	fam := sighash.NewFamily(c.Dim, k*l, 77)
	sigs := fam.SignatureAll(c)
	cands, err := CandidatesBits(sigs, k, l)
	if err != nil {
		t.Fatal(err)
	}
	truth := exact.Search(c, exact.Cosine, th)
	if len(truth) == 0 {
		t.Fatal("test corpus has no similar pairs; regenerate with different seed")
	}
	ck := testutil.PairKeySet(cands)
	hit := 0
	for _, r := range truth {
		if _, ok := ck[r.Pair().Key()]; ok {
			hit++
		}
	}
	recall := float64(hit) / float64(len(truth))
	if recall < 0.9 {
		t.Errorf("bit-LSH recall = %v (%d/%d), want >= 0.9", recall, hit, len(truth))
	}
}

func TestCandidatesMinhashRecall(t *testing.T) {
	c := testutil.SmallBinaryCorpus(t, 300, 22)
	th := 0.5
	k := 2
	l := NumTables(th, k, 0.03)
	fam := minhash.NewFamily(k*l, 88)
	sigs := fam.SignatureAll(c)
	cands, err := CandidatesMinhash(sigs, k, l)
	if err != nil {
		t.Fatal(err)
	}
	truth := exact.Search(c, exact.Jaccard, th)
	if len(truth) == 0 {
		t.Fatal("test corpus has no similar pairs; regenerate with different seed")
	}
	ck := testutil.PairKeySet(cands)
	hit := 0
	for _, r := range truth {
		if _, ok := ck[r.Pair().Key()]; ok {
			hit++
		}
	}
	recall := float64(hit) / float64(len(truth))
	if recall < 0.9 {
		t.Errorf("minhash-LSH recall = %v (%d/%d), want >= 0.9", recall, hit, len(truth))
	}
}

func TestCandidatesErrorsOnShortSignatures(t *testing.T) {
	if _, err := CandidatesBits([][]uint64{{0}}, 32, 3); err == nil {
		t.Error("short bit signatures accepted")
	}
	if _, err := CandidatesMinhash([][]uint32{{1, 2}}, 2, 2); err == nil {
		t.Error("short minhash signatures accepted")
	}
	if _, err := CandidatesBits([][]uint64{{0}}, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := CandidatesBits([][]uint64{{0}}, 65, 1); err == nil {
		t.Error("k=65 accepted")
	}
	if _, err := CandidatesBits([][]uint64{{0}}, 8, 0); err == nil {
		t.Error("l=0 accepted")
	}
	if _, err := CandidatesMinhash([][]uint32{{1, 2}}, 0, 1); err == nil {
		t.Error("minhash k=0 accepted")
	}
	if _, err := CandidatesMinhash([][]uint32{{1, 2}}, 1, 0); err == nil {
		t.Error("minhash l=0 accepted")
	}
}

func TestCandidatesBitsNoDuplicatesNoSelf(t *testing.T) {
	c := testutil.SmallTextCorpus(t, 150, 23)
	fam := sighash.NewFamily(c.Dim, 64, 5)
	sigs := fam.SignatureAll(c)
	cands, err := CandidatesBits(sigs, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, p := range cands {
		if p.A == p.B {
			t.Fatalf("self pair %v", p)
		}
		if p.A > p.B {
			t.Fatalf("unnormalized pair %v", p)
		}
		if seen[p.Key()] {
			t.Fatalf("duplicate pair %v", p)
		}
		seen[p.Key()] = true
	}
}

func TestIdenticalSignaturesAlwaysCandidates(t *testing.T) {
	sigs := [][]uint64{{0xdeadbeef}, {0xdeadbeef}, {0x12345678}}
	cands, err := CandidatesBits(sigs, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range cands {
		if p.A == 0 && p.B == 1 {
			found = true
		}
	}
	if !found {
		t.Error("identical signatures did not collide")
	}
}

func TestBitsBandExtraction(t *testing.T) {
	sig := []uint64{0xffffffff00000000, 0x00000000ffffffff}
	if got := bitsBand(sig, 0, 32); got != 0 {
		t.Errorf("band[0:32] = %x", got)
	}
	if got := bitsBand(sig, 32, 32); got != 0xffffffff {
		t.Errorf("band[32:64] = %x", got)
	}
	// Straddling a word boundary.
	if got := bitsBand(sig, 48, 32); got != 0xffff_ffff {
		t.Errorf("band[48:80] = %x", got)
	}
	if got := bitsBand(sig, 96, 32); got != 0 {
		t.Errorf("band[96:128] = %x", got)
	}
}
