package lshindex

import (
	"math"

	"bayeslsh/internal/pair"
	"bayeslsh/internal/shard"
)

// Multi-probe LSH (Lv, Josephson, Wang, Charikar, Li, VLDB 2007 —
// reference [17] of the BayesLSH paper) trades probes for tables:
// besides its own bucket, each signature also probes the buckets
// whose band keys differ in exactly one bit. A pair then collides in
// a band if at most one of the band's k bits disagrees, which happens
// with probability
//
//	p₁ = p^k + k·p^(k−1)·(1−p)
//
// per band for per-hash collision probability p, so far fewer bands
// reach the same false negative rate — at the cost of k extra probes
// per signature per band.

// NumTablesMultiProbe returns l = ⌈log ε / log(1 − p₁)⌉ for 1-step
// multi-probe banding.
func NumTablesMultiProbe(p float64, k int, eps float64) int {
	if p <= 0 || p >= 1 {
		return 1
	}
	if k <= 0 || eps <= 0 || eps >= 1 {
		panic("lshindex: NumTablesMultiProbe needs k > 0 and eps in (0,1)")
	}
	pk := math.Pow(p, float64(k))
	p1 := pk + float64(k)*math.Pow(p, float64(k-1))*(1-p)
	if p1 >= 1 {
		return 1
	}
	l := math.Ceil(math.Log(eps) / math.Log(1-p1))
	if l < 1 {
		return 1
	}
	return int(l)
}

// CandidatesBitsMultiProbe generates candidate pairs from packed bit
// signatures with 1-step multi-probing: each signature is inserted
// into its own bucket and additionally probes the k buckets whose
// band key differs in one bit. Pairs whose band keys are within
// Hamming distance one therefore collide. k must be in [1, 64].
func CandidatesBitsMultiProbe(sigs [][]uint64, k, l int) ([]pair.Pair, error) {
	if err := validateBits(sigs, k, l); err != nil {
		return nil, err
	}
	set := pair.NewSet(len(sigs))
	buckets := make(map[uint64][]int32)
	for band := 0; band < l; band++ {
		clear(buckets)
		fillBitsBuckets(buckets, sigs, band, k)
		// Exact-key collisions.
		collectBuckets(set, buckets)
		// One-bit probes.
		forProbePairs(buckets, k, nil, func(a, b int32) { set.Add(a, b) })
	}
	return set.Pairs(), nil
}

// forProbePairs pairs each bucket's occupants with the occupants of
// every bucket at Hamming distance one from its key. Each unordered
// (key, key^bit) bucket pair is handled once, from the lower-key side,
// and two keys differ in exactly one bit position, so no pair is
// emitted twice. stop (nil for "not cancelable") is polled between
// bucket neighbor pairs, under the forBucketPairs contract.
func forProbePairs(buckets map[uint64][]int32, k int, stop *shard.Stopper, emit func(a, b int32)) {
	for key, ids := range buckets {
		for b := 0; b < k; b++ {
			if stop.Stopped() {
				return
			}
			neighbor := key ^ (1 << b)
			if neighbor < key {
				continue
			}
			others, ok := buckets[neighbor]
			if !ok {
				continue
			}
			for _, a := range ids {
				for _, o := range others {
					emit(a, o)
				}
			}
		}
	}
}
