// Snapshot codec of the built band tables. Buckets are written in
// ascending key order so the same build always produces the same
// bytes (Go map iteration order would otherwise shuffle them run to
// run); decoding validates band shape and id ranges so a corrupt
// snapshot fails cleanly instead of producing out-of-range probes.

package lshindex

import (
	"sort"

	"bayeslsh/internal/snapshot"
)

// WriteSnapshot serializes the tables: band shape, then per band the
// bucket count and each bucket's key and ids in ascending key order.
func (t *BitsTables) WriteSnapshot(w *snapshot.Writer) {
	w.U32(uint32(t.k))
	w.U32(uint32(t.l))
	w.Bool(t.multiProbe)
	writeBuckets(w, t.tables)
}

// ReadBitsTablesSnapshot decodes tables written by
// BitsTables.WriteSnapshot over a corpus of n vectors.
func ReadBitsTablesSnapshot(r *snapshot.Reader, n int) (*BitsTables, error) {
	t := &BitsTables{k: int(r.U32()), l: int(r.U32()), multiProbe: r.Bool()}
	if r.Err() == nil && (t.k < 1 || t.k > 64 || t.l < 1) {
		return nil, snapshot.Failf(r, "band shape k=%d l=%d", t.k, t.l)
	}
	var err error
	if t.tables, err = readBuckets(r, t.l, n); err != nil {
		return nil, err
	}
	return t, nil
}

// WriteSnapshot serializes the tables: band shape, then per band the
// bucket count and each bucket's key and ids in ascending key order.
func (t *MinhashTables) WriteSnapshot(w *snapshot.Writer) {
	w.U32(uint32(t.k))
	w.U32(uint32(t.l))
	writeBuckets(w, t.tables)
}

// ReadMinhashTablesSnapshot decodes tables written by
// MinhashTables.WriteSnapshot over a corpus of n vectors.
func ReadMinhashTablesSnapshot(r *snapshot.Reader, n int) (*MinhashTables, error) {
	t := &MinhashTables{k: int(r.U32()), l: int(r.U32())}
	if r.Err() == nil && (t.k < 1 || t.l < 1) {
		return nil, snapshot.Failf(r, "band shape k=%d l=%d", t.k, t.l)
	}
	var err error
	if t.tables, err = readBuckets(r, t.l, n); err != nil {
		return nil, err
	}
	return t, nil
}

// writeBuckets serializes per-band bucket maps in ascending key order.
func writeBuckets(w *snapshot.Writer, tables []map[uint64][]int32) {
	for _, buckets := range tables {
		keys := make([]uint64, 0, len(buckets))
		for k := range buckets {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		w.U64(uint64(len(keys)))
		for _, k := range keys {
			w.U64(k)
			w.I32s(buckets[k])
		}
	}
}

// readBuckets decodes l per-band bucket maps, validating that every
// bucketed id addresses one of the n corpus vectors. Like every other
// decoded length, l is bounded by the bytes actually present (each
// band carries at least its 8-byte bucket count) before any
// allocation, so a forged band count cannot over-allocate.
func readBuckets(r *snapshot.Reader, l, n int) ([]map[uint64][]int32, error) {
	if l < 1 || r.Err() != nil {
		return nil, r.Err()
	}
	if l > r.Remaining()/8 {
		return nil, snapshot.Failf(r, "band count %d exceeds remaining %d bytes", l, r.Remaining())
	}
	tables := make([]map[uint64][]int32, l)
	for band := range tables {
		nb := r.Len(16) // per bucket: key + id-count prefix
		if r.Err() != nil {
			return nil, r.Err()
		}
		buckets := make(map[uint64][]int32, nb)
		for i := 0; i < nb; i++ {
			key := r.U64()
			ids := r.I32s()
			if r.Err() != nil {
				return nil, r.Err()
			}
			for _, id := range ids {
				if id < 0 || int(id) >= n {
					return nil, snapshot.Failf(r, "band %d bucket %d: id %d outside corpus of %d", band, i, id, n)
				}
			}
			if _, dup := buckets[key]; dup {
				return nil, snapshot.Failf(r, "band %d: duplicate bucket key %d", band, key)
			}
			buckets[key] = ids
		}
		tables[band] = buckets
	}
	return tables, nil
}
