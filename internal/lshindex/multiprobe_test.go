package lshindex

import (
	"math"
	"testing"

	"bayeslsh/internal/exact"
	"bayeslsh/internal/sighash"
	"bayeslsh/internal/testutil"
)

func TestNumTablesMultiProbeSmallerThanPlain(t *testing.T) {
	for _, c := range []struct {
		p   float64
		k   int
		eps float64
	}{{0.7, 8, 0.03}, {0.85, 8, 0.03}, {0.5, 4, 0.05}} {
		plain := NumTables(c.p, c.k, c.eps)
		mp := NumTablesMultiProbe(c.p, c.k, c.eps)
		if mp >= plain {
			t.Errorf("p=%v k=%d: multiprobe needs %d tables, plain %d", c.p, c.k, mp, plain)
		}
		// Formula check.
		pk := math.Pow(c.p, float64(c.k))
		p1 := pk + float64(c.k)*math.Pow(c.p, float64(c.k-1))*(1-c.p)
		want := int(math.Ceil(math.Log(c.eps) / math.Log(1-p1)))
		if mp != want {
			t.Errorf("NumTablesMultiProbe = %d, want %d", mp, want)
		}
	}
	if got := NumTablesMultiProbe(0, 4, 0.03); got != 1 {
		t.Errorf("p=0 should give 1 table, got %d", got)
	}
	if got := NumTablesMultiProbe(1, 4, 0.03); got != 1 {
		t.Errorf("p=1 should give 1 table, got %d", got)
	}
}

func TestNumTablesMultiProbePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad args did not panic")
		}
	}()
	NumTablesMultiProbe(0.5, 0, 0.03)
}

func TestMultiProbeSupersetOfPlainBands(t *testing.T) {
	// With identical k and l, multi-probe candidates must be a
	// superset of plain banding candidates.
	c := testutil.SmallTextCorpus(t, 200, 41)
	fam := sighash.NewFamily(c.Dim, 128, 3)
	sigs := fam.SignatureAll(c)
	plain, err := CandidatesBits(sigs, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := CandidatesBitsMultiProbe(sigs, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	mk := testutil.PairKeySet(mp)
	for _, p := range plain {
		if _, ok := mk[p.Key()]; !ok {
			t.Fatalf("plain candidate %v missing from multi-probe set", p)
		}
	}
	if len(mp) <= len(plain) {
		t.Errorf("multi-probe (%d) not larger than plain (%d)", len(mp), len(plain))
	}
}

func TestMultiProbeRecallWithFewerTables(t *testing.T) {
	// Multi-probe with its (smaller) table budget must still reach
	// high recall against exact ground truth.
	c := testutil.SmallTextCorpus(t, 300, 42)
	th := 0.7
	k := 8
	p := sighash.CosineToR(th)
	l := NumTablesMultiProbe(p, k, 0.03)
	if plain := NumTables(p, k, 0.03); l >= plain {
		t.Fatalf("multiprobe tables %d not smaller than plain %d", l, plain)
	}
	fam := sighash.NewFamily(c.Dim, k*l, 43)
	sigs := fam.SignatureAll(c)
	cands, err := CandidatesBitsMultiProbe(sigs, k, l)
	if err != nil {
		t.Fatal(err)
	}
	truth := exact.Search(c, exact.Cosine, th)
	if len(truth) == 0 {
		t.Fatal("corpus has no similar pairs")
	}
	ck := testutil.PairKeySet(cands)
	hit := 0
	for _, r := range truth {
		if _, ok := ck[r.Pair().Key()]; ok {
			hit++
		}
	}
	if recall := float64(hit) / float64(len(truth)); recall < 0.9 {
		t.Errorf("multi-probe recall = %v (%d/%d)", recall, hit, len(truth))
	}
}

func TestMultiProbeValidation(t *testing.T) {
	if _, err := CandidatesBitsMultiProbe([][]uint64{{0}}, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := CandidatesBitsMultiProbe([][]uint64{{0}}, 65, 1); err == nil {
		t.Error("k=65 accepted")
	}
	if _, err := CandidatesBitsMultiProbe([][]uint64{{0}}, 8, 0); err == nil {
		t.Error("l=0 accepted")
	}
	if _, err := CandidatesBitsMultiProbe([][]uint64{{0}}, 32, 9); err == nil {
		t.Error("short signatures accepted")
	}
}

func TestMultiProbeHammingOneCollides(t *testing.T) {
	// Signatures whose single band differs in exactly one bit must
	// become candidates under multi-probe (and not under plain bands).
	sigs := [][]uint64{{0b10110010}, {0b10110011}, {0b01001100}}
	plain, err := CandidatesBits(sigs, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plain {
		if p.A == 0 && p.B == 1 {
			t.Fatal("plain banding should not collide Hamming-1 keys")
		}
	}
	mp, err := CandidatesBitsMultiProbe(sigs, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	found01 := false
	for _, p := range mp {
		if p.A == 0 && p.B == 1 {
			found01 = true
		}
		if p.B == 2 {
			t.Fatalf("distant keys collided: %v", p)
		}
	}
	if !found01 {
		t.Error("Hamming-1 neighbors did not collide under multi-probe")
	}
}
