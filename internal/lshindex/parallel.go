// Sharded candidate generation: the l hash tables (bands) are
// independent of one another, so each band's bucketing and collision
// enumeration runs on its own worker, and only the merge into the
// shared deduplicating set is serialized (under a mutex, as each band
// completes). Band keys depend only on the signatures and the band
// index, never on scheduling, so the candidate set is identical to
// the sequential scan for any worker count; only the set's insertion
// order differs — no more than sequential runs already differ among
// themselves through map iteration order. Callers that need a
// canonical order sort the pairs (the engine does). Peak memory is
// the unique candidate set plus at most one band's collision list per
// worker in flight.

package lshindex

import (
	"sync"

	"bayeslsh/internal/pair"
	"bayeslsh/internal/shard"
)

// CandidatesBitsParallel is CandidatesBits with the l bands sharded
// over workers goroutines. workers <= 1 falls back to the sequential
// scan.
func CandidatesBitsParallel(sigs [][]uint64, k, l, workers int) ([]pair.Pair, error) {
	if workers <= 1 || l == 1 {
		return CandidatesBits(sigs, k, l)
	}
	if err := validateBits(sigs, k, l); err != nil {
		return nil, err
	}
	return runBands(len(sigs), l, workers, func(band int) []pair.Pair {
		buckets := make(map[uint64][]int32)
		fillBitsBuckets(buckets, sigs, band, k)
		return appendBucketPairs(nil, buckets, nil)
	}), nil
}

// CandidatesBitsMultiProbeParallel is CandidatesBitsMultiProbe with
// the l bands sharded over workers goroutines.
func CandidatesBitsMultiProbeParallel(sigs [][]uint64, k, l, workers int) ([]pair.Pair, error) {
	if workers <= 1 || l == 1 {
		return CandidatesBitsMultiProbe(sigs, k, l)
	}
	if err := validateBits(sigs, k, l); err != nil {
		return nil, err
	}
	return runBands(len(sigs), l, workers, func(band int) []pair.Pair {
		buckets := make(map[uint64][]int32)
		fillBitsBuckets(buckets, sigs, band, k)
		ps := appendBucketPairs(nil, buckets, nil)
		forProbePairs(buckets, k, nil, func(a, b int32) { ps = append(ps, pair.Make(a, b)) })
		return ps
	}), nil
}

// CandidatesMinhashParallel is CandidatesMinhash with the l bands
// sharded over workers goroutines.
func CandidatesMinhashParallel(sigs [][]uint32, k, l, workers int) ([]pair.Pair, error) {
	if workers <= 1 || l == 1 {
		return CandidatesMinhash(sigs, k, l)
	}
	if err := validateMinhash(sigs, k, l); err != nil {
		return nil, err
	}
	return runBands(len(sigs), l, workers, func(band int) []pair.Pair {
		buckets := make(map[uint64][]int32)
		scratch := make([]uint64, (k+1)/2)
		fillMinhashBuckets(buckets, sigs, band, k, scratch)
		return appendBucketPairs(nil, buckets, nil)
	}), nil
}

// appendBucketPairs appends every within-bucket pair to ps, polling
// stop (nil for "not cancelable") under the forBucketPairs contract.
// Within one band each id occupies exactly one bucket, so the result
// needs no per-band deduplication.
func appendBucketPairs(ps []pair.Pair, buckets map[uint64][]int32, stop *shard.Stopper) []pair.Pair {
	forBucketPairs(buckets, stop, func(a, b int32) { ps = append(ps, pair.Make(a, b)) })
	return ps
}

// runBands evaluates bandPairs for every band on a worker pool and
// deduplicates the collision lists into one candidate set as bands
// complete, so only in-flight bands hold undeduplicated pairs.
func runBands(n, l, workers int, bandPairs func(band int) []pair.Pair) []pair.Pair {
	var mu sync.Mutex
	set := pair.NewSet(n)
	shard.Run(l, workers, 1, func(_, _, band int) {
		ps := bandPairs(band)
		mu.Lock()
		for _, p := range ps {
			set.Add(p.A, p.B)
		}
		mu.Unlock()
	})
	return set.Pairs()
}
