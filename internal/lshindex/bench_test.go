package lshindex

import (
	"testing"

	"bayeslsh/internal/rng"
)

func benchBitSigs(n, words int, seed uint64) [][]uint64 {
	src := rng.New(seed)
	sigs := make([][]uint64, n)
	for i := range sigs {
		s := make([]uint64, words)
		for w := range s {
			s[w] = src.Uint64()
		}
		sigs[i] = s
	}
	return sigs
}

func BenchmarkCandidatesBits(b *testing.B) {
	sigs := benchBitSigs(2000, 16, 3) // 1024 bits each
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CandidatesBits(sigs, 8, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCandidatesBitsMultiProbe(b *testing.B) {
	sigs := benchBitSigs(2000, 16, 3)
	// Multi-probe reaches comparable recall from ~8x fewer tables.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CandidatesBitsMultiProbe(sigs, 8, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCandidatesMinhash(b *testing.B) {
	src := rng.New(5)
	sigs := make([][]uint32, 2000)
	for i := range sigs {
		s := make([]uint32, 256)
		for j := range s {
			s[j] = src.Uint32() % 64 // collisions on purpose
		}
		sigs[i] = s
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CandidatesMinhash(sigs, 3, 80); err != nil {
			b.Fatal(err)
		}
	}
}
