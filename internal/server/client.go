package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"bayeslsh"
	"bayeslsh/internal/cluster"
)

// Client is the HTTP side of the serving contract: a typed view of
// one apss serve daemon that satisfies cluster.Backend, so a router
// can scatter over remote shard processes exactly as it does over
// in-process LiveIndexes. Results decode from the same NDJSON stream
// the handlers emit, with no rounding anywhere on the path (FormatVec
// and encoding/json both round-trip float64 exactly), preserving the
// bit-identity contract across the network hop.
//
// Backend methods without an error return (Delete, Len, Stats) report
// transport failures as their zero outcome — false, 0, zero stats —
// matching the LiveIndex surface; the router's scatter paths, which
// carry errors, are the place failures surface with shard attribution.
type Client struct {
	base string
	hc   *http.Client
}

// Compile-time proof that a remote daemon can stand in for a local
// shard.
var _ cluster.Backend = (*Client)(nil)

// NewClient returns a client for the daemon at base (e.g.
// "http://127.0.0.1:8080"). hc may be nil for http.DefaultClient;
// per-call deadlines come from the context, which the router sets
// from its ShardTimeout.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// do POSTs body as JSON to route and returns the response. Non-2xx
// responses are drained, decoded as apiError when possible, and
// returned as errors carrying the route and status.
func (c *Client) do(ctx context.Context, route string, body any) (*http.Response, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return nil, fmt.Errorf("client: encode %s: %w", route, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+route, bytes.NewReader(buf))
	if err != nil {
		return nil, fmt.Errorf("client: %s: %w", route, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: %s: %w", route, err)
	}
	if resp.StatusCode/100 != 2 {
		defer resp.Body.Close()
		var ae apiError
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&ae) == nil && ae.Error != "" {
			return nil, fmt.Errorf("client: %s: %d: %s", route, resp.StatusCode, ae.Error)
		}
		return nil, fmt.Errorf("client: %s: status %d", route, resp.StatusCode)
	}
	return resp, nil
}

// decodeMatches consumes an NDJSON match stream, requiring the done
// marker: a stream that ends without it (the handler's signal for a
// dropped or half-delivered response) is an error, never a silently
// short result.
func decodeMatches(r io.Reader, route string) ([]bayeslsh.Match, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var out []bayeslsh.Match
	for {
		var row struct {
			ID     int     `json:"id"`
			Sim    float64 `json:"sim"`
			Done   bool    `json:"done"`
			Error  string  `json:"error"`
			Status int     `json:"status"`
		}
		if err := dec.Decode(&row); err != nil {
			if errors.Is(err, io.EOF) {
				return nil, fmt.Errorf("client: %s: stream ended without done marker", route)
			}
			return nil, fmt.Errorf("client: %s: decode stream: %w", route, err)
		}
		switch {
		case row.Error != "":
			return nil, fmt.Errorf("client: %s: %d: %s", route, row.Status, row.Error)
		case row.Done:
			return out, nil
		default:
			out = append(out, bayeslsh.Match{ID: row.ID, Sim: row.Sim})
		}
	}
}

// QueryContext runs one threshold query on the remote shard.
func (c *Client) QueryContext(ctx context.Context, q bayeslsh.Vec, opts bayeslsh.QueryOptions) ([]bayeslsh.Match, error) {
	if q.Len() == 0 {
		return nil, nil // the wire grammar has no empty form; match LiveIndex
	}
	resp, err := c.do(ctx, "/v1/query", queryRequest{Vec: FormatVec(q), Threshold: opts.Threshold})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return decodeMatches(resp.Body, "/v1/query")
}

// TopKContext runs one top-k query on the remote shard.
func (c *Client) TopKContext(ctx context.Context, q bayeslsh.Vec, k int) ([]bayeslsh.Match, error) {
	if q.Len() == 0 {
		return nil, nil
	}
	resp, err := c.do(ctx, "/v1/topk", topkRequest{Vec: FormatVec(q), K: k})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return decodeMatches(resp.Body, "/v1/topk")
}

// QueryBatchContext runs a query batch on the remote shard. The
// router has already filtered empty queries, so every vector has a
// wire form.
func (c *Client) QueryBatchContext(ctx context.Context, queries []bayeslsh.Vec, opts bayeslsh.QueryOptions) ([][]bayeslsh.Match, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	vecs := make([]string, len(queries))
	for i, q := range queries {
		vecs[i] = FormatVec(q)
	}
	resp, err := c.do(ctx, "/v1/batch", batchRequest{Vecs: vecs, Threshold: opts.Threshold})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out := make([][]bayeslsh.Match, len(queries))
	dec := json.NewDecoder(bufio.NewReader(resp.Body))
	for {
		var row struct {
			Query  int     `json:"query"`
			ID     int     `json:"id"`
			Sim    float64 `json:"sim"`
			Done   bool    `json:"done"`
			Error  string  `json:"error"`
			Status int     `json:"status"`
		}
		if err := dec.Decode(&row); err != nil {
			if errors.Is(err, io.EOF) {
				return nil, errors.New("client: /v1/batch: stream ended without done marker")
			}
			return nil, fmt.Errorf("client: /v1/batch: decode stream: %w", err)
		}
		switch {
		case row.Error != "":
			return nil, fmt.Errorf("client: /v1/batch: %d: %s", row.Status, row.Error)
		case row.Done:
			return out, nil
		default:
			if row.Query < 0 || row.Query >= len(queries) {
				return nil, fmt.Errorf("client: /v1/batch: row for query %d of %d", row.Query, len(queries))
			}
			out[row.Query] = append(out[row.Query], bayeslsh.Match{ID: row.ID, Sim: row.Sim})
		}
	}
}

// mutTimeout bounds the context-less Backend mutation and lifecycle
// calls so a hung shard cannot wedge the router's mutation lock
// forever.
const mutTimeout = time.Minute

// Add ingests one vector on the remote shard and returns its
// shard-local id.
func (c *Client) Add(q bayeslsh.Vec) (int, error) {
	ctx, cancel := context.WithTimeout(context.Background(), mutTimeout)
	defer cancel()
	resp, err := c.do(ctx, "/v1/add", addRequest{Vec: FormatVec(q)})
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var ar addResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		return 0, fmt.Errorf("client: /v1/add: decode: %w", err)
	}
	return ar.ID, nil
}

// Delete tombstones one shard-local id; transport failures report
// false.
func (c *Client) Delete(id int) bool {
	ctx, cancel := context.WithTimeout(context.Background(), mutTimeout)
	defer cancel()
	resp, err := c.do(ctx, "/v1/delete", deleteRequest{ID: &id})
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	var dr deleteResponse
	if json.NewDecoder(resp.Body).Decode(&dr) != nil {
		return false
	}
	return dr.Deleted
}

// stats fetches GET /v1/stats.
func (c *Client) stats() (statsResponse, error) {
	ctx, cancel := context.WithTimeout(context.Background(), mutTimeout)
	defer cancel()
	var sr statsResponse
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/stats", nil)
	if err != nil {
		return sr, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return sr, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return sr, fmt.Errorf("client: /v1/stats: status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return sr, fmt.Errorf("client: /v1/stats: decode: %w", err)
	}
	return sr, nil
}

// Len reports the remote shard's live vector count; 0 on transport
// failure.
func (c *Client) Len() int { return c.Stats().Live }

// Stats reports the remote shard's segment shape; zero stats on
// transport failure.
func (c *Client) Stats() bayeslsh.LiveStats {
	sr, err := c.stats()
	if err != nil {
		return bayeslsh.LiveStats{}
	}
	st := bayeslsh.LiveStats{
		Base:      sr.Base,
		Delta:     sr.Delta,
		Live:      sr.Live,
		Dead:      sr.Dead,
		NextID:    sr.NextID,
		Merges:    sr.Merges,
		LastMerge: time.Duration(sr.LastMergeMs * float64(time.Millisecond)),
	}
	if sr.LastMergeErr != "" {
		st.LastMergeErr = errors.New(sr.LastMergeErr)
	}
	return st
}

// Compact forces a merge on the remote shard and waits for it.
func (c *Client) Compact() error {
	ctx, cancel := context.WithTimeout(context.Background(), mutTimeout)
	defer cancel()
	resp, err := c.do(ctx, "/v1/compact", struct{}{})
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// SaveFile writes a live snapshot on the remote shard's host — path
// is shard-local, the /v1/save contract.
func (c *Client) SaveFile(path string) error {
	ctx, cancel := context.WithTimeout(context.Background(), mutTimeout)
	defer cancel()
	resp, err := c.do(ctx, "/v1/save", saveRequest{Path: path})
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// Close releases the client's idle connections. The remote daemon
// outlives its clients; Close never stops it.
func (c *Client) Close() { c.hc.CloseIdleConnections() }
