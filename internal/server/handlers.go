package server

import (
	"encoding/json"
	"net/http"
	"time"

	"bayeslsh"
)

// Request bodies. Vectors travel as the shared wire grammar (see
// ParseVecTokens); thresholds follow the QueryOptions contract (0 =
// the built threshold).
type (
	queryRequest struct {
		Vec       string  `json:"vec"`
		Threshold float64 `json:"threshold,omitempty"`
	}
	topkRequest struct {
		Vec string `json:"vec"`
		K   int    `json:"k"`
	}
	batchRequest struct {
		Vecs      []string `json:"vecs"`
		Threshold float64  `json:"threshold,omitempty"`
	}
	addRequest struct {
		Vec string `json:"vec"`
	}
	deleteRequest struct {
		ID *int `json:"id"`
	}
	saveRequest struct {
		Path string `json:"path"`
	}
	loadRequest struct {
		Path string `json:"path"`
	}
)

// matchRow is one NDJSON result line of /v1/query and /v1/topk.
type matchRow struct {
	ID  int     `json:"id"`
	Sim float64 `json:"sim"`
}

// batchRow is one NDJSON result line of /v1/batch: Query indexes into
// the request's vecs array.
type batchRow struct {
	Query int     `json:"query"`
	ID    int     `json:"id"`
	Sim   float64 `json:"sim"`
}

// doneRow terminates every successful NDJSON stream, so clients can
// distinguish a complete response from a dropped connection.
type doneRow struct {
	Done    bool `json:"done"`
	Queries int  `json:"queries,omitempty"`
	Matches int  `json:"matches"`
}

// writeJSON writes a single-object 200 response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// streamStart switches the response to NDJSON. After it, per-line
// errors are in-band (an apiError line with no done marker).
func streamStart(w http.ResponseWriter) *json.Encoder {
	w.Header().Set("Content-Type", "application/x-ndjson")
	return json.NewEncoder(w)
}

// flush pushes buffered response bytes to the client between stream
// chunks.
func flush(w http.ResponseWriter) {
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

// handleQuery serves POST /v1/query: one threshold query, answered by
// LiveIndex.QueryContext under the request deadline and streamed as
// NDJSON match rows plus a done marker. The rows carry the library's
// float64 similarities unmodified (encoding/json round-trips float64
// exactly), so a served response is bit-identical to the direct call.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	q, err := ParseVec(req.Vec)
	if err != nil {
		httpError(w, http.StatusBadRequest, "vec: %v", err)
		return
	}
	ms, err := s.index().QueryContext(r.Context(), q, bayeslsh.QueryOptions{Threshold: req.Threshold})
	if err != nil {
		if st := errStatus(err); st != 499 {
			httpError(w, st, "%v", err)
		}
		return
	}
	enc := streamStart(w)
	for _, m := range ms {
		if enc.Encode(matchRow{ID: m.ID, Sim: m.Sim}) != nil {
			return // client gone; nothing to clean up
		}
	}
	enc.Encode(doneRow{Done: true, Matches: len(ms)})
}

// handleTopK serves POST /v1/topk, the k-best form of handleQuery.
func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	var req topkRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	q, err := ParseVec(req.Vec)
	if err != nil {
		httpError(w, http.StatusBadRequest, "vec: %v", err)
		return
	}
	ms, err := s.index().TopKContext(r.Context(), q, req.K)
	if err != nil {
		if st := errStatus(err); st != 499 {
			httpError(w, st, "%v", err)
		}
		return
	}
	enc := streamStart(w)
	for _, m := range ms {
		if enc.Encode(matchRow{ID: m.ID, Sim: m.Sim}) != nil {
			return
		}
	}
	enc.Encode(doneRow{Done: true, Matches: len(ms)})
}

// handleBatch serves POST /v1/batch with genuinely incremental
// delivery: the queries run in Config.BatchChunk-sized chunks, each
// chunk one QueryBatchContext call pinned to a single generation,
// its rows encoded and flushed before the next chunk starts. Response
// memory is bounded by the chunk's result set — the Engine.Stream
// delivery model applied to the serving path — and a canceled or
// timed-out request still delivered every chunk completed before the
// deadline (the stream ends with an in-band error line instead of the
// done marker).
//
// All vectors are validated before any work: a malformed vector is a
// whole-request 400, never a half-answered stream.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	qs := make([]bayeslsh.Vec, len(req.Vecs))
	for i, vs := range req.Vecs {
		q, err := ParseVec(vs)
		if err != nil {
			httpError(w, http.StatusBadRequest, "vecs[%d]: %v", i, err)
			return
		}
		qs[i] = q
	}
	opts := bayeslsh.QueryOptions{Threshold: req.Threshold}
	li := s.index()

	var enc *json.Encoder
	matches := 0
	for lo := 0; lo < len(qs); lo += s.cfg.BatchChunk {
		hi := min(lo+s.cfg.BatchChunk, len(qs))
		res, err := li.QueryBatchContext(r.Context(), qs[lo:hi], opts)
		if err != nil {
			st := errStatus(err)
			if enc == nil {
				if st != 499 {
					httpError(w, st, "%v", err)
				}
			} else if st != 499 {
				// Headers are sent; report in-band. The missing done
				// marker tells the client the stream is incomplete.
				enc.Encode(apiError{Error: err.Error(), Status: st})
			}
			return
		}
		if enc == nil {
			enc = streamStart(w)
		}
		for i, ms := range res {
			for _, m := range ms {
				if enc.Encode(batchRow{Query: lo + i, ID: m.ID, Sim: m.Sim}) != nil {
					return
				}
			}
			matches += len(ms)
		}
		flush(w)
	}
	if enc == nil {
		enc = streamStart(w)
	}
	enc.Encode(doneRow{Done: true, Queries: len(qs), Matches: matches})
}

// addResponse / deleteResponse / compactResponse / saveResponse are
// the single-object reply bodies of the mutation routes.
type (
	addResponse struct {
		ID int `json:"id"`
	}
	deleteResponse struct {
		ID      int  `json:"id"`
		Deleted bool `json:"deleted"`
	}
	compactResponse struct {
		Merges int64   `json:"merges"`
		TookMs float64 `json:"took_ms"`
	}
	saveResponse struct {
		Saved string `json:"saved"`
	}
)

// handleAdd serves POST /v1/add: ingest one vector, reply with its
// permanent external id. Validation failures (feature space, norm)
// surface as the library's typed errors, mapped to 400.
func (s *Server) handleAdd(w http.ResponseWriter, r *http.Request) {
	var req addRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	q, err := ParseVec(req.Vec)
	if err != nil {
		httpError(w, http.StatusBadRequest, "vec: %v", err)
		return
	}
	id, err := s.index().Add(q)
	if err != nil {
		httpError(w, errStatus(err), "%v", err)
		return
	}
	writeJSON(w, addResponse{ID: id})
}

// handleDelete serves POST /v1/delete: tombstone one external id.
// Deleting an absent or already-deleted id is not an error — the
// reply reports deleted:false, matching LiveIndex.Delete.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req deleteRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.ID == nil {
		httpError(w, http.StatusBadRequest, "missing id")
		return
	}
	writeJSON(w, deleteResponse{ID: *req.ID, Deleted: s.index().Delete(*req.ID)})
}

// statsResponse is the GET /v1/stats body: what the index is (fixed
// at build) plus the current segment shape (LiveStats).
type statsResponse struct {
	Measure      string  `json:"measure"`
	Algorithm    string  `json:"algorithm"`
	Threshold    float64 `json:"threshold"`
	Dim          int     `json:"dim"`
	Live         int     `json:"live"`
	Base         int     `json:"base"`
	Delta        int     `json:"delta"`
	Dead         int     `json:"dead"`
	NextID       int     `json:"next_id"`
	Merges       int64   `json:"merges"`
	LastMergeMs  float64 `json:"last_merge_ms"`
	LastMergeErr string  `json:"last_merge_error,omitempty"`
	Draining     bool    `json:"draining,omitempty"`

	// Disk-backed serving (a base opened from a v3 snapshot): the
	// mapped snapshot size versus how much of it is materialized in
	// RAM. Absent for heap-resident indexes.
	DiskBacked    bool  `json:"disk_backed,omitempty"`
	MappedBytes   int64 `json:"mapped_bytes,omitempty"`
	ResidentBytes int64 `json:"resident_bytes,omitempty"`

	// Planner surface: the corpus statistics collected at build time
	// and the pipeline decision. Absent when the index predates stats
	// persistence (a zero-stats v3 open).
	CorpusStats *bayeslsh.CorpusStats `json:"corpus_stats,omitempty"`
	PlanRules   []string              `json:"plan_rules,omitempty"`

	// Result cache counters; absent when Config.CacheSize is 0.
	Cache *cacheStats `json:"cache,omitempty"`
}

// cacheStats is the result-cache block of /v1/stats.
type cacheStats struct {
	Size      int   `json:"size"`
	Entries   int   `json:"entries"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// handleStats serves GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	li := s.index()
	st := li.Stats()
	resp := statsResponse{
		Measure:     li.Measure().String(),
		Algorithm:   li.Options().Algorithm.String(),
		Threshold:   li.Threshold(),
		Dim:         li.Dim(),
		Live:        st.Live,
		Base:        st.Base,
		Delta:       st.Delta,
		Dead:        st.Dead,
		NextID:      st.NextID,
		Merges:      st.Merges,
		LastMergeMs: float64(st.LastMerge) / float64(time.Millisecond),
		Draining:    s.draining.Load(),
	}
	if st.LastMergeErr != nil {
		resp.LastMergeErr = st.LastMergeErr.Error()
	}
	// Memory accounting is an optional Serveable surface: a LiveIndex
	// reports its base segment's mapping, aggregations without one
	// (the cluster router) simply omit the fields.
	if ms, ok := li.(interface{ MemStats() bayeslsh.IndexMemStats }); ok {
		m := ms.MemStats()
		resp.DiskBacked = m.DiskBacked
		resp.MappedBytes = m.MappedBytes
		resp.ResidentBytes = m.ResidentBytes
	}
	// Planner surface, equally optional (the cache forwards it from
	// whatever it fronts).
	if cs, ok := li.(interface{ CorpusStats() bayeslsh.CorpusStats }); ok {
		if st := cs.CorpusStats(); !st.Zero() {
			resp.CorpusStats = &st
		}
	}
	var plan bayeslsh.Plan
	switch pl := li.(type) {
	case interface{ Plan() bayeslsh.Plan }:
		plan = pl.Plan()
	case interface{ PipelinePlan() bayeslsh.Plan }:
		// The cluster router: its Plan method is the partition plan.
		plan = pl.PipelinePlan()
	}
	for _, rule := range plan.Rules {
		resp.PlanRules = append(resp.PlanRules, rule.Name+": "+rule.Detail)
	}
	if s.cache != nil {
		ct := s.cache.Counters()
		resp.Cache = &cacheStats{
			Size:      s.cfg.CacheSize,
			Entries:   ct.Entries,
			Hits:      ct.Hits,
			Misses:    ct.Misses,
			Evictions: ct.Evictions,
		}
	}
	writeJSON(w, resp)
}

// handleCompact serves POST /v1/compact: force a merge and wait for
// it (no request body). A merge failure is a 500 with the merge error
// — the index keeps serving its previous generation either way.
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	li := s.index()
	start := time.Now()
	if err := li.Compact(); err != nil {
		httpError(w, http.StatusInternalServerError, "compact: %v", err)
		return
	}
	writeJSON(w, compactResponse{
		Merges: li.Stats().Merges,
		TookMs: float64(time.Since(start)) / float64(time.Millisecond),
	})
}

// handleSave serves POST /v1/save: write a live snapshot atomically
// to a server-local path — an operator route (point-in-time backup,
// shipping a segment to a new replica).
func (s *Server) handleSave(w http.ResponseWriter, r *http.Request) {
	var req saveRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Path == "" {
		httpError(w, http.StatusBadRequest, "missing path")
		return
	}
	if err := s.index().SaveFile(req.Path); err != nil {
		httpError(w, http.StatusInternalServerError, "save: %v", err)
		return
	}
	writeJSON(w, saveResponse{Saved: req.Path})
}

// loadResponse is the POST /v1/load reply: what was loaded and the
// shape of the now-serving index.
type loadResponse struct {
	Loaded string `json:"loaded"`
	Live   int    `json:"live"`
	NextID int    `json:"next_id"`
}

// handleLoad serves POST /v1/load: hot-swap the served index for one
// loaded from a server-local path via Config.Loader. The swap is
// atomic — requests in flight finish on the index they started on,
// new requests see the fresh one — and the retired index is Closed,
// so its queries drain normally while late mutations get 503
// (ErrLiveClosed). A load failure leaves the old index serving,
// untouched. Without a Loader the route is 501.
func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Loader == nil {
		httpError(w, http.StatusNotImplemented, "load: no loader configured")
		return
	}
	var req loadRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Path == "" {
		httpError(w, http.StatusBadRequest, "missing path")
		return
	}
	next, err := s.cfg.Loader(req.Path)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "load: %v", err)
		return
	}
	if s.cache != nil {
		// The cache stays in place across the swap — it swaps its
		// backend internally, which also invalidates every cached
		// result, so no pre-swap response can be served post-swap.
		s.cache.Swap(next).Close()
	} else {
		old := s.idx.Swap(&next)
		(*old).Close()
	}
	st := next.Stats()
	writeJSON(w, loadResponse{Loaded: req.Path, Live: st.Live, NextID: st.NextID})
}
