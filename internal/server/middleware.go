package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"bayeslsh"
	"bayeslsh/internal/cluster"
)

// TimeoutHeader is the per-request deadline override: a Go duration
// string ("250ms", "2s"), capped at Config.MaxTimeout. An unparsable
// or non-positive value is a 400, not a silent fallback.
const TimeoutHeader = "X-Apss-Timeout"

// apiError is the JSON error body every non-2xx response carries.
type apiError struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// httpError reports err as a JSON error response with the given
// status. Safe only before the first body byte has been written.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(apiError{Error: fmt.Sprintf(format, args...), Status: status})
}

// errStatus maps an index-layer error to its HTTP status: caller
// mistakes are 4xx, lifecycle and deadline conditions 5xx. Unknown
// errors are conservatively 500 (the handlers' own validation should
// make that unreachable for hostile input).
func errStatus(err error) int {
	switch {
	case errors.Is(err, bayeslsh.ErrBadK),
		errors.Is(err, bayeslsh.ErrBadThreshold),
		errors.Is(err, bayeslsh.ErrVecOutOfRange),
		errors.Is(err, bayeslsh.ErrVecNotNormalized):
		return http.StatusBadRequest
	case errors.Is(err, bayeslsh.ErrLiveClosed),
		errors.Is(err, cluster.ErrShardUnavailable):
		// Both are retryable service states: a closed (retired) index
		// or a sharded query that lost a shard mid-scatter.
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; the status is for the log line only.
		return 499
	default:
		return http.StatusInternalServerError
	}
}

// statusWriter records the status code and whether the body has
// started, so middleware can emit correct error responses and
// metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (sw *statusWriter) WriteHeader(code int) {
	if !sw.wrote {
		sw.status = code
		sw.wrote = true
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if !sw.wrote {
		sw.status = http.StatusOK
		sw.wrote = true
	}
	return sw.ResponseWriter.Write(p)
}

// Flush forwards to the underlying flusher so streamed NDJSON rows
// reach the client as they are produced.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// requestTimeout resolves the effective deadline of a request: the
// header override when present (validated, capped at MaxTimeout),
// else the configured default. A zero return means no deadline.
func (s *Server) requestTimeout(r *http.Request) (time.Duration, error) {
	if h := r.Header.Get(TimeoutHeader); h != "" {
		d, err := time.ParseDuration(h)
		if err != nil || d <= 0 {
			return 0, fmt.Errorf("bad %s %q: want a positive Go duration", TimeoutHeader, h)
		}
		return min(d, s.cfg.MaxTimeout), nil
	}
	if s.cfg.Timeout > 0 {
		return s.cfg.Timeout, nil
	}
	return 0, nil
}

// route wraps an API handler with the serving middleware, outermost
// first: drain refusal, the admission gate, the request deadline,
// body size cap, panic containment, and metrics. name keys the
// per-route metrics.
func (s *Server) route(name string, h func(http.ResponseWriter, *http.Request)) http.Handler {
	rm := s.met.route(name)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		defer func() {
			// A panic must not take the process down (the daemon is
			// the unit of availability), but it is always a bug: it
			// becomes a 500 plus a counted metric, and the fuzz and
			// hostile-input tests assert it never happens for bad
			// input.
			if v := recover(); v != nil {
				s.met.panics.Add(1)
				if !sw.wrote {
					httpError(sw, http.StatusInternalServerError, "internal panic: %v", v)
				}
			}
			rm.observe(sw.status, time.Since(start))
		}()

		if s.draining.Load() {
			w.Header().Set("Connection", "close")
			httpError(sw, http.StatusServiceUnavailable, "server is draining")
			return
		}
		if s.slots != nil {
			select {
			case s.slots <- struct{}{}:
				defer func() { <-s.slots }()
			default:
				w.Header().Set("Retry-After", "1")
				httpError(sw, http.StatusTooManyRequests,
					"server at max in-flight (%d)", s.cfg.MaxInFlight)
				return
			}
		}
		s.met.inFlight.Add(1)
		defer s.met.inFlight.Add(-1)
		if s.testHook != nil {
			s.testHook(name)
		}

		d, err := s.requestTimeout(r)
		if err != nil {
			httpError(sw, http.StatusBadRequest, "%v", err)
			return
		}
		if d > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), d)
			defer cancel()
			r = r.WithContext(ctx)
		}
		if r.Body != nil {
			r.Body = http.MaxBytesReader(sw, r.Body, s.cfg.MaxBody)
		}
		h(sw, r)
	})
}
