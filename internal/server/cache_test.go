package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"bayeslsh"
	"bayeslsh/internal/harness"
)

// The result-cache serving tests: Config.CacheSize fronts the index
// with internal/rescache, and everything the wire can see — response
// bytes, /v1/stats, /metrics — must behave as if the cache were not
// there, except faster and with counters. Cache-internal semantics
// (LRU, generations, races) are proven in the rescache package; this
// file proves the HTTP wiring: byte-identical hits, invalidation on
// every mutating route including the /v1/load hot swap, and the
// counter surfaces.

// rawPost posts body and returns the full response body bytes.
func rawPost(tb testing.TB, url, body string) []byte {
	tb.Helper()
	resp := postJSON(tb, url, body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		tb.Fatalf("POST %s status %d: %s", url, resp.StatusCode, b)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		tb.Fatal(err)
	}
	return b
}

// fetchStats decodes GET /v1/stats.
func fetchStats(tb testing.TB, base string) statsResponse {
	tb.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		tb.Fatal(err)
	}
	return st
}

// fetchMetrics returns the /metrics exposition text.
func fetchMetrics(tb testing.TB, base string) string {
	tb.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		tb.Fatal(err)
	}
	return string(b)
}

// TestServedCacheHitByteIdentical proves the serving-layer cache
// contract on the wire: repeating a /v1/query or /v1/topk request
// returns byte-for-byte the same NDJSON the miss produced, and both
// equal the direct LiveIndex answer. Counters surface in /v1/stats
// and /metrics.
func TestServedCacheHitByteIdentical(t *testing.T) {
	ds, maps := corpus(t, bayeslsh.Cosine, 60)
	li := newLive(t, ds, bayeslsh.Cosine, bayeslsh.LSHBayesLSH, 0.6)
	defer li.Close()
	ts := httptest.NewServer(New(li, Config{CacheSize: 64}).Handler())
	defer ts.Close()

	for i, mv := range maps[:5] {
		qs := vecString(mv)
		qbody, _ := json.Marshal(queryRequest{Vec: qs, Threshold: 0})
		miss := rawPost(t, ts.URL+"/v1/query", string(qbody))
		hit := rawPost(t, ts.URL+"/v1/query", string(qbody))
		if string(miss) != string(hit) {
			t.Fatalf("query %d: cache hit bytes != miss bytes:\n miss %s\n hit  %s", i, miss, hit)
		}
		direct, err := li.Query(mustVec(t, qs), bayeslsh.QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got := servedQuery(t, ts.URL, qs, 0); !matchesEqual(got, direct) {
			t.Fatalf("query %d: cached response != direct:\n got %v\nwant %v", i, got, direct)
		}

		kbody, _ := json.Marshal(topkRequest{Vec: qs, K: 4})
		missK := rawPost(t, ts.URL+"/v1/topk", string(kbody))
		hitK := rawPost(t, ts.URL+"/v1/topk", string(kbody))
		if string(missK) != string(hitK) {
			t.Fatalf("topk %d: cache hit bytes != miss bytes", i)
		}
	}

	st := fetchStats(t, ts.URL)
	if st.Cache == nil {
		t.Fatal("/v1/stats has no cache block with CacheSize set")
	}
	if st.Cache.Size != 64 {
		t.Fatalf("cache size = %d, want 64", st.Cache.Size)
	}
	// 5 queries x (1 miss + 2 hits) + 5 topk x (1 miss + 1 hit).
	if st.Cache.Misses != 10 || st.Cache.Hits != 15 {
		t.Fatalf("cache hits/misses = %d/%d, want 15/10", st.Cache.Hits, st.Cache.Misses)
	}
	if st.Cache.Entries != 10 {
		t.Fatalf("cache entries = %d, want 10", st.Cache.Entries)
	}
	if st.CorpusStats == nil || st.CorpusStats.Vectors != 60 {
		t.Fatalf("corpus_stats missing or wrong through the cache: %+v", st.CorpusStats)
	}

	mtx := fetchMetrics(t, ts.URL)
	for _, want := range []string{
		"apss_cache_hits_total 15",
		"apss_cache_misses_total 10",
		"apss_cache_evictions_total 0",
		"apss_cache_invalidations_total 0",
		"apss_cache_entries 10",
	} {
		if !strings.Contains(mtx, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, mtx)
		}
	}
}

// TestServedCacheInvalidation drives every mutating route — /v1/add,
// /v1/delete, /v1/compact, and the /v1/load hot swap — and proves
// each one invalidates: the next response reflects the mutation
// rather than the cached pre-mutation answer.
func TestServedCacheInvalidation(t *testing.T) {
	ds, maps := corpus(t, bayeslsh.Cosine, 40)
	li := newLive(t, ds, bayeslsh.Cosine, bayeslsh.LSH, 0.6)
	srv := New(li, Config{CacheSize: 32, Loader: func(path string) (Serveable, error) {
		return bayeslsh.LoadLiveFile(path, harness.LiveConfig())
	}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.index().Close()

	qs := vecString(maps[0])
	invalidations := func() int64 {
		st := fetchStats(t, ts.URL)
		if st.Cache == nil {
			t.Fatal("cache block missing")
		}
		var n int64
		fmt.Sscanf(metricsLine(t, ts.URL, "apss_cache_invalidations_total"), "%d", &n)
		return n
	}

	// Prime the cache, then add a near-duplicate of the query vector:
	// the post-add answer must include the new id, proving the primed
	// entry did not survive.
	before := servedQuery(t, ts.URL, qs, 0)
	newID := servedAdd(t, ts.URL, qs)
	after := servedQuery(t, ts.URL, qs, 0)
	if matchesEqual(before, after) {
		t.Fatalf("post-add answer identical to cached pre-add answer: %v", after)
	}
	found := false
	for _, m := range after {
		found = found || m.ID == newID
	}
	if !found {
		t.Fatalf("post-add answer %v missing new id %d", after, newID)
	}
	if n := invalidations(); n != 1 {
		t.Fatalf("invalidations after add = %d, want 1", n)
	}

	// Delete the added vector: the cached post-add answer must go too.
	if !servedDelete(t, ts.URL, newID) {
		t.Fatalf("delete(%d) reported not deleted", newID)
	}
	got := servedQuery(t, ts.URL, qs, 0)
	if !matchesEqual(got, before) {
		t.Fatalf("post-delete answer != pre-add answer:\n got %v\nwant %v", got, before)
	}
	if n := invalidations(); n != 2 {
		t.Fatalf("invalidations after delete = %d, want 2", n)
	}
	// A no-op delete must not invalidate.
	if servedDelete(t, ts.URL, newID) {
		t.Fatal("second delete reported deleted")
	}
	if n := invalidations(); n != 2 {
		t.Fatalf("invalidations after no-op delete = %d, want 2", n)
	}

	// Compact invalidates wholesale.
	resp := postJSON(t, ts.URL+"/v1/compact", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compact status %d", resp.StatusCode)
	}
	resp.Body.Close()
	if n := invalidations(); n != 3 {
		t.Fatalf("invalidations after compact = %d, want 3", n)
	}

	// The /v1/load hot swap goes through the cache: the swapped-in
	// corpus answers afterward, and the retired one is closed.
	donor := newLive(t, ds, bayeslsh.Cosine, bayeslsh.LSH, 0.6)
	if _, err := donor.Add(mustVec(t, qs)); err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(t.TempDir(), "grown.snap")
	if err := donor.SaveFile(snap); err != nil {
		t.Fatal(err)
	}
	donor.Close()

	servedQuery(t, ts.URL, qs, 0) // re-prime against the old corpus
	resp = postJSON(t, ts.URL+"/v1/load", fmt.Sprintf(`{"path":%q}`, snap))
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("load status %d: %s", resp.StatusCode, b)
	}
	resp.Body.Close()
	if n := invalidations(); n != 4 {
		t.Fatalf("invalidations after load = %d, want 4", n)
	}
	if st := fetchStats(t, ts.URL); st.Live != 41 {
		t.Fatalf("post-load live = %d, want 41 (swap not visible through cache)", st.Live)
	}
	postLoad := servedQuery(t, ts.URL, qs, 0)
	if matchesEqual(postLoad, before) {
		t.Fatalf("post-load answer identical to cached pre-load answer: %v", postLoad)
	}
	if _, err := li.Add(mustVec(t, qs)); err == nil {
		t.Fatal("retired index still accepts mutations after /v1/load swap")
	}
}

// metricsLine returns the value column of the first /metrics line
// starting with name.
func metricsLine(tb testing.TB, base, name string) string {
	tb.Helper()
	for _, line := range strings.Split(fetchMetrics(tb, base), "\n") {
		if strings.HasPrefix(line, name+" ") {
			return strings.TrimPrefix(line, name+" ")
		}
	}
	tb.Fatalf("/metrics has no %s line", name)
	return ""
}
