package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"bayeslsh"
	"bayeslsh/internal/harness"
)

// The end-to-end harness: every route driven over real HTTP, with the
// served bytes decoded back and compared — float64-exact — against
// direct LiveIndex calls on the same index. The corpus, the measure ×
// pipeline matrix, and the comparison strictness come from the shared
// internal/harness matrix, so this suite and the sharded equivalence
// suite walk the identical grid; the helpers here are only the
// HTTP-specific drivers.

// Local names for the shared matrix helpers, so the other server test
// files keep their vocabulary while the single definition lives in
// internal/harness.
func corpus(tb testing.TB, m bayeslsh.Measure, n int) (*bayeslsh.Dataset, []map[uint32]float64) {
	return harness.Corpus(tb, m, n)
}

func vecString(v map[uint32]float64) string { return harness.VecString(v) }

func newLive(tb testing.TB, ds *bayeslsh.Dataset, m bayeslsh.Measure, alg bayeslsh.Algorithm, threshold float64) *bayeslsh.LiveIndex {
	tb.Helper()
	return harness.NewLive(tb, ds, m, alg, threshold)
}

func matchesEqual(a, b []bayeslsh.Match) bool { return harness.MatchesEqual(a, b) }

// mustVec parses a wire vector or fails the test.
func mustVec(tb testing.TB, s string) bayeslsh.Vec {
	tb.Helper()
	q, err := ParseVec(s)
	if err != nil {
		tb.Fatalf("ParseVec(%q): %v", s, err)
	}
	return q
}

// ndRow is the union of every NDJSON line shape the server emits.
type ndRow struct {
	Query   *int    `json:"query"`
	ID      *int    `json:"id"`
	Sim     float64 `json:"sim"`
	Done    bool    `json:"done"`
	Queries int     `json:"queries"`
	Matches int     `json:"matches"`
	Error   string  `json:"error"`
	Status  int     `json:"status"`
}

// postJSON posts body and returns the response; the caller owns
// resp.Body.
func postJSON(tb testing.TB, url, body string) *http.Response {
	tb.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		tb.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

// decodeStream decodes an NDJSON body, requiring a done marker.
func decodeStream(tb testing.TB, body io.Reader) []ndRow {
	tb.Helper()
	var rows []ndRow
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	done := false
	for sc.Scan() {
		var r ndRow
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			tb.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if r.Error != "" {
			tb.Fatalf("in-band stream error: %s (status %d)", r.Error, r.Status)
		}
		if r.Done {
			done = true
			break
		}
		rows = append(rows, r)
	}
	if err := sc.Err(); err != nil {
		tb.Fatal(err)
	}
	if !done {
		tb.Fatal("stream ended without a done marker")
	}
	return rows
}

// servedQuery drives POST /v1/query and returns the matches.
func servedQuery(tb testing.TB, base, vec string, threshold float64) []bayeslsh.Match {
	tb.Helper()
	body, _ := json.Marshal(queryRequest{Vec: vec, Threshold: threshold})
	resp := postJSON(tb, base+"/v1/query", string(body))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		tb.Fatalf("query status %d: %s", resp.StatusCode, b)
	}
	return rowsToMatches(tb, decodeStream(tb, resp.Body))
}

// servedTopK drives POST /v1/topk.
func servedTopK(tb testing.TB, base, vec string, k int) []bayeslsh.Match {
	tb.Helper()
	body, _ := json.Marshal(topkRequest{Vec: vec, K: k})
	resp := postJSON(tb, base+"/v1/topk", string(body))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		tb.Fatalf("topk status %d: %s", resp.StatusCode, b)
	}
	return rowsToMatches(tb, decodeStream(tb, resp.Body))
}

// servedBatch drives POST /v1/batch, returning per-query match
// slices.
func servedBatch(tb testing.TB, base string, vecs []string, threshold float64) [][]bayeslsh.Match {
	tb.Helper()
	body, _ := json.Marshal(batchRequest{Vecs: vecs, Threshold: threshold})
	resp := postJSON(tb, base+"/v1/batch", string(body))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		tb.Fatalf("batch status %d: %s", resp.StatusCode, b)
	}
	out := make([][]bayeslsh.Match, len(vecs))
	for _, r := range decodeStream(tb, resp.Body) {
		if r.Query == nil || r.ID == nil {
			tb.Fatalf("batch row missing query/id: %+v", r)
		}
		out[*r.Query] = append(out[*r.Query], bayeslsh.Match{ID: *r.ID, Sim: r.Sim})
	}
	return out
}

func rowsToMatches(tb testing.TB, rows []ndRow) []bayeslsh.Match {
	tb.Helper()
	ms := make([]bayeslsh.Match, 0, len(rows))
	for _, r := range rows {
		if r.ID == nil {
			tb.Fatalf("row missing id: %+v", r)
		}
		ms = append(ms, bayeslsh.Match{ID: *r.ID, Sim: r.Sim})
	}
	return ms
}

// servedAdd drives POST /v1/add and returns the assigned id.
func servedAdd(tb testing.TB, base, vec string) int {
	tb.Helper()
	body, _ := json.Marshal(addRequest{Vec: vec})
	resp := postJSON(tb, base+"/v1/add", string(body))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		tb.Fatalf("add status %d: %s", resp.StatusCode, b)
	}
	var ar addResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		tb.Fatal(err)
	}
	return ar.ID
}

// servedDelete drives POST /v1/delete and reports whether the id was
// live.
func servedDelete(tb testing.TB, base string, id int) bool {
	tb.Helper()
	resp := postJSON(tb, base+"/v1/delete", fmt.Sprintf(`{"id":%d}`, id))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		tb.Fatalf("delete status %d: %s", resp.StatusCode, b)
	}
	var dr deleteResponse
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		tb.Fatal(err)
	}
	return dr.Deleted
}

// TestServedBitIdenticalToDirect is the acceptance harness: for every
// measure × pipeline, /v1/query, /v1/topk and /v1/batch responses are
// decoded and compared — ids and float64 similarities exactly equal —
// against direct LiveIndex calls on the same index, before and after
// HTTP-driven add/delete interleavings and an HTTP-driven compaction.
func TestServedBitIdenticalToDirect(t *testing.T) {
	for _, tc := range harness.Cells() {
		ds, maps := harness.Corpus(t, tc.Measure, 90)
		for _, alg := range harness.Pipelines(tc.Measure) {
			t.Run(fmt.Sprintf("%v/%v", tc.Measure, alg), func(t *testing.T) {
				li := harness.NewLive(t, ds, tc.Measure, alg, tc.Threshold)
				defer li.Close()
				// BatchChunk 4 makes an 11-query batch span 3 pinned
				// chunks, exercising the streamed chunk path.
				ts := httptest.NewServer(New(li, Config{BatchChunk: 4}).Handler())
				defer ts.Close()

				queries := make([]string, 0, 11)
				for _, mv := range maps[:10] {
					queries = append(queries, vecString(mv))
				}
				queries = append(queries, vecString(harness.PrepMap(tc.Measure, map[uint32]float64{3: 1, 44: 0.8, 199: 1.2})))

				check := func(stage string) {
					t.Helper()
					for _, qs := range queries[:4] {
						q := mustVec(t, qs)
						want, err := li.Query(q, bayeslsh.QueryOptions{})
						if err != nil {
							t.Fatalf("%s: direct query: %v", stage, err)
						}
						if got := servedQuery(t, ts.URL, qs, 0); !matchesEqual(got, want) {
							t.Fatalf("%s: served query != direct:\n got %v\nwant %v", stage, got, want)
						}
						wantK, err := li.TopK(q, 5)
						if err != nil {
							t.Fatalf("%s: direct topk: %v", stage, err)
						}
						if got := servedTopK(t, ts.URL, qs, 5); !matchesEqual(got, wantK) {
							t.Fatalf("%s: served topk != direct:\n got %v\nwant %v", stage, got, wantK)
						}
					}
					qvecs := make([]bayeslsh.Vec, len(queries))
					for i, qs := range queries {
						qvecs[i] = mustVec(t, qs)
					}
					want, err := li.QueryBatch(qvecs, bayeslsh.QueryOptions{})
					if err != nil {
						t.Fatalf("%s: direct batch: %v", stage, err)
					}
					got := servedBatch(t, ts.URL, queries, 0)
					for i := range want {
						if !matchesEqual(got[i], want[i]) {
							t.Fatalf("%s: served batch[%d] != direct:\n got %v\nwant %v", stage, i, got[i], want[i])
						}
					}
				}

				check("cold")

				// Mutate through the wire: two ingests (near-duplicates
				// of corpus vectors, so they land in result sets), two
				// deletes, one no-op delete.
				next := li.Stats().NextID
				for j, src := range maps[1:3] {
					if id := servedAdd(t, ts.URL, vecString(src)); id != next+j {
						t.Fatalf("add returned id %d, want %d", id, next+j)
					}
				}
				if !servedDelete(t, ts.URL, 0) {
					t.Fatal("delete(0) reported not deleted")
				}
				if servedDelete(t, ts.URL, 0) {
					t.Fatal("second delete(0) reported deleted")
				}
				check("post-mutation")

				resp := postJSON(t, ts.URL+"/v1/compact", "")
				if resp.StatusCode != http.StatusOK {
					b, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					t.Fatalf("compact status %d: %s", resp.StatusCode, b)
				}
				resp.Body.Close()
				check("post-compact")

				// Stats must reflect the interleaving through the wire.
				sresp, err := http.Get(ts.URL + "/v1/stats")
				if err != nil {
					t.Fatal(err)
				}
				var stats statsResponse
				if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
					t.Fatal(err)
				}
				sresp.Body.Close()
				if stats.Live != li.Len() {
					t.Fatalf("stats live %d != direct Len %d", stats.Live, li.Len())
				}
				if stats.Algorithm != alg.String() || stats.Measure != tc.Measure.String() {
					t.Fatalf("stats identity %q/%q, want %q/%q", stats.Measure, stats.Algorithm, tc.Measure, alg)
				}
			})
		}
	}
}

// TestServedHotReload drives POST /v1/load: the served index is
// swapped atomically for one loaded through Config.Loader, answers
// switch to the new corpus, and the retired index is Closed — late
// mutations on it get ErrLiveClosed while the server keeps serving.
// Without a Loader the route is 501; a failing load leaves the old
// index serving untouched.
func TestServedHotReload(t *testing.T) {
	ds, maps := corpus(t, bayeslsh.Cosine, 30)
	old := newLive(t, ds, bayeslsh.Cosine, bayeslsh.LSH, 0.6)

	// A grown snapshot to reload: same corpus plus one ingest.
	donor := newLive(t, ds, bayeslsh.Cosine, bayeslsh.LSH, 0.6)
	if _, err := donor.Add(mustVec(t, vecString(maps[1]))); err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(t.TempDir(), "grown.snap")
	if err := donor.SaveFile(snap); err != nil {
		t.Fatal(err)
	}
	donor.Close()

	srv := New(old, Config{Loader: func(path string) (Serveable, error) {
		return bayeslsh.LoadLiveFile(path, harness.LiveConfig())
	}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/load", `{"path":"/nonexistent/nope.snap"}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("load of missing path: status %d, want 500", resp.StatusCode)
	}
	resp.Body.Close()
	if got := servedQuery(t, ts.URL, vecString(maps[0]), 0); got == nil {
		t.Fatal("failed load took the old index out of service")
	}

	resp = postJSON(t, ts.URL+"/v1/load", fmt.Sprintf(`{"path":%q}`, snap))
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("load status %d: %s", resp.StatusCode, b)
	}
	var lr loadResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if lr.Live != 31 || lr.NextID != 31 {
		t.Fatalf("load response live=%d next=%d, want 31/31", lr.Live, lr.NextID)
	}

	// The swap is visible: stats now reflect the grown corpus, and the
	// retired index is closed to mutations.
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats statsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if stats.Live != 31 {
		t.Fatalf("post-load stats live = %d, want 31", stats.Live)
	}
	if _, err := old.Add(mustVec(t, vecString(maps[2]))); !errors.Is(err, bayeslsh.ErrLiveClosed) {
		t.Fatalf("retired index Add err = %v, want ErrLiveClosed", err)
	}
	srv.index().Close()

	// No Loader configured: the route answers 501.
	bare := newLive(t, ds, bayeslsh.Cosine, bayeslsh.LSH, 0.6)
	defer bare.Close()
	ts2 := httptest.NewServer(New(bare, Config{}).Handler())
	defer ts2.Close()
	resp = postJSON(t, ts2.URL+"/v1/load", fmt.Sprintf(`{"path":%q}`, snap))
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("loaderless /v1/load status %d, want 501", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestServedSaveRoundTrip drives POST /v1/save over a mutated index
// and proves the snapshot reloads into an index whose direct answers
// equal the answers the server was giving — the serve/save/reload
// consistency triangle.
func TestServedSaveRoundTrip(t *testing.T) {
	ds, maps := corpus(t, bayeslsh.Cosine, 60)
	li := newLive(t, ds, bayeslsh.Cosine, bayeslsh.LSHBayesLSH, 0.6)
	defer li.Close()
	ts := httptest.NewServer(New(li, Config{}).Handler())
	defer ts.Close()

	servedAdd(t, ts.URL, vecString(maps[2]))
	servedDelete(t, ts.URL, 1)

	path := filepath.Join(t.TempDir(), "live.snap")
	resp := postJSON(t, ts.URL+"/v1/save", fmt.Sprintf(`{"path":%q}`, path))
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("save status %d: %s", resp.StatusCode, b)
	}
	resp.Body.Close()

	loaded, err := bayeslsh.LoadLiveFile(path, harness.LiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	for _, mv := range maps[:6] {
		qs := vecString(mv)
		served := servedQuery(t, ts.URL, qs, 0)
		direct, err := loaded.Query(mustVec(t, qs), bayeslsh.QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !matchesEqual(served, direct) {
			t.Fatalf("loaded snapshot query != served:\n got %v\nwant %v", direct, served)
		}
	}
}
