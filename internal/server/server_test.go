package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"bayeslsh"
)

// The end-to-end harness: every route driven over real HTTP, with the
// served bytes decoded back and compared — float64-exact — against
// direct LiveIndex calls on the same index. The corpus generator
// keeps the raw feature maps next to the Dataset so the tests can
// render each vector in the wire grammar and know that both sides
// (the HTTP body and the direct ParseVec call) parse to the identical
// Vec.

// corpus builds a deterministic clustered corpus: n vectors over a
// 400-feature space, in planted near-duplicate triples so every
// pipeline has real matches to return. The returned maps are the raw
// feature maps, index-aligned with the dataset — already normalized
// for Cosine, binarized otherwise — so rendering map i yields dataset
// vector i exactly.
func corpus(tb testing.TB, m bayeslsh.Measure, n int) (*bayeslsh.Dataset, []map[uint32]float64) {
	tb.Helper()
	const dim = 400
	rng := rand.New(rand.NewSource(7))
	maps := make([]map[uint32]float64, 0, n)
	var center map[uint32]float64
	for i := 0; i < n; i++ {
		if i%3 == 0 || center == nil {
			center = make(map[uint32]float64, 18)
			for len(center) < 18 {
				center[uint32(rng.Intn(dim))] = 0.5 + rng.Float64()
			}
		}
		v := make(map[uint32]float64, len(center)+1)
		for f, w := range center {
			v[f] = w
		}
		if i%3 != 0 { // mutate the copies so similarities vary
			for f := range v {
				delete(v, f)
				break
			}
			v[uint32(rng.Intn(dim))] = 0.5 + rng.Float64()
		}
		maps = append(maps, prepMap(m, v))
	}
	ds := bayeslsh.NewDataset(dim)
	for _, v := range maps {
		ds.Add(v)
	}
	return ds, maps
}

// prepMap puts a raw feature map into the measure's input form:
// unit-normalized for Cosine, binarized for the set measures — the
// same preprocessing a corpus would get, applied to the map itself so
// map and dataset vector stay bit-identical.
func prepMap(m bayeslsh.Measure, v map[uint32]float64) map[uint32]float64 {
	out := make(map[uint32]float64, len(v))
	if m == bayeslsh.Cosine {
		var ss float64
		for _, w := range v {
			ss += w * w
		}
		norm := math.Sqrt(ss)
		for f, w := range v {
			out[f] = w / norm
		}
	} else {
		for f := range v {
			out[f] = 1
		}
	}
	return out
}

// vecString renders a feature map in the wire grammar, features
// sorted, weights in exact shortest-round-trip form.
func vecString(v map[uint32]float64) string {
	feats := make([]uint32, 0, len(v))
	for f := range v {
		feats = append(feats, f)
	}
	sort.Slice(feats, func(i, j int) bool { return feats[i] < feats[j] })
	var b strings.Builder
	for i, f := range feats {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%s", f, strconv.FormatFloat(v[f], 'g', -1, 64))
	}
	return b.String()
}

// mustVec parses a wire vector or fails the test.
func mustVec(tb testing.TB, s string) bayeslsh.Vec {
	tb.Helper()
	q, err := ParseVec(s)
	if err != nil {
		tb.Fatalf("ParseVec(%q): %v", s, err)
	}
	return q
}

// newLive builds a live index for one measure × pipeline cell, with
// automatic merging off so tests control compaction points.
func newLive(tb testing.TB, ds *bayeslsh.Dataset, m bayeslsh.Measure, alg bayeslsh.Algorithm, threshold float64) *bayeslsh.LiveIndex {
	tb.Helper()
	li, err := bayeslsh.NewLiveIndex(ds, m, bayeslsh.EngineConfig{Seed: 7, Parallelism: 2},
		bayeslsh.Options{Algorithm: alg, Threshold: threshold},
		bayeslsh.LiveConfig{MaxDelta: -1, MaxRatio: -1})
	if err != nil {
		tb.Fatal(err)
	}
	return li
}

// ndRow is the union of every NDJSON line shape the server emits.
type ndRow struct {
	Query   *int    `json:"query"`
	ID      *int    `json:"id"`
	Sim     float64 `json:"sim"`
	Done    bool    `json:"done"`
	Queries int     `json:"queries"`
	Matches int     `json:"matches"`
	Error   string  `json:"error"`
	Status  int     `json:"status"`
}

// postJSON posts body and returns the response; the caller owns
// resp.Body.
func postJSON(tb testing.TB, url, body string) *http.Response {
	tb.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		tb.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

// decodeStream decodes an NDJSON body, requiring a done marker.
func decodeStream(tb testing.TB, body io.Reader) []ndRow {
	tb.Helper()
	var rows []ndRow
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	done := false
	for sc.Scan() {
		var r ndRow
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			tb.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if r.Error != "" {
			tb.Fatalf("in-band stream error: %s (status %d)", r.Error, r.Status)
		}
		if r.Done {
			done = true
			break
		}
		rows = append(rows, r)
	}
	if err := sc.Err(); err != nil {
		tb.Fatal(err)
	}
	if !done {
		tb.Fatal("stream ended without a done marker")
	}
	return rows
}

// servedQuery drives POST /v1/query and returns the matches.
func servedQuery(tb testing.TB, base, vec string, threshold float64) []bayeslsh.Match {
	tb.Helper()
	body, _ := json.Marshal(queryRequest{Vec: vec, Threshold: threshold})
	resp := postJSON(tb, base+"/v1/query", string(body))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		tb.Fatalf("query status %d: %s", resp.StatusCode, b)
	}
	return rowsToMatches(tb, decodeStream(tb, resp.Body))
}

// servedTopK drives POST /v1/topk.
func servedTopK(tb testing.TB, base, vec string, k int) []bayeslsh.Match {
	tb.Helper()
	body, _ := json.Marshal(topkRequest{Vec: vec, K: k})
	resp := postJSON(tb, base+"/v1/topk", string(body))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		tb.Fatalf("topk status %d: %s", resp.StatusCode, b)
	}
	return rowsToMatches(tb, decodeStream(tb, resp.Body))
}

// servedBatch drives POST /v1/batch, returning per-query match
// slices.
func servedBatch(tb testing.TB, base string, vecs []string, threshold float64) [][]bayeslsh.Match {
	tb.Helper()
	body, _ := json.Marshal(batchRequest{Vecs: vecs, Threshold: threshold})
	resp := postJSON(tb, base+"/v1/batch", string(body))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		tb.Fatalf("batch status %d: %s", resp.StatusCode, b)
	}
	out := make([][]bayeslsh.Match, len(vecs))
	for _, r := range decodeStream(tb, resp.Body) {
		if r.Query == nil || r.ID == nil {
			tb.Fatalf("batch row missing query/id: %+v", r)
		}
		out[*r.Query] = append(out[*r.Query], bayeslsh.Match{ID: *r.ID, Sim: r.Sim})
	}
	return out
}

func rowsToMatches(tb testing.TB, rows []ndRow) []bayeslsh.Match {
	tb.Helper()
	ms := make([]bayeslsh.Match, 0, len(rows))
	for _, r := range rows {
		if r.ID == nil {
			tb.Fatalf("row missing id: %+v", r)
		}
		ms = append(ms, bayeslsh.Match{ID: *r.ID, Sim: r.Sim})
	}
	return ms
}

// servedAdd drives POST /v1/add and returns the assigned id.
func servedAdd(tb testing.TB, base, vec string) int {
	tb.Helper()
	body, _ := json.Marshal(addRequest{Vec: vec})
	resp := postJSON(tb, base+"/v1/add", string(body))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		tb.Fatalf("add status %d: %s", resp.StatusCode, b)
	}
	var ar addResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		tb.Fatal(err)
	}
	return ar.ID
}

// servedDelete drives POST /v1/delete and reports whether the id was
// live.
func servedDelete(tb testing.TB, base string, id int) bool {
	tb.Helper()
	resp := postJSON(tb, base+"/v1/delete", fmt.Sprintf(`{"id":%d}`, id))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		tb.Fatalf("delete status %d: %s", resp.StatusCode, b)
	}
	var dr deleteResponse
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		tb.Fatal(err)
	}
	return dr.Deleted
}

// e2eCases is the measure matrix of the bit-identity harness; the
// pipeline axis comes from Algorithms(measure) + BruteForce.
var e2eCases = []struct {
	m bayeslsh.Measure
	t float64
}{
	{bayeslsh.Cosine, 0.6},
	{bayeslsh.Jaccard, 0.5},
	{bayeslsh.BinaryCosine, 0.6},
}

// TestServedBitIdenticalToDirect is the acceptance harness: for every
// measure × pipeline, /v1/query, /v1/topk and /v1/batch responses are
// decoded and compared — ids and float64 similarities exactly equal —
// against direct LiveIndex calls on the same index, before and after
// HTTP-driven add/delete interleavings and an HTTP-driven compaction.
func TestServedBitIdenticalToDirect(t *testing.T) {
	for _, tc := range e2eCases {
		ds, maps := corpus(t, tc.m, 90)
		for _, alg := range append(bayeslsh.Algorithms(tc.m), bayeslsh.BruteForce) {
			if alg == bayeslsh.PPJoin {
				continue // no query-serving index (join-order-dependent prefix filter)
			}
			t.Run(fmt.Sprintf("%v/%v", tc.m, alg), func(t *testing.T) {
				li := newLive(t, ds, tc.m, alg, tc.t)
				defer li.Close()
				// BatchChunk 4 makes an 11-query batch span 3 pinned
				// chunks, exercising the streamed chunk path.
				ts := httptest.NewServer(New(li, Config{BatchChunk: 4}).Handler())
				defer ts.Close()

				queries := make([]string, 0, 11)
				for _, mv := range maps[:10] {
					queries = append(queries, vecString(mv))
				}
				queries = append(queries, vecString(prepMap(tc.m, map[uint32]float64{3: 1, 44: 0.8, 199: 1.2})))

				check := func(stage string) {
					t.Helper()
					for _, qs := range queries[:4] {
						q := mustVec(t, qs)
						want, err := li.Query(q, bayeslsh.QueryOptions{})
						if err != nil {
							t.Fatalf("%s: direct query: %v", stage, err)
						}
						if got := servedQuery(t, ts.URL, qs, 0); !matchesEqual(got, want) {
							t.Fatalf("%s: served query != direct:\n got %v\nwant %v", stage, got, want)
						}
						wantK, err := li.TopK(q, 5)
						if err != nil {
							t.Fatalf("%s: direct topk: %v", stage, err)
						}
						if got := servedTopK(t, ts.URL, qs, 5); !matchesEqual(got, wantK) {
							t.Fatalf("%s: served topk != direct:\n got %v\nwant %v", stage, got, wantK)
						}
					}
					qvecs := make([]bayeslsh.Vec, len(queries))
					for i, qs := range queries {
						qvecs[i] = mustVec(t, qs)
					}
					want, err := li.QueryBatch(qvecs, bayeslsh.QueryOptions{})
					if err != nil {
						t.Fatalf("%s: direct batch: %v", stage, err)
					}
					got := servedBatch(t, ts.URL, queries, 0)
					for i := range want {
						if !matchesEqual(got[i], want[i]) {
							t.Fatalf("%s: served batch[%d] != direct:\n got %v\nwant %v", stage, i, got[i], want[i])
						}
					}
				}

				check("cold")

				// Mutate through the wire: two ingests (near-duplicates
				// of corpus vectors, so they land in result sets), two
				// deletes, one no-op delete.
				next := li.Stats().NextID
				for j, src := range maps[1:3] {
					if id := servedAdd(t, ts.URL, vecString(src)); id != next+j {
						t.Fatalf("add returned id %d, want %d", id, next+j)
					}
				}
				if !servedDelete(t, ts.URL, 0) {
					t.Fatal("delete(0) reported not deleted")
				}
				if servedDelete(t, ts.URL, 0) {
					t.Fatal("second delete(0) reported deleted")
				}
				check("post-mutation")

				resp := postJSON(t, ts.URL+"/v1/compact", "")
				if resp.StatusCode != http.StatusOK {
					b, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					t.Fatalf("compact status %d: %s", resp.StatusCode, b)
				}
				resp.Body.Close()
				check("post-compact")

				// Stats must reflect the interleaving through the wire.
				sresp, err := http.Get(ts.URL + "/v1/stats")
				if err != nil {
					t.Fatal(err)
				}
				var stats statsResponse
				if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
					t.Fatal(err)
				}
				sresp.Body.Close()
				if stats.Live != li.Len() {
					t.Fatalf("stats live %d != direct Len %d", stats.Live, li.Len())
				}
				if stats.Algorithm != alg.String() || stats.Measure != tc.m.String() {
					t.Fatalf("stats identity %q/%q, want %q/%q", stats.Measure, stats.Algorithm, tc.m, alg)
				}
			})
		}
	}
}

// matchesEqual is strict equality: same ids, same float64 bits.
func matchesEqual(a, b []bayeslsh.Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestServedSaveRoundTrip drives POST /v1/save over a mutated index
// and proves the snapshot reloads into an index whose direct answers
// equal the answers the server was giving — the serve/save/reload
// consistency triangle.
func TestServedSaveRoundTrip(t *testing.T) {
	ds, maps := corpus(t, bayeslsh.Cosine, 60)
	li := newLive(t, ds, bayeslsh.Cosine, bayeslsh.LSHBayesLSH, 0.6)
	defer li.Close()
	ts := httptest.NewServer(New(li, Config{}).Handler())
	defer ts.Close()

	servedAdd(t, ts.URL, vecString(maps[2]))
	servedDelete(t, ts.URL, 1)

	path := filepath.Join(t.TempDir(), "live.snap")
	resp := postJSON(t, ts.URL+"/v1/save", fmt.Sprintf(`{"path":%q}`, path))
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("save status %d: %s", resp.StatusCode, b)
	}
	resp.Body.Close()

	loaded, err := bayeslsh.LoadLiveFile(path, bayeslsh.LiveConfig{MaxDelta: -1, MaxRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	for _, mv := range maps[:6] {
		qs := vecString(mv)
		served := servedQuery(t, ts.URL, qs, 0)
		direct, err := loaded.Query(mustVec(t, qs), bayeslsh.QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !matchesEqual(served, direct) {
			t.Fatalf("loaded snapshot query != served:\n got %v\nwant %v", direct, served)
		}
	}
}
