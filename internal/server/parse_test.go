package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"bayeslsh"
)

// TestParseVecTokens is the table-driven contract of the shared wire
// grammar: what both the stdin loop and the HTTP bodies accept, and
// the exact failures they reject.
func TestParseVecTokens(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		wantLen int    // non-zero features of the parsed vector
		wantErr string // substring; empty = must parse
	}{
		{name: "weighted", in: "1:0.5 2:0.25 7:1", wantLen: 3},
		{name: "weight defaults to 1", in: "3 9 12", wantLen: 3},
		{name: "duplicates sum", in: "5:0.5 5:0.25", wantLen: 1},
		{name: "duplicates cancel to zero", in: "5:0.5 5:-0.5", wantLen: 0},
		{name: "scientific notation", in: "2:1e-3", wantLen: 1},
		{name: "max uint32 feature", in: "4294967295:1", wantLen: 1},
		{name: "empty", in: "", wantErr: "empty vector"},
		{name: "whitespace only", in: "   ", wantErr: "empty vector"},
		{name: "negative feature", in: "-1:0.5", wantErr: `bad feature "-1:0.5"`},
		{name: "feature overflow", in: "4294967296:1", wantErr: "bad feature"},
		{name: "non-numeric feature", in: "x:1", wantErr: `bad feature "x:1"`},
		{name: "float feature", in: "1.5:1", wantErr: "bad feature"},
		{name: "bad weight", in: "1:x", wantErr: `bad weight "1:x"`},
		{name: "empty weight", in: "1:", wantErr: "bad weight"},
		{name: "NaN weight", in: "1:NaN", wantErr: `non-finite weight "1:NaN"`},
		{name: "Inf weight", in: "1:Inf", wantErr: "non-finite weight"},
		{name: "negative Inf weight", in: "1:-inf", wantErr: "non-finite weight"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v, err := ParseVec(tc.in)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("ParseVec(%q) err = %v, want containing %q", tc.in, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseVec(%q): %v", tc.in, err)
			}
			if v.Len() != tc.wantLen {
				t.Fatalf("ParseVec(%q).Len() = %d, want %d", tc.in, v.Len(), tc.wantLen)
			}
		})
	}
}

// TestFormatVecRoundTrip is the wire fidelity contract the sharded
// HTTP backend rests on: ParseVec(FormatVec(q)) reproduces q with the
// exact float64 bits, including values with no short decimal form.
func TestFormatVecRoundTrip(t *testing.T) {
	cases := []map[uint32]float64{
		{1: 0.5, 2: 0.25, 7: 1},
		{3: 1.0 / 3.0, 44: 0.1 + 0.2, 199: 1e-17},
		{0: 1e308, 4294967295: 5e-324}, // extreme magnitudes, extreme features
		{9: -0.75, 10: 123456789.123456789},
	}
	for _, m := range cases {
		q := bayeslsh.NewVec(m)
		back, err := ParseVec(FormatVec(q))
		if err != nil {
			t.Fatalf("ParseVec(FormatVec(%v)): %v", m, err)
		}
		bi, bv := back.Features()
		qi, qv := q.Features()
		if len(bi) != len(qi) {
			t.Fatalf("round trip changed length: %d -> %d", len(qi), len(bi))
		}
		for j := range qi {
			if bi[j] != qi[j] || bv[j] != qv[j] {
				t.Fatalf("round trip changed feature %d: (%d,%v) -> (%d,%v)", j, qi[j], qv[j], bi[j], bv[j])
			}
		}
	}
	// The matrix corpus renders through the same grammar: VecString of
	// a raw map and FormatVec of its parsed Vec must agree token for
	// token, so either side of a test can render a query.
	q := mustVec(t, "5:0.30000000000000004 9:1")
	if got, want := FormatVec(q), "5:0.30000000000000004 9:1"; got != want {
		t.Fatalf("FormatVec = %q, want %q", got, want)
	}
}

// hostileServer builds one shared server for the hostile-input tests:
// a tiny body cap so the oversize path is reachable with small
// payloads.
func hostileServer(tb testing.TB) (*Server, *bayeslsh.LiveIndex) {
	tb.Helper()
	ds, _ := corpus(tb, bayeslsh.Cosine, 30)
	li, err := bayeslsh.NewLiveIndex(ds, bayeslsh.Cosine,
		bayeslsh.EngineConfig{Seed: 7}, bayeslsh.Options{Algorithm: bayeslsh.LSH, Threshold: 0.6},
		bayeslsh.LiveConfig{MaxDelta: -1, MaxRatio: -1})
	if err != nil {
		tb.Fatal(err)
	}
	return New(li, Config{MaxBody: 4 << 10}), li
}

// TestHostileRequests: malformed JSON, non-finite weights, oversized
// bodies, bad ids, bad parameters, wrong methods, unknown routes —
// every one a typed 4xx with a JSON error body, never a panic, never
// a 5xx.
func TestHostileRequests(t *testing.T) {
	srv, li := hostileServer(t)
	defer li.Close()
	h := srv.Handler()

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		{"empty body", "POST", "/v1/query", ``, 400},
		{"not json", "POST", "/v1/query", `not json at all`, 400},
		{"truncated json", "POST", "/v1/query", `{"vec":"1:0.5"`, 400},
		{"trailing garbage", "POST", "/v1/query", `{"vec":"1:0.5"} extra`, 400},
		{"unknown field", "POST", "/v1/query", `{"vec":"1:0.5","bogus":1}`, 400},
		{"wrong vec type", "POST", "/v1/query", `{"vec":[1,2]}`, 400},
		{"empty vec", "POST", "/v1/query", `{"vec":""}`, 400},
		{"NaN weight", "POST", "/v1/query", `{"vec":"1:NaN 2:0.5"}`, 400},
		{"Inf weight", "POST", "/v1/query", `{"vec":"1:Inf"}`, 400},
		{"bad feature", "POST", "/v1/query", `{"vec":"-1:0.5"}`, 400},
		{"threshold above 1", "POST", "/v1/query", `{"vec":"1:0.5","threshold":1.5}`, 400},
		{"threshold below built", "POST", "/v1/query", `{"vec":"1:0.5","threshold":0.1}`, 400},
		{"json NaN literal", "POST", "/v1/query", `{"vec":"1:0.5","threshold":NaN}`, 400},
		{"oversized body", "POST", "/v1/query", fmt.Sprintf(`{"vec":%q}`, strings.Repeat("1:0.5 ", 2000)), 413},
		{"k zero", "POST", "/v1/topk", `{"vec":"1:0.5","k":0}`, 400},
		{"k negative", "POST", "/v1/topk", `{"vec":"1:0.5","k":-3}`, 400},
		{"k wrong type", "POST", "/v1/topk", `{"vec":"1:0.5","k":"ten"}`, 400},
		{"batch bad vec", "POST", "/v1/batch", `{"vecs":["1:0.5","x:y"]}`, 400},
		{"batch wrong type", "POST", "/v1/batch", `{"vecs":"1:0.5"}`, 400},
		{"add empty vec", "POST", "/v1/add", `{"vec":""}`, 400},
		{"add NaN", "POST", "/v1/add", `{"vec":"1:nan"}`, 400},
		{"add out-of-range feature", "POST", "/v1/add", `{"vec":"400000:1"}`, 400},
		{"delete missing id", "POST", "/v1/delete", `{}`, 400},
		{"delete string id", "POST", "/v1/delete", `{"id":"seven"}`, 400},
		{"delete float id", "POST", "/v1/delete", `{"id":1.5}`, 400},
		{"save missing path", "POST", "/v1/save", `{}`, 400},
		{"query via GET", "GET", "/v1/query", ``, 405},
		{"stats via POST", "POST", "/v1/stats", `{}`, 405},
		{"unknown route", "POST", "/v1/nope", `{}`, 404},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != tc.want {
				t.Fatalf("status %d, want %d (body %s)", rec.Code, tc.want, rec.Body)
			}
			if rec.Code >= 500 {
				t.Fatalf("hostile input produced a 5xx: %s", rec.Body)
			}
			// Routed 4xx responses carry a JSON error body (the mux's
			// own 404/405 text responses are exempt).
			if rec.Code != 404 && rec.Code != 405 {
				var ae apiError
				if err := json.Unmarshal(rec.Body.Bytes(), &ae); err != nil || ae.Error == "" {
					t.Fatalf("error body not apiError JSON: %q", rec.Body)
				}
			}
		})
	}
}

// FuzzQueryRequest throws arbitrary bytes at the decode → parse →
// query path of /v1/query and /v1/add: any outcome is fine except a
// panic or a 5xx.
func FuzzQueryRequest(f *testing.F) {
	srv, li := hostileServer(f)
	defer li.Close()
	h := srv.Handler()

	f.Add(`{"vec":"1:0.5 2:0.25"}`)
	f.Add(`{"vec":"1:NaN"}`)
	f.Add(`{"vec":"","threshold":2}`)
	f.Add(`{"vec":"4294967295:1e308"}`)
	f.Add(`{`)
	f.Add(`[]`)
	f.Add("\x00\x01\xff")
	f.Add(`{"vec":"1:0.5","threshold":0.99}`)
	f.Fuzz(func(t *testing.T, body string) {
		for _, path := range []string{"/v1/query", "/v1/add"} {
			req := httptest.NewRequest("POST", path, strings.NewReader(body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code >= 500 {
				t.Fatalf("%s: body %q produced status %d: %s", path, body, rec.Code, rec.Body)
			}
		}
	})
}

// TestMetricsExposition: the text endpoint carries the per-route
// counters, the in-flight gauge and the live-segment stats, and
// counts 4xx separately from 2xx.
func TestMetricsExposition(t *testing.T) {
	srv, li := hostileServer(t)
	defer li.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	servedQuery(t, ts.URL, "1:0.5 2:0.5", 0)
	resp := postJSON(t, ts.URL+"/v1/query", `broken`)
	resp.Body.Close()

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`apss_requests_total{route="query",class="2xx"} 1`,
		`apss_requests_total{route="query",class="4xx"} 1`,
		`apss_request_duration_seconds_count{route="query"} 2`,
		"apss_in_flight 0",
		"apss_handler_panics_total 0",
		"apss_live_vectors 30",
		`apss_live_segment_vectors{segment="base"} 30`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n%s", want, body)
		}
	}
}
