package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bayeslsh"
)

// Lifecycle coverage: parallel clients racing ingest under -race,
// mid-request cancellation and deadline paths with goroutine-leak
// accounting, the admission gate, and graceful drain with zero
// dropped in-flight requests.

// requireNoGoroutineLeak polls until the goroutine count returns to
// the recorded baseline (the context_test.go pattern: counts may
// transiently exceed it while canceled work drains; they must
// settle).
func requireNoGoroutineLeak(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d goroutines, baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerParallelClientsRacingIngest hammers one server from
// parallel query, mutation and observability clients — the
// ingest-while-serving contract over the wire, meaningful under
// -race. Every response must be well-formed and non-5xx.
func TestServerParallelClientsRacingIngest(t *testing.T) {
	base := runtime.NumGoroutine()
	ds, maps := corpus(t, bayeslsh.Cosine, 60)
	li := newLive(t, ds, bayeslsh.Cosine, bayeslsh.LSHBayesLSHLite, 0.6)
	ts := httptest.NewServer(New(li, Config{BatchChunk: 3}).Handler())

	var wg sync.WaitGroup
	var failures atomic.Int64
	fail := func(format string, args ...any) {
		failures.Add(1)
		t.Errorf(format, args...)
	}
	for c := 0; c < 4; c++ { // query clients
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 15 && failures.Load() == 0; i++ {
				qs := vecString(maps[(c*7+i)%len(maps)])
				body, _ := json.Marshal(queryRequest{Vec: qs})
				resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(string(body)))
				if err != nil {
					fail("query client %d: %v", c, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					b, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					fail("query client %d: status %d: %s", c, resp.StatusCode, b)
					return
				}
				sc := json.NewDecoder(resp.Body)
				for {
					var r ndRow
					if err := sc.Decode(&r); err != nil {
						fail("query client %d: decode: %v", c, err)
						break
					}
					if r.Done {
						break
					}
				}
				resp.Body.Close()
			}
		}(c)
	}
	for c := 0; c < 2; c++ { // mutation clients
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 10 && failures.Load() == 0; i++ {
				body, _ := json.Marshal(addRequest{Vec: vecString(maps[(c*11+i)%len(maps)])})
				resp, err := http.Post(ts.URL+"/v1/add", "application/json", strings.NewReader(string(body)))
				if err != nil {
					fail("add client %d: %v", c, err)
					return
				}
				var ar addResponse
				if resp.StatusCode != http.StatusOK {
					b, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					fail("add client %d: status %d: %s", c, resp.StatusCode, b)
					return
				}
				if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
					fail("add client %d: %v", c, err)
				}
				resp.Body.Close()
				if i%3 == 0 {
					resp, err := http.Post(ts.URL+"/v1/delete", "application/json",
						strings.NewReader(fmt.Sprintf(`{"id":%d}`, ar.ID)))
					if err != nil {
						fail("delete client %d: %v", c, err)
						return
					}
					resp.Body.Close()
				}
			}
		}(c)
	}
	wg.Add(1)
	go func() { // observability client
		defer wg.Done()
		for i := 0; i < 10 && failures.Load() == 0; i++ {
			for _, path := range []string{"/v1/stats", "/metrics"} {
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					fail("GET %s: %v", path, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					fail("GET %s: status %d", path, resp.StatusCode)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}()
	wg.Wait()

	ts.Close()
	li.Close()
	http.DefaultClient.CloseIdleConnections()
	requireNoGoroutineLeak(t, base)
}

// TestServerDeadline: a request whose X-Apss-Timeout has already
// elapsed by the time the index is consulted gets a clean 504 with a
// JSON error body, and the server leaks nothing.
func TestServerDeadline(t *testing.T) {
	base := runtime.NumGoroutine()
	ds, maps := corpus(t, bayeslsh.Cosine, 30)
	li := newLive(t, ds, bayeslsh.Cosine, bayeslsh.LSH, 0.6)
	ts := httptest.NewServer(New(li, Config{}).Handler())

	body, _ := json.Marshal(queryRequest{Vec: vecString(maps[0])})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/query", strings.NewReader(string(body)))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TimeoutHeader, "1ns")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusGatewayTimeout {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, b)
	}
	var ae apiError
	if err := json.NewDecoder(resp.Body).Decode(&ae); err != nil {
		t.Fatalf("504 body not JSON: %v", err)
	}
	resp.Body.Close()
	if ae.Status != http.StatusGatewayTimeout || ae.Error == "" {
		t.Fatalf("bad error body: %+v", ae)
	}

	// An unparsable override is a 400, not a silent fallback.
	req, _ = http.NewRequest("POST", ts.URL+"/v1/query", strings.NewReader(string(body)))
	req.Header.Set(TimeoutHeader, "soon")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad timeout header: status %d, want 400", resp.StatusCode)
	}

	ts.Close()
	li.Close()
	http.DefaultClient.CloseIdleConnections()
	requireNoGoroutineLeak(t, base)
}

// TestServerClientCancelMidRequest: a client that disappears while
// its request is held in flight must not leak a goroutine or wedge
// the server — the handler finishes against a dead connection and the
// next client is served normally.
func TestServerClientCancelMidRequest(t *testing.T) {
	base := runtime.NumGoroutine()
	ds, maps := corpus(t, bayeslsh.Cosine, 30)
	li := newLive(t, ds, bayeslsh.Cosine, bayeslsh.LSH, 0.6)
	srv := New(li, Config{})
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	srv.testHook = func(string) {
		entered <- struct{}{}
		<-release
	}
	ts := httptest.NewServer(srv.Handler())

	body, _ := json.Marshal(queryRequest{Vec: vecString(maps[0])})
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/query", strings.NewReader(string(body)))
	errc := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errc <- err
	}()
	<-entered // the request is in flight
	cancel()  // the client walks away mid-request
	if err := <-errc; err == nil {
		t.Fatal("expected the canceled client call to fail")
	}
	close(release) // the handler now runs against a dead connection

	// The server must still serve the next client.
	srv.testHook = nil
	if got := servedQuery(t, ts.URL, vecString(maps[1]), 0); got == nil {
		t.Log("empty result is fine; the assertion is the 200 path")
	}

	ts.Close()
	li.Close()
	http.DefaultClient.CloseIdleConnections()
	requireNoGoroutineLeak(t, base)
}

// TestServerAdmissionGate: with MaxInFlight=1 and one request held in
// the handler, the next request is refused with 429 + Retry-After
// before any index work, and admission recovers once the slot frees.
func TestServerAdmissionGate(t *testing.T) {
	base := runtime.NumGoroutine()
	ds, maps := corpus(t, bayeslsh.Cosine, 30)
	li := newLive(t, ds, bayeslsh.Cosine, bayeslsh.LSH, 0.6)
	srv := New(li, Config{MaxInFlight: 1})
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	srv.testHook = func(string) {
		select {
		case entered <- struct{}{}:
			<-release
		default: // later requests pass through
		}
	}
	ts := httptest.NewServer(srv.Handler())

	body, _ := json.Marshal(queryRequest{Vec: vecString(maps[0])})
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(string(body)))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	<-entered

	resp := postJSON(t, ts.URL+"/v1/query", string(body))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	close(release)
	<-done
	// The slot is free again: the same request is now admitted.
	resp = postJSON(t, ts.URL+"/v1/query", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release status %d, want 200", resp.StatusCode)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	ts.Close()
	li.Close()
	http.DefaultClient.CloseIdleConnections()
	requireNoGoroutineLeak(t, base)
}

// TestServerGracefulDrain is the SIGTERM-equivalent shutdown path: a
// request held in flight when Shutdown begins runs to completion (its
// stream ends with the done marker — zero dropped in-flight
// requests), new requests are refused, Shutdown returns cleanly, the
// drain snapshot is written, and no goroutine survives.
func TestServerGracefulDrain(t *testing.T) {
	base := runtime.NumGoroutine()
	ds, maps := corpus(t, bayeslsh.Cosine, 30)
	li := newLive(t, ds, bayeslsh.Cosine, bayeslsh.LSH, 0.6)
	snap := filepath.Join(t.TempDir(), "drain.snap")
	srv := New(li, Config{DrainSave: snap})
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	srv.testHook = func(route string) {
		if route != "query" {
			return // the drain probes below must not be held
		}
		select {
		case entered <- struct{}{}:
			<-release
		default:
		}
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	url := "http://" + ln.Addr().String()

	// Hold one request in flight.
	body, _ := json.Marshal(queryRequest{Vec: vecString(maps[0])})
	type result struct {
		ms  []bayeslsh.Match
		err error
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := http.Post(url+"/v1/query", "application/json", strings.NewReader(string(body)))
		if err != nil {
			inflight <- result{err: err}
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			inflight <- result{err: fmt.Errorf("status %d", resp.StatusCode)}
			return
		}
		var last ndRow
		ms := []bayeslsh.Match{}
		dec := json.NewDecoder(resp.Body)
		for {
			var r ndRow
			if err := dec.Decode(&r); err != nil {
				inflight <- result{err: fmt.Errorf("stream ended before done: %v", err)}
				return
			}
			if r.Done {
				last = r
				break
			}
			if r.ID != nil {
				ms = append(ms, bayeslsh.Match{ID: *r.ID, Sim: r.Sim})
			}
		}
		if !last.Done {
			inflight <- result{err: errors.New("no done marker")}
			return
		}
		inflight <- result{ms: ms}
	}()
	<-entered

	// Begin the drain while that request is still in flight.
	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()

	// New connections are refused once the listener closes; a request
	// that does land on an open connection gets 503. Either way no new
	// work is accepted.
	refusedDeadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url + "/v1/stats")
		if err != nil {
			break // connection refused: the listener is closed
		}
		code := resp.StatusCode
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(refusedDeadline) {
			t.Fatal("drain never started refusing new requests")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The in-flight request must complete, not be dropped.
	release <- struct{}{}
	res := <-inflight
	if res.err != nil {
		t.Fatalf("in-flight request dropped during drain: %v", res.err)
	}
	want, err := li.Query(mustVec(t, vecString(maps[0])), bayeslsh.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !matchesEqual(res.ms, want) {
		t.Fatalf("drained in-flight response diverged:\n got %v\nwant %v", res.ms, want)
	}

	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	// The final snapshot exists and reloads.
	loaded, err := bayeslsh.LoadLiveFile(snap, bayeslsh.LiveConfig{})
	if err != nil {
		t.Fatalf("drain snapshot unreadable: %v", err)
	}
	loaded.Close()

	li.Close()
	http.DefaultClient.CloseIdleConnections()
	requireNoGoroutineLeak(t, base)
}
