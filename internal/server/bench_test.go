package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"bayeslsh"
)

// BenchmarkServeQuery measures the full serving path — HTTP request,
// JSON decode, wire-grammar parse, LiveIndex query, NDJSON encode —
// for one client issuing point queries back to back, and reports
// req/s with p50/p99 request latencies. This is the serving-layer
// entry of the BENCH_*.json perf trajectory (CI parses it into
// BENCH_serve.json).
func BenchmarkServeQuery(b *testing.B) {
	ds, maps := corpus(b, bayeslsh.Cosine, 1000)
	li, err := bayeslsh.NewLiveIndex(ds, bayeslsh.Cosine,
		bayeslsh.EngineConfig{Seed: 7},
		bayeslsh.Options{Algorithm: bayeslsh.LSHBayesLSH, Threshold: 0.6},
		bayeslsh.LiveConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer li.Close()
	ts := httptest.NewServer(New(li, Config{}).Handler())
	defer ts.Close()

	bodies := make([]string, 64)
	for i := range bodies {
		raw, _ := json.Marshal(queryRequest{Vec: vecString(maps[i*7%len(maps)])})
		bodies[i] = string(raw)
	}
	client := ts.Client()

	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		resp, err := client.Post(ts.URL+"/v1/query", "application/json",
			strings.NewReader(bodies[i%len(bodies)]))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		lat = append(lat, time.Since(start))
	}
	b.StopTimer()

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	var sum time.Duration
	for _, d := range lat {
		sum += d
	}
	b.ReportMetric(float64(b.N)/sum.Seconds(), "req/s")
	b.ReportMetric(float64(lat[len(lat)/2].Nanoseconds()), "p50-ns/req")
	b.ReportMetric(float64(lat[len(lat)*99/100].Nanoseconds()), "p99-ns/req")
}
