package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"

	"bayeslsh"
)

// The wire vector format, shared verbatim by the HTTP JSON bodies and
// the apss serve stdin loop: whitespace-separated "<feature>[:<weight>]"
// tokens, weight 1 when omitted, duplicate features summed. Both
// entry points parse through ParseVecTokens, so the accepted grammar
// and the error texts cannot drift between them.

// ParseVecTokens parses "<feature>[:<weight>]" tokens (weight 1 when
// omitted) into a query vector. Features must be decimal uint32s;
// weights must be finite floats — NaN and ±Inf are rejected here, at
// the edge, so no non-finite value ever reaches the similarity
// kernels.
func ParseVecTokens(tokens []string) (bayeslsh.Vec, error) {
	if len(tokens) == 0 {
		return bayeslsh.Vec{}, errors.New("empty vector: need <f>[:<w>] tokens")
	}
	m := make(map[uint32]float64, len(tokens))
	for _, tok := range tokens {
		fs, ws, hasW := strings.Cut(tok, ":")
		f, err := strconv.ParseUint(fs, 10, 32)
		if err != nil {
			return bayeslsh.Vec{}, fmt.Errorf("bad feature %q", tok)
		}
		w := 1.0
		if hasW {
			if w, err = strconv.ParseFloat(ws, 64); err != nil {
				return bayeslsh.Vec{}, fmt.Errorf("bad weight %q", tok)
			}
			if math.IsNaN(w) || math.IsInf(w, 0) {
				return bayeslsh.Vec{}, fmt.Errorf("non-finite weight %q", tok)
			}
		}
		m[uint32(f)] += w
	}
	return bayeslsh.NewVec(m), nil
}

// ParseVec parses a whitespace-separated vector string — the JSON
// request form of the same grammar.
func ParseVec(s string) (bayeslsh.Vec, error) {
	return ParseVecTokens(strings.Fields(s))
}

// FormatVec renders a query vector in the wire grammar, the inverse of
// ParseVec: "<feature>:<weight>" tokens, weights in Go's shortest
// round-trip float form so ParseVec(FormatVec(q)) reproduces q
// bit-exactly — the property the sharded HTTP backend relies on for
// cross-shard bit-identity.
func FormatVec(q bayeslsh.Vec) string {
	ind, val := q.Features()
	var b strings.Builder
	for i, f := range ind {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strconv.FormatUint(uint64(f), 10))
		b.WriteByte(':')
		b.WriteString(strconv.FormatFloat(val[i], 'g', -1, 64))
	}
	return b.String()
}

// decodeJSON decodes the request body into v: strict (unknown fields
// and trailing garbage rejected), size-capped by the middleware's
// MaxBytesReader. It writes the error response itself and reports
// whether decoding succeeded, so handlers read as
// `if !decodeJSON(...) { return }`.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			httpError(w, http.StatusRequestEntityTooLarge,
				"request body over %d bytes", mbe.Limit)
			return false
		}
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		httpError(w, http.StatusBadRequest, "trailing data after JSON body")
		return false
	}
	return true
}
