// Package server is the HTTP/JSON serving layer over a live index:
// the network front end that turns the ingest-while-serving LiveIndex
// into a long-running daemon (apss serve -http). It exposes the full
// live surface — threshold queries, top-k, sharded batches, ingest,
// deletes, stats, compaction, snapshots — as a small JSON API with
// NDJSON-streamed result delivery, and owns the production lifecycle
// around it: per-request deadlines with a header override, a
// max-in-flight admission gate that sheds load with 429 before work
// starts, graceful drain (stop accepting, finish in-flight, optional
// final snapshot), per-route metrics, and pprof.
//
// Routes (see docs/SERVING.md for the wire reference):
//
//	POST /v1/query    {"vec":"<f>[:<w>] ...","threshold":t}  -> NDJSON match rows
//	POST /v1/topk     {"vec":"...","k":n}                    -> NDJSON match rows
//	POST /v1/batch    {"vecs":["...",...],"threshold":t}     -> NDJSON rows, streamed per chunk
//	POST /v1/add      {"vec":"..."}                          -> {"id":n}
//	POST /v1/delete   {"id":n}                               -> {"id":n,"deleted":bool}
//	GET  /v1/stats                                           -> index + segment shape
//	POST /v1/compact  {}                                     -> {"merges":n,"took_ms":ms}
//	POST /v1/save     {"path":"..."}                         -> {"saved":"..."}
//	POST /v1/load     {"path":"..."}                         -> {"loaded":"...","live":n,...}
//	GET  /metrics                                            -> text exposition
//	GET  /debug/pprof/...                                    -> net/http/pprof
//
// Served results are bit-identical to direct LiveIndex calls: the
// handlers add no rounding, no reordering, no post-processing, and
// encoding/json round-trips float64 exactly. The streamed /v1/batch
// runs in pinned chunks — each chunk is one QueryBatchContext call
// over one generation, delivered (and flushed) before the next chunk
// starts, so response memory is bounded by the chunk size rather than
// the full result set, the Engine.Stream delivery model applied to
// the serving path.
package server

import (
	"context"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"bayeslsh"
	"bayeslsh/internal/rescache"
)

// Config carries the serving knobs; the zero value selects the
// defaults noted on each field.
type Config struct {
	// Timeout is the default per-request deadline. Requests may
	// override it with an X-Apss-Timeout header (a Go duration),
	// capped at MaxTimeout. 0 selects 1 minute; negative disables the
	// default deadline (header overrides still apply).
	Timeout time.Duration
	// MaxTimeout caps the per-request override. 0 selects 5 minutes.
	MaxTimeout time.Duration
	// MaxInFlight is the admission gate: requests beyond this many
	// concurrently executing /v1/ calls are refused with 429 before
	// any decoding or index work. 0 selects 256; negative disables
	// the gate.
	MaxInFlight int
	// MaxBody caps the request body in bytes; larger bodies get 413.
	// 0 selects 8 MiB.
	MaxBody int64
	// BatchChunk is the number of queries per pinned /v1/batch chunk:
	// each chunk is answered by one QueryBatchContext call and
	// flushed before the next starts. 0 selects 256.
	BatchChunk int
	// DrainSave, when non-empty, is a live-snapshot path written
	// after a graceful Shutdown has finished the in-flight requests —
	// the final consistent cut of a terminating server.
	DrainSave string
	// CacheSize, when positive, fronts the index with a result cache
	// (internal/rescache) of that many entries: /v1/query and /v1/topk
	// responses are memoized by query hash and params, invalidated on
	// every mutation, with hit/miss/eviction counters in /metrics. A
	// cache hit is byte-identical to a miss. 0 disables caching.
	CacheSize int
	// Loader, when non-nil, enables POST /v1/load: it turns a
	// server-local path into a fresh index, which the server swaps in
	// atomically (hot reload; the retired index is Closed — in-flight
	// queries on it finish, late mutations get 503). What the path
	// means is the loader's business: apss serve installs a
	// live-snapshot loader for a single-node index and a
	// cluster-manifest loader under -shards. Nil disables the route
	// with 501.
	Loader func(path string) (Serveable, error)
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.Timeout == 0 {
		c.Timeout = time.Minute
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 256
	}
	if c.MaxBody == 0 {
		c.MaxBody = 8 << 20
	}
	if c.BatchChunk <= 0 {
		c.BatchChunk = 256
	}
	return c
}

// Serveable is the index surface the server fronts: everything the
// handlers call on the live index, as an interface so one serving
// layer covers both topologies — a *bayeslsh.LiveIndex (single node)
// and a *cluster.Router (a sharded corpus behind the scatter-gather
// router) satisfy it with no adapter.
type Serveable interface {
	QueryContext(ctx context.Context, q bayeslsh.Vec, opts bayeslsh.QueryOptions) ([]bayeslsh.Match, error)
	TopKContext(ctx context.Context, q bayeslsh.Vec, k int) ([]bayeslsh.Match, error)
	QueryBatchContext(ctx context.Context, queries []bayeslsh.Vec, opts bayeslsh.QueryOptions) ([][]bayeslsh.Match, error)
	Add(q bayeslsh.Vec) (int, error)
	Delete(id int) bool
	Len() int
	Stats() bayeslsh.LiveStats
	Measure() bayeslsh.Measure
	Options() bayeslsh.Options
	Threshold() float64
	Dim() int
	Compact() error
	SaveFile(path string) error
	Close()
}

var (
	_ Serveable = (*bayeslsh.LiveIndex)(nil)
	_ Serveable = (*rescache.Cache)(nil)
)

// Server serves one Serveable index over HTTP. Construct with New,
// attach Handler to any http.Server or call Serve, stop with
// Shutdown. Server does not own the index it was constructed with:
// Close it (and Shutdown the server) separately, in either order —
// handlers surface ErrLiveClosed as 503, never a crash. The one
// exception is an index retired by POST /v1/load, which the server
// Closes after the swap.
type Server struct {
	// idx is the served index, swapped atomically by /v1/load — the
	// SetRuntime atomic.Pointer pattern applied to the whole index.
	// Handlers load it once per request, so every request sees one
	// consistent index even across a concurrent swap.
	idx atomic.Pointer[Serveable]
	cfg Config
	mux *http.ServeMux
	hs  *http.Server

	draining atomic.Bool
	slots    chan struct{} // admission gate; nil when disabled
	met      *metrics

	// cache is the result cache fronting the index when
	// Config.CacheSize is positive (in that case idx holds the cache
	// itself, and /v1/load swaps through it so the swap invalidates).
	// nil when caching is disabled.
	cache *rescache.Cache

	// testHook, when non-nil, runs inside every admitted /v1/ request
	// after the gate and before the handler — the seam the lifecycle
	// tests use to hold requests in flight deterministically.
	testHook func(route string)
}

// New builds a server over idx with the given config.
func New(idx Serveable, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg: cfg,
		mux: http.NewServeMux(),
		met: newMetrics(),
	}
	if cfg.CacheSize > 0 {
		s.cache = rescache.New(idx, cfg.CacheSize)
		idx = s.cache
	}
	s.idx.Store(&idx)
	if cfg.MaxInFlight > 0 {
		s.slots = make(chan struct{}, cfg.MaxInFlight)
	}
	s.mux.Handle("POST /v1/query", s.route("query", s.handleQuery))
	s.mux.Handle("POST /v1/topk", s.route("topk", s.handleTopK))
	s.mux.Handle("POST /v1/batch", s.route("batch", s.handleBatch))
	s.mux.Handle("POST /v1/add", s.route("add", s.handleAdd))
	s.mux.Handle("POST /v1/delete", s.route("delete", s.handleDelete))
	s.mux.Handle("GET /v1/stats", s.route("stats", s.handleStats))
	s.mux.Handle("POST /v1/compact", s.route("compact", s.handleCompact))
	s.mux.Handle("POST /v1/save", s.route("save", s.handleSave))
	s.mux.Handle("POST /v1/load", s.route("load", s.handleLoad))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	s.hs = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s
}

// Handler returns the server's root handler — every route, middleware
// included — for mounting under a caller-owned http.Server or an
// httptest one.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on ln until Shutdown (returning
// http.ErrServerClosed) or a listener failure. The caller owns ln's
// address choice; pass a ":0" listener to bind an ephemeral port.
func (s *Server) Serve(ln net.Listener) error {
	return s.hs.Serve(ln)
}

// Shutdown drains the server gracefully: new requests are refused
// (503 on open connections, closed listeners for new ones), in-flight
// requests — streamed responses included — run to completion, and
// once all have finished the optional Config.DrainSave snapshot is
// written from the now-quiescent index. ctx bounds the wait; on
// expiry remaining connections are dropped and the snapshot is still
// attempted (the index is always in a consistent state — a dropped
// request just isn't reflected in a response). Shutdown does not
// Close the index.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	err := s.hs.Shutdown(ctx)
	if s.cfg.DrainSave != "" {
		if serr := s.index().SaveFile(s.cfg.DrainSave); err == nil {
			err = serr
		}
	}
	return err
}

// index returns the currently served index. Each handler calls it once
// and uses the result for the whole request, so a concurrent /v1/load
// swap never splits one request across two indexes.
func (s *Server) index() Serveable { return *s.idx.Load() }

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }
