package server

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBuckets are the cumulative-histogram upper bounds of the
// per-route duration metrics, in seconds — a decade-spanning ladder
// wide enough for both sub-millisecond point queries and multi-second
// compactions.
var latencyBuckets = [...]float64{
	.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

// routeMetrics accumulates one route's counters, all lock-free.
type routeMetrics struct {
	byClass [6]atomic.Int64 // status/100 (499 counts as 4xx)
	durSum  atomic.Int64    // nanoseconds
	durN    atomic.Int64
	buckets [len(latencyBuckets) + 1]atomic.Int64 // +Inf last
}

// observe records one finished request.
func (rm *routeMetrics) observe(status int, d time.Duration) {
	if c := status / 100; c >= 1 && c <= 5 {
		rm.byClass[c].Add(1)
	}
	rm.durSum.Add(int64(d))
	rm.durN.Add(1)
	sec := d.Seconds()
	i := 0
	for i < len(latencyBuckets) && sec > latencyBuckets[i] {
		i++
	}
	rm.buckets[i].Add(1)
}

// metrics is the server-wide registry: per-route counters plus the
// in-flight gauge and the panic counter. Routes are registered at
// construction; reads are lock-free.
type metrics struct {
	inFlight atomic.Int64
	panics   atomic.Int64

	mu     sync.Mutex
	routes map[string]*routeMetrics
}

func newMetrics() *metrics {
	return &metrics{routes: make(map[string]*routeMetrics)}
}

// route registers (or returns) the named route's counters.
func (m *metrics) route(name string) *routeMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	rm := m.routes[name]
	if rm == nil {
		rm = &routeMetrics{}
		m.routes[name] = rm
	}
	return rm
}

// handleMetrics serves the Prometheus-style text exposition: request
// counts and latency histograms per route, the in-flight gauge, and
// the live index's segment shape — one scrape shows both the traffic
// and the LSM state it lands on. Output order is deterministic
// (sorted routes) so scrapes diff cleanly.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")

	fmt.Fprintf(w, "# HELP apss_in_flight Requests currently executing.\n")
	fmt.Fprintf(w, "# TYPE apss_in_flight gauge\n")
	fmt.Fprintf(w, "apss_in_flight %d\n", s.met.inFlight.Load())
	fmt.Fprintf(w, "# TYPE apss_handler_panics_total counter\n")
	fmt.Fprintf(w, "apss_handler_panics_total %d\n", s.met.panics.Load())

	s.met.mu.Lock()
	names := make([]string, 0, len(s.met.routes))
	for name := range s.met.routes {
		names = append(names, name)
	}
	s.met.mu.Unlock()
	sort.Strings(names)

	fmt.Fprintf(w, "# TYPE apss_requests_total counter\n")
	for _, name := range names {
		rm := s.met.route(name)
		for c := 1; c <= 5; c++ {
			if n := rm.byClass[c].Load(); n > 0 {
				fmt.Fprintf(w, "apss_requests_total{route=%q,class=\"%dxx\"} %d\n", name, c, n)
			}
		}
	}
	fmt.Fprintf(w, "# TYPE apss_request_duration_seconds histogram\n")
	for _, name := range names {
		rm := s.met.route(name)
		cum := int64(0)
		for i, le := range latencyBuckets {
			cum += rm.buckets[i].Load()
			fmt.Fprintf(w, "apss_request_duration_seconds_bucket{route=%q,le=\"%g\"} %d\n", name, le, cum)
		}
		cum += rm.buckets[len(latencyBuckets)].Load()
		fmt.Fprintf(w, "apss_request_duration_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(w, "apss_request_duration_seconds_sum{route=%q} %g\n",
			name, time.Duration(rm.durSum.Load()).Seconds())
		fmt.Fprintf(w, "apss_request_duration_seconds_count{route=%q} %d\n", name, rm.durN.Load())
	}

	if s.cache != nil {
		ct := s.cache.Counters()
		fmt.Fprintf(w, "# TYPE apss_cache_hits_total counter\n")
		fmt.Fprintf(w, "apss_cache_hits_total %d\n", ct.Hits)
		fmt.Fprintf(w, "# TYPE apss_cache_misses_total counter\n")
		fmt.Fprintf(w, "apss_cache_misses_total %d\n", ct.Misses)
		fmt.Fprintf(w, "# TYPE apss_cache_evictions_total counter\n")
		fmt.Fprintf(w, "apss_cache_evictions_total %d\n", ct.Evictions)
		fmt.Fprintf(w, "# TYPE apss_cache_invalidations_total counter\n")
		fmt.Fprintf(w, "apss_cache_invalidations_total %d\n", ct.Invalidations)
		fmt.Fprintf(w, "# TYPE apss_cache_entries gauge\n")
		fmt.Fprintf(w, "apss_cache_entries %d\n", ct.Entries)
	}

	st := s.index().Stats()
	fmt.Fprintf(w, "# TYPE apss_live_vectors gauge\n")
	fmt.Fprintf(w, "apss_live_vectors %d\n", st.Live)
	fmt.Fprintf(w, "# TYPE apss_live_segment_vectors gauge\n")
	fmt.Fprintf(w, "apss_live_segment_vectors{segment=\"base\"} %d\n", st.Base)
	fmt.Fprintf(w, "apss_live_segment_vectors{segment=\"delta\"} %d\n", st.Delta)
	fmt.Fprintf(w, "apss_live_tombstones %d\n", st.Dead)
	fmt.Fprintf(w, "# TYPE apss_live_merges_total counter\n")
	fmt.Fprintf(w, "apss_live_merges_total %d\n", st.Merges)
	fmt.Fprintf(w, "apss_live_last_merge_seconds %g\n", st.LastMerge.Seconds())
}
