package cluster

import (
	"errors"
	"fmt"

	"bayeslsh"
	"bayeslsh/internal/rng"
)

// ErrBadShards reports a shard count the corpus cannot support: less
// than one, or more shards than seed vectors (every shard needs a
// non-empty seed corpus, the NewLiveIndex contract).
var ErrBadShards = errors.New("cluster: shard count outside [1, corpus size]")

// ErrGlobalPrior reports a serving configuration the router refuses:
// the full-Bayes Jaccard pipelines without OneBitMinhash verify with
// a Beta prior fitted over corpus-wide candidate pairs, and pairs
// spanning two shards are invisible to every shard-local enumeration,
// so no sharded execution can reproduce the single-node prior. Set
// Options.OneBitMinhash (prior-free, the paper's §4.3 extension) or
// choose a non-Bayes pipeline.
var ErrGlobalPrior = errors.New(
	"cluster: pipeline fits a corpus-global prior and cannot be sharded; set Options.OneBitMinhash or use a non-Bayes pipeline")

// Range is one shard's contiguous global-id range [Lo, Hi) over the
// seed corpus.
type Range struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Plan records how a seed corpus was split: the contiguous global-id
// range of each shard and a per-shard identity token. A router built
// from a plan preserves the seed ids verbatim — global id g of the
// single-node corpus lives on the shard whose range contains g, at
// local id g-Lo.
type Plan struct {
	Shards int `json:"shards"`
	// Ranges[i] is shard i's seed-id range; ranges are adjacent and
	// cover [0, corpus size) in order.
	Ranges []Range `json:"ranges"`
	// Tokens[i] = rng.Derive(seed, shards, i) names shard i's slot in
	// this plan: a fingerprint carried through save/load manifests so
	// a reassembled cluster can be checked against the plan it was cut
	// from. Tokens are identity only — shard engines deliberately share
	// the master EngineConfig.Seed, because bit-identical results
	// require every shard to hash with the same seeded families (see
	// docs/SHARDING.md).
	Tokens []uint64 `json:"tokens"`
}

// PlanFor computes the balanced contiguous partition of n seed
// vectors over the given shard count: every shard gets n/shards
// vectors and the first n%shards get one extra, so shard sizes differ
// by at most one.
func PlanFor(n, shards int, seed uint64) (Plan, error) {
	if shards < 1 || shards > n {
		return Plan{}, fmt.Errorf("%w: %d shards over %d vectors", ErrBadShards, shards, n)
	}
	p := Plan{
		Shards: shards,
		Ranges: make([]Range, shards),
		Tokens: make([]uint64, shards),
	}
	lo := 0
	for i := 0; i < shards; i++ {
		size := n / shards
		if i < n%shards {
			size++
		}
		p.Ranges[i] = Range{Lo: lo, Hi: lo + size}
		p.Tokens[i] = rng.Derive(seed, uint64(shards), uint64(i))
		lo += size
	}
	return p, nil
}

// Partition splits ds into the plan's contiguous slices. The slices
// are views sharing ds's vector storage (Dataset.Slice), so
// partitioning a corpus copies no vector data; vector g of ds becomes
// vector g-Lo of its shard, bit-identical.
func Partition(ds *bayeslsh.Dataset, shards int, seed uint64) ([]*bayeslsh.Dataset, Plan, error) {
	plan, err := PlanFor(ds.Len(), shards, seed)
	if err != nil {
		return nil, Plan{}, err
	}
	parts := make([]*bayeslsh.Dataset, shards)
	for i, r := range plan.Ranges {
		parts[i] = ds.Slice(r.Lo, r.Hi)
	}
	return parts, plan, nil
}

// priorCoupled mirrors LiveIndex.priorBearing: whether the pipeline's
// verification depends on the corpus-fitted Jaccard Beta prior, the
// one corpus-global quantity a shard-local index cannot maintain. The
// cross-shard equivalence matrix exercises every measure × pipeline,
// so a new prior-coupled configuration that this predicate misses
// fails the equivalence suite rather than serving wrong results.
func priorCoupled(m bayeslsh.Measure, o bayeslsh.Options) bool {
	switch o.Algorithm {
	case bayeslsh.AllPairsBayesLSH, bayeslsh.AllPairsBayesLSHLite,
		bayeslsh.LSHBayesLSH, bayeslsh.LSHBayesLSHLite:
		return m == bayeslsh.Jaccard && !o.OneBitMinhash
	}
	return false
}
