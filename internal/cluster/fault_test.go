package cluster_test

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"bayeslsh"
	"bayeslsh/internal/cluster"
)

// Fault injection through the Backend seam: a fake shard that can be
// down, hang past the per-shard deadline, or answer normally, wired
// into a real router. Every failure mode must surface as a typed
// all-or-nothing error — never partial output, never a leaked
// goroutine.

// fakeShard is a controllable Backend. The zero value answers every
// query with one match (local id 0).
type fakeShard struct {
	seedN    int           // reported NextID, so cluster.New accepts it
	err      error         // non-nil: every query fails with this
	hang     time.Duration // >0: block this long (or until ctx ends)
	calls    chan struct{} // when non-nil, receives one send per query call
	answerID int           // local id every answer carries
}

func (f *fakeShard) wait(ctx context.Context) error {
	if f.calls != nil {
		f.calls <- struct{}{}
	}
	if f.hang > 0 {
		select {
		case <-time.After(f.hang):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return f.err
}

func (f *fakeShard) QueryContext(ctx context.Context, q bayeslsh.Vec, opts bayeslsh.QueryOptions) ([]bayeslsh.Match, error) {
	if err := f.wait(ctx); err != nil {
		return nil, err
	}
	return []bayeslsh.Match{{ID: f.answerID, Sim: 0.9}}, nil
}

func (f *fakeShard) TopKContext(ctx context.Context, q bayeslsh.Vec, k int) ([]bayeslsh.Match, error) {
	return f.QueryContext(ctx, q, bayeslsh.QueryOptions{})
}

func (f *fakeShard) QueryBatchContext(ctx context.Context, queries []bayeslsh.Vec, opts bayeslsh.QueryOptions) ([][]bayeslsh.Match, error) {
	if err := f.wait(ctx); err != nil {
		return nil, err
	}
	out := make([][]bayeslsh.Match, len(queries))
	for i := range out {
		out[i] = []bayeslsh.Match{{ID: f.answerID, Sim: 0.9}}
	}
	return out, nil
}

func (f *fakeShard) Add(q bayeslsh.Vec) (int, error) { return f.seedN, nil }
func (f *fakeShard) Delete(id int) bool              { return false }
func (f *fakeShard) Len() int                        { return f.seedN }
func (f *fakeShard) Stats() bayeslsh.LiveStats {
	return bayeslsh.LiveStats{Live: f.seedN, NextID: f.seedN}
}
func (f *fakeShard) Compact() error             { return nil }
func (f *fakeShard) SaveFile(path string) error { return nil }
func (f *fakeShard) Close()                     {}

// fakeRouter assembles a router over the given fakes, each fronting
// an equal slice of a synthetic 3-per-shard seed corpus.
func fakeRouter(t *testing.T, cfg cluster.Config, fakes ...*fakeShard) *cluster.Router {
	t.Helper()
	const perShard = 3
	backends := make([]cluster.Backend, len(fakes))
	for i, f := range fakes {
		f.seedN = perShard
		backends[i] = f
	}
	plan, err := cluster.PlanFor(perShard*len(fakes), len(fakes), 7)
	if err != nil {
		t.Fatal(err)
	}
	r, err := cluster.New(backends, plan, bayeslsh.Cosine,
		bayeslsh.Options{Algorithm: bayeslsh.LSH, Threshold: 0.6}, 400, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// checkNoGoroutineLeak polls until the goroutine count returns to
// base, dumping stacks on timeout — the scatter must not strand
// workers on a hung or canceled shard.
func checkNoGoroutineLeak(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutine leak: %d running, base %d\n%s",
		runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
}

var testQuery = bayeslsh.NewVec(map[uint32]float64{1: 1})

// TestShardDownBeforeScatter proves the all-or-nothing contract when a
// shard is down from the start: the error is typed (ErrShardUnavailable,
// carrying exactly which shards answered and how the dead one failed)
// and no partial results escape on any query surface.
func TestShardDownBeforeScatter(t *testing.T) {
	base := runtime.NumGoroutine()
	boom := errors.New("connection refused")
	r := fakeRouter(t, cluster.Config{}, &fakeShard{}, &fakeShard{err: boom}, &fakeShard{})
	defer r.Close()

	ms, err := r.Query(testQuery, bayeslsh.QueryOptions{})
	if ms != nil {
		t.Fatalf("partial output escaped: %v", ms)
	}
	if !errors.Is(err, cluster.ErrShardUnavailable) {
		t.Fatalf("err = %v, want ErrShardUnavailable", err)
	}
	var ue *cluster.UnavailableError
	if !errors.As(err, &ue) {
		t.Fatalf("err %T does not unwrap to *UnavailableError", err)
	}
	if len(ue.Failures) != 1 || !errors.Is(ue.Failures[1], boom) {
		t.Fatalf("Failures = %v, want shard 1 -> %v", ue.Failures, boom)
	}
	if len(ue.Answered) != 2 {
		t.Fatalf("Answered = %v, want the two live shards", ue.Answered)
	}

	if ms, err := r.TopK(testQuery, 3); ms != nil || !errors.Is(err, cluster.ErrShardUnavailable) {
		t.Fatalf("TopK: ms=%v err=%v, want nil + ErrShardUnavailable", ms, err)
	}
	if out, err := r.QueryBatch([]bayeslsh.Vec{testQuery, testQuery}, bayeslsh.QueryOptions{}); out != nil || !errors.Is(err, cluster.ErrShardUnavailable) {
		t.Fatalf("QueryBatch: out=%v err=%v, want nil + ErrShardUnavailable", out, err)
	}
	checkNoGoroutineLeak(t, base)
}

// TestShardHangsPastDeadline proves Config.ShardTimeout: a shard that
// hangs is cut off at the per-shard deadline and reported unavailable
// with a deadline error, while the caller's own context stays intact.
func TestShardHangsPastDeadline(t *testing.T) {
	base := runtime.NumGoroutine()
	r := fakeRouter(t, cluster.Config{ShardTimeout: 25 * time.Millisecond},
		&fakeShard{}, &fakeShard{hang: time.Minute})
	defer r.Close()

	start := time.Now()
	ms, err := r.Query(testQuery, bayeslsh.QueryOptions{})
	if took := time.Since(start); took > 10*time.Second {
		t.Fatalf("query took %v; per-shard deadline did not cut the hang", took)
	}
	if ms != nil {
		t.Fatalf("partial output escaped: %v", ms)
	}
	var ue *cluster.UnavailableError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want *UnavailableError", err)
	}
	if !errors.Is(ue.Failures[1], context.DeadlineExceeded) {
		t.Fatalf("Failures[1] = %v, want DeadlineExceeded", ue.Failures[1])
	}
	checkNoGoroutineLeak(t, base)
}

// TestMidGatherCancellation proves caller-cancellation precedence: a
// context canceled while shards are mid-flight surfaces as the
// context's own error (the single-node contract, so the server maps it
// to 499/504), not as a shard failure, and with no partial output.
func TestMidGatherCancellation(t *testing.T) {
	base := runtime.NumGoroutine()
	calls := make(chan struct{}, 4)
	r := fakeRouter(t, cluster.Config{Workers: 2},
		&fakeShard{hang: time.Minute, calls: calls},
		&fakeShard{hang: time.Minute, calls: calls})
	defer r.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Cancel only once both shards are verifiably mid-flight (the
		// router is built with Workers: 2 so the scatter genuinely
		// overlaps them even on a single-CPU machine).
		<-calls
		<-calls
		cancel()
	}()
	ms, err := r.QueryContext(ctx, testQuery, bayeslsh.QueryOptions{})
	if ms != nil {
		t.Fatalf("partial output escaped: %v", ms)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if errors.Is(err, cluster.ErrShardUnavailable) {
		t.Fatal("caller cancellation misreported as shard unavailability")
	}
	checkNoGoroutineLeak(t, base)
}

// TestDesyncDetected proves the id-map guard: a shard answering with a
// local id the router never issued (a shard mutated behind the
// router's back) is a typed failure — ErrShardUnavailable naming the
// shard — never a mistranslated result id.
func TestDesyncDetected(t *testing.T) {
	rogue := &fakeShard{answerID: 99} // far beyond the 3-vector seed + 0 adds
	r := fakeRouter(t, cluster.Config{}, &fakeShard{}, rogue)
	defer r.Close()
	ms, err := r.Query(testQuery, bayeslsh.QueryOptions{})
	if ms != nil {
		t.Fatalf("mistranslated output escaped: %v", ms)
	}
	if !errors.Is(err, cluster.ErrShardUnavailable) {
		t.Fatalf("err = %v, want ErrShardUnavailable", err)
	}
	if !strings.Contains(err.Error(), "shard 1") {
		t.Fatalf("error does not name the rogue shard: %v", err)
	}
}
