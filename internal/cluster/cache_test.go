package cluster_test

import (
	"context"
	"testing"

	"bayeslsh"
	"bayeslsh/internal/cluster"
	"bayeslsh/internal/harness"
	"bayeslsh/internal/rescache"
)

// The router-level cache and planner tests: internal/rescache fronting
// the scatter-gather Router (the deployment apss serve -shards
// -cache-size builds), and AutoPipeline resolved against the whole
// corpus before partitioning.

// TestRouterCacheEquivalent wraps a sharded router in the result
// cache and proves hit, miss, and direct answers coincide exactly,
// with mutations through the cache invalidating it.
func TestRouterCacheEquivalent(t *testing.T) {
	ds, maps := harness.Corpus(t, bayeslsh.Cosine, 60)
	opts := bayeslsh.Options{Algorithm: bayeslsh.LSHBayesLSH, Threshold: 0.6}
	r, err := cluster.NewLocal(ds, bayeslsh.Cosine, harness.EngineConfig(), opts,
		harness.LiveConfig(), 3, cluster.Config{})
	if err != nil {
		t.Fatal(err)
	}
	c := rescache.New(r, 32)
	defer c.Close()

	queries := make([]bayeslsh.Vec, 0, 5)
	for _, mv := range maps[:5] {
		queries = append(queries, bayeslsh.NewVec(mv))
	}

	check := func(stage string) {
		t.Helper()
		for i, q := range queries {
			want, err := r.Query(q, bayeslsh.QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			miss, err := c.QueryContext(context.Background(), q, bayeslsh.QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			hit, err := c.QueryContext(context.Background(), q, bayeslsh.QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !harness.MatchesEqual(miss, want) || !harness.MatchesEqual(hit, want) {
				t.Fatalf("%s: query %d cached != router:\n miss %v\n hit  %v\nwant %v", stage, i, miss, hit, want)
			}
			wantK, err := r.TopK(q, 4)
			if err != nil {
				t.Fatal(err)
			}
			missK, err := c.TopKContext(context.Background(), q, 4)
			if err != nil {
				t.Fatal(err)
			}
			hitK, err := c.TopKContext(context.Background(), q, 4)
			if err != nil {
				t.Fatal(err)
			}
			if !harness.MatchesEqual(missK, wantK) || !harness.MatchesEqual(hitK, wantK) {
				t.Fatalf("%s: topk %d cached != router", stage, i)
			}
		}
	}

	check("cold")

	// Mutate through the cache: the router sees the ingest and the
	// cache drops its pre-mutation entries.
	if _, err := c.Add(queries[0]); err != nil {
		t.Fatal(err)
	}
	check("post-add")
	ct := c.Counters()
	if ct.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", ct.Invalidations)
	}

	// The planner surface tunnels through the cache: Router exposes it
	// as PipelinePlan (Plan being the partition plan), and the cache's
	// Plan must find it there.
	if st := c.CorpusStats(); st.Vectors != 60 {
		t.Fatalf("cache CorpusStats.Vectors = %d, want 60", st.Vectors)
	}
	if got, want := c.Plan().Pipeline, r.PipelinePlan().Pipeline; got != want {
		t.Fatalf("cache Plan pipeline %v != router PipelinePlan %v", got, want)
	}
}

// TestRouterAutoPipeline proves the sharded planner contract: with
// Options.AutoPipeline the router plans once against the whole corpus
// (never per shard), records the decision with its rules, and answers
// exactly as a router configured explicitly with the chosen pipeline.
func TestRouterAutoPipeline(t *testing.T) {
	for _, tc := range harness.Cells() {
		ds, maps := harness.Corpus(t, tc.Measure, 60)
		auto, err := cluster.NewLocal(ds, tc.Measure, harness.EngineConfig(),
			bayeslsh.Options{AutoPipeline: true, Threshold: tc.Threshold},
			harness.LiveConfig(), 2, cluster.Config{})
		if err != nil {
			t.Fatalf("%v: auto NewLocal: %v", tc.Measure, err)
		}
		defer auto.Close()

		plan := auto.PipelinePlan()
		if len(plan.Rules) == 0 {
			t.Fatalf("%v: auto-planned router reports no rules", tc.Measure)
		}
		want := bayeslsh.ChoosePlan(ds.CorpusStats(), bayeslsh.PlanQuery{
			Measure: tc.Measure, Threshold: tc.Threshold, Serving: true, Sharded: true,
		})
		if plan.Pipeline != want.Pipeline {
			t.Fatalf("%v: router planned %v, ChoosePlan says %v", tc.Measure, plan.Pipeline, want.Pipeline)
		}
		if got := auto.Options().Algorithm; got != bayeslsh.Algorithm(want.Pipeline) {
			t.Fatalf("%v: router options carry %v, plan says %v", tc.Measure, got, want.Pipeline)
		}
		if st := auto.CorpusStats(); st.Vectors != 60 {
			t.Fatalf("%v: router CorpusStats.Vectors = %d, want 60", tc.Measure, st.Vectors)
		}

		explicit, err := cluster.NewLocal(ds, tc.Measure, harness.EngineConfig(),
			bayeslsh.Options{Algorithm: bayeslsh.Algorithm(want.Pipeline), Threshold: tc.Threshold},
			harness.LiveConfig(), 2, cluster.Config{})
		if err != nil {
			t.Fatalf("%v: explicit NewLocal: %v", tc.Measure, err)
		}
		defer explicit.Close()

		for i, mv := range maps[:5] {
			q := bayeslsh.NewVec(mv)
			got, err := auto.Query(q, bayeslsh.QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			wantMs, err := explicit.Query(q, bayeslsh.QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !harness.MatchesEqual(got, wantMs) {
				t.Fatalf("%v: query %d auto != explicit:\n got %v\nwant %v", tc.Measure, i, got, wantMs)
			}
		}
	}
}
