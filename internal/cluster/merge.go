package cluster

import (
	"container/heap"
	"sort"

	"bayeslsh"
)

// mergeByID merges per-shard threshold results (each already in
// ascending global-id order after translation) into one ascending
// list: concatenate and sort. Global ids are unique across shards, so
// the order is total and equals the single-node ascending-id order.
func mergeByID(lists [][]bayeslsh.Match) []bayeslsh.Match {
	n := 0
	for _, l := range lists {
		n += len(l)
	}
	if n == 0 {
		return nil
	}
	out := make([]bayeslsh.Match, 0, n)
	for _, l := range lists {
		out = append(out, l...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// topkHeap is the k-way merge frontier: one cursor per non-empty
// shard list, ordered best-first by the TopK contract (similarity
// descending, global id ascending — ids are unique, so the order is
// total).
type topkHeap struct {
	lists [][]bayeslsh.Match
	pos   []int
	order []int // heap of list indexes
}

func (h *topkHeap) head(i int) bayeslsh.Match { return h.lists[i][h.pos[i]] }

func (h *topkHeap) Len() int { return len(h.order) }
func (h *topkHeap) Less(i, j int) bool {
	a, b := h.head(h.order[i]), h.head(h.order[j])
	if a.Sim != b.Sim {
		return a.Sim > b.Sim
	}
	return a.ID < b.ID
}
func (h *topkHeap) Swap(i, j int) { h.order[i], h.order[j] = h.order[j], h.order[i] }
func (h *topkHeap) Push(x any)    { h.order = append(h.order, x.(int)) }
func (h *topkHeap) Pop() any {
	x := h.order[len(h.order)-1]
	h.order = h.order[:len(h.order)-1]
	return x
}

// mergeTopK merges per-shard TopK results — each sorted (sim desc, id
// asc) — into the global best k under the same order. Because every
// shard contributed its own best k, the union contains the global top
// k, so truncating the merge at k is exact.
func mergeTopK(lists [][]bayeslsh.Match, k int) []bayeslsh.Match {
	h := &topkHeap{lists: lists, pos: make([]int, len(lists))}
	for i, l := range lists {
		if len(l) > 0 {
			h.order = append(h.order, i)
		}
	}
	heap.Init(h)
	var out []bayeslsh.Match
	for h.Len() > 0 && len(out) < k {
		i := h.order[0]
		out = append(out, h.head(i))
		h.pos[i]++
		if h.pos[i] == len(h.lists[i]) {
			heap.Pop(h)
		} else {
			heap.Fix(h, 0)
		}
	}
	return out
}
