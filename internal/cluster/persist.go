package cluster

import (
	"encoding/json"
	"fmt"
	"os"

	"bayeslsh"
)

// manifest is the JSON cluster-snapshot descriptor SaveFile writes at
// the manifest path: the partition plan plus the router's id state.
// The shard corpora themselves are ordinary live snapshots at
// "<path>.<i>", so a single shard file is independently loadable by a
// per-shard daemon (apss serve -index) while the manifest reassembles
// the whole cluster.
type manifest struct {
	Version int     `json:"version"`
	Plan    Plan    `json:"plan"`
	Next    int     `json:"next"`
	RR      int     `json:"rr"`
	Added   [][]int `json:"added"`
}

const manifestVersion = 1

// shardPath names shard i's snapshot under a manifest path.
func shardPath(path string, i int) string { return fmt.Sprintf("%s.%d", path, i) }

// SaveFile writes a consistent cluster snapshot: one live snapshot
// per shard at "<path>.<i>" plus a JSON manifest at path recording
// the plan and id state, written via a temp file and rename so a
// crash never leaves a half-written manifest pointing at shard files.
// Mutations are blocked for the duration (queries keep serving), so
// the cut is mutation-consistent across shards. LoadLocal restores
// it. With HTTP backends the shard snapshots are written on each
// shard's own host (the /v1/save contract) and only the manifest is
// local.
func (r *Router) SaveFile(path string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, b := range r.backends {
		if err := b.SaveFile(shardPath(path, i)); err != nil {
			return fmt.Errorf("cluster: save shard %d: %w", i, err)
		}
	}
	m := manifest{Version: manifestVersion, Plan: r.plan, Next: r.next, RR: r.rr, Added: r.added}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("cluster: encode manifest: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("cluster: write manifest: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cluster: publish manifest: %w", err)
	}
	return nil
}

// LoadLocal restores a cluster snapshot written by SaveFile into a
// router over in-process LiveIndex shards: the manifest fixes the
// plan and id state, each shard file loads through OpenLiveFile (so a
// shard saved as a disk-servable v3 snapshot restores in O(pages
// touched), mmap-backed, and v1/v2 shard files heap-load as before), and
// every shard is cross-checked against the manifest (its next local
// id must equal seed range + recorded adds) so a swapped, stale or
// truncated shard file is refused here instead of mistranslating ids
// at query time.
func LoadLocal(path string, lc bayeslsh.LiveConfig, cfg Config) (*Router, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: read manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("cluster: parse manifest %s: %w", path, err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("cluster: manifest %s version %d, want %d", path, m.Version, manifestVersion)
	}
	p := m.Plan
	if p.Shards < 1 || len(p.Ranges) != p.Shards || len(p.Tokens) != p.Shards || len(m.Added) != p.Shards {
		return nil, fmt.Errorf("cluster: manifest %s: inconsistent plan (%d shards, %d ranges, %d tokens, %d add lists)",
			path, p.Shards, len(p.Ranges), len(p.Tokens), len(m.Added))
	}
	added := 0
	for _, a := range m.Added {
		added += len(a)
	}
	if m.Next != p.Ranges[p.Shards-1].Hi+added {
		return nil, fmt.Errorf("cluster: manifest %s: next id %d does not match %d seed + %d added vectors",
			path, m.Next, p.Ranges[p.Shards-1].Hi, added)
	}
	backends := make([]Backend, 0, p.Shards)
	fail := func(err error) (*Router, error) {
		for _, b := range backends {
			b.Close()
		}
		return nil, err
	}
	for i := 0; i < p.Shards; i++ {
		li, err := bayeslsh.OpenLiveFile(shardPath(path, i), lc)
		if err != nil {
			return fail(fmt.Errorf("cluster: load shard %d: %w", i, err))
		}
		if got, want := li.Stats().NextID, (p.Ranges[i].Hi-p.Ranges[i].Lo)+len(m.Added[i]); got != want {
			li.Close()
			return fail(fmt.Errorf("cluster: shard file %s: next local id %d, manifest expects %d — stale or swapped shard snapshot",
				shardPath(path, i), got, want))
		}
		backends = append(backends, li)
	}
	ref := backends[0].(*bayeslsh.LiveIndex)
	r := newRouter(backends, p, ref.Measure(), ref.Options(), ref.Dim(), cfg)
	r.next = m.Next
	r.rr = m.RR
	r.added = m.Added
	for s, ids := range m.Added {
		seedN := p.Ranges[s].Hi - p.Ranges[s].Lo
		for k, gid := range ids {
			r.loc[gid] = shardLoc{shard: s, local: seedN + k}
		}
	}
	return r, nil
}
