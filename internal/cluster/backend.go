package cluster

import (
	"context"

	"bayeslsh"
)

// Backend is one shard as the router sees it: the LiveIndex query,
// mutation and lifecycle surface, addressed in shard-local ids. Two
// implementations exist — *bayeslsh.LiveIndex itself (the in-process
// topology) and *server.Client (a shard served by another process
// over HTTP) — and the router cannot tell them apart, which is what
// the multi-process equivalence tests prove.
//
// The router owns all mutations: ids returned by a Backend's Add must
// be the shard's dense local sequence (the LiveIndex contract), and
// mutating a shard behind the router's back desynchronizes the
// local→global id map — queries then fail with an UnavailableError
// naming the shard rather than returning mistranslated ids.
type Backend interface {
	QueryContext(ctx context.Context, q bayeslsh.Vec, opts bayeslsh.QueryOptions) ([]bayeslsh.Match, error)
	TopKContext(ctx context.Context, q bayeslsh.Vec, k int) ([]bayeslsh.Match, error)
	QueryBatchContext(ctx context.Context, queries []bayeslsh.Vec, opts bayeslsh.QueryOptions) ([][]bayeslsh.Match, error)
	Add(q bayeslsh.Vec) (int, error)
	Delete(id int) bool
	Len() int
	Stats() bayeslsh.LiveStats
	Compact() error
	SaveFile(path string) error
	Close()
}

// The in-process shard backend is a LiveIndex, with no adapter.
var _ Backend = (*bayeslsh.LiveIndex)(nil)
