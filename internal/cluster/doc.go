// Package cluster is the distributed serving layer: it splits a
// corpus across N shards and scatter-gathers queries over them, with
// results bit-identical to a single-node LiveIndex over the same
// corpus (see docs/SHARDING.md for the full contract).
//
// # Architecture
//
// Partition slices a Dataset into N contiguous, balanced slices —
// views, no vector copies — and Router fronts one Backend per slice
// with the LiveIndex query surface: QueryContext, TopKContext,
// QueryBatchContext, Add, Delete, Stats, Compact, SaveFile. The
// in-process backend is a LiveIndex per shard; the out-of-process
// backend is the internal/server HTTP client, so the same Router code
// serves a single-binary topology and a multi-process one.
//
// # Determinism
//
// Global ids are stable and deterministic: the seed corpus keeps its
// dataset ids through contiguous per-shard ranges, and every Add is
// assigned the next global id by the router and placed round-robin,
// so a router replaying the mutation sequence of a single-node index
// assigns identical ids. Every shard engine shares the reference
// EngineConfig.Seed — the hash families must be the family a
// single-node build seeds, or per-candidate verification decisions
// would drift (rng.Derive supplies per-shard identity tokens for the
// partition plan instead; see Plan.Tokens).
//
// The one serving configuration the router refuses is the
// corpus-global one: the full-Bayes Jaccard pipelines without
// OneBitMinhash fit a Beta prior over corpus-wide candidate pairs,
// and cross-shard pairs are invisible to any shard-local enumeration
// (ErrGlobalPrior; set Options.OneBitMinhash, which the paper's §4.3
// extension makes prior-free, or use a non-Bayes pipeline).
//
// # Merging
//
// Threshold queries return ascending global ids: per-shard results
// are translated (the per-shard local→global map is monotone, so
// translated lists stay sorted) and merged by concatenation + sort.
// TopK returns (similarity desc, id asc): each shard answers its own
// top k, and a k-way heap merge keeps the global k — the union of
// per-shard top-k lists always contains the global top k.
//
// # Failure semantics
//
// A scatter is all-or-nothing: if any shard fails — down before the
// scatter, hanging past the per-shard deadline (Config.ShardTimeout),
// or erroring mid-gather — the query returns no partial output and a
// *UnavailableError wrapping ErrShardUnavailable that records which
// shards answered and how each failed shard failed. Cancellation of
// the caller's context is reported as the context's error, matching
// the single-node contract.
package cluster
