package cluster

import (
	"sort"
	"testing"

	"bayeslsh"
)

// topkLess is the TopK result order: similarity descending, id
// ascending.
func topkLess(a, b bayeslsh.Match) bool {
	if a.Sim != b.Sim {
		return a.Sim > b.Sim
	}
	return a.ID < b.ID
}

// refTopK is the sort-everything reference the heap merge is checked
// against: concatenate every list, sort under the TopK order, truncate
// to k.
func refTopK(lists [][]bayeslsh.Match, k int) []bayeslsh.Match {
	var all []bayeslsh.Match
	for _, l := range lists {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return topkLess(all[i], all[j]) })
	if len(all) > k {
		all = all[:k]
	}
	if len(all) == 0 {
		return nil
	}
	return all
}

// fuzzLists decodes a byte string into per-shard TopK result lists:
// each byte pair becomes one match (similarity quantized to a small
// grid so duplicate sims across lists are common, forcing the
// id-ascending tiebreak), dealt round-robin over the shard count and
// then sorted per shard — the exact shape each shard's TopKContext
// hands the merge. Ids are globally unique by construction, matching
// the post-globalization invariant.
func fuzzLists(data []byte, shards int) [][]bayeslsh.Match {
	lists := make([][]bayeslsh.Match, shards)
	for i := 0; i+1 < len(data); i += 2 {
		s := int(data[i]) % shards
		sim := float64(data[i+1]%16) / 16
		lists[s] = append(lists[s], bayeslsh.Match{ID: i / 2, Sim: sim})
	}
	for _, l := range lists {
		sort.Slice(l, func(i, j int) bool { return topkLess(l[i], l[j]) })
	}
	return lists
}

// FuzzTopKMerge drives the k-way heap merge against the
// sort-everything reference over adversarial shapes: sim ties within
// and across shards, duplicate sims, k larger than the total hit
// count, empty shard lists, and single-shard degenerate cases.
func FuzzTopKMerge(f *testing.F) {
	f.Add([]byte{}, uint8(1), uint8(1))
	f.Add([]byte{0, 8, 1, 8, 2, 8}, uint8(3), uint8(2))             // all-tie across shards
	f.Add([]byte{0, 15, 0, 15, 0, 0, 0, 7}, uint8(2), uint8(10))    // k > total, empty shard
	f.Add([]byte{1, 1, 1, 2, 1, 3, 1, 4, 1, 5}, uint8(4), uint8(3)) // one hot shard, three empty
	f.Fuzz(func(t *testing.T, data []byte, nshards, k8 uint8) {
		shards := 1 + int(nshards)%6
		k := 1 + int(k8)%12
		lists := fuzzLists(data, shards)
		want := refTopK(lists, k)
		got := mergeTopK(lists, k)
		if len(got) != len(want) {
			t.Fatalf("merged %d matches, reference %d (shards=%d k=%d)", len(got), len(want), shards, k)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("merge[%d] = %v, reference %v (shards=%d k=%d)", i, got[i], want[i], shards, k)
			}
		}
	})
}

// TestMergeByID pins the threshold-merge contract: concatenation
// sorted by ascending global id, nil for no hits.
func TestMergeByID(t *testing.T) {
	got := mergeByID([][]bayeslsh.Match{
		{{ID: 4, Sim: 0.9}, {ID: 9, Sim: 0.7}},
		nil,
		{{ID: 0, Sim: 0.8}, {ID: 6, Sim: 0.6}},
	})
	want := []bayeslsh.Match{{ID: 0, Sim: 0.8}, {ID: 4, Sim: 0.9}, {ID: 6, Sim: 0.6}, {ID: 9, Sim: 0.7}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if mergeByID([][]bayeslsh.Match{nil, {}}) != nil {
		t.Fatal("empty merge not nil")
	}
}
