package cluster_test

import (
	"errors"
	"net/http/httptest"
	"testing"

	"bayeslsh"
	"bayeslsh/internal/cluster"
	"bayeslsh/internal/harness"
	"bayeslsh/internal/server"
)

// The multi-process topology, in-process: each shard runs behind a
// real HTTP server (the full serving stack — JSON decode, wire-grammar
// parse, NDJSON encode) and the router scatters through server.Client
// backends. Equivalence here proves the Backend seam is transport-
// transparent: the wire adds no rounding, no reordering, nothing.

// newHTTPCluster cuts ds with the plan, stands up one httptest daemon
// per slice, and assembles a router over clients to them.
func newHTTPCluster(t *testing.T, ds *bayeslsh.Dataset, m bayeslsh.Measure,
	opts bayeslsh.Options, shards int) *cluster.Router {
	t.Helper()
	parts, plan, err := cluster.Partition(ds, shards, harness.EngineConfig().Seed)
	if err != nil {
		t.Fatal(err)
	}
	backends := make([]cluster.Backend, shards)
	for i, part := range parts {
		li, err := bayeslsh.NewLiveIndex(part, m, harness.EngineConfig(), opts, harness.LiveConfig())
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(server.New(li, server.Config{BatchChunk: 4}).Handler())
		t.Cleanup(ts.Close)
		t.Cleanup(li.Close)
		backends[i] = server.NewClient(ts.URL, ts.Client())
	}
	r, err := cluster.New(backends, plan, m, opts, ds.Dim(), cluster.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestHTTPShardsEquivalent runs the equivalence check with every shard
// behind real HTTP: sharded-over-the-wire answers must equal a
// single-node in-process index bit for bit, cold and after mirrored
// mutations routed through /v1/add and /v1/delete.
func TestHTTPShardsEquivalent(t *testing.T) {
	for _, tc := range harness.Cells() {
		t.Run(tc.Measure.String(), func(t *testing.T) {
			ds, maps := harness.Corpus(t, tc.Measure, 45)
			opts := cellOpts(tc.Measure, bayeslsh.LSHBayesLSH, tc.Threshold)
			single := newSingle(t, ds, tc.Measure, opts)
			defer single.Close()
			r := newHTTPCluster(t, ds, tc.Measure, opts, 3)
			defer r.Close()

			queries := make([]bayeslsh.Vec, 0, 5)
			for _, mv := range maps[:5] {
				queries = append(queries, bayeslsh.NewVec(mv))
			}
			checkEquivalent(t, "cold", single, r, queries)

			for _, mv := range maps[2:5] {
				v := bayeslsh.NewVec(mv)
				wantID, err := single.Add(v)
				if err != nil {
					t.Fatal(err)
				}
				gotID, err := r.Add(v)
				if err != nil {
					t.Fatal(err)
				}
				if gotID != wantID {
					t.Fatalf("HTTP-sharded Add id %d, single %d", gotID, wantID)
				}
			}
			for _, id := range []int{3, 3, 999999} {
				if got, want := r.Delete(id), single.Delete(id); got != want {
					t.Fatalf("HTTP-sharded Delete(%d)=%v, single %v", id, got, want)
				}
			}
			checkEquivalent(t, "post-mutation", single, r, queries)

			if err := single.Compact(); err != nil {
				t.Fatal(err)
			}
			if err := r.Compact(); err != nil {
				t.Fatal(err)
			}
			checkEquivalent(t, "post-compact", single, r, queries)
		})
	}
}

// TestHTTPShardDown proves the typed partial-failure path over real
// transport: kill one shard daemon and the router reports
// ErrShardUnavailable with the dead shard attributed, no partial
// output.
func TestHTTPShardDown(t *testing.T) {
	ds, maps := harness.Corpus(t, bayeslsh.Cosine, 30)
	opts := bayeslsh.Options{Algorithm: bayeslsh.LSH, Threshold: 0.6}
	parts, plan, err := cluster.Partition(ds, 2, harness.EngineConfig().Seed)
	if err != nil {
		t.Fatal(err)
	}
	backends := make([]cluster.Backend, 2)
	var victim *httptest.Server
	for i, part := range parts {
		li, err := bayeslsh.NewLiveIndex(part, bayeslsh.Cosine, harness.EngineConfig(), opts, harness.LiveConfig())
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(server.New(li, server.Config{}).Handler())
		t.Cleanup(ts.Close)
		t.Cleanup(li.Close)
		backends[i] = server.NewClient(ts.URL, ts.Client())
		if i == 1 {
			victim = ts
		}
	}
	r, err := cluster.New(backends, plan, bayeslsh.Cosine, opts, ds.Dim(), cluster.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	q := bayeslsh.NewVec(maps[0])
	if _, err := r.Query(q, bayeslsh.QueryOptions{}); err != nil {
		t.Fatalf("healthy cluster refused: %v", err)
	}
	victim.Close()
	ms, err := r.Query(q, bayeslsh.QueryOptions{})
	if ms != nil {
		t.Fatalf("partial output escaped: %v", ms)
	}
	var ue *cluster.UnavailableError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want *UnavailableError", err)
	}
	if _, failed := ue.Failures[1]; !failed || len(ue.Failures) != 1 {
		t.Fatalf("Failures = %v, want exactly shard 1", ue.Failures)
	}
}
