package cluster

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrShardUnavailable is the sentinel every scatter-gather failure
// wraps: match it with errors.Is. The concrete error is always a
// *UnavailableError carrying which shards answered and how each
// failed shard failed.
var ErrShardUnavailable = errors.New("cluster: shard unavailable")

// UnavailableError reports a partial scatter failure. The router
// never returns partial output: a query either reflects every shard
// or returns this error, so a caller can retry knowing nothing was
// half-delivered. Answered lists the shards that returned results
// (discarded), Failures maps each failed shard to its error — a
// connection failure for a shard that was down before the scatter, a
// deadline error for one that hung past Config.ShardTimeout.
type UnavailableError struct {
	Answered []int
	Failures map[int]error
}

func (e *UnavailableError) Error() string {
	ids := make([]int, 0, len(e.Failures))
	for i := range e.Failures {
		ids = append(ids, i)
	}
	sort.Ints(ids)
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: %d shard(s) failed (answered: %v):", len(ids), e.Answered)
	for n, i := range ids {
		if n > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, " shard %d: %v", i, e.Failures[i])
	}
	return b.String()
}

// Unwrap makes errors.Is(err, ErrShardUnavailable) match.
func (e *UnavailableError) Unwrap() error { return ErrShardUnavailable }
