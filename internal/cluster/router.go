package cluster

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"bayeslsh"
	"bayeslsh/internal/planner"
	"bayeslsh/internal/shard"
)

// Config carries the router's fan-out knobs; the zero value selects
// the defaults noted on each field.
type Config struct {
	// ShardTimeout is the per-shard deadline applied to every scatter
	// call, independent of (and nested inside) the caller's context: a
	// shard that hangs past it is reported as unavailable instead of
	// stalling the whole query. 0 disables the per-shard deadline —
	// the caller's own deadline still applies.
	ShardTimeout time.Duration
	// Workers bounds the scatter fan-out: at most this many shard
	// calls run concurrently, on reused workers (internal/shard). 0
	// selects NumCPU.
	Workers int
}

// shardLoc addresses one post-seed vector: which shard holds it and
// at which local id.
type shardLoc struct {
	shard, local int
}

// Router fronts N shard backends with the LiveIndex surface: queries
// scatter to every shard and gather into results bit-identical to a
// single-node index over the same corpus; mutations route to one
// shard under a deterministic id assignment. Safe for any number of
// concurrent queriers overlapping mutations, like the LiveIndex it
// mirrors; mutations serialize among themselves.
type Router struct {
	cfg      Config
	measure  bayeslsh.Measure
	opts     bayeslsh.Options
	dim      int
	backends []Backend // fixed at construction
	plan     Plan

	// cstats/pplan are the whole-corpus planner statistics and the
	// pipeline decision, filled by NewLocal (New, assembling opaque
	// backends, derives pplan from the resolved options and leaves
	// cstats zero — no router-side corpus exists to collect over).
	cstats bayeslsh.CorpusStats
	pplan  bayeslsh.Plan

	// mu guards the id state. Queries take it only after the gather —
	// the scatter itself runs lock-free — so a slow shard never blocks
	// a mutation and vice versa.
	mu     sync.RWMutex
	added  [][]int          // per shard: global ids of post-seed adds, in local-id order
	loc    map[int]shardLoc // global added id -> location
	next   int              // next global id
	rr     int              // round-robin add cursor
	closed bool
}

// NewLocal partitions ds over the given shard count and builds one
// in-process LiveIndex per slice — every shard sharing cfg.Seed, so
// all hash families are the single-node families and results stay
// bit-identical (Plan.Tokens carry the per-shard rng.Derive identity
// tokens). Prior-coupled configurations are refused with
// ErrGlobalPrior; see the package comment.
func NewLocal(ds *bayeslsh.Dataset, m bayeslsh.Measure, cfg bayeslsh.EngineConfig,
	opts bayeslsh.Options, lc bayeslsh.LiveConfig, shards int, rcfg Config) (*Router, error) {
	// AutoPipeline resolves here, against the WHOLE corpus, before
	// partitioning: per-shard planning could diverge (shard statistics
	// differ), breaking cross-shard bit-identity — and the planner must
	// know the corpus is sharded, so it never picks a prior-coupled
	// pipeline that the check below would refuse.
	cstats := bayeslsh.CorpusStats{}
	pplan := bayeslsh.Plan{}
	if opts.AutoPipeline {
		cstats = ds.CorpusStats()
		pplan = bayeslsh.ChoosePlan(cstats, bayeslsh.PlanQuery{
			Measure:   m,
			Threshold: opts.Threshold,
			Serving:   true,
			Sharded:   true,
		})
		opts.Algorithm = bayeslsh.Algorithm(pplan.Pipeline)
		opts.AutoPipeline = false
	}
	if priorCoupled(m, opts) {
		return nil, fmt.Errorf("%w (%v %v)", ErrGlobalPrior, m, opts.Algorithm)
	}
	parts, plan, err := Partition(ds, shards, cfg.Seed)
	if err != nil {
		return nil, err
	}
	backends := make([]Backend, 0, shards)
	for i, part := range parts {
		li, err := bayeslsh.NewLiveIndex(part, m, cfg, opts, lc)
		if err != nil {
			for _, b := range backends {
				b.Close()
			}
			return nil, fmt.Errorf("cluster: shard %d: %w", i, err)
		}
		backends = append(backends, li)
	}
	ref := backends[0].(*bayeslsh.LiveIndex)
	r := newRouter(backends, plan, ref.Measure(), ref.Options(), ref.Dim(), rcfg)
	if cstats.Zero() {
		cstats = ds.CorpusStats()
	}
	r.cstats = cstats
	if len(pplan.Rules) > 0 {
		r.pplan = pplan
	} else {
		r.pplan = ref.Plan()
	}
	return r, nil
}

// New assembles a router over caller-built backends — fresh shards
// whose corpora are exactly the plan's slices (HTTP clients to shard
// daemons, or LiveIndexes built elsewhere). m, opts and dim must be
// the shards' resolved identity (e.g. LiveIndex.Measure/Options/Dim
// of any shard; they are all built alike). Every shard's id state is
// checked against the plan: a shard whose next local id is not its
// slice size was not freshly cut from this plan, and mis-wiring is
// refused here rather than surfacing as mistranslated result ids.
func New(backends []Backend, plan Plan, m bayeslsh.Measure, opts bayeslsh.Options,
	dim int, cfg Config) (*Router, error) {
	if len(backends) != plan.Shards || plan.Shards != len(plan.Ranges) {
		return nil, fmt.Errorf("cluster: %d backends for a %d-shard plan", len(backends), plan.Shards)
	}
	if priorCoupled(m, opts) {
		return nil, fmt.Errorf("%w (%v %v)", ErrGlobalPrior, m, opts.Algorithm)
	}
	for i, b := range backends {
		if got, want := b.Stats().NextID, plan.Ranges[i].Hi-plan.Ranges[i].Lo; got != want {
			return nil, fmt.Errorf("cluster: shard %d next local id %d, want %d — not a fresh cut of this plan", i, got, want)
		}
	}
	return newRouter(backends, plan, m, opts, dim, cfg), nil
}

// newRouter wires the struct up with fresh id state.
func newRouter(backends []Backend, plan Plan, m bayeslsh.Measure, opts bayeslsh.Options,
	dim int, cfg Config) *Router {
	return &Router{
		cfg:      cfg,
		measure:  m,
		opts:     opts,
		dim:      dim,
		backends: backends,
		plan:     plan,
		pplan:    bayeslsh.Plan{Pipeline: planner.Pipeline(opts.Algorithm)},
		added:    make([][]int, plan.Shards),
		loc:      make(map[int]shardLoc),
		next:     plan.Ranges[plan.Shards-1].Hi,
	}
}

// Measure returns the cluster's similarity measure.
func (r *Router) Measure() bayeslsh.Measure { return r.measure }

// Options returns the resolved search options every shard serves.
func (r *Router) Options() bayeslsh.Options { return r.opts }

// Threshold returns the similarity threshold the cluster serves at.
func (r *Router) Threshold() float64 { return r.opts.Threshold }

// Dim returns the feature-space dimensionality, shared by all shards.
func (r *Router) Dim() int { return r.dim }

// Shards returns the shard count.
func (r *Router) Shards() int { return len(r.backends) }

// Plan returns the partition plan the cluster was cut with.
func (r *Router) Plan() Plan { return r.plan }

// CorpusStats returns the whole-corpus planner statistics — what
// AutoPipeline resolution saw, not any one shard's slice. Zero for
// routers assembled with New over opaque backends.
func (r *Router) CorpusStats() bayeslsh.CorpusStats { return r.cstats }

// PipelinePlan returns the cluster's pipeline decision (named apart
// from Plan, which this package already uses for the partition plan).
// Rules are present only when AutoPipeline made the choice.
func (r *Router) PipelinePlan() bayeslsh.Plan { return r.pplan }

// Len returns the number of live vectors across all shards.
func (r *Router) Len() int {
	n := 0
	for _, b := range r.backends {
		n += b.Len()
	}
	return n
}

// Stats aggregates the shards' segment shapes: counts sum, NextID is
// the router's global id cursor, LastMerge is the slowest shard's,
// and LastMergeErr surfaces the first failing shard's error.
func (r *Router) Stats() bayeslsh.LiveStats {
	r.mu.RLock()
	next := r.next
	r.mu.RUnlock()
	st := bayeslsh.LiveStats{NextID: next}
	for _, b := range r.backends {
		s := b.Stats()
		st.Base += s.Base
		st.Delta += s.Delta
		st.Live += s.Live
		st.Dead += s.Dead
		st.Merges += s.Merges
		if s.LastMerge > st.LastMerge {
			st.LastMerge = s.LastMerge
		}
		if st.LastMergeErr == nil {
			st.LastMergeErr = s.LastMergeErr
		}
	}
	return st
}

// queryThreshold pre-validates the per-query threshold override
// before any fan-out, with the single-node error text.
func (r *Router) queryThreshold(opts bayeslsh.QueryOptions) error {
	t := opts.Threshold
	if t == 0 {
		return nil
	}
	if t < r.opts.Threshold || t > 1 {
		return fmt.Errorf("%w: %v outside [%v, 1]", bayeslsh.ErrBadThreshold, t, r.opts.Threshold)
	}
	return nil
}

// workers resolves the fan-out bound.
func (r *Router) workers() int {
	if r.cfg.Workers > 0 {
		return r.cfg.Workers
	}
	return runtime.NumCPU()
}

// shardCtx derives one scatter call's context: the caller's, bounded
// by the per-shard deadline when configured.
func (r *Router) shardCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if r.cfg.ShardTimeout > 0 {
		return context.WithTimeout(ctx, r.cfg.ShardTimeout)
	}
	return context.WithCancel(ctx)
}

// scatter runs f once per shard on the bounded worker pool, each call
// under its own per-shard context. All-or-nothing: if the caller's
// ctx ends, the context error is returned (matching the single-node
// contract); otherwise any shard failure yields a *UnavailableError
// and the caller must discard all per-shard output.
func (r *Router) scatter(ctx context.Context, f func(ctx context.Context, i int) error) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	n := len(r.backends)
	errs := make([]error, n)
	shard.RunCtx(ctx, n, r.workers(), 1, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			if ctx.Err() != nil {
				return
			}
			cctx, cancel := r.shardCtx(ctx)
			errs[i] = f(cctx, i)
			cancel()
		}
	})
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	var fail *UnavailableError
	for i, e := range errs {
		if e != nil {
			if fail == nil {
				fail = &UnavailableError{Failures: make(map[int]error)}
			}
			fail.Failures[i] = e
		}
	}
	if fail == nil {
		return nil
	}
	for i, e := range errs {
		if e == nil {
			fail.Answered = append(fail.Answered, i)
		}
	}
	return fail
}

// globalizeLocked rewrites one shard's result ids from local to
// global, in place. Local seed ids shift by the shard's range; local
// delta ids map through the per-shard add list. Both maps are
// monotone, so a list sorted by local id stays sorted by global id.
// Caller holds mu (read suffices): the gather runs after every
// backend call returned, and the add lists are append-only, so the
// map always covers every local id a shard could have answered with.
func (r *Router) globalizeLocked(sh int, ms []bayeslsh.Match) error {
	rg := r.plan.Ranges[sh]
	seedN := rg.Hi - rg.Lo
	for j, m := range ms {
		switch {
		case m.ID >= 0 && m.ID < seedN:
			ms[j].ID = rg.Lo + m.ID
		case m.ID >= seedN && m.ID-seedN < len(r.added[sh]):
			ms[j].ID = r.added[sh][m.ID-seedN]
		default:
			return fmt.Errorf("cluster: shard %d answered with local id %d outside the router's id map (shard mutated behind the router?): %w",
				sh, m.ID, ErrShardUnavailable)
		}
	}
	return nil
}

// globalizeAll translates every shard's gathered results.
func (r *Router) globalizeAll(per [][]bayeslsh.Match) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for i := range per {
		if err := r.globalizeLocked(i, per[i]); err != nil {
			return err
		}
	}
	return nil
}

// Query is QueryContext with context.Background().
func (r *Router) Query(q bayeslsh.Vec, opts bayeslsh.QueryOptions) ([]bayeslsh.Match, error) {
	return r.QueryContext(context.Background(), q, opts)
}

// QueryContext scatters one threshold query to every shard and
// gathers the union, in ascending global-id order — bit-identical to
// a single-node LiveIndex over the same corpus (the equivalence
// matrix in router_test.go is the proof). All-or-nothing under
// failure and cancellation; see scatter.
func (r *Router) QueryContext(ctx context.Context, q bayeslsh.Vec, opts bayeslsh.QueryOptions) ([]bayeslsh.Match, error) {
	if err := r.queryThreshold(opts); err != nil {
		return nil, err
	}
	if q.Len() == 0 {
		return nil, nil
	}
	per := make([][]bayeslsh.Match, len(r.backends))
	err := r.scatter(ctx, func(cctx context.Context, i int) error {
		ms, err := r.backends[i].QueryContext(cctx, q, opts)
		if err != nil {
			return err
		}
		per[i] = ms
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := r.globalizeAll(per); err != nil {
		return nil, err
	}
	return mergeByID(per), nil
}

// TopK is TopKContext with context.Background().
func (r *Router) TopK(q bayeslsh.Vec, k int) ([]bayeslsh.Match, error) {
	return r.TopKContext(context.Background(), q, k)
}

// TopKContext scatters a top-k query — every shard answers its own
// best k, whose union provably contains the global best k — and
// k-way heap-merges the per-shard lists under the TopK order
// (similarity descending, global id ascending), truncated to k.
func (r *Router) TopKContext(ctx context.Context, q bayeslsh.Vec, k int) ([]bayeslsh.Match, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w (got %d)", bayeslsh.ErrBadK, k)
	}
	if q.Len() == 0 {
		return nil, nil
	}
	per := make([][]bayeslsh.Match, len(r.backends))
	err := r.scatter(ctx, func(cctx context.Context, i int) error {
		ms, err := r.backends[i].TopKContext(cctx, q, k)
		if err != nil {
			return err
		}
		per[i] = ms
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := r.globalizeAll(per); err != nil {
		return nil, err
	}
	return mergeTopK(per, k), nil
}

// QueryBatch is QueryBatchContext with context.Background().
func (r *Router) QueryBatch(queries []bayeslsh.Vec, opts bayeslsh.QueryOptions) ([][]bayeslsh.Match, error) {
	return r.QueryBatchContext(context.Background(), queries, opts)
}

// QueryBatchContext scatters the whole batch to every shard (each
// shard answers all queries over its slice) and merges per query.
// Result i corresponds to queries[i]; empty queries answer nil
// without touching the wire, matching the single-node contract — and
// keeping HTTP backends, whose wire grammar has no empty-vector form,
// out of the loop for them.
func (r *Router) QueryBatchContext(ctx context.Context, queries []bayeslsh.Vec, opts bayeslsh.QueryOptions) ([][]bayeslsh.Match, error) {
	if err := r.queryThreshold(opts); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	out := make([][]bayeslsh.Match, len(queries))
	idx := make([]int, 0, len(queries))
	for i, q := range queries {
		if q.Len() > 0 {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 {
		return out, nil
	}
	sub := make([]bayeslsh.Vec, len(idx))
	for j, i := range idx {
		sub[j] = queries[i]
	}
	per := make([][][]bayeslsh.Match, len(r.backends))
	err := r.scatter(ctx, func(cctx context.Context, i int) error {
		res, err := r.backends[i].QueryBatchContext(cctx, sub, opts)
		if err != nil {
			return err
		}
		if len(res) != len(sub) {
			return fmt.Errorf("cluster: shard %d answered %d of %d batch queries: %w",
				i, len(res), len(sub), ErrShardUnavailable)
		}
		per[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	r.mu.RLock()
	for i := range per {
		for _, ms := range per[i] {
			if gerr := r.globalizeLocked(i, ms); gerr != nil {
				r.mu.RUnlock()
				return nil, gerr
			}
		}
	}
	r.mu.RUnlock()
	lists := make([][]bayeslsh.Match, len(r.backends))
	for j, i := range idx {
		for s := range per {
			lists[s] = per[s][j]
		}
		out[i] = mergeByID(lists)
	}
	return out, nil
}

// Add ingests a vector, returning its permanent global id. Ids are
// assigned by the router in one dense sequence — the id a single-node
// index would assign for the same mutation history — and vectors are
// placed round-robin, so placement is deterministic too. The same
// validation errors as LiveIndex.Add (feature space, normalization)
// surface unchanged, consuming no id.
func (r *Router) Add(q bayeslsh.Vec) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0, bayeslsh.ErrLiveClosed
	}
	s := r.rr % len(r.backends)
	local, err := r.backends[s].Add(q)
	if err != nil {
		return 0, err
	}
	rg := r.plan.Ranges[s]
	if want := (rg.Hi - rg.Lo) + len(r.added[s]); local != want {
		return 0, fmt.Errorf("cluster: shard %d assigned local id %d, router expected %d (shard mutated behind the router?): %w",
			s, local, want, ErrShardUnavailable)
	}
	gid := r.next
	r.next++
	r.rr++
	r.added[s] = append(r.added[s], gid)
	r.loc[gid] = shardLoc{shard: s, local: local}
	return gid, nil
}

// Delete tombstones the vector with the given global id on whichever
// shard holds it, reporting whether it was live — false for ids never
// issued or already deleted, matching LiveIndex.Delete.
func (r *Router) Delete(id int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return false
	}
	s, local, ok := r.locate(id)
	if !ok {
		return false
	}
	return r.backends[s].Delete(local)
}

// locate resolves a global id to (shard, local id): binary search
// over the contiguous seed ranges, map lookup for post-seed adds.
// Caller holds mu.
func (r *Router) locate(gid int) (sh, local int, ok bool) {
	if gid < 0 || gid >= r.next {
		return 0, 0, false
	}
	if seedN := r.plan.Ranges[len(r.plan.Ranges)-1].Hi; gid < seedN {
		lo, hi := 0, len(r.plan.Ranges)
		for lo < hi {
			mid := (lo + hi) / 2
			if r.plan.Ranges[mid].Hi <= gid {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo, gid - r.plan.Ranges[lo].Lo, true
	}
	l, ok := r.loc[gid]
	return l.shard, l.local, ok
}

// Compact folds every shard's delta and tombstones into fresh bases,
// shards compacting concurrently, and waits for all of them. The
// first failing shard's error is returned; a failed shard keeps
// serving its previous generation, like LiveIndex.Compact.
func (r *Router) Compact() error {
	bs := r.backends
	errs := make([]error, len(bs))
	shard.Run(len(bs), r.workers(), 1, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			errs[i] = bs[i].Compact()
		}
	})
	for i, e := range errs {
		if e != nil {
			return fmt.Errorf("cluster: compact shard %d: %w", i, e)
		}
	}
	return nil
}

// Close closes every shard backend. Mutations after Close return
// ErrLiveClosed; queries keep serving, the LiveIndex contract applied
// cluster-wide. Idempotent.
func (r *Router) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	for _, b := range r.backends {
		b.Close()
	}
}
