package cluster_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"bayeslsh"
	"bayeslsh/internal/cluster"
	"bayeslsh/internal/harness"
)

// copyFile clobbers dst with src's bytes.
func copyFile(src, dst string) error {
	data, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	return os.WriteFile(dst, data, 0o644)
}

// The cross-shard equivalence suite: for every shard count × measure ×
// pipeline of the shared matrix, the router's Query, TopK and
// QueryBatch answers are compared — ids and float64 similarities
// exactly equal — against a single-node LiveIndex over the same
// corpus, cold, after mirrored add/delete interleavings, and after
// compaction. This is the theorem the cluster package rests on; see
// docs/SHARDING.md for why it holds.

// shardCounts is the N axis of the equivalence matrix. 1 pins the
// degenerate topology to the identity; 2, 3 and 5 exercise uneven
// splits of the 60-vector corpus (60/5=12 exactly, 60/3=20, and a
// remainder under 7 via the mutation stages).
var shardCounts = []int{1, 2, 3, 5}

// cellOpts resolves one cell × pipeline into the Options both sides
// run: the prior-coupled Jaccard Bayes pipelines get OneBitMinhash
// (the prior-free §4.3 extension) so they are shardable at all — the
// un-extended forms are covered by TestGlobalPriorRejected instead.
func cellOpts(m bayeslsh.Measure, alg bayeslsh.Algorithm, threshold float64) bayeslsh.Options {
	o := bayeslsh.Options{Algorithm: alg, Threshold: threshold}
	switch alg {
	case bayeslsh.AllPairsBayesLSH, bayeslsh.AllPairsBayesLSHLite,
		bayeslsh.LSHBayesLSH, bayeslsh.LSHBayesLSHLite:
		if m == bayeslsh.Jaccard {
			o.OneBitMinhash = true
		}
	}
	return o
}

// newSingle builds the single-node reference index for a cell.
func newSingle(tb testing.TB, ds *bayeslsh.Dataset, m bayeslsh.Measure, opts bayeslsh.Options) *bayeslsh.LiveIndex {
	tb.Helper()
	li, err := bayeslsh.NewLiveIndex(ds, m, harness.EngineConfig(), opts, harness.LiveConfig())
	if err != nil {
		tb.Fatal(err)
	}
	return li
}

// checkEquivalent compares every query surface of the router against
// the single-node reference over the given query set, strictly.
func checkEquivalent(t *testing.T, stage string, single *bayeslsh.LiveIndex, r *cluster.Router, queries []bayeslsh.Vec) {
	t.Helper()
	for qi, q := range queries {
		want, err := single.Query(q, bayeslsh.QueryOptions{})
		if err != nil {
			t.Fatalf("%s: single query %d: %v", stage, qi, err)
		}
		got, err := r.Query(q, bayeslsh.QueryOptions{})
		if err != nil {
			t.Fatalf("%s: sharded query %d: %v", stage, qi, err)
		}
		if !harness.MatchesEqual(got, want) {
			t.Fatalf("%s: sharded query %d != single:\n got %v\nwant %v", stage, qi, got, want)
		}
		wantK, err := single.TopK(q, 5)
		if err != nil {
			t.Fatalf("%s: single topk %d: %v", stage, qi, err)
		}
		gotK, err := r.TopK(q, 5)
		if err != nil {
			t.Fatalf("%s: sharded topk %d: %v", stage, qi, err)
		}
		if !harness.MatchesEqual(gotK, wantK) {
			t.Fatalf("%s: sharded topk %d != single:\n got %v\nwant %v", stage, qi, gotK, wantK)
		}
	}
	// The batch path, with an empty vector slotted in to prove the
	// router's empty-query short-circuit matches the single-node nil.
	batch := append(append([]bayeslsh.Vec{}, queries...), bayeslsh.Vec{})
	want, err := single.QueryBatch(batch, bayeslsh.QueryOptions{})
	if err != nil {
		t.Fatalf("%s: single batch: %v", stage, err)
	}
	got, err := r.QueryBatch(batch, bayeslsh.QueryOptions{})
	if err != nil {
		t.Fatalf("%s: sharded batch: %v", stage, err)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: sharded batch answered %d queries, single %d", stage, len(got), len(want))
	}
	for i := range want {
		if !harness.MatchesEqual(got[i], want[i]) {
			t.Fatalf("%s: sharded batch[%d] != single:\n got %v\nwant %v", stage, i, got[i], want[i])
		}
	}
}

// TestShardedEquivalence is the acceptance matrix: shard counts ×
// measures × pipelines, each cell checked cold, after mirrored
// mutations (identical ids required on both sides), and after
// compaction.
func TestShardedEquivalence(t *testing.T) {
	for _, tc := range harness.Cells() {
		ds, maps := harness.Corpus(t, tc.Measure, 60)
		queries := make([]bayeslsh.Vec, 0, 6)
		for _, mv := range maps[:5] {
			queries = append(queries, bayeslsh.NewVec(mv))
		}
		queries = append(queries, bayeslsh.NewVec(harness.PrepMap(tc.Measure, map[uint32]float64{3: 1, 44: 0.8, 199: 1.2})))

		for _, alg := range harness.Pipelines(tc.Measure) {
			opts := cellOpts(tc.Measure, alg, tc.Threshold)
			for _, n := range shardCounts {
				t.Run(fmt.Sprintf("%v/%v/shards=%d", tc.Measure, alg, n), func(t *testing.T) {
					single := newSingle(t, ds, tc.Measure, opts)
					defer single.Close()
					r, err := cluster.NewLocal(ds, tc.Measure, harness.EngineConfig(), opts,
						harness.LiveConfig(), n, cluster.Config{})
					if err != nil {
						t.Fatal(err)
					}
					defer r.Close()
					if r.Len() != single.Len() {
						t.Fatalf("sharded Len %d != single %d", r.Len(), single.Len())
					}

					checkEquivalent(t, "cold", single, r, queries)

					// Mirrored mutations: the router must assign the same
					// dense global ids a single node would for the same
					// history, and deletes must agree on liveness.
					for _, mv := range maps[1:4] {
						v := bayeslsh.NewVec(mv)
						wantID, err := single.Add(v)
						if err != nil {
							t.Fatal(err)
						}
						gotID, err := r.Add(v)
						if err != nil {
							t.Fatal(err)
						}
						if gotID != wantID {
							t.Fatalf("sharded Add id %d, single %d", gotID, wantID)
						}
					}
					for _, id := range []int{0, 0, 7, single.Len() + 999} {
						if got, want := r.Delete(id), single.Delete(id); got != want {
							t.Fatalf("sharded Delete(%d)=%v, single %v", id, got, want)
						}
					}
					checkEquivalent(t, "post-mutation", single, r, queries)

					if err := single.Compact(); err != nil {
						t.Fatal(err)
					}
					if err := r.Compact(); err != nil {
						t.Fatal(err)
					}
					checkEquivalent(t, "post-compact", single, r, queries)

					if r.Stats().Live != single.Stats().Live {
						t.Fatalf("sharded live %d != single %d", r.Stats().Live, single.Stats().Live)
					}
				})
			}
		}
	}
}

// TestGlobalPriorRejected pins the sharding boundary: the Jaccard
// full-Bayes pipelines fit a corpus-global prior, and both router
// constructors must refuse them with ErrGlobalPrior rather than serve
// answers that silently diverge from a single node.
func TestGlobalPriorRejected(t *testing.T) {
	ds, _ := harness.Corpus(t, bayeslsh.Jaccard, 30)
	for _, alg := range []bayeslsh.Algorithm{
		bayeslsh.AllPairsBayesLSH, bayeslsh.AllPairsBayesLSHLite,
		bayeslsh.LSHBayesLSH, bayeslsh.LSHBayesLSHLite,
	} {
		opts := bayeslsh.Options{Algorithm: alg, Threshold: 0.5}
		_, err := cluster.NewLocal(ds, bayeslsh.Jaccard, harness.EngineConfig(), opts,
			harness.LiveConfig(), 2, cluster.Config{})
		if !errors.Is(err, cluster.ErrGlobalPrior) {
			t.Fatalf("%v: NewLocal err = %v, want ErrGlobalPrior", alg, err)
		}
		plan, err := cluster.PlanFor(ds.Len(), 2, 7)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cluster.New(make([]cluster.Backend, plan.Shards), plan, bayeslsh.Jaccard, opts, ds.Dim(), cluster.Config{}); !errors.Is(err, cluster.ErrGlobalPrior) {
			t.Fatalf("%v: New err = %v, want ErrGlobalPrior", alg, err)
		}

		// The OneBitMinhash extension lifts the coupling.
		opts.OneBitMinhash = true
		r, err := cluster.NewLocal(ds, bayeslsh.Jaccard, harness.EngineConfig(), opts,
			harness.LiveConfig(), 2, cluster.Config{})
		if err != nil {
			t.Fatalf("%v with OneBitMinhash: %v", alg, err)
		}
		r.Close()
	}
}

// TestBadShardCounts pins the partition validation boundary.
func TestBadShardCounts(t *testing.T) {
	ds, _ := harness.Corpus(t, bayeslsh.Cosine, 9)
	for _, n := range []int{0, -1, 10} {
		_, err := cluster.NewLocal(ds, bayeslsh.Cosine, harness.EngineConfig(),
			bayeslsh.Options{Algorithm: bayeslsh.LSH, Threshold: 0.6},
			harness.LiveConfig(), n, cluster.Config{})
		if !errors.Is(err, cluster.ErrBadShards) {
			t.Fatalf("shards=%d: err = %v, want ErrBadShards", n, err)
		}
	}
}

// TestClusterSaveLoad proves the persistence triangle: a mutated
// cluster saved with SaveFile reloads through LoadLocal into a router
// whose answers, id assignment and round-robin placement continue
// exactly where the original left off.
func TestClusterSaveLoad(t *testing.T) {
	ds, maps := harness.Corpus(t, bayeslsh.Cosine, 45)
	opts := bayeslsh.Options{Algorithm: bayeslsh.LSHBayesLSH, Threshold: 0.6}
	r, err := cluster.NewLocal(ds, bayeslsh.Cosine, harness.EngineConfig(), opts,
		harness.LiveConfig(), 3, cluster.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	for _, mv := range maps[2:7] {
		if _, err := r.Add(bayeslsh.NewVec(mv)); err != nil {
			t.Fatal(err)
		}
	}
	r.Delete(1)
	r.Delete(46) // one post-seed add

	path := filepath.Join(t.TempDir(), "cluster.manifest")
	if err := r.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := cluster.LoadLocal(path, harness.LiveConfig(), cluster.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()

	if got, want := loaded.Stats(), r.Stats(); got.Live != want.Live || got.NextID != want.NextID {
		t.Fatalf("loaded stats live=%d next=%d, want live=%d next=%d", got.Live, got.NextID, want.Live, want.NextID)
	}
	for _, mv := range maps[:6] {
		q := bayeslsh.NewVec(mv)
		want, err := r.Query(q, bayeslsh.QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Query(q, bayeslsh.QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !harness.MatchesEqual(got, want) {
			t.Fatalf("loaded query != original:\n got %v\nwant %v", got, want)
		}
	}

	// Ingest continues the id sequence and the round-robin cursor.
	v := bayeslsh.NewVec(maps[8])
	wantID, err := r.Add(v)
	if err != nil {
		t.Fatal(err)
	}
	gotID, err := loaded.Add(v)
	if err != nil {
		t.Fatal(err)
	}
	if gotID != wantID {
		t.Fatalf("loaded Add id %d, original %d", gotID, wantID)
	}
	if !loaded.Delete(gotID) {
		t.Fatal("loaded Delete of fresh add reported not deleted")
	}
}

// TestLoadLocalRefusesTamperedManifest proves the load-time
// cross-checks: a manifest whose id accounting disagrees with its
// shard files is refused instead of mistranslating ids at query time.
func TestLoadLocalRefusesTamperedManifest(t *testing.T) {
	ds, _ := harness.Corpus(t, bayeslsh.Cosine, 20)
	r, err := cluster.NewLocal(ds, bayeslsh.Cosine, harness.EngineConfig(),
		bayeslsh.Options{Algorithm: bayeslsh.LSH, Threshold: 0.6},
		harness.LiveConfig(), 2, cluster.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.manifest"), filepath.Join(dir, "b.manifest")
	if err := r.SaveFile(a); err != nil {
		t.Fatal(err)
	}
	// Grow the cluster, save again, then point the old manifest's name
	// at the new shard files: the shard cross-check must refuse it.
	if _, err := r.Add(bayeslsh.NewVec(map[uint32]float64{1: 1})); err != nil {
		t.Fatal(err)
	}
	if err := r.SaveFile(b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := copyFile(fmt.Sprintf("%s.%d", b, i), fmt.Sprintf("%s.%d", a, i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cluster.LoadLocal(a, harness.LiveConfig(), cluster.Config{}); err == nil {
		t.Fatal("LoadLocal accepted a manifest whose shard files belong to a later save")
	}
}
