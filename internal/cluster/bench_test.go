package cluster_test

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"bayeslsh"
	"bayeslsh/internal/cluster"
	"bayeslsh/internal/harness"
)

// BenchmarkShardedQuery measures the scatter-gather query path at 1
// shard (pure router overhead over a single LiveIndex) and 4 shards
// (fan-out, per-shard contexts, k-way gather), reporting req/s with
// p50/p99 latencies — the cluster entry of the BENCH_*.json perf
// trajectory (CI parses it into BENCH_shard.json).
func BenchmarkShardedQuery(b *testing.B) {
	ds, maps := harness.Corpus(b, bayeslsh.Cosine, 1000)
	opts := bayeslsh.Options{Algorithm: bayeslsh.LSHBayesLSH, Threshold: 0.6}
	queries := make([]bayeslsh.Vec, 64)
	for i := range queries {
		queries[i] = bayeslsh.NewVec(maps[i*7%len(maps)])
	}
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			r, err := cluster.NewLocal(ds, bayeslsh.Cosine, harness.EngineConfig(), opts,
				harness.LiveConfig(), shards, cluster.Config{})
			if err != nil {
				b.Fatal(err)
			}
			defer r.Close()

			lat := make([]time.Duration, 0, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				start := time.Now()
				if _, err := r.Query(queries[i%len(queries)], bayeslsh.QueryOptions{}); err != nil {
					b.Fatal(err)
				}
				lat = append(lat, time.Since(start))
			}
			b.StopTimer()

			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			var sum time.Duration
			for _, d := range lat {
				sum += d
			}
			b.ReportMetric(float64(b.N)/sum.Seconds(), "req/s")
			b.ReportMetric(float64(lat[len(lat)/2].Nanoseconds()), "p50-ns/req")
			b.ReportMetric(float64(lat[len(lat)*99/100].Nanoseconds()), "p99-ns/req")
		})
	}
}
