package exact

import (
	"testing"

	"bayeslsh/internal/pair"
	"bayeslsh/internal/vector"
)

func v(entries ...vector.Entry) vector.Vector { return vector.New(entries) }

func TestMeasureSimAndString(t *testing.T) {
	a := v(vector.Entry{Ind: 0, Val: 3}, vector.Entry{Ind: 1, Val: 4})
	b := v(vector.Entry{Ind: 0, Val: 3})
	if got := Cosine.Sim(a, b); got != 3.0/5 {
		t.Errorf("cosine = %v", got)
	}
	if got := Jaccard.Sim(a, b); got != 0.5 {
		t.Errorf("jaccard = %v", got)
	}
	if got := BinaryCosine.Sim(a, b); got > 0.7072 || got < 0.7070 {
		t.Errorf("binary cosine = %v", got)
	}
	for _, m := range []Measure{Cosine, Jaccard, BinaryCosine, Measure(9)} {
		if m.String() == "" {
			t.Errorf("empty String for %d", int(m))
		}
	}
}

func TestMeasureSimPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown measure did not panic")
		}
	}()
	Measure(9).Sim(vector.Vector{}, vector.Vector{})
}

func TestSearchFindsAllQualifyingPairs(t *testing.T) {
	c := &vector.Collection{Dim: 4, Vecs: []vector.Vector{
		v(vector.Entry{Ind: 0, Val: 1}),
		v(vector.Entry{Ind: 0, Val: 2}),
		v(vector.Entry{Ind: 1, Val: 1}),
		{}, // empty vectors are skipped
	}}
	rs := Search(c, Cosine, 0.9)
	if len(rs) != 1 || rs[0].Pair() != pair.Make(0, 1) {
		t.Errorf("Search = %v", rs)
	}
	if rs[0].Sim != 1 {
		t.Errorf("sim = %v", rs[0].Sim)
	}
}

func TestVerifyFilters(t *testing.T) {
	c := &vector.Collection{Dim: 4, Vecs: []vector.Vector{
		v(vector.Entry{Ind: 0, Val: 1}),
		v(vector.Entry{Ind: 0, Val: 2}),
		v(vector.Entry{Ind: 1, Val: 1}),
	}}
	cands := []pair.Pair{pair.Make(0, 1), pair.Make(0, 2)}
	rs := Verify(c, Cosine, 0.5, cands)
	if len(rs) != 1 || rs[0].Pair() != pair.Make(0, 1) {
		t.Errorf("Verify = %v", rs)
	}
}
