// Package exact provides brute-force all-pairs similarity search and
// exact pair verification under the three measures the repository
// supports (cosine, Jaccard, binary cosine).
//
// It is the ground truth against which the recall and accuracy of
// every approximate pipeline is measured (Tables 3–5 of the BayesLSH
// paper), the correctness oracle for the unit tests of AllPairs,
// PPJoin and the LSH pipelines, and the verification stage of the
// pipelines that report exact similarities (plain LSH verification
// and the final step of BayesLSH-Lite).
//
// Search examines all O(n²) pairs; Verify computes exact similarities
// for a candidate list and keeps those meeting the threshold. Both
// have sharded variants (SearchParallel, VerifyParallel) that divide
// work into batches over a worker pool and reassemble results in
// batch order, so their output is identical to the sequential scans
// for any worker count.
package exact
