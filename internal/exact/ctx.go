package exact

import (
	"context"

	"bayeslsh/internal/pair"
	"bayeslsh/internal/shard"
	"bayeslsh/internal/vector"
)

// Context-aware and streaming forms of the exact scans. Cancellation
// is polled between row/candidate blocks by the shard dispatch and
// between individual rows (a row of the O(n²) scan compares against
// every later vector, so rows are the natural abort points within a
// block). A canceled call returns (nil, ctx.Err()) with all workers
// drained; a non-cancelable ctx takes the plain code paths.

// SearchCtx is SearchParallel with cooperative cancellation.
func SearchCtx(ctx context.Context, c *vector.Collection, m Measure, t float64, workers int) ([]pair.Result, error) {
	if ctx.Done() == nil {
		return SearchParallel(c, m, t, workers), nil
	}
	stop := shard.NewStopper(ctx)
	defer stop.Close()
	n := len(c.Vecs)
	return shard.CollectCtx(ctx, n, workers, 16, func(lo, hi int) []pair.Result {
		return searchRows(c, m, t, lo, hi, stop)
	})
}

// searchRows scans rows [lo, hi) of the triangular all-pairs matrix,
// aborting between rows once stop trips (the partial block is
// discarded by the ctx-aware callers).
func searchRows(c *vector.Collection, m Measure, t float64, lo, hi int, stop *shard.Stopper) []pair.Result {
	n := len(c.Vecs)
	var out []pair.Result
	for i := lo; i < hi; i++ {
		if stop.Stopped() {
			return nil
		}
		if c.Vecs[i].Len() == 0 {
			continue
		}
		for j := i + 1; j < n; j++ {
			if s := m.Sim(c.Vecs[i], c.Vecs[j]); s >= t {
				out = append(out, pair.Result{A: int32(i), B: int32(j), Sim: s})
			}
		}
	}
	return out
}

// VerifyCtx is VerifyParallel with cooperative cancellation.
func VerifyCtx(ctx context.Context, c *vector.Collection, m Measure, t float64, cands []pair.Pair, workers, batch int) ([]pair.Result, error) {
	if ctx.Done() == nil {
		return VerifyParallel(c, m, t, cands, workers, batch), nil
	}
	if batch < 1 {
		batch = 1024
	}
	stop := shard.NewStopper(ctx)
	defer stop.Close()
	return shard.CollectCtx(ctx, len(cands), workers, batch, func(lo, hi int) []pair.Result {
		return verifyBlock(c, m, t, cands[lo:hi], stop)
	})
}

// verifyBlock verifies one candidate block, polling stop per pair.
func verifyBlock(c *vector.Collection, m Measure, t float64, cands []pair.Pair, stop *shard.Stopper) []pair.Result {
	var out []pair.Result
	for _, p := range cands {
		if stop.Stopped() {
			return nil
		}
		if s := m.Sim(c.Vecs[p.A], c.Vecs[p.B]); s >= t {
			out = append(out, pair.Result{A: p.A, B: p.B, Sim: s})
		}
	}
	return out
}

// SearchStream is the streaming form of SearchParallel: each row
// block's results go to emit as the block completes (shard.StreamCtx
// contract), so no full result set is ever resident.
func SearchStream(ctx context.Context, c *vector.Collection, m Measure, t float64, workers int, emit func([]pair.Result) error) error {
	stop := shard.NewStopper(ctx)
	defer stop.Close()
	n := len(c.Vecs)
	return shard.StreamCtx(ctx, n, workers, 16, func(lo, hi int) []pair.Result {
		return searchRows(c, m, t, lo, hi, stop)
	}, emit)
}

// VerifyStream is the streaming form of VerifyParallel.
func VerifyStream(ctx context.Context, c *vector.Collection, m Measure, t float64, cands []pair.Pair, workers, batch int, emit func([]pair.Result) error) error {
	if batch < 1 {
		batch = 1024
	}
	stop := shard.NewStopper(ctx)
	defer stop.Close()
	return shard.StreamCtx(ctx, len(cands), workers, batch, func(lo, hi int) []pair.Result {
		return verifyBlock(c, m, t, cands[lo:hi], stop)
	}, emit)
}
