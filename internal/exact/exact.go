package exact

import (
	"bayeslsh/internal/pair"
	"bayeslsh/internal/shard"
	"bayeslsh/internal/vector"
)

// Measure selects the similarity function.
type Measure int

const (
	// Cosine is the weighted cosine similarity.
	Cosine Measure = iota
	// Jaccard is the set Jaccard similarity of the index sets.
	Jaccard
	// BinaryCosine is cosine over binarized vectors.
	BinaryCosine
)

// String implements fmt.Stringer.
func (m Measure) String() string {
	switch m {
	case Cosine:
		return "cosine"
	case Jaccard:
		return "jaccard"
	case BinaryCosine:
		return "binary-cosine"
	default:
		return "unknown"
	}
}

// Sim computes the similarity of two vectors under m.
func (m Measure) Sim(a, b vector.Vector) float64 {
	switch m {
	case Cosine:
		return vector.Cosine(a, b)
	case Jaccard:
		return vector.Jaccard(a, b)
	case BinaryCosine:
		return vector.BinaryCosine(a, b)
	default:
		panic("exact: unknown measure")
	}
}

// Search returns every pair of vectors with similarity >= t by
// examining all O(n²) pairs. Use only on modest collections.
func Search(c *vector.Collection, m Measure, t float64) []pair.Result {
	var out []pair.Result
	for i := 0; i < len(c.Vecs); i++ {
		if c.Vecs[i].Len() == 0 {
			continue
		}
		for j := i + 1; j < len(c.Vecs); j++ {
			if s := m.Sim(c.Vecs[i], c.Vecs[j]); s >= t {
				out = append(out, pair.Result{A: int32(i), B: int32(j), Sim: s})
			}
		}
	}
	return out
}

// Verify computes exact similarities for candidate pairs and keeps
// those meeting the threshold.
func Verify(c *vector.Collection, m Measure, t float64, cands []pair.Pair) []pair.Result {
	var out []pair.Result
	for _, p := range cands {
		if s := m.Sim(c.Vecs[p.A], c.Vecs[p.B]); s >= t {
			out = append(out, pair.Result{A: p.A, B: p.B, Sim: s})
		}
	}
	return out
}

// SearchParallel is Search with the row scan sharded over workers
// goroutines in row batches; results are assembled in batch order, so
// the output is identical to Search for any worker count. workers <= 1
// falls back to the sequential scan.
func SearchParallel(c *vector.Collection, m Measure, t float64, workers int) []pair.Result {
	if workers <= 1 {
		return Search(c, m, t)
	}
	n := len(c.Vecs)
	// Small row batches load-balance the triangular cost profile (early
	// rows compare against many more partners than late rows).
	return shard.Collect(n, workers, 16, func(lo, hi int) []pair.Result {
		var out []pair.Result
		for i := lo; i < hi; i++ {
			if c.Vecs[i].Len() == 0 {
				continue
			}
			for j := i + 1; j < n; j++ {
				if s := m.Sim(c.Vecs[i], c.Vecs[j]); s >= t {
					out = append(out, pair.Result{A: int32(i), B: int32(j), Sim: s})
				}
			}
		}
		return out
	})
}

// VerifyParallel is Verify with the candidate list sharded over
// workers goroutines in batches of batch pairs; results are assembled
// in batch order, so the output is identical to Verify for any worker
// count.
func VerifyParallel(c *vector.Collection, m Measure, t float64, cands []pair.Pair, workers, batch int) []pair.Result {
	if batch < 1 {
		batch = 1024
	}
	if workers <= 1 || len(cands) <= batch {
		return Verify(c, m, t, cands)
	}
	return shard.Collect(len(cands), workers, batch, func(lo, hi int) []pair.Result {
		var out []pair.Result
		for _, p := range cands[lo:hi] {
			if s := m.Sim(c.Vecs[p.A], c.Vecs[p.B]); s >= t {
				out = append(out, pair.Result{A: p.A, B: p.B, Sim: s})
			}
		}
		return out
	})
}
