package kernel

import (
	"fmt"
	"sort"

	"bayeslsh/internal/rng"
	"bayeslsh/internal/sighash"
	"bayeslsh/internal/stats"
	"bayeslsh/internal/vector"
)

// KLSH hyperplanes are Gaussian in the *centered, whitened* feature
// space, so their collision probability for a pair is 1 − θ'/π for
// the angle θ' in those coordinates — monotonically related to, but
// not equal to, the raw kernel cosine (they coincide for the linear
// kernel on centered data). BayesLSH pruning only needs a collision
// probability threshold r_t such that pairs with kernel cosine >= t
// have per-hash collision probability >= r_t; Calibrate estimates it
// empirically, and Lite then prunes in collision-probability space
// with the usual Beta-posterior upper-tail test before verifying
// survivors with exact kernel cosines. This is the honest
// generalization of BayesLSH-Lite to learned/kernelized metrics that
// §6 of the paper anticipates.

// Calibrate estimates the pruning threshold r_t: it samples random
// pairs from the collection, keeps those with exact kernel cosine in
// [t, t+0.05], and returns a low quantile (5th percentile) of their
// hash match rates. If the random sample yields too few qualifying
// pairs to estimate a quantile, it falls back to the analytic
// 1 − arccos(t)/π (exact for linear kernels on centered data).
func Calibrate(kern Kernel, h *KLSH, c *vector.Collection, t float64, seed uint64) float64 {
	src := rng.New(seed)
	const wantSamples = 50
	var rates []float64
	// Random pairs rarely land near the threshold, so scan a bounded
	// number of random pairs and keep the qualifying ones.
	sigs := map[int][]uint64{}
	sigOf := func(id int) []uint64 {
		if s, ok := sigs[id]; ok {
			return s
		}
		s := h.Signature(c.Vecs[id])
		sigs[id] = s
		return s
	}
	n := len(c.Vecs)
	for trial := 0; trial < 4000 && len(rates) < wantSamples; trial++ {
		i, j := src.Intn(n), src.Intn(n)
		if i == j {
			continue
		}
		s := CosineSim(kern, c.Vecs[i], c.Vecs[j])
		if s < t || s > t+0.05 {
			continue
		}
		m := sighash.MatchCount(sigOf(i), sigOf(j), 0, h.Bits())
		rates = append(rates, float64(m)/float64(h.Bits()))
	}
	if len(rates) < 8 {
		return sighash.CosineToR(t)
	}
	sort.Float64s(rates)
	return rates[len(rates)/20]
}

// LiteParams configures kernelized BayesLSH-Lite verification.
type LiteParams struct {
	// Threshold is the kernel-cosine similarity threshold t.
	Threshold float64
	// RThreshold is the per-hash collision probability at the
	// threshold (from Calibrate, or 1 − arccos(t)/π analytically).
	RThreshold float64
	// Epsilon is the recall parameter ε.
	Epsilon float64
	// K is the number of hash bits compared per round (default 32).
	K int
	// MaxHashes caps the bits examined before exact verification
	// (default: the full signature).
	MaxHashes int
}

// Pair is an output pair with its exact kernel cosine similarity.
type Pair struct {
	A, B int32
	Sim  float64
}

// Lite prunes candidate pairs on KLSH hash evidence and verifies
// survivors with exact kernel cosine computations.
type Lite struct {
	kern   Kernel
	h      *KLSH
	sigs   [][]uint64
	params LiteParams
	ns     []int
	minM   []int
}

// NewLite builds a kernelized Lite verifier over precomputed KLSH
// signatures.
func NewLite(kern Kernel, h *KLSH, sigs [][]uint64, p LiteParams) (*Lite, error) {
	if len(sigs) == 0 {
		return nil, fmt.Errorf("kernel: no signatures")
	}
	if p.Threshold <= 0 || p.Threshold > 1 {
		return nil, fmt.Errorf("kernel: threshold %v outside (0, 1]", p.Threshold)
	}
	if p.RThreshold <= 0 || p.RThreshold >= 1 {
		return nil, fmt.Errorf("kernel: collision threshold %v outside (0, 1)", p.RThreshold)
	}
	if p.Epsilon <= 0 || p.Epsilon >= 1 {
		return nil, fmt.Errorf("kernel: epsilon %v outside (0, 1)", p.Epsilon)
	}
	if p.K == 0 {
		p.K = 32
	}
	if p.K < 0 {
		return nil, fmt.Errorf("kernel: K %d must be positive", p.K)
	}
	if p.MaxHashes == 0 {
		p.MaxHashes = h.Bits()
	}
	if p.MaxHashes > h.Bits() {
		return nil, fmt.Errorf("kernel: MaxHashes %d exceeds signature bits %d", p.MaxHashes, h.Bits())
	}
	p.MaxHashes -= p.MaxHashes % p.K
	if p.MaxHashes < p.K {
		return nil, fmt.Errorf("kernel: MaxHashes smaller than one round of K=%d", p.K)
	}
	v := &Lite{kern: kern, h: h, sigs: sigs, params: p}
	for n := p.K; n <= p.MaxHashes; n += p.K {
		v.ns = append(v.ns, n)
	}
	v.minM = make([]int, len(v.ns))
	for i, n := range v.ns {
		lo, hi := 0, n+1
		for lo < hi {
			mid := (lo + hi) / 2
			// Pr[R >= r_t | M(mid, n)] under a uniform prior on [0,1].
			if stats.RegIncBeta(1-p.RThreshold, float64(n-mid+1), float64(mid+1)) >= p.Epsilon {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		v.minM[i] = lo
	}
	return v, nil
}

// Verify prunes the candidate index pairs on hash evidence, then
// computes exact kernel cosines for survivors, returning pairs with
// similarity >= Threshold plus pruning statistics.
func (v *Lite) Verify(c *vector.Collection, cands [][2]int32) (out []Pair, pruned, exact int) {
	k := v.params.K
	for _, cand := range cands {
		a, b := v.sigs[cand[0]], v.sigs[cand[1]]
		m := 0
		dead := false
		for round, n := range v.ns {
			m += sighash.MatchCount(a, b, n-k, n)
			if m < v.minM[round] {
				dead = true
				pruned++
				break
			}
		}
		if dead {
			continue
		}
		exact++
		if s := CosineSim(v.kern, c.Vecs[cand[0]], c.Vecs[cand[1]]); s >= v.params.Threshold {
			out = append(out, Pair{A: cand[0], B: cand[1], Sim: s})
		}
	}
	return out, pruned, exact
}
