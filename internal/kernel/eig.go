package kernel

import (
	"fmt"
	"math"
)

// eigSym computes the eigendecomposition of a symmetric matrix with
// the cyclic Jacobi method: a = V diag(vals) Vᵀ. The input is not
// modified. Convergence is quadratic; kernel matrices of a few hundred
// base points decompose in milliseconds.
func eigSym(a [][]float64) (vals []float64, vecs [][]float64, err error) {
	n := len(a)
	// Working copy.
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		copy(m[i], a[i])
		if len(a[i]) != n {
			return nil, nil, fmt.Errorf("eigSym: matrix not square")
		}
	}
	// V starts as identity.
	v := make([][]float64, n)
	for i := range v {
		v[i] = make([]float64, n)
		v[i][i] = 1
	}
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m[i][j] * m[i][j]
			}
		}
		if off < 1e-22*float64(n*n) {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(m[p][q]) < 1e-300 {
					continue
				}
				// Jacobi rotation zeroing m[p][q].
				theta := (m[q][q] - m[p][p]) / (2 * m[p][q])
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				tau := s / (1 + c)
				mpp := m[p][p]
				mqq := m[q][q]
				mpq := m[p][q]
				m[p][p] = mpp - t*mpq
				m[q][q] = mqq + t*mpq
				m[p][q], m[q][p] = 0, 0
				for i := 0; i < n; i++ {
					if i != p && i != q {
						mip := m[i][p]
						miq := m[i][q]
						m[i][p] = mip - s*(miq+tau*mip)
						m[p][i] = m[i][p]
						m[i][q] = miq + s*(mip-tau*miq)
						m[q][i] = m[i][q]
					}
					vip := v[i][p]
					viq := v[i][q]
					v[i][p] = vip - s*(viq+tau*vip)
					v[i][q] = viq + s*(vip-tau*viq)
				}
			}
		}
	}
	vals = make([]float64, n)
	for i := range vals {
		vals[i] = m[i][i]
	}
	return vals, v, nil
}

// invSqrtPSD returns K^(−1/2) for a symmetric positive semi-definite
// matrix, clamping eigenvalues below a relative floor (regularizing
// rank-deficient kernel matrices, which occur whenever base points
// repeat).
func invSqrtPSD(k [][]float64) ([][]float64, error) {
	vals, vecs, err := eigSym(k)
	if err != nil {
		return nil, err
	}
	n := len(vals)
	maxVal := 0.0
	for _, v := range vals {
		if v > maxVal {
			maxVal = v
		}
	}
	if maxVal <= 0 {
		return nil, fmt.Errorf("invSqrtPSD: matrix has no positive eigenvalues")
	}
	floor := 1e-10 * maxVal
	inv := make([]float64, n)
	for i, v := range vals {
		if v > floor {
			inv[i] = 1 / math.Sqrt(v)
		} // else contribute nothing (pseudo-inverse)
	}
	// K^(−1/2) = V diag(inv) Vᵀ.
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			sum := 0.0
			for l := 0; l < n; l++ {
				sum += vecs[i][l] * inv[l] * vecs[j][l]
			}
			out[i][j], out[j][i] = sum, sum
		}
	}
	return out, nil
}
