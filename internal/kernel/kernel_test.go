package kernel

import (
	"math"
	"testing"

	"bayeslsh/internal/rng"
	"bayeslsh/internal/sighash"
	"bayeslsh/internal/vector"
)

func dense(src *rng.Source, dim int, center float64) vector.Vector {
	var es []vector.Entry
	for i := 0; i < dim; i++ {
		es = append(es, vector.Entry{Ind: uint32(i), Val: center + src.NormFloat64()})
	}
	return vector.New(es)
}

func TestRBFKernelProperties(t *testing.T) {
	k := RBF{Gamma: 0.1}
	src := rng.New(1)
	a, b := dense(src, 8, 0), dense(src, 8, 1)
	if got := k.Eval(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("k(a,a) = %v, want 1", got)
	}
	if k.Eval(a, b) != k.Eval(b, a) {
		t.Error("RBF not symmetric")
	}
	if v := k.Eval(a, b); v <= 0 || v >= 1 {
		t.Errorf("k(a,b) = %v, want in (0,1) for distinct points", v)
	}
	// Farther points have smaller kernel values.
	far := dense(src, 8, 20)
	if k.Eval(a, far) >= k.Eval(a, b) {
		t.Error("RBF not decreasing with distance")
	}
}

func TestLinearKernelCosineMatchesVectorCosine(t *testing.T) {
	src := rng.New(2)
	a, b := dense(src, 10, 0), dense(src, 10, 0)
	want := vector.Cosine(a, b)
	if got := CosineSim(Linear{}, a, b); math.Abs(got-want) > 1e-12 {
		t.Errorf("linear kernel cosine %v != vector cosine %v", got, want)
	}
	if got := CosineSim(Linear{}, a, vector.Vector{}); got != 0 {
		t.Errorf("cosine with empty = %v", got)
	}
}

func TestEigSymSmallKnown(t *testing.T) {
	// Symmetric 2x2 with known eigenvalues 3 and 1.
	a := [][]float64{{2, 1}, {1, 2}}
	vals, vecs, err := eigSym(a)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := vals[0], vals[1]
	if lo > hi {
		lo, hi = hi, lo
	}
	if math.Abs(lo-1) > 1e-10 || math.Abs(hi-3) > 1e-10 {
		t.Errorf("eigenvalues = %v, want {1, 3}", vals)
	}
	// Reconstruct a from the decomposition.
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			sum := 0.0
			for l := 0; l < 2; l++ {
				sum += vecs[i][l] * vals[l] * vecs[j][l]
			}
			if math.Abs(sum-a[i][j]) > 1e-10 {
				t.Errorf("reconstruction[%d][%d] = %v, want %v", i, j, sum, a[i][j])
			}
		}
	}
}

func TestEigSymReconstructsRandomPSD(t *testing.T) {
	src := rng.New(3)
	const n = 20
	// Build PSD matrix A = B Bᵀ.
	b := make([][]float64, n)
	for i := range b {
		b[i] = make([]float64, n)
		for j := range b[i] {
			b[i][j] = src.NormFloat64()
		}
	}
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		for j := range a[i] {
			for l := 0; l < n; l++ {
				a[i][j] += b[i][l] * b[j][l]
			}
		}
	}
	vals, vecs, err := eigSym(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		if v < -1e-8 {
			t.Errorf("PSD matrix has negative eigenvalue %v", v)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			for l := 0; l < n; l++ {
				sum += vecs[i][l] * vals[l] * vecs[j][l]
			}
			if math.Abs(sum-a[i][j]) > 1e-8 {
				t.Fatalf("reconstruction error at (%d,%d): %v vs %v", i, j, sum, a[i][j])
			}
		}
	}
}

func TestEigSymRejectsNonSquare(t *testing.T) {
	if _, _, err := eigSym([][]float64{{1, 2}}); err == nil {
		t.Error("non-square matrix accepted")
	}
}

func TestInvSqrtPSD(t *testing.T) {
	// For M = K^(−1/2): M K M should be the identity (on the range of K).
	src := rng.New(4)
	const n = 12
	base := make([]vector.Vector, n)
	for i := range base {
		base[i] = dense(src, 6, 0)
	}
	kern := RBF{Gamma: 0.05}
	k := make([][]float64, n)
	for i := range k {
		k[i] = make([]float64, n)
		for j := range k[i] {
			k[i][j] = kern.Eval(base[i], base[j])
		}
	}
	m, err := invSqrtPSD(k)
	if err != nil {
		t.Fatal(err)
	}
	// Compute M K M.
	tmp := make([][]float64, n)
	for i := range tmp {
		tmp[i] = make([]float64, n)
		for j := range tmp[i] {
			for l := 0; l < n; l++ {
				tmp[i][j] += m[i][l] * k[l][j]
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			for l := 0; l < n; l++ {
				sum += tmp[i][l] * m[l][j]
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(sum-want) > 1e-6 {
				t.Fatalf("(K^-1/2 K K^-1/2)[%d][%d] = %v, want %v", i, j, sum, want)
			}
		}
	}
	if _, err := invSqrtPSD([][]float64{{-1, 0}, {0, -2}}); err == nil {
		t.Error("negative-definite matrix accepted")
	}
}

func TestNewKLSHValidation(t *testing.T) {
	src := rng.New(5)
	base := []vector.Vector{dense(src, 4, 0), dense(src, 4, 0)}
	if _, err := NewKLSH(Linear{}, base[:1], 8, 1, 1); err == nil {
		t.Error("single base point accepted")
	}
	if _, err := NewKLSH(Linear{}, base, 8, 0, 1); err == nil {
		t.Error("t=0 accepted")
	}
	if _, err := NewKLSH(Linear{}, base, 8, 3, 1); err == nil {
		t.Error("t>p accepted")
	}
	if _, err := NewKLSH(Linear{}, base, 0, 1, 1); err == nil {
		t.Error("nbits=0 accepted")
	}
}

// TestKLSHLinearKernelApproximatesHyperplaneLaw: for the linear
// kernel on zero-mean data, KLSH reduces to ordinary random-hyperplane
// hashing, so the match rate must approximate 1 − θ/π.
func TestKLSHLinearKernelApproximatesHyperplaneLaw(t *testing.T) {
	src := rng.New(6)
	const dim = 8
	kern := Linear{}
	base := make([]vector.Vector, 160)
	for i := range base {
		base[i] = dense(src, dim, 0) // zero-mean cloud
	}
	h, err := NewKLSH(kern, base, 4096, 32, 7)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 4; trial++ {
		a := dense(src, dim, 0)
		b := dense(src, dim, 0)
		want := sighash.CosineToR(CosineSim(kern, a, b))
		got := float64(sighash.MatchCount(h.Signature(a), h.Signature(b), 0, h.Bits())) / float64(h.Bits())
		// KLSH approximates RKHS Gaussians (finite base sample + CLT),
		// so the tolerance is loose.
		if math.Abs(got-want) > 0.1 {
			t.Errorf("trial %d: collision rate %v, want ≈ %v", trial, got, want)
		}
	}
}

// TestKLSHRBFMatchRateMonotoneInSimilarity: for the RBF kernel the
// collision law is a monotone transform of the kernel cosine (it is
// the centered-space angle, not the raw one); verify the monotone
// relation that pruning relies on.
func TestKLSHRBFMatchRateMonotoneInSimilarity(t *testing.T) {
	src := rng.New(16)
	const dim = 8
	kern := RBF{Gamma: 0.05}
	base := make([]vector.Vector, 120)
	for i := range base {
		base[i] = dense(src, dim, src.NormFloat64()*2)
	}
	h, err := NewKLSH(kern, base, 4096, 24, 9)
	if err != nil {
		t.Fatal(err)
	}
	anchor := dense(src, dim, 0)
	rate := func(v vector.Vector) float64 {
		return float64(sighash.MatchCount(h.Signature(anchor), h.Signature(v), 0, h.Bits())) / float64(h.Bits())
	}
	perturb := func(scale float64) vector.Vector {
		var es []vector.Entry
		for i := 0; i < dim; i++ {
			es = append(es, vector.Entry{Ind: uint32(i), Val: anchor.Val[i] + scale*src.NormFloat64()})
		}
		return vector.New(es)
	}
	near, mid, far := perturb(0.3), perturb(2), perturb(8)
	sNear, sMid, sFar := CosineSim(kern, anchor, near), CosineSim(kern, anchor, mid), CosineSim(kern, anchor, far)
	if !(sNear > sMid && sMid > sFar) {
		t.Fatalf("test geometry wrong: sims %v %v %v", sNear, sMid, sFar)
	}
	rNear, rMid, rFar := rate(near), rate(mid), rate(far)
	if !(rNear > rMid && rMid > rFar) {
		t.Errorf("match rate not monotone in kernel similarity: %v %v %v (sims %v %v %v)",
			rNear, rMid, rFar, sNear, sMid, sFar)
	}
}

// TestKernelLiteEndToEnd: kernelized BayesLSH-Lite with a calibrated
// collision threshold must prune most dissimilar pairs and keep
// near-perfect recall under the RBF kernel.
func TestKernelLiteEndToEnd(t *testing.T) {
	src := rng.New(26)
	const dim = 8
	kern := RBF{Gamma: 0.05}
	c := &vector.Collection{Dim: dim}
	// Clustered cloud: intra-cluster pairs have high kernel cosine.
	for cluster := 0; cluster < 5; cluster++ {
		center := dense(src, dim, float64(cluster*4))
		for i := 0; i < 24; i++ {
			var es []vector.Entry
			for d := 0; d < dim; d++ {
				es = append(es, vector.Entry{Ind: uint32(d), Val: center.Val[d] + 0.6*src.NormFloat64()})
			}
			c.Vecs = append(c.Vecs, vector.New(es))
		}
	}
	base := make([]vector.Vector, 100)
	for i := range base {
		base[i] = c.Vecs[src.Intn(len(c.Vecs))]
	}
	h, err := NewKLSH(kern, base, 1024, 24, 11)
	if err != nil {
		t.Fatal(err)
	}
	const th = 0.8
	rt := Calibrate(kern, h, c, th, 13)
	if rt <= 0 || rt >= 1 {
		t.Fatalf("calibrated threshold %v", rt)
	}
	sigs := h.SignatureAll(c)
	lite, err := NewLite(kern, h, sigs, LiteParams{
		Threshold: th, RThreshold: rt, Epsilon: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := len(c.Vecs)
	var cands [][2]int32
	for i := int32(0); i < int32(n); i++ {
		for j := i + 1; j < int32(n); j++ {
			cands = append(cands, [2]int32{i, j})
		}
	}
	out, pruned, exact := lite.Verify(c, cands)

	truth := map[[2]int32]bool{}
	for i := int32(0); i < int32(n); i++ {
		for j := i + 1; j < int32(n); j++ {
			if CosineSim(kern, c.Vecs[i], c.Vecs[j]) >= th {
				truth[[2]int32{i, j}] = true
			}
		}
	}
	if len(truth) < 50 {
		t.Fatalf("test geometry wrong: %d true pairs", len(truth))
	}
	got := map[[2]int32]bool{}
	for _, p := range out {
		got[[2]int32{p.A, p.B}] = true
		if p.Sim < th {
			t.Fatalf("emitted sub-threshold pair %+v", p)
		}
	}
	hit := 0
	for k := range truth {
		if got[k] {
			hit++
		}
	}
	if recall := float64(hit) / float64(len(truth)); recall < 0.9 {
		t.Errorf("kernel Lite recall = %v (%d/%d)", recall, hit, len(truth))
	}
	if pruned < len(cands)/3 {
		t.Errorf("pruned only %d of %d candidates", pruned, len(cands))
	}
	if pruned+exact != len(cands) {
		t.Errorf("accounting broken: %d + %d != %d", pruned, exact, len(cands))
	}
}

func TestNewLiteValidation(t *testing.T) {
	src := rng.New(30)
	base := []vector.Vector{dense(src, 4, 0), dense(src, 4, 0), dense(src, 4, 0)}
	h, err := NewKLSH(Linear{}, base, 64, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	sigs := [][]uint64{make([]uint64, 1)}
	ok := LiteParams{Threshold: 0.7, RThreshold: 0.6, Epsilon: 0.03}
	if _, err := NewLite(Linear{}, h, nil, ok); err == nil {
		t.Error("empty signatures accepted")
	}
	bad := []LiteParams{
		{Threshold: 0, RThreshold: 0.6, Epsilon: 0.03},
		{Threshold: 0.7, RThreshold: 0, Epsilon: 0.03},
		{Threshold: 0.7, RThreshold: 1, Epsilon: 0.03},
		{Threshold: 0.7, RThreshold: 0.6, Epsilon: 0},
		{Threshold: 0.7, RThreshold: 0.6, Epsilon: 0.03, K: -2},
		{Threshold: 0.7, RThreshold: 0.6, Epsilon: 0.03, MaxHashes: 128},
		{Threshold: 0.7, RThreshold: 0.6, Epsilon: 0.03, K: 64, MaxHashes: 32},
	}
	for i, p := range bad {
		if _, err := NewLite(Linear{}, h, sigs, p); err == nil {
			t.Errorf("case %d: bad params accepted", i)
		}
	}
}

func TestKLSHSignatureDeterministic(t *testing.T) {
	src := rng.New(8)
	base := make([]vector.Vector, 20)
	for i := range base {
		base[i] = dense(src, 4, 0)
	}
	v := dense(src, 4, 0)
	h1, err := NewKLSH(Linear{}, base, 128, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := NewKLSH(Linear{}, base, 128, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := h1.Signature(v), h2.Signature(v)
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("same seed produced different KLSH signatures")
		}
	}
	if h1.Bits() != 128 || h1.Words() != 2 {
		t.Errorf("geometry: bits=%d words=%d", h1.Bits(), h1.Words())
	}
}
