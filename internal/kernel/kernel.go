// Package kernel implements kernelized locality-sensitive hashing
// (KLSH; Kulis and Grauman, ICCV 2009 — reference [12] of the BayesLSH
// paper) and the kernel similarity it hashes, realizing the paper's
// first future-work direction: BayesLSH for similarity search with
// learned (kernelized) metrics.
//
// KLSH simulates a random Gaussian hyperplane in the reproducing
// kernel Hilbert space spanned by a sample of p base points: for a
// random subset S of t base indices,
//
//	h(x) = sign( Σ_i w_i · k(x, base_i) ),  w = K^(−1/2) (e_S/t − e/p)
//
// where K is the base points' kernel matrix. By the central limit
// theorem the projection approximates a Gaussian direction in the
// span, so for any two points Pr[h(a) = h(b)] ≈ 1 − θ(a, b)/π with θ
// the kernel-space angle — exactly the collision law BayesLSH's
// cosine instantiation performs inference under. KLSH bit signatures
// therefore plug directly into core.NewCosine.
package kernel

import (
	"fmt"
	"math"

	"bayeslsh/internal/rng"
	"bayeslsh/internal/vector"
)

// Kernel is a positive semi-definite similarity kernel.
type Kernel interface {
	// Eval returns k(a, b).
	Eval(a, b vector.Vector) float64
}

// RBF is the Gaussian radial basis function kernel
// k(a, b) = exp(−γ‖a − b‖²).
type RBF struct {
	Gamma float64
}

// Eval implements Kernel.
func (k RBF) Eval(a, b vector.Vector) float64 {
	i, j := 0, 0
	sum := 0.0
	for i < len(a.Ind) && j < len(b.Ind) {
		switch {
		case a.Ind[i] == b.Ind[j]:
			d := a.Val[i] - b.Val[j]
			sum += d * d
			i++
			j++
		case a.Ind[i] < b.Ind[j]:
			sum += a.Val[i] * a.Val[i]
			i++
		default:
			sum += b.Val[j] * b.Val[j]
			j++
		}
	}
	for ; i < len(a.Ind); i++ {
		sum += a.Val[i] * a.Val[i]
	}
	for ; j < len(b.Ind); j++ {
		sum += b.Val[j] * b.Val[j]
	}
	return math.Exp(-k.Gamma * sum)
}

// Linear is the linear kernel k(a, b) = <a, b>; with it, kernel cosine
// reduces to ordinary cosine similarity (useful for validation).
type Linear struct{}

// Eval implements Kernel.
func (Linear) Eval(a, b vector.Vector) float64 { return vector.Dot(a, b) }

// CosineSim returns the kernel-space cosine similarity
// k(a,b) / √(k(a,a) k(b,b)), clamped to [−1, 1].
func CosineSim(k Kernel, a, b vector.Vector) float64 {
	den := math.Sqrt(k.Eval(a, a) * k.Eval(b, b))
	if den == 0 {
		return 0
	}
	c := k.Eval(a, b) / den
	if c > 1 {
		c = 1
	}
	if c < -1 {
		c = -1
	}
	return c
}

// KLSH is a family of kernelized hash functions over a fixed base
// sample. It is safe for concurrent use after construction.
type KLSH struct {
	kern Kernel
	base []vector.Vector
	// w[bit] holds the base-point weights of hash function bit.
	w [][]float64
}

// NewKLSH builds nbits kernelized hash functions from a base sample of
// points (typically 100–300 points drawn from the dataset), using
// random subsets of size t (Kulis & Grauman suggest t ≈ 30 or p/4).
func NewKLSH(kern Kernel, base []vector.Vector, nbits, t int, seed uint64) (*KLSH, error) {
	p := len(base)
	if p < 2 {
		return nil, fmt.Errorf("kernel: need at least 2 base points, got %d", p)
	}
	if t < 1 || t > p {
		return nil, fmt.Errorf("kernel: subset size t=%d outside [1, %d]", t, p)
	}
	if nbits < 1 {
		return nil, fmt.Errorf("kernel: nbits=%d must be positive", nbits)
	}
	// Base kernel matrix.
	K := make([][]float64, p)
	for i := range K {
		K[i] = make([]float64, p)
	}
	for i := 0; i < p; i++ {
		for j := i; j < p; j++ {
			v := kern.Eval(base[i], base[j])
			K[i][j], K[j][i] = v, v
		}
	}
	invSqrt, err := invSqrtPSD(K)
	if err != nil {
		return nil, fmt.Errorf("kernel: %w", err)
	}
	src := rng.New(seed)
	h := &KLSH{kern: kern, base: base, w: make([][]float64, nbits)}
	z := make([]float64, p)
	for bit := 0; bit < nbits; bit++ {
		// z = e_S/t − e/p for a random t-subset S (mean-centered
		// indicator), then w = K^(−1/2) z.
		for i := range z {
			z[i] = -1 / float64(p)
		}
		for _, idx := range src.Perm(p)[:t] {
			z[idx] += 1 / float64(t)
		}
		w := make([]float64, p)
		for i := 0; i < p; i++ {
			sum := 0.0
			for j := 0; j < p; j++ {
				sum += invSqrt[i][j] * z[j]
			}
			w[i] = sum
		}
		h.w[bit] = w
	}
	return h, nil
}

// Bits returns the number of hash functions.
func (h *KLSH) Bits() int { return len(h.w) }

// Words returns the packed signature length in uint64 words.
func (h *KLSH) Words() int { return (len(h.w) + 63) / 64 }

// Signature returns the packed bit signature of v. The p kernel
// evaluations against the base sample are shared by all bits.
func (h *KLSH) Signature(v vector.Vector) []uint64 {
	kvec := make([]float64, len(h.base))
	for i, b := range h.base {
		kvec[i] = h.kern.Eval(v, b)
	}
	sig := make([]uint64, h.Words())
	for bit, w := range h.w {
		sum := 0.0
		for i, kv := range kvec {
			sum += w[i] * kv
		}
		if sum >= 0 {
			sig[bit/64] |= 1 << (bit % 64)
		}
	}
	return sig
}

// SignatureAll computes signatures for every vector in the collection.
func (h *KLSH) SignatureAll(c *vector.Collection) [][]uint64 {
	sigs := make([][]uint64, len(c.Vecs))
	for i, v := range c.Vecs {
		sigs[i] = h.Signature(v)
	}
	return sigs
}
