// Package testutil provides shared helpers for the integration tests
// of the candidate-generation and verification packages: small random
// corpora with planted similar pairs, and comparisons of result sets
// against the brute-force oracle.
package testutil

import (
	"testing"

	"bayeslsh/internal/dataset"
	"bayeslsh/internal/pair"
	"bayeslsh/internal/vector"
)

// SmallTextCorpus generates a compact weighted text corpus with
// planted near-duplicates, Tf-Idf weighted and unit-normalized.
func SmallTextCorpus(t *testing.T, n int, seed uint64) *vector.Collection {
	t.Helper()
	c, err := dataset.Generate(dataset.Spec{
		Name: "test-text", Kind: dataset.Text,
		N: n, Dim: 2000, AvgLen: 30, ZipfS: 1.05,
		ClusterFrac: 0.4, ClusterSize: 3, MutationRate: 0.25, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c.TfIdf().Normalize()
}

// SmallBinaryCorpus generates a compact binary corpus (sets) with
// planted overlapping groups.
func SmallBinaryCorpus(t *testing.T, n int, seed uint64) *vector.Collection {
	t.Helper()
	c, err := dataset.Generate(dataset.Spec{
		Name: "test-bin", Kind: dataset.Text,
		N: n, Dim: 1500, AvgLen: 25, ZipfS: 0.9,
		ClusterFrac: 0.4, ClusterSize: 3, MutationRate: 0.2, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c.Binarize()
}

// ResultKeySet converts results to a set of pair keys.
func ResultKeySet(rs []pair.Result) map[uint64]float64 {
	m := make(map[uint64]float64, len(rs))
	for _, r := range rs {
		m[r.Pair().Key()] = r.Sim
	}
	return m
}

// PairKeySet converts pairs to a key set.
func PairKeySet(ps []pair.Pair) map[uint64]struct{} {
	m := make(map[uint64]struct{}, len(ps))
	for _, p := range ps {
		m[p.Key()] = struct{}{}
	}
	return m
}

// RequireSameResults fails the test unless got and want contain the
// same pairs with similarities within tol.
func RequireSameResults(t *testing.T, got, want []pair.Result, tol float64) {
	t.Helper()
	gm, wm := ResultKeySet(got), ResultKeySet(want)
	for k, ws := range wm {
		gs, ok := gm[k]
		if !ok {
			t.Fatalf("missing pair %d:%d (sim %v)", k>>32, uint32(k), ws)
		}
		if diff := gs - ws; diff > tol || diff < -tol {
			t.Fatalf("pair %d:%d sim %v, want %v", k>>32, uint32(k), gs, ws)
		}
	}
	for k, gs := range gm {
		if _, ok := wm[k]; !ok {
			t.Fatalf("extra pair %d:%d (sim %v)", k>>32, uint32(k), gs)
		}
	}
}

// Recall returns |got ∩ want| / |want| over result pairs; 1 if want is
// empty.
func Recall(got, want []pair.Result) float64 {
	if len(want) == 0 {
		return 1
	}
	gm := ResultKeySet(got)
	hit := 0
	for _, w := range want {
		if _, ok := gm[w.Pair().Key()]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}
