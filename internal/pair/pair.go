package pair

import "sort"

// Pair identifies two distinct vectors by their collection indices,
// normalized so that A < B.
type Pair struct {
	A, B int32
}

// Make returns the normalized pair for ids a and b.
func Make(a, b int32) Pair {
	if a > b {
		a, b = b, a
	}
	return Pair{A: a, B: b}
}

// Key packs the pair into a single comparable 64-bit key.
func (p Pair) Key() uint64 { return uint64(uint32(p.A))<<32 | uint64(uint32(p.B)) }

// Result is a pair that passed verification, with its (exact or
// estimated) similarity.
type Result struct {
	A, B int32
	Sim  float64
}

// Hit is a one-sided (query versus corpus) result: the corpus id of a
// vector similar to the query and its (exact or estimated) similarity.
// It is the query-serving counterpart of Result, which pairs two
// corpus ids.
type Hit struct {
	ID  int32
	Sim float64
}

// SortHitsBySim orders hits by decreasing similarity, breaking ties by
// ascending corpus id — the canonical order of top-k query results.
func SortHitsBySim(hs []Hit) {
	sort.Slice(hs, func(i, j int) bool {
		if hs[i].Sim != hs[j].Sim {
			return hs[i].Sim > hs[j].Sim
		}
		return hs[i].ID < hs[j].ID
	})
}

// Pair returns the normalized pair of the result.
func (r Result) Pair() Pair { return Make(r.A, r.B) }

// SortResults orders results by (A, B) for deterministic output.
func SortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].A != rs[j].A {
			return rs[i].A < rs[j].A
		}
		return rs[i].B < rs[j].B
	})
}

// SortPairs orders pairs by (A, B).
func SortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].A != ps[j].A {
			return ps[i].A < ps[j].A
		}
		return ps[i].B < ps[j].B
	})
}

// Set is a deduplicating collector of pairs.
type Set struct {
	seen map[uint64]struct{}
	list []Pair
}

// NewSet returns an empty set with capacity hint n.
func NewSet(n int) *Set {
	return &Set{seen: make(map[uint64]struct{}, n)}
}

// Add inserts the normalized pair (a, b) if not already present and
// reports whether it was added. Self-pairs are ignored.
func (s *Set) Add(a, b int32) bool {
	if a == b {
		return false
	}
	p := Make(a, b)
	if _, dup := s.seen[p.Key()]; dup {
		return false
	}
	s.seen[p.Key()] = struct{}{}
	s.list = append(s.list, p)
	return true
}

// Len returns the number of distinct pairs collected.
func (s *Set) Len() int { return len(s.list) }

// Pairs returns the collected pairs in insertion order. The returned
// slice is owned by the set; callers must not modify it.
func (s *Set) Pairs() []Pair { return s.list }
