package pair

import "testing"

func TestMakeNormalizes(t *testing.T) {
	if got := Make(5, 2); got != (Pair{A: 2, B: 5}) {
		t.Errorf("Make(5,2) = %+v", got)
	}
	if got := Make(2, 5); got != (Pair{A: 2, B: 5}) {
		t.Errorf("Make(2,5) = %+v", got)
	}
}

func TestKeyUnique(t *testing.T) {
	seen := map[uint64]Pair{}
	for a := int32(0); a < 50; a++ {
		for b := a + 1; b < 50; b++ {
			p := Make(a, b)
			if prev, dup := seen[p.Key()]; dup {
				t.Fatalf("key collision: %+v and %+v", prev, p)
			}
			seen[p.Key()] = p
		}
	}
}

func TestSetDedupsAndSkipsSelf(t *testing.T) {
	s := NewSet(4)
	if !s.Add(3, 1) {
		t.Error("first Add returned false")
	}
	if s.Add(1, 3) {
		t.Error("reversed duplicate accepted")
	}
	if s.Add(2, 2) {
		t.Error("self pair accepted")
	}
	if !s.Add(1, 2) {
		t.Error("new pair rejected")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	ps := s.Pairs()
	if ps[0] != Make(1, 3) || ps[1] != Make(1, 2) {
		t.Errorf("Pairs = %v", ps)
	}
}

func TestSortResultsAndPairs(t *testing.T) {
	rs := []Result{{A: 3, B: 4}, {A: 1, B: 9}, {A: 1, B: 2}}
	SortResults(rs)
	if rs[0].A != 1 || rs[0].B != 2 || rs[2].A != 3 {
		t.Errorf("SortResults = %v", rs)
	}
	ps := []Pair{{A: 3, B: 4}, {A: 1, B: 9}, {A: 1, B: 2}}
	SortPairs(ps)
	if ps[0] != (Pair{A: 1, B: 2}) || ps[2] != (Pair{A: 3, B: 4}) {
		t.Errorf("SortPairs = %v", ps)
	}
}

func TestResultPair(t *testing.T) {
	r := Result{A: 7, B: 3, Sim: 0.5}
	if r.Pair() != Make(3, 7) {
		t.Errorf("Result.Pair = %+v", r.Pair())
	}
}
