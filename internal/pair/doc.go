// Package pair defines the candidate and result types shared by the
// candidate generation algorithms (LSH, AllPairs, PPJoin) and the
// verification algorithms (BayesLSH, BayesLSH-Lite, exact).
//
// # Types
//
// Pair identifies two distinct corpus vectors, normalized so A < B,
// and packs into a single 64-bit key for deduplication; Set is the
// deduplicating collector candidate generation merges into. Result is
// a pair that passed verification, carrying its exact or estimated
// similarity. Hit is the one-sided counterpart for the query-serving
// path: a corpus id similar to an (out-of-corpus) query vector.
//
// # Ordering
//
// SortPairs and SortResults order by (A, B) — the canonical order the
// engine sorts candidates into between the generation and
// verification phases, which is what makes everything downstream of
// generation deterministic. SortHitsBySim is the top-k equivalent:
// decreasing similarity, ties by ascending id (threshold query hits
// are already produced in ascending id order and need no sort).
package pair
