// Package minhash implements the minwise-hashing LSH family for
// Jaccard similarity (Broder et al., reference [4] of the BayesLSH
// paper), the family §4.1 of the paper builds on: for a random
// permutation π of the universe, h(x) = min π(x), and
// Pr[h(a) = h(b)] = Jaccard(a, b).
//
// Instead of materializing permutations, each hash function applies a
// strong 64-bit mixing function keyed by an independent seed to every
// element and takes the minimum — the standard practical approximation
// of a minwise-independent permutation. Because hash i's stream
// depends only on (seed_i, element), signatures are identical however
// the work is scheduled.
//
// # Lazy, concurrent signature store
//
// Store materializes each vector's signature in blocks, only as deep
// as verification demands — the paper's "each point is only hashed as
// many times as is necessary" (§4.3). The store is safe for concurrent
// use by the engine's verification workers: per-vector fills serialize
// on striped locks, readers synchronize through atomic fill counters,
// and EnsureAllParallel shards bulk fills over a worker pool with
// results identical to a sequential fill.
//
// # 1-bit signatures
//
// PackOneBit/PackOneBitAll compress full minhash signatures to their
// lowest bit — b-bit minhash with b = 1 (Li and König, WWW 2010) —
// for the §6 extension implemented in internal/core's
// OneBitJaccardVerifier: 32× smaller signatures compared by
// XOR + popcount.
package minhash
