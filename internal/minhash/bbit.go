package minhash

// b-bit minwise hashing (Li and König, WWW 2010 — reference [15] of
// the BayesLSH paper): storing only the lowest b bits of each minhash
// shrinks signatures by 32/b at the cost of random collisions. For
// b = 1 and a large universe, two sets with Jaccard similarity J agree
// on a 1-bit hash with probability
//
//	r = 1/2 + J/2,
//
// which maps the Jaccard threshold into the same truncated [1/2, 1]
// support the paper's cosine instantiation works in. The BayesLSH
// extension for these signatures lives in internal/core (OneBitJaccard
// verifier); this file provides the packing.

// PackOneBit packs the lowest bit of each minhash value into a bit
// signature ([]uint64, 64 hashes per word), compatible with
// sighash.MatchCount-style word-level comparison.
func PackOneBit(sig []uint32) []uint64 {
	out := make([]uint64, (len(sig)+63)/64)
	for i, h := range sig {
		out[i/64] |= uint64(h&1) << (i % 64)
	}
	return out
}

// PackOneBitAll packs every signature.
func PackOneBitAll(sigs [][]uint32) [][]uint64 {
	out := make([][]uint64, len(sigs))
	for i, s := range sigs {
		out[i] = PackOneBit(s)
	}
	return out
}
