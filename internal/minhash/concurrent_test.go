package minhash

import (
	"sync"
	"testing"

	"bayeslsh/internal/testutil"
)

// TestConcurrentEnsureMatchesSequential fills one store from many
// goroutines with overlapping, ragged depths and checks the signatures
// equal a sequentially filled store hash-for-hash.
func TestConcurrentEnsureMatchesSequential(t *testing.T) {
	c := testutil.SmallBinaryCorpus(t, 200, 42)

	seq := NewStore(c, NewFamily(256, 6), 32)
	seq.EnsureAll(256)

	par := NewStore(c, NewFamily(256, 6), 32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			depth := 32 * (g%8 + 1)
			for id := range par.Sigs() {
				par.Ensure(int32(id), depth)
			}
		}(g)
	}
	wg.Wait()
	par.EnsureAllParallel(256, 4)

	for id := range seq.Sigs() {
		if par.FilledHashes(int32(id)) != 256 {
			t.Fatalf("vector %d filled to %d hashes", id, par.FilledHashes(int32(id)))
		}
		s, p := seq.Sigs()[id], par.Sigs()[id]
		for i := range s {
			if s[i] != p[i] {
				t.Fatalf("vector %d hash %d: concurrent %d, sequential %d", id, i, p[i], s[i])
			}
		}
	}
}
