// Snapshot codec of the minhash store, mirroring the sighash one: the
// family is re-derived from the engine's seed at load, so a snapshot
// carries only the per-vector fill depths and filled hash prefixes.
// Restoring them makes a loaded store bit-identical to the saved one;
// deeper demands lazily extend the prefixes from the same per-function
// seed streams.

package minhash

import (
	"bayeslsh/internal/snapshot"
)

// WriteSnapshot serializes the per-vector fill state: fill depth in
// hashes, then the filled prefix.
func (s *Store) WriteSnapshot(w *snapshot.Writer) {
	w.U64(uint64(len(s.sigs)))
	for id := range s.sigs {
		fill := s.fill.Filled(int32(id))
		w.U32(uint32(fill))
		w.U32s(s.sigs[id][:fill])
	}
}

// ReadSnapshot restores fill state written by WriteSnapshot into a
// freshly constructed store over the same collection and family. It
// must run before the store is shared with concurrent readers.
func (s *Store) ReadSnapshot(r *snapshot.Reader) error {
	n := r.Len(12) // per vector: fill depth + hash-count prefix
	if r.Err() == nil && n != len(s.sigs) {
		return snapshot.Failf(r, "store has %d vectors, snapshot %d", len(s.sigs), n)
	}
	for id := 0; id < n; id++ {
		fill := int(r.U32())
		hashes := r.U32s()
		if r.Err() != nil {
			break
		}
		if fill < 0 || fill > s.fam.Size() || len(hashes) != fill {
			return snapshot.Failf(r, "vector %d: fill %d with %d hashes", id, fill, len(hashes))
		}
		copy(s.sigs[id], hashes)
		s.fill.Restore(int32(id), fill)
	}
	return r.Err()
}
