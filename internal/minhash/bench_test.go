package minhash

import (
	"testing"

	"bayeslsh/internal/rng"
	"bayeslsh/internal/vector"
)

func benchSet(n, dim int, seed uint64) vector.Vector {
	src := rng.New(seed)
	m := make(map[uint32]float64, n)
	for len(m) < n {
		m[uint32(src.Intn(dim))] = 1
	}
	return vector.FromMap(m)
}

func BenchmarkSignature512Hashes(b *testing.B) {
	fam := NewFamily(512, 1)
	v := benchSet(76, 1<<20, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fam.Signature(v)
	}
}

func BenchmarkMatches(b *testing.B) {
	fam := NewFamily(512, 1)
	x := fam.Signature(benchSet(76, 1<<20, 3))
	y := fam.Signature(benchSet(76, 1<<20, 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Matches(x, y, 0, 512)
	}
}
