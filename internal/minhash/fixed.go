// Disk-servable (v3) codec of the minhash store, mirroring
// sighash's: one uniform offline-computed depth, flat fixed-stride
// hash matrix, slice headers laid over the mapped section at open.

package minhash

import (
	"fmt"

	"bayeslsh/internal/shard"
	"bayeslsh/internal/snapshot"
)

// NewFixedStore serves minhashes computed offline: row id holds
// hashes [0, n) of vector id (typically aliasing a mapped snapshot
// section), every vector is marked filled to n, and there is no
// collection to hash from — demand beyond n is a programming error
// (the open path validates serving depths against the persisted one).
func NewFixedStore(fam *Family, sigs [][]uint32, n int) *Store {
	if n <= 0 || n > fam.Size() {
		panic("minhash: NewFixedStore needs a depth within the family")
	}
	s := &Store{fam: fam, blockSize: 32, sigs: sigs, fill: shard.NewFill(len(sigs))}
	for id := range sigs {
		s.fill.Restore(int32(id), n)
	}
	return s
}

// WriteFixedSection serializes the store for disk serving: depth,
// vector count, then every signature's first n hashes as raw
// little-endian uint32s, fixed stride. Every vector must already be
// filled to n hashes.
func (s *Store) WriteFixedSection(w *snapshot.Writer, n int) {
	w.U32(uint32(n))
	w.U32(0) // pad, mirroring the bit store section header
	w.U64(uint64(len(s.sigs)))
	for id := range s.sigs {
		for _, v := range s.sigs[id][:n] {
			w.U32(v)
		}
	}
}

// OpenFixedSection lays row views over a WriteFixedSection payload,
// validated against the buffer's actual length.
func OpenFixedSection(buf []byte) (sigs [][]uint32, depth int, err error) {
	if len(buf) < 16 {
		return nil, 0, fmt.Errorf("%w: minhash store section %d bytes", snapshot.ErrCorrupt, len(buf))
	}
	r := snapshot.NewReader(buf)
	depth = int(r.U32())
	r.U32()
	n := r.U64()
	if depth <= 0 {
		return nil, 0, fmt.Errorf("%w: minhash store depth %d", snapshot.ErrCorrupt, depth)
	}
	body := buf[16:]
	if want := uint64(len(body) / (4 * depth)); n != want || len(body)%(4*depth) != 0 {
		return nil, 0, fmt.Errorf("%w: minhash store declares %d vectors × %d hashes in %d bytes",
			snapshot.ErrCorrupt, n, depth, len(body))
	}
	flat := snapshot.ViewU32s(body)
	sigs = make([][]uint32, n)
	for id := range sigs {
		sigs[id] = flat[id*depth : (id+1)*depth : (id+1)*depth]
	}
	return sigs, depth, nil
}
