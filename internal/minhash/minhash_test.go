package minhash

import (
	"math"
	"testing"

	"bayeslsh/internal/vector"
)

func setVec(inds ...uint32) vector.Vector {
	var es []vector.Entry
	for _, i := range inds {
		es = append(es, vector.Entry{Ind: i, Val: 1})
	}
	return vector.New(es)
}

func TestNewFamilyPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewFamily(0) did not panic")
		}
	}()
	NewFamily(0, 1)
}

func TestSignatureDeterministicAndSeedSensitive(t *testing.T) {
	v := setVec(1, 5, 9, 100)
	a := NewFamily(64, 7).Signature(v)
	b := NewFamily(64, 7).Signature(v)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different signature at %d", i)
		}
	}
	c := NewFamily(64, 8).Signature(v)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different family seeds produced identical signatures")
	}
}

func TestSignatureMatchesPerHashFunction(t *testing.T) {
	f := NewFamily(32, 3)
	v := setVec(2, 4, 8, 16)
	sig := f.Signature(v)
	for i := range sig {
		if got := f.Hash(i, v); got != sig[i] {
			t.Errorf("Hash(%d) = %d, Signature[%d] = %d", i, got, i, sig[i])
		}
	}
}

func TestEmptyVectorSignature(t *testing.T) {
	f := NewFamily(8, 1)
	sig := f.Signature(vector.Vector{})
	for i, s := range sig {
		if s != Empty {
			t.Errorf("empty signature[%d] = %d, want sentinel", i, s)
		}
	}
	if got := f.Hash(0, vector.Vector{}); got != Empty {
		t.Errorf("Hash of empty = %d", got)
	}
}

func TestIdenticalSetsAlwaysCollide(t *testing.T) {
	f := NewFamily(128, 2)
	v := setVec(3, 1, 4, 1, 5, 9, 2, 6)
	w := v.Clone()
	w.Scale(42) // weights must not matter
	a, b := f.Signature(v), f.Signature(w)
	if got := Matches(a, b, 0, len(a)); got != len(a) {
		t.Errorf("identical sets matched on %d/%d hashes", got, len(a))
	}
}

func TestCollisionRateApproximatesJaccard(t *testing.T) {
	// The LSH property (Equation 1 of the paper): the fraction of
	// matching hashes converges to the Jaccard similarity.
	const hashes = 4096
	f := NewFamily(hashes, 11)
	cases := []struct {
		a, b vector.Vector
	}{
		{setVec(1, 2, 3, 4), setVec(3, 4, 5, 6)},                   // J = 2/6
		{setVec(1, 2, 3, 4, 5, 6, 7, 8), setVec(1, 2, 3, 4, 5, 6)}, // J = 6/8
		{setVec(10, 20), setVec(30, 40)},                           // J = 0
		{setVec(1, 2, 3), setVec(1, 2, 3)},                         // J = 1
	}
	for _, c := range cases {
		want := vector.Jaccard(c.a, c.b)
		got := float64(Matches(f.Signature(c.a), f.Signature(c.b), 0, hashes)) / hashes
		// 4σ tolerance for a binomial proportion over 4096 trials.
		tol := 4 * math.Sqrt(want*(1-want)/hashes)
		if tol < 0.002 {
			tol = 0.002
		}
		if math.Abs(got-want) > tol {
			t.Errorf("collision rate %v, Jaccard %v (tol %v)", got, want, tol)
		}
	}
}

func TestMatchesSubrange(t *testing.T) {
	a := []uint32{1, 2, 3, 4, 5}
	b := []uint32{1, 9, 3, 9, 5}
	if got := Matches(a, b, 0, 5); got != 3 {
		t.Errorf("full Matches = %d, want 3", got)
	}
	if got := Matches(a, b, 1, 4); got != 1 {
		t.Errorf("sub Matches = %d, want 1", got)
	}
	if got := Matches(a, b, 2, 2); got != 0 {
		t.Errorf("empty range Matches = %d, want 0", got)
	}
}

func TestMatchesPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Matches did not panic")
		}
	}()
	Matches([]uint32{1}, []uint32{1, 2}, 0, 2)
}

func TestSignatureAll(t *testing.T) {
	c := &vector.Collection{Dim: 10, Vecs: []vector.Vector{setVec(1), setVec(2, 3)}}
	f := NewFamily(16, 5)
	sigs := f.SignatureAll(c)
	if len(sigs) != 2 || len(sigs[0]) != 16 {
		t.Fatalf("SignatureAll shape wrong: %d x %d", len(sigs), len(sigs[0]))
	}
	one := f.Signature(c.Vecs[1])
	for i := range one {
		if sigs[1][i] != one[i] {
			t.Fatal("SignatureAll disagrees with Signature")
		}
	}
}
