package minhash

import (
	"math"

	"bayeslsh/internal/rng"
	"bayeslsh/internal/vector"
)

// Empty is the signature value assigned by every hash function to the
// empty set. Callers performing all-pairs search should drop empty
// vectors; two empty sets collide on every hash.
const Empty = math.MaxUint32

// Family is a set of minwise hash functions. It is safe for
// concurrent use after construction.
type Family struct {
	seeds []uint64
}

// NewFamily creates n minwise hash functions derived deterministically
// from seed.
func NewFamily(n int, seed uint64) *Family {
	if n <= 0 {
		panic("minhash: NewFamily with n <= 0")
	}
	f := &Family{seeds: make([]uint64, n)}
	sm := seed
	for i := range f.seeds {
		f.seeds[i] = rng.SplitMix64(&sm)
	}
	return f
}

// Size returns the number of hash functions in the family.
func (f *Family) Size() int { return len(f.seeds) }

// Hash applies hash function i to the index set of v.
func (f *Family) Hash(i int, v vector.Vector) uint32 {
	min := uint64(math.MaxUint64)
	seed := f.seeds[i]
	for _, ind := range v.Ind {
		if h := rng.Mix64(seed ^ (uint64(ind)+1)*0x9e3779b97f4a7c15); h < min {
			min = h
		}
	}
	if min == math.MaxUint64 {
		return Empty
	}
	return uint32(min >> 32)
}

// Signature returns the full signature of v: one minhash per function
// in the family. The weights of v are ignored; minwise hashing is a
// set technique.
func (f *Family) Signature(v vector.Vector) []uint32 {
	return f.SignatureN(v, len(f.seeds))
}

// SignatureN computes the first n hashes of v's signature — the
// query-hashing path, which only pays for the depth a probe or
// verification actually reads. Hash i depends only on its own seed,
// so the result is the corresponding prefix of the full Signature.
func (f *Family) SignatureN(v vector.Vector, n int) []uint32 {
	if n > len(f.seeds) {
		panic("minhash: SignatureN beyond family capacity")
	}
	sig := make([]uint32, n)
	if v.Len() == 0 {
		for i := range sig {
			sig[i] = Empty
		}
		return sig
	}
	// One pass per element rather than per hash: mix each element once
	// per hash function, tracking minima for all functions.
	mins := make([]uint64, n)
	for i := range mins {
		mins[i] = math.MaxUint64
	}
	for _, ind := range v.Ind {
		e := (uint64(ind) + 1) * 0x9e3779b97f4a7c15
		for i, seed := range f.seeds[:n] {
			if h := rng.Mix64(seed ^ e); h < mins[i] {
				mins[i] = h
			}
		}
	}
	for i, m := range mins {
		sig[i] = uint32(m >> 32)
	}
	return sig
}

// SignatureAll computes signatures for every vector in the collection.
func (f *Family) SignatureAll(c *vector.Collection) [][]uint32 {
	sigs := make([][]uint32, len(c.Vecs))
	for i, v := range c.Vecs {
		sigs[i] = f.Signature(v)
	}
	return sigs
}

// Matches counts agreeing positions of a and b in the half-open hash
// range [from, to). It panics if the range is outside either
// signature.
func Matches(a, b []uint32, from, to int) int {
	if from < 0 || to > len(a) || to > len(b) || from > to {
		panic("minhash: Matches range out of bounds")
	}
	n := 0
	for i := from; i < to; i++ {
		if a[i] == b[i] {
			n++
		}
	}
	return n
}
