package minhash

import (
	"context"
	"math"
	"time"

	"bayeslsh/internal/rng"
	"bayeslsh/internal/shard"
	"bayeslsh/internal/vector"
)

// Store lazily computes and caches minhash signatures per vector,
// extending them in blocks as verification demands deeper hash
// prefixes — the paper's "each point is only hashed as many times as
// is necessary". It is safe for concurrent use (synchronization via
// shard.Fill): a reader that calls Ensure(id, n) first — even if
// another goroutine did the fill — may read hashes [0, n) of sigs[id]
// without further locking. Each hash function's stream is keyed by its
// own seed, so fills are identical regardless of goroutine scheduling.
type Store struct {
	fam       *Family
	c         *vector.Collection
	blockSize int
	sigs      [][]uint32 // full capacity allocated; filled lazily
	fill      *shard.Fill
}

// NewStore creates a minhash signature store over the collection.
// blockSize controls materialization granularity (hashes are computed
// blockSize at a time; default 32 when 0).
func NewStore(c *vector.Collection, fam *Family, blockSize int) *Store {
	if blockSize <= 0 {
		blockSize = 32
	}
	n := fam.Size()
	s := &Store{
		fam:       fam,
		c:         c,
		blockSize: blockSize,
		sigs:      make([][]uint32, len(c.Vecs)),
		fill:      shard.NewFill(len(c.Vecs)),
	}
	backing := make([]uint32, n*len(c.Vecs))
	for i := range s.sigs {
		s.sigs[i], backing = backing[:n:n], backing[n:]
	}
	return s
}

// Sigs exposes the backing signature slices. Slice headers are stable
// for the store's lifetime; entries beyond the ensured prefix are zero
// until filled.
func (s *Store) Sigs() [][]uint32 { return s.sigs }

// MaxHashes returns the signature capacity.
func (s *Store) MaxHashes() int { return s.fam.Size() }

// Family returns the store's hash family, for hashing out-of-corpus
// query vectors with the same seeds (see Family.Signature).
func (s *Store) Family() *Family { return s.fam }

// FilledHashes returns how many hashes of vector id are computed.
func (s *Store) FilledHashes(id int32) int { return s.fill.Filled(id) }

// Elapsed returns the cumulative wall-clock time spent hashing. Under
// concurrent fills it sums per-goroutine fill time, which can exceed
// the wall-clock time of the enclosing phase.
func (s *Store) Elapsed() time.Duration { return s.fill.Elapsed() }

// Ensure fills vector id's signature up to at least n hashes.
func (s *Store) Ensure(id int32, n int) {
	s.fill.Ensure(id, n, func(from int) int {
		if s.c == nil {
			panic("minhash: fixed store cannot hash deeper than its persisted depth")
		}
		to := (n + s.blockSize - 1) / s.blockSize * s.blockSize
		if to > s.fam.Size() {
			to = s.fam.Size()
		}
		if n > to {
			panic("minhash: Ensure beyond family capacity")
		}
		v := s.c.Vecs[id]
		sig := s.sigs[id]
		if v.Len() == 0 {
			for i := from; i < to; i++ {
				sig[i] = Empty
			}
			return to
		}
		mins := make([]uint64, to-from)
		for i := range mins {
			mins[i] = math.MaxUint64
		}
		for _, ind := range v.Ind {
			e := (uint64(ind) + 1) * 0x9e3779b97f4a7c15
			for i := from; i < to; i++ {
				if h := rng.Mix64(s.fam.seeds[i] ^ e); h < mins[i-from] {
					mins[i-from] = h
				}
			}
		}
		for i := from; i < to; i++ {
			sig[i] = uint32(mins[i-from] >> 32)
		}
		return to
	})
}

// Adopt copies an already-computed signature prefix of n hashes into
// vector id's slot and marks it filled — the live index's merge path,
// which moves signatures from the outgoing base store and memtable
// into a fresh store instead of re-hashing the corpus. The source may
// keep being used (and deepened) independently: the prefix is copied,
// not aliased. Like the snapshot loader's restore, Adopt must run
// before the store is shared with concurrent Ensure/Sigs readers.
// Deeper demand later resumes hashing at n through the ordinary lazy
// fill, and each hash function's stream is keyed by its own seed, so
// the result is bit-identical to a store that hashed everything
// itself.
func (s *Store) Adopt(id int32, sig []uint32, n int) {
	if n <= 0 {
		return
	}
	if n > s.fam.Size() || n > len(sig) {
		panic("minhash: Adopt needs a prefix within the family budget")
	}
	copy(s.sigs[id][:n], sig[:n])
	s.fill.Restore(id, n)
}

// EnsureAll fills every vector's signature up to n hashes.
func (s *Store) EnsureAll(n int) {
	for id := range s.sigs {
		s.Ensure(int32(id), n)
	}
}

// EnsureAllParallel fills every vector's signature up to n hashes
// using a pool of workers goroutines, producing signatures identical
// to a sequential fill for any worker count.
func (s *Store) EnsureAllParallel(n, workers int) {
	if workers <= 1 {
		s.EnsureAll(n)
		return
	}
	shard.Run(len(s.sigs), workers, shard.Chunk(len(s.sigs), workers, 16), func(lo, hi, _ int) {
		for id := lo; id < hi; id++ {
			s.Ensure(int32(id), n)
		}
	})
}

// EnsureAllCtx is EnsureAllParallel with cooperative cancellation,
// polled between vectors. Vectors already filled stay filled — the
// lazy fill state remains consistent — so a later call resumes where
// a canceled one stopped.
func (s *Store) EnsureAllCtx(ctx context.Context, n, workers int) error {
	if ctx.Done() == nil {
		s.EnsureAllParallel(n, workers)
		return nil
	}
	stop := shard.NewStopper(ctx)
	defer stop.Close()
	return shard.RunCtx(ctx, len(s.sigs), workers, shard.Chunk(len(s.sigs), workers, 16), func(lo, hi, _ int) {
		for id := lo; id < hi; id++ {
			if stop.Stopped() {
				return
			}
			s.Ensure(int32(id), n)
		}
	})
}
