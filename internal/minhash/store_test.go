package minhash

import (
	"testing"

	"bayeslsh/internal/vector"
)

func storeCollection() *vector.Collection {
	return &vector.Collection{Dim: 100, Vecs: []vector.Vector{
		setVec(1, 2, 3, 4, 5),
		setVec(3, 4, 5, 6),
		{},
	}}
}

func TestMinhashStoreLazyFill(t *testing.T) {
	c := storeCollection()
	fam := NewFamily(128, 5)
	s := NewStore(c, fam, 32)
	if s.FilledHashes(0) != 0 {
		t.Fatal("store not lazy")
	}
	s.Ensure(0, 10)
	if got := s.FilledHashes(0); got != 32 {
		t.Errorf("FilledHashes = %d, want one block of 32", got)
	}
	s.Ensure(0, 128)
	if got := s.FilledHashes(0); got != 128 {
		t.Errorf("FilledHashes = %d, want 128", got)
	}
	if s.Elapsed() <= 0 {
		t.Error("no hashing time recorded")
	}
}

func TestMinhashStoreMatchesEagerFamily(t *testing.T) {
	c := storeCollection()
	fam := NewFamily(96, 9)
	s := NewStore(c, fam, 32)
	s.Ensure(0, 50) // partial first
	s.EnsureAll(96)
	for id, v := range c.Vecs {
		want := fam.Signature(v)
		got := s.Sigs()[id]
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("vector %d hash %d: store %d, eager %d", id, i, got[i], want[i])
			}
		}
	}
}

func TestMinhashStoreEmptyVectorSentinel(t *testing.T) {
	c := storeCollection()
	s := NewStore(c, NewFamily(64, 3), 32)
	s.Ensure(2, 64)
	for i, h := range s.Sigs()[2] {
		if h != Empty {
			t.Fatalf("empty vector hash %d = %d, want sentinel", i, h)
		}
	}
}

func TestMinhashStoreEnsureBeyondCapacityPanics(t *testing.T) {
	c := storeCollection()
	s := NewStore(c, NewFamily(64, 3), 32)
	defer func() {
		if recover() == nil {
			t.Error("Ensure beyond capacity did not panic")
		}
	}()
	s.Ensure(0, 65)
}

func TestMinhashStoreDefaultBlockSize(t *testing.T) {
	c := storeCollection()
	s := NewStore(c, NewFamily(64, 3), 0)
	s.Ensure(0, 1)
	if got := s.FilledHashes(0); got != 32 {
		t.Errorf("default block = %d, want 32", got)
	}
	if s.MaxHashes() != 64 {
		t.Errorf("MaxHashes = %d", s.MaxHashes())
	}
}
