//go:build !unix || apss_nommap

package diskidx

import (
	"fmt"
	"os"
	"sync"

	"bayeslsh/internal/snapshot"
)

// openMapping is the portable fallback (non-unix platforms, or any
// platform under the apss_nommap build tag): the file handle is kept
// open and each requested range is pread into a heap buffer. The
// laziness contract weakens from page granularity to section
// granularity — a section costs its full length in heap the first
// time it is touched — but the serving semantics are identical.
func openMapping(f *os.File, size int64) (mapping, error) {
	return &preadMapping{f: f, size: size}, nil
}

type preadMapping struct {
	f    *os.File
	size int64

	mu   sync.Mutex
	read int64
}

func (m *preadMapping) slice(off, n int64) ([]byte, error) {
	if off < 0 || n < 0 || off+n > m.size {
		return nil, fmt.Errorf("%w: slice [%d,%d) outside %d-byte file", snapshot.ErrCorrupt, off, off+n, m.size)
	}
	buf := make([]byte, n)
	if _, err := m.f.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("diskidx: pread %s: %w", m.f.Name(), err)
	}
	m.mu.Lock()
	m.read += n
	m.mu.Unlock()
	return buf, nil
}

func (m *preadMapping) mapped() int64 { return 0 }

func (m *preadMapping) resident() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.read
}

func (m *preadMapping) close() error { return m.f.Close() }
