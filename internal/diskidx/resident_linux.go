//go:build linux && !apss_nommap

package diskidx

import (
	"os"
	"syscall"
	"unsafe"
)

// residentOf asks the kernel (mincore) how many of the mapping's
// pages are currently resident in RAM. The syscall package has no
// Mincore wrapper on linux, so the syscall is issued raw; data is a
// live mmap region, so its base pointer is stable for the call.
func residentOf(data []byte) int64 {
	if len(data) == 0 {
		return 0
	}
	page := os.Getpagesize()
	vec := make([]byte, (len(data)+page-1)/page)
	_, _, errno := syscall.Syscall(syscall.SYS_MINCORE,
		uintptr(unsafe.Pointer(&data[0])), uintptr(len(data)), uintptr(unsafe.Pointer(&vec[0])))
	if errno != 0 {
		return -1
	}
	var n int64
	for _, v := range vec {
		if v&1 != 0 {
			n += int64(page)
		}
	}
	if n > int64(len(data)) {
		n = int64(len(data))
	}
	return n
}
