package diskidx

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"

	"bayeslsh/internal/snapshot"
)

// FileWriter streams a v3 snapshot to a file: sections are written
// sequentially, each padded to the next page boundary, and Finish
// seeks back to write the header page (magic, version, directory,
// header CRC). Errors are sticky, mirroring snapshot.Writer.
type FileWriter struct {
	f     *os.File
	bw    *bufio.Writer
	off   int64
	sects []Section
	err   error
}

// NewFileWriter starts a v3 stream on f, which must be positioned at
// offset 0 and be seekable. The first page is reserved for the header.
func NewFileWriter(f *os.File) *FileWriter {
	fw := &FileWriter{f: f, bw: bufio.NewWriterSize(f, 1<<16), off: PageSize}
	if _, err := f.Seek(PageSize, 0); err != nil {
		fw.err = err
	}
	return fw
}

// Err returns the first error encountered, if any.
func (fw *FileWriter) Err() error { return fw.err }

// Section writes one tagged section: build runs against a
// snapshot.Writer streaming straight to the file, the payload's
// length and CRC-32C are recorded in the directory, and the stream is
// zero-padded to the next page boundary. Empty sections are legal but
// wasteful (a full page of padding); callers normally skip absent
// structures instead.
func (fw *FileWriter) Section(tag uint32, build func(sw *snapshot.Writer)) {
	if fw.err != nil {
		return
	}
	if tag == 0 {
		fw.err = fmt.Errorf("diskidx: section tag 0 is reserved")
		return
	}
	if len(fw.sects) >= maxSections {
		fw.err = fmt.Errorf("diskidx: more than %d sections", maxSections)
		return
	}
	sw := snapshot.NewWriter(fw.bw)
	build(sw)
	ln, crc := sw.Len(), sw.CRC()
	sw.Pad(PageSize)
	if sw.Err() != nil {
		fw.err = fmt.Errorf("diskidx: section %d: %w", tag, sw.Err())
		return
	}
	fw.sects = append(fw.sects, Section{Tag: tag, Off: fw.off, Len: ln, CRC: crc})
	fw.off += sw.Len()
}

// Finish flushes the payload stream and writes the header page at
// offset 0. It does not sync or close the file; the caller owns the
// temp-write/rename publication dance.
func (fw *FileWriter) Finish() error {
	if fw.err != nil {
		return fw.err
	}
	if err := fw.bw.Flush(); err != nil {
		fw.err = err
		return err
	}
	hdr := make([]byte, headerFixed+len(fw.sects)*sectionEntrySize+4)
	copy(hdr, Magic)
	binary.LittleEndian.PutUint32(hdr[len(Magic):], Version)
	binary.LittleEndian.PutUint32(hdr[len(Magic)+4:], uint32(len(fw.sects)))
	for i, s := range fw.sects {
		e := hdr[headerFixed+i*sectionEntrySize:]
		binary.LittleEndian.PutUint32(e, s.Tag)
		binary.LittleEndian.PutUint64(e[8:], uint64(s.Off))
		binary.LittleEndian.PutUint64(e[16:], uint64(s.Len))
		binary.LittleEndian.PutUint32(e[24:], s.CRC)
	}
	binary.LittleEndian.PutUint32(hdr[len(hdr)-4:], snapshot.Checksum(hdr[:len(hdr)-4]))
	if _, err := fw.f.WriteAt(hdr, 0); err != nil {
		fw.err = err
		return err
	}
	return nil
}
