//go:build unix && !apss_nommap

package diskidx

import (
	"fmt"
	"os"
	"syscall"

	"bayeslsh/internal/snapshot"
)

// openMapping maps the whole file read-only and closes the file
// descriptor (the mapping survives it). Section slices alias the
// mapping directly, so bytes are paged in by the OS on first access
// and never copied onto the Go heap. An empty or header-only file is
// still mapped — the minimum header size is validated by the caller.
func openMapping(f *os.File, size int64) (mapping, error) {
	defer f.Close()
	if size <= 0 || size != int64(int(size)) {
		return nil, fmt.Errorf("%w: unmappable size %d", snapshot.ErrCorrupt, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("diskidx: mmap %s: %w", f.Name(), err)
	}
	return &mmapMapping{data: data}, nil
}

type mmapMapping struct {
	data []byte
}

func (m *mmapMapping) slice(off, n int64) ([]byte, error) {
	if off < 0 || n < 0 || off+n > int64(len(m.data)) {
		return nil, fmt.Errorf("%w: slice [%d,%d) outside %d-byte mapping", snapshot.ErrCorrupt, off, off+n, len(m.data))
	}
	return m.data[off : off+n : off+n], nil
}

func (m *mmapMapping) mapped() int64 { return int64(len(m.data)) }

func (m *mmapMapping) resident() int64 { return residentOf(m.data) }

func (m *mmapMapping) close() error {
	if m.data == nil {
		return nil
	}
	data := m.data
	m.data = nil
	return syscall.Munmap(data)
}
