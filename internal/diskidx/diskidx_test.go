package diskidx

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"bayeslsh/internal/snapshot"
)

// writeImage builds a v3 file with the given sections and returns its
// bytes and path.
func writeImage(t *testing.T, sections map[uint32][]byte, tags []uint32) ([]byte, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "v3.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	fw := NewFileWriter(f)
	for _, tag := range tags {
		payload := sections[tag]
		fw.Section(tag, func(sw *snapshot.Writer) { sw.Raw(payload) })
	}
	if err := fw.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data, path
}

func TestRoundTrip(t *testing.T) {
	big := bytes.Repeat([]byte{0xab, 0xcd}, 3000) // spans two pages
	data, path := writeImage(t, map[uint32][]byte{
		1: []byte("meta"),
		2: big,
		3: {},
	}, []uint32{1, 2, 3})

	for name, open := range map[uint32]func() (*File, error){
		0: func() (*File, error) { return Open(path) },
		1: func() (*File, error) { return OpenBytes(data) },
	} {
		f, err := open()
		if err != nil {
			t.Fatalf("open %d: %v", name, err)
		}
		if got := len(f.Sections()); got != 3 {
			t.Fatalf("%d sections", got)
		}
		for tag, want := range map[uint32][]byte{1: []byte("meta"), 2: big, 3: {}} {
			lz, ok := f.Section(tag)
			if !ok {
				t.Fatalf("section %d missing", tag)
			}
			got, err := lz.Bytes()
			if err != nil {
				t.Fatalf("section %d: %v", tag, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("section %d: %d bytes, want %d", tag, len(got), len(want))
			}
			if lz.Meta().Off%PageSize != 0 {
				t.Fatalf("section %d at unaligned offset %d", tag, lz.Meta().Off)
			}
		}
		if _, ok := f.Section(9); ok {
			t.Fatal("phantom section 9")
		}
		if f.MappedBytes() < 0 || f.ResidentBytes() < 0 {
			t.Fatalf("negative byte stats: mapped %d resident %d", f.MappedBytes(), f.ResidentBytes())
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLazyVerification(t *testing.T) {
	data, _ := writeImage(t, map[uint32][]byte{1: []byte("head"), 2: []byte("payload")}, []uint32{1, 2})

	// Flip one payload byte of section 2: open still succeeds (header
	// is intact), section 1 still serves, section 2 fails on first
	// touch and keeps failing.
	corrupt := bytes.Clone(data)
	f0, err := OpenBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	lz, _ := f0.Section(2)
	corrupt[lz.Meta().Off] ^= 0xff
	f, err := OpenBytes(corrupt)
	if err != nil {
		t.Fatalf("open after payload flip: %v", err)
	}
	ok, _ := f.Section(1)
	if _, err := ok.Bytes(); err != nil {
		t.Fatalf("clean section: %v", err)
	}
	bad, _ := f.Section(2)
	if _, err := bad.Raw(); err != nil {
		t.Fatalf("Raw must not verify: %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := bad.Bytes(); !errors.Is(err, snapshot.ErrCorrupt) {
			t.Fatalf("touch %d: err = %v, want ErrCorrupt", i, err)
		}
	}
}

// mutate returns a copy of data with f applied.
func mutate(data []byte, f func(b []byte)) []byte {
	b := bytes.Clone(data)
	f(b)
	return b
}

// rechecksum fixes the header CRC after a deliberate header mutation,
// so the test reaches the directory validation it aims at.
func rechecksum(b []byte) {
	n := binary.LittleEndian.Uint32(b[len(Magic)+4:])
	end := headerFixed + int(n)*sectionEntrySize
	binary.LittleEndian.PutUint32(b[end:], snapshot.Checksum(b[:end]))
}

func TestHostileHeaders(t *testing.T) {
	data, _ := writeImage(t, map[uint32][]byte{1: []byte("aa"), 2: []byte("bb")}, []uint32{1, 2})
	entry := func(b []byte, i int) []byte { return b[headerFixed+i*sectionEntrySize:] }

	cases := map[string][]byte{
		"empty":            {},
		"short":            data[:10],
		"bad magic":        mutate(data, func(b []byte) { b[0] = 'X' }),
		"header crc flip":  mutate(data, func(b []byte) { b[headerFixed] ^= 1 }),
		"truncated header": data[:headerFixed+2],
		"huge section count": mutate(data, func(b []byte) {
			binary.LittleEndian.PutUint32(b[len(Magic)+4:], 1<<30)
		}),
		"zero tag": mutate(data, func(b []byte) {
			binary.LittleEndian.PutUint32(entry(b, 0), 0)
			rechecksum(b)
		}),
		"duplicate tag": mutate(data, func(b []byte) {
			binary.LittleEndian.PutUint32(entry(b, 1), 1)
			rechecksum(b)
		}),
		"unaligned offset": mutate(data, func(b []byte) {
			binary.LittleEndian.PutUint64(entry(b, 0)[8:], PageSize+1)
			rechecksum(b)
		}),
		"overlapping sections": mutate(data, func(b []byte) {
			binary.LittleEndian.PutUint64(entry(b, 1)[8:], PageSize)
			rechecksum(b)
		}),
		"huge declared length": mutate(data, func(b []byte) {
			binary.LittleEndian.PutUint64(entry(b, 0)[16:], 1<<50)
			rechecksum(b)
		}),
		"negative length": mutate(data, func(b []byte) {
			binary.LittleEndian.PutUint64(entry(b, 0)[16:], 1<<63)
			rechecksum(b)
		}),
		"truncated payload": data[:len(data)-(len(data)-PageSize)/2],
	}
	for name, in := range cases {
		f, err := OpenBytes(in)
		if err == nil {
			// Directory validation may legitimately pass for the payload
			// truncation only if lengths still fit; then the touch must fail.
			for _, s := range f.Sections() {
				lz, _ := f.Section(s.Tag)
				if _, err = lz.Bytes(); err != nil {
					break
				}
			}
		}
		if !errors.Is(err, snapshot.ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

func TestVersionError(t *testing.T) {
	data, _ := writeImage(t, map[uint32][]byte{1: []byte("x")}, []uint32{1})
	old := mutate(data, func(b []byte) { binary.LittleEndian.PutUint32(b[len(Magic):], 1) })
	_, err := OpenBytes(old)
	var ve *VersionError
	if !errors.As(err, &ve) || ve.Found != 1 {
		t.Fatalf("err = %v, want VersionError{1}", err)
	}
}

func TestWriterLimits(t *testing.T) {
	f, err := os.Create(filepath.Join(t.TempDir(), "x.snap"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fw := NewFileWriter(f)
	fw.Section(0, func(sw *snapshot.Writer) {})
	if fw.Err() == nil {
		t.Fatal("tag 0 accepted")
	}
}
