// Package diskidx implements the disk-servable snapshot container
// (format version 3): a page-aligned section file that an index can
// serve from in place. Unlike the v1/v2 stream formats — which are
// decoded front to back into heap structures behind a whole-file
// checksum — a v3 file carries a fixed-size header with a section
// directory (tag, offset, length, CRC-32C per section), every section
// starts on a 4 KiB page boundary, and payload bytes are read lazily:
// opening a file costs O(header), and each section's checksum is
// verified once, on first touch, when a query first needs it.
//
// The container is deliberately dumb: it knows offsets, lengths and
// checksums, not what the sections mean. The section payload codecs
// live with the structures they serve (internal/vector,
// internal/lshindex, internal/allpairs, ...) and the root package
// assembles them into a servable index.
package diskidx

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"

	"bayeslsh/internal/snapshot"
)

const (
	// Magic begins every snapshot file, shared with the v1/v2 formats
	// so version sniffing works across all of them.
	Magic = "BLSHSNAP"
	// Version is the disk-servable format version.
	Version = 3
	// PageSize aliases the codec layer's section alignment unit.
	PageSize = snapshot.PageSize

	// maxSections keeps the header (magic + version + count + directory
	// + header CRC) inside the first page.
	maxSections = (PageSize - headerFixed - 4) / sectionEntrySize

	headerFixed      = len(Magic) + 4 + 4 // magic, version, section count
	sectionEntrySize = 32                 // tag, pad, off, len, crc, pad
)

// Section is one directory entry: a tagged, page-aligned byte range
// with its own CRC-32C.
type Section struct {
	Tag uint32
	Off int64
	Len int64
	CRC uint32
}

// VersionError reports a file that carries the snapshot magic but a
// format version other than 3, so callers can route v1/v2 files to
// the stream decoders. It is a version mismatch, not corruption;
// callers match it with errors.As.
type VersionError struct {
	Found uint32
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("diskidx: snapshot version %d, this package reads %d", e.Found, Version)
}

// File is an open disk-servable snapshot. All methods are safe for
// concurrent use; section bytes are immutable for the life of the
// File. Close releases the mapping — the caller must guarantee no
// section slice obtained from this File is used afterwards.
type File struct {
	m     mapping
	size  int64
	sects []Section
	lazy  []lazySection
}

// lazySection tracks the two lazy steps of serving a section: loading
// its bytes (a zero-copy subslice under mmap, a pread under the
// fallback) and verifying its checksum on first touch.
type lazySection struct {
	load      sync.Once
	data      []byte
	loadErr   error
	verify    sync.Once
	verifyErr error
}

// Open opens path as a disk-servable snapshot: it maps the file
// (or arranges pread access under the apss_nommap build tag or on
// platforms without mmap), parses and CRC-checks the header page, and
// validates the section directory — offsets page-aligned, in file
// bounds, strictly ordered and non-overlapping, tags unique. No
// section payload is read, verified or decoded here.
func Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	m, err := openMapping(f, st.Size())
	// openMapping owns f from here on both paths.
	if err != nil {
		return nil, err
	}
	df, err := newFile(m, st.Size())
	if err != nil {
		m.close()
		return nil, err
	}
	return df, nil
}

// OpenBytes opens an in-memory v3 image — the test and fuzz entry
// point, sharing every validation step with Open.
func OpenBytes(data []byte) (*File, error) {
	return newFile(byteMapping(data), int64(len(data)))
}

func newFile(m mapping, size int64) (*File, error) {
	hn := size
	if hn > PageSize {
		hn = PageSize
	}
	hdr, err := m.slice(0, hn)
	if err != nil {
		return nil, err
	}
	sects, err := parseHeader(hdr, size)
	if err != nil {
		return nil, err
	}
	return &File{m: m, size: size, sects: sects, lazy: make([]lazySection, len(sects))}, nil
}

func parseHeader(hdr []byte, size int64) ([]Section, error) {
	if len(hdr) < headerFixed+4 || string(hdr[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("%w: missing magic", snapshot.ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(hdr[len(Magic):]); v != Version {
		return nil, &VersionError{Found: v}
	}
	n := int(binary.LittleEndian.Uint32(hdr[len(Magic)+4:]))
	if n > maxSections {
		return nil, fmt.Errorf("%w: %d sections exceeds header page capacity %d", snapshot.ErrCorrupt, n, maxSections)
	}
	end := headerFixed + int(n)*sectionEntrySize
	if len(hdr) < end+4 {
		return nil, fmt.Errorf("%w: truncated header (%d bytes for %d sections)", snapshot.ErrCorrupt, len(hdr), n)
	}
	if got, want := snapshot.Checksum(hdr[:end]), binary.LittleEndian.Uint32(hdr[end:]); got != want {
		return nil, fmt.Errorf("%w: header checksum %08x, stored %08x", snapshot.ErrCorrupt, got, want)
	}
	sects := make([]Section, n)
	prevEnd := int64(PageSize)
	seen := make(map[uint32]bool, n)
	for i := range sects {
		e := hdr[headerFixed+i*sectionEntrySize:]
		s := Section{
			Tag: binary.LittleEndian.Uint32(e),
			Off: int64(binary.LittleEndian.Uint64(e[8:])),
			Len: int64(binary.LittleEndian.Uint64(e[16:])),
			CRC: binary.LittleEndian.Uint32(e[24:]),
		}
		switch {
		case s.Tag == 0 || seen[s.Tag]:
			return nil, fmt.Errorf("%w: section %d: tag %d zero or duplicate", snapshot.ErrCorrupt, i, s.Tag)
		case s.Off%PageSize != 0:
			return nil, fmt.Errorf("%w: section %d at offset %d not page-aligned", snapshot.ErrCorrupt, i, s.Off)
		case s.Off < prevEnd:
			return nil, fmt.Errorf("%w: section %d at offset %d overlaps previous end %d", snapshot.ErrCorrupt, i, s.Off, prevEnd)
		case s.Len < 0 || s.Len > size-s.Off:
			return nil, fmt.Errorf("%w: section %d declares %d bytes at offset %d in a %d-byte file", snapshot.ErrCorrupt, i, s.Len, s.Off, size)
		}
		seen[s.Tag] = true
		prevEnd = s.Off + s.Len
		sects[i] = s
	}
	return sects, nil
}

// Sections returns a copy of the section directory, in file order.
func (f *File) Sections() []Section {
	out := make([]Section, len(f.sects))
	copy(out, f.sects)
	return out
}

// Size returns the file size in bytes.
func (f *File) Size() int64 { return f.size }

// Lazy is a handle on one section, deferring byte access and checksum
// verification until first use.
type Lazy struct {
	f *File
	i int
}

// Section returns the handle for tag, or false if the file has no
// such section (absent candidate structures are simply not written).
func (f *File) Section(tag uint32) (*Lazy, bool) {
	for i, s := range f.sects {
		if s.Tag == tag {
			return &Lazy{f: f, i: i}, true
		}
	}
	return nil, false
}

// Meta returns the directory entry of the section.
func (l *Lazy) Meta() Section { return l.f.sects[l.i] }

// Raw returns the section's bytes without checksum verification: the
// open path uses it to lay slice headers over the mapping before any
// page is faulted in. Callers must Verify before trusting a byte of
// the content.
func (l *Lazy) Raw() ([]byte, error) {
	ls := &l.f.lazy[l.i]
	ls.load.Do(func() {
		s := l.f.sects[l.i]
		ls.data, ls.loadErr = l.f.m.slice(s.Off, s.Len)
	})
	return ls.data, ls.loadErr
}

// Verify checks the section's CRC-32C, once; later calls return the
// cached verdict. This is the "first touch" of the lazy contract —
// under mmap it faults in the section's pages sequentially.
func (l *Lazy) Verify() error {
	ls := &l.f.lazy[l.i]
	ls.verify.Do(func() {
		data, err := l.Raw()
		if err != nil {
			ls.verifyErr = err
			return
		}
		s := l.f.sects[l.i]
		if got := snapshot.Checksum(data); got != s.CRC {
			ls.verifyErr = fmt.Errorf("%w: section %d checksum %08x, stored %08x",
				snapshot.ErrCorrupt, s.Tag, got, s.CRC)
		}
	})
	return ls.verifyErr
}

// Bytes returns the section's bytes after checksum verification.
func (l *Lazy) Bytes() ([]byte, error) {
	if err := l.Verify(); err != nil {
		return nil, err
	}
	return l.Raw()
}

// Close releases the mapping or file handle. Not safe to call while
// queries may still read section slices.
func (f *File) Close() error { return f.m.close() }

// MappedBytes returns the bytes addressable through the mapping (the
// file size under mmap).
func (f *File) MappedBytes() int64 { return f.m.mapped() }

// ResidentBytes estimates how many mapped bytes are materialized in
// RAM: the OS's page-residency answer where available (mincore),
// otherwise the bytes of every section touched so far.
func (f *File) ResidentBytes() int64 {
	if r := f.m.resident(); r >= 0 {
		return r
	}
	var n int64
	for i := range f.lazy {
		ls := &f.lazy[i]
		if ls.data != nil {
			n += int64(len(ls.data))
		}
	}
	return n + PageSize // header page
}

// mapping abstracts how section bytes reach memory: an mmap region
// (zero-copy subslices, lazy page-in) or a pread fallback (each
// section heap-read once, on first touch).
type mapping interface {
	slice(off, n int64) ([]byte, error)
	mapped() int64
	resident() int64 // -1 when the platform cannot answer
	close() error
}

// byteMapping serves an in-memory image (OpenBytes).
type byteMapping []byte

func (b byteMapping) slice(off, n int64) ([]byte, error) {
	if off < 0 || n < 0 || off+n > int64(len(b)) {
		return nil, fmt.Errorf("%w: slice [%d,%d) outside %d-byte image", snapshot.ErrCorrupt, off, off+n, len(b))
	}
	return b[off : off+n : off+n], nil
}

func (b byteMapping) mapped() int64   { return int64(len(b)) }
func (b byteMapping) resident() int64 { return int64(len(b)) }
func (b byteMapping) close() error    { return nil }
