//go:build unix && !linux && !apss_nommap

package diskidx

// residentOf returns -1 on unix platforms without a portable mincore:
// File.ResidentBytes falls back to touched-section accounting.
func residentOf(data []byte) int64 { return -1 }
