package dataset

import (
	"math"
	"testing"

	"bayeslsh/internal/vector"
)

func TestSpecValidate(t *testing.T) {
	good := Spec{Name: "x", Kind: Text, N: 10, Dim: 100, AvgLen: 5, ZipfS: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	bad := []Spec{
		{Name: "n", N: 0, Dim: 10, AvgLen: 5},
		{Name: "l", N: 10, Dim: 10, AvgLen: 0},
		{Name: "d", Kind: Text, N: 10, Dim: 0, AvgLen: 5},
		{Name: "cf", Kind: Text, N: 10, Dim: 10, AvgLen: 5, ClusterFrac: 1.5},
		{Name: "mr", Kind: Text, N: 10, Dim: 10, AvgLen: 5, MutationRate: -0.1},
		{Name: "cs", Kind: Text, N: 10, Dim: 10, AvgLen: 5, ClusterFrac: 0.5, ClusterSize: 1},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %q accepted, want error", s.Name)
		}
	}
	if _, err := Generate(Spec{Name: "k", Kind: Kind(99), N: 10, Dim: 10, AvgLen: 5}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestGenerateTextShape(t *testing.T) {
	spec := Spec{
		Name: "t", Kind: Text, N: 500, Dim: 5000, AvgLen: 40, ZipfS: 1.05,
		ClusterFrac: 0.3, ClusterSize: 4, MutationRate: 0.2, Seed: 1,
	}
	c, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Vectors != 500 {
		t.Errorf("got %d vectors", s.Vectors)
	}
	if s.AvgLen < 20 || s.AvgLen > 60 {
		t.Errorf("AvgLen = %v, want near 40", s.AvgLen)
	}
}

func TestGenerateTextDeterministic(t *testing.T) {
	// ClusterFrac > 0 exercises the template mutation path, which once
	// leaked Go's randomized map iteration order into the corpus.
	spec := Spec{Name: "t", Kind: Text, N: 100, Dim: 1000, AvgLen: 20, ZipfS: 1,
		ClusterFrac: 0.4, ClusterSize: 4, MutationRate: 0.3, Seed: 7}
	a, _ := Generate(spec)
	b, _ := Generate(spec)
	for i := range a.Vecs {
		if !vector.Equal(a.Vecs[i], b.Vecs[i]) {
			t.Fatalf("vector %d differs across identical generations", i)
		}
	}
	spec.Seed = 8
	cOther, _ := Generate(spec)
	identical := 0
	for i := range a.Vecs {
		if vector.Equal(a.Vecs[i], cOther.Vecs[i]) {
			identical++
		}
	}
	if identical == len(a.Vecs) {
		t.Error("different seeds produced identical corpus")
	}
}

func TestPlantedClustersHaveHighSimilarity(t *testing.T) {
	spec := Spec{
		Name: "t", Kind: Text, N: 400, Dim: 5000, AvgLen: 60, ZipfS: 1.05,
		ClusterFrac: 0.5, ClusterSize: 4, MutationRate: 0.2, Seed: 3,
	}
	c, _ := Generate(spec)
	w := c.TfIdf().Normalize()
	// The first ClusterSize vectors belong to the first planted
	// cluster; their pairwise cosine should be clearly higher than
	// that of random pairs.
	intra := vector.Cosine(w.Vecs[0], w.Vecs[1])
	inter := vector.Cosine(w.Vecs[0], w.Vecs[350])
	if intra < 0.5 {
		t.Errorf("intra-cluster cosine = %v, want >= 0.5", intra)
	}
	if inter > intra/2 {
		t.Errorf("inter-cluster cosine %v not clearly below intra %v", inter, intra)
	}
}

func TestGenerateGraphShape(t *testing.T) {
	spec := Spec{
		Name: "g", Kind: Graph, N: 1000, AvgLen: 20,
		ClusterFrac: 0.25, ClusterSize: 5, MutationRate: 0.2, Seed: 4,
	}
	c, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Dim != spec.N {
		t.Errorf("graph Dim = %d, want N = %d", c.Dim, spec.N)
	}
	s := c.Stats()
	if s.AvgLen < 10 || s.AvgLen > 60 {
		t.Errorf("graph AvgLen = %v, want near 20-40", s.AvgLen)
	}
}

func TestGraphHasHeavyTailedDegrees(t *testing.T) {
	spec := Spec{Name: "g", Kind: Graph, N: 2000, AvgLen: 20, Seed: 5}
	c, _ := Generate(spec)
	s := c.Stats()
	// Preferential attachment should give length variance well above a
	// Poisson-like corpus (variance ≈ mean). The paper's explanation of
	// AllPairs' advantage on graphs hinges on this dispersion.
	if s.LenVar < 3*s.AvgLen {
		t.Errorf("LenVar = %v, AvgLen = %v: degree distribution not heavy-tailed",
			s.LenVar, s.AvgLen)
	}
}

func TestGraphCommunitiesHaveHighSimilarity(t *testing.T) {
	spec := Spec{
		Name: "g", Kind: Graph, N: 1000, AvgLen: 20,
		ClusterFrac: 0.5, ClusterSize: 5, MutationRate: 0.15, Seed: 6,
	}
	c, _ := Generate(spec)
	b := c.Binarize()
	// Community members occupy the tail of the id range; the last two
	// nodes belong to the same (final) community.
	n := len(b.Vecs)
	j := vector.Jaccard(b.Vecs[n-1], b.Vecs[n-2])
	if j < 0.3 {
		t.Errorf("intra-community Jaccard = %v, want >= 0.3", j)
	}
}

func TestStandardSpecsGenerate(t *testing.T) {
	if testing.Short() {
		t.Skip("generates all six standard corpora")
	}
	for _, spec := range Standard() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			c, err := Generate(spec)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Validate(); err != nil {
				t.Fatal(err)
			}
			if len(c.Vecs) != spec.N {
				t.Errorf("got %d vectors, want %d", len(c.Vecs), spec.N)
			}
		})
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("RCV1-sim")
	if err != nil || s.Name != "RCV1-sim" {
		t.Errorf("ByName: %v, %v", s, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestKindString(t *testing.T) {
	if Text.String() != "text" || Graph.String() != "graph" {
		t.Error("Kind.String broken")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind should still print")
	}
}

func TestTextLengthDispersionReasonable(t *testing.T) {
	spec := Spec{Name: "t", Kind: Text, N: 800, Dim: 8000, AvgLen: 100, ZipfS: 1.0, Seed: 9}
	c, _ := Generate(spec)
	s := c.Stats()
	cv := math.Sqrt(s.LenVar) / s.AvgLen
	// Text corpora should have mild dispersion (CV well below 1),
	// unlike the graph corpora.
	if cv > 0.8 {
		t.Errorf("text length CV = %v, want < 0.8", cv)
	}
}
