package dataset

import (
	"fmt"
	"sort"

	"bayeslsh/internal/rng"
	"bayeslsh/internal/vector"
)

// Kind selects a generator family.
type Kind int

const (
	// Text generates Zipf bag-of-words documents with planted
	// near-duplicate clusters.
	Text Kind = iota
	// Graph generates adjacency rows of a preferential-attachment
	// graph with planted communities.
	Graph
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Text:
		return "text"
	case Graph:
		return "graph"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Spec describes a synthetic corpus.
type Spec struct {
	Name string
	Kind Kind

	// N is the number of vectors (documents or graph nodes).
	N int
	// Dim is the vocabulary size (Text). For Graph corpora the
	// dimension equals N (feature j = neighbor node j).
	Dim int
	// AvgLen is the target average number of non-zeros per vector.
	AvgLen int

	// ZipfS is the Zipf exponent for term draws (Text only).
	ZipfS float64

	// ClusterFrac is the fraction of vectors placed in planted
	// high-similarity clusters.
	ClusterFrac float64
	// ClusterSize is the number of vectors per planted cluster.
	ClusterSize int
	// MutationRate is the fraction of entries resampled when deriving
	// a cluster member from its template; lower means more similar.
	MutationRate float64

	// Seed makes the corpus deterministic.
	Seed uint64
}

// Validate reports an invalid specification.
func (s Spec) Validate() error {
	if s.N <= 0 {
		return fmt.Errorf("dataset %q: N must be positive, got %d", s.Name, s.N)
	}
	if s.AvgLen <= 0 {
		return fmt.Errorf("dataset %q: AvgLen must be positive, got %d", s.Name, s.AvgLen)
	}
	if s.Kind == Text && s.Dim <= 0 {
		return fmt.Errorf("dataset %q: text corpus needs Dim > 0", s.Name)
	}
	if s.ClusterFrac < 0 || s.ClusterFrac > 1 {
		return fmt.Errorf("dataset %q: ClusterFrac %v outside [0,1]", s.Name, s.ClusterFrac)
	}
	if s.MutationRate < 0 || s.MutationRate > 1 {
		return fmt.Errorf("dataset %q: MutationRate %v outside [0,1]", s.Name, s.MutationRate)
	}
	if s.ClusterFrac > 0 && s.ClusterSize < 2 {
		return fmt.Errorf("dataset %q: ClusterSize must be >= 2 when clusters are planted", s.Name)
	}
	return nil
}

// Generate builds the corpus. The result has raw term-frequency /
// adjacency weights; callers typically apply TfIdf().Normalize() for
// weighted-cosine experiments or Binarize() for set experiments,
// mirroring the paper's preprocessing.
func Generate(spec Spec) (*vector.Collection, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	switch spec.Kind {
	case Text:
		return generateText(spec), nil
	case Graph:
		return generateGraph(spec), nil
	default:
		return nil, fmt.Errorf("dataset %q: unknown kind %v", spec.Name, spec.Kind)
	}
}

// generateText draws each document as AvgLen-ish Zipf terms with
// term-frequency weights; planted clusters are mutated copies of a
// template document.
func generateText(spec Spec) *vector.Collection {
	src := rng.New(spec.Seed)
	z := rng.NewZipf(src, spec.ZipfS, spec.Dim)

	drawDoc := func(length int) map[uint32]float64 {
		m := make(map[uint32]float64, length)
		for i := 0; i < length; i++ {
			m[uint32(z.Next())]++
		}
		return m
	}
	// Document lengths vary geometrically around the mean so the
	// corpus has realistic length dispersion.
	drawLen := func() int {
		l := int(float64(spec.AvgLen) * (0.5 + src.Float64()))
		if l < 1 {
			l = 1
		}
		return l
	}

	c := &vector.Collection{Dim: spec.Dim, Vecs: make([]vector.Vector, 0, spec.N)}

	clustered := int(spec.ClusterFrac * float64(spec.N))
	numClusters := 0
	if spec.ClusterSize >= 2 {
		numClusters = clustered / spec.ClusterSize
	}
	for ci := 0; ci < numClusters; ci++ {
		template := drawDoc(drawLen())
		// Per-cluster mutation spreads intra-cluster similarities
		// across the whole threshold range the paper sweeps
		// (roughly 0.5 to 0.95 after Tf-Idf), instead of piling all
		// planted pairs at a single similarity level.
		clusterMut := (0.1 + 1.9*src.Float64()) * spec.MutationRate
		for member := 0; member < spec.ClusterSize && len(c.Vecs) < spec.N; member++ {
			doc := make(map[uint32]float64, len(template))
			for term, tf := range template {
				doc[term] = tf
			}
			// Resample a clusterMut fraction of the template's terms.
			mutations := int(clusterMut * float64(len(template)))
			if member == 0 {
				mutations = 0 // keep the template itself pristine
			}
			// Victims are drawn from a sorted term list with the seeded
			// source; ranging over the map here would leak Go's
			// per-process map iteration order into the corpus and break
			// the package's determinism guarantee.
			terms := make([]uint32, 0, len(doc))
			for term := range doc {
				terms = append(terms, term)
			}
			sort.Slice(terms, func(a, b int) bool { return terms[a] < terms[b] })
			for i := 0; i < mutations && len(terms) > 0; i++ {
				// remove a seeded-random existing term...
				j := src.Intn(len(terms))
				delete(doc, terms[j])
				terms[j] = terms[len(terms)-1]
				terms = terms[:len(terms)-1]
				// ...and add a fresh one
				fresh := uint32(z.Next())
				if _, ok := doc[fresh]; !ok {
					terms = append(terms, fresh)
				}
				doc[fresh]++
			}
			c.Vecs = append(c.Vecs, vector.FromMap(doc))
		}
	}
	for len(c.Vecs) < spec.N {
		c.Vecs = append(c.Vecs, vector.FromMap(drawDoc(drawLen())))
	}
	return c
}

// generateGraph builds a preferential-attachment multigraph and
// overlays planted communities whose members share a common pool of
// neighbors. Node i's vector is its weighted adjacency row.
func generateGraph(spec Spec) *vector.Collection {
	src := rng.New(spec.Seed)
	n := spec.N
	adj := make([]map[uint32]float64, n)
	for i := range adj {
		adj[i] = make(map[uint32]float64)
	}

	// Preferential attachment: maintain a repeated-endpoints slice so
	// sampling an element is sampling proportionally to degree.
	endpoints := make([]uint32, 0, n*spec.AvgLen)
	addEdge := func(u, v uint32) {
		if u == v {
			return
		}
		adj[u][v]++
		adj[v][u]++
		endpoints = append(endpoints, u, v)
	}
	// Seed clique.
	seedNodes := 4
	if seedNodes > n {
		seedNodes = n
	}
	for u := 0; u < seedNodes; u++ {
		for v := u + 1; v < seedNodes; v++ {
			addEdge(uint32(u), uint32(v))
		}
	}
	// Each subsequent node attaches AvgLen/2 edges preferentially.
	// Halved because each undirected edge contributes to two rows.
	m := spec.AvgLen / 2
	if m < 1 {
		m = 1
	}
	for u := seedNodes; u < n; u++ {
		for e := 0; e < m; e++ {
			var v uint32
			if len(endpoints) == 0 {
				v = uint32(src.Intn(n))
			} else {
				v = endpoints[src.Intn(len(endpoints))]
			}
			addEdge(uint32(u), v)
		}
	}

	// Planted communities: members attach to a shared neighbor pool,
	// giving pairs of rows with high cosine/Jaccard similarity. The
	// members are the youngest nodes (the tail of the id range), whose
	// small preferential-attachment degree does not swamp the shared
	// pool the way the old hub nodes' degree would.
	clustered := int(spec.ClusterFrac * float64(n))
	numClusters := 0
	if spec.ClusterSize >= 2 {
		numClusters = clustered / spec.ClusterSize
	}
	// The pool is large relative to the preferential-attachment degree
	// so that community members' similarity is dominated by the shared
	// pool rather than by their PA edges.
	poolSize := spec.AvgLen * 4
	if poolSize < 8 {
		poolSize = 8
	}
	next := n - numClusters*spec.ClusterSize
	if next < 0 {
		next = 0
	}
	for ci := 0; ci < numClusters; ci++ {
		pool := make([]uint32, poolSize)
		for i := range pool {
			pool[i] = uint32(src.Intn(n))
		}
		// Per-community mutation spreads intra-community similarities
		// across the threshold range (see generateText).
		clusterMut := (0.1 + 1.9*src.Float64()) * spec.MutationRate
		for member := 0; member < spec.ClusterSize && next < n; member, next = member+1, next+1 {
			u := uint32(next)
			// Keep (1−clusterMut) of the pool as this member's
			// neighborhood, plus a couple of private neighbors.
			keep := int((1 - clusterMut) * float64(poolSize))
			perm := src.Perm(poolSize)
			for _, pi := range perm[:keep] {
				if pool[pi] != u {
					adj[u][pool[pi]]++
				}
			}
			private := poolSize - keep
			for i := 0; i < private; i++ {
				v := uint32(src.Intn(n))
				if v != u {
					adj[u][v]++
				}
			}
		}
	}

	c := &vector.Collection{Dim: n, Vecs: make([]vector.Vector, n)}
	for i := range adj {
		c.Vecs[i] = vector.FromMap(adj[i])
	}
	return c
}

// Standard returns the six synthetic analogues of the paper's Table 1
// datasets, scaled so that the full experiment suite completes in
// seconds. Relative shape (text vs graph, long vs short vectors, low
// vs high length variance) follows the paper.
func Standard() []Spec {
	return []Spec{
		{
			Name: "RCV1-sim", Kind: Text,
			N: 4000, Dim: 12000, AvgLen: 76, ZipfS: 1.05,
			ClusterFrac: 0.3, ClusterSize: 4, MutationRate: 0.25, Seed: 101,
		},
		{
			Name: "WikiWords100K-sim", Kind: Text,
			N: 1500, Dim: 30000, AvgLen: 500, ZipfS: 1.02,
			ClusterFrac: 0.3, ClusterSize: 4, MutationRate: 0.25, Seed: 102,
		},
		{
			Name: "WikiWords500K-sim", Kind: Text,
			N: 3000, Dim: 30000, AvgLen: 250, ZipfS: 1.02,
			ClusterFrac: 0.3, ClusterSize: 4, MutationRate: 0.25, Seed: 103,
		},
		{
			Name: "WikiLinks-sim", Kind: Graph,
			N: 8000, AvgLen: 24,
			ClusterFrac: 0.25, ClusterSize: 5, MutationRate: 0.2, Seed: 104,
		},
		{
			Name: "Orkut-sim", Kind: Graph,
			N: 8000, AvgLen: 76,
			ClusterFrac: 0.25, ClusterSize: 5, MutationRate: 0.2, Seed: 105,
		},
		{
			Name: "Twitter-sim", Kind: Text,
			N: 1000, Dim: 20000, AvgLen: 1000, ZipfS: 1.0,
			ClusterFrac: 0.3, ClusterSize: 4, MutationRate: 0.25, Seed: 106,
		},
	}
}

// ByName returns the standard spec with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range Standard() {
		if s.Name == name {
			return s, nil
		}
	}
	names := make([]string, 0, 6)
	for _, s := range Standard() {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	return Spec{}, fmt.Errorf("dataset: unknown name %q (have %v)", name, names)
}
