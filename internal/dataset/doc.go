// Package dataset synthesizes corpora that stand in for the six real
// datasets of the BayesLSH paper (RCV1, WikiWords100K, WikiWords500K,
// WikiLinks, Orkut, Twitter), which are not redistributable and are
// far larger than this environment can process.
//
// # Generator families
//
// Two generator families are provided, matching the two families in
// the paper:
//
//   - Text corpora: documents draw Zipf-distributed terms; a fraction
//     of documents belong to planted near-duplicate clusters obtained
//     by mutating a template, which produces the high-similarity tail
//     that all-pairs similarity search is looking for.
//   - Graph corpora: a preferential-attachment graph overlaid with
//     planted communities. Rows of the adjacency matrix become
//     vectors. Preferential attachment yields the heavy-tailed,
//     high-variance degree distribution that makes AllPairs fast on
//     the paper's graph datasets; communities yield node pairs with
//     strongly overlapping neighborhoods.
//
// # Determinism
//
// Each generated corpus is deterministic in its Spec (including the
// seed) — generation never depends on Go map iteration order or
// scheduling — so every experiment and test in this repository is
// reproducible. Standard lists the built-in scaled-down analogues
// (Table 1's datasets); ByName and Generate build one.
package dataset
