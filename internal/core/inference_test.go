package core

import (
	"math"
	"testing"
	"testing/quick"

	"bayeslsh/internal/stats"
)

func mustJaccard(t *testing.T, prior stats.Beta, th float64) *JaccardVerifier {
	t.Helper()
	sigs := [][]uint32{make([]uint32, 512), make([]uint32, 512)}
	v, err := NewJaccard(sigs, prior, Params{
		Threshold: th, Epsilon: 0.03, Delta: 0.05, Gamma: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func mustCosine(t *testing.T, th float64) *CosineVerifier {
	t.Helper()
	sigs := [][]uint64{make([]uint64, 32), make([]uint64, 32)}
	v, err := NewCosine(sigs, 2048, Params{
		Threshold: th, Epsilon: 0.03, Delta: 0.05, Gamma: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// Property: Pr[S >= t | M(m, n)] is a probability, monotone
// non-decreasing in m for every instantiation.
func TestProbAboveThresholdProperties(t *testing.T) {
	jv := mustJaccard(t, stats.Beta{Alpha: 2, Beta: 5}, 0.6)
	cv := mustCosine(t, 0.6)
	f := func(nRaw, mRaw uint8) bool {
		n := int(nRaw)%480 + 32
		m := int(mRaw) % (n + 1)
		pj := jv.probAboveThreshold(m, n)
		pc := cv.probAboveThreshold(m, n)
		if pj < 0 || pj > 1+1e-9 || math.IsNaN(pj) {
			return false
		}
		if pc < 0 || pc > 1+1e-9 || math.IsNaN(pc) {
			return false
		}
		if m < n {
			if jv.probAboveThreshold(m+1, n) < pj-1e-9 {
				return false
			}
			if cv.probAboveThreshold(m+1, n) < pc-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: estimates stay in the similarity range of their measure.
func TestEstimateRangeProperties(t *testing.T) {
	jv := mustJaccard(t, stats.Beta{Alpha: 1, Beta: 1}, 0.5)
	cv := mustCosine(t, 0.5)
	f := func(nRaw, mRaw uint8) bool {
		n := int(nRaw)%480 + 32
		m := int(mRaw) % (n + 1)
		ej := jv.Estimate(m, n)
		ec := cv.Estimate(m, n)
		return ej >= 0 && ej <= 1 && ec >= 0 && ec <= 1 &&
			!math.IsNaN(ej) && !math.IsNaN(ec)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the estimate increases with the number of agreements.
func TestEstimateMonotoneInMatches(t *testing.T) {
	jv := mustJaccard(t, stats.Beta{Alpha: 1, Beta: 1}, 0.5)
	cv := mustCosine(t, 0.5)
	n := 256
	for m := 0; m < n; m++ {
		if jv.Estimate(m+1, n) < jv.Estimate(m, n)-1e-12 {
			t.Fatalf("jaccard estimate not monotone at m=%d", m)
		}
		if cv.Estimate(m+1, n) < cv.Estimate(m, n)-1e-12 {
			t.Fatalf("cosine estimate not monotone at m=%d", m)
		}
	}
}

// More hashes with the same agreement rate tighten concentration: if
// the estimate is concentrated at (m, n), it stays concentrated at
// (2m, 2n).
func TestConcentrationImprovesWithData(t *testing.T) {
	jv := mustJaccard(t, stats.Beta{Alpha: 1, Beta: 1}, 0.5)
	for _, frac := range []float64{0.6, 0.75, 0.9} {
		for _, n := range []int{64, 128, 256} {
			m := int(frac * float64(n))
			if jv.concentrated(m, n) && !jv.concentrated(2*m, 2*n) {
				t.Errorf("concentration lost when doubling data at m/n=%v, n=%d", frac, n)
			}
		}
	}
}

// The minMatches table must be non-decreasing in n for a fixed
// threshold: more hashes seen demands proportionally more agreements.
func TestMinMatchesTableMonotoneAcrossRounds(t *testing.T) {
	for _, th := range []float64{0.3, 0.5, 0.7, 0.9} {
		jv := mustJaccard(t, stats.Beta{Alpha: 1, Beta: 1}, th)
		for i := 1; i < len(jv.k.minM); i++ {
			if jv.k.minM[i] < jv.k.minM[i-1] {
				t.Errorf("t=%v: minMatches decreased from round %d (%d) to %d (%d)",
					th, i-1, jv.k.minM[i-1], i, jv.k.minM[i])
			}
		}
		cv := mustCosine(t, th)
		for i := 1; i < len(cv.k.minM); i++ {
			if cv.k.minM[i] < cv.k.minM[i-1] {
				t.Errorf("cosine t=%v: minMatches decreased at round %d", th, i)
			}
		}
	}
}

// Higher thresholds demand more matches at every round.
func TestMinMatchesIncreasesWithThreshold(t *testing.T) {
	lo := mustCosine(t, 0.5)
	hi := mustCosine(t, 0.9)
	for i := range lo.k.minM {
		if hi.k.minM[i] < lo.k.minM[i] {
			t.Errorf("round %d: t=0.9 requires %d matches but t=0.5 requires %d",
				i, hi.k.minM[i], lo.k.minM[i])
		}
	}
}

func mustOneBit(t *testing.T, th float64) *OneBitJaccardVerifier {
	t.Helper()
	sigs := [][]uint64{make([]uint64, 32), make([]uint64, 32)}
	v, err := NewOneBitJaccard(sigs, 2048, Params{
		Threshold: th, Epsilon: 0.03, Delta: 0.05, Gamma: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// The 1-bit instantiation obeys the same inference invariants as the
// Jaccard and cosine ones.
func TestOneBitInferenceProperties(t *testing.T) {
	v := mustOneBit(t, 0.5)
	f := func(nRaw, mRaw uint8) bool {
		n := int(nRaw)%480 + 32
		m := int(mRaw) % (n + 1)
		p := v.probAboveThreshold(m, n)
		e := v.Estimate(m, n)
		if p < 0 || p > 1+1e-9 || math.IsNaN(p) {
			return false
		}
		if e < 0 || e > 1 || math.IsNaN(e) {
			return false
		}
		if m < n && v.probAboveThreshold(m+1, n) < p-1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	// All hashes agreeing → J estimate 1; half agreeing → J estimate 0.
	if got := v.Estimate(128, 128); got != 1 {
		t.Errorf("Estimate(n,n) = %v", got)
	}
	if got := v.Estimate(64, 128); got != 0 {
		t.Errorf("Estimate(n/2,n) = %v", got)
	}
	for i := 1; i < len(v.k.minM); i++ {
		if v.k.minM[i] < v.k.minM[i-1] {
			t.Errorf("1-bit minMatches decreased at round %d", i)
		}
	}
}

// Known anchor from §3.2 of the paper: with a threshold of 0.8, a pair
// with only 10 matches out of the first 100 hashes is obviously
// prunable.
func TestPaperPruningAnchor(t *testing.T) {
	jv := mustJaccard(t, stats.Beta{Alpha: 1, Beta: 1}, 0.8)
	if p := jv.probAboveThreshold(10, 100); p > 1e-6 {
		t.Errorf("Pr[S>=0.8 | 10 of 100] = %v, expected ~0", p)
	}
	// And a pair matching 90 of 100 is clearly viable.
	if p := jv.probAboveThreshold(90, 100); p < 0.9 {
		t.Errorf("Pr[S>=0.8 | 90 of 100] = %v, expected high", p)
	}
}
