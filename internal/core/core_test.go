package core

import (
	"testing"

	"bayeslsh/internal/pair"
	"bayeslsh/internal/stats"
)

func TestParamsDefaults(t *testing.T) {
	p, err := Params{Threshold: 0.7, Epsilon: 0.03, Delta: 0.05, Gamma: 0.05}.withDefaults(2048)
	if err != nil {
		t.Fatal(err)
	}
	if p.K != 32 || p.MaxHashes != 2048 {
		t.Errorf("defaults: %+v", p)
	}
}

func TestParamsRoundsMaxHashesDown(t *testing.T) {
	p, err := Params{Threshold: 0.7, Epsilon: 0.03, K: 32, MaxHashes: 100}.withDefaults(2048)
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxHashes != 96 {
		t.Errorf("MaxHashes = %d, want 96", p.MaxHashes)
	}
}

func TestParamsValidation(t *testing.T) {
	bad := []Params{
		{Threshold: 0, Epsilon: 0.03},
		{Threshold: 1.5, Epsilon: 0.03},
		{Threshold: 0.5, Epsilon: 0},
		{Threshold: 0.5, Epsilon: 1},
		{Threshold: 0.5, Epsilon: 0.03, Delta: -0.1},
		{Threshold: 0.5, Epsilon: 0.03, Gamma: 1},
		{Threshold: 0.5, Epsilon: 0.03, K: -1},
		{Threshold: 0.5, Epsilon: 0.03, MaxHashes: 4096},
		{Threshold: 0.5, Epsilon: 0.03, K: 64, MaxHashes: 32},
	}
	for i, p := range bad {
		if _, err := p.withDefaults(2048); err == nil {
			t.Errorf("case %d: params %+v accepted", i, p)
		}
	}
}

func TestRounds(t *testing.T) {
	p := Params{K: 32, MaxHashes: 128}
	ns := rounds(p)
	want := []int{32, 64, 96, 128}
	if len(ns) != len(want) {
		t.Fatalf("rounds = %v", ns)
	}
	for i := range want {
		if ns[i] != want[i] {
			t.Fatalf("rounds = %v, want %v", ns, want)
		}
	}
}

func TestMinMatchesTableAgainstLinearScan(t *testing.T) {
	// The binary search must agree with a linear scan for a real
	// survival predicate.
	prior := stats.Beta{Alpha: 1, Beta: 1}
	threshold, eps := 0.7, 0.03
	survive := func(m, n int) bool {
		post := stats.Beta{Alpha: float64(m) + prior.Alpha, Beta: float64(n-m) + prior.Beta}
		return post.SF(threshold) >= eps
	}
	ns := []int{32, 64, 96, 128}
	table := minMatchesTable(ns, survive)
	for i, n := range ns {
		linear := n + 1
		for m := 0; m <= n; m++ {
			if survive(m, n) {
				linear = m
				break
			}
		}
		if table[i] != linear {
			t.Errorf("n=%d: binary %d, linear %d", n, table[i], linear)
		}
	}
}

func TestMinMatchesTableAllFail(t *testing.T) {
	table := minMatchesTable([]int{8}, func(m, n int) bool { return false })
	if table[0] != 9 {
		t.Errorf("all-fail sentinel = %d, want n+1", table[0])
	}
	table = minMatchesTable([]int{8}, func(m, n int) bool { return true })
	if table[0] != 0 {
		t.Errorf("all-pass = %d, want 0", table[0])
	}
}

func TestConcCache(t *testing.T) {
	c := newConcCache([]int{32, 64}, 32)
	if _, ok := c.lookup(0, 10); ok {
		t.Error("empty cache reported a hit")
	}
	c.store(0, 10, true)
	if v, ok := c.lookup(0, 10); !ok || !v {
		t.Error("stored true not returned")
	}
	c.store(1, 64, false)
	if v, ok := c.lookup(1, 64); !ok || v {
		t.Error("stored false not returned")
	}
}

func TestLiteRounds(t *testing.T) {
	if got := liteRounds(128, 32, 10); got != 4 {
		t.Errorf("liteRounds(128,32) = %d", got)
	}
	if got := liteRounds(100, 32, 10); got != 4 {
		t.Errorf("liteRounds rounds up: %d", got)
	}
	if got := liteRounds(0, 32, 10); got != 10 {
		t.Errorf("liteRounds(0) = %d, want all rounds", got)
	}
	if got := liteRounds(9999, 32, 10); got != 10 {
		t.Errorf("liteRounds clamps: %d", got)
	}
}

func TestVerifierConstructorsReject(t *testing.T) {
	okParams := Params{Threshold: 0.7, Epsilon: 0.03, Delta: 0.05, Gamma: 0.05}
	if _, err := NewJaccard(nil, stats.Beta{Alpha: 1, Beta: 1}, okParams); err == nil {
		t.Error("NewJaccard accepted empty signatures")
	}
	if _, err := NewJaccard([][]uint32{make([]uint32, 64)}, stats.Beta{}, okParams); err == nil {
		t.Error("NewJaccard accepted invalid prior")
	}
	short := [][]uint32{make([]uint32, 64), make([]uint32, 16)}
	if _, err := NewJaccard(short, stats.Beta{Alpha: 1, Beta: 1}, okParams); err == nil {
		t.Error("NewJaccard accepted a short signature")
	}
	if _, err := NewCosine(nil, 256, okParams); err == nil {
		t.Error("NewCosine accepted empty signatures")
	}
	if _, err := NewCosine([][]uint64{make([]uint64, 1)}, 256, okParams); err == nil {
		t.Error("NewCosine accepted a short signature")
	}
}

func TestVerifyEmptyCandidates(t *testing.T) {
	sigs := [][]uint32{make([]uint32, 64), make([]uint32, 64)}
	v, err := NewJaccard(sigs, stats.Beta{Alpha: 1, Beta: 1},
		Params{Threshold: 0.7, Epsilon: 0.03, Delta: 0.05, Gamma: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	out, st := v.Verify(nil)
	if len(out) != 0 || st.Candidates != 0 || st.Pruned != 0 {
		t.Errorf("empty verify: %v %+v", out, st)
	}
}

func TestIdenticalSignaturesAcceptedWithHighEstimate(t *testing.T) {
	sig := make([]uint32, 128)
	for i := range sig {
		sig[i] = uint32(i * 7)
	}
	sigs := [][]uint32{sig, sig}
	v, err := NewJaccard(sigs, stats.Beta{Alpha: 1, Beta: 1},
		Params{Threshold: 0.7, Epsilon: 0.03, Delta: 0.05, Gamma: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	out, st := v.Verify([]pair.Pair{pair.Make(0, 1)})
	if len(out) != 1 {
		t.Fatalf("identical pair pruned: %+v", st)
	}
	if out[0].Sim < 0.9 {
		t.Errorf("estimate for identical signatures = %v", out[0].Sim)
	}
}

func TestDisjointSignaturesPrunedEarly(t *testing.T) {
	a := make([]uint32, 128)
	b := make([]uint32, 128)
	for i := range a {
		a[i] = uint32(2 * i)
		b[i] = uint32(2*i + 1)
	}
	v, err := NewJaccard([][]uint32{a, b}, stats.Beta{Alpha: 1, Beta: 1},
		Params{Threshold: 0.7, Epsilon: 0.03, Delta: 0.05, Gamma: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	out, st := v.Verify([]pair.Pair{pair.Make(0, 1)})
	if len(out) != 0 || st.Pruned != 1 {
		t.Errorf("disjoint pair not pruned: %v %+v", out, st)
	}
	if st.HashesCompared != 32 {
		t.Errorf("pruning took %d hashes, expected one round of 32", st.HashesCompared)
	}
}

func TestSurvivorsByRoundNonIncreasing(t *testing.T) {
	// Survivor counts are cumulative per pair and monotone by
	// construction; verify on a mixed batch.
	sigs := make([][]uint32, 0, 20)
	base := make([]uint32, 128)
	for i := range base {
		base[i] = uint32(i)
	}
	sigs = append(sigs, base)
	for j := 1; j < 20; j++ {
		s := make([]uint32, 128)
		copy(s, base)
		// Corrupt j*6 positions: decreasing similarity with base.
		for i := 0; i < j*6 && i < 128; i++ {
			s[i] = uint32(1000 + 128*j + i)
		}
		sigs = append(sigs, s)
	}
	v, err := NewJaccard(sigs, stats.Beta{Alpha: 1, Beta: 1},
		Params{Threshold: 0.6, Epsilon: 0.03, Delta: 0.05, Gamma: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	var cands []pair.Pair
	for j := 1; j < 20; j++ {
		cands = append(cands, pair.Make(0, int32(j)))
	}
	_, st := v.Verify(cands)
	for r := 1; r < len(st.SurvivorsByRound); r++ {
		if st.SurvivorsByRound[r] > st.SurvivorsByRound[r-1] {
			t.Errorf("survivors increased at round %d: %v", r, st.SurvivorsByRound)
		}
	}
	if st.Pruned+st.Accepted != st.Candidates {
		t.Errorf("accounting broken: %+v", st)
	}
}

func TestCacheReducesInference(t *testing.T) {
	// Verifying the same batch twice must hit the cache the second
	// time without changing the output.
	sig := make([]uint32, 128)
	for i := range sig {
		sig[i] = uint32(i)
	}
	near := make([]uint32, 128)
	copy(near, sig)
	for i := 0; i < 12; i++ {
		near[i*10] = 9999 + uint32(i)
	}
	v, err := NewJaccard([][]uint32{sig, near}, stats.Beta{Alpha: 1, Beta: 1},
		Params{Threshold: 0.6, Epsilon: 0.03, Delta: 0.05, Gamma: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	cands := []pair.Pair{pair.Make(0, 1)}
	out1, st1 := v.Verify(cands)
	out2, st2 := v.Verify(cands)
	if st1.InferenceCalls == 0 {
		t.Error("first run performed no inference")
	}
	if st2.InferenceCalls != 0 || st2.CacheHits == 0 {
		t.Errorf("second run did not use the cache: %+v", st2)
	}
	if len(out1) != len(out2) || (len(out1) > 0 && out1[0] != out2[0]) {
		t.Errorf("cache changed results: %v vs %v", out1, out2)
	}
}
