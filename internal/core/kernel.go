package core

import (
	"bayeslsh/internal/pair"
	"bayeslsh/internal/shard"
)

// kernel is the measure-independent engine of BayesLSH verification:
// the round loop of Algorithms 1 and 2 with the §4.3 optimizations
// (minMatches pruning table, concentration cache). The three verifier
// instantiations (Jaccard, Cosine, 1-bit Jaccard) differ only in how
// hashes are compared and how the posterior is evaluated, which they
// supply as the match/estimate/concentrated hooks.
//
// A kernel is safe for concurrent use: minM and ns are immutable after
// construction, the concentration cache uses atomic cells (decisions
// are pure functions of (m, n), so racing writers store the same
// value), and the hooks must be pure (they are — they read only
// immutable verifier state and signature prefixes guarded by
// params.Ensure).
type kernel struct {
	params Params
	ns     []int
	minM   []int
	conc   *concCache

	// match counts matching hashes of vectors a and b over hash
	// positions [from, to).
	match func(a, b int32, from, to int) int
	// estimate is the MAP similarity estimate after the event M(m, n).
	estimate func(m, n int) float64
	// concentrated reports whether the posterior after M(m, n) is
	// concentrated enough to accept (Equation 6).
	concentrated func(m, n int) bool
}

// newKernel builds the round schedule, pruning table and concentration
// cache for params. survive(m, n) must report Pr[S >= t | M(m, n)] >= ε
// and be monotone non-decreasing in m for fixed n.
func newKernel(params Params,
	survive func(m, n int) bool,
	match func(a, b int32, from, to int) int,
	estimate func(m, n int) float64,
	concentrated func(m, n int) bool,
) *kernel {
	k := &kernel{
		params:       params,
		ns:           rounds(params),
		match:        match,
		estimate:     estimate,
		concentrated: concentrated,
	}
	k.minM = minMatchesTable(k.ns, survive)
	k.conc = newConcCache(k.ns, params.K)
	return k
}

// verifyOne runs the full BayesLSH round loop (Algorithm 1) for one
// candidate pair, updating st and appending accepted pairs to out.
// stop (nil for "not cancelable") is polled between rounds; a stopped
// pair is abandoned mid-loop, which is safe because the caller
// discards all output once it observes the cancellation.
func (kr *kernel) verifyOne(c pair.Pair, stop *shard.Stopper, st *Stats, out *[]pair.Result) {
	k := kr.params.K
	m := 0
	pruned := false
	accepted := false
	for round, n := range kr.ns {
		if stop.Stopped() {
			return
		}
		if ensure := kr.params.Ensure; ensure != nil {
			ensure(c.A, n)
			ensure(c.B, n)
		}
		m += kr.match(c.A, c.B, n-k, n)
		st.HashesCompared += int64(k)
		if m < kr.minM[round] {
			pruned = true
			st.Pruned++
			// Rounds not reached count this pair as gone.
			break
		}
		st.SurvivorsByRound[round]++
		if cached, ok := kr.conc.lookup(round, m); ok {
			st.CacheHits++
			accepted = cached
		} else {
			st.InferenceCalls++
			cv := kr.concentrated(m, n)
			kr.conc.store(round, m, cv)
			accepted = cv
		}
		if accepted {
			*out = append(*out, pair.Result{A: c.A, B: c.B, Sim: kr.estimate(m, n)})
			// Later rounds still count an accepted pair as a survivor
			// (it reached the output set).
			for r := round + 1; r < len(kr.ns); r++ {
				st.SurvivorsByRound[r]++
			}
			break
		}
	}
	if !pruned && !accepted {
		// Ran out of hashes: accept with the current estimate.
		*out = append(*out, pair.Result{A: c.A, B: c.B, Sim: kr.estimate(m, kr.params.MaxHashes)})
	}
}

// verifyOneLite runs the pruning-only round loop of BayesLSH-Lite
// (Algorithm 2) for one candidate pair over nRounds rounds, updating
// st. It reports whether the pair survived pruning (and so needs exact
// verification). stop follows the verifyOne contract.
func (kr *kernel) verifyOneLite(c pair.Pair, nRounds int, stop *shard.Stopper, st *Stats) bool {
	k := kr.params.K
	m := 0
	for round := 0; round < nRounds; round++ {
		if stop.Stopped() {
			return false
		}
		n := kr.ns[round]
		if ensure := kr.params.Ensure; ensure != nil {
			ensure(c.A, n)
			ensure(c.B, n)
		}
		m += kr.match(c.A, c.B, n-k, n)
		st.HashesCompared += int64(k)
		if m < kr.minM[round] {
			st.Pruned++
			return false
		}
		st.SurvivorsByRound[round]++
	}
	return true
}

// verify runs BayesLSH (Algorithm 1) sequentially.
func (kr *kernel) verify(cands []pair.Pair) ([]pair.Result, Stats) {
	st := Stats{Candidates: len(cands), SurvivorsByRound: make([]int, len(kr.ns))}
	out := make([]pair.Result, 0, len(cands)/8+1)
	for _, c := range cands {
		kr.verifyOne(c, nil, &st, &out)
	}
	st.Accepted = len(out)
	return out, st
}

// verifyLite runs BayesLSH-Lite (Algorithm 2) sequentially.
func (kr *kernel) verifyLite(cands []pair.Pair, h int, sim ExactSimFunc) ([]pair.Result, Stats) {
	nRounds := liteRounds(h, kr.params.K, len(kr.ns))
	st := Stats{Candidates: len(cands), SurvivorsByRound: make([]int, nRounds)}
	var out []pair.Result
	for _, c := range cands {
		if !kr.verifyOneLite(c, nRounds, nil, &st) {
			continue
		}
		st.ExactVerified++
		if s := sim(c.A, c.B); s >= kr.params.Threshold {
			out = append(out, pair.Result{A: c.A, B: c.B, Sim: s})
		}
	}
	st.Accepted = len(out)
	return out, st
}

// verifyParallel runs BayesLSH over the candidates with a pool of
// workers, feeding batches of batch pairs through a channel. Each
// batch accumulates into its own result slice and Stats, merged in
// batch order afterwards, so the output is identical to the sequential
// verify for any worker count (per-pair decisions are pure functions
// of the pair's hash matches). Only the CacheHits/InferenceCalls split
// depends on scheduling: a decision another worker has not yet cached
// is recomputed — harmlessly, to the same value.
func (kr *kernel) verifyParallel(cands []pair.Pair, workers, batch int) ([]pair.Result, Stats) {
	if workers <= 1 || len(cands) <= batch {
		return kr.verify(cands)
	}
	outs := make([][]pair.Result, shard.Count(len(cands), batch))
	stats := make([]Stats, len(outs))
	shard.Run(len(cands), workers, batch, func(lo, hi, slot int) {
		st := Stats{SurvivorsByRound: make([]int, len(kr.ns))}
		out := make([]pair.Result, 0, (hi-lo)/8+1)
		for _, c := range cands[lo:hi] {
			kr.verifyOne(c, nil, &st, &out)
		}
		outs[slot] = out
		stats[slot] = st
	})
	out, st := mergeBatches(outs, stats)
	st.Candidates = len(cands)
	st.Accepted = len(out)
	return out, st
}

// verifyLiteParallel is the sharded version of verifyLite, with the
// same determinism guarantee as verifyParallel. sim must be safe for
// concurrent use (exact similarity over the immutable collection is).
func (kr *kernel) verifyLiteParallel(cands []pair.Pair, h int, sim ExactSimFunc, workers, batch int) ([]pair.Result, Stats) {
	if workers <= 1 || len(cands) <= batch {
		return kr.verifyLite(cands, h, sim)
	}
	nRounds := liteRounds(h, kr.params.K, len(kr.ns))
	outs := make([][]pair.Result, shard.Count(len(cands), batch))
	stats := make([]Stats, len(outs))
	shard.Run(len(cands), workers, batch, func(lo, hi, slot int) {
		st := Stats{SurvivorsByRound: make([]int, nRounds)}
		var out []pair.Result
		for _, c := range cands[lo:hi] {
			if !kr.verifyOneLite(c, nRounds, nil, &st) {
				continue
			}
			st.ExactVerified++
			if s := sim(c.A, c.B); s >= kr.params.Threshold {
				out = append(out, pair.Result{A: c.A, B: c.B, Sim: s})
			}
		}
		outs[slot] = out
		stats[slot] = st
	})
	out, st := mergeBatches(outs, stats)
	st.Candidates = len(cands)
	st.Accepted = len(out)
	return out, st
}

// mergeBatches concatenates per-batch results in batch order and sums
// per-batch statistics.
func mergeBatches(outs [][]pair.Result, stats []Stats) ([]pair.Result, Stats) {
	total := 0
	for _, o := range outs {
		total += len(o)
	}
	out := make([]pair.Result, 0, total)
	for _, o := range outs {
		out = append(out, o...)
	}
	var st Stats
	for _, s := range stats {
		st.Pruned += s.Pruned
		st.ExactVerified += s.ExactVerified
		st.HashesCompared += s.HashesCompared
		st.InferenceCalls += s.InferenceCalls
		st.CacheHits += s.CacheHits
		if st.SurvivorsByRound == nil {
			st.SurvivorsByRound = make([]int, len(s.SurvivorsByRound))
		}
		for i, v := range s.SurvivorsByRound {
			st.SurvivorsByRound[i] += v
		}
	}
	return out, st
}
