package core

import (
	"fmt"

	"bayeslsh/internal/minhash"
	"bayeslsh/internal/pair"
	"bayeslsh/internal/rng"
	"bayeslsh/internal/stats"
	"bayeslsh/internal/vector"
)

// JaccardVerifier is the §4.1 instantiation of BayesLSH: minhash
// signatures, a conjugate Beta(α, β) prior over the Jaccard
// similarity, and a Beta(m+α, n−m+β) posterior after observing the
// event M(m, n).
type JaccardVerifier struct {
	params Params
	prior  stats.Beta
	sigs   [][]uint32
	ns     []int
	minM   []int
	conc   *concCache
}

// NewJaccard builds a verifier over precomputed minhash signatures.
// prior is typically learned from a sample of candidate similarities
// with FitJaccardPrior; the uniform stats.Beta{Alpha: 1, Beta: 1} is a
// safe default.
func NewJaccard(sigs [][]uint32, prior stats.Beta, p Params) (*JaccardVerifier, error) {
	if len(sigs) == 0 {
		return nil, fmt.Errorf("core: no signatures")
	}
	if !prior.Valid() {
		return nil, fmt.Errorf("core: invalid prior %v", prior)
	}
	params, err := p.withDefaults(len(sigs[0]))
	if err != nil {
		return nil, err
	}
	for i, s := range sigs {
		if len(s) < params.MaxHashes {
			return nil, fmt.Errorf("core: signature %d has %d hashes, need %d", i, len(s), params.MaxHashes)
		}
	}
	v := &JaccardVerifier{params: params, prior: prior, sigs: sigs, ns: rounds(params)}
	v.minM = minMatchesTable(v.ns, func(m, n int) bool {
		return v.probAboveThreshold(m, n) >= params.Epsilon
	})
	v.conc = newConcCache(v.ns, params.K)
	return v, nil
}

// Params returns the validated parameters in effect.
func (v *JaccardVerifier) Params() Params { return v.params }

// posterior returns the Beta posterior after the event M(m, n).
func (v *JaccardVerifier) posterior(m, n int) stats.Beta {
	return stats.Beta{Alpha: float64(m) + v.prior.Alpha, Beta: float64(n-m) + v.prior.Beta}
}

// probAboveThreshold computes Pr[S >= t | M(m, n)] (Equation 3):
// 1 − I_t(m+α, n−m+β).
func (v *JaccardVerifier) probAboveThreshold(m, n int) float64 {
	return v.posterior(m, n).SF(v.params.Threshold)
}

// Estimate returns the MAP similarity estimate after M(m, n)
// (Equation 4): the posterior mode (m+α−1)/(n+α+β−2).
func (v *JaccardVerifier) Estimate(m, n int) float64 {
	return v.posterior(m, n).Mode()
}

// concentrated reports whether Pr[|S − Ŝ| < δ | M(m, n)] >= 1 − γ
// (Equation 6): I_{Ŝ+δ}(m+α, n−m+β) − I_{Ŝ−δ}(m+α, n−m+β).
func (v *JaccardVerifier) concentrated(m, n int) bool {
	post := v.posterior(m, n)
	est := post.Mode()
	return post.IntervalProb(est-v.params.Delta, est+v.params.Delta) >= 1-v.params.Gamma
}

// Verify runs BayesLSH (Algorithm 1) over the candidate pairs.
func (v *JaccardVerifier) Verify(cands []pair.Pair) ([]pair.Result, Stats) {
	st := Stats{Candidates: len(cands), SurvivorsByRound: make([]int, len(v.ns))}
	out := make([]pair.Result, 0, len(cands)/8+1)
	k := v.params.K
	for _, c := range cands {
		a, b := v.sigs[c.A], v.sigs[c.B]
		m := 0
		pruned := false
		accepted := false
		for round, n := range v.ns {
			if ensure := v.params.Ensure; ensure != nil {
				ensure(c.A, n)
				ensure(c.B, n)
			}
			m += minhash.Matches(a, b, n-k, n)
			st.HashesCompared += int64(k)
			if m < v.minM[round] {
				pruned = true
				st.Pruned++
				// Rounds not reached count this pair as gone.
				break
			}
			st.SurvivorsByRound[round]++
			if cached, ok := v.conc.lookup(round, m); ok {
				st.CacheHits++
				if cached {
					accepted = true
				}
			} else {
				st.InferenceCalls++
				cv := v.concentrated(m, n)
				v.conc.store(round, m, cv)
				if cv {
					accepted = true
				}
			}
			if accepted {
				out = append(out, pair.Result{A: c.A, B: c.B, Sim: v.Estimate(m, n)})
				// Later rounds still count an accepted pair as a
				// survivor (it reached the output set).
				for r := round + 1; r < len(v.ns); r++ {
					st.SurvivorsByRound[r]++
				}
				break
			}
		}
		if !pruned && !accepted {
			// Ran out of hashes: accept with the current estimate.
			out = append(out, pair.Result{A: c.A, B: c.B, Sim: v.Estimate(m, v.params.MaxHashes)})
		}
	}
	st.Accepted = len(out)
	return out, st
}

// VerifyLite runs BayesLSH-Lite (Algorithm 2): prune within the first
// h hashes, then compute exact similarities for survivors.
func (v *JaccardVerifier) VerifyLite(cands []pair.Pair, h int, sim ExactSimFunc) ([]pair.Result, Stats) {
	nRounds := liteRounds(h, v.params.K, len(v.ns))
	st := Stats{Candidates: len(cands), SurvivorsByRound: make([]int, nRounds)}
	var out []pair.Result
	k := v.params.K
	for _, c := range cands {
		a, b := v.sigs[c.A], v.sigs[c.B]
		m := 0
		pruned := false
		for round := 0; round < nRounds; round++ {
			n := v.ns[round]
			if ensure := v.params.Ensure; ensure != nil {
				ensure(c.A, n)
				ensure(c.B, n)
			}
			m += minhash.Matches(a, b, n-k, n)
			st.HashesCompared += int64(k)
			if m < v.minM[round] {
				pruned = true
				st.Pruned++
				break
			}
			st.SurvivorsByRound[round]++
		}
		if pruned {
			continue
		}
		st.ExactVerified++
		if s := sim(c.A, c.B); s >= v.params.Threshold {
			out = append(out, pair.Result{A: c.A, B: c.B, Sim: s})
		}
	}
	st.Accepted = len(out)
	return out, st
}

// liteRounds converts the Lite hash budget h into a round count,
// rounding up to whole rounds and clamping to the available table.
func liteRounds(h, k, maxRounds int) int {
	if h <= 0 {
		return maxRounds
	}
	r := (h + k - 1) / k
	if r < 1 {
		r = 1
	}
	if r > maxRounds {
		r = maxRounds
	}
	return r
}

// FitJaccardPrior learns a Beta prior by method-of-moments from the
// exact Jaccard similarities of up to sampleSize randomly chosen
// candidate pairs, as §4.1 prescribes. With no candidates it returns
// the uniform prior.
func FitJaccardPrior(c *vector.Collection, cands []pair.Pair, sampleSize int, seed uint64) stats.Beta {
	if len(cands) == 0 || sampleSize <= 0 {
		return stats.Beta{Alpha: 1, Beta: 1}
	}
	src := rng.New(seed)
	sims := make([]float64, 0, sampleSize)
	for i := 0; i < sampleSize; i++ {
		p := cands[src.Intn(len(cands))]
		sims = append(sims, vector.Jaccard(c.Vecs[p.A], c.Vecs[p.B]))
	}
	return stats.FitBetaMoments(sims)
}
