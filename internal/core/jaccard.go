package core

import (
	"fmt"

	"bayeslsh/internal/minhash"
	"bayeslsh/internal/pair"
	"bayeslsh/internal/rng"
	"bayeslsh/internal/stats"
	"bayeslsh/internal/vector"
)

// JaccardVerifier is the §4.1 instantiation of BayesLSH: minhash
// signatures, a conjugate Beta(α, β) prior over the Jaccard
// similarity, and a Beta(m+α, n−m+β) posterior after observing the
// event M(m, n).
type JaccardVerifier struct {
	params Params
	prior  stats.Beta
	sigs   [][]uint32
	k      *kernel
}

// NewJaccard builds a verifier over precomputed minhash signatures.
// prior is typically learned from a sample of candidate similarities
// with FitJaccardPrior; the uniform stats.Beta{Alpha: 1, Beta: 1} is a
// safe default.
func NewJaccard(sigs [][]uint32, prior stats.Beta, p Params) (*JaccardVerifier, error) {
	if len(sigs) == 0 {
		return nil, fmt.Errorf("core: no signatures")
	}
	if !prior.Valid() {
		return nil, fmt.Errorf("core: invalid prior %v", prior)
	}
	params, err := p.withDefaults(len(sigs[0]))
	if err != nil {
		return nil, err
	}
	for i, s := range sigs {
		if len(s) < params.MaxHashes {
			return nil, fmt.Errorf("core: signature %d has %d hashes, need %d", i, len(s), params.MaxHashes)
		}
	}
	v := &JaccardVerifier{params: params, prior: prior, sigs: sigs}
	v.k = newKernel(params,
		func(m, n int) bool { return v.probAboveThreshold(m, n) >= params.Epsilon },
		func(a, b int32, from, to int) int { return minhash.Matches(sigs[a], sigs[b], from, to) },
		v.Estimate,
		v.concentrated,
	)
	return v, nil
}

// Params returns the validated parameters in effect.
func (v *JaccardVerifier) Params() Params { return v.params }

// posterior returns the Beta posterior after the event M(m, n).
func (v *JaccardVerifier) posterior(m, n int) stats.Beta {
	return stats.Beta{Alpha: float64(m) + v.prior.Alpha, Beta: float64(n-m) + v.prior.Beta}
}

// probAboveThreshold computes Pr[S >= t | M(m, n)] (Equation 3):
// 1 − I_t(m+α, n−m+β).
func (v *JaccardVerifier) probAboveThreshold(m, n int) float64 {
	return v.posterior(m, n).SF(v.params.Threshold)
}

// Estimate returns the MAP similarity estimate after M(m, n)
// (Equation 4): the posterior mode (m+α−1)/(n+α+β−2).
func (v *JaccardVerifier) Estimate(m, n int) float64 {
	return v.posterior(m, n).Mode()
}

// concentrated reports whether Pr[|S − Ŝ| < δ | M(m, n)] >= 1 − γ
// (Equation 6): I_{Ŝ+δ}(m+α, n−m+β) − I_{Ŝ−δ}(m+α, n−m+β).
func (v *JaccardVerifier) concentrated(m, n int) bool {
	post := v.posterior(m, n)
	est := post.Mode()
	return post.IntervalProb(est-v.params.Delta, est+v.params.Delta) >= 1-v.params.Gamma
}

// Verify runs BayesLSH (Algorithm 1) over the candidate pairs.
func (v *JaccardVerifier) Verify(cands []pair.Pair) ([]pair.Result, Stats) {
	return v.k.verify(cands)
}

// VerifyLite runs BayesLSH-Lite (Algorithm 2): prune within the first
// h hashes, then compute exact similarities for survivors.
func (v *JaccardVerifier) VerifyLite(cands []pair.Pair, h int, sim ExactSimFunc) ([]pair.Result, Stats) {
	return v.k.verifyLite(cands, h, sim)
}

// VerifyParallel runs BayesLSH over a pool of workers goroutines in
// batches of batch pairs, producing the same results as Verify.
func (v *JaccardVerifier) VerifyParallel(cands []pair.Pair, workers, batch int) ([]pair.Result, Stats) {
	return v.k.verifyParallel(cands, workers, batch)
}

// VerifyLiteParallel runs BayesLSH-Lite over a pool of workers
// goroutines, producing the same results as VerifyLite.
func (v *JaccardVerifier) VerifyLiteParallel(cands []pair.Pair, h int, sim ExactSimFunc, workers, batch int) ([]pair.Result, Stats) {
	return v.k.verifyLiteParallel(cands, h, sim, workers, batch)
}

// liteRounds converts the Lite hash budget h into a round count,
// rounding up to whole rounds and clamping to the available table.
func liteRounds(h, k, maxRounds int) int {
	if h <= 0 {
		return maxRounds
	}
	r := (h + k - 1) / k
	if r < 1 {
		r = 1
	}
	if r > maxRounds {
		r = maxRounds
	}
	return r
}

// FitJaccardPrior learns a Beta prior by method-of-moments from the
// exact Jaccard similarities of up to sampleSize randomly chosen
// candidate pairs, as §4.1 prescribes. With no candidates it returns
// the uniform prior.
func FitJaccardPrior(c *vector.Collection, cands []pair.Pair, sampleSize int, seed uint64) stats.Beta {
	if len(cands) == 0 || sampleSize <= 0 {
		return stats.Beta{Alpha: 1, Beta: 1}
	}
	src := rng.New(seed)
	sims := make([]float64, 0, sampleSize)
	for i := 0; i < sampleSize; i++ {
		p := cands[src.Intn(len(cands))]
		sims = append(sims, vector.Jaccard(c.Vecs[p.A], c.Vecs[p.B]))
	}
	return stats.FitBetaMoments(sims)
}
