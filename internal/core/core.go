package core

import (
	"context"
	"fmt"
	"sync/atomic"

	"bayeslsh/internal/pair"
)

// Params configures a BayesLSH verifier.
type Params struct {
	// Threshold is the similarity threshold t of the search.
	Threshold float64
	// Epsilon is the recall parameter ε: pairs whose posterior
	// probability of meeting the threshold falls below ε are pruned.
	Epsilon float64
	// Delta and Gamma are the accuracy parameters: accepted estimates
	// satisfy Pr[|Ŝ − S| >= δ] < γ. They are ignored by Lite
	// verification.
	Delta, Gamma float64
	// K is the number of hashes compared per round (default 32; the
	// paper uses one machine word of cosine hashes at a time).
	K int
	// MaxHashes caps the number of hashes examined per pair (default:
	// the full signature length, supplied by the constructor). If a
	// pair is still unresolved at the cap, it is accepted with the
	// current MAP estimate.
	MaxHashes int
	// Ensure, when non-nil, is called before hashes [0, n) of a
	// vector's signature are read, so lazily-materialized signature
	// stores can fill them on demand (the paper's "each point is only
	// hashed as many times as is necessary").
	Ensure func(id int32, n int)
}

// withDefaults validates p against a signature of length sigLen and
// fills in defaults.
func (p Params) withDefaults(sigLen int) (Params, error) {
	if p.Threshold <= 0 || p.Threshold > 1 {
		return p, fmt.Errorf("core: threshold %v outside (0, 1]", p.Threshold)
	}
	if p.Epsilon <= 0 || p.Epsilon >= 1 {
		return p, fmt.Errorf("core: epsilon %v outside (0, 1)", p.Epsilon)
	}
	if p.Delta < 0 || p.Delta >= 1 {
		return p, fmt.Errorf("core: delta %v outside [0, 1)", p.Delta)
	}
	if p.Gamma < 0 || p.Gamma >= 1 {
		return p, fmt.Errorf("core: gamma %v outside [0, 1)", p.Gamma)
	}
	if p.K == 0 {
		p.K = 32
	}
	if p.K < 0 {
		return p, fmt.Errorf("core: K %d must be positive", p.K)
	}
	if p.MaxHashes == 0 {
		p.MaxHashes = sigLen
	}
	if p.MaxHashes > sigLen {
		return p, fmt.Errorf("core: MaxHashes %d exceeds signature length %d", p.MaxHashes, sigLen)
	}
	p.MaxHashes -= p.MaxHashes % p.K
	if p.MaxHashes < p.K {
		return p, fmt.Errorf("core: MaxHashes smaller than one round of K=%d hashes", p.K)
	}
	return p, nil
}

// Stats reports what a verification run did. Its counters regenerate
// Figure 4 of the paper (candidates surviving per hashes examined).
type Stats struct {
	// Candidates is the number of input candidate pairs.
	Candidates int
	// Pruned counts pairs eliminated by the posterior threshold test.
	Pruned int
	// Accepted counts pairs that reached the output set.
	Accepted int
	// ExactVerified counts pairs verified by exact similarity (Lite).
	ExactVerified int
	// HashesCompared is the total number of hash comparisons.
	HashesCompared int64
	// SurvivorsByRound[i] is the number of candidates not yet pruned
	// after (i+1)*K hashes were examined (accepted pairs count as
	// survivors; this is Figure 4's y-axis).
	SurvivorsByRound []int
	// InferenceCalls counts posterior computations actually performed;
	// CacheHits counts concentration decisions served from the cache.
	InferenceCalls int
	// CacheHits counts concentration queries answered by the cache.
	CacheHits int
}

// rounds returns the per-round hash counts for params.
func rounds(p Params) []int {
	var ns []int
	for n := p.K; n <= p.MaxHashes; n += p.K {
		ns = append(ns, n)
	}
	return ns
}

// minMatchesTable precomputes, for each round's n, the smallest m such
// that survive(m, n) holds (Pr[S >= t | M(m,n)] >= ε). survive must be
// monotone non-decreasing in m for fixed n. A value of n+1 means no m
// survives at that n.
func minMatchesTable(ns []int, survive func(m, n int) bool) []int {
	table := make([]int, len(ns))
	for i, n := range ns {
		lo, hi := 0, n+1 // invariant: lo-1 fails (or lo==0), hi survives or hi==n+1
		for lo < hi {
			mid := (lo + hi) / 2
			if survive(mid, n) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		table[i] = lo
	}
	return table
}

// concCache memoizes the concentration decision per (round, m). Cells
// hold 0 unknown, 1 concentrated, 2 not concentrated, and are accessed
// atomically so one cache can be shared by concurrent verification
// workers: the decision is a pure function of (round, m), so racing
// writers store the same value and a lost update only costs a
// recomputation.
type concCache struct {
	perRound [][]uint32
	k        int
}

func newConcCache(ns []int, k int) *concCache {
	c := &concCache{perRound: make([][]uint32, len(ns)), k: k}
	for i, n := range ns {
		c.perRound[i] = make([]uint32, n+1)
	}
	return c
}

// lookup returns the cached decision and whether it was present.
func (c *concCache) lookup(round, m int) (bool, bool) {
	switch atomic.LoadUint32(&c.perRound[round][m]) {
	case 1:
		return true, true
	case 2:
		return false, true
	default:
		return false, false
	}
}

func (c *concCache) store(round, m int, v bool) {
	if v {
		atomic.StoreUint32(&c.perRound[round][m], 1)
	} else {
		atomic.StoreUint32(&c.perRound[round][m], 2)
	}
}

// ExactSimFunc computes the exact similarity of a candidate pair; it
// is supplied to Lite verification by the caller (which knows the
// collection and measure).
type ExactSimFunc func(a, b int32) float64

// Verifier is the common interface of the Jaccard, Cosine and 1-bit
// Jaccard instantiations of BayesLSH. All verifiers are safe for
// concurrent use after construction (signature stores supplied via
// Params.Ensure must be too; the library's stores are).
type Verifier interface {
	// Verify runs BayesLSH (Algorithm 1): prune and estimate.
	Verify(cands []pair.Pair) ([]pair.Result, Stats)
	// VerifyLite runs BayesLSH-Lite (Algorithm 2): prune within the
	// first h hashes, then verify survivors exactly with sim, keeping
	// pairs with similarity >= t.
	VerifyLite(cands []pair.Pair, h int, sim ExactSimFunc) ([]pair.Result, Stats)
	// VerifyParallel is Verify sharded over workers goroutines in
	// batches of batch pairs. The result set, result order and all
	// Stats counters except the CacheHits/InferenceCalls split are
	// identical to Verify for any worker count. workers <= 1 falls
	// back to the sequential Verify.
	VerifyParallel(cands []pair.Pair, workers, batch int) ([]pair.Result, Stats)
	// VerifyLiteParallel is VerifyLite sharded over workers goroutines;
	// sim must be safe for concurrent use.
	VerifyLiteParallel(cands []pair.Pair, h int, sim ExactSimFunc, workers, batch int) ([]pair.Result, Stats)
	// VerifyParallelCtx is VerifyParallel with cooperative
	// cancellation: no batch starts after ctx is done, the round loop
	// polls cancellation between rounds, and a canceled run returns
	// (nil, Stats{}, ctx.Err()) with all workers drained. A
	// non-cancelable ctx takes VerifyParallel's code path unchanged.
	VerifyParallelCtx(ctx context.Context, cands []pair.Pair, workers, batch int) ([]pair.Result, Stats, error)
	// VerifyLiteParallelCtx is VerifyLiteParallel under the
	// VerifyParallelCtx contract.
	VerifyLiteParallelCtx(ctx context.Context, cands []pair.Pair, h int, sim ExactSimFunc, workers, batch int) ([]pair.Result, Stats, error)
	// VerifyStream runs BayesLSH over the candidates and delivers each
	// batch's accepted results to emit (on the calling goroutine, in
	// batch completion order) as soon as the batch finishes, instead of
	// accumulating one result slice. emit returning a non-nil error or
	// ctx being canceled stops the run (shard.StreamCtx contract).
	VerifyStream(ctx context.Context, cands []pair.Pair, workers, batch int, emit func([]pair.Result) error) error
	// VerifyLiteStream is the streaming form of VerifyLite.
	VerifyLiteStream(ctx context.Context, cands []pair.Pair, h int, sim ExactSimFunc, workers, batch int, emit func([]pair.Result) error) error
}
