package core

import (
	"math"
	"testing"

	"bayeslsh/internal/allpairs"
	"bayeslsh/internal/exact"
	"bayeslsh/internal/minhash"
	"bayeslsh/internal/pair"
	"bayeslsh/internal/testutil"
	"bayeslsh/internal/vector"
)

func TestJToRTransforms(t *testing.T) {
	if got := jToR(0); got != 0.5 {
		t.Errorf("jToR(0) = %v", got)
	}
	if got := jToR(1); got != 1 {
		t.Errorf("jToR(1) = %v", got)
	}
	if got := jToR(-2); got != 0.5 {
		t.Errorf("jToR clamps below: %v", got)
	}
	if got := jToR(2); got != 1 {
		t.Errorf("jToR clamps above: %v", got)
	}
	for _, j := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got := rToJ(jToR(j)); math.Abs(got-j) > 1e-12 {
			t.Errorf("rToJ(jToR(%v)) = %v", j, got)
		}
	}
}

func TestPackOneBitMatchRateApproximatesCollisionLaw(t *testing.T) {
	// For Jaccard J, 1-bit hashes must agree at rate ≈ (1+J)/2.
	const hashes = 8192
	fam := minhash.NewFamily(hashes, 17)
	a := vector.New([]vector.Entry{{Ind: 1, Val: 1}, {Ind: 2, Val: 1}, {Ind: 3, Val: 1}, {Ind: 4, Val: 1}})
	b := vector.New([]vector.Entry{{Ind: 3, Val: 1}, {Ind: 4, Val: 1}, {Ind: 5, Val: 1}, {Ind: 6, Val: 1}})
	j := vector.Jaccard(a, b) // 2/6
	pa := minhash.PackOneBit(fam.Signature(a))
	pb := minhash.PackOneBit(fam.Signature(b))
	got := float64(countMatches(pa, pb, hashes)) / hashes
	want := (1 + j) / 2
	if math.Abs(got-want) > 0.02 {
		t.Errorf("1-bit collision rate %v, want %v", got, want)
	}
}

func countMatches(a, b []uint64, bits int) int {
	n := 0
	for i := 0; i < bits; i++ {
		if (a[i/64]>>(i%64))&1 == (b[i/64]>>(i%64))&1 {
			n++
		}
	}
	return n
}

func TestOneBitJaccardEndToEnd(t *testing.T) {
	// Full pipeline with 1-bit signatures: recall and accuracy should
	// track the full-minhash verifier, with 32x smaller signatures.
	c := testutil.SmallBinaryCorpus(t, 400, 51)
	th := 0.5
	cands, err := allpairs.CandidatesMeasure(c, exact.Jaccard, th)
	if err != nil {
		t.Fatal(err)
	}
	const hashes = 2048 // 1-bit hashes are cheap; use plenty
	fam := minhash.NewFamily(hashes, 52)
	sigs := minhash.PackOneBitAll(fam.SignatureAll(c))
	v, err := NewOneBitJaccard(sigs, hashes, Params{
		Threshold: th, Epsilon: 0.03, Delta: 0.05, Gamma: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	truth := exact.Search(c, exact.Jaccard, th)
	if len(truth) < 20 {
		t.Fatalf("corpus too sparse: %d true pairs", len(truth))
	}
	out, st := v.Verify(cands)
	if recall := testutil.Recall(out, truth); recall < 0.9 {
		t.Errorf("1-bit recall = %v", recall)
	}
	bad := 0
	for _, r := range out {
		if math.Abs(vector.Jaccard(c.Vecs[r.A], c.Vecs[r.B])-r.Sim) >= 0.05 {
			bad++
		}
	}
	if len(out) > 0 {
		if frac := float64(bad) / float64(len(out)); frac > 0.2 {
			t.Errorf("%v of 1-bit estimates off by >= δ", frac)
		}
	}
	if st.Pruned+st.Accepted != st.Candidates {
		t.Errorf("accounting broken: %+v", st)
	}
}

func TestOneBitJaccardLite(t *testing.T) {
	c := testutil.SmallBinaryCorpus(t, 300, 53)
	th := 0.5
	cands, err := allpairs.CandidatesMeasure(c, exact.Jaccard, th)
	if err != nil {
		t.Fatal(err)
	}
	fam := minhash.NewFamily(512, 54)
	sigs := minhash.PackOneBitAll(fam.SignatureAll(c))
	v, err := NewOneBitJaccard(sigs, 512, Params{
		Threshold: th, Epsilon: 0.03, Delta: 0.05, Gamma: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	truth := exact.Search(c, exact.Jaccard, th)
	out, _ := v.VerifyLite(cands, 256, func(a, b int32) float64 {
		return vector.Jaccard(c.Vecs[a], c.Vecs[b])
	})
	tm := testutil.ResultKeySet(truth)
	for _, r := range out {
		if _, ok := tm[r.Pair().Key()]; !ok {
			t.Fatalf("1-bit Lite emitted false positive %v", r)
		}
	}
	if recall := testutil.Recall(out, truth); recall < 0.9 {
		t.Errorf("1-bit Lite recall = %v", recall)
	}
}

func TestOneBitVerifierConstructorRejects(t *testing.T) {
	ok := Params{Threshold: 0.5, Epsilon: 0.03, Delta: 0.05, Gamma: 0.05}
	if _, err := NewOneBitJaccard(nil, 128, ok); err == nil {
		t.Error("empty signatures accepted")
	}
	if _, err := NewOneBitJaccard([][]uint64{{0}}, 128, ok); err == nil {
		t.Error("short signature accepted")
	}
}

func TestOneBitDisjointPairPrunedIdenticalAccepted(t *testing.T) {
	fam := minhash.NewFamily(512, 55)
	a := vector.New([]vector.Entry{{Ind: 1, Val: 1}, {Ind: 2, Val: 1}, {Ind: 3, Val: 1}})
	b := vector.New([]vector.Entry{{Ind: 7, Val: 1}, {Ind: 8, Val: 1}, {Ind: 9, Val: 1}})
	sigs := minhash.PackOneBitAll([][]uint32{fam.Signature(a), fam.Signature(b), fam.Signature(a)})
	v, err := NewOneBitJaccard(sigs, 512, Params{
		Threshold: 0.8, Epsilon: 0.03, Delta: 0.05, Gamma: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, st := v.Verify([]pair.Pair{pair.Make(0, 1), pair.Make(0, 2)})
	if st.Pruned != 1 {
		t.Errorf("disjoint pair not pruned: %+v", st)
	}
	if len(out) != 1 || out[0].Pair() != pair.Make(0, 2) || out[0].Sim < 0.9 {
		t.Errorf("identical pair not accepted with high estimate: %v", out)
	}
}
