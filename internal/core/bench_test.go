package core

import (
	"testing"

	"bayeslsh/internal/minhash"
	"bayeslsh/internal/pair"
	"bayeslsh/internal/rng"
	"bayeslsh/internal/stats"
	"bayeslsh/internal/vector"
)

// benchFixture builds minhash signatures for a corpus with a mix of
// near-duplicate and random pairs, plus a candidate list.
func benchFixture(nVecs int) ([][]uint32, []pair.Pair) {
	src := rng.New(7)
	c := &vector.Collection{Dim: 1 << 16}
	base := make(map[uint32]float64, 64)
	for len(base) < 64 {
		base[uint32(src.Intn(1<<16))] = 1
	}
	for i := 0; i < nVecs; i++ {
		m := make(map[uint32]float64, 64)
		if i%10 == 0 { // ~10% near-duplicates of the base set
			for k := range base {
				m[k] = 1
			}
			for j := 0; j < 8; j++ {
				m[uint32(src.Intn(1<<16))] = 1
			}
		} else {
			for len(m) < 64 {
				m[uint32(src.Intn(1<<16))] = 1
			}
		}
		c.Vecs = append(c.Vecs, vector.FromMap(m))
	}
	fam := minhash.NewFamily(512, 3)
	sigs := fam.SignatureAll(c)
	var cands []pair.Pair
	for i := 0; i < nVecs; i++ {
		for j := i + 1; j < i+8 && j < nVecs; j++ {
			cands = append(cands, pair.Make(int32(i), int32(j)))
		}
	}
	return sigs, cands
}

func BenchmarkJaccardVerify(b *testing.B) {
	sigs, cands := benchFixture(512)
	v, err := NewJaccard(sigs, stats.Beta{Alpha: 1, Beta: 1},
		Params{Threshold: 0.7, Epsilon: 0.03, Delta: 0.05, Gamma: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Verify(cands)
	}
	b.ReportMetric(float64(len(cands)), "pairs/op")
}

func BenchmarkJaccardVerifyLite(b *testing.B) {
	sigs, cands := benchFixture(512)
	v, err := NewJaccard(sigs, stats.Beta{Alpha: 1, Beta: 1},
		Params{Threshold: 0.7, Epsilon: 0.03, Delta: 0.05, Gamma: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	sim := func(a, c int32) float64 { return 0.5 }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.VerifyLite(cands, 64, sim)
	}
}

// BenchmarkAblationPriorLearnedVsUniform compares verification work
// under an informative prior (fit to the candidate similarity
// distribution, which is mostly near zero) against the uniform prior —
// the learned prior prunes obvious negatives slightly faster.
func BenchmarkAblationPriorLearnedVsUniform(b *testing.B) {
	sigs, cands := benchFixture(512)
	for _, tc := range []struct {
		name  string
		prior stats.Beta
	}{
		{"uniform", stats.Beta{Alpha: 1, Beta: 1}},
		{"learned-low", stats.Beta{Alpha: 0.8, Beta: 12}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			v, err := NewJaccard(sigs, tc.prior,
				Params{Threshold: 0.7, Epsilon: 0.03, Delta: 0.05, Gamma: 0.05})
			if err != nil {
				b.Fatal(err)
			}
			var hashes int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st := v.Verify(cands)
				hashes = st.HashesCompared
			}
			b.ReportMetric(float64(hashes), "hashes/op")
		})
	}
}

// BenchmarkAblationConcCache measures the value of the (m, n)
// concentration cache by comparing a cold first pass (inference
// performed) with warm passes (cache hits only).
func BenchmarkAblationConcCache(b *testing.B) {
	sigs, cands := benchFixture(512)
	params := Params{Threshold: 0.7, Epsilon: 0.03, Delta: 0.05, Gamma: 0.05}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v, err := NewJaccard(sigs, stats.Beta{Alpha: 1, Beta: 1}, params)
			if err != nil {
				b.Fatal(err)
			}
			v.Verify(cands)
		}
	})
	b.Run("warm", func(b *testing.B) {
		v, err := NewJaccard(sigs, stats.Beta{Alpha: 1, Beta: 1}, params)
		if err != nil {
			b.Fatal(err)
		}
		v.Verify(cands) // populate the cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v.Verify(cands)
		}
	})
}
