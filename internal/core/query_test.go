package core

import (
	"testing"

	"bayeslsh/internal/minhash"
	"bayeslsh/internal/pair"
	"bayeslsh/internal/sighash"
	"bayeslsh/internal/stats"
	"bayeslsh/internal/testutil"
)

// queryTestSigs builds minhash and bit signatures over a small corpus.
func queryTestSigs(t *testing.T) ([][]uint32, [][]uint64) {
	t.Helper()
	c := testutil.SmallBinaryCorpus(t, 80, 3)
	min := minhash.NewFamily(256, 7).SignatureAll(c)
	bits := sighash.NewFamily(c.Dim, 256, 9).SignatureAll(c.Normalize())
	return min, bits
}

// TestVerifyQueryMatchesVerify checks the one-sided round loop
// against the two-sided one: verifying candidates (i, j) with i's
// signature as the query must reproduce the batch accept/prune
// decisions and estimates exactly, for all three verifiers.
func TestVerifyQueryMatchesVerify(t *testing.T) {
	min, bits := queryTestSigs(t)
	packed := minhash.PackOneBitAll(min)
	params := Params{Threshold: 0.4, Epsilon: 0.03, Delta: 0.05, Gamma: 0.03}

	jv, err := NewJaccard(min, stats.Beta{Alpha: 1, Beta: 1}, params)
	if err != nil {
		t.Fatal(err)
	}
	cv, err := NewCosine(bits, 256, Params{Threshold: 0.6, Epsilon: 0.03, Delta: 0.05, Gamma: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	ov, err := NewOneBitJaccard(packed, 256, params)
	if err != nil {
		t.Fatal(err)
	}

	type queryCase struct {
		name string
		v    QueryVerifier
		sig  func(i int32) QuerySig
	}
	for _, tc := range []queryCase{
		{"jaccard", jv, func(i int32) QuerySig { return QuerySig{Min: min[i]} }},
		{"cosine", cv, func(i int32) QuerySig { return QuerySig{Bits: bits[i]} }},
		{"onebit", ov, func(i int32) QuerySig { return QuerySig{Bits: packed[i]} }},
	} {
		// Candidates: pair vector 0..9 against everything after it.
		for i := int32(0); i < 10; i++ {
			var cands []pair.Pair
			var ids []int32
			for j := i + 1; j < int32(len(min)); j++ {
				cands = append(cands, pair.Pair{A: i, B: j})
				ids = append(ids, j)
			}
			batch, bst := tc.v.Verify(cands)
			hits, qst := tc.v.VerifyQuery(tc.sig(i), ids)
			if len(batch) != len(hits) {
				t.Fatalf("%s query %d: %d hits, batch %d", tc.name, i, len(hits), len(batch))
			}
			for k := range batch {
				if batch[k].B != hits[k].ID || batch[k].Sim != hits[k].Sim {
					t.Fatalf("%s query %d hit %d: (%d, %v), batch (%d, %v)",
						tc.name, i, k, hits[k].ID, hits[k].Sim, batch[k].B, batch[k].Sim)
				}
			}
			if bst.Pruned != qst.Pruned || bst.HashesCompared != qst.HashesCompared {
				t.Fatalf("%s query %d stats: pruned %d/%d hashes %d/%d",
					tc.name, i, qst.Pruned, bst.Pruned, qst.HashesCompared, bst.HashesCompared)
			}
		}
	}
}

// TestVerifyQueryLiteMatchesVerifyLite does the same for the Lite
// (prune + exact verify) loop.
func TestVerifyQueryLiteMatchesVerifyLite(t *testing.T) {
	min, _ := queryTestSigs(t)
	jv, err := NewJaccard(min, stats.Beta{Alpha: 1, Beta: 1},
		Params{Threshold: 0.4, Epsilon: 0.03, Delta: 0.05, Gamma: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	// A synthetic exact-similarity function keyed on ids keeps the
	// test independent of the corpus: sim = matches over full sigs.
	exact := func(a, b int32) float64 {
		return float64(minhash.Matches(min[a], min[b], 0, 256)) / 256
	}
	for i := int32(0); i < 10; i++ {
		var cands []pair.Pair
		var ids []int32
		for j := i + 1; j < int32(len(min)); j++ {
			cands = append(cands, pair.Pair{A: i, B: j})
			ids = append(ids, j)
		}
		batch, bst := jv.VerifyLite(cands, 64, exact)
		hits, qst := jv.VerifyQueryLite(QuerySig{Min: min[i]}, ids, 64,
			func(id int32) float64 { return exact(i, id) })
		if len(batch) != len(hits) {
			t.Fatalf("query %d: %d hits, batch %d", i, len(hits), len(batch))
		}
		for k := range batch {
			if batch[k].B != hits[k].ID || batch[k].Sim != hits[k].Sim {
				t.Fatalf("query %d hit %d: (%d, %v), batch (%d, %v)",
					i, k, hits[k].ID, hits[k].Sim, batch[k].B, batch[k].Sim)
			}
		}
		if bst.Pruned != qst.Pruned || bst.ExactVerified != qst.ExactVerified {
			t.Fatalf("query %d stats: pruned %d/%d exact %d/%d",
				i, qst.Pruned, bst.Pruned, qst.ExactVerified, bst.ExactVerified)
		}
	}
}
