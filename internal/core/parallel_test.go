package core

import (
	"sync"
	"testing"

	"bayeslsh/internal/minhash"
	"bayeslsh/internal/pair"
	"bayeslsh/internal/vector"
)

// requireSameVerification fails unless two (results, stats) outcomes
// agree on everything that is scheduling-independent (all but the
// CacheHits/InferenceCalls split).
func requireSameVerification(t *testing.T, seqR, parR []pair.Result, seqS, parS Stats) {
	t.Helper()
	if len(seqR) != len(parR) {
		t.Fatalf("parallel accepted %d pairs, sequential %d", len(parR), len(seqR))
	}
	for i := range seqR {
		if seqR[i] != parR[i] {
			t.Fatalf("result %d: parallel %+v, sequential %+v", i, parR[i], seqR[i])
		}
	}
	if seqS.Candidates != parS.Candidates || seqS.Pruned != parS.Pruned ||
		seqS.Accepted != parS.Accepted || seqS.ExactVerified != parS.ExactVerified ||
		seqS.HashesCompared != parS.HashesCompared {
		t.Fatalf("stats differ: parallel %+v, sequential %+v", parS, seqS)
	}
	if len(seqS.SurvivorsByRound) != len(parS.SurvivorsByRound) {
		t.Fatalf("survivor rounds differ: %d vs %d", len(parS.SurvivorsByRound), len(seqS.SurvivorsByRound))
	}
	for i := range seqS.SurvivorsByRound {
		if seqS.SurvivorsByRound[i] != parS.SurvivorsByRound[i] {
			t.Fatalf("survivors round %d: parallel %d, sequential %d",
				i, parS.SurvivorsByRound[i], seqS.SurvivorsByRound[i])
		}
	}
}

func jaccardSim(c *vector.Collection) ExactSimFunc {
	return func(a, b int32) float64 { return vector.Jaccard(c.Vecs[a], c.Vecs[b]) }
}

func TestJaccardVerifyParallelMatchesSequential(t *testing.T) {
	c, cands, v := jaccardSetup(t, 400, 31, 0.5)
	seqR, seqS := v.Verify(cands)
	for _, workers := range []int{2, 4, 7} {
		for _, batch := range []int{1, 13, 256} {
			parR, parS := v.VerifyParallel(cands, workers, batch)
			requireSameVerification(t, seqR, parR, seqS, parS)
		}
	}
	seqR, seqS = v.VerifyLite(cands, 64, jaccardSim(c))
	parR, parS := v.VerifyLiteParallel(cands, 64, jaccardSim(c), 4, 32)
	requireSameVerification(t, seqR, parR, seqS, parS)
}

func TestCosineVerifyParallelMatchesSequential(t *testing.T) {
	c, cands, v := cosineSetup(t, 400, 17, 0.7)
	seqR, seqS := v.Verify(cands)
	parR, parS := v.VerifyParallel(cands, 4, 64)
	requireSameVerification(t, seqR, parR, seqS, parS)

	sim := func(a, b int32) float64 { return vector.Cosine(c.Vecs[a], c.Vecs[b]) }
	seqR, seqS = v.VerifyLite(cands, 128, sim)
	parR, parS = v.VerifyLiteParallel(cands, 128, sim, 4, 64)
	requireSameVerification(t, seqR, parR, seqS, parS)
}

// TestVerifierSharedAcrossGoroutines exercises one verifier (and its
// shared concentration cache) from many goroutines at once — the
// access pattern of the engine's worker pool — under the race
// detector.
func TestVerifierSharedAcrossGoroutines(t *testing.T) {
	_, cands, v := jaccardSetup(t, 300, 5, 0.5)
	want, _ := v.Verify(cands)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, _ := v.Verify(cands)
			if len(got) != len(want) {
				t.Errorf("concurrent Verify accepted %d pairs, want %d", len(got), len(want))
			}
		}()
	}
	wg.Wait()
}

// newLazyJaccard wires a verifier to a live lazily-filling minhash
// store via Params.Ensure — the configuration the engine uses, where
// verification workers trigger concurrent signature fills.
func newLazyJaccard(t *testing.T, c *vector.Collection, cands []pair.Pair, th float64) *JaccardVerifier {
	t.Helper()
	store := minhash.NewStore(c, minhash.NewFamily(512, 1000), 32)
	prior := FitJaccardPrior(c, cands, 100, 2000)
	v, err := NewJaccard(store.Sigs(), prior, Params{
		Threshold: th, Epsilon: 0.03, Delta: 0.05, Gamma: 0.05,
		Ensure: store.Ensure,
	})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestVerifyParallelWithEnsure runs the parallel path against a live
// lazily-filling signature store, the configuration the engine uses.
func TestVerifyParallelWithEnsure(t *testing.T) {
	c, cands, _ := jaccardSetup(t, 300, 11, 0.5)
	seq := newLazyJaccard(t, c, cands, 0.5)
	par := newLazyJaccard(t, c, cands, 0.5)
	seqR, seqS := seq.Verify(cands)
	parR, parS := par.VerifyParallel(cands, 4, 32)
	requireSameVerification(t, seqR, parR, seqS, parS)
}
