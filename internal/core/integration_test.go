package core

import (
	"math"
	"testing"

	"bayeslsh/internal/allpairs"
	"bayeslsh/internal/exact"
	"bayeslsh/internal/minhash"
	"bayeslsh/internal/pair"
	"bayeslsh/internal/sighash"
	"bayeslsh/internal/stats"
	"bayeslsh/internal/testutil"
	"bayeslsh/internal/vector"
)

// jaccardSetup builds candidates and a verifier for a binary corpus.
func jaccardSetup(t *testing.T, n int, seed uint64, th float64) (*vector.Collection, []pair.Pair, *JaccardVerifier) {
	t.Helper()
	c := testutil.SmallBinaryCorpus(t, n, seed)
	cands, err := allpairs.CandidatesMeasure(c, exact.Jaccard, th)
	if err != nil {
		t.Fatal(err)
	}
	fam := minhash.NewFamily(512, seed+1000)
	sigs := fam.SignatureAll(c)
	prior := FitJaccardPrior(c, cands, 100, seed+2000)
	v, err := NewJaccard(sigs, prior, Params{
		Threshold: th, Epsilon: 0.03, Delta: 0.05, Gamma: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, cands, v
}

func TestJaccardBayesLSHRecallAndAccuracy(t *testing.T) {
	th := 0.5
	c, cands, v := jaccardSetup(t, 400, 31, th)
	truth := exact.Search(c, exact.Jaccard, th)
	if len(truth) < 20 {
		t.Fatalf("only %d true pairs; corpus too sparse for the test", len(truth))
	}
	out, st := v.Verify(cands)

	// Guarantee 1 (recall): the paper reports recall >= ~97% at ε=0.03.
	recall := testutil.Recall(out, truth)
	if recall < 0.93 {
		t.Errorf("recall = %v, want >= 0.93", recall)
	}

	// Guarantee 2 (accuracy): estimates within δ of truth except with
	// probability ~γ. Allow sampling slack: <= 3γ of output pairs off
	// by more than δ.
	bad, total := 0, 0
	for _, r := range out {
		s := vector.Jaccard(c.Vecs[r.A], c.Vecs[r.B])
		total++
		if math.Abs(s-r.Sim) >= 0.05 {
			bad++
		}
	}
	if total == 0 {
		t.Fatal("no output pairs")
	}
	if frac := float64(bad) / float64(total); frac > 0.15 {
		t.Errorf("%v of estimates off by >= δ, want <= 0.15", frac)
	}

	// Accounting must balance (AllPairs' binary candidate sets are
	// already clean — §5.2 point 7 of the paper — so most candidates
	// legitimately survive here; pruning power is asserted on noisy
	// LSH candidates in TestPruningEffectivenessOnNoisyCandidates).
	if st.Pruned+st.Accepted != st.Candidates {
		t.Errorf("accounting broken: %+v", st)
	}
}

func TestPruningEffectivenessOnNoisyCandidates(t *testing.T) {
	// Feed BayesLSH a candidate set dominated by false positives (all
	// pairs among a random subset) and verify that the vast majority
	// is pruned within a few rounds — the paper's Figure 4 behaviour.
	th := 0.5
	c, _, v := jaccardSetup(t, 300, 36, th)
	var cands []pair.Pair
	for i := int32(0); i < 150; i++ {
		for j := i + 1; j < 150; j++ {
			cands = append(cands, pair.Make(i, j))
		}
	}
	truth := exact.Search(c, exact.Jaccard, th)
	out, st := v.Verify(cands)
	if st.Pruned < int(0.9*float64(st.Candidates)) {
		t.Errorf("pruned only %d of %d noisy candidates", st.Pruned, st.Candidates)
	}
	// Pruning must not hurt recall on the pairs present in the batch.
	tm := testutil.ResultKeySet(truth)
	inBatch := 0
	for _, p := range cands {
		if _, ok := tm[p.Key()]; ok {
			inBatch++
		}
	}
	om := testutil.ResultKeySet(out)
	hit := 0
	for _, p := range cands {
		if _, ok := tm[p.Key()]; !ok {
			continue
		}
		if _, ok := om[p.Key()]; ok {
			hit++
		}
	}
	if inBatch > 0 && float64(hit)/float64(inBatch) < 0.9 {
		t.Errorf("noisy-batch recall %d/%d too low", hit, inBatch)
	}
	// The bulk of pruning happens in the first round: survivors after
	// round 0 should already be a small fraction of candidates.
	if st.SurvivorsByRound[0] > st.Candidates/2 {
		t.Errorf("first round left %d of %d candidates alive",
			st.SurvivorsByRound[0], st.Candidates)
	}
}

func TestJaccardLiteMatchesExactOnSurvivors(t *testing.T) {
	th := 0.5
	c, cands, v := jaccardSetup(t, 400, 32, th)
	truth := exact.Search(c, exact.Jaccard, th)
	out, st := v.VerifyLite(cands, 64, func(a, b int32) float64 {
		return vector.Jaccard(c.Vecs[a], c.Vecs[b])
	})
	// Lite similarities are exact: every output pair must be a true
	// positive with the exact similarity.
	tm := testutil.ResultKeySet(truth)
	for _, r := range out {
		ts, ok := tm[r.Pair().Key()]
		if !ok {
			t.Fatalf("Lite emitted false positive %d-%d (sim %v)", r.A, r.B, r.Sim)
		}
		if math.Abs(ts-r.Sim) > 1e-12 {
			t.Fatalf("Lite similarity %v differs from exact %v", r.Sim, ts)
		}
	}
	if recall := testutil.Recall(out, truth); recall < 0.93 {
		t.Errorf("Lite recall = %v, want >= 0.93", recall)
	}
	if st.ExactVerified == 0 || st.ExactVerified > st.Candidates-st.Pruned {
		t.Errorf("ExactVerified accounting wrong: %+v", st)
	}
}

// cosineSetup builds candidates and a verifier for a weighted corpus.
func cosineSetup(t *testing.T, n int, seed uint64, th float64) (*vector.Collection, []pair.Pair, *CosineVerifier) {
	t.Helper()
	c := testutil.SmallTextCorpus(t, n, seed)
	cands, err := allpairs.Candidates(c, th)
	if err != nil {
		t.Fatal(err)
	}
	fam := sighash.NewFamily(c.Dim, 2048, seed+1000)
	sigs := fam.SignatureAll(c)
	v, err := NewCosine(sigs, 2048, Params{
		Threshold: th, Epsilon: 0.03, Delta: 0.05, Gamma: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, cands, v
}

func TestCosineBayesLSHRecallAndAccuracy(t *testing.T) {
	th := 0.6
	c, cands, v := cosineSetup(t, 400, 33, th)
	truth := exact.Search(c, exact.Cosine, th)
	if len(truth) < 20 {
		t.Fatalf("only %d true pairs; corpus too sparse for the test", len(truth))
	}
	out, st := v.Verify(cands)

	if recall := testutil.Recall(out, truth); recall < 0.93 {
		t.Errorf("recall = %v, want >= 0.93", recall)
	}
	bad, total := 0, 0
	for _, r := range out {
		s := vector.Cosine(c.Vecs[r.A], c.Vecs[r.B])
		total++
		if math.Abs(s-r.Sim) >= 0.05 {
			bad++
		}
	}
	if total == 0 {
		t.Fatal("no output pairs")
	}
	if frac := float64(bad) / float64(total); frac > 0.15 {
		t.Errorf("%v of cosine estimates off by >= δ", frac)
	}
	if st.Pruned < int(0.5*float64(st.Candidates)) {
		t.Errorf("pruned only %d of %d candidates", st.Pruned, st.Candidates)
	}
}

func TestCosineLiteMatchesExactOnSurvivors(t *testing.T) {
	th := 0.6
	c, cands, v := cosineSetup(t, 400, 34, th)
	truth := exact.Search(c, exact.Cosine, th)
	out, _ := v.VerifyLite(cands, 128, func(a, b int32) float64 {
		return vector.Cosine(c.Vecs[a], c.Vecs[b])
	})
	tm := testutil.ResultKeySet(truth)
	for _, r := range out {
		if _, ok := tm[r.Pair().Key()]; !ok {
			t.Fatalf("Lite emitted false positive %d-%d (sim %v)", r.A, r.B, r.Sim)
		}
	}
	if recall := testutil.Recall(out, truth); recall < 0.93 {
		t.Errorf("Lite recall = %v, want >= 0.93", recall)
	}
}

func TestCosineEstimateMapsRSpaceCorrectly(t *testing.T) {
	sigs := [][]uint64{make([]uint64, 32), make([]uint64, 32)}
	v, err := NewCosine(sigs, 2048, Params{Threshold: 0.7, Epsilon: 0.03, Delta: 0.05, Gamma: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	// All hashes agree → r = 1 → cosine 1.
	if got := v.Estimate(128, 128); math.Abs(got-1) > 1e-12 {
		t.Errorf("Estimate(n,n) = %v, want 1", got)
	}
	// Half agree → r clamped to 0.5 → cosine 0.
	if got := v.Estimate(64, 128); math.Abs(got) > 1e-12 {
		t.Errorf("Estimate(n/2,n) = %v, want 0", got)
	}
	// Below half still clamps to 0.
	if got := v.Estimate(10, 128); math.Abs(got) > 1e-12 {
		t.Errorf("Estimate(m<n/2) = %v, want 0", got)
	}
	// r = 0.75 → cosine cos(π/4).
	if got, want := v.Estimate(96, 128), math.Cos(math.Pi/4); math.Abs(got-want) > 1e-12 {
		t.Errorf("Estimate(0.75n, n) = %v, want %v", got, want)
	}
}

func TestCosineProbAboveThresholdBehaves(t *testing.T) {
	sigs := [][]uint64{make([]uint64, 32), make([]uint64, 32)}
	v, err := NewCosine(sigs, 2048, Params{Threshold: 0.7, Epsilon: 0.03, Delta: 0.05, Gamma: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	// Monotone in m.
	prev := -1.0
	for m := 0; m <= 128; m += 8 {
		p := v.probAboveThreshold(m, 128)
		if p < prev-1e-12 {
			t.Fatalf("probAboveThreshold not monotone at m=%d: %v < %v", m, p, prev)
		}
		if p < 0 || p > 1+1e-12 {
			t.Fatalf("probAboveThreshold out of range at m=%d: %v", m, p)
		}
		prev = p
	}
	// Extreme disagreement underflows cleanly to 0.
	if p := v.probAboveThreshold(0, 2048); p != 0 {
		t.Errorf("prob with zero matches over 2048 hashes = %v, want 0", p)
	}
}

func TestFitJaccardPriorFallsBackAndLearns(t *testing.T) {
	c := testutil.SmallBinaryCorpus(t, 200, 35)
	if got := FitJaccardPrior(c, nil, 50, 1); got != (stats.Beta{Alpha: 1, Beta: 1}) {
		t.Errorf("no candidates should give uniform, got %v", got)
	}
	cands, err := allpairs.CandidatesMeasure(c, exact.Jaccard, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	prior := FitJaccardPrior(c, cands, 200, 1)
	if !prior.Valid() {
		t.Errorf("learned prior invalid: %v", prior)
	}
	// Candidate similarities skew low, so the prior mean should be
	// well below 0.5 on this corpus.
	if prior.Mean() > 0.6 {
		t.Errorf("prior mean = %v, expected low", prior.Mean())
	}
}

func TestPriorSwampedByData(t *testing.T) {
	// Appendix (Figure 5): very different priors give nearly identical
	// posteriors once a few hundred hashes are observed. Compare the
	// posterior Pr[S >= t] under two extreme Beta priors.
	sharp := stats.Beta{Alpha: 9, Beta: 1} // mass near 1
	flat := stats.Beta{Alpha: 1, Beta: 9}  // mass near 0
	sf := func(prior stats.Beta, m, n int) float64 {
		return (stats.Beta{Alpha: float64(m) + prior.Alpha, Beta: float64(n-m) + prior.Beta}).SF(0.7)
	}
	// The gap between the two posteriors must shrink as data grows.
	gap128 := math.Abs(sf(sharp, 96, 128) - sf(flat, 96, 128))
	gap512 := math.Abs(sf(sharp, 384, 512) - sf(flat, 384, 512))
	gap5120 := math.Abs(sf(sharp, 3840, 5120) - sf(flat, 3840, 5120))
	if !(gap512 < gap128 && gap5120 < gap512) {
		t.Errorf("posterior gap not shrinking: %v, %v, %v", gap128, gap512, gap5120)
	}
	if gap512 > 0.25 {
		t.Errorf("posteriors too far apart after 512 hashes: gap %v", gap512)
	}
	if gap5120 > 0.02 {
		t.Errorf("posteriors still apart after 5120 hashes: gap %v", gap5120)
	}
}
