package core

import (
	"testing"

	"bayeslsh/internal/pair"
	"bayeslsh/internal/rng"
	"bayeslsh/internal/sighash"
	"bayeslsh/internal/vector"
)

// TestLazyHashingOnlyDeepensForSurvivors wires a CosineVerifier to a
// lazy signature store and checks the paper's claim that pruned pairs
// never force deep hashing: vectors appearing only in clearly
// dissimilar pairs must stay at one block of hashes, while accepted
// pairs' vectors are hashed deeper.
func TestLazyHashingOnlyDeepensForSurvivors(t *testing.T) {
	src := rng.New(5)
	const dim = 256
	dense := func(seed vector.Vector, mutate int) vector.Vector {
		if mutate == 0 {
			return seed.Clone()
		}
		out := seed.Clone()
		for i := 0; i < mutate; i++ {
			out.Val[src.Intn(out.Len())] = src.NormFloat64()
		}
		return out
	}
	var base vector.Vector
	{
		var es []vector.Entry
		for i := 0; i < 64; i++ {
			es = append(es, vector.Entry{Ind: uint32(i), Val: src.NormFloat64()})
		}
		base = vector.New(es)
	}
	other := func() vector.Vector {
		var es []vector.Entry
		for i := 0; i < 64; i++ {
			es = append(es, vector.Entry{Ind: uint32(i + 128), Val: src.NormFloat64()})
		}
		return vector.New(es)
	}
	c := &vector.Collection{Dim: dim, Vecs: []vector.Vector{
		base,           // 0
		dense(base, 2), // 1: very similar to 0 → accepted
		other(),        // 2: disjoint support → pruned round 1
		other(),        // 3: disjoint support → pruned round 1
	}}
	store := sighash.NewStore(c, sighash.NewBlockFamily(dim, 1024, 128, 9))
	v, err := NewCosine(store.Sigs(), store.MaxBits(), Params{
		Threshold: 0.9, Epsilon: 0.03, Delta: 0.02, Gamma: 0.03,
		Ensure: store.Ensure,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, st := v.Verify([]pair.Pair{pair.Make(0, 1), pair.Make(2, 3)})
	if len(out) != 1 || out[0].Pair() != pair.Make(0, 1) {
		t.Fatalf("expected only the similar pair accepted, got %v (stats %+v)", out, st)
	}
	// The dissimilar pair's vectors must have been hashed one block
	// only; the similar pair needed more for the tight δ=0.02.
	if got := store.FilledBits(2); got != 128 {
		t.Errorf("pruned vector hashed to %d bits, want 128", got)
	}
	if got := store.FilledBits(3); got != 128 {
		t.Errorf("pruned vector hashed to %d bits, want 128", got)
	}
	if got := store.FilledBits(0); got <= 128 {
		t.Errorf("accepted vector hashed to only %d bits", got)
	}
}

// TestVerifyWithAndWithoutEnsureAgree: the Ensure hook must not change
// results, only when hashing happens.
func TestVerifyWithAndWithoutEnsureAgree(t *testing.T) {
	src := rng.New(11)
	const dim = 128
	c := &vector.Collection{Dim: dim}
	for i := 0; i < 30; i++ {
		var es []vector.Entry
		for j := 0; j < 32; j++ {
			es = append(es, vector.Entry{Ind: uint32(src.Intn(dim)), Val: src.NormFloat64()})
		}
		c.Vecs = append(c.Vecs, vector.New(es))
	}
	var cands []pair.Pair
	for i := int32(0); i < 30; i++ {
		for j := i + 1; j < 30; j++ {
			cands = append(cands, pair.Make(i, j))
		}
	}
	params := Params{Threshold: 0.6, Epsilon: 0.03, Delta: 0.05, Gamma: 0.05}

	lazyStore := sighash.NewStore(c, sighash.NewBlockFamily(dim, 512, 128, 21))
	lazyParams := params
	lazyParams.Ensure = lazyStore.Ensure
	lazyV, err := NewCosine(lazyStore.Sigs(), lazyStore.MaxBits(), lazyParams)
	if err != nil {
		t.Fatal(err)
	}
	lazyOut, _ := lazyV.Verify(cands)

	eagerStore := sighash.NewStore(c, sighash.NewBlockFamily(dim, 512, 128, 21))
	eagerStore.EnsureAll(512)
	eagerV, err := NewCosine(eagerStore.Sigs(), eagerStore.MaxBits(), params)
	if err != nil {
		t.Fatal(err)
	}
	eagerOut, _ := eagerV.Verify(cands)

	if len(lazyOut) != len(eagerOut) {
		t.Fatalf("lazy %d results, eager %d", len(lazyOut), len(eagerOut))
	}
	for i := range lazyOut {
		if lazyOut[i] != eagerOut[i] {
			t.Fatalf("result %d differs: %v vs %v", i, lazyOut[i], eagerOut[i])
		}
	}
}
