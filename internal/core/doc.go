// Package core implements BayesLSH and BayesLSH-Lite, the paper's
// contribution (§4): Bayesian candidate pruning and similarity
// estimation over LSH hash comparisons.
//
// # The round loop (Algorithms 1 and 2)
//
// Given candidate pairs from any generation algorithm, a verifier
// compares the pairs' hashes k at a time. After each round it knows
// the event M(m, n) — m of the first n hashes matched — and uses the
// posterior distribution of the similarity S to decide between three
// outcomes:
//
//   - prune, if Pr[S >= t | M(m, n)] < ε (Equation 3: the pair is very
//     unlikely to be a true positive);
//   - accept with the MAP estimate Ŝ (Equation 4), if
//     Pr[|S − Ŝ| < δ | M(m, n)] >= 1 − γ (Equation 6: the estimate is
//     concentrated enough) — BayesLSH, Algorithm 1;
//   - keep comparing hashes.
//
// BayesLSH-Lite (Algorithm 2) replaces the concentration test with a
// fixed budget of h hashes, after which survivors are verified
// exactly.
//
// # Instantiations
//
// Three instantiations are provided: Jaccard (package-level minhash
// signatures, conjugate Beta prior, §4.1), Cosine (packed bit
// signatures from random hyperplanes, uniform prior over the collision
// probability r ∈ [0.5, 1], §4.2), and 1-bit minwise Jaccard (the §6
// extension direction, following Li and König's b-bit minhash with
// b = 1). All three share one measure-independent round-loop kernel
// and implement the §4.3 optimizations: a precomputed minMatches(n)
// table replacing the pruning inference, and an (m, n)-indexed cache
// for the concentration inference.
//
// # Concurrency
//
// Verifiers are safe for concurrent use, and every verifier offers
// VerifyParallel/VerifyLiteParallel: candidates flow to a pool of
// workers in batches, each batch accumulates its own results and
// statistics, and batches are merged in input order. Because the
// per-pair decision is a pure function of the pair's hash matches
// (the concentration cache is idempotent and accessed atomically),
// the parallel result set is identical to the sequential one for any
// worker count — the property that makes the engine's sharded
// pipeline deterministic under a fixed seed.
package core
