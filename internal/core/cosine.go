package core

import (
	"fmt"

	"bayeslsh/internal/pair"
	"bayeslsh/internal/sighash"
	"bayeslsh/internal/stats"
)

// CosineVerifier is the §4.2 instantiation of BayesLSH: packed
// random-hyperplane bit signatures and a uniform prior over the
// collision probability r = 1 − θ/π ∈ [0.5, 1]. All inference happens
// in r-space — the posterior after M(m, n) is proportional to
// r^m (1−r)^(n−m) truncated to [0.5, 1] — and results are transformed
// back to cosine space with r2c(r) = cos(π(1−r)).
type CosineVerifier struct {
	params Params
	sigs   [][]uint64
	tr     float64 // threshold mapped to r-space
	ns     []int
	minM   []int
	conc   *concCache
}

// NewCosine builds a verifier over packed bit signatures of at least
// p.MaxHashes bits (sigBits is the usable signature length in bits).
func NewCosine(sigs [][]uint64, sigBits int, p Params) (*CosineVerifier, error) {
	if len(sigs) == 0 {
		return nil, fmt.Errorf("core: no signatures")
	}
	params, err := p.withDefaults(sigBits)
	if err != nil {
		return nil, err
	}
	for i, s := range sigs {
		if len(s)*64 < params.MaxHashes {
			return nil, fmt.Errorf("core: signature %d has %d bits, need %d", i, len(s)*64, params.MaxHashes)
		}
	}
	v := &CosineVerifier{
		params: params,
		sigs:   sigs,
		tr:     sighash.CosineToR(params.Threshold),
		ns:     rounds(params),
	}
	v.minM = minMatchesTable(v.ns, func(m, n int) bool {
		return v.probAboveThreshold(m, n) >= params.Epsilon
	})
	v.conc = newConcCache(v.ns, params.K)
	return v, nil
}

// Params returns the validated parameters in effect.
func (v *CosineVerifier) Params() Params { return v.params }

// upperTail returns Pr[R >= x] under the untruncated Beta(m+1, n−m+1)
// law, computed as I_{1−x}(n−m+1, m+1) to avoid the cancellation of
// 1 − I_x(·) when the tail is tiny.
func upperTail(x float64, m, n int) float64 {
	return stats.RegIncBeta(1-x, float64(n-m+1), float64(m+1))
}

// probAboveThreshold computes Pr[S >= t | M(m, n)] (Equation 3 for the
// cosine instantiation):
//
//	(B₁ − B_tr) / (B₁ − B_0.5)  with B_x = B_x(m+1, n−m+1),
//
// i.e. the ratio of upper tails at tr and at 0.5 of the truncated
// posterior.
func (v *CosineVerifier) probAboveThreshold(m, n int) float64 {
	den := upperTail(0.5, m, n)
	if den <= 0 {
		// The posterior mass on [0.5, 1] has underflowed entirely;
		// such a pair is nowhere near the threshold.
		return 0
	}
	return upperTail(v.tr, m, n) / den
}

// Estimate returns the MAP cosine estimate after M(m, n) (Equation 4):
// R̂ = m/n clamped to the support [0.5, 1], transformed by r2c.
func (v *CosineVerifier) Estimate(m, n int) float64 {
	r := float64(m) / float64(n)
	if r < 0.5 {
		r = 0.5
	}
	if r > 1 {
		r = 1
	}
	return sighash.RToCosine(r)
}

// concentrated reports whether Pr[|S − Ŝ| < δ | M(m, n)] >= 1 − γ
// (Equation 6 for the cosine instantiation), evaluated in r-space as
// (B_{c2r(Ŝ+δ)} − B_{c2r(Ŝ−δ)}) / (B₁ − B_0.5).
func (v *CosineVerifier) concentrated(m, n int) bool {
	den := upperTail(0.5, m, n)
	if den <= 0 {
		return true // degenerate; the pair will have been pruned
	}
	est := v.Estimate(m, n)
	lo := sighash.CosineToR(est - v.params.Delta)
	hi := sighash.CosineToR(est + v.params.Delta)
	if lo < 0.5 {
		lo = 0.5
	}
	num := upperTail(lo, m, n) - upperTail(hi, m, n)
	return num/den >= 1-v.params.Gamma
}

// Verify runs BayesLSH (Algorithm 1) over the candidate pairs.
func (v *CosineVerifier) Verify(cands []pair.Pair) ([]pair.Result, Stats) {
	st := Stats{Candidates: len(cands), SurvivorsByRound: make([]int, len(v.ns))}
	out := make([]pair.Result, 0, len(cands)/8+1)
	k := v.params.K
	for _, c := range cands {
		a, b := v.sigs[c.A], v.sigs[c.B]
		m := 0
		pruned := false
		accepted := false
		for round, n := range v.ns {
			if ensure := v.params.Ensure; ensure != nil {
				ensure(c.A, n)
				ensure(c.B, n)
			}
			m += sighash.MatchCount(a, b, n-k, n)
			st.HashesCompared += int64(k)
			if m < v.minM[round] {
				pruned = true
				st.Pruned++
				break
			}
			st.SurvivorsByRound[round]++
			if cached, ok := v.conc.lookup(round, m); ok {
				st.CacheHits++
				accepted = cached
			} else {
				st.InferenceCalls++
				cv := v.concentrated(m, n)
				v.conc.store(round, m, cv)
				accepted = cv
			}
			if accepted {
				out = append(out, pair.Result{A: c.A, B: c.B, Sim: v.Estimate(m, n)})
				for r := round + 1; r < len(v.ns); r++ {
					st.SurvivorsByRound[r]++
				}
				break
			}
		}
		if !pruned && !accepted {
			out = append(out, pair.Result{A: c.A, B: c.B, Sim: v.Estimate(m, v.params.MaxHashes)})
		}
	}
	st.Accepted = len(out)
	return out, st
}

// VerifyLite runs BayesLSH-Lite (Algorithm 2): prune within the first
// h hashes, then compute exact similarities for survivors.
func (v *CosineVerifier) VerifyLite(cands []pair.Pair, h int, sim ExactSimFunc) ([]pair.Result, Stats) {
	nRounds := liteRounds(h, v.params.K, len(v.ns))
	st := Stats{Candidates: len(cands), SurvivorsByRound: make([]int, nRounds)}
	var out []pair.Result
	k := v.params.K
	for _, c := range cands {
		a, b := v.sigs[c.A], v.sigs[c.B]
		m := 0
		pruned := false
		for round := 0; round < nRounds; round++ {
			n := v.ns[round]
			if ensure := v.params.Ensure; ensure != nil {
				ensure(c.A, n)
				ensure(c.B, n)
			}
			m += sighash.MatchCount(a, b, n-k, n)
			st.HashesCompared += int64(k)
			if m < v.minM[round] {
				pruned = true
				st.Pruned++
				break
			}
			st.SurvivorsByRound[round]++
		}
		if pruned {
			continue
		}
		st.ExactVerified++
		if s := sim(c.A, c.B); s >= v.params.Threshold {
			out = append(out, pair.Result{A: c.A, B: c.B, Sim: s})
		}
	}
	st.Accepted = len(out)
	return out, st
}
