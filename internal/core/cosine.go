package core

import (
	"fmt"

	"bayeslsh/internal/pair"
	"bayeslsh/internal/sighash"
	"bayeslsh/internal/stats"
)

// CosineVerifier is the §4.2 instantiation of BayesLSH: packed
// random-hyperplane bit signatures and a uniform prior over the
// collision probability r = 1 − θ/π ∈ [0.5, 1]. All inference happens
// in r-space — the posterior after M(m, n) is proportional to
// r^m (1−r)^(n−m) truncated to [0.5, 1] — and results are transformed
// back to cosine space with r2c(r) = cos(π(1−r)).
type CosineVerifier struct {
	params Params
	sigs   [][]uint64
	tr     float64 // threshold mapped to r-space
	k      *kernel
}

// NewCosine builds a verifier over packed bit signatures of at least
// p.MaxHashes bits (sigBits is the usable signature length in bits).
func NewCosine(sigs [][]uint64, sigBits int, p Params) (*CosineVerifier, error) {
	if len(sigs) == 0 {
		return nil, fmt.Errorf("core: no signatures")
	}
	params, err := p.withDefaults(sigBits)
	if err != nil {
		return nil, err
	}
	for i, s := range sigs {
		if len(s)*64 < params.MaxHashes {
			return nil, fmt.Errorf("core: signature %d has %d bits, need %d", i, len(s)*64, params.MaxHashes)
		}
	}
	v := &CosineVerifier{
		params: params,
		sigs:   sigs,
		tr:     sighash.CosineToR(params.Threshold),
	}
	v.k = newKernel(params,
		func(m, n int) bool { return v.probAboveThreshold(m, n) >= params.Epsilon },
		func(a, b int32, from, to int) int { return sighash.MatchCount(sigs[a], sigs[b], from, to) },
		v.Estimate,
		v.concentrated,
	)
	return v, nil
}

// Params returns the validated parameters in effect.
func (v *CosineVerifier) Params() Params { return v.params }

// upperTail returns Pr[R >= x] under the untruncated Beta(m+1, n−m+1)
// law, computed as I_{1−x}(n−m+1, m+1) to avoid the cancellation of
// 1 − I_x(·) when the tail is tiny.
func upperTail(x float64, m, n int) float64 {
	return stats.RegIncBeta(1-x, float64(n-m+1), float64(m+1))
}

// probAboveThreshold computes Pr[S >= t | M(m, n)] (Equation 3 for the
// cosine instantiation):
//
//	(B₁ − B_tr) / (B₁ − B_0.5)  with B_x = B_x(m+1, n−m+1),
//
// i.e. the ratio of upper tails at tr and at 0.5 of the truncated
// posterior.
func (v *CosineVerifier) probAboveThreshold(m, n int) float64 {
	den := upperTail(0.5, m, n)
	if den <= 0 {
		// The posterior mass on [0.5, 1] has underflowed entirely;
		// such a pair is nowhere near the threshold.
		return 0
	}
	return upperTail(v.tr, m, n) / den
}

// Estimate returns the MAP cosine estimate after M(m, n) (Equation 4):
// R̂ = m/n clamped to the support [0.5, 1], transformed by r2c.
func (v *CosineVerifier) Estimate(m, n int) float64 {
	r := float64(m) / float64(n)
	if r < 0.5 {
		r = 0.5
	}
	if r > 1 {
		r = 1
	}
	return sighash.RToCosine(r)
}

// concentrated reports whether Pr[|S − Ŝ| < δ | M(m, n)] >= 1 − γ
// (Equation 6 for the cosine instantiation), evaluated in r-space as
// (B_{c2r(Ŝ+δ)} − B_{c2r(Ŝ−δ)}) / (B₁ − B_0.5).
func (v *CosineVerifier) concentrated(m, n int) bool {
	den := upperTail(0.5, m, n)
	if den <= 0 {
		return true // degenerate; the pair will have been pruned
	}
	est := v.Estimate(m, n)
	lo := sighash.CosineToR(est - v.params.Delta)
	hi := sighash.CosineToR(est + v.params.Delta)
	if lo < 0.5 {
		lo = 0.5
	}
	num := upperTail(lo, m, n) - upperTail(hi, m, n)
	return num/den >= 1-v.params.Gamma
}

// Verify runs BayesLSH (Algorithm 1) over the candidate pairs.
func (v *CosineVerifier) Verify(cands []pair.Pair) ([]pair.Result, Stats) {
	return v.k.verify(cands)
}

// VerifyLite runs BayesLSH-Lite (Algorithm 2): prune within the first
// h hashes, then compute exact similarities for survivors.
func (v *CosineVerifier) VerifyLite(cands []pair.Pair, h int, sim ExactSimFunc) ([]pair.Result, Stats) {
	return v.k.verifyLite(cands, h, sim)
}

// VerifyParallel runs BayesLSH over a pool of workers goroutines in
// batches of batch pairs, producing the same results as Verify.
func (v *CosineVerifier) VerifyParallel(cands []pair.Pair, workers, batch int) ([]pair.Result, Stats) {
	return v.k.verifyParallel(cands, workers, batch)
}

// VerifyLiteParallel runs BayesLSH-Lite over a pool of workers
// goroutines, producing the same results as VerifyLite.
func (v *CosineVerifier) VerifyLiteParallel(cands []pair.Pair, h int, sim ExactSimFunc, workers, batch int) ([]pair.Result, Stats) {
	return v.k.verifyLiteParallel(cands, h, sim, workers, batch)
}
