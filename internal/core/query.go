package core

import (
	"bayeslsh/internal/minhash"
	"bayeslsh/internal/pair"
	"bayeslsh/internal/shard"
	"bayeslsh/internal/sighash"
)

// One-sided verification: the batch verifiers compare the signatures
// of two corpus vectors; the query-serving path compares one
// out-of-corpus query signature against corpus signatures. The round
// loop, pruning table and concentration cache are identical — only
// the match hook changes — so for a query whose signature equals
// corpus vector i's, every per-candidate decision (prune round, accept
// round, estimate) is bit-identical to the batch verification of the
// corresponding pair.

// QuerySig carries a query's signature in whichever representation
// the verifier compares: packed bits (cosine and 1-bit Jaccard) or
// minhashes (Jaccard). Exactly one field is consulted per verifier.
type QuerySig struct {
	Bits []uint64
	Min  []uint32
}

// QuerySimFunc computes the exact similarity of the query to corpus
// vector id; it is supplied to Lite query verification by the caller.
type QuerySimFunc func(id int32) float64

// QueryVerifier extends Verifier with the one-sided (query versus
// corpus) verification entry points. All verifiers in this package
// implement it; query calls are safe concurrently with each other and
// with batch Verify calls.
type QueryVerifier interface {
	Verifier
	// Params returns the validated parameters in effect.
	Params() Params
	// VerifyQuery runs the BayesLSH round loop (Algorithm 1) for the
	// query signature against each candidate corpus id, returning
	// accepted hits in candidate order.
	VerifyQuery(q QuerySig, ids []int32) ([]pair.Hit, Stats)
	// VerifyQueryLite runs the pruning rounds of BayesLSH-Lite
	// (Algorithm 2) within the first h hashes, then verifies survivors
	// exactly with sim, keeping hits with similarity >= t.
	VerifyQueryLite(q QuerySig, ids []int32, h int, sim QuerySimFunc) ([]pair.Hit, Stats)
	// VerifyQueryStop is VerifyQuery with cooperative cancellation:
	// stop (nil for "not cancelable") is polled between candidates and
	// between rounds; once it trips, partial output is discarded and
	// stop.Err() is returned.
	VerifyQueryStop(q QuerySig, ids []int32, stop *shard.Stopper) ([]pair.Hit, Stats, error)
	// VerifyQueryLiteStop is VerifyQueryLite with cooperative
	// cancellation, under the VerifyQueryStop contract.
	VerifyQueryLiteStop(q QuerySig, ids []int32, h int, sim QuerySimFunc, stop *shard.Stopper) ([]pair.Hit, Stats, error)
}

// stopResultHits discards partial query output once the stopper has
// tripped, so a canceled query never returns a half-verified hit list.
func stopResultHits(hits []pair.Hit, st Stats, stop *shard.Stopper) ([]pair.Hit, Stats, error) {
	if stop.Stopped() {
		return nil, Stats{}, stop.Err()
	}
	return hits, st, nil
}

// verifyQueryOne runs the full round loop for one candidate id against
// the query, mirroring verifyOne with qmatch in place of the two-sided
// match hook. Only the corpus side goes through params.Ensure; the
// query signature is precomputed to MaxHashes by the caller. stop
// (nil for "not cancelable") follows the verifyOne contract: polled
// between rounds, output discarded by the caller on cancellation.
func (kr *kernel) verifyQueryOne(id int32, qmatch func(id int32, from, to int) int, stop *shard.Stopper, st *Stats, out *[]pair.Hit) {
	k := kr.params.K
	m := 0
	pruned := false
	accepted := false
	for round, n := range kr.ns {
		if stop.Stopped() {
			return
		}
		if ensure := kr.params.Ensure; ensure != nil {
			ensure(id, n)
		}
		m += qmatch(id, n-k, n)
		st.HashesCompared += int64(k)
		if m < kr.minM[round] {
			pruned = true
			st.Pruned++
			break
		}
		st.SurvivorsByRound[round]++
		if cached, ok := kr.conc.lookup(round, m); ok {
			st.CacheHits++
			accepted = cached
		} else {
			st.InferenceCalls++
			cv := kr.concentrated(m, n)
			kr.conc.store(round, m, cv)
			accepted = cv
		}
		if accepted {
			*out = append(*out, pair.Hit{ID: id, Sim: kr.estimate(m, n)})
			for r := round + 1; r < len(kr.ns); r++ {
				st.SurvivorsByRound[r]++
			}
			break
		}
	}
	if !pruned && !accepted {
		*out = append(*out, pair.Hit{ID: id, Sim: kr.estimate(m, kr.params.MaxHashes)})
	}
}

// verifyQuery runs the one-sided BayesLSH loop over all candidate ids.
// stop is polled between candidates and rounds; on cancellation the
// partial output must be discarded by the caller (VerifyQueryStop
// does).
func (kr *kernel) verifyQuery(ids []int32, qmatch func(id int32, from, to int) int, stop *shard.Stopper) ([]pair.Hit, Stats) {
	st := Stats{Candidates: len(ids), SurvivorsByRound: make([]int, len(kr.ns))}
	out := make([]pair.Hit, 0, len(ids)/8+1)
	for _, id := range ids {
		if stop.Stopped() {
			break
		}
		kr.verifyQueryOne(id, qmatch, stop, &st, &out)
	}
	st.Accepted = len(out)
	return out, st
}

// verifyQueryLite runs the one-sided pruning rounds, then exact
// verification of survivors. stop follows the verifyQuery contract.
func (kr *kernel) verifyQueryLite(ids []int32, h int, qmatch func(id int32, from, to int) int, sim QuerySimFunc, stop *shard.Stopper) ([]pair.Hit, Stats) {
	k := kr.params.K
	nRounds := liteRounds(h, k, len(kr.ns))
	st := Stats{Candidates: len(ids), SurvivorsByRound: make([]int, nRounds)}
	var out []pair.Hit
	for _, id := range ids {
		if stop.Stopped() {
			break
		}
		m := 0
		survived := true
		for round := 0; round < nRounds; round++ {
			if stop.Stopped() {
				// Abandon mid-candidate; the caller discards the
				// partial output (stopResultHits).
				st.Accepted = len(out)
				return out, st
			}
			n := kr.ns[round]
			if ensure := kr.params.Ensure; ensure != nil {
				ensure(id, n)
			}
			m += qmatch(id, n-k, n)
			st.HashesCompared += int64(k)
			if m < kr.minM[round] {
				st.Pruned++
				survived = false
				break
			}
			st.SurvivorsByRound[round]++
		}
		if !survived {
			continue
		}
		st.ExactVerified++
		if s := sim(id); s >= kr.params.Threshold {
			out = append(out, pair.Hit{ID: id, Sim: s})
		}
	}
	st.Accepted = len(out)
	return out, st
}

// qmatch builds the Jaccard one-sided match hook.
func (v *JaccardVerifier) qmatch(q QuerySig) func(id int32, from, to int) int {
	return func(id int32, from, to int) int {
		return minhash.Matches(q.Min, v.sigs[id], from, to)
	}
}

// VerifyQuery runs BayesLSH for the query minhash signature (q.Min,
// at least MaxHashes hashes) against the candidate corpus ids.
func (v *JaccardVerifier) VerifyQuery(q QuerySig, ids []int32) ([]pair.Hit, Stats) {
	return v.k.verifyQuery(ids, v.qmatch(q), nil)
}

// VerifyQueryLite runs BayesLSH-Lite pruning for the query minhash
// signature, then verifies survivors exactly with sim.
func (v *JaccardVerifier) VerifyQueryLite(q QuerySig, ids []int32, h int, sim QuerySimFunc) ([]pair.Hit, Stats) {
	return v.k.verifyQueryLite(ids, h, v.qmatch(q), sim, nil)
}

// VerifyQueryStop is VerifyQuery with cooperative cancellation.
func (v *JaccardVerifier) VerifyQueryStop(q QuerySig, ids []int32, stop *shard.Stopper) ([]pair.Hit, Stats, error) {
	hits, st := v.k.verifyQuery(ids, v.qmatch(q), stop)
	return stopResultHits(hits, st, stop)
}

// VerifyQueryLiteStop is VerifyQueryLite with cooperative cancellation.
func (v *JaccardVerifier) VerifyQueryLiteStop(q QuerySig, ids []int32, h int, sim QuerySimFunc, stop *shard.Stopper) ([]pair.Hit, Stats, error) {
	hits, st := v.k.verifyQueryLite(ids, h, v.qmatch(q), sim, stop)
	return stopResultHits(hits, st, stop)
}

// qmatch builds the cosine one-sided match hook.
func (v *CosineVerifier) qmatch(q QuerySig) func(id int32, from, to int) int {
	return func(id int32, from, to int) int {
		return sighash.MatchCount(q.Bits, v.sigs[id], from, to)
	}
}

// VerifyQuery runs BayesLSH for the query bit signature (q.Bits, at
// least MaxHashes bits) against the candidate corpus ids.
func (v *CosineVerifier) VerifyQuery(q QuerySig, ids []int32) ([]pair.Hit, Stats) {
	return v.k.verifyQuery(ids, v.qmatch(q), nil)
}

// VerifyQueryLite runs BayesLSH-Lite pruning for the query bit
// signature, then verifies survivors exactly with sim.
func (v *CosineVerifier) VerifyQueryLite(q QuerySig, ids []int32, h int, sim QuerySimFunc) ([]pair.Hit, Stats) {
	return v.k.verifyQueryLite(ids, h, v.qmatch(q), sim, nil)
}

// VerifyQueryStop is VerifyQuery with cooperative cancellation.
func (v *CosineVerifier) VerifyQueryStop(q QuerySig, ids []int32, stop *shard.Stopper) ([]pair.Hit, Stats, error) {
	hits, st := v.k.verifyQuery(ids, v.qmatch(q), stop)
	return stopResultHits(hits, st, stop)
}

// VerifyQueryLiteStop is VerifyQueryLite with cooperative cancellation.
func (v *CosineVerifier) VerifyQueryLiteStop(q QuerySig, ids []int32, h int, sim QuerySimFunc, stop *shard.Stopper) ([]pair.Hit, Stats, error) {
	hits, st := v.k.verifyQueryLite(ids, h, v.qmatch(q), sim, stop)
	return stopResultHits(hits, st, stop)
}

// qmatch builds the 1-bit Jaccard one-sided match hook (the query's
// minhashes packed to one bit each, see minhash.PackOneBit).
func (v *OneBitJaccardVerifier) qmatch(q QuerySig) func(id int32, from, to int) int {
	return func(id int32, from, to int) int {
		return sighash.MatchCount(q.Bits, v.sigs[id], from, to)
	}
}

// VerifyQuery runs BayesLSH for the packed 1-bit query signature
// (q.Bits) against the candidate corpus ids.
func (v *OneBitJaccardVerifier) VerifyQuery(q QuerySig, ids []int32) ([]pair.Hit, Stats) {
	return v.k.verifyQuery(ids, v.qmatch(q), nil)
}

// VerifyQueryLite runs BayesLSH-Lite pruning over packed 1-bit query
// signatures, then verifies survivors exactly with sim.
func (v *OneBitJaccardVerifier) VerifyQueryLite(q QuerySig, ids []int32, h int, sim QuerySimFunc) ([]pair.Hit, Stats) {
	return v.k.verifyQueryLite(ids, h, v.qmatch(q), sim, nil)
}

// VerifyQueryStop is VerifyQuery with cooperative cancellation.
func (v *OneBitJaccardVerifier) VerifyQueryStop(q QuerySig, ids []int32, stop *shard.Stopper) ([]pair.Hit, Stats, error) {
	hits, st := v.k.verifyQuery(ids, v.qmatch(q), stop)
	return stopResultHits(hits, st, stop)
}

// VerifyQueryLiteStop is VerifyQueryLite with cooperative cancellation.
func (v *OneBitJaccardVerifier) VerifyQueryLiteStop(q QuerySig, ids []int32, h int, sim QuerySimFunc, stop *shard.Stopper) ([]pair.Hit, Stats, error) {
	hits, st := v.k.verifyQueryLite(ids, h, v.qmatch(q), sim, stop)
	return stopResultHits(hits, st, stop)
}
