package core

import (
	"fmt"

	"bayeslsh/internal/pair"
	"bayeslsh/internal/sighash"
)

// OneBitJaccardVerifier extends BayesLSH to 1-bit minwise hashing
// (b-bit minhash with b = 1; Li and König, WWW 2010), realizing the
// paper's §6 claim that the general algorithm adapts to any LSH
// family. Signatures store only the lowest bit of each minhash, 32×
// smaller than full minhash signatures, and hash comparison becomes
// XOR + popcount.
//
// For sets with Jaccard similarity J, 1-bit hashes collide with
// probability r = (1 + J)/2 (large-universe approximation), so all
// inference runs over r ∈ [1/2, 1] with a uniform prior — exactly the
// truncated-support machinery of the cosine instantiation with the
// linear transform J = 2r − 1 in place of r2c.
type OneBitJaccardVerifier struct {
	params Params
	sigs   [][]uint64
	tr     float64 // threshold mapped to collision-probability space
	k      *kernel
}

// jToR maps a Jaccard similarity to the 1-bit collision probability.
func jToR(j float64) float64 {
	if j < 0 {
		j = 0
	}
	if j > 1 {
		j = 1
	}
	return (1 + j) / 2
}

// rToJ inverts jToR.
func rToJ(r float64) float64 { return 2*r - 1 }

// NewOneBitJaccard builds a verifier over packed 1-bit minhash
// signatures (see minhash.PackOneBitAll) of at least p.MaxHashes bits.
func NewOneBitJaccard(sigs [][]uint64, sigBits int, p Params) (*OneBitJaccardVerifier, error) {
	if len(sigs) == 0 {
		return nil, fmt.Errorf("core: no signatures")
	}
	params, err := p.withDefaults(sigBits)
	if err != nil {
		return nil, err
	}
	for i, s := range sigs {
		if len(s)*64 < params.MaxHashes {
			return nil, fmt.Errorf("core: signature %d has %d bits, need %d", i, len(s)*64, params.MaxHashes)
		}
	}
	v := &OneBitJaccardVerifier{
		params: params,
		sigs:   sigs,
		tr:     jToR(params.Threshold),
	}
	v.k = newKernel(params,
		func(m, n int) bool { return v.probAboveThreshold(m, n) >= params.Epsilon },
		func(a, b int32, from, to int) int { return sighash.MatchCount(sigs[a], sigs[b], from, to) },
		v.Estimate,
		v.concentrated,
	)
	return v, nil
}

// Params returns the validated parameters in effect.
func (v *OneBitJaccardVerifier) Params() Params { return v.params }

// probAboveThreshold computes Pr[J >= t | M(m, n)] as the ratio of
// posterior upper tails at jToR(t) and at the support floor 1/2.
func (v *OneBitJaccardVerifier) probAboveThreshold(m, n int) float64 {
	den := upperTail(0.5, m, n)
	if den <= 0 {
		return 0
	}
	return upperTail(v.tr, m, n) / den
}

// Estimate returns the MAP Jaccard estimate after M(m, n):
// R̂ = m/n clamped to [1/2, 1], transformed by rToJ.
func (v *OneBitJaccardVerifier) Estimate(m, n int) float64 {
	r := float64(m) / float64(n)
	if r < 0.5 {
		r = 0.5
	}
	if r > 1 {
		r = 1
	}
	return rToJ(r)
}

// concentrated reports whether Pr[|J − Ĵ| < δ | M(m, n)] >= 1 − γ,
// evaluated in collision-probability space.
func (v *OneBitJaccardVerifier) concentrated(m, n int) bool {
	den := upperTail(0.5, m, n)
	if den <= 0 {
		return true
	}
	est := v.Estimate(m, n)
	lo := jToR(est - v.params.Delta)
	hi := jToR(est + v.params.Delta)
	if lo < 0.5 {
		lo = 0.5
	}
	num := upperTail(lo, m, n) - upperTail(hi, m, n)
	return num/den >= 1-v.params.Gamma
}

// Verify runs BayesLSH (Algorithm 1) over the candidate pairs.
func (v *OneBitJaccardVerifier) Verify(cands []pair.Pair) ([]pair.Result, Stats) {
	return v.k.verify(cands)
}

// VerifyLite runs BayesLSH-Lite (Algorithm 2) over 1-bit signatures.
func (v *OneBitJaccardVerifier) VerifyLite(cands []pair.Pair, h int, sim ExactSimFunc) ([]pair.Result, Stats) {
	return v.k.verifyLite(cands, h, sim)
}

// VerifyParallel runs BayesLSH over a pool of workers goroutines in
// batches of batch pairs, producing the same results as Verify.
func (v *OneBitJaccardVerifier) VerifyParallel(cands []pair.Pair, workers, batch int) ([]pair.Result, Stats) {
	return v.k.verifyParallel(cands, workers, batch)
}

// VerifyLiteParallel runs BayesLSH-Lite over a pool of workers
// goroutines, producing the same results as VerifyLite.
func (v *OneBitJaccardVerifier) VerifyLiteParallel(cands []pair.Pair, h int, sim ExactSimFunc, workers, batch int) ([]pair.Result, Stats) {
	return v.k.verifyLiteParallel(cands, h, sim, workers, batch)
}
