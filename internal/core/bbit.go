package core

import (
	"fmt"

	"bayeslsh/internal/pair"
	"bayeslsh/internal/sighash"
)

// OneBitJaccardVerifier extends BayesLSH to 1-bit minwise hashing
// (b-bit minhash with b = 1; Li and König, WWW 2010), realizing the
// paper's §6 claim that the general algorithm adapts to any LSH
// family. Signatures store only the lowest bit of each minhash, 32×
// smaller than full minhash signatures, and hash comparison becomes
// XOR + popcount.
//
// For sets with Jaccard similarity J, 1-bit hashes collide with
// probability r = (1 + J)/2 (large-universe approximation), so all
// inference runs over r ∈ [1/2, 1] with a uniform prior — exactly the
// truncated-support machinery of the cosine instantiation with the
// linear transform J = 2r − 1 in place of r2c.
type OneBitJaccardVerifier struct {
	params Params
	sigs   [][]uint64
	tr     float64 // threshold mapped to collision-probability space
	ns     []int
	minM   []int
	conc   *concCache
}

// jToR maps a Jaccard similarity to the 1-bit collision probability.
func jToR(j float64) float64 {
	if j < 0 {
		j = 0
	}
	if j > 1 {
		j = 1
	}
	return (1 + j) / 2
}

// rToJ inverts jToR.
func rToJ(r float64) float64 { return 2*r - 1 }

// NewOneBitJaccard builds a verifier over packed 1-bit minhash
// signatures (see minhash.PackOneBitAll) of at least p.MaxHashes bits.
func NewOneBitJaccard(sigs [][]uint64, sigBits int, p Params) (*OneBitJaccardVerifier, error) {
	if len(sigs) == 0 {
		return nil, fmt.Errorf("core: no signatures")
	}
	params, err := p.withDefaults(sigBits)
	if err != nil {
		return nil, err
	}
	for i, s := range sigs {
		if len(s)*64 < params.MaxHashes {
			return nil, fmt.Errorf("core: signature %d has %d bits, need %d", i, len(s)*64, params.MaxHashes)
		}
	}
	v := &OneBitJaccardVerifier{
		params: params,
		sigs:   sigs,
		tr:     jToR(params.Threshold),
		ns:     rounds(params),
	}
	v.minM = minMatchesTable(v.ns, func(m, n int) bool {
		return v.probAboveThreshold(m, n) >= params.Epsilon
	})
	v.conc = newConcCache(v.ns, params.K)
	return v, nil
}

// Params returns the validated parameters in effect.
func (v *OneBitJaccardVerifier) Params() Params { return v.params }

// probAboveThreshold computes Pr[J >= t | M(m, n)] as the ratio of
// posterior upper tails at jToR(t) and at the support floor 1/2.
func (v *OneBitJaccardVerifier) probAboveThreshold(m, n int) float64 {
	den := upperTail(0.5, m, n)
	if den <= 0 {
		return 0
	}
	return upperTail(v.tr, m, n) / den
}

// Estimate returns the MAP Jaccard estimate after M(m, n):
// R̂ = m/n clamped to [1/2, 1], transformed by rToJ.
func (v *OneBitJaccardVerifier) Estimate(m, n int) float64 {
	r := float64(m) / float64(n)
	if r < 0.5 {
		r = 0.5
	}
	if r > 1 {
		r = 1
	}
	return rToJ(r)
}

// concentrated reports whether Pr[|J − Ĵ| < δ | M(m, n)] >= 1 − γ,
// evaluated in collision-probability space.
func (v *OneBitJaccardVerifier) concentrated(m, n int) bool {
	den := upperTail(0.5, m, n)
	if den <= 0 {
		return true
	}
	est := v.Estimate(m, n)
	lo := jToR(est - v.params.Delta)
	hi := jToR(est + v.params.Delta)
	if lo < 0.5 {
		lo = 0.5
	}
	num := upperTail(lo, m, n) - upperTail(hi, m, n)
	return num/den >= 1-v.params.Gamma
}

// Verify runs BayesLSH (Algorithm 1) over the candidate pairs.
func (v *OneBitJaccardVerifier) Verify(cands []pair.Pair) ([]pair.Result, Stats) {
	st := Stats{Candidates: len(cands), SurvivorsByRound: make([]int, len(v.ns))}
	out := make([]pair.Result, 0, len(cands)/8+1)
	k := v.params.K
	for _, c := range cands {
		a, b := v.sigs[c.A], v.sigs[c.B]
		m := 0
		pruned := false
		accepted := false
		for round, n := range v.ns {
			if ensure := v.params.Ensure; ensure != nil {
				ensure(c.A, n)
				ensure(c.B, n)
			}
			m += sighash.MatchCount(a, b, n-k, n)
			st.HashesCompared += int64(k)
			if m < v.minM[round] {
				pruned = true
				st.Pruned++
				break
			}
			st.SurvivorsByRound[round]++
			if cached, ok := v.conc.lookup(round, m); ok {
				st.CacheHits++
				accepted = cached
			} else {
				st.InferenceCalls++
				cv := v.concentrated(m, n)
				v.conc.store(round, m, cv)
				accepted = cv
			}
			if accepted {
				out = append(out, pair.Result{A: c.A, B: c.B, Sim: v.Estimate(m, n)})
				for r := round + 1; r < len(v.ns); r++ {
					st.SurvivorsByRound[r]++
				}
				break
			}
		}
		if !pruned && !accepted {
			out = append(out, pair.Result{A: c.A, B: c.B, Sim: v.Estimate(m, v.params.MaxHashes)})
		}
	}
	st.Accepted = len(out)
	return out, st
}

// VerifyLite runs BayesLSH-Lite (Algorithm 2) over 1-bit signatures.
func (v *OneBitJaccardVerifier) VerifyLite(cands []pair.Pair, h int, sim ExactSimFunc) ([]pair.Result, Stats) {
	nRounds := liteRounds(h, v.params.K, len(v.ns))
	st := Stats{Candidates: len(cands), SurvivorsByRound: make([]int, nRounds)}
	var out []pair.Result
	k := v.params.K
	for _, c := range cands {
		a, b := v.sigs[c.A], v.sigs[c.B]
		m := 0
		pruned := false
		for round := 0; round < nRounds; round++ {
			n := v.ns[round]
			if ensure := v.params.Ensure; ensure != nil {
				ensure(c.A, n)
				ensure(c.B, n)
			}
			m += sighash.MatchCount(a, b, n-k, n)
			st.HashesCompared += int64(k)
			if m < v.minM[round] {
				pruned = true
				st.Pruned++
				break
			}
			st.SurvivorsByRound[round]++
		}
		if pruned {
			continue
		}
		st.ExactVerified++
		if s := sim(c.A, c.B); s >= v.params.Threshold {
			out = append(out, pair.Result{A: c.A, B: c.B, Sim: s})
		}
	}
	st.Accepted = len(out)
	return out, st
}
