package core

import (
	"context"

	"bayeslsh/internal/pair"
	"bayeslsh/internal/shard"
)

// Context-aware and streaming forms of batch verification. The round
// loop polls a shard.Stopper between rounds (see verifyOne), the batch
// dispatch stops at the first done check (shard.RunCtx/StreamCtx), and
// partial work is discarded once cancellation is observed — so the
// ctx-aware entry points either return the exact output of their
// plain counterparts or (nil, Stats{}, ctx.Err()), never something in
// between. A non-cancelable context (ctx.Done() == nil) takes the
// plain code paths unchanged.

// verifyParallelCtx is verifyParallel with cooperative cancellation.
func (kr *kernel) verifyParallelCtx(ctx context.Context, cands []pair.Pair, workers, batch int) ([]pair.Result, Stats, error) {
	if ctx.Done() == nil {
		out, st := kr.verifyParallel(cands, workers, batch)
		return out, st, nil
	}
	if batch < 1 {
		batch = 1
	}
	stop := shard.NewStopper(ctx)
	defer stop.Close()
	outs := make([][]pair.Result, shard.Count(len(cands), batch))
	stats := make([]Stats, len(outs))
	err := shard.RunCtx(ctx, len(cands), workers, batch, func(lo, hi, slot int) {
		st := Stats{SurvivorsByRound: make([]int, len(kr.ns))}
		out := make([]pair.Result, 0, (hi-lo)/8+1)
		for _, c := range cands[lo:hi] {
			if stop.Stopped() {
				return
			}
			kr.verifyOne(c, stop, &st, &out)
		}
		outs[slot] = out
		stats[slot] = st
	})
	if err != nil {
		return nil, Stats{}, err
	}
	out, st := mergeBatches(outs, stats)
	st.Candidates = len(cands)
	st.Accepted = len(out)
	return out, st, nil
}

// verifyLiteParallelCtx is verifyLiteParallel with cooperative
// cancellation.
func (kr *kernel) verifyLiteParallelCtx(ctx context.Context, cands []pair.Pair, h int, sim ExactSimFunc, workers, batch int) ([]pair.Result, Stats, error) {
	if ctx.Done() == nil {
		out, st := kr.verifyLiteParallel(cands, h, sim, workers, batch)
		return out, st, nil
	}
	if batch < 1 {
		batch = 1
	}
	nRounds := liteRounds(h, kr.params.K, len(kr.ns))
	stop := shard.NewStopper(ctx)
	defer stop.Close()
	outs := make([][]pair.Result, shard.Count(len(cands), batch))
	stats := make([]Stats, len(outs))
	err := shard.RunCtx(ctx, len(cands), workers, batch, func(lo, hi, slot int) {
		st := Stats{SurvivorsByRound: make([]int, nRounds)}
		var out []pair.Result
		for _, c := range cands[lo:hi] {
			if stop.Stopped() {
				return
			}
			if !kr.verifyOneLite(c, nRounds, stop, &st) {
				continue
			}
			st.ExactVerified++
			if s := sim(c.A, c.B); s >= kr.params.Threshold {
				out = append(out, pair.Result{A: c.A, B: c.B, Sim: s})
			}
		}
		outs[slot] = out
		stats[slot] = st
	})
	if err != nil {
		return nil, Stats{}, err
	}
	out, st := mergeBatches(outs, stats)
	st.Candidates = len(cands)
	st.Accepted = len(out)
	return out, st, nil
}

// verifyStream runs Algorithm 1 over the candidates, delivering each
// batch's accepted results to emit as the batch completes (the
// shard.StreamCtx contract): results leave through emit instead of
// accumulating, which is what bounds the memory of a huge join.
func (kr *kernel) verifyStream(ctx context.Context, cands []pair.Pair, workers, batch int, emit func([]pair.Result) error) error {
	if batch < 1 {
		batch = 1
	}
	stop := shard.NewStopper(ctx)
	defer stop.Close()
	return shard.StreamCtx(ctx, len(cands), workers, batch, func(lo, hi int) []pair.Result {
		st := Stats{SurvivorsByRound: make([]int, len(kr.ns))}
		out := make([]pair.Result, 0, (hi-lo)/8+1)
		for _, c := range cands[lo:hi] {
			if stop.Stopped() {
				return nil
			}
			kr.verifyOne(c, stop, &st, &out)
		}
		return out
	}, emit)
}

// verifyLiteStream is the streaming form of Algorithm 2.
func (kr *kernel) verifyLiteStream(ctx context.Context, cands []pair.Pair, h int, sim ExactSimFunc, workers, batch int, emit func([]pair.Result) error) error {
	if batch < 1 {
		batch = 1
	}
	nRounds := liteRounds(h, kr.params.K, len(kr.ns))
	stop := shard.NewStopper(ctx)
	defer stop.Close()
	return shard.StreamCtx(ctx, len(cands), workers, batch, func(lo, hi int) []pair.Result {
		st := Stats{SurvivorsByRound: make([]int, nRounds)}
		var out []pair.Result
		for _, c := range cands[lo:hi] {
			if stop.Stopped() {
				return nil
			}
			if !kr.verifyOneLite(c, nRounds, stop, &st) {
				continue
			}
			if s := sim(c.A, c.B); s >= kr.params.Threshold {
				out = append(out, pair.Result{A: c.A, B: c.B, Sim: s})
			}
		}
		return out
	}, emit)
}

// Interface delegations: the ctx-aware batch entry points of the three
// verifier instantiations, all backed by the shared kernel above.

// VerifyParallelCtx is VerifyParallel with cooperative cancellation.
func (v *JaccardVerifier) VerifyParallelCtx(ctx context.Context, cands []pair.Pair, workers, batch int) ([]pair.Result, Stats, error) {
	return v.k.verifyParallelCtx(ctx, cands, workers, batch)
}

// VerifyLiteParallelCtx is VerifyLiteParallel with cooperative
// cancellation.
func (v *JaccardVerifier) VerifyLiteParallelCtx(ctx context.Context, cands []pair.Pair, h int, sim ExactSimFunc, workers, batch int) ([]pair.Result, Stats, error) {
	return v.k.verifyLiteParallelCtx(ctx, cands, h, sim, workers, batch)
}

// VerifyStream streams BayesLSH verification batch by batch.
func (v *JaccardVerifier) VerifyStream(ctx context.Context, cands []pair.Pair, workers, batch int, emit func([]pair.Result) error) error {
	return v.k.verifyStream(ctx, cands, workers, batch, emit)
}

// VerifyLiteStream streams BayesLSH-Lite verification batch by batch.
func (v *JaccardVerifier) VerifyLiteStream(ctx context.Context, cands []pair.Pair, h int, sim ExactSimFunc, workers, batch int, emit func([]pair.Result) error) error {
	return v.k.verifyLiteStream(ctx, cands, h, sim, workers, batch, emit)
}

// VerifyParallelCtx is VerifyParallel with cooperative cancellation.
func (v *CosineVerifier) VerifyParallelCtx(ctx context.Context, cands []pair.Pair, workers, batch int) ([]pair.Result, Stats, error) {
	return v.k.verifyParallelCtx(ctx, cands, workers, batch)
}

// VerifyLiteParallelCtx is VerifyLiteParallel with cooperative
// cancellation.
func (v *CosineVerifier) VerifyLiteParallelCtx(ctx context.Context, cands []pair.Pair, h int, sim ExactSimFunc, workers, batch int) ([]pair.Result, Stats, error) {
	return v.k.verifyLiteParallelCtx(ctx, cands, h, sim, workers, batch)
}

// VerifyStream streams BayesLSH verification batch by batch.
func (v *CosineVerifier) VerifyStream(ctx context.Context, cands []pair.Pair, workers, batch int, emit func([]pair.Result) error) error {
	return v.k.verifyStream(ctx, cands, workers, batch, emit)
}

// VerifyLiteStream streams BayesLSH-Lite verification batch by batch.
func (v *CosineVerifier) VerifyLiteStream(ctx context.Context, cands []pair.Pair, h int, sim ExactSimFunc, workers, batch int, emit func([]pair.Result) error) error {
	return v.k.verifyLiteStream(ctx, cands, h, sim, workers, batch, emit)
}

// VerifyParallelCtx is VerifyParallel with cooperative cancellation.
func (v *OneBitJaccardVerifier) VerifyParallelCtx(ctx context.Context, cands []pair.Pair, workers, batch int) ([]pair.Result, Stats, error) {
	return v.k.verifyParallelCtx(ctx, cands, workers, batch)
}

// VerifyLiteParallelCtx is VerifyLiteParallel with cooperative
// cancellation.
func (v *OneBitJaccardVerifier) VerifyLiteParallelCtx(ctx context.Context, cands []pair.Pair, h int, sim ExactSimFunc, workers, batch int) ([]pair.Result, Stats, error) {
	return v.k.verifyLiteParallelCtx(ctx, cands, h, sim, workers, batch)
}

// VerifyStream streams BayesLSH verification batch by batch.
func (v *OneBitJaccardVerifier) VerifyStream(ctx context.Context, cands []pair.Pair, workers, batch int, emit func([]pair.Result) error) error {
	return v.k.verifyStream(ctx, cands, workers, batch, emit)
}

// VerifyLiteStream streams BayesLSH-Lite verification batch by batch.
func (v *OneBitJaccardVerifier) VerifyLiteStream(ctx context.Context, cands []pair.Pair, h int, sim ExactSimFunc, workers, batch int, emit func([]pair.Result) error) error {
	return v.k.verifyLiteStream(ctx, cands, h, sim, workers, batch, emit)
}
