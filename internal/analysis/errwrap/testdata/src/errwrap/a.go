// Package errwrap is analyzer testdata: sentinels wrap with %w and
// match with errors.Is.
package errwrap

import (
	"errors"
	"fmt"
)

// ErrBad and errInternal are sentinels: package-level error vars
// named Err*/err*.
var (
	ErrBad      = errors.New("bad")
	errInternal = errors.New("internal")
)

// notSentinelCase is a package-level error var but not named like a
// sentinel, so errwrap leaves it alone.
var oops = errors.New("oops")

func wrapV(id int) error {
	return fmt.Errorf("item %d: %v", id, ErrBad) // want `sentinel ErrBad passed to fmt.Errorf without %w`
}

func wrapS() error {
	return fmt.Errorf("lookup: %s", errInternal) // want `sentinel errInternal passed to fmt.Errorf without %w`
}

func wrapWrongPosition() error {
	// %w consumes the first operand; the sentinel lands on %v.
	return fmt.Errorf("%w then %v", errors.New("x"), ErrBad) // want `sentinel ErrBad passed to fmt.Errorf without %w`
}

func wrapW(id int) error {
	return fmt.Errorf("item %d: %w", id, ErrBad)
}

func wrapWFlags() error {
	return fmt.Errorf("at %08.3f: %w", 1.5, errInternal)
}

func wrapStar() error {
	return fmt.Errorf("%*d: %w", 4, 2, ErrBad)
}

func wrapIndexedBails() error {
	// explicit argument indexes are not modeled; no finding.
	return fmt.Errorf("%[2]v %[1]s", "a", ErrBad)
}

func wrapNonSentinel() error {
	return fmt.Errorf("oops: %v", oops)
}

func cmpEq(err error) bool {
	return err == ErrBad // want `ErrBad compared with ==`
}

func cmpNeq(err error) bool {
	return errInternal != err // want `errInternal compared with !=`
}

func cmpNilIsFine() bool {
	return ErrBad == nil
}

func cmpIsIsFine(err error) bool {
	return errors.Is(err, ErrBad)
}

func switchCase(err error) string {
	switch err { // the tag itself is fine; the case is not
	case ErrBad: // want `switch case on sentinel ErrBad compares by identity`
		return "bad"
	default:
		return "other"
	}
}

func switchTrueIsFine(err error) string {
	switch {
	case errors.Is(err, ErrBad):
		return "bad"
	default:
		return "other"
	}
}

func allowedIdentity(err error) bool {
	//apsslint:allow errwrap this sentinel is never wrapped, identity is the whole point
	return err == errInternal
}
