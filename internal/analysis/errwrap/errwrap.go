// Package errwrap keeps the sentinel-error contract intact across
// wrapping boundaries: sentinels (ErrShardUnavailable, ErrBadK,
// ErrEmptyDataset, ErrSnapshotFormat, ...) are part of the public
// API and are matched with errors.Is on the far side of the HTTP and
// cluster layers. fmt.Errorf("...: %v", ErrX) severs that chain, and
// err == ErrX breaks as soon as anyone wraps — both are flagged.
package errwrap

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"bayeslsh/internal/analysis"
)

// Analyzer implements the errwrap contract.
var Analyzer = &analysis.Analyzer{
	Name: "errwrap",
	Doc: "sentinels wrap with %w and match with errors.Is, never %v or ==\n" +
		"A package sentinel mentioned in fmt.Errorf must be wrapped with %w so\n" +
		"errors.Is keeps matching through the serving layers, and sentinels must\n" +
		"never be compared with ==/!= or switch cases — wrapping anywhere in the\n" +
		"chain silently breaks identity comparison.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkErrorf(pass, n)
			case *ast.BinaryExpr:
				checkCompare(pass, n)
			case *ast.SwitchStmt:
				checkSwitch(pass, n)
			}
			return true
		})
	}
	return nil
}

// sentinelOf returns the sentinel object e refers to, or nil.
func sentinelOf(pass *analysis.Pass, e ast.Expr) types.Object {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	if obj := pass.TypesInfo.Uses[id]; obj != nil && analysis.IsSentinel(obj) {
		return obj
	}
	return nil
}

func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if !analysis.IsPkgFunc(fn, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	vs, ok := verbs(constant.StringVal(tv.Value))
	if !ok {
		return // explicit argument indexes; too clever to check
	}
	for i, arg := range call.Args[1:] {
		sent := sentinelOf(pass, arg)
		if sent == nil {
			continue
		}
		if i >= len(vs) || vs[i] != 'w' {
			pass.Reportf(arg.Pos(),
				"sentinel %s passed to fmt.Errorf without %%w: errors.Is stops matching across this wrap", sent.Name())
		}
	}
}

func checkCompare(pass *analysis.Pass, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	for _, pair := range [2][2]ast.Expr{{b.X, b.Y}, {b.Y, b.X}} {
		sent := sentinelOf(pass, pair[0])
		if sent == nil {
			continue
		}
		if id, ok := ast.Unparen(pair[1]).(*ast.Ident); ok && id.Name == "nil" {
			continue
		}
		pass.Reportf(b.Pos(),
			"%s compared with %s: use errors.Is, identity breaks once the error is wrapped", sent.Name(), b.Op)
		return
	}
}

func checkSwitch(pass *analysis.Pass, s *ast.SwitchStmt) {
	if s.Tag == nil {
		return
	}
	for _, stmt := range s.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if sent := sentinelOf(pass, e); sent != nil {
				pass.Reportf(e.Pos(),
					"switch case on sentinel %s compares by identity: use errors.Is, identity breaks once the error is wrapped", sent.Name())
			}
		}
	}
}

// verbs returns the verb letter consuming each successive operand of
// a Printf-style format. ok is false when the format uses explicit
// argument indexes (%[1]s), which this checker does not model. A '*'
// width or precision consumes an operand and is recorded as '*'.
func verbs(format string) (vs []byte, ok bool) {
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
	scan:
		for ; i < len(format); i++ {
			switch c := format[i]; {
			case c == '%':
				break scan // literal %%
			case c == '[':
				return nil, false
			case c == '*':
				vs = append(vs, '*')
			case c >= '0' && c <= '9' || c == '.' || c == '+' || c == '-' || c == '#' || c == ' ':
				// flags, width, precision: keep scanning
			default:
				vs = append(vs, c)
				break scan
			}
		}
	}
	return vs, true
}
