package errwrap_test

import (
	"testing"

	"bayeslsh/internal/analysis/analysistest"
	"bayeslsh/internal/analysis/errwrap"
)

func TestErrWrap(t *testing.T) {
	analysistest.Run(t, errwrap.Analyzer, "testdata/src/errwrap", "errwrap")
}
