// Package analysis is a stdlib-only reimplementation of the core of
// golang.org/x/tools/go/analysis, just large enough to host the
// project's contract analyzers (see docs/ANALYSIS.md). The build
// environment is fully offline — no module proxy, no vendored
// x/tools — so the framework is built directly on go/ast, go/types
// and go/importer. The API deliberately mirrors x/tools so that the
// analyzers can migrate mechanically if the real framework ever
// becomes available.
//
// An Analyzer inspects one type-checked package (a Pass) and reports
// Diagnostics. Analyzers are pure and stateless across packages: the
// suite uses no cross-package facts, which is what makes the
// single-unit vet protocol in cmd/apsslint trivial.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one analysis: a named, documented contract
// check over a single type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //apsslint:allow directives. It must be a valid Go
	// identifier.
	Name string

	// Doc documents the contract. The first line is the one-line
	// summary printed by `apsslint -list`.
	Doc string

	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Summary returns the first line of the analyzer's Doc.
func (a *Analyzer) Summary() string {
	for i := 0; i < len(a.Doc); i++ {
		if a.Doc[i] == '\n' {
			return a.Doc[:i]
		}
	}
	return a.Doc
}

// A Pass is one unit of work: one analyzer applied to one
// type-checked package. The fields mirror x/tools' analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The runner owns suppression
	// (allow directives) and aggregation; analyzers just report.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, positioned in the fileset of the Pass
// that produced it.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled in by the runner
}

// IsTestFile reports whether the file containing pos is a _test.go
// file. Some analyzers (detrand, gohygiene) scope themselves to
// production code: tests measure wall-clock time and spawn harness
// goroutines legitimately.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	f := fset.File(pos)
	if f == nil {
		return false
	}
	name := f.Name()
	return len(name) >= len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}
