package analysis

import (
	"go/ast"
	"go/types"
)

// Callee resolves the static callee of call: the *types.Func for a
// direct function or method call, or nil for builtins, conversions
// and dynamic calls through function values.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether fn is the package-level function
// pkgPath.name (receivers excluded).
func IsPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// HasContextParam reports whether sig takes a context.Context
// anywhere in its parameter list.
func HasContextParam(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if IsContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// IsSentinel reports whether obj is a package-level error variable
// following the sentinel naming convention (ErrFoo or errFoo).
func IsSentinel(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return false
	}
	name := v.Name()
	rest, hasPrefix := "", false
	if len(name) > 3 && (name[:3] == "Err" || name[:3] == "err") {
		rest, hasPrefix = name[3:], true
	}
	if !hasPrefix || rest[0] < 'A' || rest[0] > 'Z' {
		return false
	}
	return types.Implements(v.Type(), errorType) || types.Identical(v.Type(), errorType.Underlying())
}

// Mentions reports whether the expression tree rooted at e contains an
// identifier resolving to obj.
func Mentions(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
