package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowPrefix is the directive marker. Grammar:
//
//	//apsslint:allow <analyzer> <reason...>
//
// The reason is mandatory — an allow without a recorded reason is
// itself a finding. A directive suppresses findings of the named
// analyzer on its own source line and on the line directly below it
// (so it can trail the offending statement or stand alone above it).
const allowPrefix = "//apsslint:allow"

// A Directive is one parsed //apsslint:allow comment.
type Directive struct {
	Pos      token.Pos
	File     string
	Line     int
	Analyzer string
	Reason   string
}

// Directives extracts every apsslint:allow directive from files,
// including malformed ones (empty Analyzer or Reason), so callers can
// both suppress findings and police the directives themselves.
func Directives(fset *token.FileSet, files []*ast.File) []Directive {
	var ds []Directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
				name, reason, _ := strings.Cut(rest, " ")
				pos := fset.Position(c.Pos())
				ds = append(ds, Directive{
					Pos:      c.Pos(),
					File:     pos.Filename,
					Line:     pos.Line,
					Analyzer: name,
					Reason:   strings.TrimSpace(reason),
				})
			}
		}
	}
	return ds
}

// Filter applies allow directives to diags: suppressed findings are
// dropped, and malformed directives (no reason, or a name not in
// known) are appended as findings of the pseudo-analyzer "allow",
// which cannot itself be suppressed. known maps analyzer name ->
// present in the running suite.
func Filter(fset *token.FileSet, files []*ast.File, diags []Diagnostic, known map[string]bool) []Diagnostic {
	ds := Directives(fset, files)
	type key struct {
		file     string
		line     int
		analyzer string
	}
	allowed := make(map[key]bool)
	var out []Diagnostic
	for _, d := range ds {
		switch {
		case d.Analyzer == "" || d.Reason == "":
			out = append(out, Diagnostic{
				Pos:      d.Pos,
				Analyzer: "allow",
				Message:  "apsslint:allow directive needs an analyzer name and a non-empty reason: //apsslint:allow <analyzer> <reason>",
			})
		case !known[d.Analyzer]:
			out = append(out, Diagnostic{
				Pos:      d.Pos,
				Analyzer: "allow",
				Message:  "apsslint:allow names unknown analyzer " + d.Analyzer,
			})
		default:
			allowed[key{d.File, d.Line, d.Analyzer}] = true
			allowed[key{d.File, d.Line + 1, d.Analyzer}] = true
		}
	}
	for _, dg := range diags {
		pos := fset.Position(dg.Pos)
		if allowed[key{pos.Filename, pos.Line, dg.Analyzer}] {
			continue
		}
		out = append(out, dg)
	}
	return out
}
