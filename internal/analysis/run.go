package analysis

import (
	"fmt"
	"sort"
)

// Run applies every analyzer to one unit, filters the findings
// through the allow directives in the unit's files, and returns them
// sorted by position. The pseudo-analyzer "allow" (malformed
// directives) can appear in the result even though it is not in
// analyzers.
func Run(u *Unit, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := make(map[string]bool, len(analyzers))
	var diags []Diagnostic
	for _, a := range analyzers {
		known[a.Name] = true
		pass := &Pass{
			Analyzer:  a,
			Fset:      u.Fset,
			Files:     u.Files,
			Pkg:       u.Pkg,
			TypesInfo: u.Info,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			d.Analyzer = name
			diags = append(diags, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", u.ImportPath, a.Name, err)
		}
	}
	diags = Filter(u.Fset, u.Files, diags, known)
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}
