// Package ctxflow enforces the cancellation contract PR 4 plumbed
// through every layer: once a function has a context.Context, that
// context (or one derived from it) must flow into every callee that
// can accept one. Calling the ctx-less twin of a ...Context API, or
// passing a fresh context.Background()/TODO(), silently detaches the
// callee from the caller's deadline and cancellation — the exact
// "dropped ctx" bug the server and cluster layers had to plumb
// around by hand.
package ctxflow

import (
	"go/ast"
	"go/types"

	"bayeslsh/internal/analysis"
)

// Analyzer implements the ctxflow contract.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "a function holding a ctx must pass it on: no context.Background()/TODO() and no ctx-less twin calls\n" +
		"Inside any function (or closure) that has a context.Context in scope, calls\n" +
		"to context.Background()/context.TODO() and calls to a callee F when an\n" +
		"FContext variant exists are flagged: both detach the callee from the\n" +
		"caller's cancellation and deadline. Deliberate detach points (drain\n" +
		"timers, background supervisors) take //apsslint:allow ctxflow <reason>.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !hasCtxParam(pass.TypesInfo, fd.Type) {
				continue
			}
			checkBody(pass, fd.Body)
		}
	}
	return nil
}

// hasCtxParam reports whether the function type declares a
// context.Context parameter.
func hasCtxParam(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if tv, ok := info.Types[field.Type]; ok && analysis.IsContextType(tv.Type) {
			return true
		}
	}
	return false
}

// checkBody flags ctx drops anywhere in body, including inside
// closures: a closure nested in a ctx-holding function captures that
// ctx, so it is held to the same contract.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.Callee(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		if analysis.IsPkgFunc(fn, "context", "Background") || analysis.IsPkgFunc(fn, "context", "TODO") {
			pass.Reportf(call.Pos(),
				"context.%s() while a ctx is in scope: pass the caller's ctx (or derive with context.WithCancel/WithTimeout) so cancellation keeps flowing", fn.Name())
			return true
		}
		sig := fn.Type().(*types.Signature)
		if analysis.HasContextParam(sig) {
			return true
		}
		if twin := contextTwin(pass.TypesInfo, fn); twin != nil {
			pass.Reportf(call.Pos(),
				"calling %s drops the in-scope ctx: call %s(ctx, ...) instead", fn.Name(), twin.Name())
		}
		return true
	})
}

// contextTwin returns the FContext sibling of fn — a function or
// method of the same package/receiver named fn.Name()+"Context"
// whose signature takes a context.Context — or nil.
func contextTwin(info *types.Info, fn *types.Func) *types.Func {
	if fn.Pkg() == nil {
		return nil
	}
	name := fn.Name() + "Context"
	sig := fn.Type().(*types.Signature)
	var obj types.Object
	if recv := sig.Recv(); recv != nil {
		obj, _, _ = types.LookupFieldOrMethod(recv.Type(), true, fn.Pkg(), name)
	} else {
		obj = fn.Pkg().Scope().Lookup(name)
	}
	twin, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	tsig, ok := twin.Type().(*types.Signature)
	if !ok || !analysis.HasContextParam(tsig) {
		return nil
	}
	return twin
}
