package ctxflow_test

import (
	"testing"

	"bayeslsh/internal/analysis/analysistest"
	"bayeslsh/internal/analysis/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, ctxflow.Analyzer, "testdata/src/ctxflow", "ctxflow")
}
