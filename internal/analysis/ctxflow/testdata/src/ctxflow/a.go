// Package ctxflow is analyzer testdata: functions holding a ctx must
// pass it on — no context.Background()/TODO(), no ctx-less twin calls
// when a ...Context variant exists.
package ctxflow

import "context"

// DB has a method twin pair: Query drops the ctx, QueryContext
// carries it.
type DB struct{}

func (DB) Query(q string) error                             { return nil }
func (DB) QueryContext(ctx context.Context, q string) error { return nil }

// Fetch / FetchContext are a package-level twin pair.
func Fetch(url string) error                             { return nil }
func FetchContext(ctx context.Context, url string) error { return nil }

// Lone has no ...Context sibling, so calling it is fine anywhere.
func Lone(s string) error { return nil }

func bad(ctx context.Context, db DB) error {
	return db.Query("select 1") // want `calling Query drops the in-scope ctx`
}

func badFunc(ctx context.Context) error {
	return Fetch("http://a") // want `calling Fetch drops the in-scope ctx`
}

func badBackground(ctx context.Context, db DB) error {
	return db.QueryContext(context.Background(), "select 1") // want `context.Background\(\) while a ctx is in scope`
}

func badTODO(ctx context.Context) error {
	return FetchContext(context.TODO(), "http://a") // want `context.TODO\(\) while a ctx is in scope`
}

func badClosure(ctx context.Context) func() error {
	return func() error {
		return Fetch("http://a") // want `calling Fetch drops the in-scope ctx`
	}
}

func good(ctx context.Context, db DB) error {
	if err := db.QueryContext(ctx, "select 1"); err != nil {
		return err
	}
	return FetchContext(ctx, "http://a")
}

func goodDerived(ctx context.Context) error {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	return FetchContext(sub, "http://a")
}

func goodLone(ctx context.Context) error {
	return Lone("x")
}

// goodNoCtx holds no ctx, so twin calls and fresh contexts are its
// caller's problem, not ctxflow's.
func goodNoCtx(db DB) error {
	if err := db.Query("select 1"); err != nil {
		return err
	}
	return FetchContext(context.Background(), "http://a")
}

func allowedDetach(ctx context.Context) error {
	//apsslint:allow ctxflow background reaper must outlive the request ctx
	return FetchContext(context.Background(), "http://a")
}
