// Package mapiter flags range-over-map loops whose iteration order
// can leak into output — the exact bug class PR 1 hit in
// internal/dataset, where Go's randomized map order made "identical"
// corpora differ between runs. A map range is fine when its effects
// are order-insensitive (map writes, commutative counters, constant
// sends); it is a contract violation when a loop-dependent value is
// appended to a slice that is never sorted afterwards, sent on a
// channel, or returned.
package mapiter

import (
	"go/ast"
	"go/types"
	"strings"

	"bayeslsh/internal/analysis"
)

// Analyzer implements the mapiter contract.
var Analyzer = &analysis.Analyzer{
	Name: "mapiter",
	Doc: "map iteration order must not reach results: sort what a map range accumulates\n" +
		"Inside a range over a map, appending a loop-dependent value to a slice that\n" +
		"is not subsequently sorted (sort.* / slices.Sort*) in the same function,\n" +
		"sending one on a channel, or returning one makes output depend on Go's\n" +
		"randomized map order. Sort the accumulated slice, iterate sorted keys, or\n" +
		"justify with //apsslint:allow mapiter <reason>.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var results *ast.FieldList
			switch n := n.(type) {
			case *ast.FuncDecl:
				body, results = n.Body, n.Type.Results
			case *ast.FuncLit:
				body, results = n.Body, n.Type.Results
			default:
				return true
			}
			if body != nil {
				checkFunc(pass, body, results)
			}
			return true
		})
	}
	return nil
}

// checkFunc examines every map range directly inside body (ranges
// inside nested closures are visited when the closure itself is
// checked, so sort-cleansing is judged against the right function).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt, results *ast.FieldList) {
	inspectShallow(body, func(n ast.Node) {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return
		}
		tv, ok := pass.TypesInfo.Types[rs.X]
		if !ok {
			return
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return
		}
		checkRange(pass, body, rs, results)
	})
}

// inspectShallow walks n without descending into function literals.
func inspectShallow(n ast.Node, f func(ast.Node)) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			f(n)
		}
		return true
	})
}

func checkRange(pass *analysis.Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt, results *ast.FieldList) {
	info := pass.TypesInfo
	local := localDefs(info, rs)

	// loopDependent reports whether e mentions anything defined by
	// the loop (key/value vars, body locals): only such values can
	// carry the iteration order outward.
	loopDependent := func(e ast.Expr) bool {
		dep := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && local[info.Uses[id]] {
				dep = true
			}
			return !dep
		})
		return dep
	}

	inspectShallow(rs.Body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return
			}
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isAppend(info, call) {
					continue
				}
				dep := false
				for _, arg := range call.Args[1:] {
					if loopDependent(arg) {
						dep = true
					}
				}
				if !dep {
					continue
				}
				sink := lhsObj(info, n.Lhs[i])
				if sink == nil || sortedAfter(info, funcBody, rs, sink) {
					continue
				}
				pass.Reportf(call.Pos(),
					"append of a loop-dependent value inside a map range, and %s is never sorted afterwards: output order follows Go's randomized map order — sort it or iterate sorted keys", sink.Name())
			}
		case *ast.SendStmt:
			if loopDependent(n.Value) {
				pass.Reportf(n.Pos(),
					"channel send of a loop-dependent value inside a map range: delivery order follows Go's randomized map order — collect, sort, then send")
			}
		case *ast.ReturnStmt:
			if len(n.Results) == 0 {
				// A bare return can only leak order through named
				// results assigned in the loop.
				if results != nil && results.NumFields() > 0 {
					pass.Reportf(n.Pos(),
						"bare return inside a map range with named results: if the loop assigned them, the returned value depends on Go's randomized map order")
				}
				return
			}
			for _, e := range n.Results {
				if loopDependent(e) {
					pass.Reportf(n.Pos(),
						"return of a loop-dependent value inside a map range: which element wins depends on Go's randomized map order — iterate sorted keys to make the choice deterministic")
					return
				}
			}
		}
	})
}

// localDefs collects every object defined inside the range statement:
// the key/value variables and any body-local declarations.
func localDefs(info *types.Info, rs *ast.RangeStmt) map[types.Object]bool {
	local := make(map[types.Object]bool)
	ast.Inspect(rs, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				local[obj] = true
			}
		}
		return true
	})
	return local
}

func isAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// lhsObj resolves the variable or field an assignment writes to.
func lhsObj(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Defs[e]; obj != nil {
			return obj
		}
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

// sortedAfter reports whether any statement that can execute after rs
// in the enclosing function body passes sink to a sort.* or
// slices.Sort* call (including wrapped receivers like
// sort.Sort(byCount(sink))).
func sortedAfter(info *types.Info, funcBody *ast.BlockStmt, rs ast.Stmt, sink types.Object) bool {
	tail, _ := tailAfter(funcBody.List, rs)
	for _, s := range tail {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSortCall(info, call) {
				return !found
			}
			for _, arg := range call.Args {
				if analysis.Mentions(info, arg, sink) {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.Callee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		return true
	case "slices":
		return strings.Contains(fn.Name(), "Sort")
	}
	return false
}

// tailAfter returns the statements that execute after target within
// stmts: the remainder of the statement list holding target, plus the
// remainders of every enclosing list out to the function body.
func tailAfter(stmts []ast.Stmt, target ast.Stmt) ([]ast.Stmt, bool) {
	for i, s := range stmts {
		if s == target {
			return stmts[i+1:], true
		}
		if s.Pos() <= target.Pos() && target.End() <= s.End() {
			for _, list := range stmtLists(s) {
				if inner, ok := tailAfter(list, target); ok {
					tail := append([]ast.Stmt{}, inner...)
					return append(tail, stmts[i+1:]...), true
				}
			}
		}
	}
	return nil, false
}

// stmtLists returns the statement lists nested directly inside s.
func stmtLists(s ast.Stmt) [][]ast.Stmt {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return [][]ast.Stmt{s.List}
	case *ast.IfStmt:
		lists := [][]ast.Stmt{s.Body.List}
		if s.Else != nil {
			lists = append(lists, stmtLists(s.Else)...)
		}
		return lists
	case *ast.ForStmt:
		return [][]ast.Stmt{s.Body.List}
	case *ast.RangeStmt:
		return [][]ast.Stmt{s.Body.List}
	case *ast.SwitchStmt:
		return caseLists(s.Body)
	case *ast.TypeSwitchStmt:
		return caseLists(s.Body)
	case *ast.SelectStmt:
		var lists [][]ast.Stmt
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				lists = append(lists, cc.Body)
			}
		}
		return lists
	case *ast.LabeledStmt:
		return stmtLists(s.Stmt)
	}
	return nil
}

func caseLists(body *ast.BlockStmt) [][]ast.Stmt {
	var lists [][]ast.Stmt
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			lists = append(lists, cc.Body)
		}
	}
	return lists
}
