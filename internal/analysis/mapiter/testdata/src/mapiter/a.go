// Package mapiter is analyzer testdata: map ranges whose iteration
// order does / does not reach output.
package mapiter

import "sort"

func keysUnsorted(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k) // want `append of a loop-dependent value inside a map range`
	}
	return ks
}

func keysSorted(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func sortedOutsideBranch(m map[string]int) []int {
	var vs []int
	if len(m) > 0 {
		for _, v := range m {
			vs = append(vs, v)
		}
	}
	sort.Ints(vs)
	return vs
}

func sortedViaWrapper(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Sort(sort.StringSlice(ks))
	return ks
}

func appendConstant(m map[string]int) []int {
	var ones []int
	for range m {
		ones = append(ones, 1)
	}
	return ones
}

func send(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `channel send of a loop-dependent value inside a map range`
	}
}

func sendConstant(m map[string]int, ch chan struct{}) {
	for range m {
		ch <- struct{}{}
	}
}

func firstMatch(m map[string]int) (string, bool) {
	for k, v := range m {
		if v > 0 {
			return k, true // want `return of a loop-dependent value inside a map range`
		}
	}
	return "", false
}

func contains(m map[string]int, want int) bool {
	for _, v := range m {
		if v == want {
			return true
		}
	}
	return false
}

func sum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

func sliceRangeIsFine(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

func inClosureUnsorted(m map[string]int) func() []string {
	return func() []string {
		var ks []string
		for k := range m {
			ks = append(ks, k) // want `append of a loop-dependent value inside a map range`
		}
		return ks
	}
}

func inClosureSorted(m map[string]int) func() []string {
	return func() []string {
		var ks []string
		for k := range m {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		return ks
	}
}

func allowedAbove(m map[string]int) []string {
	var ks []string
	for k := range m {
		//apsslint:allow mapiter the caller treats this as an unordered set and never iterates it
		ks = append(ks, k)
	}
	return ks
}

func allowedTrailing(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k //apsslint:allow mapiter fan-out to an order-insensitive consumer
	}
}
