package mapiter_test

import (
	"testing"

	"bayeslsh/internal/analysis/analysistest"
	"bayeslsh/internal/analysis/mapiter"
)

func TestMapIter(t *testing.T) {
	analysistest.Run(t, mapiter.Analyzer, "testdata/src/mapiter", "mapiter")
}
