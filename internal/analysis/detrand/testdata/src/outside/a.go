// Package outside is analyzer testdata checked under a non-result
// import path: clocks and math/rand are not detrand's business here
// (the serving and tooling layers time requests legitimately).
package outside

import (
	"math/rand"
	"time"
)

func latency(start time.Time) time.Duration {
	return time.Since(start)
}

func jitter(n int) int {
	return rand.Intn(n)
}
