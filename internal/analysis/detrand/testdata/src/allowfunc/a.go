// Package allowfunc is analyzer testdata checked under the import
// path bayeslsh: mergeRun and SearchContext are on the baked clock
// allowlist (their clock reads feed declared stats fields), other
// functions are not.
package allowfunc

import "time"

func mergeRun() time.Duration {
	start := time.Now()
	return time.Since(start)
}

func SearchContext() time.Time {
	return time.Now()
}

func notAllowlisted() time.Time {
	return time.Now() // want `time.Now in result-producing package bayeslsh outside the stats allowlist`
}
