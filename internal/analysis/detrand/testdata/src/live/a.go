// Package live is analyzer testdata checked under the import path
// bayeslsh/internal/live, a result-producing package.
package live

import (
	"math/rand"
	"time"
)

func seedFromClock() int64 {
	return time.Now().UnixNano() // want `time.Now in result-producing package`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since in result-producing package`
}

func pick(n int) int {
	return rand.Intn(n) // want `rand.Intn in result-producing package`
}

func newRNG() *rand.Rand {
	return rand.New(rand.NewSource(1)) // want `rand.New in result-producing package` `rand.NewSource in result-producing package`
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand.Shuffle in result-producing package`
}

func allowedDirective() time.Time {
	//apsslint:allow detrand feeds a log line only, never a result
	return time.Now()
}
