package live

import (
	"testing"
	"time"
)

// Test files are exempt: benchmarks and tests measure wall time
// legitimately.
func TestClockIsFineHere(t *testing.T) {
	_ = time.Now()
}
