// Package detrand keeps ambient nondeterminism — wall clocks and
// globally-seeded PRNGs — out of the result-producing packages. The
// determinism contract (PR 1, re-proven by every harness since):
// results are bit-identical at any Parallelism/BatchSize/shard count
// for a fixed seed. math/rand's global functions and time-derived
// seeds break that silently; all randomness must be derived from the
// master seed via rng.Derive, and clocks may only feed the explicitly
// allowlisted stats/latency fields.
package detrand

import (
	"go/ast"

	"bayeslsh/internal/analysis"
)

// resultPackages are the packages whose outputs feed query results;
// inside them, ambient randomness or clocks can change what the
// system answers.
var resultPackages = map[string]bool{
	"bayeslsh":                   true,
	"bayeslsh/internal/core":     true,
	"bayeslsh/internal/sighash":  true,
	"bayeslsh/internal/minhash":  true,
	"bayeslsh/internal/l2lsh":    true,
	"bayeslsh/internal/lshindex": true,
	"bayeslsh/internal/allpairs": true,
	"bayeslsh/internal/ppjoin":   true,
	"bayeslsh/internal/exact":    true,
	"bayeslsh/internal/live":     true,
	"bayeslsh/internal/cluster":  true,
	"bayeslsh/internal/pair":     true,
	"bayeslsh/internal/planner":  true,
	"bayeslsh/internal/rescache": true,
}

// clockAllowlist maps package path -> function or method names where
// time.Now/time.Since are sanctioned: they feed stats or latency
// fields that are documented as non-deterministic observability data
// and never influence which pairs are produced. Adding a function
// here is a declaration that every clock read in it lands in such a
// field — keep entries justified.
var clockAllowlist = map[string]map[string]bool{
	"bayeslsh": {
		"SearchContext":  true, // Output.VerifyTime for the single-phase pipelines
		"searchTwoPhase": true, // Output.CandGenTime / Output.VerifyTime
		"buildIndexCtx":  true, // IndexStats.BuildTime
		"mergeRun":       true, // LiveStats.LastMerge duration
	},
}

// forbiddenPkgs are import paths whose direct use is flagged
// wholesale inside result packages.
var forbiddenPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// Analyzer implements the detrand contract.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc: "no math/rand or wall clocks in result-producing packages; randomness flows from rng.Derive\n" +
		"Results must be bit-identical for a fixed seed at any parallelism, so the\n" +
		"packages that produce them may not consult math/rand (globally seeded,\n" +
		"schedule-dependent) or time.Now/time.Since outside the allowlisted stats\n" +
		"functions. Derive per-work-item seeds with rng.Derive(seed, ids...) and\n" +
		"construct generators with rng.New. _test.go files are exempt.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !resultPackages[pass.Pkg.Path()] {
		return nil
	}
	allowed := clockAllowlist[pass.Pkg.Path()]
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			inAllowedFunc := allowed[fd.Name.Name]
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := analysis.Callee(pass.TypesInfo, call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				switch {
				case forbiddenPkgs[fn.Pkg().Path()]:
					pass.Reportf(call.Pos(),
						"%s.%s in result-producing package %s: randomness must be derived from the master seed (rng.Derive / rng.New), never from %s",
						fn.Pkg().Name(), fn.Name(), pass.Pkg.Path(), fn.Pkg().Path())
				case analysis.IsPkgFunc(fn, "time", "Now") || analysis.IsPkgFunc(fn, "time", "Since"):
					if !inAllowedFunc {
						pass.Reportf(call.Pos(),
							"time.%s in result-producing package %s outside the stats allowlist: clocks may only feed declared stats/latency fields (detrand.clockAllowlist), results must not depend on wall time",
							fn.Name(), pass.Pkg.Path())
					}
				}
				return true
			})
		}
	}
	return nil
}
