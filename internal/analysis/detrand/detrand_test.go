package detrand_test

import (
	"testing"

	"bayeslsh/internal/analysis/analysistest"
	"bayeslsh/internal/analysis/detrand"
)

func TestResultPackage(t *testing.T) {
	analysistest.Run(t, detrand.Analyzer, "testdata/src/live", "bayeslsh/internal/live")
}

func TestClockAllowlistedFunctions(t *testing.T) {
	analysistest.Run(t, detrand.Analyzer, "testdata/src/allowfunc", "bayeslsh")
}

func TestOutsideResultPackages(t *testing.T) {
	analysistest.Run(t, detrand.Analyzer, "testdata/src/outside", "example.com/outside")
}
