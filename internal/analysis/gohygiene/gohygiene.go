// Package gohygiene flags raw go statements outside the sanctioned
// concurrency layer. Every goroutine in the serving path must run
// inside the internal/shard pool primitives (Run/RunCtx/Collect/
// CollectCtx/StreamCtx, Coalescer), which carry the cancellation and
// goroutine-leak accounting the PR 4 and PR 6 harnesses verify; a
// raw `go` statement anywhere else escapes that accounting.
package gohygiene

import (
	"go/ast"
	"strings"

	"bayeslsh/internal/analysis"
)

// poolPackage is the one package allowed to create goroutines freely:
// it is the concurrency substrate itself.
const poolPackage = "bayeslsh/internal/shard"

// allowedFiles are lifecycle files permitted to spawn supervision
// goroutines directly (matched by path suffix): process-level signal
// and drain plumbing that exists exactly once and is torn down with
// the process, so pool accounting adds nothing.
var allowedFiles = []string{}

// Analyzer implements the gohygiene contract.
var Analyzer = &analysis.Analyzer{
	Name: "gohygiene",
	Doc: "goroutines only via internal/shard pools (leak accounting); raw go statements elsewhere need //apsslint:allow\n" +
		"Raw go statements outside internal/shard escape the pool's cancellation and\n" +
		"goroutine-leak accounting that the serving harnesses verify. Use shard.Run/\n" +
		"RunCtx/Collect/CollectCtx/StreamCtx or shard.NewCoalescer, or justify the\n" +
		"exception with //apsslint:allow gohygiene <reason>. _test.go files are exempt:\n" +
		"test harnesses drive concurrency on purpose.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == poolPackage {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		filename := pass.Fset.Position(f.Pos()).Filename
		if allowedFile(filename) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(),
					"raw go statement outside internal/shard: use the shard pool primitives (Run/RunCtx/Collect/StreamCtx, Coalescer) so the goroutine is counted and canceled, or add //apsslint:allow gohygiene <reason>")
			}
			return true
		})
	}
	return nil
}

func allowedFile(name string) bool {
	for _, suffix := range allowedFiles {
		if strings.HasSuffix(name, suffix) {
			return true
		}
	}
	return false
}
