package gohygiene_test

import (
	"testing"

	"bayeslsh/internal/analysis/analysistest"
	"bayeslsh/internal/analysis/gohygiene"
)

func TestPlainPackage(t *testing.T) {
	analysistest.Run(t, gohygiene.Analyzer, "testdata/src/plain", "example.com/plain")
}

func TestShardPackageExempt(t *testing.T) {
	analysistest.Run(t, gohygiene.Analyzer, "testdata/src/shard", "bayeslsh/internal/shard")
}
