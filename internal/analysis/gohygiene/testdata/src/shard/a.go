// Package shard is analyzer testdata checked under the import path
// bayeslsh/internal/shard — the concurrency substrate itself, where
// raw go statements are the point.
package shard

func run(f func()) chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		f()
	}()
	return done
}
