package plain

import "testing"

// Test files are exempt: harnesses drive concurrency on purpose.
func TestRawGoIsFineHere(t *testing.T) {
	done := make(chan struct{})
	go close(done)
	<-done
}
