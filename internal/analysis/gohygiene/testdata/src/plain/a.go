// Package plain is analyzer testdata checked under an ordinary
// import path: raw go statements are flagged unless justified.
package plain

func fire(ch chan int) {
	go func() { ch <- 1 }() // want `raw go statement outside internal/shard`
}

func fireNamed(f func()) {
	go f() // want `raw go statement outside internal/shard`
}

func sequentialIsFine(f func()) {
	f()
	defer f()
}

func allowedSupervisor(f func()) {
	//apsslint:allow gohygiene process-lifetime supervisor, torn down with the process
	go f()
}
