package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
)

// A Unit is one parsed, type-checked package ready for analysis: the
// non-test package, the package including its in-package _test.go
// files, or an external _test package.
type Unit struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// NewInfo returns a types.Info with every map the analyzers consult
// allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// Typecheck parses and type-checks one package unit from explicit
// file names, resolving imports through imp (which must share fset).
func Typecheck(fset *token.FileSet, imp types.Importer, importPath string, filenames []string) (*Unit, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", importPath, err)
	}
	return &Unit{ImportPath: importPath, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// listedPackage is the subset of `go list -json` output the loader
// needs.
type listedPackage struct {
	ImportPath   string
	Dir          string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
}

// Load lists patterns with the go command from dir (the module root)
// and type-checks every matched package from source with the stdlib
// source importer — the build environment has no export data and no
// x/tools, so source is the only truth available. With includeTests,
// in-package test files are folded into their package's unit and
// external _test packages become units of their own.
//
// The source importer resolves module-internal imports by invoking
// `go list` through go/build, which requires build.Default.Dir to
// point into the module; Load sets it to dir for the life of the
// process (the apsslint binary and its tests are the only callers).
func Load(dir string, patterns []string, includeTests bool) ([]*Unit, error) {
	args := append([]string{"list", "-e", "-json=ImportPath,Dir,GoFiles,TestGoFiles,XTestGoFiles", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}

	build.Default.Dir = dir
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)

	var units []*Unit
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding: %v", patterns, err)
		}
		abs := func(names []string) []string {
			out := make([]string, len(names))
			for i, n := range names {
				out[i] = filepath.Join(p.Dir, n)
			}
			return out
		}
		files := abs(p.GoFiles)
		if includeTests {
			files = append(files, abs(p.TestGoFiles)...)
		}
		if len(files) > 0 {
			u, err := Typecheck(fset, imp, p.ImportPath, files)
			if err != nil {
				return nil, err
			}
			units = append(units, u)
		}
		if includeTests && len(p.XTestGoFiles) > 0 {
			u, err := Typecheck(fset, imp, p.ImportPath+"_test", abs(p.XTestGoFiles))
			if err != nil {
				return nil, err
			}
			units = append(units, u)
		}
	}
	return units, nil
}
