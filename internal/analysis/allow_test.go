package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "a.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, []*ast.File{f}
}

func TestDirectivesParsing(t *testing.T) {
	src := `package p

//apsslint:allow mapiter order never escapes, keys are re-sorted below
func a() {}

//apsslint:allow detrand
func b() {}

//apsslint:allow
func c() {}

// a plain comment, not a directive
func d() {}
`
	fset, files := parseOne(t, src)
	ds := Directives(fset, files)
	if len(ds) != 3 {
		t.Fatalf("got %d directives, want 3: %+v", len(ds), ds)
	}
	want := []Directive{
		{Line: 3, Analyzer: "mapiter", Reason: "order never escapes, keys are re-sorted below"},
		{Line: 6, Analyzer: "detrand", Reason: ""},
		{Line: 9, Analyzer: "", Reason: ""},
	}
	for i, w := range want {
		got := ds[i]
		if got.Line != w.Line || got.Analyzer != w.Analyzer || got.Reason != w.Reason {
			t.Errorf("directive %d = {Line:%d Analyzer:%q Reason:%q}, want {Line:%d Analyzer:%q Reason:%q}",
				i, got.Line, got.Analyzer, got.Reason, w.Line, w.Analyzer, w.Reason)
		}
		if got.File != "a.go" {
			t.Errorf("directive %d File = %q, want a.go", i, got.File)
		}
	}
}

func TestFilterSuppressesSameAndNextLine(t *testing.T) {
	src := `package p

//apsslint:allow mapiter reason one
func a() {}

func trailing() {} //apsslint:allow mapiter reason two
`
	fset, files := parseOne(t, src)
	known := map[string]bool{"mapiter": true}

	posOnLine := func(line int) token.Pos {
		tf := fset.File(files[0].Pos())
		return tf.LineStart(line)
	}
	diags := []Diagnostic{
		{Pos: posOnLine(4), Analyzer: "mapiter", Message: "under a standalone directive"},
		{Pos: posOnLine(6), Analyzer: "mapiter", Message: "on the directive's own line"},
		{Pos: posOnLine(4), Analyzer: "detrand", Message: "different analyzer, not covered"},
		{Pos: posOnLine(5), Analyzer: "mapiter", Message: "blank line between: out of range"},
	}
	// Register detrand as known so its finding survives as a real
	// diagnostic rather than tripping the unknown-analyzer check.
	known["detrand"] = true

	out := Filter(fset, files, diags, known)
	var msgs []string
	for _, d := range out {
		msgs = append(msgs, d.Message)
	}
	got := strings.Join(msgs, "; ")
	if len(out) != 2 ||
		!strings.Contains(got, "different analyzer, not covered") ||
		!strings.Contains(got, "blank line between: out of range") {
		t.Fatalf("Filter kept %q, want exactly the uncovered analyzer + out-of-range findings", got)
	}
}

func TestFilterFlagsMalformedDirectives(t *testing.T) {
	src := `package p

//apsslint:allow detrand
func missingReason() {}

//apsslint:allow
func missingEverything() {}

//apsslint:allow nosuch because reasons
func unknownAnalyzer() {}
`
	fset, files := parseOne(t, src)
	out := Filter(fset, files, nil, map[string]bool{"detrand": true})
	if len(out) != 3 {
		t.Fatalf("got %d diagnostics, want 3: %+v", len(out), out)
	}
	for _, d := range out {
		if d.Analyzer != "allow" {
			t.Errorf("diagnostic %q attributed to %q, want the allow pseudo-analyzer", d.Message, d.Analyzer)
		}
	}
	if !strings.Contains(out[0].Message, "non-empty reason") {
		t.Errorf("missing-reason message = %q", out[0].Message)
	}
	if !strings.Contains(out[2].Message, "unknown analyzer nosuch") {
		t.Errorf("unknown-analyzer message = %q", out[2].Message)
	}
}

func TestMalformedDirectiveDoesNotSuppress(t *testing.T) {
	src := `package p

//apsslint:allow detrand
func missingReason() {}
`
	fset, files := parseOne(t, src)
	tf := fset.File(files[0].Pos())
	diags := []Diagnostic{{Pos: tf.LineStart(4), Analyzer: "detrand", Message: "still reported"}}
	out := Filter(fset, files, diags, map[string]bool{"detrand": true})
	if len(out) != 2 {
		t.Fatalf("got %d diagnostics, want the malformed-directive finding plus the original: %+v", len(out), out)
	}
}
