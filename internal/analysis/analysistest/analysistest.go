// Package analysistest runs one analyzer over a testdata package and
// checks its diagnostics against // want comments, in the spirit of
// golang.org/x/tools/go/analysis/analysistest (which is unavailable
// offline). Each `// want` comment carries one or more Go-quoted
// regular expressions, each of which must match a distinct diagnostic
// reported on that line; diagnostics on lines without a matching want
// are failures, as are wants nothing matched. Diagnostics are taken
// after allow-directive filtering, so testdata can also prove that
// //apsslint:allow suppresses (and that malformed directives are
// themselves findings).
package analysistest

import (
	"go/importer"
	"go/scanner"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"bayeslsh/internal/analysis"
)

// Run analyzes the testdata package in dir under the package path
// importPath (which matters to path-scoped analyzers like detrand)
// and asserts its diagnostics equal the // want expectations.
func Run(t *testing.T, a *analysis.Analyzer, dir, importPath string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var filenames []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			filenames = append(filenames, filepath.Join(dir, e.Name()))
		}
	}
	if len(filenames) == 0 {
		t.Fatalf("no Go files in %s", dir)
	}
	sort.Strings(filenames)

	fset := token.NewFileSet()
	unit, err := analysis.Typecheck(fset, importer.ForCompiler(fset, "source", nil), importPath, filenames)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(unit, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	type key struct {
		file string
		line int
	}
	got := make(map[key][]string)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		got[k] = append(got[k], d.Message)
	}

	for _, fn := range filenames {
		w := wants(t, fn)
		lines := make([]int, 0, len(w))
		for line := range w {
			lines = append(lines, line)
		}
		sort.Ints(lines)
		for _, line := range lines {
			patterns := w[line]
			k := key{fn, line}
			msgs := got[k]
			for _, pat := range patterns {
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", fn, line, pat, err)
				}
				matched := -1
				for i, m := range msgs {
					if m != "" && re.MatchString(m) {
						matched = i
						break
					}
				}
				if matched < 0 {
					t.Errorf("%s:%d: no diagnostic matching %q", fn, line, pat)
					continue
				}
				msgs[matched] = "" // consume
			}
			rest := msgs[:0]
			for _, m := range msgs {
				if m != "" {
					rest = append(rest, m)
				}
			}
			if len(rest) == 0 {
				delete(got, k)
			} else {
				got[k] = rest
			}
		}
	}
	for k, msgs := range got {
		for _, m := range msgs {
			t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, m)
		}
	}
}

// wants extracts the // want expectations per line of file. The
// comment grammar is `// want "re"` with any number of Go string
// literals (double- or back-quoted).
func wants(t *testing.T, file string) map[int][]string {
	t.Helper()
	src, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	tf := fset.AddFile(file, fset.Base(), len(src))
	var s scanner.Scanner
	s.Init(tf, src, nil, scanner.ScanComments)
	out := make(map[int][]string)
	for {
		pos, tok, lit := s.Scan()
		if tok == token.EOF {
			break
		}
		if tok != token.COMMENT {
			continue
		}
		text, ok := strings.CutPrefix(lit, "//")
		if !ok {
			continue
		}
		text = strings.TrimSpace(text)
		rest, ok := strings.CutPrefix(text, "want ")
		if !ok {
			continue
		}
		line := fset.Position(pos).Line
		for rest = strings.TrimSpace(rest); rest != ""; rest = strings.TrimSpace(rest) {
			q, err := strconv.QuotedPrefix(rest)
			if err != nil {
				t.Fatalf("%s:%d: malformed want comment (Go string literals expected): %q", file, line, lit)
			}
			pat, err := strconv.Unquote(q)
			if err != nil {
				t.Fatalf("%s:%d: %v", file, line, err)
			}
			out[line] = append(out[line], pat)
			rest = rest[len(q):]
		}
	}
	return out
}
