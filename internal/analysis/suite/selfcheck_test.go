package suite_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bayeslsh/internal/analysis"
	"bayeslsh/internal/analysis/suite"
)

// moduleRoot walks up from the test's working directory to the
// directory holding go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

// TestRepoIsLintClean runs the whole apsslint suite over ./...
// (tests included) and requires zero findings: every contract
// violation in the tree has been fixed or carries a reasoned
// //apsslint:allow. This is the same check CI runs via
// go vet -vettool=apsslint; keeping it as a test means a plain
// `go test ./...` catches regressions too.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repo from source; skipped with -short")
	}
	root := moduleRoot(t)
	units, err := analysis.Load(root, []string{"./..."}, true)
	if err != nil {
		t.Fatalf("load ./...: %v", err)
	}
	for _, u := range units {
		diags, err := analysis.Run(u, suite.Analyzers())
		if err != nil {
			t.Fatalf("run %s: %v", u.ImportPath, err)
		}
		for _, d := range diags {
			pos := u.Fset.Position(d.Pos)
			t.Errorf("%s: [%s] %s", pos, d.Analyzer, d.Message)
		}
	}
}

// TestAllowDirectivesHaveReasons audits every //apsslint:allow in the
// tree (testdata fixtures excluded — they exercise the directives
// themselves): the named analyzer must exist and the reason must be
// non-empty. The suite's Filter enforces this for loaded packages;
// this walk also covers files no build constraint currently selects.
func TestAllowDirectivesHaveReasons(t *testing.T) {
	root := moduleRoot(t)
	known := make(map[string]bool)
	for _, a := range suite.Analyzers() {
		known[a.Name] = true
	}
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		for _, dir := range analysis.Directives(fset, []*ast.File{f}) {
			rel, _ := filepath.Rel(root, dir.File)
			switch {
			case dir.Analyzer == "" || dir.Reason == "":
				t.Errorf("%s:%d: apsslint:allow without an analyzer name and reason", rel, dir.Line)
			case !known[dir.Analyzer]:
				t.Errorf("%s:%d: apsslint:allow names unknown analyzer %q", rel, dir.Line, dir.Analyzer)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
