// Package suite registers the project's contract analyzers in the
// order they are run and reported. It exists apart from
// internal/analysis so the framework does not import its own
// analyzers (the analyzers import the framework).
package suite

import (
	"bayeslsh/internal/analysis"
	"bayeslsh/internal/analysis/ctxflow"
	"bayeslsh/internal/analysis/detrand"
	"bayeslsh/internal/analysis/errwrap"
	"bayeslsh/internal/analysis/gohygiene"
	"bayeslsh/internal/analysis/mapiter"
)

// Analyzers returns the full apsslint suite.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		mapiter.Analyzer,
		detrand.Analyzer,
		ctxflow.Analyzer,
		errwrap.Analyzer,
		gohygiene.Analyzer,
	}
}
