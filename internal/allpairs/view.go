// Disk-servable (v3) AllPairs index. The v1 stream codec re-runs
// newSearcher at load (document-frequency ranks, processing-order
// sorts — O(corpus) work); the v3 section instead persists exactly
// what a probe touches — the per-feature posting lists in their
// processing order, the minsize-filter lengths, and the unindexed-
// prefix bounds — so a View serves Probe straight from the mapped
// bytes with no rebuild. Posting ids are zigzag-delta+varint
// compressed (processing order is not ascending), weights ride along
// as raw little-endian float64s.
//
// Section layout (section start is page- and therefore 8-aligned):
//
//	f64 t            cosine-space threshold the index was built at
//	u64 n            corpus size
//	u64 dim          feature-space dimensionality
//	sizes     n × u32    full vector lengths (minsize filter)
//	unidxLen  n × u32    unindexed-prefix lengths (bound check)
//	unidxMax  n × f64    unindexed-prefix max weights
//	dir   (dim+1) × u64  byte offsets into the posting blob
//	blob  per feature f at [dir[f], dir[f+1]): entries of
//	      (zigzag-delta uvarint id, raw f64 weight)
package allpairs

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"

	"bayeslsh/internal/snapshot"
	"bayeslsh/internal/vector"
)

// Source generates AllPairs candidates for a probed query vector: the
// heap Index and the mapped View implement it identically.
type Source interface {
	Probe(q vector.Vector) []int32
	Threshold() float64
}

const viewFixedHeader = 24

// WriteFixedSection serializes the index for disk serving.
func (ix *Index) WriteFixedSection(w *snapshot.Writer) {
	s := ix.s
	n := len(s.c.Vecs)
	w.F64(s.t)
	w.U64(uint64(n))
	w.U64(uint64(s.c.Dim))
	for _, sz := range s.sizes {
		w.U32(uint32(sz))
	}
	for _, u := range s.unidx {
		w.U32(uint32(u.Len()))
	}
	w.Pad(8)
	for _, m := range s.unidxMax {
		w.F64(m)
	}
	var off uint64
	var enc [binary.MaxVarintLen64]byte
	for f := range s.lists {
		w.U64(off)
		prev := int64(0)
		for _, p := range s.lists[f].entries {
			off += uint64(binary.PutUvarint(enc[:], snapshot.Zigzag(int64(p.id)-prev))) + 8
			prev = int64(p.id)
		}
	}
	w.U64(off)
	for f := range s.lists {
		prev := int64(0)
		for _, p := range s.lists[f].entries {
			w.Uvarint(snapshot.Zigzag(int64(p.id) - prev))
			prev = int64(p.id)
			w.F64(p.w)
		}
	}
}

// View serves AllPairs probes straight from a mapped v3 section,
// answering identically to the Index that wrote it. Immutable and
// safe for concurrent Probe calls after Validate has run.
type View struct {
	t        float64
	n, dim   int
	sizes    []uint32
	unidxLen []uint32
	unidxMax []float64
	dir      []uint64
	blob     []byte
	pool     sync.Pool // *probeState, reused across probes
}

// OpenView lays a View over a WriteFixedSection payload. Extents are
// validated against the bytes actually present; the posting walk is
// Validate, run on first touch with the section checksum.
func OpenView(buf []byte) (*View, error) {
	if len(buf) < viewFixedHeader {
		return nil, fmt.Errorf("%w: allpairs section %d bytes", snapshot.ErrCorrupt, len(buf))
	}
	r := snapshot.NewReader(buf)
	v := &View{t: r.F64()}
	n := r.U64()
	dim := r.U64()
	// Bound counts by the bytes present before arithmetic: each vector
	// costs 16 bytes of columns, each feature 8 bytes of directory.
	if !(v.t > 0 && v.t <= 1) || n > uint64(len(buf))/16 || dim < 1 || dim > uint64(vector.MaxSnapshotDim) || dim > uint64(len(buf))/8 {
		return nil, fmt.Errorf("%w: allpairs header t=%v n=%d dim=%d in %d bytes", snapshot.ErrCorrupt, v.t, n, dim, len(buf))
	}
	v.n, v.dim = int(n), int(dim)
	pad := n % 2 * 4 // two u32 columns of n entries end 8-aligned iff n even
	dirOff := uint64(viewFixedHeader) + 8*n + pad + 8*n + 8*(dim+1)
	if dirOff > uint64(len(buf)) {
		return nil, fmt.Errorf("%w: allpairs section %d bytes, header needs %d", snapshot.ErrCorrupt, len(buf), dirOff)
	}
	off := uint64(viewFixedHeader)
	v.sizes = snapshot.ViewU32s(buf[off : off+4*n])
	off += 4 * n
	v.unidxLen = snapshot.ViewU32s(buf[off : off+4*n])
	off += 4*n + pad
	v.unidxMax = snapshot.ViewF64s(buf[off : off+8*n])
	off += 8 * n
	v.dir = snapshot.ViewU64s(buf[off : off+8*(dim+1)])
	v.blob = buf[dirOff:]
	v.pool.New = func() any {
		return &probeState{accs: make([]float64, v.n)}
	}
	return v, nil
}

// Threshold returns the (cosine-space) threshold the index was built
// at.
func (v *View) Threshold() float64 { return v.t }

// Len returns the corpus size the postings were built over.
func (v *View) Len() int { return v.n }

// Validate walks the posting directory and every entry once —
// monotone directory, decodable ids inside the corpus, whole entries
// — so probes can decode without error paths.
func (v *View) Validate() error {
	if v.dir[0] != 0 || v.dir[v.dim] != uint64(len(v.blob)) {
		return fmt.Errorf("%w: allpairs directory spans [%d, %d) of %d blob bytes",
			snapshot.ErrCorrupt, v.dir[0], v.dir[v.dim], len(v.blob))
	}
	for f := 0; f < v.dim; f++ {
		off, end := v.dir[f], v.dir[f+1]
		if end < off || end > uint64(len(v.blob)) {
			return fmt.Errorf("%w: allpairs feature %d at [%d, %d)", snapshot.ErrCorrupt, f, off, end)
		}
		prev := int64(0)
		for off < end {
			d, k, err := snapshot.UvarintAt(v.blob[off:end])
			if err != nil {
				return fmt.Errorf("allpairs feature %d: %w", f, err)
			}
			off += uint64(k)
			id := prev + snapshot.Unzigzag(d)
			if id < 0 || id >= int64(v.n) {
				return fmt.Errorf("%w: allpairs feature %d: posting id %d outside corpus of %d", snapshot.ErrCorrupt, f, id, v.n)
			}
			prev = id
			if end-off < 8 {
				return fmt.Errorf("%w: allpairs feature %d: truncated weight", snapshot.ErrCorrupt, f)
			}
			off += 8
		}
	}
	for i, sz := range v.sizes {
		if v.unidxLen[i] > sz {
			return fmt.Errorf("%w: allpairs vector %d: unindexed %d of %d entries", snapshot.ErrCorrupt, i, v.unidxLen[i], sz)
		}
	}
	return nil
}

// Probe mirrors Index.Probe over the mapped postings: same entry
// order, same accumulation order, same bound arithmetic, so the
// emitted candidate set is bit-identical.
func (v *View) Probe(q vector.Vector) []int32 {
	var ids []int32
	if q.Len() == 0 {
		return nil
	}
	ps := v.pool.Get().(*probeState)
	defer v.pool.Put(ps)
	qmax := q.MaxVal()
	minsize := 0
	if qmax > 0 {
		minsize = int(math.Ceil(v.t/qmax - fpSlack))
	}
	touched := ps.touched[:0]
	for j, f := range q.Ind {
		if int(f) >= v.dim {
			continue // feature outside the corpus dimensionality
		}
		w := q.Val[j]
		off, end := v.dir[f], v.dir[f+1]
		prev := int64(0)
		skipping := true
		for off < end {
			d, k, _ := snapshot.UvarintAt(v.blob[off:end])
			id := int32(prev + snapshot.Unzigzag(d))
			prev = int64(id)
			pw := math.Float64frombits(binary.LittleEndian.Uint64(v.blob[off+uint64(k):]))
			off += uint64(k) + 8
			if skipping {
				if int(v.sizes[id]) < minsize {
					continue
				}
				skipping = false
			}
			if ps.accs[id] == 0 {
				touched = append(touched, id)
			}
			ps.accs[id] += w * pw
		}
	}
	for _, y := range touched {
		a := ps.accs[y]
		ps.accs[y] = 0
		bound := a + math.Min(float64(q.Len()), float64(v.unidxLen[y]))*qmax*v.unidxMax[y]
		if bound >= v.t-fpSlack {
			ids = append(ids, y)
		}
	}
	ps.touched = touched
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
