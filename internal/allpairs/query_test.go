package allpairs

import (
	"testing"

	"bayeslsh/internal/exact"
	"bayeslsh/internal/testutil"
)

// TestIndexProbeCoversTruePartners checks the probe's recall
// contract: for an in-corpus query vector, the probed candidate set
// contains every corpus vector whose similarity meets the threshold.
func TestIndexProbeCoversTruePartners(t *testing.T) {
	for _, m := range []exact.Measure{exact.Cosine, exact.Jaccard, exact.BinaryCosine} {
		c := testutil.SmallTextCorpus(t, 120, 5)
		th := 0.6
		if m != exact.Cosine {
			c = testutil.SmallBinaryCorpus(t, 120, 5)
			th = 0.4
		}
		ix, err := BuildIndexMeasure(c, m, th)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		truth := exact.Search(c, m, th)
		for i := range c.Vecs {
			got := map[int32]bool{}
			for _, id := range ix.Probe(TransformQuery(c.Vecs[i], m)) {
				got[id] = true
			}
			for _, r := range truth {
				if r.A == int32(i) && !got[r.B] {
					t.Fatalf("%v: probe %d missed true partner %d (sim %v)", m, i, r.B, r.Sim)
				}
				if r.B == int32(i) && !got[r.A] {
					t.Fatalf("%v: probe %d missed true partner %d (sim %v)", m, i, r.A, r.Sim)
				}
			}
		}
	}
}

// TestIndexProbeMatchesBatchDecisions checks that exact verification
// of the probe's candidates reproduces the batch search exactly.
func TestIndexProbeMatchesBatchDecisions(t *testing.T) {
	c := testutil.SmallTextCorpus(t, 120, 6)
	const th = 0.6
	ix, err := BuildIndexMeasure(c, exact.Cosine, th)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := Search(c, th)
	if err != nil {
		t.Fatal(err)
	}
	want := testutil.ResultKeySet(batch)
	for i := range c.Vecs {
		for _, id := range ix.Probe(c.Vecs[i]) {
			if id == int32(i) {
				continue
			}
			if s := exact.Cosine.Sim(c.Vecs[i], c.Vecs[id]); s >= th {
				key := uint64(uint32(min32(int32(i), id)))<<32 | uint64(uint32(max32(int32(i), id)))
				if _, ok := want[key]; !ok {
					t.Fatalf("probe %d found pair with %d (sim %v) absent from batch", i, id, s)
				}
			}
		}
	}
}

// TestIndexProbeEmptyAndForeignFeatures covers degenerate queries: an
// empty vector probes nothing, and features outside the corpus
// dimensionality are ignored rather than panicking.
func TestIndexProbeEmptyAndForeignFeatures(t *testing.T) {
	c := testutil.SmallTextCorpus(t, 50, 7)
	ix, err := BuildIndexMeasure(c, exact.Cosine, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if ids := ix.Probe(TransformQuery(c.Vecs[0].Binarize(), exact.Jaccard)); ids == nil {
		// A binarized in-corpus vector is a fine query; just ensure no panic.
		t.Log("binarized probe returned no candidates")
	}
	var empty = c.Vecs[0]
	empty.Ind, empty.Val = nil, nil
	if ids := ix.Probe(empty); len(ids) != 0 {
		t.Fatalf("empty query produced %d candidates", len(ids))
	}
	foreign := c.Vecs[1].Clone()
	for j := range foreign.Ind {
		foreign.Ind[j] += uint32(c.Dim) // all features out of range
	}
	if ids := ix.Probe(foreign); len(ids) != 0 {
		t.Fatalf("out-of-dimension query produced %d candidates", len(ids))
	}
	if ix.Threshold() != 0.5 {
		t.Fatalf("threshold accessor: %v", ix.Threshold())
	}
}
