// Incremental inverted index for the live index's delta segment. The
// built Index prunes its posting lists with corpus-global prefix
// bounds (per-feature maximum weights), which cannot be maintained
// under ingest: one new vector can change the bound — and therefore
// the indexed prefix — of every vector already indexed. The delta
// therefore indexes every feature of every vector, unfiltered. That
// keeps Add O(|x|) and makes the probe a lossless superset of any
// bound-filtered candidate set: a pair can meet a positive similarity
// threshold only by sharing at least one feature, so every qualifying
// delta vector is emitted, and the extra sub-threshold candidates are
// exactly what the AllPairs pipelines' verification already rejects
// on either path (see the package comment in query.go).
//
// A Delta is caller-synchronized, like the lshindex deltas: Add calls
// serialize with each other and with Probe (the live memtable's
// RWMutex).

package allpairs

import (
	"sort"

	"bayeslsh/internal/vector"
)

// Delta is an incrementally grown, unfiltered inverted index over a
// delta segment's vectors (in the index's work representation).
type Delta struct {
	lists map[uint32][]int32
}

// NewDelta returns an empty delta index.
func NewDelta() *Delta { return &Delta{lists: make(map[uint32][]int32)} }

// Add indexes vector id under every one of its features. Ids must be
// appended in increasing order so posting lists stay sorted.
func (d *Delta) Add(id int32, v vector.Vector) {
	for _, f := range v.Ind {
		d.lists[f] = append(d.lists[f], id)
	}
}

// Probe returns the ids < n of delta vectors sharing at least one
// feature with q, deduplicated and in ascending id order — a lossless
// superset of the corpus vectors whose similarity to q meets any
// positive threshold.
func (d *Delta) Probe(q vector.Vector, n int32) []int32 {
	seen := make(map[int32]struct{})
	for _, f := range q.Ind {
		for _, id := range d.lists[f] {
			if id >= n {
				break
			}
			seen[id] = struct{}{}
		}
	}
	if len(seen) == 0 {
		return nil
	}
	ids := make([]int32, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
