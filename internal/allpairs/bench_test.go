package allpairs

import (
	"testing"

	"bayeslsh/internal/dataset"
)

func BenchmarkSearchCosine(b *testing.B) {
	c, err := dataset.Generate(dataset.Spec{
		Name: "bench", Kind: dataset.Text,
		N: 1000, Dim: 5000, AvgLen: 50, ZipfS: 1.05,
		ClusterFrac: 0.3, ClusterSize: 4, MutationRate: 0.25, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	w := c.TfIdf().Normalize()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Search(w, 0.7); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCandidatesCosine(b *testing.B) {
	c, err := dataset.Generate(dataset.Spec{
		Name: "bench", Kind: dataset.Text,
		N: 1000, Dim: 5000, AvgLen: 50, ZipfS: 1.05,
		ClusterFrac: 0.3, ClusterSize: 4, MutationRate: 0.25, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	w := c.TfIdf().Normalize()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Candidates(w, 0.7); err != nil {
			b.Fatal(err)
		}
	}
}
