// Query-serving AllPairs: the batch entry points interleave (or
// stage) index building and probing and then throw the inverted index
// away. Index keeps the fully built index resident so single
// out-of-corpus vectors can be probed against it repeatedly — the
// probe-only path of the engine's build-once/query-many mode. A query
// probe replays the corpus probe of the sequential scan with one
// difference: it has no processing-order position, so it sees every
// corpus vector (a corpus vector only sees those processed before it).
// Candidate bounds are upper bounds on the true similarity, so every
// pair meeting the threshold is emitted by both the batch scan and the
// query probe; the two can disagree only on sub-threshold false
// candidates. Exact (and Lite) verification rejects those on either
// path, and the full-Bayes caller closes the same gap by
// exact-checking only its accepted hits on both paths — so query
// results equal batch results for every AllPairs pipeline.

package allpairs

import (
	"math"
	"sort"
	"sync"

	"bayeslsh/internal/exact"
	"bayeslsh/internal/vector"
)

// Index is an AllPairs inverted index built once over a corpus,
// serving point probes for query vectors. It is immutable after
// BuildIndex and safe for concurrent Probe calls.
type Index struct {
	s    *searcher
	pool sync.Pool // *probeState, reused across probes
}

// BuildIndex builds the inverted index over the collection at
// threshold t, indexing every vector to completion — the cheap, linear
// phase of the AllPairs scan (see Search for the input contract:
// unit-norm, non-negative weights).
func BuildIndex(c *vector.Collection, t float64) (*Index, error) {
	s, err := newSearcher(c, t)
	if err != nil {
		return nil, err
	}
	for _, xid := range s.order {
		s.indexVector(xid)
	}
	return newIndex(s), nil
}

// newIndex wraps a fully indexed searcher in the probe-serving Index —
// shared by BuildIndex and the snapshot loader.
func newIndex(s *searcher) *Index {
	ix := &Index{s: s}
	ix.pool.New = func() any {
		return &probeState{accs: make([]float64, len(s.c.Vecs))}
	}
	return ix
}

// BuildIndexMeasure builds the index under the given measure, applying
// the same input preprocessing and threshold mapping as the batch
// SearchMeasure (binary measures are binarized, normalized and run at
// the mapped cosine threshold). Query vectors passed to Probe must be
// preprocessed the same way; TransformQuery does exactly that.
func BuildIndexMeasure(c *vector.Collection, m exact.Measure, t float64) (*Index, error) {
	in, tc, err := measureInput(c, m, t)
	if err != nil {
		return nil, err
	}
	return BuildIndex(in, tc)
}

// TransformQuery maps a raw query vector into the representation the
// index's collection was built in: unchanged for Cosine (the caller
// normalizes, as for the corpus), binarized and unit-normalized for
// the binary measures.
func TransformQuery(q vector.Vector, m exact.Measure) vector.Vector {
	switch m {
	case exact.Jaccard, exact.BinaryCosine:
		return q.Binarize().Normalize()
	default:
		return q
	}
}

// Threshold returns the (cosine-space) threshold the index was built
// at.
func (ix *Index) Threshold() float64 { return ix.s.t }

// Probe returns the ids of corpus vectors that pass the AllPairs
// candidate bound against q, in ascending id order. q must be in the
// index's representation (see BuildIndexMeasure/TransformQuery). The
// id set is a superset of the corpus vectors whose similarity to q
// meets the built threshold; callers verify survivors under their
// measure.
func (ix *Index) Probe(q vector.Vector) []int32 {
	var ids []int32
	ix.probe(q, func(y int32, _ float64) { ids = append(ids, y) })
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// probe runs the index scan for q, calling emit(y, acc) for every
// corpus vector passing the upper-bound check, where acc is the dot
// product accumulated over y's indexed features. Unlike the corpus
// probe it does not filter by processing-order position: a query sees
// the whole corpus.
func (ix *Index) probe(q vector.Vector, emit func(y int32, acc float64)) {
	if q.Len() == 0 {
		return
	}
	s := ix.s
	ps := ix.pool.Get().(*probeState)
	defer ix.pool.Put(ps)
	qmax := q.MaxVal()
	minsize := 0
	if qmax > 0 {
		minsize = int(math.Ceil(s.t/qmax - fpSlack))
	}
	touched := ps.touched[:0]
	for j, f := range q.Ind {
		if int(f) >= len(s.lists) {
			continue // feature outside the corpus dimensionality
		}
		w := q.Val[j]
		skipping := true
		for _, p := range s.lists[f].entries {
			if skipping {
				if s.sizes[p.id] < minsize {
					continue
				}
				skipping = false
			}
			if ps.accs[p.id] == 0 {
				touched = append(touched, p.id)
			}
			ps.accs[p.id] += w * p.w
		}
	}
	for _, y := range touched {
		a := ps.accs[y]
		ps.accs[y] = 0
		yu := s.unidx[y]
		bound := a + math.Min(float64(q.Len()), float64(yu.Len()))*qmax*s.unidxMax[y]
		if bound >= s.t-fpSlack {
			emit(y, a)
		}
	}
	ps.touched = touched
}
