// Package allpairs implements the AllPairs exact all-pairs similarity
// search algorithm of Bayardo, Ma and Srikant (WWW 2007) — reference
// [3] of the BayesLSH paper, its primary exact baseline and the
// candidate generator of the AP+BayesLSH pipelines (§2, §5).
//
// # Pruning devices
//
// The implementation follows the paper's inverted-index design for
// cosine similarity over unit-normalized, non-negatively weighted
// vectors, with three of its pruning devices:
//
//   - Partial indexing: features of a vector are left out of the index
//     while b = Σ x_i·maxw_i stays below the threshold t, where maxw_i
//     is the global maximum weight of feature i. Any pair sharing only
//     unindexed features has dot product < t and can be safely missed.
//     The unindexed prefix x' is stored so that exact similarities can
//     be completed as s = A[y] + dot(x, y').
//   - Size filter (minsize): while probing with x, indexed vectors y
//     with |y| < t / maxweight(x) cannot reach the threshold and are
//     lazily removed from the postings lists (vectors are processed in
//     decreasing maxweight order, so the bound only tightens).
//   - Upper-bound check: a candidate is exactly verified only if
//     A[y] + min(|x|, |y'|)·maxweight(x)·maxweight(y') ≥ t.
//
// Features are ordered by decreasing document frequency when building
// the unindexed prefix, so the most common features (the longest
// postings lists) are preferentially kept out of the index — the
// ordering heuristic the original paper recommends.
//
// # Measures
//
// The same machinery generates candidates for Jaccard and binary
// cosine: binarize and normalize the vectors, then use the threshold
// mappings t_cos = 2t/(1+t) (Jaccard, by the AM-GM inequality) and
// t_cos = t (binary cosine), as the BayesLSH paper's binary
// experiments do (§5.1).
//
// # Sequential and sharded scans
//
// The classic scan is inherently sequential: each vector probes the
// index built from the vectors processed before it. The *Parallel
// variants split the scan into a sequential index-build phase (linear
// in the input) and a probe phase sharded over a worker pool, where
// each vector probes the completed index filtered to entries indexed
// before it — reproducing the sequential candidate stream exactly,
// pair for pair, at any worker count (see parallel.go for the
// argument).
package allpairs
