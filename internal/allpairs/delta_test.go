package allpairs

import (
	"testing"

	"bayeslsh/internal/exact"
	"bayeslsh/internal/vector"
)

// TestDeltaProbeLossless is the delta recall property the live index
// rests on: every vector sharing at least one feature with the query
// is returned (a lossless superset of any bound-filtered candidate
// set), ascending, deduplicated, and bounded by the visibility limit.
func TestDeltaProbeLossless(t *testing.T) {
	vecs := []vector.Vector{
		vector.FromMap(map[uint32]float64{0: 1, 1: 1}),
		vector.FromMap(map[uint32]float64{2: 1}),
		vector.FromMap(map[uint32]float64{1: 1, 2: 1}),
		{}, // empty: never a candidate
		vector.FromMap(map[uint32]float64{0: 1, 2: 1}),
	}
	d := NewDelta()
	for i, v := range vecs {
		d.Add(int32(i), v)
	}
	q := vector.FromMap(map[uint32]float64{1: 1, 2: 1})
	if got := d.Probe(q, 5); len(got) != 4 || got[0] != 0 || got[1] != 1 || got[2] != 2 || got[3] != 4 {
		t.Fatalf("Probe = %v, want [0 1 2 4]", got)
	}
	if got := d.Probe(q, 2); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("bounded Probe = %v, want [0 1]", got)
	}
	if got := d.Probe(vector.Vector{}, 5); got != nil {
		t.Fatalf("empty-query Probe = %v, want nil", got)
	}
	if got := d.Probe(vector.FromMap(map[uint32]float64{9: 1}), 5); got != nil {
		t.Fatalf("disjoint-query Probe = %v, want nil", got)
	}
}

// TestDeltaSupersetOfIndex checks the delta probe against the built
// index's bound-filtered probe: every candidate the built index
// emits, the delta emits too (the direction the live index needs),
// and every above-threshold neighbor appears in both.
func TestDeltaSupersetOfIndex(t *testing.T) {
	var vecs []vector.Vector
	for i := 0; i < 40; i++ {
		m := map[uint32]float64{}
		for j := 0; j < 5; j++ {
			m[uint32((i*3+j*5)%23)] = float64(1+(i+j)%3) / 2
		}
		vecs = append(vecs, vector.FromMap(m))
	}
	c := (&vector.Collection{Dim: 23, Vecs: vecs}).Normalize()
	vecs = c.Vecs
	const threshold = 0.6
	ix, err := BuildIndexMeasure(c, exact.Cosine, threshold)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDelta()
	for i, v := range vecs {
		d.Add(int32(i), TransformQuery(v, exact.Cosine))
	}
	for i, v := range vecs {
		q := TransformQuery(v, exact.Cosine)
		built := ix.Probe(q)
		delta := d.Probe(q, int32(len(vecs)))
		inDelta := map[int32]bool{}
		for _, id := range delta {
			inDelta[id] = true
		}
		for _, id := range built {
			if !inDelta[id] {
				t.Fatalf("query %d: built-index candidate %d missing from delta probe", i, id)
			}
		}
	}
}
