package allpairs

import (
	"testing"

	"bayeslsh/internal/exact"
	"bayeslsh/internal/pair"
	"bayeslsh/internal/testutil"
	"bayeslsh/internal/vector"
)

func TestSearchMatchesBruteForceCosine(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		c := testutil.SmallTextCorpus(t, 300, seed)
		for _, th := range []float64{0.5, 0.7, 0.9} {
			got, err := Search(c, th)
			if err != nil {
				t.Fatal(err)
			}
			want := exact.Search(c, exact.Cosine, th)
			testutil.RequireSameResults(t, got, want, 1e-9)
		}
	}
}

func TestSearchMeasureJaccardMatchesBruteForce(t *testing.T) {
	c := testutil.SmallBinaryCorpus(t, 300, 4)
	for _, th := range []float64{0.3, 0.5, 0.7} {
		got, err := SearchMeasure(c, exact.Jaccard, th)
		if err != nil {
			t.Fatal(err)
		}
		want := exact.Search(c, exact.Jaccard, th)
		testutil.RequireSameResults(t, got, want, 1e-9)
	}
}

func TestSearchMeasureBinaryCosineMatchesBruteForce(t *testing.T) {
	c := testutil.SmallBinaryCorpus(t, 300, 5)
	for _, th := range []float64{0.5, 0.7, 0.9} {
		got, err := SearchMeasure(c, exact.BinaryCosine, th)
		if err != nil {
			t.Fatal(err)
		}
		want := exact.Search(c, exact.BinaryCosine, th)
		testutil.RequireSameResults(t, got, want, 1e-9)
	}
}

func TestCandidatesSupersetOfResults(t *testing.T) {
	c := testutil.SmallTextCorpus(t, 300, 6)
	th := 0.6
	cands, err := Candidates(c, th)
	if err != nil {
		t.Fatal(err)
	}
	ck := testutil.PairKeySet(cands)
	for _, r := range exact.Search(c, exact.Cosine, th) {
		if _, ok := ck[r.Pair().Key()]; !ok {
			t.Fatalf("true positive %d-%d (sim %v) missing from candidates", r.A, r.B, r.Sim)
		}
	}
	// And candidates should be far fewer than all pairs.
	n := len(c.Vecs)
	if len(cands) >= n*(n-1)/2 {
		t.Errorf("candidate set (%d) not smaller than all pairs", len(cands))
	}
}

func TestCandidatesMeasureJaccardSuperset(t *testing.T) {
	c := testutil.SmallBinaryCorpus(t, 300, 7)
	th := 0.4
	cands, err := CandidatesMeasure(c, exact.Jaccard, th)
	if err != nil {
		t.Fatal(err)
	}
	ck := testutil.PairKeySet(cands)
	for _, r := range exact.Search(c, exact.Jaccard, th) {
		if _, ok := ck[r.Pair().Key()]; !ok {
			t.Fatalf("true positive %d-%d missing from Jaccard candidates", r.A, r.B)
		}
	}
}

func TestRejectsBadInput(t *testing.T) {
	c := &vector.Collection{Dim: 3, Vecs: []vector.Vector{
		vector.New([]vector.Entry{{Ind: 0, Val: 1}, {Ind: 1, Val: -2}}),
	}}
	if _, err := Search(c, 0.5); err == nil {
		t.Error("negative weights accepted")
	}
	good := &vector.Collection{Dim: 3, Vecs: []vector.Vector{
		vector.New([]vector.Entry{{Ind: 0, Val: 1}}),
	}}
	if _, err := Search(good, 0); err == nil {
		t.Error("threshold 0 accepted")
	}
	if _, err := Search(good, 1.5); err == nil {
		t.Error("threshold > 1 accepted")
	}
	if _, err := SearchMeasure(good, exact.Measure(42), 0.5); err == nil {
		t.Error("unknown measure accepted")
	}
	unnormalized := &vector.Collection{Dim: 3, Vecs: []vector.Vector{
		vector.New([]vector.Entry{{Ind: 0, Val: 2}, {Ind: 1, Val: 3}}),
	}}
	if _, err := Search(unnormalized, 0.5); err == nil {
		t.Error("unnormalized input accepted; the pruning bounds would be unsound")
	}
}

func TestEmptyAndSingletonCollections(t *testing.T) {
	empty := &vector.Collection{Dim: 4}
	if rs, err := Search(empty, 0.5); err != nil || len(rs) != 0 {
		t.Errorf("empty collection: %v, %v", rs, err)
	}
	one := &vector.Collection{Dim: 4, Vecs: []vector.Vector{
		vector.New([]vector.Entry{{Ind: 1, Val: 1}}),
	}}
	if rs, err := Search(one, 0.5); err != nil || len(rs) != 0 {
		t.Errorf("singleton collection: %v, %v", rs, err)
	}
	withEmptyVec := &vector.Collection{Dim: 4, Vecs: []vector.Vector{
		{},
		vector.New([]vector.Entry{{Ind: 1, Val: 1}}),
		vector.New([]vector.Entry{{Ind: 1, Val: 1}}),
	}}
	rs, err := Search(withEmptyVec, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Pair() != pair.Make(1, 2) {
		t.Errorf("identical pair not found: %v", rs)
	}
}

func TestIdenticalVectorsFound(t *testing.T) {
	v := vector.New([]vector.Entry{{Ind: 0, Val: 0.6}, {Ind: 2, Val: 0.8}})
	c := &vector.Collection{Dim: 3, Vecs: []vector.Vector{v, v.Clone(), v.Clone()}}
	rs, err := Search(c, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Errorf("expected 3 identical pairs, got %v", rs)
	}
}

func TestJaccardCosineThreshold(t *testing.T) {
	if got := JaccardCosineThreshold(1); got != 1 {
		t.Errorf("map(1) = %v", got)
	}
	if got := JaccardCosineThreshold(0.5); got != 2*0.5/1.5 {
		t.Errorf("map(0.5) = %v", got)
	}
}
