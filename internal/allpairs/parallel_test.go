package allpairs

import (
	"testing"

	"bayeslsh/internal/exact"
	"bayeslsh/internal/testutil"
)

// TestCandidatesParallelMatchesSequential checks the strong guarantee
// of the sharded scan: the candidate stream is identical to the
// sequential scan pair-for-pair, including order.
func TestCandidatesParallelMatchesSequential(t *testing.T) {
	c := testutil.SmallTextCorpus(t, 400, 9)
	for _, th := range []float64{0.5, 0.7, 0.9} {
		want, err := Candidates(c, th)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 7} {
			got, err := CandidatesParallel(c, th, workers)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("t=%v workers=%d: %d candidates, want %d", th, workers, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("t=%v workers=%d: candidate %d is %v, want %v", th, workers, i, got[i], want[i])
				}
			}
		}
	}
}

func TestSearchParallelMatchesSequential(t *testing.T) {
	c := testutil.SmallTextCorpus(t, 400, 10)
	for _, th := range []float64{0.5, 0.7, 0.9} {
		want, err := Search(c, th)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SearchParallel(c, th, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("t=%v: %d results, want %d", th, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("t=%v: result %d is %+v, want %+v", th, i, got[i], want[i])
			}
		}
	}
}

func TestSearchMeasureParallelMatchesBruteForce(t *testing.T) {
	c := testutil.SmallBinaryCorpus(t, 300, 12)
	for _, m := range []exact.Measure{exact.Jaccard, exact.BinaryCosine} {
		th := 0.5
		got, err := SearchMeasureParallel(c, m, th, 4, 64)
		if err != nil {
			t.Fatal(err)
		}
		want := exact.Search(c, m, th)
		testutil.RequireSameResults(t, got, want, 1e-12)
	}
}

func TestParallelRejectsBadInput(t *testing.T) {
	c := testutil.SmallTextCorpus(t, 50, 3)
	if _, err := CandidatesParallel(c, 1.5, 4); err == nil {
		t.Error("threshold 1.5 accepted")
	}
	if _, err := SearchParallel(c, 0, 4); err == nil {
		t.Error("threshold 0 accepted")
	}
}
