// Sharded AllPairs: the sequential algorithm interleaves probing and
// indexing (each vector probes the index of the vectors processed
// before it), which serializes the expensive probe phase. The parallel
// scan splits the two: first the inverted index is built to completion
// in processing order (cheap — indexing is linear in the input), then
// every vector probes the finished index on a worker pool. A probe
// against the full index reproduces the sequential probe exactly by
// filtering postings to vectors earlier in the processing order:
// postings are appended in processing order, so the entries a vector
// saw sequentially are precisely the prefix of each list with an
// earlier position, and the lazy minsize head-truncation is replayed
// statelessly by skipping the leading entries below the probe's own
// bound (the bound is monotone over the processing order, so entries
// truncated sequentially are exactly those skipped here). Each probe
// writes candidates into its own slot of a per-vector table, which is
// concatenated in processing order afterwards — the emitted stream is
// identical, pair for pair, to the sequential scan for any worker
// count.

package allpairs

import (
	"math"
	"sync"

	"bayeslsh/internal/exact"
	"bayeslsh/internal/pair"
	"bayeslsh/internal/shard"
	"bayeslsh/internal/vector"
)

// probeState is the per-worker scratch of the parallel probe phase.
type probeState struct {
	accs    []float64
	touched []int32
}

// probeFull replays x's sequential probe against the fully built
// index, calling emit(y, acc) for every candidate that passes the
// upper-bound check. stop (nil for "not cancelable") is polled between
// the probe's posting lists; an aborted probe emits nothing but still
// zeroes its accumulators, so a pooled probeState stays clean for
// whoever draws it next.
func (s *searcher) probeFull(xid int, ps *probeState, stop *shard.Stopper, emit func(y int32, acc float64)) {
	x := s.c.Vecs[xid]
	if x.Len() == 0 {
		return
	}
	xmax := x.MaxVal()
	minsize := 0
	if xmax > 0 {
		// Relaxed by fpSlack: rounding in t/xmax must not bump the
		// ceiling past a partner sitting exactly at the bound.
		minsize = int(math.Ceil(s.t/xmax - fpSlack))
	}
	xpos := s.pos[xid]
	touched := ps.touched[:0]
	aborted := false
	for j, f := range x.Ind {
		if stop.Stopped() {
			aborted = true
			break
		}
		w := x.Val[j]
		skipping := true
		for _, p := range s.lists[f].entries {
			if s.pos[p.id] >= xpos {
				break // indexed after x; the sequential probe never saw it
			}
			if skipping {
				if s.sizes[p.id] < minsize {
					continue
				}
				skipping = false
			}
			if ps.accs[p.id] == 0 {
				touched = append(touched, p.id)
			}
			ps.accs[p.id] += w * p.w
		}
	}
	for _, y := range touched {
		a := ps.accs[y]
		ps.accs[y] = 0
		if aborted {
			continue // cleanup only; the probe's output is discarded
		}
		yu := s.unidx[y]
		bound := a + math.Min(float64(x.Len()), float64(yu.Len()))*xmax*s.unidxMax[y]
		if bound >= s.t-fpSlack {
			emit(y, a)
		}
	}
	ps.touched = touched
}

// runParallel builds the index sequentially, then shards the probe
// phase over workers goroutines. collect(slot, y, acc) receives the
// candidates of the vector at processing-order position slot and must
// only touch state owned by that slot.
func (s *searcher) runParallel(workers int, collect func(slot int, x, y int32, acc float64)) {
	for _, xid := range s.order {
		s.indexVector(xid)
	}
	pool := sync.Pool{New: func() any {
		return &probeState{accs: make([]float64, len(s.c.Vecs))}
	}}
	shard.Run(len(s.order), workers, shard.Chunk(len(s.order), workers, 16), func(lo, hi, _ int) {
		ps := pool.Get().(*probeState)
		for p := lo; p < hi; p++ {
			xid := s.order[p]
			s.probeFull(xid, ps, nil, func(y int32, acc float64) {
				collect(p, int32(xid), y, acc)
			})
		}
		pool.Put(ps)
	})
}

// CandidatesParallel is Candidates with the probe phase sharded over
// workers goroutines; it returns the exact candidate stream of the
// sequential scan, in the same order. workers <= 1 falls back to the
// sequential scan.
func CandidatesParallel(c *vector.Collection, t float64, workers int) ([]pair.Pair, error) {
	if workers <= 1 {
		return Candidates(c, t)
	}
	s, err := newSearcher(c, t)
	if err != nil {
		return nil, err
	}
	perX := make([][]pair.Pair, len(s.order))
	s.runParallel(workers, func(slot int, x, y int32, _ float64) {
		perX[slot] = append(perX[slot], pair.Make(x, y))
	})
	var out []pair.Pair
	for _, ps := range perX {
		out = append(out, ps...)
	}
	return out, nil
}

// SearchParallel is Search with the probe phase sharded over workers
// goroutines; it returns the exact result stream of the sequential
// scan, in the same order.
func SearchParallel(c *vector.Collection, t float64, workers int) ([]pair.Result, error) {
	if workers <= 1 {
		return Search(c, t)
	}
	s, err := newSearcher(c, t)
	if err != nil {
		return nil, err
	}
	perX := make([][]pair.Result, len(s.order))
	s.runParallel(workers, func(slot int, x, y int32, acc float64) {
		if r, ok := s.finish(x, y, acc); ok {
			perX[slot] = append(perX[slot], r)
		}
	})
	var out []pair.Result
	for _, rs := range perX {
		out = append(out, rs...)
	}
	return out, nil
}

// CandidatesMeasureParallel generates AllPairs candidates under the
// given measure with the probe phase sharded over workers goroutines
// (see SearchMeasure for preprocessing rules).
func CandidatesMeasureParallel(c *vector.Collection, m exact.Measure, t float64, workers int) ([]pair.Pair, error) {
	if workers <= 1 {
		return CandidatesMeasure(c, m, t)
	}
	in, tc, err := measureInput(c, m, t)
	if err != nil {
		return nil, err
	}
	return CandidatesParallel(in, tc, workers)
}

// SearchMeasureParallel runs exact AllPairs under the given measure
// with the probe and verification phases sharded over workers
// goroutines (see SearchMeasure for preprocessing rules).
func SearchMeasureParallel(c *vector.Collection, m exact.Measure, t float64, workers, batch int) ([]pair.Result, error) {
	if workers <= 1 {
		return SearchMeasure(c, m, t)
	}
	switch m {
	case exact.Cosine:
		return SearchParallel(c, t, workers)
	default:
		// Binary measures (and the unknown-measure error) go through
		// the shared candidate mapping, then verify under the
		// requested measure — mirroring SearchMeasure.
		cands, err := CandidatesMeasureParallel(c, m, t, workers)
		if err != nil {
			return nil, err
		}
		return exact.VerifyParallel(c, m, t, cands, workers, batch), nil
	}
}
