package allpairs

import (
	"testing"

	"bayeslsh/internal/exact"
	"bayeslsh/internal/rng"
	"bayeslsh/internal/testutil"
	"bayeslsh/internal/vector"
)

// TestSearchRandomCorporaAgainstBruteForce stresses AllPairs with
// adversarial small corpora: duplicate vectors, singletons, heavy
// feature reuse, extreme weight skew.
func TestSearchRandomCorporaAgainstBruteForce(t *testing.T) {
	src := rng.New(321)
	for trial := 0; trial < 8; trial++ {
		n := 40 + src.Intn(60)
		dim := 30 + src.Intn(50)
		vecs := make([]vector.Vector, 0, n)
		for i := 0; i < n; i++ {
			if i > 0 && src.Float64() < 0.1 {
				// Exact duplicate of an earlier vector.
				vecs = append(vecs, vecs[src.Intn(len(vecs))].Clone())
				continue
			}
			m := map[uint32]float64{}
			l := 1 + src.Intn(10)
			for j := 0; j < l; j++ {
				w := src.Float64()
				if src.Float64() < 0.2 {
					w *= 50 // heavy skew
				}
				if w > 0 {
					m[uint32(src.Intn(dim))] = w
				}
			}
			vecs = append(vecs, vector.FromMap(m))
		}
		c := &vector.Collection{Dim: uint32Max(vecs) + 1, Vecs: vecs}
		c.Normalize()
		for _, th := range []float64{0.4, 0.7, 0.95, 1.0} {
			got, err := Search(c, th)
			if err != nil {
				t.Fatal(err)
			}
			want := exact.Search(c, exact.Cosine, th)
			testutil.RequireSameResults(t, got, want, 1e-9)
		}
	}
}

func uint32Max(vecs []vector.Vector) int {
	m := 0
	for _, v := range vecs {
		if v.Len() > 0 && int(v.Ind[v.Len()-1]) > m {
			m = int(v.Ind[v.Len()-1])
		}
	}
	return m
}
