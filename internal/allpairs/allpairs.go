package allpairs

import (
	"fmt"
	"math"
	"sort"

	"bayeslsh/internal/exact"
	"bayeslsh/internal/pair"
	"bayeslsh/internal/vector"
)

// posting is one inverted-index entry: vector id and its weight for
// the posting's feature.
type posting struct {
	id int32
	w  float64
}

// postingList supports lazy head-truncation for the minsize filter.
type postingList struct {
	entries []posting
	start   int // entries[:start] have been pruned
}

type searcher struct {
	c        *vector.Collection
	t        float64
	maxw     []float64 // global max weight per feature
	rank     []int32   // feature → position in decreasing-df order
	lists    []postingList
	unidx    []vector.Vector // unindexed prefix per processed vector
	unidxMax []float64       // max weight of the unindexed prefix
	sizes    []int           // full lengths, for the minsize filter
	order    []int           // processing order (decreasing maxweight)
	pos      []int           // position of each id in the processing order
}

func newSearcher(c *vector.Collection, t float64) (*searcher, error) {
	if t <= 0 || t > 1 {
		return nil, fmt.Errorf("allpairs: threshold %v outside (0, 1]", t)
	}
	s := &searcher{
		c:        c,
		t:        t,
		maxw:     make([]float64, c.Dim),
		lists:    make([]postingList, c.Dim),
		unidx:    make([]vector.Vector, len(c.Vecs)),
		unidxMax: make([]float64, len(c.Vecs)),
		sizes:    make([]int, len(c.Vecs)),
	}
	df := make([]int32, c.Dim)
	for i, v := range c.Vecs {
		s.sizes[i] = v.Len()
		// The minsize and upper-bound pruning rules assume unit-norm,
		// non-negative vectors; on other inputs they would silently
		// drop qualifying pairs, so reject such inputs outright.
		if n := v.Norm(); v.Len() > 0 && math.Abs(n-1) > 1e-6 {
			return nil, fmt.Errorf("allpairs: vector %d has norm %v; AllPairs requires unit-normalized input (call Normalize first)", i, n)
		}
		for j, ind := range v.Ind {
			if v.Val[j] < 0 {
				return nil, fmt.Errorf("allpairs: vector %d has negative weight; AllPairs bounds require non-negative weights", i)
			}
			if v.Val[j] > s.maxw[ind] {
				s.maxw[ind] = v.Val[j]
			}
			df[ind]++
		}
	}
	// rank: decreasing document frequency.
	perm := make([]int32, c.Dim)
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.SliceStable(perm, func(a, b int) bool { return df[perm[a]] > df[perm[b]] })
	s.rank = make([]int32, c.Dim)
	for r, f := range perm {
		s.rank[f] = int32(r)
	}
	// Processing order: decreasing maxweight(x) makes the minsize
	// filter monotone.
	s.order = make([]int, len(c.Vecs))
	for i := range s.order {
		s.order[i] = i
	}
	sort.SliceStable(s.order, func(a, b int) bool {
		return c.Vecs[s.order[a]].MaxVal() > c.Vecs[s.order[b]].MaxVal()
	})
	s.pos = make([]int, len(c.Vecs))
	for p, id := range s.order {
		s.pos[id] = p
	}
	return s, nil
}

// featuresByRank returns the positions of v's features sorted by the
// global decreasing-df rank.
func (s *searcher) featuresByRank(v vector.Vector) []int {
	idx := make([]int, v.Len())
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return s.rank[v.Ind[idx[a]]] < s.rank[v.Ind[idx[b]]]
	})
	return idx
}

// run executes the AllPairs scan. For every probing vector x it calls
// emit(x, y, A) for each candidate y that passes the upper-bound
// check, where A is the accumulated dot product over y's indexed
// features. emit receives ids in collection numbering.
func (s *searcher) run(emit func(x, y int32, acc float64)) {
	accs := make([]float64, len(s.c.Vecs))
	var touched []int32
	for _, xid := range s.order {
		x := s.c.Vecs[xid]
		if x.Len() == 0 {
			continue
		}
		xmax := x.MaxVal()
		minsize := 0
		if xmax > 0 {
			// Relaxed by fpSlack: rounding in t/xmax must not bump the
			// ceiling past a partner sitting exactly at the bound.
			minsize = int(math.Ceil(s.t/xmax - fpSlack))
		}
		touched = touched[:0]
		// Probe the postings lists of x's features.
		for j, f := range x.Ind {
			w := x.Val[j]
			list := &s.lists[f]
			// Lazily drop entries below the (monotone) minsize bound.
			for list.start < len(list.entries) && s.sizes[list.entries[list.start].id] < minsize {
				list.start++
			}
			for _, p := range list.entries[list.start:] {
				if accs[p.id] == 0 {
					touched = append(touched, p.id)
				}
				accs[p.id] += w * p.w
			}
		}
		// Verify candidates with the cheap upper bound (relaxed by
		// fpSlack so rounding cannot drop a pair sitting exactly at
		// the threshold).
		for _, y := range touched {
			a := accs[y]
			accs[y] = 0
			yu := s.unidx[y]
			bound := a + math.Min(float64(x.Len()), float64(yu.Len()))*xmax*s.unidxMax[y]
			if bound >= s.t-fpSlack {
				emit(int32(xid), y, a)
			}
		}
		s.indexVector(xid)
	}
}

// indexVector appends x's features to the inverted index, keeping a
// prefix unindexed while b < t. The bound is relaxed by fpSlack:
// rounding in b must never leave a vector whose mass can reach the
// threshold entirely unindexed (e.g. an exact duplicate at t = 1).
func (s *searcher) indexVector(xid int) {
	x := s.c.Vecs[xid]
	if x.Len() == 0 {
		return
	}
	b := 0.0
	var keepInd []uint32
	var keepVal []float64
	for _, fi := range s.featuresByRank(x) {
		f, w := x.Ind[fi], x.Val[fi]
		b += w * s.maxw[f]
		if b >= s.t-fpSlack {
			s.lists[f].entries = append(s.lists[f].entries, posting{id: int32(xid), w: w})
		} else {
			keepInd = append(keepInd, f)
			keepVal = append(keepVal, w)
		}
	}
	// Store the unindexed prefix in sorted index order for Dot.
	if len(keepInd) > 0 {
		es := make([]vector.Entry, len(keepInd))
		for i := range keepInd {
			es[i] = vector.Entry{Ind: keepInd[i], Val: keepVal[i]}
		}
		s.unidx[xid] = vector.New(es)
		s.unidxMax[xid] = s.unidx[xid].MaxVal()
	}
}

// Search performs exact all-pairs cosine similarity search with
// threshold t. The input must be unit-normalized with non-negative
// weights (e.g. TfIdf().Normalize()); an error is returned for
// negative weights.
func Search(c *vector.Collection, t float64) ([]pair.Result, error) {
	s, err := newSearcher(c, t)
	if err != nil {
		return nil, err
	}
	var out []pair.Result
	s.run(func(x, y int32, acc float64) {
		if r, ok := s.finish(x, y, acc); ok {
			out = append(out, r)
		}
	})
	return out, nil
}

// finish completes a candidate's exact similarity from the
// accumulated indexed dot product and decides whether it meets the
// threshold. sim equals the cosine up to summation order; for
// borderline values it is re-evaluated with the canonical definition
// so AllPairs agrees bit-for-bit with brute force.
func (s *searcher) finish(x, y int32, acc float64) (pair.Result, bool) {
	sim := acc + vector.Dot(s.c.Vecs[x], s.unidx[y])
	if sim < s.t-fpSlack {
		return pair.Result{}, false
	}
	if sim < s.t+fpSlack {
		sim = vector.Cosine(s.c.Vecs[x], s.c.Vecs[y])
		if sim < s.t {
			return pair.Result{}, false
		}
	}
	return pair.Result{A: min32(x, y), B: max32(x, y), Sim: sim}, true
}

// Candidates returns the candidate pairs AllPairs would exactly verify
// (pairs that survive the index scan and the upper-bound check),
// without computing exact similarities. This is the candidate stream
// the paper feeds to BayesLSH in its AP+BayesLSH pipelines.
func Candidates(c *vector.Collection, t float64) ([]pair.Pair, error) {
	s, err := newSearcher(c, t)
	if err != nil {
		return nil, err
	}
	var out []pair.Pair
	s.run(func(x, y int32, acc float64) {
		out = append(out, pair.Make(x, y))
	})
	return out, nil
}

// JaccardCosineThreshold maps a Jaccard threshold t to the binary
// cosine threshold 2t/(1+t): J(x,y) >= t implies
// cos_bin(x,y) >= 2t/(1+t), so cosine candidates at the mapped
// threshold are a superset of the Jaccard result set.
func JaccardCosineThreshold(t float64) float64 { return 2 * t / (1 + t) }

// SearchMeasure runs exact AllPairs under the given measure. For
// Cosine the input must already be normalized. For Jaccard and
// BinaryCosine the input is binarized and normalized internally and
// survivors are verified under the requested measure.
func SearchMeasure(c *vector.Collection, m exact.Measure, t float64) ([]pair.Result, error) {
	switch m {
	case exact.Cosine:
		return Search(c, t)
	case exact.BinaryCosine, exact.Jaccard:
		// Binary similarities are ratios of integers (over square
		// roots) and routinely land exactly on the threshold, so the
		// decision must use the library's canonical similarity
		// definition: generate candidates with a hair of slack, then
		// verify under the requested measure.
		cands, err := CandidatesMeasure(c, m, t)
		if err != nil {
			return nil, err
		}
		return exact.Verify(c, m, t, cands), nil
	default:
		return nil, fmt.Errorf("allpairs: unknown measure %v", m)
	}
}

// fpSlack relaxes candidate-generation thresholds so that pairs
// sitting exactly at the threshold cannot be lost to floating-point
// rounding in the internal bounds.
const fpSlack = 1e-9

// measureInput maps a measure to the preprocessed collection and the
// cosine threshold the AllPairs scan runs at (see SearchMeasure for
// the preprocessing rules). Both the sequential and sharded entry
// points go through this one mapping, so they cannot drift apart.
func measureInput(c *vector.Collection, m exact.Measure, t float64) (*vector.Collection, float64, error) {
	switch m {
	case exact.Cosine:
		return c, t, nil
	case exact.BinaryCosine:
		return c.Binarize().Normalize(), t - fpSlack, nil
	case exact.Jaccard:
		return c.Binarize().Normalize(), JaccardCosineThreshold(t) - fpSlack, nil
	default:
		return nil, 0, fmt.Errorf("allpairs: unknown measure %v", m)
	}
}

// CandidatesMeasure generates AllPairs candidates under the given
// measure (see SearchMeasure for preprocessing rules).
func CandidatesMeasure(c *vector.Collection, m exact.Measure, t float64) ([]pair.Pair, error) {
	in, tc, err := measureInput(c, m, t)
	if err != nil {
		return nil, err
	}
	return Candidates(in, tc)
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}
