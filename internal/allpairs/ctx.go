package allpairs

import (
	"context"
	"sync"

	"bayeslsh/internal/exact"
	"bayeslsh/internal/pair"
	"bayeslsh/internal/shard"
	"bayeslsh/internal/vector"
)

// Context-aware and streaming forms of the AllPairs scan. All of them
// run the build-then-probe split of parallel.go (which reproduces the
// sequential stream exactly), because it gives natural abort points:
// cancellation is polled between indexed vectors during the build and
// between posting lists during each probe, and the probe batches go
// through shard.RunCtx/StreamCtx so no new probe starts once the
// context is done. A canceled call returns (nil, ctx.Err()) with all
// workers drained; a non-cancelable ctx takes the plain code paths.

// runParallelCtx is runParallel with cooperative cancellation (the
// collect contract is unchanged; collected output must be discarded by
// the caller when an error is returned).
func (s *searcher) runParallelCtx(ctx context.Context, workers int, collect func(slot int, x, y int32, acc float64)) error {
	stop := shard.NewStopper(ctx)
	defer stop.Close()
	for _, xid := range s.order {
		if stop.Stopped() {
			return ctx.Err()
		}
		s.indexVector(xid)
	}
	pool := sync.Pool{New: func() any {
		return &probeState{accs: make([]float64, len(s.c.Vecs))}
	}}
	return shard.RunCtx(ctx, len(s.order), workers, shard.Chunk(len(s.order), workers, 16), func(lo, hi, _ int) {
		ps := pool.Get().(*probeState)
		for p := lo; p < hi; p++ {
			if stop.Stopped() {
				break
			}
			xid := s.order[p]
			s.probeFull(xid, ps, stop, func(y int32, acc float64) {
				collect(p, int32(xid), y, acc)
			})
		}
		pool.Put(ps)
	})
}

// CandidatesMeasureCtx is CandidatesMeasureParallel with cooperative
// cancellation.
func CandidatesMeasureCtx(ctx context.Context, c *vector.Collection, m exact.Measure, t float64, workers int) ([]pair.Pair, error) {
	if ctx.Done() == nil {
		return CandidatesMeasureParallel(c, m, t, workers)
	}
	in, tc, err := measureInput(c, m, t)
	if err != nil {
		return nil, err
	}
	s, err := newSearcher(in, tc)
	if err != nil {
		return nil, err
	}
	perX := make([][]pair.Pair, len(s.order))
	if err := s.runParallelCtx(ctx, workers, func(slot int, x, y int32, _ float64) {
		perX[slot] = append(perX[slot], pair.Make(x, y))
	}); err != nil {
		return nil, err
	}
	var out []pair.Pair
	for _, ps := range perX {
		out = append(out, ps...)
	}
	return out, nil
}

// SearchMeasureCtx is SearchMeasureParallel with cooperative
// cancellation.
func SearchMeasureCtx(ctx context.Context, c *vector.Collection, m exact.Measure, t float64, workers, batch int) ([]pair.Result, error) {
	if ctx.Done() == nil {
		return SearchMeasureParallel(c, m, t, workers, batch)
	}
	switch m {
	case exact.Cosine:
		s, err := newSearcher(c, t)
		if err != nil {
			return nil, err
		}
		perX := make([][]pair.Result, len(s.order))
		if err := s.runParallelCtx(ctx, workers, func(slot int, x, y int32, acc float64) {
			if r, ok := s.finish(x, y, acc); ok {
				perX[slot] = append(perX[slot], r)
			}
		}); err != nil {
			return nil, err
		}
		var out []pair.Result
		for _, rs := range perX {
			out = append(out, rs...)
		}
		return out, nil
	default:
		cands, err := CandidatesMeasureCtx(ctx, c, m, t, workers)
		if err != nil {
			return nil, err
		}
		return exact.VerifyCtx(ctx, c, m, t, cands, workers, batch)
	}
}

// SearchMeasureStream is the streaming form of SearchMeasureParallel:
// each probe batch's verified results go to emit as the batch
// completes (shard.StreamCtx contract). For the binary measures the
// candidate set is still materialized — the scan's correctness depends
// on the full candidate stream — and only verification streams.
func SearchMeasureStream(ctx context.Context, c *vector.Collection, m exact.Measure, t float64, workers, batch int, emit func([]pair.Result) error) error {
	switch m {
	case exact.Cosine:
		s, err := newSearcher(c, t)
		if err != nil {
			return err
		}
		return s.streamResults(ctx, workers, emit)
	default:
		cands, err := CandidatesMeasureCtx(ctx, c, m, t, workers)
		if err != nil {
			return err
		}
		return exact.VerifyStream(ctx, c, m, t, cands, workers, batch, emit)
	}
}

// streamResults runs the build-then-probe scan, delivering each probe
// batch's results through emit instead of accumulating them.
func (s *searcher) streamResults(ctx context.Context, workers int, emit func([]pair.Result) error) error {
	stop := shard.NewStopper(ctx)
	defer stop.Close()
	for _, xid := range s.order {
		if stop.Stopped() {
			return ctx.Err()
		}
		s.indexVector(xid)
	}
	pool := sync.Pool{New: func() any {
		return &probeState{accs: make([]float64, len(s.c.Vecs))}
	}}
	return shard.StreamCtx(ctx, len(s.order), workers, shard.Chunk(len(s.order), workers, 16), func(lo, hi int) []pair.Result {
		ps := pool.Get().(*probeState)
		var out []pair.Result
		for p := lo; p < hi; p++ {
			if stop.Stopped() {
				break
			}
			xid := s.order[p]
			s.probeFull(xid, ps, stop, func(y int32, acc float64) {
				if r, ok := s.finish(int32(xid), y, acc); ok {
					out = append(out, r)
				}
			})
		}
		pool.Put(ps)
		return out
	}, emit)
}
