// Snapshot codec of the query-serving inverted index. What a probe
// reads is the postings lists and the unindexed prefixes — the output
// of the indexing pass — so that is what a snapshot carries. The
// scan's derived state (feature ranks, processing order, minsize
// sizes, per-feature maxima) is a handful of cheap deterministic sorts
// over the collection, recomputed at load by the same newSearcher the
// build uses, so the two can never disagree.

package allpairs

import (
	"math"

	"bayeslsh/internal/exact"
	"bayeslsh/internal/snapshot"
	"bayeslsh/internal/vector"
)

// WriteSnapshot serializes the built index: the (cosine-space)
// threshold, every postings list, and every unindexed prefix.
func (ix *Index) WriteSnapshot(w *snapshot.Writer) {
	s := ix.s
	w.F64(s.t)
	w.U64(uint64(len(s.lists)))
	for _, list := range s.lists {
		w.U64(uint64(len(list.entries)))
		for _, p := range list.entries {
			w.U32(uint32(p.id))
			w.F64(p.w)
		}
	}
	w.U64(uint64(len(s.unidx)))
	for _, u := range s.unidx {
		u.WriteSnapshot(w)
	}
}

// ReadIndexSnapshot decodes an index written by WriteSnapshot over the
// same (raw) collection, measure and threshold it was built with: the
// searcher shell is reconstructed from the collection exactly as
// BuildIndexMeasure does, then the serialized postings and unindexed
// prefixes replace the indexing pass.
func ReadIndexSnapshot(r *snapshot.Reader, c *vector.Collection, m exact.Measure, t float64) (*Index, error) {
	in, tc, err := measureInput(c, m, t)
	if err != nil {
		return nil, err
	}
	if st := r.F64(); r.Err() == nil && st != tc {
		return nil, snapshot.Failf(r, "index threshold %v, expected %v", st, tc)
	}
	// Validate the per-feature list count — 8 in-file bytes per
	// feature — before newSearcher sizes its Dim-proportional state,
	// so allocations stay proportional to the bytes actually present.
	nl := r.Len(8)
	if r.Err() != nil {
		return nil, r.Err()
	}
	if nl != in.Dim {
		return nil, snapshot.Failf(r, "%d postings lists for dimensionality %d", nl, in.Dim)
	}
	s, err := newSearcher(in, tc)
	if err != nil {
		return nil, err
	}
	for f := 0; f < nl; f++ {
		ne := r.Len(12) // per posting: id + weight
		if r.Err() != nil {
			return nil, r.Err()
		}
		if ne == 0 {
			continue
		}
		entries := make([]posting, ne)
		for i := range entries {
			id := int32(r.U32())
			wgt := r.F64()
			if r.Err() != nil {
				return nil, r.Err()
			}
			if id < 0 || int(id) >= len(in.Vecs) {
				return nil, snapshot.Failf(r, "list %d: posting id %d outside corpus of %d", f, id, len(in.Vecs))
			}
			if math.IsNaN(wgt) || math.IsInf(wgt, 0) {
				return nil, snapshot.Failf(r, "list %d: bad posting weight %v", f, wgt)
			}
			entries[i] = posting{id: id, w: wgt}
		}
		s.lists[f].entries = entries
	}
	nu := r.Len(16)
	if r.Err() == nil && nu != len(s.unidx) {
		return nil, snapshot.Failf(r, "%d unindexed prefixes for corpus of %d", nu, len(s.unidx))
	}
	for i := 0; i < nu; i++ {
		u, err := vector.ReadVectorSnapshot(r)
		if err != nil {
			return nil, err
		}
		s.unidx[i] = u
		s.unidxMax[i] = u.MaxVal()
	}
	return newIndex(s), nil
}
