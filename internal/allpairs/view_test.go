package allpairs

import (
	"bytes"
	"errors"
	"testing"

	"bayeslsh/internal/exact"
	"bayeslsh/internal/snapshot"
	"bayeslsh/internal/testutil"
	"bayeslsh/internal/vector"
)

func viewSection(t *testing.T, ix *Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := snapshot.NewWriter(&buf)
	ix.WriteFixedSection(w)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestViewProbeMatchesIndex checks the disk-servable contract: a View
// over the serialized section returns bit-identical candidate sets to
// the heap Index that wrote it, for every corpus query plus the
// degenerate cases (empty query, out-of-dimension features).
func TestViewProbeMatchesIndex(t *testing.T) {
	for _, m := range []exact.Measure{exact.Cosine, exact.Jaccard} {
		c := testutil.SmallTextCorpus(t, 120, 5)
		th := 0.6
		if m != exact.Cosine {
			c = testutil.SmallBinaryCorpus(t, 120, 5)
			th = 0.4
		}
		ix, err := BuildIndexMeasure(c, m, th)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		v, err := OpenView(viewSection(t, ix))
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if err := v.Validate(); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if v.Threshold() != ix.Threshold() {
			t.Fatalf("%v: threshold %v != %v", m, v.Threshold(), ix.Threshold())
		}
		for i := range c.Vecs {
			q := TransformQuery(c.Vecs[i], m)
			want := ix.Probe(q)
			got := v.Probe(q)
			if len(want) != len(got) {
				t.Fatalf("%v: query %d: %d candidates from view, %d from index", m, i, len(got), len(want))
			}
			for j := range want {
				if want[j] != got[j] {
					t.Fatalf("%v: query %d candidate %d: %d != %d", m, i, j, got[j], want[j])
				}
			}
		}
		var empty vector.Vector
		if ids := v.Probe(empty); len(ids) != 0 {
			t.Fatalf("%v: empty query produced %d candidates", m, len(ids))
		}
		foreign := c.Vecs[1].Clone()
		for j := range foreign.Ind {
			foreign.Ind[j] += uint32(c.Dim)
		}
		if ids := v.Probe(TransformQuery(foreign, m)); len(ids) != 0 {
			t.Fatalf("%v: out-of-dimension query produced %d candidates", m, len(ids))
		}
	}
}

// TestViewHostileInput feeds truncated and corrupted sections to
// OpenView/Validate: every case must fail with ErrCorrupt-wrapped
// errors, never panic or over-allocate.
func TestViewHostileInput(t *testing.T) {
	c := testutil.SmallTextCorpus(t, 40, 4)
	ix, err := BuildIndexMeasure(c, exact.Cosine, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	good := viewSection(t, ix)
	if _, err := OpenView(good); err != nil {
		t.Fatal(err)
	}

	check := func(name string, buf []byte) {
		t.Helper()
		v, err := OpenView(buf)
		if err == nil {
			err = v.Validate()
		}
		if err == nil {
			t.Fatalf("%s: accepted", name)
		}
		if !errors.Is(err, snapshot.ErrCorrupt) {
			t.Fatalf("%s: error %v does not wrap ErrCorrupt", name, err)
		}
	}

	check("empty", nil)
	check("header only", good[:viewFixedHeader])
	for _, cut := range []int{1, 7, 64} {
		check("truncated", good[:len(good)-cut])
	}
	mut := func(off int, b byte) []byte {
		m := append([]byte(nil), good...)
		m[off] ^= b
		return m
	}
	check("threshold exponent flip", mut(7, 0x7f))
	check("huge n", mut(8+7, 0xff))
	check("huge dim", mut(16+7, 0xff))
	// Flip the low byte of dir[dim], the directory's view of the blob
	// length: Validate must notice the mismatch.
	n, dim := len(c.Vecs), c.Dim
	dirLast := viewFixedHeader + 8*n + n%2*4 + 8*n + 8*dim
	check("directory flip", mut(dirLast, 0x01))
	// An id delta steered outside the corpus: flip bits in the first
	// posting entry of the first non-empty feature.
	blobOff := dirLast + 8
	check("posting id flip", mut(blobOff, 0x7f))
}
