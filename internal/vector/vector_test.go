package vector

import (
	"math"
	"testing"
	"testing/quick"

	"bayeslsh/internal/rng"
)

func vec(pairs ...float64) Vector {
	// pairs are (index, value) flattened
	var es []Entry
	for i := 0; i+1 < len(pairs); i += 2 {
		es = append(es, Entry{uint32(pairs[i]), pairs[i+1]})
	}
	return New(es)
}

func TestNewSortsDedupsAndDropsZeros(t *testing.T) {
	v := New([]Entry{{5, 2}, {1, 3}, {5, 1}, {9, 0}, {2, -1}})
	want := Vector{Ind: []uint32{1, 2, 5}, Val: []float64{3, -1, 3}}
	if !Equal(v, want) {
		t.Errorf("New = %+v, want %+v", v, want)
	}
	if err := v.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestNewCancellingDuplicatesDropped(t *testing.T) {
	v := New([]Entry{{3, 1}, {3, -1}, {4, 2}})
	want := Vector{Ind: []uint32{4}, Val: []float64{2}}
	if !Equal(v, want) {
		t.Errorf("New = %+v, want %+v", v, want)
	}
}

func TestFromMap(t *testing.T) {
	v := FromMap(map[uint32]float64{7: 1.5, 2: 2.5, 9: 0})
	want := vec(2, 2.5, 7, 1.5)
	if !Equal(v, want) {
		t.Errorf("FromMap = %+v, want %+v", v, want)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	bad := []Vector{
		{Ind: []uint32{1}, Val: []float64{1, 2}},
		{Ind: []uint32{2, 1}, Val: []float64{1, 2}},
		{Ind: []uint32{1, 1}, Val: []float64{1, 2}},
		{Ind: []uint32{1}, Val: []float64{0}},
		{Ind: []uint32{1}, Val: []float64{math.NaN()}},
		{Ind: []uint32{1}, Val: []float64{math.Inf(1)}},
	}
	for i, v := range bad {
		if err := v.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted corrupt vector %+v", i, v)
		}
	}
}

func TestDotKnown(t *testing.T) {
	a := vec(0, 1, 2, 2, 5, 3)
	b := vec(1, 4, 2, 5, 5, 6)
	if got, want := Dot(a, b), 2*5+3*6.0; got != want {
		t.Errorf("Dot = %v, want %v", got, want)
	}
	if got := Dot(a, Vector{}); got != 0 {
		t.Errorf("Dot with empty = %v", got)
	}
}

func TestDotCommutativeProperty(t *testing.T) {
	src := rng.New(11)
	randVec := func() Vector {
		n := src.Intn(20)
		var es []Entry
		for i := 0; i < n; i++ {
			es = append(es, Entry{uint32(src.Intn(50)), src.Float64()*4 - 2})
		}
		return New(es)
	}
	for i := 0; i < 200; i++ {
		a, b := randVec(), randVec()
		if got, want := Dot(a, b), Dot(b, a); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Dot not commutative: %v vs %v", got, want)
		}
	}
}

func TestNormAndNormalize(t *testing.T) {
	v := vec(0, 3, 1, 4)
	if got := v.Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	v.Normalize()
	if got := v.Norm(); math.Abs(got-1) > 1e-12 {
		t.Errorf("normalized Norm = %v, want 1", got)
	}
	empty := Vector{}
	empty.Normalize() // must not panic
}

func TestCosineKnownAndBounds(t *testing.T) {
	a := vec(0, 1, 1, 0.0001) // avoid dropping
	if got := Cosine(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("self cosine = %v", got)
	}
	orth1, orth2 := vec(0, 1), vec(1, 1)
	if got := Cosine(orth1, orth2); got != 0 {
		t.Errorf("orthogonal cosine = %v", got)
	}
	if got := Cosine(vec(0, 1), Vector{}); got != 0 {
		t.Errorf("cosine with empty = %v", got)
	}
	neg := vec(0, -1)
	if got := Cosine(vec(0, 1), neg); got != -1 {
		t.Errorf("antiparallel cosine = %v", got)
	}
}

func TestCosinePropertyInRange(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		randVec := func() Vector {
			n := src.Intn(15) + 1
			var es []Entry
			for i := 0; i < n; i++ {
				es = append(es, Entry{uint32(src.Intn(30)), src.Float64()*2 - 1})
			}
			return New(es)
		}
		c := Cosine(randVec(), randVec())
		return c >= -1 && c <= 1 && !math.IsNaN(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOverlapAndJaccard(t *testing.T) {
	a := vec(1, 1, 2, 1, 3, 1, 4, 1)
	b := vec(3, 5, 4, 5, 5, 5)
	if got := Overlap(a, b); got != 2 {
		t.Errorf("Overlap = %v, want 2", got)
	}
	// |∩|=2, |∪|=5
	if got, want := Jaccard(a, b), 2.0/5; got != want {
		t.Errorf("Jaccard = %v, want %v", got, want)
	}
	if got := Jaccard(Vector{}, Vector{}); got != 0 {
		t.Errorf("Jaccard of empties = %v, want 0", got)
	}
	if got := Jaccard(a, a); got != 1 {
		t.Errorf("self Jaccard = %v, want 1", got)
	}
}

func TestBinaryCosine(t *testing.T) {
	a := vec(1, 9, 2, 9)
	b := vec(2, 3, 3, 3)
	want := 1 / math.Sqrt(4)
	if got := BinaryCosine(a, b); math.Abs(got-want) > 1e-12 {
		t.Errorf("BinaryCosine = %v, want %v", got, want)
	}
	if got := BinaryCosine(a, Vector{}); got != 0 {
		t.Errorf("BinaryCosine with empty = %v", got)
	}
}

func TestBinarize(t *testing.T) {
	a := vec(1, 9, 5, -2)
	b := a.Binarize()
	if b.Val[0] != 1 || b.Val[1] != 1 {
		t.Errorf("Binarize = %+v", b)
	}
	if a.Val[0] != 9 {
		t.Error("Binarize mutated the original")
	}
	// Jaccard of weighted vector equals Jaccard of binarized vector.
	c := vec(1, 3, 7, 2)
	if Jaccard(a, c) != Jaccard(b, c.Binarize()) {
		t.Error("Jaccard should ignore weights")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := vec(1, 2, 3, 4)
	b := a.Clone()
	b.Val[0] = 99
	b.Ind[0] = 9
	if a.Val[0] != 2 || a.Ind[0] != 1 {
		t.Error("Clone shares storage")
	}
}

func TestScaleSumMaxVal(t *testing.T) {
	v := vec(0, 1, 1, 2, 2, 3)
	if got := v.Sum(); got != 6 {
		t.Errorf("Sum = %v", got)
	}
	if got := v.MaxVal(); got != 3 {
		t.Errorf("MaxVal = %v", got)
	}
	v.Scale(2)
	if got := v.Sum(); got != 12 {
		t.Errorf("Sum after scale = %v", got)
	}
}
