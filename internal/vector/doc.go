// Package vector implements the sparse-vector algebra that every
// algorithm in this repository is built on: dot products, norms,
// cosine and Jaccard similarity, Tf-Idf weighting and binarization.
//
// # Representation
//
// A Vector is a pair of parallel slices — strictly increasing feature
// indices and their weights — so similarity computations are sorted
// merges and memory stays proportional to the non-zeros. All-pairs
// similarity search treats a corpus as a Collection of such vectors:
// documents as bags of weighted terms, or graph nodes as weighted
// adjacency rows.
//
// # Operations
//
// Construction (New, FromMap) sorts, merges duplicates and drops
// zeros; Validate enforces the invariants. Similarities (Dot, Cosine,
// Jaccard, BinaryCosine, Overlap) are pure merges, symmetric to the
// last bit — which is what lets the query-serving index reproduce
// batch similarities exactly with the argument order reversed.
// Collection adds corpus-level transforms (TfIdf, Normalize,
// Binarize), statistics matching Table 1 of the BayesLSH paper, and
// the plain-text serialization format shared by the CLI tools
// (WriteTo/Read).
package vector
