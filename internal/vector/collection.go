package vector

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Collection is a corpus of sparse vectors over a common feature
// space of dimension Dim.
type Collection struct {
	Vecs []Vector
	Dim  int
}

// Stats summarizes a collection the way Table 1 of the paper does.
type Stats struct {
	Vectors int     // number of vectors
	Dim     int     // dimensionality
	AvgLen  float64 // average number of non-zeros per vector
	LenVar  float64 // variance of vector lengths
	Nnz     int64   // total number of non-zeros
}

// Stats computes corpus statistics.
func (c *Collection) Stats() Stats {
	s := Stats{Vectors: len(c.Vecs), Dim: c.Dim}
	if len(c.Vecs) == 0 {
		return s
	}
	for _, v := range c.Vecs {
		s.Nnz += int64(v.Len())
	}
	s.AvgLen = float64(s.Nnz) / float64(len(c.Vecs))
	for _, v := range c.Vecs {
		d := float64(v.Len()) - s.AvgLen
		s.LenVar += d * d
	}
	s.LenVar /= float64(len(c.Vecs))
	return s
}

// Validate checks every vector and that indices fit within Dim.
func (c *Collection) Validate() error {
	for i, v := range c.Vecs {
		if err := v.Validate(); err != nil {
			return fmt.Errorf("vector %d: %w", i, err)
		}
		if v.Len() > 0 && int(v.Ind[v.Len()-1]) >= c.Dim {
			return fmt.Errorf("vector %d: index %d outside dimension %d",
				i, v.Ind[v.Len()-1], c.Dim)
		}
	}
	return nil
}

// DocFreq returns, for every feature, the number of vectors containing
// it.
func (c *Collection) DocFreq() []int {
	df := make([]int, c.Dim)
	for _, v := range c.Vecs {
		for _, ind := range v.Ind {
			df[ind]++
		}
	}
	return df
}

// TfIdf returns a new collection re-weighted by tf·idf with
// idf = ln(N / df) and the raw weight as tf, the weighting the paper
// applies to both its text corpora and its graphs. Features that
// appear in every document get idf 0 and are dropped.
func (c *Collection) TfIdf() *Collection {
	df := c.DocFreq()
	n := float64(len(c.Vecs))
	idf := make([]float64, c.Dim)
	for i, d := range df {
		if d > 0 {
			idf[i] = math.Log(n / float64(d))
		}
	}
	out := &Collection{Dim: c.Dim, Vecs: make([]Vector, len(c.Vecs))}
	for vi, v := range c.Vecs {
		var nv Vector
		for i, ind := range v.Ind {
			if w := v.Val[i] * idf[ind]; w != 0 {
				nv.Ind = append(nv.Ind, ind)
				nv.Val = append(nv.Val, w)
			}
		}
		out.Vecs[vi] = nv
	}
	return out
}

// Normalize scales every vector to unit norm in place and returns c.
func (c *Collection) Normalize() *Collection {
	for i := range c.Vecs {
		c.Vecs[i].Normalize()
	}
	return c
}

// Binarize returns a new collection with all weights set to 1.
func (c *Collection) Binarize() *Collection {
	out := &Collection{Dim: c.Dim, Vecs: make([]Vector, len(c.Vecs))}
	for i, v := range c.Vecs {
		out.Vecs[i] = v.Binarize()
	}
	return out
}

// SortByLen returns a permutation of vector ids ordered by increasing
// length (number of non-zeros), the canonical processing order for
// prefix-filtering algorithms such as PPJoin.
func (c *Collection) SortByLen() []int {
	order := make([]int, len(c.Vecs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return c.Vecs[order[a]].Len() < c.Vecs[order[b]].Len()
	})
	return order
}

// WriteTo serializes the collection in a plain text format:
// a header line "dim N", then one line per vector of
// "ind:val ind:val ...". It implements io.WriterTo.
func (c *Collection) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var total int64
	n, err := fmt.Fprintf(bw, "dim %d\n", c.Dim)
	total += int64(n)
	if err != nil {
		return total, err
	}
	for _, v := range c.Vecs {
		for i, ind := range v.Ind {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return total, err
				}
				total++
			}
			n, err := fmt.Fprintf(bw, "%d:%g", ind, v.Val[i])
			total += int64(n)
			if err != nil {
				return total, err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return total, err
		}
		total++
	}
	return total, bw.Flush()
}

// Read parses the format written by WriteTo.
func Read(r io.Reader) (*Collection, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("vector: empty input")
	}
	var dim int
	if _, err := fmt.Sscanf(sc.Text(), "dim %d", &dim); err != nil {
		return nil, fmt.Errorf("vector: bad header %q: %w", sc.Text(), err)
	}
	c := &Collection{Dim: dim}
	line := 1
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		var v Vector
		for _, f := range fields {
			colon := strings.IndexByte(f, ':')
			if colon < 0 {
				return nil, fmt.Errorf("vector: line %d: bad entry %q", line, f)
			}
			ind, err := strconv.ParseUint(f[:colon], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("vector: line %d: bad index %q: %w", line, f, err)
			}
			val, err := strconv.ParseFloat(f[colon+1:], 64)
			if err != nil {
				return nil, fmt.Errorf("vector: line %d: bad value %q: %w", line, f, err)
			}
			v.Ind = append(v.Ind, uint32(ind))
			v.Val = append(v.Val, val)
		}
		c.Vecs = append(c.Vecs, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}
