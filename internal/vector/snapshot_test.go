package vector

import (
	"bytes"
	"errors"
	"testing"

	"bayeslsh/internal/snapshot"
)

func encodeCollection(c *Collection) []byte {
	var buf bytes.Buffer
	w := snapshot.NewWriter(&buf)
	c.WriteSnapshot(w)
	w.Sum()
	b := buf.Bytes()
	return b[:len(b)-4] // codec tests decode without the file checksum
}

// TestCollectionSnapshotRoundTrip checks structural equality through
// the codec.
func TestCollectionSnapshotRoundTrip(t *testing.T) {
	c := &Collection{Dim: 10, Vecs: []Vector{
		{Ind: []uint32{1, 4, 9}, Val: []float64{0.5, -1, 2}},
		{}, // empty vector round-trips too
		{Ind: []uint32{0}, Val: []float64{3}},
	}}
	got, err := ReadCollectionSnapshot(snapshot.NewReader(encodeCollection(c)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim != c.Dim || len(got.Vecs) != len(c.Vecs) {
		t.Fatalf("shape: %d/%d, want %d/%d", got.Dim, len(got.Vecs), c.Dim, len(c.Vecs))
	}
	for i := range c.Vecs {
		if !Equal(got.Vecs[i], c.Vecs[i]) {
			t.Fatalf("vector %d: %+v != %+v", i, got.Vecs[i], c.Vecs[i])
		}
	}
}

// TestCollectionSnapshotRejectsBadDim covers the hostile-input bound
// on dimensionality: zero Dim (which would panic dimension-sized
// consumers such as the hyperplane family) and absurd Dim (which
// would drive multi-gigabyte per-feature allocations) must both fail
// cleanly at decode.
func TestCollectionSnapshotRejectsBadDim(t *testing.T) {
	for _, dim := range []int{0, MaxSnapshotDim + 1, 1 << 31} {
		c := &Collection{Dim: dim, Vecs: []Vector{{}}}
		_, err := ReadCollectionSnapshot(snapshot.NewReader(encodeCollection(c)))
		if !errors.Is(err, snapshot.ErrCorrupt) {
			t.Fatalf("dim %d: %v, want ErrCorrupt", dim, err)
		}
	}
	// The boundary itself is fine.
	c := &Collection{Dim: 1, Vecs: []Vector{{Ind: []uint32{0}, Val: []float64{1}}}}
	if _, err := ReadCollectionSnapshot(snapshot.NewReader(encodeCollection(c))); err != nil {
		t.Fatalf("dim 1: %v", err)
	}
}

// TestVectorSnapshotRejectsMalformed checks the decoder enforces the
// Vector invariants rather than trusting the bytes.
func TestVectorSnapshotRejectsMalformed(t *testing.T) {
	encode := func(ind []uint32, val []float64) []byte {
		var buf bytes.Buffer
		w := snapshot.NewWriter(&buf)
		w.U32s(ind)
		w.F64s(val)
		w.Sum()
		b := buf.Bytes()
		return b[:len(b)-4]
	}
	cases := []struct {
		name string
		ind  []uint32
		val  []float64
	}{
		{"length mismatch", []uint32{1, 2}, []float64{1}},
		{"non-increasing indices", []uint32{5, 5}, []float64{1, 2}},
		{"zero weight", []uint32{1}, []float64{0}},
	}
	for _, c := range cases {
		if _, err := ReadVectorSnapshot(snapshot.NewReader(encode(c.ind, c.val))); !errors.Is(err, snapshot.ErrCorrupt) {
			t.Fatalf("%s: %v, want ErrCorrupt", c.name, err)
		}
	}
}
