// Disk-servable (v3) collection layout. The v1 stream codec frames
// every vector with its own length prefixes and decodes into
// per-vector heap slices; the flat layout instead stores one
// cumulative-end directory and two contiguous column arrays (all
// indices, all weights), so an open lays n slice headers over the
// mapped section and the corpus bytes themselves are paged in only as
// queries dereference them.
//
//	dim   u32, pad u32
//	n     u64  (vector count)
//	nnz   u64  (total entries)
//	ends  n × u64   cumulative entry counts; ends[n-1] == nnz
//	inds  nnz × u32 raw little-endian feature indices
//	pad to 8
//	vals  nnz × f64 raw little-endian weights

package vector

import (
	"fmt"

	"bayeslsh/internal/snapshot"
)

const flatHeader = 24

// WriteFlat serializes the collection in the disk-servable layout.
func (c *Collection) WriteFlat(w *snapshot.Writer) {
	w.U32(uint32(c.Dim))
	w.U32(0)
	w.U64(uint64(len(c.Vecs)))
	var nnz uint64
	for _, v := range c.Vecs {
		nnz += uint64(v.Len())
	}
	w.U64(nnz)
	var end uint64
	for _, v := range c.Vecs {
		end += uint64(v.Len())
		w.U64(end)
	}
	for _, v := range c.Vecs {
		for _, ind := range v.Ind {
			w.U32(ind)
		}
	}
	if nnz%2 != 0 {
		w.U32(0) // realign the weight column to 8 bytes
	}
	for _, v := range c.Vecs {
		for _, val := range v.Val {
			w.F64(val)
		}
	}
}

// OpenFlat lays a Collection over a WriteFlat payload: every Vector's
// Ind/Val alias the buffer (zero-copy on little-endian platforms).
// It validates structure — declared counts against the bytes actually
// present, the end directory monotone — touching only the directory,
// not the columns. Semantic validation of the entries themselves
// (strictly increasing indices inside Dim, finite weights) is
// Collection.Validate, which the caller runs together with the
// section checksum on first touch.
func OpenFlat(buf []byte) (*Collection, error) {
	if len(buf) < flatHeader {
		return nil, fmt.Errorf("%w: flat collection section %d bytes", snapshot.ErrCorrupt, len(buf))
	}
	r := snapshot.NewReader(buf)
	dim := int(r.U32())
	r.U32()
	n := r.U64()
	nnz := r.U64()
	if dim < 1 || dim > MaxSnapshotDim {
		return nil, fmt.Errorf("%w: dimensionality %d outside [1, %d]", snapshot.ErrCorrupt, dim, MaxSnapshotDim)
	}
	// Bound the declared counts by the bytes present before doing any
	// arithmetic with them, so hostile counts can neither overflow nor
	// over-allocate.
	if n > uint64(len(buf))/8 || nnz > uint64(len(buf))/12 {
		return nil, fmt.Errorf("%w: flat collection declares %d vectors, %d entries in %d bytes",
			snapshot.ErrCorrupt, n, nnz, len(buf))
	}
	pad := nnz % 2 * 4
	if want := flatHeader + 8*n + 4*nnz + pad + 8*nnz; want != uint64(len(buf)) {
		return nil, fmt.Errorf("%w: flat collection declares %d vectors, %d entries in %d bytes",
			snapshot.ErrCorrupt, n, nnz, len(buf))
	}
	ends := snapshot.ViewU64s(buf[flatHeader : flatHeader+8*n])
	indsOff := flatHeader + 8*n
	inds := snapshot.ViewU32s(buf[indsOff : indsOff+4*nnz])
	valsOff := indsOff + 4*nnz + pad
	vals := snapshot.ViewF64s(buf[valsOff:])
	c := &Collection{Dim: dim, Vecs: make([]Vector, n)}
	prev := uint64(0)
	for i := range c.Vecs {
		end := ends[i]
		if end < prev || end > nnz {
			return nil, fmt.Errorf("%w: flat collection end[%d]=%d after %d (nnz %d)",
				snapshot.ErrCorrupt, i, end, prev, nnz)
		}
		c.Vecs[i] = Vector{Ind: inds[prev:end:end], Val: vals[prev:end:end]}
		prev = end
	}
	if prev != nnz {
		return nil, fmt.Errorf("%w: flat collection ends at %d of %d entries", snapshot.ErrCorrupt, prev, nnz)
	}
	return c, nil
}
