package vector

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func smallCollection() *Collection {
	return &Collection{
		Dim: 6,
		Vecs: []Vector{
			vec(0, 1, 1, 1, 2, 1),
			vec(0, 2, 3, 1),
			vec(0, 1, 4, 2, 5, 3),
		},
	}
}

func TestStats(t *testing.T) {
	s := smallCollection().Stats()
	if s.Vectors != 3 || s.Dim != 6 || s.Nnz != 8 {
		t.Errorf("Stats = %+v", s)
	}
	if math.Abs(s.AvgLen-8.0/3) > 1e-12 {
		t.Errorf("AvgLen = %v", s.AvgLen)
	}
	empty := &Collection{Dim: 4}
	if s := empty.Stats(); s.Vectors != 0 || s.Nnz != 0 {
		t.Errorf("empty Stats = %+v", s)
	}
}

func TestDocFreq(t *testing.T) {
	df := smallCollection().DocFreq()
	want := []int{3, 1, 1, 1, 1, 1}
	for i := range want {
		if df[i] != want[i] {
			t.Errorf("DocFreq[%d] = %d, want %d", i, df[i], want[i])
		}
	}
}

func TestTfIdfDropsUbiquitousFeatures(t *testing.T) {
	c := smallCollection()
	w := c.TfIdf()
	// Feature 0 appears in all 3 documents → idf = ln(1) = 0 → dropped.
	for i, v := range w.Vecs {
		for _, ind := range v.Ind {
			if ind == 0 {
				t.Errorf("vector %d still contains ubiquitous feature", i)
			}
		}
	}
	// Feature 3 appears once → weight = 1 * ln(3).
	found := false
	for _, v := range w.Vecs {
		for i, ind := range v.Ind {
			if ind == 3 {
				found = true
				if math.Abs(v.Val[i]-math.Log(3)) > 1e-12 {
					t.Errorf("idf weight = %v, want ln 3", v.Val[i])
				}
			}
		}
	}
	if !found {
		t.Error("feature 3 missing after TfIdf")
	}
	// Original unchanged.
	if c.Vecs[0].Val[0] != 1 {
		t.Error("TfIdf mutated the source collection")
	}
}

func TestNormalizeCollection(t *testing.T) {
	c := smallCollection().TfIdf().Normalize()
	for i, v := range c.Vecs {
		if v.Len() == 0 {
			continue
		}
		if math.Abs(v.Norm()-1) > 1e-12 {
			t.Errorf("vector %d norm = %v", i, v.Norm())
		}
	}
}

func TestBinarizeCollection(t *testing.T) {
	b := smallCollection().Binarize()
	for _, v := range b.Vecs {
		for _, x := range v.Val {
			if x != 1 {
				t.Fatalf("binarized weight %v", x)
			}
		}
	}
}

func TestSortByLen(t *testing.T) {
	c := smallCollection()
	order := c.SortByLen()
	for i := 1; i < len(order); i++ {
		if c.Vecs[order[i-1]].Len() > c.Vecs[order[i]].Len() {
			t.Fatalf("order not ascending: %v", order)
		}
	}
}

func TestRoundTripSerialization(t *testing.T) {
	c := smallCollection()
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim != c.Dim || len(got.Vecs) != len(c.Vecs) {
		t.Fatalf("round trip shape mismatch: %+v", got)
	}
	for i := range c.Vecs {
		if !Equal(got.Vecs[i], c.Vecs[i]) {
			t.Errorf("vector %d mismatch: %+v vs %+v", i, got.Vecs[i], c.Vecs[i])
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not a header\n1:2\n",
		"dim 5\nbroken\n",
		"dim 5\n1:x\n",
		"dim 5\nx:1\n",
		"dim 2\n5:1\n",     // index out of declared dimension
		"dim 5\n2:1 1:1\n", // unsorted
	}
	for i, s := range cases {
		if _, err := Read(strings.NewReader(s)); err == nil {
			t.Errorf("case %d: Read accepted %q", i, s)
		}
	}
}

func TestValidateCollection(t *testing.T) {
	c := smallCollection()
	if err := c.Validate(); err != nil {
		t.Errorf("valid collection rejected: %v", err)
	}
	c.Dim = 2
	if err := c.Validate(); err == nil {
		t.Error("out-of-dimension index accepted")
	}
}
