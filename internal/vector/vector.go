package vector

import (
	"fmt"
	"math"
	"sort"
)

// Vector is a sparse vector: parallel slices of strictly increasing
// feature indices and their weights. The zero value is the empty
// vector and is ready to use.
type Vector struct {
	Ind []uint32
	Val []float64
}

// Len returns the number of non-zero entries.
func (v Vector) Len() int { return len(v.Ind) }

// Entry is an (index, weight) pair used when constructing vectors.
type Entry struct {
	Ind uint32
	Val float64
}

// New builds a Vector from entries. Entries are sorted by index;
// duplicate indices have their weights summed; zero weights are
// dropped. The input slice is not modified.
func New(entries []Entry) Vector {
	if len(entries) == 0 {
		return Vector{}
	}
	es := make([]Entry, len(entries))
	copy(es, entries)
	sort.Slice(es, func(i, j int) bool { return es[i].Ind < es[j].Ind })
	var v Vector
	i := 0
	for i < len(es) {
		j := i
		sum := 0.0
		for j < len(es) && es[j].Ind == es[i].Ind {
			sum += es[j].Val
			j++
		}
		if sum != 0 {
			v.Ind = append(v.Ind, es[i].Ind)
			v.Val = append(v.Val, sum)
		}
		i = j
	}
	return v
}

// FromMap builds a Vector from an index→weight map, dropping zeros.
func FromMap(m map[uint32]float64) Vector {
	entries := make([]Entry, 0, len(m))
	for ind, val := range m {
		//apsslint:allow mapiter New sorts entries by index below, so map order never reaches the built vector
		entries = append(entries, Entry{ind, val})
	}
	return New(entries)
}

// Validate returns an error if the vector's indices are not strictly
// increasing or a weight is zero or non-finite.
func (v Vector) Validate() error {
	if len(v.Ind) != len(v.Val) {
		return fmt.Errorf("vector: %d indices but %d weights", len(v.Ind), len(v.Val))
	}
	for i := range v.Ind {
		if i > 0 && v.Ind[i] <= v.Ind[i-1] {
			return fmt.Errorf("vector: indices not strictly increasing at position %d", i)
		}
		if v.Val[i] == 0 || math.IsNaN(v.Val[i]) || math.IsInf(v.Val[i], 0) {
			return fmt.Errorf("vector: bad weight %v at position %d", v.Val[i], i)
		}
	}
	return nil
}

// Clone returns a deep copy.
func (v Vector) Clone() Vector {
	out := Vector{Ind: make([]uint32, len(v.Ind)), Val: make([]float64, len(v.Val))}
	copy(out.Ind, v.Ind)
	copy(out.Val, v.Val)
	return out
}

// Dot returns the inner product of a and b using a sorted merge.
func Dot(a, b Vector) float64 {
	i, j := 0, 0
	sum := 0.0
	for i < len(a.Ind) && j < len(b.Ind) {
		switch {
		case a.Ind[i] == b.Ind[j]:
			sum += a.Val[i] * b.Val[j]
			i++
			j++
		case a.Ind[i] < b.Ind[j]:
			i++
		default:
			j++
		}
	}
	return sum
}

// Norm returns the Euclidean norm.
func (v Vector) Norm() float64 {
	sum := 0.0
	for _, x := range v.Val {
		sum += x * x
	}
	return math.Sqrt(sum)
}

// MaxVal returns the largest weight (0 for the empty vector).
func (v Vector) MaxVal() float64 {
	m := 0.0
	for _, x := range v.Val {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of the weights.
func (v Vector) Sum() float64 {
	s := 0.0
	for _, x := range v.Val {
		s += x
	}
	return s
}

// Scale multiplies every weight by c in place and returns v.
func (v Vector) Scale(c float64) Vector {
	for i := range v.Val {
		v.Val[i] *= c
	}
	return v
}

// Normalize scales v in place to unit Euclidean norm and returns v.
// The empty (or all-zero) vector is returned unchanged.
func (v Vector) Normalize() Vector {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Cosine returns the cosine similarity dot(a,b) / (‖a‖·‖b‖).
// It returns 0 if either vector is empty.
func Cosine(a, b Vector) float64 {
	na, nb := a.Norm(), b.Norm()
	if na == 0 || nb == 0 {
		return 0
	}
	c := Dot(a, b) / (na * nb)
	// Guard against rounding pushing past the mathematical range.
	if c > 1 {
		c = 1
	}
	if c < -1 {
		c = -1
	}
	return c
}

// Overlap returns |a ∩ b| counting shared indices only.
func Overlap(a, b Vector) int {
	i, j, n := 0, 0, 0
	for i < len(a.Ind) && j < len(b.Ind) {
		switch {
		case a.Ind[i] == b.Ind[j]:
			n++
			i++
			j++
		case a.Ind[i] < b.Ind[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// Jaccard returns the Jaccard set similarity |a∩b| / |a∪b| of the
// index sets, ignoring weights. Two empty vectors have similarity 0.
func Jaccard(a, b Vector) float64 {
	inter := Overlap(a, b)
	union := len(a.Ind) + len(b.Ind) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// BinaryCosine returns the cosine similarity of the binarized vectors,
// |a∩b| / sqrt(|a|·|b|).
func BinaryCosine(a, b Vector) float64 {
	if len(a.Ind) == 0 || len(b.Ind) == 0 {
		return 0
	}
	return float64(Overlap(a, b)) / math.Sqrt(float64(len(a.Ind))*float64(len(b.Ind)))
}

// Binarize returns a copy of v with every weight set to 1.
func (v Vector) Binarize() Vector {
	out := Vector{Ind: make([]uint32, len(v.Ind)), Val: make([]float64, len(v.Ind))}
	copy(out.Ind, v.Ind)
	for i := range out.Val {
		out.Val[i] = 1
	}
	return out
}

// Equal reports exact structural equality.
func Equal(a, b Vector) bool {
	if len(a.Ind) != len(b.Ind) {
		return false
	}
	for i := range a.Ind {
		if a.Ind[i] != b.Ind[i] || a.Val[i] != b.Val[i] {
			return false
		}
	}
	return true
}
