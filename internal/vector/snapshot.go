package vector

import (
	"fmt"

	"bayeslsh/internal/snapshot"
)

// WriteSnapshot serializes v as parallel index/weight slices.
func (v Vector) WriteSnapshot(w *snapshot.Writer) {
	w.U32s(v.Ind)
	w.F64s(v.Val)
}

// ReadVectorSnapshot decodes one vector, validating the structural
// invariants (parallel slices, strictly increasing indices, finite
// non-zero weights) so downstream code can rely on them.
func ReadVectorSnapshot(r *snapshot.Reader) (Vector, error) {
	v := Vector{Ind: r.U32s(), Val: r.F64s()}
	if err := r.Err(); err != nil {
		return Vector{}, err
	}
	if err := v.Validate(); err != nil {
		return Vector{}, fmt.Errorf("%w: %v", snapshot.ErrCorrupt, err)
	}
	return v, nil
}

// MaxSnapshotDim caps the dimensionality a collection snapshot may
// declare. Dim sizes per-feature allocations in several consumers
// (hash projections, postings lists), so the decoder bounds it the
// way every slice length is bounded — a corrupt or hostile snapshot
// must fail cleanly, not drive multi-gigabyte allocations.
const MaxSnapshotDim = 1 << 27

// WriteSnapshot serializes the collection: dimensionality, vector
// count, then each vector.
func (c *Collection) WriteSnapshot(w *snapshot.Writer) {
	w.U32(uint32(c.Dim))
	w.U64(uint64(len(c.Vecs)))
	for _, v := range c.Vecs {
		v.WriteSnapshot(w)
	}
}

// ReadCollectionSnapshot decodes a collection and validates it: a
// positive, bounded dimensionality and every vector well-formed with
// indices inside it.
func ReadCollectionSnapshot(r *snapshot.Reader) (*Collection, error) {
	c := &Collection{Dim: int(r.U32())}
	if r.Err() == nil && (c.Dim < 1 || c.Dim > MaxSnapshotDim) {
		return nil, snapshot.Failf(r, "dimensionality %d outside [1, %d]", c.Dim, MaxSnapshotDim)
	}
	n := r.Len(16) // each vector is at least two length prefixes
	if err := r.Err(); err != nil {
		return nil, err
	}
	c.Vecs = make([]Vector, n)
	for i := range c.Vecs {
		v, err := ReadVectorSnapshot(r)
		if err != nil {
			return nil, fmt.Errorf("vector %d: %w", i, err)
		}
		c.Vecs[i] = v
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", snapshot.ErrCorrupt, err)
	}
	return c, nil
}
