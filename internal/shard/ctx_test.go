package shard

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunCtxCancelStopsDispatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := RunCtx(ctx, 1000, 4, 1, func(lo, hi, slot int) {
		if ran.Add(1) == 5 {
			cancel()
		}
		time.Sleep(time.Millisecond)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Workers may finish the batches they already held, but the
	// dispatch must stop: nowhere near all 1000 batches run.
	if n := ran.Load(); n > 100 {
		t.Fatalf("%d batches ran after cancellation", n)
	}
}

func TestRunCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	if err := RunCtx(ctx, 10, 2, 1, func(lo, hi, slot int) { ran = true }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("pre-canceled RunCtx executed a batch")
	}
}

func TestRunCtxBackgroundMatchesRun(t *testing.T) {
	var a, b atomic.Int64
	Run(100, 3, 7, func(lo, hi, slot int) { a.Add(int64(hi - lo)) })
	if err := RunCtx(context.Background(), 100, 3, 7, func(lo, hi, slot int) { b.Add(int64(hi - lo)) }); err != nil {
		t.Fatal(err)
	}
	if a.Load() != 100 || b.Load() != 100 {
		t.Fatalf("covered %d vs %d items, want 100", a.Load(), b.Load())
	}
}

func TestCollectCtx(t *testing.T) {
	got, err := CollectCtx(context.Background(), 10, 2, 3, func(lo, hi int) []int {
		var out []int
		for i := lo; i < hi; i++ {
			out = append(out, i)
		}
		return out
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("collected %d items, want 10", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d; batch order broken", i, v)
		}
	}
}

func TestStreamCtxDeliversAll(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var sum int
		err := StreamCtx(context.Background(), 100, workers, 9, func(lo, hi int) int {
			return hi - lo
		}, func(n int) error {
			sum += n
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if sum != 100 {
			t.Fatalf("workers=%d: delivered %d items, want 100", workers, sum)
		}
	}
}

func TestStreamCtxEmitErrorAborts(t *testing.T) {
	sentinel := errors.New("stop now")
	for _, workers := range []int{1, 4} {
		emitted := 0
		err := StreamCtx(context.Background(), 1000, workers, 1, func(lo, hi int) int {
			time.Sleep(100 * time.Microsecond)
			return lo
		}, func(int) error {
			emitted++
			if emitted == 3 {
				return sentinel
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v, want sentinel", workers, err)
		}
		if emitted != 3 {
			t.Fatalf("workers=%d: emit ran %d times after error", workers, emitted)
		}
	}
}

func TestStreamCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var emitted atomic.Int64
	err := StreamCtx(ctx, 1000, 4, 1, func(lo, hi int) int {
		time.Sleep(200 * time.Microsecond)
		return lo
	}, func(int) error {
		if emitted.Add(1) == 2 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := emitted.Load(); n > 100 {
		t.Fatalf("emit ran %d times after cancellation", n)
	}
}

func TestStopperNilAndBackground(t *testing.T) {
	var nilStop *Stopper
	if nilStop.Stopped() {
		t.Fatal("nil stopper reports stopped")
	}
	if nilStop.Err() != nil {
		t.Fatal("nil stopper reports an error")
	}
	nilStop.Close() // must not panic

	st := NewStopper(context.Background())
	defer st.Close()
	if st.Stopped() {
		t.Fatal("background stopper reports stopped")
	}
}

func TestStopperTrips(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	st := NewStopper(ctx)
	defer st.Close()
	if st.Stopped() {
		t.Fatal("stopper tripped before cancellation")
	}
	cancel()
	deadline := time.Now().Add(2 * time.Second)
	for !st.Stopped() {
		if time.Now().After(deadline) {
			t.Fatal("stopper did not trip after cancellation")
		}
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(st.Err(), context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", st.Err())
	}
}
