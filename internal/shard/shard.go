package shard

import "sync"

// Count returns the number of batches of size batch needed for n
// items. It is 0 when n <= 0 and batch is clamped to at least 1.
func Count(n, batch int) int {
	if n <= 0 {
		return 0
	}
	if batch < 1 {
		batch = 1
	}
	return (n + batch - 1) / batch
}

// Run divides n items into contiguous batches of size batch and calls
// f(lo, hi, slot) for each batch covering items [lo, hi), where slot
// is the batch index in 0..Count(n, batch)-1 (batches are contiguous
// and in order: slot s covers [s*batch, min((s+1)*batch, n))). With
// workers <= 1 the batches run sequentially on the calling goroutine;
// otherwise they are distributed over min(workers, batches) goroutines
// through a channel, so short batches load-balance dynamically. Run
// returns when every batch has completed.
//
// f must be safe for concurrent invocation when workers > 1; writing
// only to state owned by its slot (plus atomic or worker-local state)
// is the intended pattern.
func Run(n, workers, batch int, f func(lo, hi, slot int)) {
	if batch < 1 {
		batch = 1
	}
	nb := Count(n, batch)
	if nb == 0 {
		return
	}
	if workers > nb {
		workers = nb
	}
	if workers <= 1 {
		for s := 0; s < nb; s++ {
			lo := s * batch
			hi := lo + batch
			if hi > n {
				hi = n
			}
			f(lo, hi, s)
		}
		return
	}
	jobs := make(chan int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range jobs {
				lo := s * batch
				hi := lo + batch
				if hi > n {
					hi = n
				}
				f(lo, hi, s)
			}
		}()
	}
	for s := 0; s < nb; s++ {
		jobs <- s
	}
	close(jobs)
	wg.Wait()
}

// Collect runs f over batches of n items on workers goroutines (the
// same contract as Run) and concatenates the per-batch result slices
// in batch order, so the combined output is identical to a sequential
// pass regardless of scheduling. f must be safe for concurrent
// invocation when workers > 1.
func Collect[T any](n, workers, batch int, f func(lo, hi int) []T) []T {
	nb := Count(n, batch)
	if nb == 0 {
		return nil
	}
	if workers <= 1 || nb == 1 {
		if batch < 1 {
			batch = 1
		}
		var out []T
		for s := 0; s < nb; s++ {
			lo := s * batch
			hi := lo + batch
			if hi > n {
				hi = n
			}
			out = append(out, f(lo, hi)...)
		}
		return out
	}
	outs := make([][]T, nb)
	Run(n, workers, batch, func(lo, hi, slot int) {
		outs[slot] = f(lo, hi)
	})
	total := 0
	for _, o := range outs {
		total += len(o)
	}
	out := make([]T, 0, total)
	for _, o := range outs {
		out = append(out, o...)
	}
	return out
}

// Chunk returns a batch size that divides n items into roughly
// workers*4 batches (at least min items each), a reasonable default
// when per-item cost is uneven and no natural batch size exists.
func Chunk(n, workers, min int) int {
	if workers < 1 {
		workers = 1
	}
	c := n / (workers * 4)
	if c < min {
		c = min
	}
	if c < 1 {
		c = 1
	}
	return c
}
