package shard

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestCount(t *testing.T) {
	cases := []struct{ n, batch, want int }{
		{0, 10, 0}, {-3, 10, 0}, {1, 10, 1}, {10, 10, 1},
		{11, 10, 2}, {25, 10, 3}, {5, 0, 5}, {5, -1, 5},
	}
	for _, c := range cases {
		if got := Count(c.n, c.batch); got != c.want {
			t.Errorf("Count(%d, %d) = %d, want %d", c.n, c.batch, got, c.want)
		}
	}
}

// coverage checks that every item is visited exactly once and that
// each slot sees its own contiguous range.
func coverage(t *testing.T, n, workers, batch int) {
	t.Helper()
	visits := make([]int32, n)
	Run(n, workers, batch, func(lo, hi, slot int) {
		if lo != slot*max(batch, 1) {
			t.Errorf("slot %d starts at %d", slot, lo)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&visits[i], 1)
		}
	})
	for i, v := range visits {
		if v != 1 {
			t.Fatalf("n=%d workers=%d batch=%d: item %d visited %d times", n, workers, batch, i, v)
		}
	}
}

func TestRunCoversAllItemsOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 1000} {
		for _, workers := range []int{0, 1, 3, 8, 2000} {
			for _, batch := range []int{0, 1, 7, 64, 5000} {
				coverage(t, n, workers, batch)
			}
		}
	}
}

func TestRunSequentialOrder(t *testing.T) {
	var seen []int
	Run(10, 1, 3, func(lo, hi, slot int) { seen = append(seen, slot) })
	want := []int{0, 1, 2, 3}
	if len(seen) != len(want) {
		t.Fatalf("slots = %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("slots = %v, want %v", seen, want)
		}
	}
}

func TestChunkBounds(t *testing.T) {
	if c := Chunk(1000, 4, 16); c != 62 {
		t.Errorf("Chunk(1000, 4, 16) = %d, want 62", c)
	}
	if c := Chunk(10, 4, 16); c != 16 {
		t.Errorf("small n should clamp to min, got %d", c)
	}
	if c := Chunk(10, 0, 0); c < 1 {
		t.Errorf("Chunk must be at least 1, got %d", c)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestCollectMatchesSequential(t *testing.T) {
	square := func(lo, hi int) []int {
		var out []int
		for i := lo; i < hi; i++ {
			out = append(out, i*i)
		}
		return out
	}
	want := square(0, 137)
	for _, workers := range []int{0, 1, 4, 9} {
		for _, batch := range []int{1, 7, 64, 1000} {
			got := Collect(137, workers, batch, square)
			if len(got) != len(want) {
				t.Fatalf("workers=%d batch=%d: %d items, want %d", workers, batch, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("workers=%d batch=%d: item %d = %d, want %d", workers, batch, i, got[i], want[i])
				}
			}
		}
	}
	if out := Collect(0, 4, 8, square); out != nil {
		t.Errorf("Collect over 0 items returned %v", out)
	}
}

func TestFillEnsureConcurrent(t *testing.T) {
	const items, units = 100, 64
	f := NewFill(items)
	data := make([][]int, items)
	for i := range data {
		data[i] = make([]int, units)
	}
	var fills atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			depth := 8 * (g%8 + 1)
			for id := 0; id < items; id++ {
				f.Ensure(int32(id), depth, func(from int) int {
					fills.Add(1)
					for u := from; u < depth; u++ {
						data[id][u] = id*1000 + u
					}
					return depth
				})
				// After Ensure returns, the prefix must be readable.
				for u := 0; u < depth; u++ {
					if data[id][u] != id*1000+u {
						t.Errorf("item %d unit %d = %d", id, u, data[id][u])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for id := 0; id < items; id++ {
		if got := f.Filled(int32(id)); got != units {
			t.Fatalf("item %d filled to %d, want %d", id, got, units)
		}
	}
	// Each item fills monotonically: at most 8 distinct depths.
	if n := fills.Load(); n > items*8 {
		t.Errorf("%d fill invocations for %d items", n, items)
	}
	if f.Elapsed() < 0 {
		t.Error("negative elapsed")
	}
}
