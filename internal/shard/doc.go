// Package shard provides the batched worker-pool primitives behind
// the library's parallel pipelines — both the batch search and the
// query-serving index are built on them.
//
// # Run and Collect
//
// Run divides n work items into contiguous batches and feeds batch
// indices through a channel to a fixed pool of workers; every batch
// knows its slot, so callers write results into slot-owned state and
// reassemble them in input order regardless of worker scheduling.
// Collect wraps the common gather pattern: per-batch result slices
// concatenated in batch order. Chunk picks a batch size that divides
// work into roughly four batches per worker when no natural unit
// exists.
//
// All parallel stages (LSH banding, AllPairs probing, signature
// hashing, BayesLSH verification, exact verification, batch querying)
// go through Run, which is what keeps them deterministic for a fixed
// seed: the work a batch performs never depends on which worker
// executes it or when — only the batch's position in the input does.
//
// # Cancellation and streaming (RunCtx, CollectCtx, StreamCtx, Stopper)
//
// Every primitive has a context-aware form that stops dispatching
// batches the moment the context is done, drains its workers, and
// returns ctx.Err(). For abort points finer than a batch, a Stopper
// turns the context into an atomic flag (set by context.AfterFunc)
// that hot loops poll between individual items at ~1 ns per check —
// the per-round and per-posting abort points of the verification and
// candidate-generation kernels. StreamCtx inverts Collect: instead of
// gathering all batch outputs it hands each one to an emit callback
// on the calling goroutine as the batch completes, which is what
// bounds resident results in the streaming search API.
//
// # Fill
//
// Fill coordinates lazily filled per-item state shared by concurrent
// readers and writers — the synchronization core of the signature
// stores. Writers to an item serialize on a striped lock; readers
// synchronize through an atomic per-item fill counter stored with
// release semantics after the data writes complete, so a reader that
// observes Filled(id) >= n may read the first n units of item id's
// data without locking.
package shard
