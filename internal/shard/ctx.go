// Cooperative cancellation for the sharded pipeline. Three layers of
// granularity share one mechanism:
//
//   - RunCtx / CollectCtx stop dispatching batches once the context is
//     done, so a canceled search never starts new units of work;
//   - a Stopper turns the context into an atomic flag that hot loops
//     poll between individual items (a ~1 ns load, against the mutex a
//     direct ctx.Err() call would take), so a canceled search also
//     aborts the batch it is in the middle of;
//   - StreamCtx delivers per-batch outputs to the caller as they
//     complete, bounding resident results to the batches in flight.
//
// All three drain their worker goroutines before returning: a canceled
// call leaves nothing running. Contexts that can never be canceled
// (ctx.Done() == nil, e.g. context.Background()) take the exact
// zero-overhead code paths of Run/Collect.

package shard

import (
	"context"
	"sync"
	"sync/atomic"
)

// Stopper adapts a context for cheap, frequent cancellation checks: an
// atomic flag set by context.AfterFunc the moment the context is done.
// Hot loops call Stopped between items instead of selecting on
// ctx.Done() or calling ctx.Err(), both of which are far more
// expensive than an atomic load.
//
// A nil *Stopper is valid and never stops — callers that thread an
// optional stopper through shared code pass nil for "not cancelable".
// Close releases the AfterFunc registration; it must be called once
// the guarded work finishes (defer st.Close()).
type Stopper struct {
	ctx     context.Context
	tripped atomic.Bool
	release func() bool
}

// NewStopper watches ctx. For contexts that can never be canceled the
// stopper registers nothing and Stopped is a plain load of a flag that
// stays false.
func NewStopper(ctx context.Context) *Stopper {
	s := &Stopper{ctx: ctx}
	if ctx.Done() != nil {
		s.release = context.AfterFunc(ctx, func() { s.tripped.Store(true) })
	}
	return s
}

// Stopped reports whether the watched context is done. Safe on a nil
// receiver (false) and for any number of concurrent callers.
func (s *Stopper) Stopped() bool { return s != nil && s.tripped.Load() }

// Err returns the watched context's error: nil until cancellation,
// context.Canceled or context.DeadlineExceeded after. Nil-safe.
func (s *Stopper) Err() error {
	if s == nil {
		return nil
	}
	return s.ctx.Err()
}

// Close releases the context watcher. Idempotent and nil-safe.
func (s *Stopper) Close() {
	if s != nil && s.release != nil {
		s.release()
	}
}

// RunCtx is Run with cooperative cancellation: no batch starts after
// ctx is done, and RunCtx returns ctx.Err() with every worker
// goroutine drained. Batches already in flight run to completion
// unless f itself polls a Stopper; whatever f wrote for completed or
// abandoned batches must be discarded by the caller when RunCtx
// returns an error. A non-cancelable ctx takes Run's code path
// unchanged.
func RunCtx(ctx context.Context, n, workers, batch int, f func(lo, hi, slot int)) error {
	if ctx.Done() == nil {
		Run(n, workers, batch, f)
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if batch < 1 {
		batch = 1
	}
	nb := Count(n, batch)
	if nb == 0 {
		return ctx.Err()
	}
	if workers > nb {
		workers = nb
	}
	st := NewStopper(ctx)
	defer st.Close()
	if workers <= 1 {
		for s := 0; s < nb && !st.Stopped(); s++ {
			lo := s * batch
			hi := min(lo+batch, n)
			f(lo, hi, s)
		}
		return ctx.Err()
	}
	jobs := make(chan int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range jobs {
				if st.Stopped() {
					continue // drain without executing
				}
				lo := s * batch
				hi := min(lo+batch, n)
				f(lo, hi, s)
			}
		}()
	}
	done := ctx.Done()
dispatch:
	for s := 0; s < nb; s++ {
		select {
		case jobs <- s:
		case <-done:
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	return ctx.Err()
}

// CollectCtx is Collect with cooperative cancellation (the RunCtx
// contract). On cancellation it returns nil results and ctx.Err().
func CollectCtx[T any](ctx context.Context, n, workers, batch int, f func(lo, hi int) []T) ([]T, error) {
	if ctx.Done() == nil {
		return Collect(n, workers, batch, f), nil
	}
	if batch < 1 {
		batch = 1
	}
	outs := make([][]T, Count(n, batch))
	if err := RunCtx(ctx, n, workers, batch, func(lo, hi, slot int) {
		outs[slot] = f(lo, hi)
	}); err != nil {
		return nil, err
	}
	total := 0
	for _, o := range outs {
		total += len(o)
	}
	out := make([]T, 0, total)
	for _, o := range outs {
		out = append(out, o...)
	}
	return out, nil
}

// StreamCtx runs f over contiguous batches of n items on a worker pool
// (the Run contract) and delivers each batch's output to emit on the
// calling goroutine, in batch completion order — not batch order — as
// soon as it is ready. At most about `workers` undelivered outputs are
// resident at once, which is what bounds the memory of the streaming
// search pipeline: results leave through emit instead of accumulating.
//
// emit runs on the calling goroutine only, so it needs no
// synchronization. If emit returns an error, no further batch starts,
// in-flight outputs are discarded, and StreamCtx returns that error.
// If ctx is canceled, StreamCtx stops dispatching and returns
// ctx.Err(). Either way every worker goroutine is drained before
// StreamCtx returns.
func StreamCtx[T any](ctx context.Context, n, workers, batch int, f func(lo, hi int) T, emit func(T) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if batch < 1 {
		batch = 1
	}
	nb := Count(n, batch)
	if nb == 0 {
		return ctx.Err()
	}
	if workers > nb {
		workers = nb
	}
	if workers <= 1 {
		st := NewStopper(ctx)
		defer st.Close()
		for s := 0; s < nb; s++ {
			if st.Stopped() {
				return ctx.Err()
			}
			lo := s * batch
			hi := min(lo+batch, n)
			if err := emit(f(lo, hi)); err != nil {
				return err
			}
		}
		return ctx.Err()
	}

	// inner cancels the pool when emit fails, on top of the caller's
	// ctx; the stopper watches inner so workers see both causes.
	inner, cancel := context.WithCancel(ctx)
	defer cancel()
	st := NewStopper(inner)
	defer st.Close()

	jobs := make(chan int, workers)
	outputs := make(chan T, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range jobs {
				if st.Stopped() {
					continue
				}
				lo := s * batch
				hi := min(lo+batch, n)
				v := f(lo, hi)
				select {
				case outputs <- v:
				case <-inner.Done():
				}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for s := 0; s < nb; s++ {
			select {
			case jobs <- s:
			case <-inner.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(outputs)
	}()

	var emitErr error
	for v := range outputs {
		if emitErr != nil || st.Stopped() {
			continue // drain
		}
		if err := emit(v); err != nil {
			emitErr = err
			cancel()
		}
	}
	if emitErr != nil {
		return emitErr
	}
	return ctx.Err()
}
