package shard

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCoalescerSingleFlight checks that overlapping triggers coalesce:
// many triggers during one slow run schedule exactly one follow-up.
func TestCoalescerSingleFlight(t *testing.T) {
	var runs atomic.Int64
	var inFlight atomic.Int64
	started := make(chan struct{}, 16)
	release := make(chan struct{})
	c := NewCoalescer(func(ctx context.Context) {
		if inFlight.Add(1) != 1 {
			t.Error("two runs in flight")
		}
		runs.Add(1)
		started <- struct{}{}
		<-release
		inFlight.Add(-1)
	})
	defer c.Close()

	c.Trigger()
	<-started // run 1 is in flight
	for i := 0; i < 50; i++ {
		c.Trigger() // all coalesce into one pending follow-up
	}
	release <- struct{}{}
	<-started // run 2 (the coalesced follow-up)
	release <- struct{}{}
	c.Quiesce()
	if got := runs.Load(); got != 2 {
		t.Fatalf("%d runs, want 2 (one in-flight + one coalesced)", got)
	}
}

// TestCoalescerQuiesce checks that Quiesce waits for both the
// in-flight run and the pending trigger.
func TestCoalescerQuiesce(t *testing.T) {
	var done atomic.Int64
	c := NewCoalescer(func(ctx context.Context) {
		time.Sleep(time.Millisecond)
		done.Add(1)
	})
	defer c.Close()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Trigger()
		}()
	}
	wg.Wait()
	c.Quiesce()
	if done.Load() == 0 {
		t.Fatal("Quiesce returned before any triggered run completed")
	}
}

// TestCoalescerClose checks that Close cancels the in-flight run's
// context, waits for the worker, drops later triggers, and is
// idempotent (including concurrently).
func TestCoalescerClose(t *testing.T) {
	canceled := make(chan struct{})
	started := make(chan struct{})
	c := NewCoalescer(func(ctx context.Context) {
		close(started)
		<-ctx.Done()
		close(canceled)
	})
	c.Trigger()
	<-started
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Close()
		}()
	}
	wg.Wait()
	select {
	case <-canceled:
	default:
		t.Fatal("Close returned before the in-flight run observed cancellation")
	}
	c.Trigger() // dropped, must not panic or hang
	c.Quiesce() // returns immediately when closed
}
