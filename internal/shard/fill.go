package shard

import (
	"sync"
	"sync/atomic"
	"time"
)

// fillStripes is the number of lock stripes guarding per-item fills.
const fillStripes = 64

// Fill coordinates lazily filled per-item state shared by concurrent
// readers and writers — the synchronization core of the signature
// stores. Writers to an item serialize on a striped lock; readers
// synchronize through an atomic per-item fill counter: a reader that
// observes Filled(id) >= n may read the first n units of item id's
// data without further locking, because the counter is stored with
// release semantics only after the data writes complete.
type Fill struct {
	filled []int32
	locks  [fillStripes]sync.Mutex
	nanos  atomic.Int64
}

// NewFill tracks n items, all initially at fill count 0.
func NewFill(n int) *Fill { return &Fill{filled: make([]int32, n)} }

// Filled returns item id's current fill count.
func (f *Fill) Filled(id int32) int { return int(atomic.LoadInt32(&f.filled[id])) }

// Elapsed returns the cumulative time spent inside fill callbacks.
// Under concurrent fills it sums per-goroutine time and can exceed
// the wall clock of the enclosing phase.
func (f *Fill) Elapsed() time.Duration { return time.Duration(f.nanos.Load()) }

// Restore sets item id's fill count directly — the snapshot-loading
// path, which repopulates item data wholesale and then declares it
// filled. It must run before the Fill is shared with concurrent
// Ensure/Filled callers (loading is single-goroutine), and after the
// item's first n data units have been written.
func (f *Fill) Restore(id int32, n int) {
	atomic.StoreInt32(&f.filled[id], int32(n))
}

// Ensure guarantees item id is filled to at least n units. If it is
// not, fill(from) runs under the item's stripe lock; it must extend
// the item's data from `from` units and return the new fill count
// (>= n). Concurrent Ensure calls for the same item serialize; calls
// for items on different stripes proceed independently.
func (f *Fill) Ensure(id int32, n int, fill func(from int) int) {
	if int(atomic.LoadInt32(&f.filled[id])) >= n {
		return
	}
	mu := &f.locks[uint32(id)%fillStripes]
	mu.Lock()
	defer mu.Unlock()
	if int(atomic.LoadInt32(&f.filled[id])) >= n {
		return
	}
	start := time.Now()
	to := fill(int(f.filled[id]))
	atomic.StoreInt32(&f.filled[id], int32(to))
	f.nanos.Add(int64(time.Since(start)))
}
