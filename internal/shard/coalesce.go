package shard

import (
	"context"
	"sync"
)

// Coalescer schedules a background task with single-flight,
// trigger-coalescing semantics: at most one run is in flight at a
// time, Trigger during a run schedules exactly one follow-up run (no
// matter how many triggers arrive), and Close cancels the in-flight
// run's context and waits for the worker goroutine to exit. It is the
// merge scheduler of the live index: mutations fire cheap Triggers,
// and compactions serialize and coalesce behind one worker.
type Coalescer struct {
	run    func(ctx context.Context)
	cancel context.CancelFunc
	kick   chan struct{} // capacity 1: a pending trigger
	done   chan struct{} // closed when the worker exits

	mu      sync.Mutex
	cond    *sync.Cond
	busy    bool // a run is in flight
	pending bool // a trigger has not been consumed yet
	closed  bool
}

// NewCoalescer starts the worker goroutine for run. run receives a
// context that is canceled by Close; it must return promptly once the
// context is done.
func NewCoalescer(run func(ctx context.Context)) *Coalescer {
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coalescer{
		run:    run,
		cancel: cancel,
		kick:   make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	go c.loop(ctx)
	return c
}

// Trigger requests a run. It never blocks: if a run is in flight the
// request coalesces into the single pending follow-up; after Close it
// is a no-op.
func (c *Coalescer) Trigger() {
	c.mu.Lock()
	if !c.closed {
		c.pending = true
	}
	c.mu.Unlock()
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// Quiesce blocks until no run is in flight and no trigger is pending —
// the point at which every mutation issued before the call has had its
// scheduled run completed. It does not prevent new triggers; callers
// wanting a stable quiescent state stop mutating first.
func (c *Coalescer) Quiesce() {
	c.mu.Lock()
	for (c.busy || c.pending) && !c.closed {
		c.cond.Wait()
	}
	c.mu.Unlock()
}

// Close cancels the in-flight run (if any), stops the worker and
// waits for it to exit. Triggers after Close are dropped. Close is
// idempotent.
func (c *Coalescer) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.done
		return
	}
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
	c.cancel()
	<-c.done
}

func (c *Coalescer) loop(ctx context.Context) {
	defer close(c.done)
	for {
		select {
		case <-ctx.Done():
			return
		case <-c.kick:
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return
		}
		if !c.pending {
			c.mu.Unlock()
			continue
		}
		c.pending, c.busy = false, true
		c.mu.Unlock()

		c.run(ctx)

		c.mu.Lock()
		c.busy = false
		c.cond.Broadcast()
		c.mu.Unlock()
	}
}
