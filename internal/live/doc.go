// Package live holds the mutable half of the live (ingest-while-
// serving) index: the append-only memtable that receives new vectors
// and their signatures, the lock-free monotone tombstone set that
// masks deletions out of every segment, and the merge policy that
// decides when the delta is folded into a fresh immutable base.
//
// The package is deliberately mechanism-only. Everything that knows
// about measures, hash families, verifiers or the determinism
// contract lives in the root package's LiveIndex, which feeds the
// memtable fully prepared entries (raw and work vectors plus whatever
// signature representations the built pipeline compares) and wraps
// the probe results in the same verification switch the immutable
// Index uses. See docs/LIVE.md for the segment model.
//
// Concurrency model: a Memtable is written by one mutator at a time
// (the LiveIndex serializes mutations) and read by any number of
// concurrent queries; its RWMutex protects the incremental bucket and
// posting structures, while the entry arrays are append-only and read
// through pinned prefix views. Tombstones is monotone (bits are only
// ever set) and therefore entirely lock-free on the read side.
package live
