package live

import (
	"sync"

	"bayeslsh/internal/allpairs"
	"bayeslsh/internal/lshindex"
	"bayeslsh/internal/vector"
)

// Entry is one ingested vector in every representation the built
// pipeline compares: the raw vector (exact verification), the
// measure-transformed work vector (AllPairs probing, hashing input),
// and whichever signatures the index's candidate generation and
// verification read. Unused representations are nil. Entries are
// immutable once appended.
type Entry struct {
	Raw, Work vector.Vector
	Min       []uint32 // minhash signature (Jaccard pipelines)
	Bits      []uint64 // packed hyperplane bits (cosine measures)
	One       []uint64 // 1-bit packed minhashes (OneBitMinhash)
}

// Memtable is the mutable delta segment of a live index: an
// append-only log of entries plus the incremental candidate structure
// of the built pipeline — banded LSH delta tables, an unfiltered
// AllPairs delta posting index, or nothing (BruteForce scans the
// view). One mutator appends at a time (callers serialize); any
// number of queries probe concurrently.
type Memtable struct {
	mu   sync.RWMutex
	raw  []vector.Vector
	work []vector.Vector
	min  [][]uint32
	bits [][]uint64
	one  [][]uint64

	bitsD *lshindex.BitsDelta
	minsD *lshindex.MinhashDelta
	apD   *allpairs.Delta
}

// NewMemtable creates a memtable over the given candidate structure;
// at most one of bitsD, minsD and apD is non-nil (all nil selects the
// brute-force scan).
func NewMemtable(bitsD *lshindex.BitsDelta, minsD *lshindex.MinhashDelta, apD *allpairs.Delta) *Memtable {
	return &Memtable{bitsD: bitsD, minsD: minsD, apD: apD}
}

// Append adds the entry to the log and candidate structure, returning
// its slot. Appends must be serialized by the caller; the new slot
// becomes visible to queries only when the caller publishes a
// generation whose view covers it.
func (m *Memtable) Append(e Entry) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	slot := len(m.raw)
	m.raw = append(m.raw, e.Raw)
	m.work = append(m.work, e.Work)
	m.min = append(m.min, e.Min)
	m.bits = append(m.bits, e.Bits)
	m.one = append(m.one, e.One)
	switch {
	case m.bitsD != nil:
		m.bitsD.Add(int32(slot), e.Bits)
	case m.minsD != nil:
		m.minsD.Add(int32(slot), e.Min)
	case m.apD != nil:
		m.apD.Add(int32(slot), e.Work)
	}
	return slot
}

// Len returns the number of appended entries.
func (m *Memtable) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.raw)
}

// View is an immutable prefix of the memtable, pinned by a
// generation: slices share the memtable's append-only backing, so a
// view stays valid (and unchanged) however far the memtable grows
// after it was taken.
type View struct {
	Raw, Work []vector.Vector
	Min       [][]uint32
	Bits      [][]uint64
	One       [][]uint64
}

// View returns the first n entries as an immutable view.
func (m *Memtable) View(n int) View {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return View{
		Raw:  m.raw[:n:n],
		Work: m.work[:n:n],
		Min:  m.min[:n:n],
		Bits: m.bits[:n:n],
		One:  m.one[:n:n],
	}
}

// Candidates returns the delta slots < n that the built pipeline's
// candidate generation pairs with a query carrying the given
// signatures (bits for the cosine LSH tables, min for the Jaccard
// tables, work for AllPairs postings), ascending and deduplicated.
// With no candidate structure (BruteForce) every non-empty slot
// qualifies, matching Index.candidates' brute-force arm.
func (m *Memtable) Candidates(bits []uint64, min []uint32, work vector.Vector, n int) []int32 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	switch {
	case m.bitsD != nil:
		return m.bitsD.Probe(bits, int32(n))
	case m.minsD != nil:
		return m.minsD.Probe(min, int32(n))
	case m.apD != nil:
		return m.apD.Probe(work, int32(n))
	default:
		ids := make([]int32, 0, n)
		for slot := 0; slot < n; slot++ {
			if m.raw[slot].Len() > 0 {
				ids = append(ids, int32(slot))
			}
		}
		return ids
	}
}
