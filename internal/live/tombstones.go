package live

import (
	"math/bits"
	"sync/atomic"
)

// tombChunkWords is the size of one tombstone bitset chunk; 64 words
// cover 4096 ids.
const tombChunkWords = 64

const tombChunkBits = tombChunkWords * 64

type tombChunk [tombChunkWords]atomic.Uint64

// Tombstones is a monotone concurrent bitset over external vector
// ids: bits are only ever set, never cleared, and ids are never
// reused, so readers need no lock — Has is a pointer load plus an
// atomic word load. Set calls must be serialized by the caller (the
// LiveIndex mutation lock); Has may run concurrently with Set, and a
// query overlapping a delete observes it either way, both of which
// are valid linearizations.
type Tombstones struct {
	chunks atomic.Pointer[[]*tombChunk]
	count  atomic.Int64
}

// NewTombstones returns an empty set.
func NewTombstones() *Tombstones {
	t := &Tombstones{}
	empty := make([]*tombChunk, 0)
	t.chunks.Store(&empty)
	return t
}

// Set marks id deleted, growing the chunk list as needed, and reports
// whether the bit was newly set. Callers must serialize Set calls.
func (t *Tombstones) Set(id int) bool {
	ci, wi, bit := id/tombChunkBits, (id%tombChunkBits)/64, uint(id%64)
	chunks := *t.chunks.Load()
	if ci >= len(chunks) {
		grown := make([]*tombChunk, ci+1)
		copy(grown, chunks)
		for i := len(chunks); i <= ci; i++ {
			grown[i] = new(tombChunk)
		}
		t.chunks.Store(&grown)
		chunks = grown
	}
	w := &chunks[ci][wi]
	old := w.Load()
	if old&(1<<bit) != 0 {
		return false
	}
	w.Store(old | 1<<bit)
	t.count.Add(1)
	return true
}

// Has reports whether id is deleted. Safe for any number of
// concurrent callers, including concurrently with Set.
func (t *Tombstones) Has(id int) bool {
	if id < 0 {
		return false
	}
	ci := id / tombChunkBits
	chunks := *t.chunks.Load()
	if ci >= len(chunks) {
		return false
	}
	return chunks[ci][(id%tombChunkBits)/64].Load()&(1<<uint(id%64)) != 0
}

// Count returns the number of ids ever deleted (including ids whose
// vectors have since been compacted away by a merge).
func (t *Tombstones) Count() int { return int(t.count.Load()) }

// IDs returns the deleted ids below limit, ascending — the snapshot
// encoding of the set. Call it from the mutation lock (or any other
// point of quiescence) for a consistent cut.
func (t *Tombstones) IDs(limit int) []int {
	var out []int
	chunks := *t.chunks.Load()
	for ci, c := range chunks {
		for wi := range c {
			w := c[wi].Load()
			for w != 0 {
				id := ci*tombChunkBits + wi*64 + bits.TrailingZeros64(w)
				if id >= limit {
					return out
				}
				out = append(out, id)
				w &= w - 1
			}
		}
	}
	return out
}
