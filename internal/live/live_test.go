package live

import (
	"sync"
	"testing"

	"bayeslsh/internal/vector"
)

// TestTombstones covers the monotone bitset: set-once semantics,
// growth across chunks, ordered enumeration, and lock-free reads
// racing a writer.
func TestTombstones(t *testing.T) {
	ts := NewTombstones()
	ids := []int{0, 63, 64, 4095, 4096, 70000}
	for _, id := range ids {
		if ts.Has(id) {
			t.Fatalf("fresh set Has(%d)", id)
		}
		if !ts.Set(id) {
			t.Fatalf("Set(%d) reported already set", id)
		}
		if ts.Set(id) {
			t.Fatalf("second Set(%d) reported newly set", id)
		}
		if !ts.Has(id) {
			t.Fatalf("Has(%d) after Set", id)
		}
	}
	if ts.Count() != len(ids) {
		t.Fatalf("Count = %d, want %d", ts.Count(), len(ids))
	}
	if got := ts.IDs(70001); len(got) != len(ids) {
		t.Fatalf("IDs = %v", got)
	} else {
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Fatalf("IDs not ascending: %v", got)
			}
		}
	}
	if got := ts.IDs(4096); len(got) != 4 {
		t.Fatalf("IDs(4096) = %v, want the 4 ids below 4096", got)
	}
	if ts.Has(-1) || ts.Has(1<<30) {
		t.Fatal("Has out of range")
	}
}

// TestTombstonesConcurrentReads races Has against a serialized Set
// stream — the live index's query-versus-delete pattern, run under
// -race in CI.
func TestTombstonesConcurrentReads(t *testing.T) {
	ts := NewTombstones()
	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
					ts.Has(i % 100000)
				}
			}
		}()
	}
	for i := 0; i < 50000; i += 7 {
		ts.Set(i)
	}
	close(done)
	wg.Wait()
	for i := 0; i < 50000; i += 7 {
		if !ts.Has(i) {
			t.Fatalf("lost tombstone %d", i)
		}
	}
}

// TestPolicy pins the trigger semantics: defaults, disabled triggers,
// and the two thresholds.
func TestPolicy(t *testing.T) {
	p := Policy{}.WithDefaults()
	if p.MaxDelta != 4096 || p.MaxRatio != 0.25 {
		t.Fatalf("defaults = %+v", p)
	}
	cases := []struct {
		p                 Policy
		base, delta, dead int
		want              bool
	}{
		{p, 10000, 0, 0, false},     // nothing to fold
		{p, 10000, 4096, 0, true},   // size trigger
		{p, 10000, 4095, 0, true},   // ratio trigger (4095 > 0.25*10000)
		{p, 100000, 100, 50, false}, // both below bounds
		{p, 100, 10, 20, true},      // ratio via tombstones
		{Policy{MaxDelta: -1, MaxRatio: -1}, 10, 1000000, 1000000, false}, // disabled
		{Policy{MaxDelta: 5, MaxRatio: -1}.WithDefaults(), 1000000, 5, 0, true},
	}
	for i, c := range cases {
		if got := c.p.Due(c.base, c.delta, c.dead); got != c.want {
			t.Fatalf("case %d: Due(%d, %d, %d) = %v, want %v", i, c.base, c.delta, c.dead, got, c.want)
		}
	}
}

// TestMemtableViews checks append-only visibility: a view pinned at n
// sees exactly the first n entries however far the memtable grows,
// and Candidates respects the bound.
func TestMemtableViews(t *testing.T) {
	m := NewMemtable(nil, nil, nil) // brute-force arm
	v1 := vector.FromMap(map[uint32]float64{1: 1})
	v2 := vector.FromMap(map[uint32]float64{2: 1})
	empty := vector.Vector{}
	if slot := m.Append(Entry{Raw: v1, Work: v1}); slot != 0 {
		t.Fatalf("first slot = %d", slot)
	}
	view := m.View(1)
	m.Append(Entry{Raw: empty, Work: empty})
	m.Append(Entry{Raw: v2, Work: v2})
	if len(view.Raw) != 1 || view.Raw[0].Len() != 1 {
		t.Fatalf("pinned view changed: %v", view.Raw)
	}
	if m.Len() != 3 {
		t.Fatalf("Len = %d", m.Len())
	}
	// Brute-force candidates: non-empty slots below the bound.
	if ids := m.Candidates(nil, nil, vector.Vector{}, 3); len(ids) != 2 || ids[0] != 0 || ids[1] != 2 {
		t.Fatalf("Candidates(3) = %v, want [0 2] (empty slot skipped)", ids)
	}
	if ids := m.Candidates(nil, nil, vector.Vector{}, 1); len(ids) != 1 || ids[0] != 0 {
		t.Fatalf("Candidates(1) = %v, want [0]", ids)
	}
}
