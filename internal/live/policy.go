package live

// Policy decides when the delta segment is folded into a fresh base —
// the write-amplification versus query-cost dial of the live index.
// A merge rebuilds the base in the background at roughly the cost of
// one offline build (minus hashing, which is adopted), so the policy
// bounds how large the delta and the tombstone shadow may grow before
// that price is paid.
type Policy struct {
	// MaxDelta triggers a merge once the delta holds this many
	// vectors. 0 selects the default 4096; negative disables the
	// size trigger.
	MaxDelta int
	// MaxRatio triggers a merge once delta vectors plus live
	// tombstones exceed this fraction of the base size. 0 selects the
	// default 0.25; negative disables the ratio trigger.
	MaxRatio float64
}

// WithDefaults fills the zero-value triggers.
func (p Policy) WithDefaults() Policy {
	if p.MaxDelta == 0 {
		p.MaxDelta = 4096
	}
	if p.MaxRatio == 0 {
		p.MaxRatio = 0.25
	}
	return p
}

// Due reports whether a merge should be scheduled for a generation
// with base vectors, delta delta vectors and dead tombstoned-but-
// present vectors.
func (p Policy) Due(base, delta, dead int) bool {
	if delta+dead == 0 {
		return false
	}
	if p.MaxDelta > 0 && delta >= p.MaxDelta {
		return true
	}
	return p.MaxRatio > 0 && float64(delta+dead) >= p.MaxRatio*float64(base)
}
