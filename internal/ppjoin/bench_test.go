package ppjoin

import (
	"testing"

	"bayeslsh/internal/dataset"
	"bayeslsh/internal/exact"
	"bayeslsh/internal/vector"
)

func benchSets(b *testing.B) *vector.Collection {
	b.Helper()
	c, err := dataset.Generate(dataset.Spec{
		Name: "bench", Kind: dataset.Text,
		N: 1000, Dim: 5000, AvgLen: 40, ZipfS: 0.9,
		ClusterFrac: 0.3, ClusterSize: 4, MutationRate: 0.2, Seed: 9,
	})
	if err != nil {
		b.Fatal(err)
	}
	return c.Binarize()
}

func BenchmarkSearchJaccardHighThreshold(b *testing.B) {
	c := benchSets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Search(c, exact.Jaccard, 0.8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchJaccardLowThreshold(b *testing.B) {
	c := benchSets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Search(c, exact.Jaccard, 0.3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchBinaryCosine(b *testing.B) {
	c := benchSets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Search(c, exact.BinaryCosine, 0.7); err != nil {
			b.Fatal(err)
		}
	}
}
