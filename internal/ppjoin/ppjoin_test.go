package ppjoin

import (
	"testing"

	"bayeslsh/internal/exact"
	"bayeslsh/internal/rng"
	"bayeslsh/internal/testutil"
	"bayeslsh/internal/vector"
)

func TestSearchMatchesBruteForceJaccard(t *testing.T) {
	for _, seed := range []uint64{1, 2} {
		c := testutil.SmallBinaryCorpus(t, 300, seed)
		for _, th := range []float64{0.3, 0.5, 0.7, 0.9} {
			got, err := Search(c, exact.Jaccard, th)
			if err != nil {
				t.Fatal(err)
			}
			want := exact.Search(c, exact.Jaccard, th)
			testutil.RequireSameResults(t, got, want, 1e-9)
		}
	}
}

func TestSearchMatchesBruteForceBinaryCosine(t *testing.T) {
	c := testutil.SmallBinaryCorpus(t, 300, 3)
	for _, th := range []float64{0.5, 0.7, 0.9} {
		got, err := Search(c, exact.BinaryCosine, th)
		if err != nil {
			t.Fatal(err)
		}
		want := exact.Search(c, exact.BinaryCosine, th)
		testutil.RequireSameResults(t, got, want, 1e-9)
	}
}

func TestSearchRandomSetsAgainstBruteForce(t *testing.T) {
	// Adversarial small random universes stress tie handling (equal
	// sizes, duplicate sets, heavy token reuse).
	src := rng.New(99)
	for trial := 0; trial < 5; trial++ {
		vecs := make([]vector.Vector, 60)
		for i := range vecs {
			m := map[uint32]float64{}
			l := 1 + src.Intn(12)
			for j := 0; j < l; j++ {
				m[uint32(src.Intn(40))] = 1
			}
			vecs[i] = vector.FromMap(m)
		}
		c := &vector.Collection{Dim: 40, Vecs: vecs}
		for _, th := range []float64{0.3, 0.6, 0.8} {
			got, err := Search(c, exact.Jaccard, th)
			if err != nil {
				t.Fatal(err)
			}
			testutil.RequireSameResults(t, got, exact.Search(c, exact.Jaccard, th), 1e-9)
		}
	}
}

func TestDuplicateSetsFound(t *testing.T) {
	v := vector.New([]vector.Entry{{Ind: 1, Val: 1}, {Ind: 5, Val: 1}, {Ind: 9, Val: 1}})
	c := &vector.Collection{Dim: 10, Vecs: []vector.Vector{v, v.Clone(), v.Clone()}}
	got, err := Search(c, exact.Jaccard, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Errorf("expected 3 duplicate pairs, got %v", got)
	}
	for _, r := range got {
		if r.Sim != 1 {
			t.Errorf("duplicate pair sim = %v", r.Sim)
		}
	}
}

func TestRejectsBadArguments(t *testing.T) {
	c := &vector.Collection{Dim: 3}
	if _, err := Search(c, exact.Jaccard, 0); err == nil {
		t.Error("threshold 0 accepted")
	}
	if _, err := Search(c, exact.Jaccard, 1.1); err == nil {
		t.Error("threshold > 1 accepted")
	}
	if _, err := Search(c, exact.Cosine, 0.5); err == nil {
		t.Error("weighted cosine accepted by a binary-only algorithm")
	}
}

func TestEmptyVectorsIgnored(t *testing.T) {
	c := &vector.Collection{Dim: 5, Vecs: []vector.Vector{
		{},
		vector.New([]vector.Entry{{Ind: 1, Val: 1}}),
		{},
		vector.New([]vector.Entry{{Ind: 1, Val: 1}}),
	}}
	got, err := Search(c, exact.Jaccard, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Errorf("got %v, want exactly the 1-3 pair", got)
	}
}
