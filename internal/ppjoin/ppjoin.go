package ppjoin

import (
	"context"
	"fmt"
	"math"
	"sort"

	"bayeslsh/internal/exact"
	"bayeslsh/internal/pair"
	"bayeslsh/internal/shard"
	"bayeslsh/internal/vector"
)

// record is a set re-expressed as sorted token ranks.
type record struct {
	id     int32
	tokens []int32
}

// entry is an inverted-index posting: record index (into the sorted
// record order) and the token's position within that record.
type entry struct {
	rec int32
	pos int32
}

// Search performs an exact all-pairs similarity join on the index
// sets of c under measure m (Jaccard or BinaryCosine) with threshold
// t in (0, 1]. Weights are ignored.
func Search(c *vector.Collection, m exact.Measure, t float64) ([]pair.Result, error) {
	var out []pair.Result
	if err := scan(c, m, t, nil, func(r pair.Result) bool {
		out = append(out, r)
		return true
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// SearchCtx is Search with cooperative cancellation: the scan is
// inherently sequential (each record probes the index of the records
// before it), so cancellation is polled between probing records and
// between posting lists, and a canceled call returns (nil, ctx.Err()).
func SearchCtx(ctx context.Context, c *vector.Collection, m exact.Measure, t float64) ([]pair.Result, error) {
	if ctx.Done() == nil {
		return Search(c, m, t)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	stop := shard.NewStopper(ctx)
	defer stop.Close()
	var out []pair.Result
	if err := scan(c, m, t, stop, func(r pair.Result) bool {
		out = append(out, r)
		return true
	}); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// SearchStream is the streaming form of Search: each probing record's
// verified results go to emit as the record completes, so no full
// result set is ever resident. emit runs on the calling goroutine; a
// non-nil error from emit stops the scan and is returned.
func SearchStream(ctx context.Context, c *vector.Collection, m exact.Measure, t float64, emit func([]pair.Result) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	stop := shard.NewStopper(ctx)
	defer stop.Close()
	// The scan's per-record result batches are tiny, so streaming
	// record by record would be all call overhead; results are flushed
	// in blocks instead. The scan itself holds only its index and
	// accumulators — the block size is what bounds buffered results.
	const block = 1024
	var (
		buf     []pair.Result
		emitErr error
	)
	err := scan(c, m, t, stop, func(r pair.Result) bool {
		buf = append(buf, r)
		if len(buf) >= block {
			emitErr = emit(buf)
			buf = nil // emit may have retained the slice
		}
		return emitErr == nil
	})
	switch {
	case err != nil:
		return err
	case emitErr != nil:
		return emitErr
	case ctx.Err() != nil:
		return ctx.Err()
	}
	if len(buf) > 0 {
		if err := emit(buf); err != nil {
			return err
		}
	}
	return ctx.Err()
}

// scan runs the PPJoin+ join, emitting each verified pair in
// processing order. stop (nil for "not cancelable") is polled between
// probing records and between posting lists; once it trips — or emit
// returns false — the scan returns early and the caller discards or
// ignores what was emitted.
func scan(c *vector.Collection, m exact.Measure, t float64, stop *shard.Stopper, emit func(pair.Result) bool) error {
	if t <= 0 || t > 1 {
		return fmt.Errorf("ppjoin: threshold %v outside (0, 1]", t)
	}
	var (
		// minLen returns the smallest |y| that can reach t with |x|.
		minLen func(x int) int
		// alpha returns the required overlap for sizes |x|, |y|.
		alpha func(x, y int) int
		// sim computes the similarity from overlap and sizes.
		sim func(o, x, y int) float64
	)
	// The filters use ceilings of floating-point expressions; a pair
	// sitting exactly at the threshold (common for rational Jaccard
	// values) must not be lost to an upward rounding error, so the
	// ceilings are relaxed by a tiny epsilon and the final decision is
	// made with the same similarity formula the rest of the library
	// uses.
	const fpSlack = 1e-9
	ceil := func(x float64) int { return int(math.Ceil(x - fpSlack)) }
	switch m {
	case exact.Jaccard:
		minLen = func(x int) int { return ceil(t * float64(x)) }
		alpha = func(x, y int) int {
			return ceil(t / (1 + t) * float64(x+y))
		}
		sim = func(o, x, y int) float64 { return float64(o) / float64(x+y-o) }
	case exact.BinaryCosine:
		minLen = func(x int) int { return ceil(t * t * float64(x)) }
		alpha = func(x, y int) int {
			return ceil(t * math.Sqrt(float64(x)*float64(y)))
		}
		sim = func(o, x, y int) float64 {
			return float64(o) / math.Sqrt(float64(x)*float64(y))
		}
	default:
		return fmt.Errorf("ppjoin: measure %v not supported (binary measures only)", m)
	}

	records := canonicalize(c)
	n := len(records)
	index := make(map[int32][]entry)

	// Per-probe candidate accumulators, reset via the touched list.
	overlap := make([]int32, n)    // matching prefix tokens so far
	lastPos := make([][2]int32, n) // positions of the last prefix match
	pruned := make([]bool, n)
	var touched []int32

	for xi := 0; xi < n; xi++ {
		if stop.Stopped() {
			return nil
		}
		x := records[xi]
		xlen := len(x.tokens)
		if xlen == 0 {
			continue
		}
		// Probing prefix: a qualifying partner must share one of the
		// first |x| − α_min + 1 tokens, where α_min = α(|x|, minLen).
		aMin := alpha(xlen, minLen(xlen))
		if aMin < 1 {
			aMin = 1
		}
		probePrefix := xlen - aMin + 1
		if probePrefix > xlen {
			probePrefix = xlen
		}
		touched = touched[:0]
		for i := 0; i < probePrefix; i++ {
			if stop.Stopped() {
				return nil
			}
			w := x.tokens[i]
			postings := index[w]
			// Lazy length filter: records are processed in increasing
			// size, so postings too short for x are too short forever.
			lo := 0
			for lo < len(postings) && len(records[postings[lo].rec].tokens) < minLen(xlen) {
				lo++
			}
			if lo > 0 {
				postings = postings[lo:]
				index[w] = postings
			}
			for _, e := range postings {
				if pruned[e.rec] {
					continue
				}
				y := records[e.rec]
				ylen := len(y.tokens)
				a := alpha(xlen, ylen)
				if overlap[e.rec] == 0 {
					touched = append(touched, e.rec)
				}
				// Positional filter: can the pair still reach α?
				ub := overlap[e.rec] + 1 + int32(minInt(xlen-i-1, ylen-int(e.pos)-1))
				if int(ub) < a {
					pruned[e.rec] = true
					continue
				}
				overlap[e.rec]++
				lastPos[e.rec] = [2]int32{int32(i), e.pos}
			}
		}
		// Verify survivors by merging the suffixes after the last
		// prefix match.
		for _, yi := range touched {
			o := overlap[yi]
			lp := lastPos[yi]
			wasPruned := pruned[yi]
			overlap[yi], pruned[yi] = 0, false
			if wasPruned || o == 0 {
				continue
			}
			y := records[yi]
			a := alpha(xlen, len(y.tokens))
			total := mergeCount(x.tokens, y.tokens, int(lp[0])+1, int(lp[1])+1, int(o), a)
			if s := sim(total, xlen, len(y.tokens)); total >= a && s >= t {
				p := pair.Make(x.id, y.id)
				if !emit(pair.Result{A: p.A, B: p.B, Sim: s}) {
					return nil
				}
			}
		}
		// Index x's prefix.
		for i := 0; i < probePrefix; i++ {
			w := x.tokens[i]
			index[w] = append(index[w], entry{rec: int32(xi), pos: int32(i)})
		}
	}
	return nil
}

// mergeCount merges x[xi:] and y[yi:], returning base plus the number
// of shared tokens, terminating early once alpha is unreachable.
func mergeCount(x, y []int32, xi, yi, base, alpha int) int {
	o := base
	for xi < len(x) && yi < len(y) {
		if o+minInt(len(x)-xi, len(y)-yi) < alpha {
			return o // cannot reach alpha anymore
		}
		switch {
		case x[xi] == y[yi]:
			o++
			xi++
			yi++
		case x[xi] < y[yi]:
			xi++
		default:
			yi++
		}
	}
	return o
}

// canonicalize converts the collection to token-rank records sorted by
// increasing size: tokens are remapped to their rank in increasing
// document frequency, and each record's tokens are sorted by rank.
func canonicalize(c *vector.Collection) []record {
	df := make([]int32, c.Dim)
	for _, v := range c.Vecs {
		for _, ind := range v.Ind {
			df[ind]++
		}
	}
	perm := make([]int32, c.Dim)
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.SliceStable(perm, func(a, b int) bool { return df[perm[a]] < df[perm[b]] })
	rank := make([]int32, c.Dim)
	for r, f := range perm {
		rank[f] = int32(r)
	}
	records := make([]record, 0, len(c.Vecs))
	for id, v := range c.Vecs {
		toks := make([]int32, v.Len())
		for i, ind := range v.Ind {
			toks[i] = rank[ind]
		}
		sort.Slice(toks, func(a, b int) bool { return toks[a] < toks[b] })
		records = append(records, record{id: int32(id), tokens: toks})
	}
	sort.SliceStable(records, func(a, b int) bool {
		return len(records[a].tokens) < len(records[b].tokens)
	})
	return records
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
