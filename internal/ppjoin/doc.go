// Package ppjoin implements the PPJoin algorithm of Xiao, Wang, Lin
// and Yu (WWW 2008) for exact all-pairs similarity joins over binary
// vectors (sets), the third baseline in the BayesLSH paper's binary
// experiments.
//
// # The three filters
//
// PPJoin combines three exact filters:
//
//   - Prefix filtering: order tokens by increasing document frequency;
//     if sets x and y satisfy overlap(x, y) >= α, their prefixes of
//     length |x| − α_min + 1 must share a token, so only prefix tokens
//     need to be indexed and probed.
//   - Length filtering: |y| >= t·|x| (Jaccard) or |y| >= t²·|x|
//     (binary cosine) is necessary, and processing records in
//     increasing size order makes the bound monotone.
//   - Positional filtering: a shared prefix token at positions (i, j)
//     caps the achievable overlap at A + 1 + min(|x|−i−1, |y|−j−1);
//     candidates whose cap falls below α are dropped before
//     verification.
//
// # Verification
//
// Survivors are verified by an early-terminating merge of the full
// token lists. The original paper's recursive suffix filtering
// (PPJoin+) is a further refinement of the verification step; this
// implementation relies on the early-terminating merge instead, which
// preserves both exactness and the performance shape the BayesLSH
// paper reports (fast at high thresholds, degrading as the threshold
// drops and prefixes lengthen).
//
// PPJoin's prefix index is bound to one join's processing order and
// threshold, so it has no query-serving (build-once/query-many) form;
// the engine's Index rejects it.
package ppjoin
