package planner

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"bayeslsh/internal/vector"
)

// corpus builds a small deterministic collection: n vectors of the
// given lengths (cycled), features drawn from a seeded source.
func corpus(t *testing.T, n, dim int, lens []int) *vector.Collection {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	c := &vector.Collection{Dim: dim}
	for i := 0; i < n; i++ {
		want := lens[i%len(lens)]
		m := make(map[uint32]float64, want)
		for len(m) < want {
			m[uint32(rng.Intn(dim))] = 1 + rng.Float64()
		}
		c.Vecs = append(c.Vecs, vector.FromMap(m))
	}
	return c
}

func TestCollectBasics(t *testing.T) {
	c := corpus(t, 100, 500, []int{10, 20, 30})
	st := Collect(c)
	if st.Vectors != 100 || st.Dim != 500 {
		t.Fatalf("shape: %+v", st)
	}
	if st.Zero() {
		t.Fatal("non-empty corpus reported zero stats")
	}
	if st.AvgLen < 15 || st.AvgLen > 25 {
		t.Errorf("AvgLen = %v, want ~20", st.AvgLen)
	}
	if st.MedianLen > st.P90Len || st.P90Len > st.MaxLen {
		t.Errorf("quantiles out of order: %+v", st)
	}
	if st.Density <= 0 || st.Density > 1 {
		t.Errorf("Density = %v", st.Density)
	}
	if st.TopDFFrac <= 0 || st.TopDFFrac > 1 {
		t.Errorf("TopDFFrac = %v", st.TopDFFrac)
	}
	if st.HeavyFrac <= 0 || st.HeavyFrac > 1 {
		t.Errorf("HeavyFrac = %v", st.HeavyFrac)
	}
}

func TestCollectEmpty(t *testing.T) {
	st := Collect(&vector.Collection{Dim: 10})
	if !st.Zero() {
		t.Fatalf("empty corpus: %+v", st)
	}
}

// TestCollectMapFallback proves the wide-dimension df path computes
// the same skew statistics as the dense path on the same vectors.
func TestCollectMapFallback(t *testing.T) {
	narrow := corpus(t, 50, 1000, []int{8, 16})
	wide := &vector.Collection{Dim: dfSliceMaxDim + 1, Vecs: narrow.Vecs}
	a, b := Collect(narrow), Collect(wide)
	if a.TopDFFrac != b.TopDFFrac || a.HeavyFrac != b.HeavyFrac {
		t.Fatalf("df paths disagree: dense %+v vs map %+v", a, b)
	}
}

func TestChooseDeterministic(t *testing.T) {
	st := Collect(corpus(t, 400, 2000, []int{20, 40, 200}))
	req := Request{Measure: Cosine, Threshold: 0.7, Serving: true}
	a := Choose(st, req)
	b := Choose(st, req)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Choose not deterministic: %+v vs %+v", a, b)
	}
	if len(a.Rules) == 0 {
		t.Fatal("no rules fired")
	}
}

// TestChooseQuantized proves every threshold inside one 0.05 bucket
// plans identically — the property that makes plan-cache hits
// transparent.
func TestChooseQuantized(t *testing.T) {
	st := Collect(corpus(t, 400, 2000, []int{20, 40, 200}))
	for _, m := range []Measure{Cosine, Jaccard, BinaryCosine} {
		base := Choose(st, Request{Measure: m, Threshold: 0.60})
		for _, tt := range []float64{0.61, 0.63, 0.649} {
			got := Choose(st, Request{Measure: m, Threshold: tt})
			if !reflect.DeepEqual(base, got) {
				t.Errorf("%v t=%v plans %v, bucket floor plans %v", m, tt, got.Pipeline, base.Pipeline)
			}
		}
	}
}

func TestChooseRules(t *testing.T) {
	big := Collect(corpus(t, 2000, 4000, []int{100, 150, 200}))
	small := Collect(corpus(t, 50, 500, []int{10}))
	short := Collect(corpus(t, 2000, 4000, []int{8, 12}))
	huge := Collect(corpus(t, 9000, 4000, []int{100, 150, 200}))
	hugeShort := Collect(corpus(t, 9000, 4000, []int{8, 12}))

	cases := []struct {
		name string
		st   Stats
		req  Request
		want Pipeline
	}{
		{"tiny corpus brute-forces", small, Request{Measure: Cosine, Threshold: 0.7}, BruteForce},
		{"batch short binary low-t is ppjoin", short, Request{Measure: Jaccard, Threshold: 0.4}, PPJoin},
		{"serving excludes ppjoin", short, Request{Measure: Jaccard, Threshold: 0.4, Serving: true}, AllPairs},
		{"topk verifies exactly (high t, large)", huge, Request{Measure: Cosine, Threshold: 0.7, K: 10, Serving: true}, LSH},
		{"small corpus avoids banding even high-t", big, Request{Measure: Cosine, Threshold: 0.7, K: 10, Serving: true}, AllPairs},
		{"topk verifies exactly (low t)", big, Request{Measure: Cosine, Threshold: 0.3, K: 10, Serving: true}, AllPairs},
		{"short query verifies exactly", huge, Request{Measure: Cosine, Threshold: 0.7, QueryLen: 5, Serving: true}, LSH},
		{"short vectors verify exactly", hugeShort, Request{Measure: Cosine, Threshold: 0.7, Serving: true}, LSH},
		{"sharded jaccard avoids the prior", huge, Request{Measure: Jaccard, Threshold: 0.7, Serving: true, NoGlobalPrior: true}, LSH},
	}
	for _, tc := range cases {
		got := Choose(tc.st, tc.req)
		if got.Pipeline != tc.want {
			t.Errorf("%s: got %v want %v (rules %v)", tc.name, got.Pipeline, tc.want, got.Rules)
		}
	}

	// Long-vector corpora pick a probabilistic verifier over the
	// measured-best candidate source — AllPairs below the banding
	// crossover, LSH above it — and never PPJoin above its ceiling.
	got := Choose(big, Request{Measure: Cosine, Threshold: 0.7})
	if got.Pipeline != AllPairsBayesLSH && got.Pipeline != AllPairsBayesLSHLite {
		t.Errorf("long vectors high t small corpus: got %v, want an AllPairs Bayes pipeline", got.Pipeline)
	}
	got = Choose(huge, Request{Measure: Cosine, Threshold: 0.7})
	if got.Pipeline != LSHBayesLSH && got.Pipeline != LSHBayesLSHLite {
		t.Errorf("long vectors high t large corpus: got %v, want an LSH Bayes pipeline", got.Pipeline)
	}
}

// TestPlanCacheTransparent proves a cache hit returns exactly what a
// fresh Choose computes, for a sweep of request shapes.
func TestPlanCacheTransparent(t *testing.T) {
	st := Collect(corpus(t, 2000, 4000, []int{30, 60, 300}))
	p := New(st)
	reqs := []Request{
		{Measure: Cosine, Threshold: 0.7, Serving: true},
		{Measure: Cosine, Threshold: 0.72, Serving: true}, // same bucket
		{Measure: Jaccard, Threshold: 0.5},
		{Measure: BinaryCosine, Threshold: 0.61, K: 10, Serving: true},
		{Measure: Cosine, Threshold: 0.61, QueryLen: 3, Serving: true},
	}
	for _, r := range reqs {
		first := p.Plan(r)  // miss
		second := p.Plan(r) // hit
		direct := Choose(st, r)
		if !reflect.DeepEqual(first, second) || !reflect.DeepEqual(first, direct) {
			t.Errorf("cache not transparent for %+v", r)
		}
	}
	if p.CacheLen() == 0 {
		t.Fatal("nothing cached")
	}
	if p.CacheLen() > maxCacheEntries {
		t.Fatalf("cache overflow: %d", p.CacheLen())
	}
}

// TestPlanCacheConcurrent hammers one planner from many goroutines;
// run under -race this is the data-race proof.
func TestPlanCacheConcurrent(t *testing.T) {
	p := New(Collect(corpus(t, 500, 1000, []int{20, 50})))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r := Request{
					Measure:   Measure(i % 3),
					Threshold: 0.3 + float64((g+i)%14)*0.05,
					K:         i % 2 * 10,
					Serving:   g%2 == 0,
				}
				if got, want := p.Plan(r), Choose(p.Stats(), r); !reflect.DeepEqual(got, want) {
					t.Errorf("concurrent plan diverged for %+v", r)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
