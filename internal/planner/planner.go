// Package planner chooses a search pipeline for the caller.
//
// The engine exposes eight pipelines (candidate source × verifier) and
// historically forced every caller to pick one via Options. planner
// closes that gap with the cheapest machinery that works: a one-pass
// corpus statistics collector (Collect — O(nnz) once, at build time)
// and a deterministic greedy rule set (Choose) mapping
// (stats, measure, threshold, k, query shape) to a concrete pipeline.
// No cost model, no calibration runs: each rule is a monotone
// threshold on one statistic, and the fired rules are reported back to
// the caller (apss plan -why) so every choice is explainable.
//
// Determinism contract: Choose is a pure function of its arguments,
// and quantizes them first — the threshold to 0.05-wide buckets, k and
// the query length to coarse classes — so every request that lands in
// the same plan-cache cell (see Planner) computes exactly the same
// Plan. A cache hit is therefore indistinguishable from a miss, and an
// auto-planned search is bit-identical to an explicitly-configured
// search with the chosen pipeline, because choosing is all the planner
// does: execution is untouched.
//
// The package deliberately mirrors the root package's Measure and
// Algorithm enums (as Measure and Pipeline, with identical values)
// instead of importing them: the root package imports planner, not the
// other way around. The mirror is checked by the root package's tests.
package planner

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"bayeslsh/internal/vector"
)

// Measure mirrors the root package's similarity measures, value for
// value.
type Measure int

// The measure values, equal to the root package's.
const (
	Cosine Measure = iota
	Jaccard
	BinaryCosine
)

func (m Measure) String() string {
	switch m {
	case Cosine:
		return "cosine"
	case Jaccard:
		return "jaccard"
	case BinaryCosine:
		return "binary-cosine"
	}
	return fmt.Sprintf("Measure(%d)", int(m))
}

// Pipeline mirrors the root package's Algorithm enum, value for value.
type Pipeline int

// The pipeline values, equal to the root package's Algorithm values.
const (
	BruteForce Pipeline = iota
	AllPairs
	AllPairsBayesLSH
	AllPairsBayesLSHLite
	LSH
	LSHApprox
	LSHBayesLSH
	LSHBayesLSHLite
	PPJoin
)

var pipelineNames = map[Pipeline]string{
	BruteForce:           "BruteForce",
	AllPairs:             "AllPairs",
	AllPairsBayesLSH:     "AP+BayesLSH",
	AllPairsBayesLSHLite: "AP+BayesLSH-Lite",
	LSH:                  "LSH",
	LSHApprox:            "LSH Approx",
	LSHBayesLSH:          "LSH+BayesLSH",
	LSHBayesLSHLite:      "LSH+BayesLSH-Lite",
	PPJoin:               "PPJoin",
}

func (p Pipeline) String() string {
	if s, ok := pipelineNames[p]; ok {
		return s
	}
	return fmt.Sprintf("Pipeline(%d)", int(p))
}

// Stats are the corpus statistics the rules consume: shape (count,
// dimensionality, density), the length distribution (exact-similarity
// cost is linear in vector length), and vocabulary skew (how much a
// few hot features dominate — the regime where candidate filters
// degrade and probabilistic verification pays). All are collected in
// one pass and are cheap enough to persist in snapshot meta.
type Stats struct {
	Vectors   int     // corpus size
	Dim       int     // feature-space dimensionality
	Nnz       int64   // total non-zeros
	AvgLen    float64 // mean non-zeros per vector
	MedianLen int     // 50th-percentile vector length
	P90Len    int     // 90th-percentile vector length
	MaxLen    int     // longest vector
	LenCV     float64 // length coefficient of variation (stddev/mean)
	Density   float64 // AvgLen / Dim
	TopDFFrac float64 // doc-frequency of the hottest feature / Vectors
	HeavyFrac float64 // fraction of nnz carried by the top 1% of features
}

// Zero reports whether the stats carry no information (an empty corpus
// or a snapshot written before stats persistence existed).
func (s Stats) Zero() bool { return s.Vectors == 0 && s.Nnz == 0 }

// dfSliceMaxDim bounds the dense document-frequency array; corpora
// with a wider feature space fall back to a map.
const dfSliceMaxDim = 1 << 22

// Collect computes Stats over a corpus in one pass (plus one sort of
// the per-vector lengths and one of the document frequencies). It
// never mutates the collection.
func Collect(c *vector.Collection) Stats {
	st := Stats{Vectors: len(c.Vecs), Dim: c.Dim}
	if len(c.Vecs) == 0 {
		return st
	}
	lens := make([]int, len(c.Vecs))
	for i, v := range c.Vecs {
		lens[i] = v.Len()
		st.Nnz += int64(v.Len())
	}
	st.AvgLen = float64(st.Nnz) / float64(st.Vectors)
	if c.Dim > 0 {
		st.Density = st.AvgLen / float64(c.Dim)
	}
	sort.Ints(lens)
	st.MedianLen = lens[len(lens)/2]
	st.P90Len = lens[len(lens)*9/10]
	st.MaxLen = lens[len(lens)-1]
	if st.AvgLen > 0 {
		varSum := 0.0
		for _, n := range lens {
			d := float64(n) - st.AvgLen
			varSum += d * d
		}
		st.LenCV = math.Sqrt(varSum/float64(st.Vectors)) / st.AvgLen
	}
	df := docFreqs(c)
	if len(df) == 0 {
		return st
	}
	sort.Sort(sort.Reverse(sort.IntSlice(df)))
	st.TopDFFrac = float64(df[0]) / float64(st.Vectors)
	heavy := (len(df) + 99) / 100 // top 1%, at least one feature
	var heavyNnz int64
	for _, d := range df[:heavy] {
		heavyNnz += int64(d)
	}
	st.HeavyFrac = float64(heavyNnz) / float64(st.Nnz)
	return st
}

// docFreqs returns the nonzero document frequencies (in no particular
// order; Collect sorts them). A dense array for ordinary
// dimensionalities, a map for feature spaces too wide to allocate.
func docFreqs(c *vector.Collection) []int {
	if c.Dim <= dfSliceMaxDim {
		df := make([]int, c.Dim)
		for _, v := range c.Vecs {
			for _, ind := range v.Ind {
				df[ind]++
			}
		}
		out := df[:0]
		for _, d := range df {
			if d > 0 {
				out = append(out, d)
			}
		}
		return out
	}
	m := make(map[uint32]int)
	for _, v := range c.Vecs {
		for _, ind := range v.Ind {
			m[ind]++
		}
	}
	out := make([]int, 0, len(m))
	for _, d := range m {
		//apsslint:allow mapiter Collect sorts the frequencies before any rule reads them, so map order never reaches a result
		out = append(out, d)
	}
	return out
}

// Request is one planning question: which pipeline should serve this
// (measure, threshold, k, query shape) against the collected corpus?
type Request struct {
	Measure   Measure
	Threshold float64
	// K is the top-k bound (0 for threshold queries and batch
	// searches). TopK always verifies with exact similarities, so a
	// positive K steers away from probabilistic verification.
	K int
	// QueryLen is the query vector's non-zero count, 0 when unknown
	// (batch search, index build). Exact verification costs
	// O(min(query len, candidate len)) per candidate, so short queries
	// make exact verification cheap regardless of corpus shape.
	QueryLen int
	// Serving demands a query-serving index: PPJoin, which has no
	// index form, is excluded.
	Serving bool
	// NoGlobalPrior excludes the pipelines that fit a corpus-global
	// similarity prior (the Jaccard Bayes family without one-bit
	// minhash) — required when the corpus is sharded, where no node
	// sees the global candidate distribution.
	NoGlobalPrior bool
}

// Rule is one fired greedy rule: its stable name and the
// human-readable reason it applied, for apss plan -why.
type Rule struct {
	Name   string
	Detail string
}

// Plan is a planning decision: the chosen pipeline and every rule that
// fired on the way, in firing order.
type Plan struct {
	Pipeline Pipeline
	Rules    []Rule
}

// The rule constants. Tuned against the planner-quality harness
// (TestPlannerQuality): each sits at the crossover the harness's
// corpus profiles exhibit on the reference pipelines.
const (
	// tinyVectors: below this corpus size every index build costs more
	// than the brute-force scan it avoids.
	tinyVectors = 256
	// ppjoinMaxThreshold / ppjoinMaxAvgLen: PPJoin's prefix filter
	// wins on batch joins of short binary vectors at modest
	// thresholds; longer vectors or higher thresholds hand the win to
	// banding.
	ppjoinMaxThreshold = 0.55
	ppjoinMaxAvgLen    = 64
	// lshMinThreshold: at and above this threshold banded minhash/
	// hyperplane tables are selective enough to beat the AllPairs
	// inverted-index scan; below it band collisions degenerate toward
	// the full corpus and AllPairs' prefix bound prunes better.
	lshMinThreshold = 0.6
	// lshMinVectors: banding pays a fixed O(vectors × hashes) table
	// build before it prunes anything; below this corpus size that
	// cost exceeds what the AllPairs inverted-index scan spends on the
	// whole join (measured: AllPairs beats LSH candidate generation
	// 4-20× on every 1k-4k-vector harness profile, at any threshold).
	lshMinVectors = 8192
	// exactMaxAvgLen: with vectors this short, an exact dot product
	// per candidate is cheaper than comparing hundreds of hash bits —
	// probabilistic verification cannot pay for itself.
	exactMaxAvgLen = 48
	// shortQueryLen: a query this short makes every exact candidate
	// check O(QueryLen) regardless of corpus length distribution.
	shortQueryLen = 16
	// skewLenCV / skewTopDF: above either, candidate similarity is
	// heavy-tailed (a few hot features or giant vectors dominate), the
	// regime where BayesLSH's per-pair early stopping beats the Lite
	// variant's fixed hash budget.
	skewLenCV = 1.5
	skewTopDF = 0.5
	// bayesMinAvgLen: full BayesLSH replaces the exact check with
	// pure hash estimation, which only pays once an exact dot product
	// costs more than the extra estimation rounds — vectors in the
	// hundreds of features. Below it the Lite variant (small fixed
	// hash budget, then exact) wins on every measured profile.
	bayesMinAvgLen = 192
	bucketStep     = 0.05 // threshold quantization, floor to multiples
)

// bucketOf floors t to its 0.05-wide bucket index. The epsilon keeps
// exact multiples (0.60/0.05 = 11.999…) in their own bucket.
func bucketOf(t float64) int {
	return int(math.Floor(t/bucketStep + 1e-9))
}

// quantize floors t to the plan cache's 0.05-wide bucket so every
// request in a bucket plans identically (cache hit ≡ miss).
func quantize(t float64) float64 {
	return float64(bucketOf(t)) * bucketStep
}

// kClass collapses K to the classes the rules distinguish: 0 for
// threshold queries, 1 for any top-k.
func kClass(k int) int {
	if k > 0 {
		return 1
	}
	return 0
}

// lenClass collapses a query length to {0: unknown, 1: short, 2:
// long}.
func lenClass(n int) int {
	switch {
	case n <= 0:
		return 0
	case n <= shortQueryLen:
		return 1
	default:
		return 2
	}
}

// Choose maps (stats, request) to a pipeline by running the greedy
// rules in a fixed order, returning the choice and the fired rules.
// It is a pure function: same stats and same request (after
// quantization — see quantize, kClass, lenClass) always return the
// same Plan. Zero stats (a pre-stats snapshot) plan conservatively:
// the corpus is assumed ordinary-sized with moderate vectors.
func Choose(st Stats, req Request) Plan {
	t := quantize(req.Threshold)
	kc := kClass(req.K)
	lc := lenClass(req.QueryLen)
	var p Plan
	fire := func(name, detail string, args ...any) {
		p.Rules = append(p.Rules, Rule{Name: name, Detail: fmt.Sprintf(detail, args...)})
	}

	if !st.Zero() && st.Vectors < tinyVectors {
		fire("tiny-corpus", "%d vectors < %d: any index costs more than the scan it avoids", st.Vectors, tinyVectors)
		p.Pipeline = BruteForce
		return p
	}

	// Candidate source. PPJoin first: batch-only, binary measures,
	// short vectors, modest thresholds.
	if !req.Serving && kc == 0 && req.Measure != Cosine &&
		t <= ppjoinMaxThreshold && !st.Zero() && st.AvgLen <= ppjoinMaxAvgLen {
		fire("ppjoin-batch", "batch %v join at t=%.2f ≤ %.2f with short vectors (avg len %.1f ≤ %d): prefix filtering wins",
			req.Measure, t, ppjoinMaxThreshold, st.AvgLen, ppjoinMaxAvgLen)
		p.Pipeline = PPJoin
		return p
	}
	lsh := t >= lshMinThreshold && (st.Zero() || st.Vectors >= lshMinVectors)
	switch {
	case lsh:
		fire("high-threshold-lsh", "t=%.2f ≥ %.2f on a large corpus: banded hash tables are selective and their build cost amortizes", t, lshMinThreshold)
	case t >= lshMinThreshold:
		fire("small-corpus-allpairs", "%d vectors < %d: banding's fixed hashing cost outweighs its selectivity; the AllPairs scan prunes enough", st.Vectors, lshMinVectors)
	default:
		fire("low-threshold-allpairs", "t=%.2f < %.2f: band collisions degenerate at low thresholds; AllPairs prunes better", t, lshMinThreshold)
	}

	// Verifier. Exact when it is cheap (short vectors or short
	// queries) or forced (top-k similarities are exact by contract;
	// sharded Jaccard cannot fit a global prior).
	exact := ""
	switch {
	case kc > 0:
		exact = "top-k verifies with exact similarities; probabilistic pruning buys nothing"
	case !st.Zero() && st.AvgLen <= exactMaxAvgLen:
		exact = fmt.Sprintf("avg len %.1f ≤ %d: an exact dot product per candidate is cheaper than hash comparison", st.AvgLen, exactMaxAvgLen)
	case lc == 1:
		exact = fmt.Sprintf("query has ≤ %d features: exact checks are O(query len) regardless of corpus", shortQueryLen)
	case req.NoGlobalPrior && req.Measure == Jaccard:
		exact = "sharded jaccard cannot fit a corpus-global prior; exact verification keeps shards independent"
	}
	if exact != "" {
		fire("exact-verify", exact)
		if lsh {
			p.Pipeline = LSH
		} else {
			p.Pipeline = AllPairs
		}
		return p
	}

	// Probabilistic verification: full BayesLSH only when the exact
	// check is very expensive (long vectors) AND candidate similarity
	// is heavy-tailed — the one regime where estimating to completion
	// beats a small hash budget followed by one exact check. The Lite
	// variant wins everywhere else (measured: on every sub-200-avg-len
	// profile, Lite beats full BayesLSH 3-15×).
	if !st.Zero() && st.AvgLen >= bayesMinAvgLen &&
		(st.LenCV >= skewLenCV || st.TopDFFrac >= skewTopDF) {
		fire("heavy-skewed-bayes", "very long vectors (avg %.1f ≥ %d) with a heavy tail (len CV %.2f, top-feature df %.0f%%): per-pair early stopping beats any fixed budget",
			st.AvgLen, bayesMinAvgLen, st.LenCV, 100*st.TopDFFrac)
		if lsh {
			p.Pipeline = LSHBayesLSH
		} else {
			p.Pipeline = AllPairsBayesLSH
		}
		return p
	}
	fire("lite-verify", "exact checks are costly (avg len %.1f > %d) but not extreme: the Lite small-budget-then-exact verifier is cheapest",
		st.AvgLen, exactMaxAvgLen)
	if lsh {
		p.Pipeline = LSHBayesLSHLite
	} else {
		p.Pipeline = AllPairsBayesLSHLite
	}
	return p
}

// cacheKey is the plan cache's cell: every field is a quantized class,
// so all requests in a cell provably compute the same Plan.
type cacheKey struct {
	measure  Measure
	bucket   int // threshold bucket, floor(t / 0.05)
	kClass   int
	lenClass int
	serving  bool
	noPrior  bool
}

// maxCacheEntries bounds the plan cache. The key space is tiny (20
// threshold buckets × 3 measures × small classes), so the bound is a
// safety net, not a working limit; an over-full cache computes without
// storing — same answer, no growth.
const maxCacheEntries = 256

// Planner carries one corpus's stats and a bounded plan cache keyed by
// (measure, threshold bucket, k class, query length class) so repeated
// query shapes skip re-planning. Safe for concurrent use.
type Planner struct {
	st    Stats
	mu    sync.Mutex
	cache map[cacheKey]Plan
}

// New returns a Planner over the collected stats.
func New(st Stats) *Planner {
	return &Planner{st: st, cache: make(map[cacheKey]Plan)}
}

// Stats returns the stats the planner plans over.
func (p *Planner) Stats() Stats { return p.st }

// Plan returns Choose(stats, req), serving repeated query shapes from
// the plan cache. The cache is transparent: a hit returns exactly what
// Choose would, because the key quantizes every input Choose reads.
func (p *Planner) Plan(req Request) Plan {
	k := cacheKey{
		measure:  req.Measure,
		bucket:   bucketOf(req.Threshold),
		kClass:   kClass(req.K),
		lenClass: lenClass(req.QueryLen),
		serving:  req.Serving,
		noPrior:  req.NoGlobalPrior,
	}
	p.mu.Lock()
	pl, ok := p.cache[k]
	p.mu.Unlock()
	if ok {
		return pl
	}
	pl = Choose(p.st, req)
	p.mu.Lock()
	if len(p.cache) < maxCacheEntries {
		p.cache[k] = pl
	}
	p.mu.Unlock()
	return pl
}

// CacheLen reports the number of cached plans (for tests and stats).
func (p *Planner) CacheLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.cache)
}
