package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	return diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestLogGammaKnownValues(t *testing.T) {
	cases := []struct {
		x, want float64
	}{
		{1, 0},
		{2, 0},
		{3, math.Log(2)},
		{4, math.Log(6)},
		{5, math.Log(24)},
		{0.5, math.Log(math.Sqrt(math.Pi))},
		{1.5, math.Log(math.Sqrt(math.Pi) / 2)},
		{10, math.Log(362880)},
		{100, 359.1342053695754},
	}
	for _, c := range cases {
		if got := LogGamma(c.x); !almostEqual(got, c.want, 1e-10) {
			t.Errorf("LogGamma(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestLogGammaRecurrence(t *testing.T) {
	// Γ(x+1) = x Γ(x) → lnΓ(x+1) = ln x + lnΓ(x)
	for _, x := range []float64{0.1, 0.3, 0.7, 1.2, 2.5, 7.9, 33.3, 250} {
		lhs := LogGamma(x + 1)
		rhs := math.Log(x) + LogGamma(x)
		if !almostEqual(lhs, rhs, 1e-10) {
			t.Errorf("recurrence failed at x=%v: %v vs %v", x, lhs, rhs)
		}
	}
}

func TestLogGammaOutOfDomain(t *testing.T) {
	for _, x := range []float64{0, -1, -2.5} {
		if got := LogGamma(x); !math.IsNaN(got) {
			t.Errorf("LogGamma(%v) = %v, want NaN", x, got)
		}
	}
}

func TestLogBetaSymmetryAndKnown(t *testing.T) {
	if got := LogBeta(1, 1); !almostEqual(got, 0, 1e-12) {
		t.Errorf("LogBeta(1,1) = %v, want 0", got)
	}
	// B(2,3) = 1/12
	if got := LogBeta(2, 3); !almostEqual(got, math.Log(1.0/12), 1e-12) {
		t.Errorf("LogBeta(2,3) = %v, want ln(1/12)", got)
	}
	for _, ab := range [][2]float64{{0.5, 2}, {3, 7}, {10, 0.1}, {200, 300}} {
		if !almostEqual(LogBeta(ab[0], ab[1]), LogBeta(ab[1], ab[0]), 1e-12) {
			t.Errorf("LogBeta not symmetric at %v", ab)
		}
	}
}

// numericRegIncBeta integrates the Beta(a,b) density with Simpson's rule
// as an independent check of the continued-fraction implementation.
func numericRegIncBeta(x, a, b float64) float64 {
	const steps = 200001 // odd number of sample points
	if x <= 0 {
		return 0
	}
	if x > 1 {
		x = 1
	}
	f := func(t float64) float64 {
		// Clamp away from the boundary; for shapes >= 1 the density is
		// finite there and this loses negligible mass at the tolerance
		// the test uses.
		const eps = 1e-12
		if t < eps {
			t = eps
		}
		if t > 1-eps {
			t = 1 - eps
		}
		return math.Exp((a-1)*math.Log(t) + (b-1)*math.Log1p(-t) - LogBeta(a, b))
	}
	h := x / float64(steps-1)
	sum := f(0) + f(x)
	for i := 1; i < steps-1; i++ {
		t := float64(i) * h
		if i%2 == 1 {
			sum += 4 * f(t)
		} else {
			sum += 2 * f(t)
		}
	}
	return sum * h / 3
}

func TestRegIncBetaAgainstQuadrature(t *testing.T) {
	cases := []struct{ x, a, b float64 }{
		{0.3, 2, 5}, {0.7, 2, 5}, {0.5, 10, 10}, {0.9, 1, 1},
		{0.25, 33, 17}, {0.75, 4.5, 2.2}, {0.6, 129, 65},
	}
	for _, c := range cases {
		got := RegIncBeta(c.x, c.a, c.b)
		want := numericRegIncBeta(c.x, c.a, c.b)
		if !almostEqual(got, want, 1e-6) {
			t.Errorf("RegIncBeta(%v,%v,%v) = %v, quadrature %v", c.x, c.a, c.b, got, want)
		}
	}
}

func TestRegIncBetaKnownClosedForms(t *testing.T) {
	// I_x(1,1) = x (uniform CDF)
	for _, x := range []float64{0.1, 0.33, 0.5, 0.77, 0.99} {
		if got := RegIncBeta(x, 1, 1); !almostEqual(got, x, 1e-12) {
			t.Errorf("I_%v(1,1) = %v, want %v", x, got, x)
		}
	}
	// I_x(1,b) = 1 − (1−x)^b
	for _, x := range []float64{0.2, 0.5, 0.8} {
		for _, b := range []float64{2, 5, 17} {
			want := 1 - math.Pow(1-x, b)
			if got := RegIncBeta(x, 1, b); !almostEqual(got, want, 1e-12) {
				t.Errorf("I_%v(1,%v) = %v, want %v", x, b, got, want)
			}
		}
	}
	// I_x(a,1) = x^a
	for _, x := range []float64{0.2, 0.5, 0.8} {
		for _, a := range []float64{2, 5, 17} {
			want := math.Pow(x, a)
			if got := RegIncBeta(x, a, 1); !almostEqual(got, want, 1e-12) {
				t.Errorf("I_%v(%v,1) = %v, want %v", x, a, got, want)
			}
		}
	}
}

func TestRegIncBetaBoundsAndEdges(t *testing.T) {
	if got := RegIncBeta(0, 3, 4); got != 0 {
		t.Errorf("I_0 = %v, want 0", got)
	}
	if got := RegIncBeta(1, 3, 4); got != 1 {
		t.Errorf("I_1 = %v, want 1", got)
	}
	if got := RegIncBeta(-0.5, 3, 4); got != 0 {
		t.Errorf("I_{-0.5} = %v, want 0 (clamp)", got)
	}
	if got := RegIncBeta(1.5, 3, 4); got != 1 {
		t.Errorf("I_{1.5} = %v, want 1 (clamp)", got)
	}
	if got := RegIncBeta(0.5, -1, 4); !math.IsNaN(got) {
		t.Errorf("negative shape should yield NaN, got %v", got)
	}
}

func TestRegIncBetaPropertyMonotoneAndSymmetric(t *testing.T) {
	// Property: I is a CDF in x (monotone, in [0,1]) and satisfies the
	// reflection identity I_x(a,b) = 1 − I_{1−x}(b,a).
	f := func(xRaw, aRaw, bRaw uint16) bool {
		x := float64(xRaw%1000) / 1000
		a := 0.5 + float64(aRaw%400)/4 // 0.5 .. 100.25
		b := 0.5 + float64(bRaw%400)/4
		v := RegIncBeta(x, a, b)
		if v < 0 || v > 1 || math.IsNaN(v) {
			return false
		}
		refl := 1 - RegIncBeta(1-x, b, a)
		if !almostEqual(v, refl, 1e-9) && math.Abs(v-refl) > 1e-9 {
			return false
		}
		v2 := RegIncBeta(math.Min(x+0.05, 1), a, b)
		return v2+1e-12 >= v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLogChoose(t *testing.T) {
	cases := []struct {
		n, m int
		want float64
	}{
		{5, 2, math.Log(10)},
		{10, 0, 0},
		{10, 10, 0},
		{52, 5, math.Log(2598960)},
	}
	for _, c := range cases {
		if got := LogChoose(c.n, c.m); !almostEqual(got, c.want, 1e-10) {
			t.Errorf("LogChoose(%d,%d) = %v, want %v", c.n, c.m, got, c.want)
		}
	}
	if got := LogChoose(5, 7); !math.IsInf(got, -1) {
		t.Errorf("LogChoose(5,7) = %v, want -Inf", got)
	}
	if got := LogChoose(5, -1); !math.IsInf(got, -1) {
		t.Errorf("LogChoose(5,-1) = %v, want -Inf", got)
	}
}

func TestIncBetaRelation(t *testing.T) {
	// B(x;a,b) should equal I_x(a,b) * B(a,b).
	x, a, b := 0.42, 3.0, 5.0
	want := RegIncBeta(x, a, b) * math.Exp(LogBeta(a, b))
	if got := IncBeta(x, a, b); !almostEqual(got, want, 1e-12) {
		t.Errorf("IncBeta = %v, want %v", got, want)
	}
}
