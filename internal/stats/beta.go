package stats

import (
	"fmt"
	"math"
)

// Beta is a Beta(Alpha, Beta) distribution on (0, 1).
type Beta struct {
	Alpha, Beta float64
}

// Valid reports whether both shape parameters are positive and finite.
func (d Beta) Valid() bool {
	return d.Alpha > 0 && d.Beta > 0 &&
		!math.IsInf(d.Alpha, 0) && !math.IsInf(d.Beta, 0)
}

// PDF returns the density at x.
func (d Beta) PDF(x float64) float64 {
	if x <= 0 || x >= 1 {
		// Density at the boundary may be +Inf for shape < 1; the
		// library never evaluates there, so return 0 for simplicity.
		return 0
	}
	return math.Exp((d.Alpha-1)*math.Log(x) + (d.Beta-1)*math.Log1p(-x) - LogBeta(d.Alpha, d.Beta))
}

// CDF returns P[X <= x].
func (d Beta) CDF(x float64) float64 { return RegIncBeta(x, d.Alpha, d.Beta) }

// SF returns the survival function P[X > x] = 1 − CDF(x).
func (d Beta) SF(x float64) float64 { return 1 - d.CDF(x) }

// Mean returns α / (α+β).
func (d Beta) Mean() float64 { return d.Alpha / (d.Alpha + d.Beta) }

// Var returns the variance αβ / ((α+β)²(α+β+1)).
func (d Beta) Var() float64 {
	s := d.Alpha + d.Beta
	return d.Alpha * d.Beta / (s * s * (s + 1))
}

// Mode returns the mode (α−1)/(α+β−2) when α, β > 1. For other shapes
// it returns the clamped boundary maximizer, which is what the
// BayesLSH estimator needs (the posterior always has α, β >= 1 after at
// least one observed agreement and disagreement).
func (d Beta) Mode() float64 {
	switch {
	case d.Alpha > 1 && d.Beta > 1:
		return (d.Alpha - 1) / (d.Alpha + d.Beta - 2)
	case d.Alpha <= 1 && d.Beta > 1:
		return 0
	case d.Alpha > 1 && d.Beta <= 1:
		return 1
	default:
		// Bimodal at both ends; return the mean as a sane estimate.
		return d.Mean()
	}
}

// IntervalProb returns P[lo < X < hi], clamping the interval to (0, 1).
func (d Beta) IntervalProb(lo, hi float64) float64 {
	if hi <= lo {
		return 0
	}
	p := d.CDF(hi) - d.CDF(lo)
	if p < 0 {
		return 0
	}
	return p
}

// String implements fmt.Stringer.
func (d Beta) String() string { return fmt.Sprintf("Beta(%.4g, %.4g)", d.Alpha, d.Beta) }

// FitBetaMoments fits a Beta distribution to samples by the method of
// moments, exactly as §4.1 of the paper prescribes for learning the
// prior from a random sample of candidate-pair similarities:
//
//	α̂ = s̄ (s̄(1−s̄)/s̄_v − 1),  β̂ = (1−s̄)(s̄(1−s̄)/s̄_v − 1)
//
// where s̄ and s̄_v are the sample mean and (population) variance.
// If the sample is degenerate (fewer than 2 points, zero variance,
// mean outside (0,1), or moments implying non-positive shapes), it
// falls back to the uniform prior Beta(1, 1), which the paper notes is
// the natural uninformative choice.
func FitBetaMoments(samples []float64) Beta {
	uniform := Beta{Alpha: 1, Beta: 1}
	if len(samples) < 2 {
		return uniform
	}
	mean := 0.0
	for _, s := range samples {
		mean += s
	}
	mean /= float64(len(samples))
	if mean <= 0 || mean >= 1 {
		return uniform
	}
	variance := 0.0
	for _, s := range samples {
		d := s - mean
		variance += d * d
	}
	variance /= float64(len(samples))
	if variance <= 0 {
		return uniform
	}
	common := mean*(1-mean)/variance - 1
	if common <= 0 {
		return uniform
	}
	fit := Beta{Alpha: mean * common, Beta: (1 - mean) * common}
	if !fit.Valid() {
		return uniform
	}
	return fit
}
