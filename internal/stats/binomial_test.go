package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBinomialPMFSmallCases(t *testing.T) {
	// Binomial(4, 0.5): 1/16, 4/16, 6/16, 4/16, 1/16
	want := []float64{1.0 / 16, 4.0 / 16, 6.0 / 16, 4.0 / 16, 1.0 / 16}
	for m, w := range want {
		if got := BinomialPMF(m, 4, 0.5); !almostEqual(got, w, 1e-12) {
			t.Errorf("PMF(%d;4,0.5) = %v, want %v", m, got, w)
		}
	}
}

func TestBinomialPMFEdges(t *testing.T) {
	if got := BinomialPMF(-1, 5, 0.5); got != 0 {
		t.Errorf("PMF(-1) = %v", got)
	}
	if got := BinomialPMF(6, 5, 0.5); got != 0 {
		t.Errorf("PMF(m>n) = %v", got)
	}
	if got := BinomialPMF(0, 5, 0); got != 1 {
		t.Errorf("PMF(0;n,0) = %v, want 1", got)
	}
	if got := BinomialPMF(5, 5, 1); got != 1 {
		t.Errorf("PMF(n;n,1) = %v, want 1", got)
	}
	if got := BinomialPMF(3, 5, 0); got != 0 {
		t.Errorf("PMF(3;5,0) = %v, want 0", got)
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, n := range []int{1, 7, 64, 500} {
		for _, p := range []float64{0.01, 0.3, 0.5, 0.9} {
			sum := 0.0
			for m := 0; m <= n; m++ {
				sum += BinomialPMF(m, n, p)
			}
			if !almostEqual(sum, 1, 1e-9) {
				t.Errorf("PMF(n=%d,p=%v) sums to %v", n, p, sum)
			}
		}
	}
}

func TestBinomialCDFMatchesPMFSum(t *testing.T) {
	n, p := 40, 0.37
	cum := 0.0
	for m := 0; m < n; m++ {
		cum += BinomialPMF(m, n, p)
		if got := BinomialCDF(m, n, p); !almostEqual(got, cum, 1e-9) {
			t.Errorf("CDF(%d;%d,%v) = %v, want %v", m, n, p, got, cum)
		}
	}
	if got := BinomialCDF(n, n, p); got != 1 {
		t.Errorf("CDF(n) = %v, want 1", got)
	}
	if got := BinomialCDF(-1, n, p); got != 0 {
		t.Errorf("CDF(-1) = %v, want 0", got)
	}
}

func TestBinomialIntervalProb(t *testing.T) {
	n, p := 20, 0.5
	// Full range must have probability 1.
	if got := BinomialIntervalProb(0, n, n, p); !almostEqual(got, 1, 1e-12) {
		t.Errorf("full interval = %v", got)
	}
	if got := BinomialIntervalProb(5, 4, n, p); got != 0 {
		t.Errorf("empty interval = %v, want 0", got)
	}
	// Symmetric distribution: P[X <= 9] == P[X >= 11].
	left := BinomialIntervalProb(0, 9, n, p)
	right := BinomialIntervalProb(11, n, n, p)
	if !almostEqual(left, right, 1e-9) {
		t.Errorf("symmetry violated: %v vs %v", left, right)
	}
}

func TestConcentrationProbMonotoneInN(t *testing.T) {
	// More hashes always concentrate the MLE more (up to integer
	// rounding wiggle, so compare at well-separated n).
	s, delta := 0.5, 0.05
	p100 := ConcentrationProb(s, delta, 100)
	p400 := ConcentrationProb(s, delta, 400)
	p1600 := ConcentrationProb(s, delta, 1600)
	if !(p100 < p400 && p400 < p1600) {
		t.Errorf("not increasing: %v, %v, %v", p100, p400, p1600)
	}
}

func TestHashesNeededReproducesFigure1Shape(t *testing.T) {
	// The paper's headline numbers (δ=γ=0.05): a similarity of 0.5
	// needs about 350 hashes while 0.95 needs only about 16.
	nMid := HashesNeeded(0.5, 0.05, 0.05, 1, 4096)
	nHigh := HashesNeeded(0.95, 0.05, 0.05, 1, 4096)
	nLow := HashesNeeded(0.05, 0.05, 0.05, 1, 4096)
	if nMid < 250 || nMid > 450 {
		t.Errorf("hashes for s=0.5: %d, paper reports ~350", nMid)
	}
	if nHigh > 40 {
		t.Errorf("hashes for s=0.95: %d, paper reports ~16", nHigh)
	}
	if nLow > 40 {
		t.Errorf("hashes for s=0.05: %d, expected small", nLow)
	}
	if !(nMid > nHigh && nMid > nLow) {
		t.Errorf("expected peak near 0.5: mid=%d high=%d low=%d", nMid, nHigh, nLow)
	}
}

func TestHashesNeededRespectsStepAndCap(t *testing.T) {
	n := HashesNeeded(0.5, 0.05, 0.05, 32, 4096)
	if n%32 != 0 {
		t.Errorf("n=%d not a multiple of step", n)
	}
	if got := HashesNeeded(0.5, 0.001, 0.001, 1, 64); got != 64 {
		t.Errorf("cap not respected: %d", got)
	}
	if got := HashesNeeded(0.9, 0.05, 0.05, 0, 4096); got < 1 {
		t.Errorf("step<1 should act as 1, got %d", got)
	}
}

func TestBinomialCDFPropertyMonotone(t *testing.T) {
	f := func(nRaw, mRaw uint8, pRaw uint16) bool {
		n := int(nRaw%200) + 1
		m := int(mRaw) % n
		p := float64(pRaw%1001) / 1000
		c1 := BinomialCDF(m, n, p)
		c2 := BinomialCDF(m+1, n, p)
		return c1 >= -1e-12 && c2 <= 1+1e-12 && c2+1e-12 >= c1 && !math.IsNaN(c1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
