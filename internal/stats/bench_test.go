package stats

import "testing"

func BenchmarkLogGamma(b *testing.B) {
	for i := 0; i < b.N; i++ {
		LogGamma(float64(i%1000) + 0.5)
	}
}

func BenchmarkRegIncBeta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RegIncBeta(0.3+float64(i%40)/100, 33, 97)
	}
}

func BenchmarkBinomialCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		BinomialCDF(i%2000, 2048, 0.7)
	}
}

func BenchmarkFitBetaMoments(b *testing.B) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i%997)/1000 + 0.001
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FitBetaMoments(xs)
	}
}

func BenchmarkConcentrationProb(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ConcentrationProb(0.7, 0.05, 256)
	}
}
