package stats

import (
	"errors"
	"math"
)

// ErrDomain is returned (or wrapped) when a function is evaluated
// outside its domain.
var ErrDomain = errors.New("stats: argument out of domain")

// lanczos coefficients (g=7, n=9) for the log-gamma approximation.
var lanczos = [...]float64{
	0.99999999999980993,
	676.5203681218851,
	-1259.1392167224028,
	771.32342877765313,
	-176.61502916214059,
	12.507343278686905,
	-0.13857109526572012,
	9.9843695780195716e-6,
	1.5056327351493116e-7,
}

// LogGamma returns ln Γ(x) for x > 0 using the Lanczos approximation.
// Relative error is below 1e-13 across the domain used by the library.
func LogGamma(x float64) float64 {
	if x <= 0 {
		return math.NaN()
	}
	if x < 0.5 {
		// Reflection formula: Γ(x)Γ(1−x) = π / sin(πx).
		return math.Log(math.Pi/math.Sin(math.Pi*x)) - LogGamma(1-x)
	}
	x--
	a := lanczos[0]
	t := x + 7.5
	for i := 1; i < len(lanczos); i++ {
		a += lanczos[i] / (x + float64(i))
	}
	return 0.5*math.Log(2*math.Pi) + (x+0.5)*math.Log(t) - t + math.Log(a)
}

// LogBeta returns ln B(a, b) = ln Γ(a) + ln Γ(b) − ln Γ(a+b).
func LogBeta(a, b float64) float64 {
	return LogGamma(a) + LogGamma(b) - LogGamma(a+b)
}

// RegIncBeta returns the regularized incomplete beta function
// I_x(a, b) = B(x; a, b) / B(a, b), which is the CDF of a Beta(a, b)
// random variable evaluated at x. It uses the continued-fraction
// expansion evaluated with the modified Lentz algorithm, with the
// standard symmetry transformation for fast convergence.
//
// Domain: a > 0, b > 0, 0 <= x <= 1. Out-of-range x is clamped.
func RegIncBeta(x, a, b float64) float64 {
	if a <= 0 || b <= 0 || math.IsNaN(x) {
		return math.NaN()
	}
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	// ln of the prefactor x^a (1−x)^b / (a B(a,b))
	logPre := a*math.Log(x) + b*math.Log1p(-x) - math.Log(a) - LogBeta(a, b)
	if x < (a+1)/(a+b+2) {
		return math.Exp(logPre) * betaCF(x, a, b)
	}
	// Use the symmetry I_x(a,b) = 1 − I_{1−x}(b,a).
	logPreSym := b*math.Log1p(-x) + a*math.Log(x) - math.Log(b) - LogBeta(a, b)
	return 1 - math.Exp(logPreSym)*betaCF(1-x, b, a)
}

// betaCF evaluates the continued fraction for the incomplete beta
// function by the modified Lentz method (Numerical Recipes style).
func betaCF(x, a, b float64) float64 {
	const (
		maxIter = 500
		eps     = 1e-15
		tiny    = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		// even step
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		// odd step
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// IncBeta returns the (unregularized) incomplete beta function
// B(x; a, b) = ∫₀ˣ t^(a−1) (1−t)^(b−1) dt.
func IncBeta(x, a, b float64) float64 {
	return RegIncBeta(x, a, b) * math.Exp(LogBeta(a, b))
}

// LogChoose returns ln C(n, m) using log-gamma.
func LogChoose(n, m int) float64 {
	if m < 0 || m > n {
		return math.Inf(-1)
	}
	return LogGamma(float64(n)+1) - LogGamma(float64(m)+1) - LogGamma(float64(n-m)+1)
}
