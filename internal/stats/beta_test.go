package stats

import (
	"math"
	"testing"
	"testing/quick"

	"bayeslsh/internal/rng"
)

func TestBetaMoments(t *testing.T) {
	d := Beta{Alpha: 3, Beta: 7}
	if got, want := d.Mean(), 0.3; !almostEqual(got, want, 1e-12) {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	if got, want := d.Var(), 3.0*7/(100*11); !almostEqual(got, want, 1e-12) {
		t.Errorf("Var = %v, want %v", got, want)
	}
	if got, want := d.Mode(), 2.0/8; !almostEqual(got, want, 1e-12) {
		t.Errorf("Mode = %v, want %v", got, want)
	}
}

func TestBetaModeEdgeShapes(t *testing.T) {
	if got := (Beta{Alpha: 0.5, Beta: 3}).Mode(); got != 0 {
		t.Errorf("Mode(0.5,3) = %v, want 0", got)
	}
	if got := (Beta{Alpha: 3, Beta: 0.5}).Mode(); got != 1 {
		t.Errorf("Mode(3,0.5) = %v, want 1", got)
	}
	// Bimodal case falls back to the mean.
	if got := (Beta{Alpha: 0.5, Beta: 0.5}).Mode(); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("Mode(0.5,0.5) = %v, want 0.5", got)
	}
}

func TestBetaPDFIntegratesToOne(t *testing.T) {
	for _, d := range []Beta{{2, 3}, {1, 1}, {10, 2}, {5.5, 5.5}} {
		const n = 100001
		h := 1.0 / float64(n-1)
		sum := 0.0
		for i := 1; i < n-1; i++ {
			x := float64(i) * h
			w := 2.0
			if i%2 == 1 {
				w = 4
			}
			sum += w * d.PDF(x)
		}
		if got := sum * h / 3; !almostEqual(got, 1, 1e-4) {
			t.Errorf("PDF of %v integrates to %v, want 1", d, got)
		}
	}
}

func TestBetaCDFSFComplement(t *testing.T) {
	d := Beta{Alpha: 4, Beta: 9}
	for _, x := range []float64{0.05, 0.3, 0.5, 0.77, 0.95} {
		if got := d.CDF(x) + d.SF(x); !almostEqual(got, 1, 1e-12) {
			t.Errorf("CDF+SF at %v = %v, want 1", x, got)
		}
	}
}

func TestBetaIntervalProb(t *testing.T) {
	d := Beta{Alpha: 2, Beta: 2}
	if got := d.IntervalProb(0.4, 0.6); got <= 0 || got >= 1 {
		t.Errorf("IntervalProb(0.4,0.6) = %v, want in (0,1)", got)
	}
	if got := d.IntervalProb(0.6, 0.4); got != 0 {
		t.Errorf("inverted interval = %v, want 0", got)
	}
	if got := d.IntervalProb(-1, 2); !almostEqual(got, 1, 1e-12) {
		t.Errorf("full interval = %v, want 1", got)
	}
}

func TestFitBetaMomentsRecoversShape(t *testing.T) {
	// Draw Beta samples by inverse-CDF via bisection and check that the
	// method-of-moments fit recovers the generating parameters roughly.
	gen := Beta{Alpha: 2, Beta: 6}
	src := rng.New(42)
	sample := func() float64 {
		u := src.Float64()
		lo, hi := 0.0, 1.0
		for i := 0; i < 50; i++ {
			mid := (lo + hi) / 2
			if gen.CDF(mid) < u {
				lo = mid
			} else {
				hi = mid
			}
		}
		return (lo + hi) / 2
	}
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = sample()
	}
	fit := FitBetaMoments(xs)
	if math.Abs(fit.Alpha-gen.Alpha) > 0.3 || math.Abs(fit.Beta-gen.Beta) > 0.9 {
		t.Errorf("fit = %v, want close to %v", fit, gen)
	}
}

func TestFitBetaMomentsDegenerateFallsBackToUniform(t *testing.T) {
	uniform := Beta{Alpha: 1, Beta: 1}
	cases := [][]float64{
		nil,
		{0.5},
		{0.5, 0.5, 0.5}, // zero variance
		{0, 0, 0},       // mean at boundary
		{1, 1, 1},
		{0, 1, 0, 1}, // variance too large for a Beta (common <= 0)
	}
	for i, xs := range cases {
		if got := FitBetaMoments(xs); got != uniform {
			t.Errorf("case %d: fit = %v, want uniform", i, got)
		}
	}
}

func TestFitBetaMomentsMatchesPaperFormula(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.25, 0.4, 0.15, 0.3}
	mean, v := 0.0, 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		v += (x - mean) * (x - mean)
	}
	v /= float64(len(xs))
	common := mean*(1-mean)/v - 1
	want := Beta{Alpha: mean * common, Beta: (1 - mean) * common}
	got := FitBetaMoments(xs)
	if !almostEqual(got.Alpha, want.Alpha, 1e-12) || !almostEqual(got.Beta, want.Beta, 1e-12) {
		t.Errorf("fit = %v, want %v", got, want)
	}
}

func TestFitBetaMomentsPropertyValid(t *testing.T) {
	// Property: for any sample of values in (0,1), the fit is a valid
	// distribution (positive shapes) — possibly the uniform fallback.
	f := func(raw []uint16) bool {
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = (float64(r%998) + 1) / 1000 // in (0,1)
		}
		return FitBetaMoments(xs).Valid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
