package stats

import "math"

// BinomialPMF returns P[X = m] for X ~ Binomial(n, p), computed in log
// space for numerical stability at large n.
func BinomialPMF(m, n int, p float64) float64 {
	if m < 0 || m > n || n < 0 {
		return 0
	}
	if p <= 0 {
		if m == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if m == n {
			return 1
		}
		return 0
	}
	logp := LogChoose(n, m) + float64(m)*math.Log(p) + float64(n-m)*math.Log1p(-p)
	return math.Exp(logp)
}

// BinomialCDF returns P[X <= m] for X ~ Binomial(n, p) using the
// incomplete-beta identity P[X <= m] = I_{1−p}(n−m, m+1).
func BinomialCDF(m, n int, p float64) float64 {
	if m < 0 {
		return 0
	}
	if m >= n {
		return 1
	}
	return RegIncBeta(1-p, float64(n-m), float64(m+1))
}

// BinomialIntervalProb returns P[lo <= X <= hi] for X ~ Binomial(n, p).
func BinomialIntervalProb(lo, hi, n int, p float64) float64 {
	if hi < lo {
		return 0
	}
	pr := BinomialCDF(hi, n, p) - BinomialCDF(lo-1, n, p)
	if pr < 0 {
		return 0
	}
	return pr
}

// ConcentrationProb returns Pr[|ŝ_n − s| < δ] for the maximum-likelihood
// estimator ŝ_n = m/n of a similarity s estimated from n hash
// comparisons — the quantity §3.1 of the paper analyzes:
//
//	Pr[(s−δ)n <= m <= (s+δ)n] = Σ C(n,m) s^m (1−s)^(n−m)
//
// over integer m in the interval.
func ConcentrationProb(s, delta float64, n int) float64 {
	lo := int(math.Ceil((s - delta) * float64(n)))
	hi := int(math.Floor((s + delta) * float64(n)))
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	return BinomialIntervalProb(lo, hi, n, s)
}

// HashesNeeded returns the minimum number of hashes n such that the
// maximum-likelihood similarity estimate is within delta of the true
// similarity s with probability at least 1−gamma. This regenerates
// Figure 1 of the paper. step controls the granularity of the search
// (the paper compares hashes a word at a time; step=1 gives the exact
// minimum). maxN bounds the search.
func HashesNeeded(s, delta, gamma float64, step, maxN int) int {
	if step < 1 {
		step = 1
	}
	for n := step; n <= maxN; n += step {
		if ConcentrationProb(s, delta, n) >= 1-gamma {
			return n
		}
	}
	return maxN
}
