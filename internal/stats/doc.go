// Package stats implements the special functions and probability
// distributions that BayesLSH's inference relies on, from scratch on
// top of package math — there is no dependency on any external
// scientific library.
//
// # Contents
//
//   - Log-gamma (Lanczos approximation) and the regularized incomplete
//     beta function I_x(a, b), computed with the continued-fraction
//     expansion the paper prescribes. RegIncBeta is the workhorse of
//     every posterior tail probability in internal/core.
//   - The Beta distribution (CDF, survival function, interval
//     probability, mode), the conjugate family of the Jaccard
//     instantiation (§4.1), plus method-of-moments fitting of Beta
//     priors from sampled candidate similarities.
//   - Binomial tools used by the paper's Figure 1 analysis (how many
//     hashes until an estimate concentrates).
//
// All functions are pure and safe for concurrent use; accuracy is
// validated in the tests against high-precision reference values.
package stats
