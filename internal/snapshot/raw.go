package snapshot

import (
	"encoding/binary"
	"math"
	"unsafe"
)

// nativeLE reports whether the platform's native byte order matches
// the little-endian snapshot encoding, the precondition for serving
// numeric sections in place without a decode pass.
var nativeLE = binary.NativeEndian.Uint16([]byte{0x01, 0x02}) == 0x0201

// aligned reports whether b starts on an align-byte boundary. Mapped
// snapshot sections start on page boundaries, so fields the writer
// placed at aligned in-section offsets satisfy this by construction;
// the check guards against callers slicing at odd offsets.
func aligned(b []byte, align int) bool {
	if len(b) == 0 {
		return true
	}
	return uintptr(unsafe.Pointer(&b[0]))%uintptr(align) == 0
}

// ViewU64s returns b reinterpreted as little-endian uint64s —
// zero-copy (aliasing b) when the platform is little-endian and b is
// 8-aligned, a decoded copy otherwise. len(b) must be a multiple of 8;
// callers validate section lengths before slicing.
func ViewU64s(b []byte) []uint64 {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if nativeLE && aligned(b, 8) {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return out
}

// ViewU32s is ViewU64s for uint32 sections.
func ViewU32s(b []byte) []uint32 {
	n := len(b) / 4
	if n == 0 {
		return nil
	}
	if nativeLE && aligned(b, 4) {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return out
}

// ViewF64s is ViewU64s for float64 sections.
func ViewF64s(b []byte) []float64 {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if nativeLE && aligned(b, 8) {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}
