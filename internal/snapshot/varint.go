package snapshot

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the alignment unit of the disk-servable (v3) snapshot
// layout: every section starts on a PageSize boundary so a mapped
// section begins on an OS page and sequential scans never straddle a
// section edge mid-page.
const PageSize = 4096

// CRC returns the running CRC-32C of everything written so far, or 0
// for section sub-writers (which do not checksum). Unlike Sum it does
// not write the checksum into the stream, so a container format can
// store per-section checksums in its own directory.
func (w *Writer) CRC() uint32 {
	if w.crc == nil {
		return 0
	}
	return w.crc.Sum32()
}

// Pad writes zero bytes until the stream length is a multiple of
// align. align must be a positive power of two.
func (w *Writer) Pad(align int64) {
	if w.err != nil {
		return
	}
	if align <= 0 || align&(align-1) != 0 {
		w.err = fmt.Errorf("snapshot: pad alignment %d not a power of two", align)
		return
	}
	var zeros [256]byte
	for rem := (align - w.n%align) % align; rem > 0; {
		chunk := rem
		if chunk > int64(len(zeros)) {
			chunk = int64(len(zeros))
		}
		w.write(zeros[:chunk])
		if w.err != nil {
			return
		}
		rem -= chunk
	}
}

// Uvarint writes v in unsigned LEB128 (the encoding/binary varint
// format, at most 10 bytes).
func (w *Writer) Uvarint(v uint64) {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(b[:], v)
	w.write(b[:n])
}

// Uvarint reads an unsigned LEB128 varint, failing on truncation or
// 64-bit overflow.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("bad uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// UvarintAt decodes one unsigned LEB128 varint from the front of buf,
// returning the value and the number of bytes consumed. It is the
// raw-buffer twin of Reader.Uvarint for decoders that serve straight
// from a byte slice without Reader bookkeeping.
func UvarintAt(buf []byte) (uint64, int, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, 0, fmt.Errorf("%w: bad uvarint", ErrCorrupt)
	}
	return v, n, nil
}

// Zigzag maps a signed delta to an unsigned varint-friendly value
// (0, -1, 1, -2, ... -> 0, 1, 2, 3, ...).
func Zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }

// Unzigzag inverts Zigzag.
func Unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// AppendDeltaI32s appends the delta+varint encoding of a strictly
// ascending run of non-negative ids: a uvarint count, the first id as
// a uvarint, then each successive gap as a uvarint. This is the
// posting-run codec of the v3 snapshot layout; ascending runs of
// nearby ids compress to one or two bytes per id.
func AppendDeltaI32s(dst []byte, ids []int32) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ids)))
	prev := int32(0)
	for i, id := range ids {
		if i == 0 {
			dst = binary.AppendUvarint(dst, uint64(uint32(id)))
		} else {
			dst = binary.AppendUvarint(dst, uint64(uint32(id-prev)))
		}
		prev = id
	}
	return dst
}

// DecodeDeltaI32s decodes one AppendDeltaI32s run from the front of
// buf into dst (append semantics), returning the extended slice and
// the number of bytes consumed. Ids must be strictly ascending and
// less than maxID; the declared count is validated against the bytes
// actually present (every encoded id costs at least one byte) before
// any allocation, so hostile input cannot force an over-allocation.
func DecodeDeltaI32s(dst []int32, buf []byte, maxID int32) ([]int32, int, error) {
	n, off, err := UvarintAt(buf)
	if err != nil {
		return dst, 0, err
	}
	if n > uint64(len(buf)-off) {
		return dst, 0, fmt.Errorf("%w: run of %d ids in %d bytes", ErrCorrupt, n, len(buf)-off)
	}
	if n > uint64(maxID) {
		return dst, 0, fmt.Errorf("%w: run of %d ids exceeds id space %d", ErrCorrupt, n, maxID)
	}
	prev := int64(-1)
	for i := uint64(0); i < n; i++ {
		d, k, err := UvarintAt(buf[off:])
		if err != nil {
			return dst, 0, err
		}
		off += k
		var id int64
		if i == 0 {
			id = int64(d)
		} else {
			id = prev + int64(d)
		}
		if id <= prev || id >= int64(maxID) {
			return dst, 0, fmt.Errorf("%w: posting id %d after %d (id space %d)", ErrCorrupt, id, prev, maxID)
		}
		dst = append(dst, int32(id))
		prev = id
	}
	return dst, off, nil
}
