package snapshot

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func TestUvarintRoundTrip(t *testing.T) {
	vals := []uint64{0, 1, 127, 128, 300, 1 << 20, math.MaxUint64}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, v := range vals {
		w.Uvarint(v)
	}
	if w.Err() != nil {
		t.Fatal(w.Err())
	}
	r := NewReader(buf.Bytes())
	for _, want := range vals {
		if got := r.Uvarint(); got != want {
			t.Fatalf("Uvarint = %d, want %d", got, want)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestUvarintHostile(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"truncated": {0x80},
		"overflow":  {0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02},
	}
	for name, in := range cases {
		r := NewReader(in)
		r.Uvarint()
		if !errors.Is(r.Err(), ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, r.Err())
		}
		if _, _, err := UvarintAt(in); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: UvarintAt err = %v, want ErrCorrupt", name, err)
		}
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 63, -64, math.MaxInt64, math.MinInt64} {
		if got := Unzigzag(Zigzag(v)); got != v {
			t.Errorf("Unzigzag(Zigzag(%d)) = %d", v, got)
		}
	}
}

func TestDeltaI32sRoundTrip(t *testing.T) {
	for _, ids := range [][]int32{
		nil,
		{0},
		{7},
		{0, 1, 2, 3},
		{5, 100, 101, 4000},
	} {
		buf := AppendDeltaI32s(nil, ids)
		got, n, err := DecodeDeltaI32s(nil, buf, 5000)
		if err != nil {
			t.Fatalf("%v: %v", ids, err)
		}
		if n != len(buf) {
			t.Fatalf("%v: consumed %d of %d bytes", ids, n, len(buf))
		}
		if len(got) != len(ids) {
			t.Fatalf("%v: decoded %v", ids, got)
		}
		for i := range ids {
			if got[i] != ids[i] {
				t.Fatalf("%v: decoded %v", ids, got)
			}
		}
	}
}

func TestDeltaI32sHostile(t *testing.T) {
	cases := map[string][]byte{
		"truncated count":  {0x80},
		"huge count":       append(AppendDeltaI32s(nil, nil)[:0], 0xff, 0xff, 0xff, 0xff, 0x0f),
		"count over bytes": {10, 1, 1},
		"truncated ids":    AppendDeltaI32s(nil, []int32{1, 2, 3})[:2],
		"zero gap":         {2, 5, 0},
		"id past space":    AppendDeltaI32s(nil, []int32{1, 9999}),
		"first id huge":    {1, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
	}
	for name, in := range cases {
		if _, _, err := DecodeDeltaI32s(nil, in, 100); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

func TestPad(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Raw([]byte{1, 2, 3})
	w.Pad(8)
	if w.Err() != nil || w.Len() != 8 {
		t.Fatalf("pad to 8: len %d err %v", w.Len(), w.Err())
	}
	w.Pad(8) // already aligned: no-op
	if w.Len() != 8 {
		t.Fatalf("second pad moved to %d", w.Len())
	}
	w.Pad(7)
	if w.Err() == nil {
		t.Fatal("non-power-of-two alignment accepted")
	}
}
