package snapshot

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
)

// castagnoli is the CRC-32C polynomial table shared by Writer and
// Checksum; CRC-32C has hardware support on common platforms.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC-32C checksum of buf, the whole-file
// integrity check of the snapshot format.
func Checksum(buf []byte) uint32 { return crc32.Checksum(buf, castagnoli) }

// Writer streams snapshot bytes to an io.Writer, little-endian,
// keeping a running CRC-32C of everything written so the caller can
// finish the file with Sum. Errors are sticky: after the first write
// failure every method is a no-op and Err reports the failure, so
// encoding code can run straight-line without per-call checks.
type Writer struct {
	w   io.Writer
	crc hash.Hash32 // nil for section sub-writers
	n   int64
	err error
	b   [8]byte
}

// NewWriter starts a snapshot stream on w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, crc: crc32.New(castagnoli)}
}

// Err returns the first error encountered, if any.
func (w *Writer) Err() error { return w.err }

// Len returns the number of bytes written so far, including the
// checksum once Sum has run.
func (w *Writer) Len() int64 { return w.n }

func (w *Writer) write(p []byte) {
	if w.err != nil {
		return
	}
	n, err := w.w.Write(p)
	w.n += int64(n)
	if err == nil && n != len(p) {
		err = io.ErrShortWrite
	}
	w.err = err
	if w.err == nil && w.crc != nil {
		w.crc.Write(p)
	}
}

// Raw writes p verbatim (used for the file magic).
func (w *Writer) Raw(p []byte) { w.write(p) }

// U8 writes one byte.
func (w *Writer) U8(v uint8) { w.b[0] = v; w.write(w.b[:1]) }

// Bool writes a bool as one byte (0 or 1).
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U32 writes a little-endian uint32.
func (w *Writer) U32(v uint32) { binary.LittleEndian.PutUint32(w.b[:4], v); w.write(w.b[:4]) }

// U64 writes a little-endian uint64.
func (w *Writer) U64(v uint64) { binary.LittleEndian.PutUint64(w.b[:8], v); w.write(w.b[:8]) }

// I64 writes an int64 as its two's-complement uint64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// F64 writes a float64 as its IEEE-754 bits.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// U32s writes a length-prefixed []uint32.
func (w *Writer) U32s(vs []uint32) {
	w.U64(uint64(len(vs)))
	for _, v := range vs {
		w.U32(v)
	}
}

// U64s writes a length-prefixed []uint64.
func (w *Writer) U64s(vs []uint64) {
	w.U64(uint64(len(vs)))
	for _, v := range vs {
		w.U64(v)
	}
}

// I32s writes a length-prefixed []int32 (two's-complement uint32s).
func (w *Writer) I32s(vs []int32) {
	w.U64(uint64(len(vs)))
	for _, v := range vs {
		w.U32(uint32(v))
	}
}

// F64s writes a length-prefixed []float64.
func (w *Writer) F64s(vs []float64) {
	w.U64(uint64(len(vs)))
	for _, v := range vs {
		w.F64(v)
	}
}

// Section frames a tagged, length-prefixed section: build runs against
// a sub-writer whose bytes are buffered, then tag, payload length and
// payload are written to the stream. The frame lets a reader verify it
// is looking at the section it expects and attribute decode errors to
// a section by name.
func (w *Writer) Section(tag uint32, build func(sw *Writer)) {
	if w.err != nil {
		return
	}
	var buf bytes.Buffer
	sw := &Writer{w: &buf}
	build(sw)
	if sw.err != nil {
		w.err = fmt.Errorf("snapshot: section %d: %w", tag, sw.err)
		return
	}
	w.U32(tag)
	w.U64(uint64(buf.Len()))
	w.write(buf.Bytes())
}

// Sum appends the CRC-32C of everything written so far and returns the
// total byte count. The checksum itself is excluded from the sum, so a
// reader verifies by checksumming all bytes before the final four.
func (w *Writer) Sum() (int64, error) {
	if w.err != nil {
		return w.n, w.err
	}
	sum := w.crc.Sum32()
	w.crc = nil // the trailing checksum is not part of the sum
	w.U32(sum)
	return w.n, w.err
}
