package snapshot

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

// TestPrimitivesRoundTrip writes every primitive and reads it back.
func TestPrimitivesRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Raw([]byte("MAGI"))
	w.U8(7)
	w.Bool(true)
	w.Bool(false)
	w.U32(0xdeadbeef)
	w.U64(1 << 60)
	w.I64(-42)
	w.F64(math.Pi)
	w.U32s([]uint32{1, 2, 3})
	w.U64s(nil)
	w.I32s([]int32{-1, 0, 5})
	w.F64s([]float64{0.5, -0.25})
	n, err := w.Sum()
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("Sum reported %d bytes, wrote %d", n, buf.Len())
	}

	b := buf.Bytes()
	if Checksum(b[:len(b)-4]) != uint32(b[len(b)-4])|uint32(b[len(b)-3])<<8|
		uint32(b[len(b)-2])<<16|uint32(b[len(b)-1])<<24 {
		t.Fatal("trailing checksum does not match contents")
	}

	r := NewReader(b[:len(b)-4])
	if got := r.Raw(4); string(got) != "MAGI" {
		t.Fatalf("Raw = %q", got)
	}
	if r.U8() != 7 || !r.Bool() || r.Bool() {
		t.Fatal("U8/Bool mismatch")
	}
	if r.U32() != 0xdeadbeef || r.U64() != 1<<60 || r.I64() != -42 || r.F64() != math.Pi {
		t.Fatal("scalar mismatch")
	}
	if got := r.U32s(); len(got) != 3 || got[2] != 3 {
		t.Fatalf("U32s = %v", got)
	}
	if got := r.U64s(); got != nil {
		t.Fatalf("empty U64s = %v", got)
	}
	if got := r.I32s(); len(got) != 3 || got[0] != -1 {
		t.Fatalf("I32s = %v", got)
	}
	if got := r.F64s(); len(got) != 2 || got[1] != -0.25 {
		t.Fatalf("F64s = %v", got)
	}
	if r.Err() != nil || r.Remaining() != 0 {
		t.Fatalf("err %v, remaining %d", r.Err(), r.Remaining())
	}
}

// TestSectionFraming checks tag validation and payload limits.
func TestSectionFraming(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Section(1, func(sw *Writer) { sw.U32(11) })
	w.Section(2, func(sw *Writer) { sw.U64s([]uint64{9}) })
	if _, err := w.Sum(); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()[:buf.Len()-4]

	r := NewReader(b)
	s1 := r.Section(1)
	if s1.U32() != 11 {
		t.Fatal("section 1 payload")
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := r.Section(2)
	if got := s2.U64s(); len(got) != 1 || got[0] != 9 {
		t.Fatalf("section 2 payload %v", got)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("remaining %d", r.Remaining())
	}

	// Wrong expected tag.
	r = NewReader(b)
	bad := r.Section(9)
	if err := bad.Close(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("tag mismatch: %v", err)
	}

	// Partially consumed section payload is flagged by Close.
	r = NewReader(b)
	s1 = r.Section(1)
	if err := s1.Close(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unconsumed payload: %v", err)
	}
}

// TestReaderHostileLengths ensures oversized length prefixes fail
// before allocation instead of over-allocating.
func TestReaderHostileLengths(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U64(math.MaxUint64) // length prefix far beyond the data
	w.Sum()
	r := NewReader(buf.Bytes())
	if got := r.U64s(); got != nil {
		t.Fatalf("hostile length produced %v", got)
	}
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("err = %v", r.Err())
	}

	// Truncation mid-scalar.
	r = NewReader([]byte{1, 2})
	if r.U32(); !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("truncated scalar: %v", r.Err())
	}

	// A bad bool byte is rejected.
	r = NewReader([]byte{3})
	if r.Bool(); !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("bad bool: %v", r.Err())
	}
}

// TestStickyErrors verifies that reads after a failure stay inert and
// Failf preserves the first error.
func TestStickyErrors(t *testing.T) {
	r := NewReader([]byte{1})
	r.U64() // fails: only one byte
	first := r.Err()
	if first == nil {
		t.Fatal("expected error")
	}
	if r.U32() != 0 || r.U8() != 0 {
		t.Fatal("reads after failure returned data")
	}
	if err := Failf(r, "later"); !errors.Is(err, first) {
		t.Fatalf("Failf replaced the first error: %v", err)
	}
}
