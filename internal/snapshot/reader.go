package snapshot

import (
	"errors"
	"fmt"
	"math"
)

// ErrCorrupt is the base error of every structural decode failure:
// truncated input, a length prefix larger than the bytes present, or
// a section tag other than the expected one. Callers wrap it with
// context; errors.Is(err, ErrCorrupt) identifies decode failures.
var ErrCorrupt = errors.New("corrupt snapshot")

// Reader decodes snapshot bytes from an in-memory buffer. Working on a
// buffer (rather than an io.Reader) makes hostile input safe by
// construction: every length prefix is validated against the bytes
// actually remaining before any allocation, so a corrupt snapshot can
// fail to decode but cannot cause huge allocations or panics. Errors
// are sticky, mirroring Writer; after the first failure every method
// returns zero values and Err reports the failure.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader decodes from buf. The caller is expected to have verified
// the file checksum first (see Checksum).
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of undecoded bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > r.Remaining() {
		r.fail("need %d bytes, have %d", n, r.Remaining())
		return nil
	}
	p := r.buf[r.off : r.off+n]
	r.off += n
	return p
}

// Raw reads n verbatim bytes (used for the file magic).
func (r *Reader) Raw(n int) []byte { return r.take(n) }

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

// Bool reads a one-byte bool, rejecting values other than 0 and 1.
func (r *Reader) Bool() bool {
	switch v := r.U8(); v {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("bad bool byte %d", v)
		return false
	}
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16 | uint32(p[3])<<24
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return uint64(p[0]) | uint64(p[1])<<8 | uint64(p[2])<<16 | uint64(p[3])<<24 |
		uint64(p[4])<<32 | uint64(p[5])<<40 | uint64(p[6])<<48 | uint64(p[7])<<56
}

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Len reads a length prefix and validates that at least elemSize bytes
// per element remain, so the caller may allocate length-sized slices
// without an over-allocation risk on corrupt input.
func (r *Reader) Len(elemSize int) int {
	n := r.U64()
	if r.err != nil {
		return 0
	}
	if n > uint64(r.Remaining())/uint64(elemSize) {
		r.fail("length %d exceeds remaining %d bytes", n, r.Remaining())
		return 0
	}
	return int(n)
}

// U32s reads a length-prefixed []uint32. A zero-length slice decodes
// as nil.
func (r *Reader) U32s() []uint32 {
	n := r.Len(4)
	if n == 0 {
		return nil
	}
	vs := make([]uint32, n)
	for i := range vs {
		vs[i] = r.U32()
	}
	return vs
}

// U64s reads a length-prefixed []uint64. A zero-length slice decodes
// as nil.
func (r *Reader) U64s() []uint64 {
	n := r.Len(8)
	if n == 0 {
		return nil
	}
	vs := make([]uint64, n)
	for i := range vs {
		vs[i] = r.U64()
	}
	return vs
}

// I32s reads a length-prefixed []int32. A zero-length slice decodes as
// nil.
func (r *Reader) I32s() []int32 {
	n := r.Len(4)
	if n == 0 {
		return nil
	}
	vs := make([]int32, n)
	for i := range vs {
		vs[i] = int32(r.U32())
	}
	return vs
}

// F64s reads a length-prefixed []float64. A zero-length slice decodes
// as nil.
func (r *Reader) F64s() []float64 {
	n := r.Len(8)
	if n == 0 {
		return nil
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = r.F64()
	}
	return vs
}

// Section opens the next section, which must carry the given tag, and
// returns a sub-reader limited to its payload. The parent reader
// advances past the whole section; Close on the sub-reader reports
// whether the payload was fully and cleanly consumed.
func (r *Reader) Section(tag uint32) *Reader {
	got := r.U32()
	if r.err == nil && got != tag {
		r.fail("section tag %d, expected %d", got, tag)
	}
	n := r.Len(1)
	return &Reader{buf: r.take(n), err: r.err}
}

// Close verifies a section sub-reader decoded without error and left
// no trailing bytes.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if r.Remaining() != 0 {
		r.fail("%d trailing bytes in section", r.Remaining())
	}
	return r.err
}

// Failf records a corruption error on r (unless one is already set)
// and returns r's error — the hook decoders use to report semantic
// validation failures with the same sticky-error discipline as
// structural ones.
func Failf(r *Reader, format string, args ...any) error {
	r.fail(format, args...)
	return r.Err()
}
