// Package snapshot implements the low-level binary codec of index
// snapshots: a little-endian, length-prefixed format with tagged
// sections and a whole-file CRC-32C checksum, written by a streaming
// Writer and decoded by a bounds-checked in-memory Reader.
//
// The package owns only the encoding primitives (fixed-width integers,
// floats, length-prefixed slices, section frames); what a snapshot
// contains is decided by its users — each storage layer serializes its
// own state with a WriteSnapshot/ReadSnapshot pair built from these
// primitives, and the root bayeslsh package composes the sections and
// owns the magic, version and checksum policy. No reflection and no
// gob: every byte is written and read by explicit code, so the format
// is stable across Go versions and releases, and decoding hostile
// input can fail but never panic or over-allocate (every length is
// validated against the bytes actually present before use).
package snapshot
