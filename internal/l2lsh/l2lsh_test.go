package l2lsh

import (
	"math"
	"testing"

	"bayeslsh/internal/rng"
	"bayeslsh/internal/vector"
)

func densePoint(src *rng.Source, dim int, center float64) vector.Vector {
	var es []vector.Entry
	for i := 0; i < dim; i++ {
		es = append(es, vector.Entry{Ind: uint32(i), Val: center + src.NormFloat64()})
	}
	return vector.New(es)
}

func TestCollisionProbShape(t *testing.T) {
	w := 4.0
	if got := CollisionProb(0, w); got != 1 {
		t.Errorf("p(0) = %v, want 1", got)
	}
	prev := 1.0
	for d := 0.5; d < 50; d *= 1.5 {
		p := CollisionProb(d, w)
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("p(%v) = %v out of range", d, p)
		}
		if p > prev+1e-12 {
			t.Fatalf("p not monotone decreasing at d=%v: %v > %v", d, p, prev)
		}
		prev = p
	}
	if p := CollisionProb(1000, w); p > 0.01 {
		t.Errorf("p(1000) = %v, want ~0", p)
	}
}

func TestEmpiricalCollisionRateMatchesFormula(t *testing.T) {
	// The fraction of matching hashes between two points must converge
	// to CollisionProb(distance, w).
	const dim, n = 16, 8192
	w := 4.0
	fam := NewFamily(dim, n, w, 7)
	src := rng.New(9)
	a := densePoint(src, dim, 0)
	for _, scale := range []float64{0.5, 2, 6} {
		// b = a + perturbation of norm ~scale.
		var es []vector.Entry
		for i := 0; i < dim; i++ {
			es = append(es, vector.Entry{Ind: uint32(i), Val: a.Val[i] + scale*src.NormFloat64()/math.Sqrt(dim)})
		}
		b := vector.New(es)
		d := Distance(a, b)
		want := CollisionProb(d, w)
		got := float64(Matches(fam.Signature(a), fam.Signature(b), 0, n)) / n
		tol := 4*math.Sqrt(want*(1-want)/n) + 0.01
		if math.Abs(got-want) > tol {
			t.Errorf("d=%v: collision rate %v, formula %v (tol %v)", d, got, want, tol)
		}
	}
}

func TestDistanceAgainstDense(t *testing.T) {
	a := vector.New([]vector.Entry{{Ind: 0, Val: 1}, {Ind: 2, Val: 2}})
	b := vector.New([]vector.Entry{{Ind: 0, Val: 4}, {Ind: 1, Val: 3}})
	// diff = (-3, -3, 2) → norm = sqrt(9+9+4)
	want := math.Sqrt(22)
	if got := Distance(a, b); math.Abs(got-want) > 1e-12 {
		t.Errorf("Distance = %v, want %v", got, want)
	}
	if got := Distance(a, a); got != 0 {
		t.Errorf("self distance = %v", got)
	}
	if got := Distance(a, vector.Vector{}); math.Abs(got-a.Norm()) > 1e-12 {
		t.Errorf("distance to origin = %v, want %v", got, a.Norm())
	}
}

func TestNewFamilyAndLiteValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewFamily(0, 8, 1, 1) },
		func() { NewFamily(8, 0, 1, 1) },
		func() { NewFamily(8, 8, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad NewFamily args did not panic")
				}
			}()
			f()
		}()
	}
	fam := NewFamily(4, 64, 4, 1)
	sigs := [][]int32{make([]int32, 64)}
	bad := []LiteParams{
		{Radius: 0, Epsilon: 0.03},
		{Radius: 1, Epsilon: 0},
		{Radius: 1, Epsilon: 1},
		{Radius: 1, Epsilon: 0.03, K: -1},
		{Radius: 1, Epsilon: 0.03, MaxHashes: 128},
		{Radius: 1, Epsilon: 0.03, K: 64, MaxHashes: 32},
	}
	for i, p := range bad {
		if _, err := NewLite(fam, sigs, p); err == nil {
			t.Errorf("case %d: bad params accepted", i)
		}
	}
	if _, err := NewLite(fam, nil, LiteParams{Radius: 1, Epsilon: 0.03}); err == nil {
		t.Error("empty signatures accepted")
	}
	if _, err := NewLite(fam, [][]int32{make([]int32, 8)}, LiteParams{Radius: 1, Epsilon: 0.03}); err == nil {
		t.Error("short signature accepted")
	}
}

func TestLiteVerifyFindsNeighborsAndPrunesFar(t *testing.T) {
	// Clustered points: pairs within a cluster are close (d ~ 1-3),
	// across clusters far (d ~ 20+). BayesLSH-Lite must prune the far
	// pairs from hash evidence alone and keep the close ones.
	const dim = 16
	src := rng.New(21)
	c := &vector.Collection{Dim: dim}
	const perCluster = 20
	for cluster := 0; cluster < 3; cluster++ {
		center := float64(cluster) * 15
		for i := 0; i < perCluster; i++ {
			c.Vecs = append(c.Vecs, densePoint(src, dim, center))
		}
	}
	n := len(c.Vecs)
	radius := 8.0
	fam := NewFamily(dim, 256, radius/2, 33)
	sigs := fam.SignatureAll(c)
	lite, err := NewLite(fam, sigs, LiteParams{Radius: radius, Epsilon: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	var cands [][2]int32
	for i := int32(0); i < int32(n); i++ {
		for j := i + 1; j < int32(n); j++ {
			cands = append(cands, [2]int32{i, j})
		}
	}
	out, pruned, exact := lite.Verify(c, cands)

	// Ground truth by brute force.
	truth := map[[2]int32]bool{}
	for i := int32(0); i < int32(n); i++ {
		for j := i + 1; j < int32(n); j++ {
			if Distance(c.Vecs[i], c.Vecs[j]) <= radius {
				truth[[2]int32{i, j}] = true
			}
		}
	}
	if len(truth) < 100 {
		t.Fatalf("test geometry wrong: only %d true neighbor pairs", len(truth))
	}
	got := map[[2]int32]bool{}
	for _, p := range out {
		got[[2]int32{p.A, p.B}] = true
		if p.Dist > radius {
			t.Fatalf("emitted pair beyond radius: %+v", p)
		}
	}
	hit := 0
	for k := range truth {
		if got[k] {
			hit++
		}
	}
	recall := float64(hit) / float64(len(truth))
	if recall < 0.95 {
		t.Errorf("Euclidean Lite recall = %v", recall)
	}
	// The far (cross-cluster) pairs dominate the candidate list and
	// must be overwhelmingly pruned without exact distance work.
	if pruned < len(cands)/2 {
		t.Errorf("pruned only %d of %d candidates", pruned, len(cands))
	}
	if exact+pruned != len(cands) {
		t.Errorf("accounting broken: exact %d + pruned %d != %d", exact, pruned, len(cands))
	}
}

func TestMatchesPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Matches did not panic")
		}
	}()
	Matches([]int32{1}, []int32{1, 2}, 0, 2)
}
