// Package l2lsh implements the p-stable locality-sensitive hash
// family for Euclidean distance (Datar, Immorlica, Indyk, Mirrokni,
// SoCG 2004) and the BayesLSH-Lite analogue for distance-threshold
// search that §6 of the BayesLSH paper proposes as future work.
//
// Each hash function is h(x) = ⌊(a·x + b) / w⌋ with a a random
// Gaussian vector, b uniform in [0, w), and w the bucket width. For
// two points at Euclidean distance d, the collision probability is
//
//	p(d) = 2Φ(w/d) − 1 − (2d / (√(2π) w)) (1 − e^(−w²/2d²))
//
// which decreases monotonically in d. A pair is a neighbor candidate
// when d <= R for a user radius R; since p is monotone, the posterior
// probability Pr[d <= R | m of n hashes matched] equals
// Pr[p >= p(R) | M(m, n)], an upper tail of the Beta(m+1, n−m+1)
// posterior over the collision probability — the same machinery as
// the similarity instantiations, with the transformed threshold p(R).
package l2lsh

import (
	"fmt"
	"math"

	"bayeslsh/internal/rng"
	"bayeslsh/internal/stats"
	"bayeslsh/internal/vector"
)

// CollisionProb returns p(d) for bucket width w: the probability that
// two points at Euclidean distance d receive equal hash values. It is
// 1 at d = 0 and decreases monotonically to 0.
func CollisionProb(d, w float64) float64 {
	if d <= 0 {
		return 1
	}
	c := w / d
	// Φ(c) via erf.
	phi := 0.5 * (1 + math.Erf(c/math.Sqrt2))
	return 2*phi - 1 - 2/(math.Sqrt(2*math.Pi)*c)*(1-math.Exp(-c*c/2))
}

// Family is a set of p-stable hash functions over a fixed feature
// space. Projection vectors use the same deterministic per-feature
// Gaussian streams as the cosine family.
type Family struct {
	dim, n int
	w      float64
	// proj[feature] holds the feature's coefficient for every hash.
	proj [][]float64
	// offsets holds the uniform shift b of every hash.
	offsets []float64
}

// NewFamily creates n hash functions of bucket width w over dim
// features, derived deterministically from seed.
func NewFamily(dim, n int, w float64, seed uint64) *Family {
	if dim <= 0 || n <= 0 || w <= 0 {
		panic("l2lsh: NewFamily needs positive dim, n, w")
	}
	f := &Family{dim: dim, n: n, w: w,
		proj:    make([][]float64, dim),
		offsets: make([]float64, n),
	}
	for feat := 0; feat < dim; feat++ {
		src := rng.New(rng.Mix64(seed ^ uint64(feat+1)))
		row := make([]float64, n)
		for i := range row {
			row[i] = src.NormFloat64()
		}
		f.proj[feat] = row
	}
	src := rng.New(rng.Mix64(seed ^ 0xabcdef))
	for i := range f.offsets {
		f.offsets[i] = src.Float64() * w
	}
	return f
}

// Size returns the number of hash functions.
func (f *Family) Size() int { return f.n }

// Width returns the bucket width w.
func (f *Family) Width() float64 { return f.w }

// Signature returns the n bucket ids of v.
func (f *Family) Signature(v vector.Vector) []int32 {
	acc := make([]float64, f.n)
	for i, ind := range v.Ind {
		wgt := v.Val[i]
		row := f.proj[ind]
		for j, g := range row {
			acc[j] += wgt * g
		}
	}
	sig := make([]int32, f.n)
	for j, a := range acc {
		sig[j] = int32(math.Floor((a + f.offsets[j]) / f.w))
	}
	return sig
}

// SignatureAll computes signatures for every vector.
func (f *Family) SignatureAll(c *vector.Collection) [][]int32 {
	sigs := make([][]int32, len(c.Vecs))
	for i, v := range c.Vecs {
		sigs[i] = f.Signature(v)
	}
	return sigs
}

// Matches counts agreeing positions in the half-open range [from, to).
func Matches(a, b []int32, from, to int) int {
	if from < 0 || to > len(a) || to > len(b) || from > to {
		panic("l2lsh: Matches range out of bounds")
	}
	n := 0
	for i := from; i < to; i++ {
		if a[i] == b[i] {
			n++
		}
	}
	return n
}

// LiteParams configures Euclidean BayesLSH-Lite verification.
type LiteParams struct {
	// Radius is the distance threshold R: pairs with d <= R are
	// neighbors.
	Radius float64
	// Epsilon is the recall parameter ε: pairs whose posterior
	// probability of being within Radius falls below ε are pruned.
	Epsilon float64
	// K is the number of hashes compared per round (default 16).
	K int
	// MaxHashes caps the hashes examined before exact verification
	// (default: the full signature).
	MaxHashes int
}

// Pair identifies two vectors by index with their exact distance.
type Pair struct {
	A, B int32
	Dist float64
}

// Lite is the BayesLSH-Lite analogue for Euclidean distance: it
// prunes candidate pairs whose posterior probability of lying within
// the radius is below ε, then verifies survivors with exact distance
// computations.
type Lite struct {
	fam    *Family
	sigs   [][]int32
	params LiteParams
	pr     float64 // collision probability at the radius
	ns     []int
	minM   []int
}

// NewLite builds a verifier over precomputed p-stable signatures.
func NewLite(fam *Family, sigs [][]int32, p LiteParams) (*Lite, error) {
	if len(sigs) == 0 {
		return nil, fmt.Errorf("l2lsh: no signatures")
	}
	if p.Radius <= 0 {
		return nil, fmt.Errorf("l2lsh: radius %v must be positive", p.Radius)
	}
	if p.Epsilon <= 0 || p.Epsilon >= 1 {
		return nil, fmt.Errorf("l2lsh: epsilon %v outside (0, 1)", p.Epsilon)
	}
	if p.K == 0 {
		p.K = 16
	}
	if p.K < 0 {
		return nil, fmt.Errorf("l2lsh: K %d must be positive", p.K)
	}
	if p.MaxHashes == 0 {
		p.MaxHashes = fam.Size()
	}
	if p.MaxHashes > fam.Size() {
		return nil, fmt.Errorf("l2lsh: MaxHashes %d exceeds family size %d", p.MaxHashes, fam.Size())
	}
	p.MaxHashes -= p.MaxHashes % p.K
	if p.MaxHashes < p.K {
		return nil, fmt.Errorf("l2lsh: MaxHashes smaller than one round of K=%d", p.K)
	}
	for i, s := range sigs {
		if len(s) < p.MaxHashes {
			return nil, fmt.Errorf("l2lsh: signature %d has %d hashes, need %d", i, len(s), p.MaxHashes)
		}
	}
	v := &Lite{fam: fam, sigs: sigs, params: p, pr: CollisionProb(p.Radius, fam.Width())}
	for n := p.K; n <= p.MaxHashes; n += p.K {
		v.ns = append(v.ns, n)
	}
	v.minM = make([]int, len(v.ns))
	for i, n := range v.ns {
		lo, hi := 0, n+1
		for lo < hi {
			mid := (lo + hi) / 2
			if v.probWithinRadius(mid, n) >= p.Epsilon {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		v.minM[i] = lo
	}
	return v, nil
}

// probWithinRadius computes Pr[d <= R | M(m, n)]: with a uniform prior
// on the per-hash collision probability p ∈ [0, 1], the posterior is
// Beta(m+1, n−m+1), and d <= R iff p >= p(R) by monotonicity.
func (v *Lite) probWithinRadius(m, n int) float64 {
	return stats.RegIncBeta(1-v.pr, float64(n-m+1), float64(m+1))
}

// Verify prunes the candidate index pairs and returns the surviving
// pairs with exact Euclidean distances d <= Radius, plus counts of
// pruned pairs and exact distance computations.
func (v *Lite) Verify(c *vector.Collection, cands [][2]int32) (out []Pair, pruned, exact int) {
	k := v.params.K
	for _, cand := range cands {
		a, b := v.sigs[cand[0]], v.sigs[cand[1]]
		m := 0
		dead := false
		for round, n := range v.ns {
			m += Matches(a, b, n-k, n)
			if m < v.minM[round] {
				dead = true
				pruned++
				break
			}
		}
		if dead {
			continue
		}
		exact++
		if d := Distance(c.Vecs[cand[0]], c.Vecs[cand[1]]); d <= v.params.Radius {
			out = append(out, Pair{A: cand[0], B: cand[1], Dist: d})
		}
	}
	return out, pruned, exact
}

// Distance returns the Euclidean distance between two sparse vectors.
func Distance(a, b vector.Vector) float64 {
	i, j := 0, 0
	sum := 0.0
	for i < len(a.Ind) && j < len(b.Ind) {
		switch {
		case a.Ind[i] == b.Ind[j]:
			d := a.Val[i] - b.Val[j]
			sum += d * d
			i++
			j++
		case a.Ind[i] < b.Ind[j]:
			sum += a.Val[i] * a.Val[i]
			i++
		default:
			sum += b.Val[j] * b.Val[j]
			j++
		}
	}
	for ; i < len(a.Ind); i++ {
		sum += a.Val[i] * a.Val[i]
	}
	for ; j < len(b.Ind); j++ {
		sum += b.Val[j] * b.Val[j]
	}
	return math.Sqrt(sum)
}
