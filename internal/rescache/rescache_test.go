package rescache_test

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"bayeslsh"
	"bayeslsh/internal/harness"
	"bayeslsh/internal/rescache"
)

// The cache correctness suite: hit ≡ miss byte-equality over the shared
// measure × pipeline matrix, invalidation on every mutation path,
// bounded entries under eviction pressure, and goroutine accounting.
// Everything runs under -race in CI.

func newCached(tb testing.TB, m bayeslsh.Measure, alg bayeslsh.Algorithm, t float64, n, capacity int) (*rescache.Cache, *bayeslsh.LiveIndex, []map[uint32]float64) {
	tb.Helper()
	ds, maps := harness.Corpus(tb, m, n)
	li := harness.NewLive(tb, ds, m, alg, t)
	return rescache.New(li, capacity), li, maps
}

// TestCacheHitEqualsMiss proves, for every measure × pipeline cell,
// that a cache hit is bit-identical to the miss that filled it and to
// the direct (uncached) call — for both threshold queries and top-k.
func TestCacheHitEqualsMiss(t *testing.T) {
	ctx := context.Background()
	for _, cell := range harness.Cells() {
		for _, alg := range harness.Pipelines(cell.Measure) {
			t.Run(fmt.Sprintf("%v/%v", cell.Measure, alg), func(t *testing.T) {
				c, li, maps := newCached(t, cell.Measure, alg, cell.Threshold, 36, 64)
				for i := 0; i < 6; i++ {
					q := bayeslsh.NewVec(maps[i])
					direct, err := li.QueryContext(ctx, q, bayeslsh.QueryOptions{})
					if err != nil {
						t.Fatal(err)
					}
					miss, err := c.QueryContext(ctx, q, bayeslsh.QueryOptions{})
					if err != nil {
						t.Fatal(err)
					}
					hit, err := c.QueryContext(ctx, q, bayeslsh.QueryOptions{})
					if err != nil {
						t.Fatal(err)
					}
					if !harness.MatchesEqual(direct, miss) || !harness.MatchesEqual(miss, hit) {
						t.Fatalf("query %d: direct/miss/hit diverge: %v / %v / %v", i, direct, miss, hit)
					}

					dk, err := li.TopKContext(ctx, q, 3)
					if err != nil {
						t.Fatal(err)
					}
					mk, err := c.TopKContext(ctx, q, 3)
					if err != nil {
						t.Fatal(err)
					}
					hk, err := c.TopKContext(ctx, q, 3)
					if err != nil {
						t.Fatal(err)
					}
					if !harness.MatchesEqual(dk, mk) || !harness.MatchesEqual(mk, hk) {
						t.Fatalf("topk %d: direct/miss/hit diverge: %v / %v / %v", i, dk, mk, hk)
					}
				}
				ct := c.Counters()
				if ct.Hits != 12 || ct.Misses != 12 {
					t.Fatalf("counters: want 12 hits / 12 misses, got %+v", ct)
				}
			})
		}
	}
}

// TestCacheHitIsPrivate proves a caller mutating a returned slice
// cannot corrupt later hits.
func TestCacheHitIsPrivate(t *testing.T) {
	ctx := context.Background()
	c, li, maps := newCached(t, bayeslsh.Cosine, bayeslsh.LSH, 0.6, 24, 16)
	q := bayeslsh.NewVec(maps[0])
	first, err := c.QueryContext(ctx, q, bayeslsh.QueryOptions{})
	if err != nil || len(first) == 0 {
		t.Fatalf("seed query: %v matches, err %v", len(first), err)
	}
	first[0] = bayeslsh.Match{ID: -1, Sim: -1} // vandalize the returned copy
	again, err := c.QueryContext(ctx, q, bayeslsh.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := li.QueryContext(ctx, q, bayeslsh.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !harness.MatchesEqual(again, direct) {
		t.Fatalf("mutated hit leaked into the cache: %v vs %v", again, direct)
	}
}

// TestCacheInvalidation drives every mutation path — Add, Delete,
// Compact, Swap — and proves the post-mutation cached answer equals the
// direct answer (no stale serving).
func TestCacheInvalidation(t *testing.T) {
	ctx := context.Background()
	c, li, maps := newCached(t, bayeslsh.Cosine, bayeslsh.LSH, 0.6, 24, 64)
	q := bayeslsh.NewVec(maps[0])
	check := func(step string) {
		t.Helper()
		direct, err := li.QueryContext(ctx, q, bayeslsh.QueryOptions{})
		if err != nil {
			t.Fatalf("%s: direct: %v", step, err)
		}
		for pass := 0; pass < 2; pass++ { // miss, then hit
			got, err := c.QueryContext(ctx, q, bayeslsh.QueryOptions{})
			if err != nil {
				t.Fatalf("%s: cached: %v", step, err)
			}
			if !harness.MatchesEqual(direct, got) {
				t.Fatalf("%s pass %d: cached %v, direct %v", step, pass, got, direct)
			}
		}
	}

	check("baseline")

	// Add a duplicate of the query vector: it must appear in the fresh
	// result (similarity 1), so stale serving is detectable.
	id, err := c.Add(q)
	if err != nil {
		t.Fatal(err)
	}
	check("after add")

	if !c.Delete(id) {
		t.Fatal("delete of a live id returned false")
	}
	check("after delete")
	if c.Delete(id) {
		t.Fatal("double delete returned true")
	}

	if _, err := c.Add(q); err != nil { // leave a delta for the merge
		t.Fatal(err)
	}
	if err := c.Compact(); err != nil {
		t.Fatal(err)
	}
	check("after compact")

	ct := c.Counters()
	if ct.Invalidations != 4 { // add, delete, add, compact
		t.Fatalf("invalidations: want 4, got %+v", ct)
	}

	// Swap: the /v1/load hot-swap path. The replacement serves a
	// different corpus, so stale entries would answer from the wrong
	// index entirely.
	ds2, maps2 := harness.Corpus(t, bayeslsh.Cosine, 12)
	li2 := harness.NewLive(t, ds2, bayeslsh.Cosine, bayeslsh.LSH, 0.6)
	old := c.Swap(li2)
	if old != rescache.Backend(li) {
		t.Fatal("Swap returned the wrong retired backend")
	}
	q2 := bayeslsh.NewVec(maps2[0])
	direct2, err := li2.QueryContext(ctx, q2, bayeslsh.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got2, err := c.QueryContext(ctx, q2, bayeslsh.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !harness.MatchesEqual(direct2, got2) {
		t.Fatalf("after swap: cached %v, direct %v", got2, direct2)
	}
	if n := c.Len(); n != li2.Len() {
		t.Fatalf("after swap Len %d, want %d", n, li2.Len())
	}
}

// TestCacheEviction proves the entry count never exceeds capacity and
// that eviction (not invalidation) absorbs the pressure — and that
// evicted entries recompute correctly.
func TestCacheEviction(t *testing.T) {
	ctx := context.Background()
	const capacity = 8
	c, li, maps := newCached(t, bayeslsh.Cosine, bayeslsh.LSH, 0.6, 36, capacity)
	for round := 0; round < 2; round++ {
		for i := range maps {
			q := bayeslsh.NewVec(maps[i])
			got, err := c.QueryContext(ctx, q, bayeslsh.QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			direct, err := li.QueryContext(ctx, q, bayeslsh.QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !harness.MatchesEqual(got, direct) {
				t.Fatalf("round %d query %d diverged under eviction", round, i)
			}
			if n := c.Counters().Entries; n > capacity {
				t.Fatalf("entries %d exceed capacity %d", n, capacity)
			}
		}
	}
	ct := c.Counters()
	if ct.Evictions == 0 {
		t.Fatalf("no evictions under pressure: %+v", ct)
	}
	if ct.Invalidations != 0 {
		t.Fatalf("evictions leaked into invalidations: %+v", ct)
	}
}

// TestCacheConcurrent hammers one cache from readers and a mutator
// concurrently; under -race this is the data-race proof, and every
// read must still equal a direct post-hoc call once writes stop.
func TestCacheConcurrent(t *testing.T) {
	ctx := context.Background()
	c, li, maps := newCached(t, bayeslsh.Cosine, bayeslsh.LSH, 0.6, 36, 16)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				q := bayeslsh.NewVec(maps[(g*7+i)%len(maps)])
				if i%2 == 0 {
					if _, err := c.QueryContext(ctx, q, bayeslsh.QueryOptions{}); err != nil {
						t.Errorf("query: %v", err)
						return
					}
				} else if _, err := c.TopKContext(ctx, q, 3); err != nil {
					t.Errorf("topk: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, err := c.Add(bayeslsh.NewVec(maps[i])); err != nil {
				t.Errorf("add: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	for i := 0; i < 6; i++ {
		q := bayeslsh.NewVec(maps[i])
		direct, err := li.QueryContext(ctx, q, bayeslsh.QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.QueryContext(ctx, q, bayeslsh.QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !harness.MatchesEqual(direct, got) {
			t.Fatalf("post-storm query %d: cached %v, direct %v", i, got, direct)
		}
	}
}

// TestCacheNoGoroutines proves the cache spawns nothing: the goroutine
// count after heavy cache traffic (hits, misses, invalidations,
// evictions) settles back to the pre-traffic count.
func TestCacheNoGoroutines(t *testing.T) {
	ctx := context.Background()
	c, _, maps := newCached(t, bayeslsh.Cosine, bayeslsh.LSH, 0.6, 24, 4)
	before := runtime.NumGoroutine()
	for i := 0; i < 100; i++ {
		q := bayeslsh.NewVec(maps[i%len(maps)])
		if _, err := c.QueryContext(ctx, q, bayeslsh.QueryOptions{}); err != nil {
			t.Fatal(err)
		}
		if i%25 == 24 {
			if _, err := c.Add(q); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Query workers are short-lived; give the runtime a moment to
	// retire any still winding down before comparing.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if after := runtime.NumGoroutine(); after <= before {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines grew: %d before, %d after", before, after)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
