// Package rescache is a bounded, generation-aware result cache for the
// serving layer: it fronts a live index (or the cluster router) and
// memoizes Query/TopK results keyed by (query vector hash, params),
// invalidating wholesale on every mutation — Add, Delete, Compact, and
// the /v1/load hot swap (Swap).
//
// Correctness rests on two properties. First, hit ≡ miss: the cache
// stores a private copy of each result slice and hands out a fresh copy
// per hit, so a cached response is byte-identical to the uncached call
// and no caller can corrupt another's view. Second, mutations
// invalidate through the cache's own generation counter rather than by
// watching the index: every mutating entry point bumps the counter and
// drops all entries, and a concurrently-filling miss only stores its
// result if the counter has not moved since it read through — so a
// result computed against the pre-mutation corpus can never be served
// after the mutation. Background merges need no invalidation: the
// repo's determinism contract makes a compacted generation's results
// bit-identical to the generation it replaced.
//
// The cache never spawns goroutines, reads clocks, or uses randomness;
// eviction is strict LRU over a fixed entry capacity.
package rescache

import (
	"context"
	"encoding/binary"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"

	"bayeslsh"
)

// Backend is the index surface the cache fronts — the serving layer's
// Serveable plus the planner accessors, satisfied by both
// *bayeslsh.LiveIndex and *cluster.Router.
type Backend interface {
	QueryContext(ctx context.Context, q bayeslsh.Vec, opts bayeslsh.QueryOptions) ([]bayeslsh.Match, error)
	TopKContext(ctx context.Context, q bayeslsh.Vec, k int) ([]bayeslsh.Match, error)
	QueryBatchContext(ctx context.Context, queries []bayeslsh.Vec, opts bayeslsh.QueryOptions) ([][]bayeslsh.Match, error)
	Add(q bayeslsh.Vec) (int, error)
	Delete(id int) bool
	Len() int
	Stats() bayeslsh.LiveStats
	Measure() bayeslsh.Measure
	Options() bayeslsh.Options
	Threshold() float64
	Dim() int
	Compact() error
	SaveFile(path string) error
	Close()
}

var _ Backend = (*bayeslsh.LiveIndex)(nil)

// kind distinguishes the cached call shapes in the key.
type kind uint8

const (
	kindQuery kind = iota + 1
	kindTopK
)

// key identifies one cacheable call: the call shape, the query
// vector's content hash, and the scalar parameter (threshold or k,
// packed into one uint64 field).
type key struct {
	kind  kind
	vec   uint64
	param uint64
}

// entry is one cached result with its LRU links (index-based, into the
// cache's entry arena — no container/list, no per-op allocation).
type entry struct {
	key        key
	ms         []bayeslsh.Match
	prev, next int
}

// Counters are the cache's observability surface, exported to /metrics.
type Counters struct {
	Hits, Misses, Evictions, Invalidations int64
	Entries                                int
}

// Cache fronts a Backend with a bounded LRU of Query/TopK results.
// Safe for concurrent use. Construct with New.
type Cache struct {
	inner atomic.Pointer[Backend]
	gen   atomic.Uint64

	hits, misses, evictions, invals atomic.Int64

	mu    sync.Mutex
	items map[key]int
	arena []entry
	free  []int
	head  int // most recent; -1 when empty
	tail  int // least recent; -1 when empty
	cap   int
}

// New wraps inner with a cache of at most capacity entries (min 1).
func New(inner Backend, capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	c := &Cache{
		items: make(map[key]int, capacity),
		arena: make([]entry, 0, capacity),
		head:  -1,
		tail:  -1,
		cap:   capacity,
	}
	c.inner.Store(&inner)
	return c
}

// backend returns the currently fronted index. Each forwarded call
// loads it once, so a concurrent Swap never splits one call across two
// indexes.
func (c *Cache) backend() Backend { return *c.inner.Load() }

// Swap replaces the fronted index (the /v1/load hot swap), invalidates
// every cached result, and returns the retired index for the caller to
// Close.
func (c *Cache) Swap(next Backend) Backend {
	old := c.inner.Swap(&next)
	c.invalidate()
	return *old
}

// invalidate bumps the generation (so in-flight misses drop their
// fills) and empties the cache.
func (c *Cache) invalidate() {
	c.mu.Lock()
	c.gen.Add(1)
	clear(c.items)
	c.arena = c.arena[:0]
	c.free = c.free[:0]
	c.head, c.tail = -1, -1
	c.mu.Unlock()
	c.invals.Add(1)
}

// Counters returns a consistent snapshot of the hit/miss/eviction
// counters and the current entry count.
func (c *Cache) Counters() Counters {
	c.mu.Lock()
	n := len(c.items)
	c.mu.Unlock()
	return Counters{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invals.Load(),
		Entries:       n,
	}
}

// vecHash is an FNV-1a content hash of the query's (feature, weight)
// pairs. Features returns ascending copies, so equal vectors hash
// equally regardless of construction order; FNV keeps the cache free
// of seeded or per-process randomness.
func vecHash(q bayeslsh.Vec) uint64 {
	ind, val := q.Features()
	h := fnv.New64a()
	var buf [8]byte
	for i := range ind {
		binary.LittleEndian.PutUint32(buf[:4], ind[i])
		h.Write(buf[:4])
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(val[i]))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// lookup returns a copy of the cached result for k, if any.
func (c *Cache) lookup(k key) ([]bayeslsh.Match, bool) {
	c.mu.Lock()
	i, ok := c.items[k]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	c.unlink(i)
	c.pushFront(i)
	out := make([]bayeslsh.Match, len(c.arena[i].ms))
	copy(out, c.arena[i].ms)
	c.mu.Unlock()
	c.hits.Add(1)
	return out, true
}

// store inserts k→ms if the generation still matches gen (the
// read-through started before any mutation) and k is still absent,
// evicting the LRU tail at capacity. ms must be private to the cache;
// callers pass the copy they are about to return.
func (c *Cache) store(k key, ms []bayeslsh.Match, gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gen.Load() != gen {
		return
	}
	if _, ok := c.items[k]; ok {
		return
	}
	var i int
	switch {
	case len(c.free) > 0:
		i = c.free[len(c.free)-1]
		c.free = c.free[:len(c.free)-1]
	case len(c.arena) < c.cap:
		i = len(c.arena)
		c.arena = append(c.arena, entry{})
	default:
		i = c.tail
		delete(c.items, c.arena[i].key)
		c.unlink(i)
		c.evictions.Add(1)
	}
	c.arena[i] = entry{key: k, ms: ms}
	c.items[k] = i
	c.pushFront(i)
}

// unlink removes arena[i] from the LRU list (it must be linked).
func (c *Cache) unlink(i int) {
	e := &c.arena[i]
	if e.prev >= 0 {
		c.arena[e.prev].next = e.next
	} else {
		c.head = e.next
	}
	if e.next >= 0 {
		c.arena[e.next].prev = e.prev
	} else {
		c.tail = e.prev
	}
}

// pushFront links arena[i] as the most recently used entry.
func (c *Cache) pushFront(i int) {
	e := &c.arena[i]
	e.prev, e.next = -1, c.head
	if c.head >= 0 {
		c.arena[c.head].prev = i
	}
	c.head = i
	if c.tail < 0 {
		c.tail = i
	}
}

// cached runs one read-through: lookup, else compute via fn and store
// the private copy taken for the caller.
func (c *Cache) cached(k key, fn func() ([]bayeslsh.Match, error)) ([]bayeslsh.Match, error) {
	if ms, ok := c.lookup(k); ok {
		return ms, nil
	}
	gen := c.gen.Load()
	ms, err := fn()
	if err != nil {
		return nil, err
	}
	stored := make([]bayeslsh.Match, len(ms))
	copy(stored, ms)
	c.store(k, stored, gen)
	return ms, nil
}

// QueryContext serves a threshold query through the cache. A hit is
// byte-identical to the miss that filled it.
func (c *Cache) QueryContext(ctx context.Context, q bayeslsh.Vec, opts bayeslsh.QueryOptions) ([]bayeslsh.Match, error) {
	k := key{kind: kindQuery, vec: vecHash(q), param: math.Float64bits(opts.Threshold)}
	return c.cached(k, func() ([]bayeslsh.Match, error) {
		return c.backend().QueryContext(ctx, q, opts)
	})
}

// TopKContext serves a top-k query through the cache.
func (c *Cache) TopKContext(ctx context.Context, q bayeslsh.Vec, k int) ([]bayeslsh.Match, error) {
	ck := key{kind: kindTopK, vec: vecHash(q), param: uint64(int64(k))}
	return c.cached(ck, func() ([]bayeslsh.Match, error) {
		return c.backend().TopKContext(ctx, q, k)
	})
}

// QueryBatchContext passes through uncached: batches are the bulk
// path, where per-query memoization would mostly churn the LRU, and
// the generation pinning a batch needs is the backend's business.
func (c *Cache) QueryBatchContext(ctx context.Context, queries []bayeslsh.Vec, opts bayeslsh.QueryOptions) ([][]bayeslsh.Match, error) {
	return c.backend().QueryBatchContext(ctx, queries, opts)
}

// Add forwards the ingest and invalidates: results computed against
// the pre-Add corpus must not be served after it.
func (c *Cache) Add(q bayeslsh.Vec) (int, error) {
	id, err := c.backend().Add(q)
	if err == nil {
		c.invalidate()
	}
	return id, err
}

// Delete forwards the tombstone and invalidates when it deleted
// something (deleting an absent id changes no result).
func (c *Cache) Delete(id int) bool {
	ok := c.backend().Delete(id)
	if ok {
		c.invalidate()
	}
	return ok
}

// Compact forwards the merge and invalidates. The merged results are
// bit-identical, so this is defensive rather than required — but
// Compact is rare and an empty cache refills in one round.
func (c *Cache) Compact() error {
	err := c.backend().Compact()
	if err == nil {
		c.invalidate()
	}
	return err
}

// The read-only surface forwards untouched.

// Len reports the fronted index's live vector count.
func (c *Cache) Len() int { return c.backend().Len() }

// Stats reports the fronted index's segment shape.
func (c *Cache) Stats() bayeslsh.LiveStats { return c.backend().Stats() }

// Measure reports the fronted index's similarity measure.
func (c *Cache) Measure() bayeslsh.Measure { return c.backend().Measure() }

// Options reports the fronted index's resolved search options.
func (c *Cache) Options() bayeslsh.Options { return c.backend().Options() }

// Threshold reports the fronted index's built threshold.
func (c *Cache) Threshold() float64 { return c.backend().Threshold() }

// Dim reports the fronted index's feature-space dimensionality.
func (c *Cache) Dim() int { return c.backend().Dim() }

// SaveFile snapshots the fronted index (the cache holds no durable
// state).
func (c *Cache) SaveFile(path string) error { return c.backend().SaveFile(path) }

// Close closes the fronted index and empties the cache.
func (c *Cache) Close() {
	c.backend().Close()
	c.invalidate()
}

// MemStats reports the fronted index's memory accounting when it
// exposes one (a disk-backed LiveIndex does), so fronting an index
// with the cache never hides its /v1/stats memory block.
func (c *Cache) MemStats() bayeslsh.IndexMemStats {
	if p, ok := c.backend().(interface{ MemStats() bayeslsh.IndexMemStats }); ok {
		return p.MemStats()
	}
	return bayeslsh.IndexMemStats{}
}

// CorpusStats reports the fronted index's planner statistics when it
// exposes them (LiveIndex and Router both do).
func (c *Cache) CorpusStats() bayeslsh.CorpusStats {
	if p, ok := c.backend().(interface{ CorpusStats() bayeslsh.CorpusStats }); ok {
		return p.CorpusStats()
	}
	return bayeslsh.CorpusStats{}
}

// Plan reports the fronted index's pipeline decision when it exposes
// one — as Plan (LiveIndex) or PipelinePlan (the cluster router, whose
// Plan method is its partition plan).
func (c *Cache) Plan() bayeslsh.Plan {
	switch p := c.backend().(type) {
	case interface{ Plan() bayeslsh.Plan }:
		return p.Plan()
	case interface{ PipelinePlan() bayeslsh.Plan }:
		return p.PipelinePlan()
	}
	return bayeslsh.Plan{}
}
