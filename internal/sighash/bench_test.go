package sighash

import (
	"testing"

	"bayeslsh/internal/rng"
	"bayeslsh/internal/vector"
)

func benchVector(nnz, dim int, seed uint64) vector.Vector {
	src := rng.New(seed)
	m := make(map[uint32]float64, nnz)
	for len(m) < nnz {
		m[uint32(src.Intn(dim))] = src.NormFloat64()
	}
	return vector.FromMap(m)
}

func BenchmarkSignature2048Bits(b *testing.B) {
	const dim = 4096
	fam := NewFamily(dim, 2048, 1)
	v := benchVector(100, dim, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fam.Signature(v)
	}
}

// BenchmarkAblationQuantizedVsExact measures the §4.3 2-byte storage
// scheme against float64 projections: the quantized family halves... —
// compare ns/op and B/op between the two sub-benchmarks.
func BenchmarkAblationQuantizedVsExact(b *testing.B) {
	const dim = 2048
	v := benchVector(100, dim, 3)
	b.Run("quantized", func(b *testing.B) {
		fam := NewFamily(dim, 1024, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fam.Signature(v)
		}
	})
	b.Run("exact", func(b *testing.B) {
		fam := NewFamily(dim, 1024, 1, Exact())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fam.Signature(v)
		}
	})
}

func BenchmarkMatchCount64Bits(b *testing.B) {
	src := rng.New(9)
	x := []uint64{src.Uint64(), src.Uint64(), src.Uint64(), src.Uint64()}
	y := []uint64{src.Uint64(), src.Uint64(), src.Uint64(), src.Uint64()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatchCount(x, y, 32, 96)
	}
}

func BenchmarkStoreEnsureBlock(b *testing.B) {
	const dim = 2048
	c := &vector.Collection{Dim: dim, Vecs: []vector.Vector{benchVector(100, dim, 5)}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := NewStore(c, NewBlockFamily(dim, 128, 128, uint64(i)))
		b.StartTimer()
		s.Ensure(0, 128)
	}
}
