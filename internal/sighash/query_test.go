package sighash

import (
	"testing"

	"bayeslsh/internal/testutil"
)

// TestSignatureNMatchesStore checks the query-hashing contract: a
// one-shot SignatureN over a corpus vector reproduces the lazily
// filled store signature bit for bit, at every block depth.
func TestSignatureNMatchesStore(t *testing.T) {
	c := testutil.SmallTextCorpus(t, 40, 21)
	fam := NewBlockFamily(c.Dim, 512, 128, 99)
	st := NewStore(c, fam)
	st.EnsureAll(512)
	for _, nbits := range []int{128, 256, 512} {
		for i, v := range c.Vecs {
			q := fam.SignatureN(v, nbits)
			for w := 0; w < nbits/64; w++ {
				if q[w] != st.Sigs()[i][w] {
					t.Fatalf("nbits %d vector %d word %d: query %x, store %x",
						nbits, i, w, q[w], st.Sigs()[i][w])
				}
			}
		}
	}
	// Partial-block requests round up to whole blocks.
	if got := len(fam.SignatureN(c.Vecs[0], 100)); got != 2 {
		t.Fatalf("SignatureN(100) returned %d words, want 2 (one 128-bit block)", got)
	}
}
