package sighash

import (
	"testing"

	"bayeslsh/internal/rng"
	"bayeslsh/internal/vector"
)

func storeCorpus(n, dim int, seed uint64) *vector.Collection {
	src := rng.New(seed)
	c := &vector.Collection{Dim: dim}
	for i := 0; i < n; i++ {
		var es []vector.Entry
		l := src.Intn(10) + 3
		for j := 0; j < l; j++ {
			es = append(es, vector.Entry{Ind: uint32(src.Intn(dim)), Val: src.NormFloat64()})
		}
		c.Vecs = append(c.Vecs, vector.New(es))
	}
	return c
}

func TestBlockFamilyPanicsOnBadArgs(t *testing.T) {
	for _, args := range [][3]int{{0, 128, 128}, {4, 0, 128}, {4, 128, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBlockFamily%v did not panic", args)
				}
			}()
			NewBlockFamily(args[0], args[1], args[2], 1)
		}()
	}
}

func TestBlockFamilyRoundsUpGeometry(t *testing.T) {
	f := NewBlockFamily(4, 100, 100, 1)
	if f.BlockBits()%64 != 0 {
		t.Errorf("blockBits %d not word aligned", f.BlockBits())
	}
	if f.MaxBits()%f.BlockBits() != 0 {
		t.Errorf("maxBits %d not a multiple of blockBits %d", f.MaxBits(), f.BlockBits())
	}
}

func TestStoreLazyAndIncremental(t *testing.T) {
	c := storeCorpus(20, 50, 7)
	fam := NewBlockFamily(50, 512, 128, 3)
	s := NewStore(c, fam)
	if s.FilledBits(0) != 0 {
		t.Fatal("store not lazy")
	}
	s.Ensure(0, 100)
	if got := s.FilledBits(0); got != 128 {
		t.Errorf("FilledBits after Ensure(100) = %d, want 128 (one block)", got)
	}
	if s.FilledBits(1) != 0 {
		t.Error("Ensure touched another vector")
	}
	s.Ensure(0, 512)
	if got := s.FilledBits(0); got != 512 {
		t.Errorf("FilledBits = %d, want 512", got)
	}
	if s.Elapsed() <= 0 {
		t.Error("no hashing time recorded")
	}
}

func TestStoreEnsureBeyondCapacityPanics(t *testing.T) {
	c := storeCorpus(2, 10, 1)
	s := NewStore(c, NewBlockFamily(10, 128, 128, 1))
	defer func() {
		if recover() == nil {
			t.Error("Ensure beyond capacity did not panic")
		}
	}()
	s.Ensure(0, 256)
}

// TestStoreOrderIndependent verifies that signatures do not depend on
// the order in which blocks are materialized across vectors.
func TestStoreOrderIndependent(t *testing.T) {
	c := storeCorpus(10, 40, 9)
	fam1 := NewBlockFamily(40, 384, 128, 5)
	s1 := NewStore(c, fam1)
	s1.EnsureAll(384)

	fam2 := NewBlockFamily(40, 384, 128, 5)
	s2 := NewStore(c, fam2)
	// Fill in a scrambled, incremental order.
	s2.Ensure(7, 384)
	s2.Ensure(3, 128)
	s2.Ensure(3, 384)
	s2.EnsureAll(256)
	s2.EnsureAll(384)

	for id := range c.Vecs {
		a, b := s1.Sigs()[id], s2.Sigs()[id]
		for w := range a {
			if a[w] != b[w] {
				t.Fatalf("vector %d word %d differs between fill orders", id, w)
			}
		}
	}
}

// TestStoreMatchesLSHProperty: collision rate of store signatures
// approximates the angular similarity, as for the eager family.
func TestStoreMatchesLSHProperty(t *testing.T) {
	src := rng.New(42)
	dense := func() vector.Vector {
		var es []vector.Entry
		for i := 0; i < 32; i++ {
			es = append(es, vector.Entry{Ind: uint32(i), Val: src.NormFloat64()})
		}
		return vector.New(es)
	}
	c := &vector.Collection{Dim: 32, Vecs: []vector.Vector{dense(), dense()}}
	const bits = 4096
	s := NewStore(c, NewBlockFamily(32, bits, 128, 11))
	s.EnsureAll(bits)
	want := CosineToR(vector.Cosine(c.Vecs[0], c.Vecs[1]))
	got := float64(MatchCount(s.Sigs()[0], s.Sigs()[1], 0, bits)) / bits
	if diff := got - want; diff > 0.05 || diff < -0.05 {
		t.Errorf("store collision rate %v, want %v", got, want)
	}
}

func TestStoreExactOptionAgreesWithQuantized(t *testing.T) {
	c := storeCorpus(5, 30, 13)
	q := NewStore(c, NewBlockFamily(30, 256, 128, 17))
	e := NewStore(c, NewBlockFamily(30, 256, 128, 17, Exact()))
	q.EnsureAll(256)
	e.EnsureAll(256)
	for id := range c.Vecs {
		agree := MatchCount(q.Sigs()[id], e.Sigs()[id], 0, 256)
		if agree < 250 {
			t.Errorf("vector %d: quantized and exact stores agree on %d/256 bits", id, agree)
		}
	}
}
