package sighash

import (
	"time"

	"bayeslsh/internal/rng"
	"bayeslsh/internal/vector"
)

// BlockFamily generates random-hyperplane hash functions in blocks of
// blockBits, materializing each block's projection coefficients only
// when some signature first needs it. Block b of feature f is derived
// from an independent deterministic stream keyed by (seed, f, b), so
// the family is identical regardless of materialization order.
type BlockFamily struct {
	dim, maxBits, blockBits int
	seed                    uint64
	quantized               bool
	// qblocks[b] (or fblocks[b]) is a flattened dim × blockBits matrix
	// of projection coefficients for hash functions
	// [b·blockBits, (b+1)·blockBits).
	qblocks [][]uint16
	fblocks [][]float64
}

// NewBlockFamily creates a lazily-materialized family of maxBits hash
// functions over dim features. blockBits controls materialization
// granularity (it is rounded up to a multiple of 64 so signature
// blocks align with words).
func NewBlockFamily(dim, maxBits, blockBits int, seed uint64, opts ...Option) *BlockFamily {
	if dim <= 0 || maxBits <= 0 || blockBits <= 0 {
		panic("sighash: NewBlockFamily needs positive dim, maxBits, blockBits")
	}
	blockBits = (blockBits + 63) / 64 * 64
	if maxBits%blockBits != 0 {
		maxBits = (maxBits/blockBits + 1) * blockBits
	}
	f := &BlockFamily{dim: dim, maxBits: maxBits, blockBits: blockBits, seed: seed, quantized: true}
	// Reuse the Family option type: Exact() toggles quantization off.
	probe := &Family{quantized: true}
	for _, o := range opts {
		o(probe)
	}
	f.quantized = probe.quantized
	n := maxBits / blockBits
	f.qblocks = make([][]uint16, n)
	f.fblocks = make([][]float64, n)
	return f
}

// MaxBits returns the family size (maximum signature length in bits).
func (f *BlockFamily) MaxBits() int { return f.maxBits }

// BlockBits returns the materialization granularity.
func (f *BlockFamily) BlockBits() int { return f.blockBits }

// ensureBlock materializes block b's projection rows.
func (f *BlockFamily) ensureBlock(b int) {
	if f.quantized {
		if f.qblocks[b] != nil {
			return
		}
		rows := make([]uint16, f.dim*f.blockBits)
		for feat := 0; feat < f.dim; feat++ {
			src := rng.New(rng.Mix64(f.seed ^ uint64(feat+1) ^ uint64(b+1)<<40))
			row := rows[feat*f.blockBits : (feat+1)*f.blockBits]
			for i := range row {
				row[i] = Quantize(src.NormFloat64())
			}
		}
		f.qblocks[b] = rows
		return
	}
	if f.fblocks[b] != nil {
		return
	}
	rows := make([]float64, f.dim*f.blockBits)
	for feat := 0; feat < f.dim; feat++ {
		src := rng.New(rng.Mix64(f.seed ^ uint64(feat+1) ^ uint64(b+1)<<40))
		row := rows[feat*f.blockBits : (feat+1)*f.blockBits]
		for i := range row {
			row[i] = src.NormFloat64()
		}
	}
	f.fblocks[b] = rows
}

// signBlock computes the signature bits of block b for v and writes
// them into sig (whose capacity covers the whole signature).
func (f *BlockFamily) signBlock(v vector.Vector, b int, sig []uint64, acc []float64) {
	f.ensureBlock(b)
	bb := f.blockBits
	for i := range acc[:bb] {
		acc[i] = 0
	}
	if f.quantized {
		rows := f.qblocks[b]
		for i, ind := range v.Ind {
			w := v.Val[i]
			row := rows[int(ind)*bb : (int(ind)+1)*bb]
			for j, q := range row {
				acc[j] += w * (float64(q)/4096 - 8)
			}
		}
	} else {
		rows := f.fblocks[b]
		for i, ind := range v.Ind {
			w := v.Val[i]
			row := rows[int(ind)*bb : (int(ind)+1)*bb]
			for j, g := range row {
				acc[j] += w * g
			}
		}
	}
	base := b * bb
	for j := 0; j < bb; j++ {
		if acc[j] >= 0 {
			sig[(base+j)/64] |= 1 << ((base + j) % 64)
		}
	}
}

// Store lazily computes and caches packed bit signatures per vector,
// extending them block-by-block as verification demands deeper hash
// prefixes — the paper's "each point is only hashed as many times as
// is necessary". It is not safe for concurrent use.
type Store struct {
	fam     *BlockFamily
	c       *vector.Collection
	sigs    [][]uint64 // full capacity allocated; filled lazily
	filled  []int32    // bits filled per vector (multiple of blockBits)
	acc     []float64  // scratch accumulator
	elapsed time.Duration
}

// NewStore creates a signature store over the collection.
func NewStore(c *vector.Collection, fam *BlockFamily) *Store {
	words := fam.maxBits / 64
	s := &Store{
		fam:    fam,
		c:      c,
		sigs:   make([][]uint64, len(c.Vecs)),
		filled: make([]int32, len(c.Vecs)),
		acc:    make([]float64, fam.blockBits),
	}
	backing := make([]uint64, words*len(c.Vecs))
	for i := range s.sigs {
		s.sigs[i], backing = backing[:words:words], backing[words:]
	}
	return s
}

// Sigs exposes the backing signature slices. Slice headers are stable
// for the store's lifetime; contents beyond the ensured prefix are
// zero until filled.
func (s *Store) Sigs() [][]uint64 { return s.sigs }

// MaxBits returns the signature capacity in bits.
func (s *Store) MaxBits() int { return s.fam.maxBits }

// FilledBits returns how many hash bits of vector id are computed.
func (s *Store) FilledBits(id int32) int { return int(s.filled[id]) }

// Elapsed returns the cumulative wall-clock time spent hashing.
func (s *Store) Elapsed() time.Duration { return s.elapsed }

// Ensure fills vector id's signature up to at least nbits bits.
func (s *Store) Ensure(id int32, nbits int) {
	if int(s.filled[id]) >= nbits {
		return
	}
	start := time.Now()
	bb := s.fam.blockBits
	from := int(s.filled[id]) / bb
	to := (nbits + bb - 1) / bb
	if to*bb > s.fam.maxBits {
		panic("sighash: Ensure beyond family capacity")
	}
	v := s.c.Vecs[id]
	for b := from; b < to; b++ {
		s.fam.signBlock(v, b, s.sigs[id], s.acc)
	}
	s.filled[id] = int32(to * bb)
	s.elapsed += time.Since(start)
}

// EnsureAll fills every vector's signature up to nbits bits.
func (s *Store) EnsureAll(nbits int) {
	for id := range s.sigs {
		s.Ensure(int32(id), nbits)
	}
}
