package sighash

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"bayeslsh/internal/rng"
	"bayeslsh/internal/shard"
	"bayeslsh/internal/vector"
)

// BlockFamily generates random-hyperplane hash functions in blocks of
// blockBits, materializing each block's projection coefficients only
// when some signature first needs it. Block b of feature f is derived
// from an independent deterministic stream keyed by (seed, f, b), so
// the family is identical regardless of materialization order — this
// per-work-item stream discipline is what keeps parallel hashing
// deterministic. BlockFamily is safe for concurrent use; distinct
// blocks materialize concurrently under per-block locks.
type BlockFamily struct {
	dim, maxBits, blockBits int
	seed                    uint64
	quantized               bool
	// qblocks[b] (or fblocks[b]) is a flattened dim × blockBits matrix
	// of projection coefficients for hash functions
	// [b·blockBits, (b+1)·blockBits). ready[b] is set (with release
	// semantics) once block b is materialized; readers that observe it
	// may read the block without holding mus[b].
	mus     []sync.Mutex
	ready   []atomic.Bool
	qblocks [][]uint16
	fblocks [][]float64
}

// NewBlockFamily creates a lazily-materialized family of maxBits hash
// functions over dim features. blockBits controls materialization
// granularity (it is rounded up to a multiple of 64 so signature
// blocks align with words).
func NewBlockFamily(dim, maxBits, blockBits int, seed uint64, opts ...Option) *BlockFamily {
	if dim <= 0 || maxBits <= 0 || blockBits <= 0 {
		panic("sighash: NewBlockFamily needs positive dim, maxBits, blockBits")
	}
	blockBits = (blockBits + 63) / 64 * 64
	if maxBits%blockBits != 0 {
		maxBits = (maxBits/blockBits + 1) * blockBits
	}
	f := &BlockFamily{dim: dim, maxBits: maxBits, blockBits: blockBits, seed: seed, quantized: true}
	// Reuse the Family option type: Exact() toggles quantization off.
	probe := &Family{quantized: true}
	for _, o := range opts {
		o(probe)
	}
	f.quantized = probe.quantized
	n := maxBits / blockBits
	f.mus = make([]sync.Mutex, n)
	f.ready = make([]atomic.Bool, n)
	f.qblocks = make([][]uint16, n)
	f.fblocks = make([][]float64, n)
	return f
}

// MaxBits returns the family size (maximum signature length in bits).
func (f *BlockFamily) MaxBits() int { return f.maxBits }

// Dim returns the feature-space dimensionality the family hashes.
func (f *BlockFamily) Dim() int { return f.dim }

// BlockBits returns the materialization granularity.
func (f *BlockFamily) BlockBits() int { return f.blockBits }

// ensureBlock materializes block b's projection rows. Safe for
// concurrent use: the first caller materializes under the block's
// lock, later callers return on the atomic fast path, and different
// blocks materialize in parallel.
func (f *BlockFamily) ensureBlock(b int) {
	if f.ready[b].Load() {
		return
	}
	f.mus[b].Lock()
	defer f.mus[b].Unlock()
	if f.ready[b].Load() {
		return
	}
	if f.quantized {
		rows := make([]uint16, f.dim*f.blockBits)
		for feat := 0; feat < f.dim; feat++ {
			src := rng.New(rng.Mix64(f.seed ^ uint64(feat+1) ^ uint64(b+1)<<40))
			row := rows[feat*f.blockBits : (feat+1)*f.blockBits]
			for i := range row {
				row[i] = Quantize(src.NormFloat64())
			}
		}
		f.qblocks[b] = rows
	} else {
		rows := make([]float64, f.dim*f.blockBits)
		for feat := 0; feat < f.dim; feat++ {
			src := rng.New(rng.Mix64(f.seed ^ uint64(feat+1) ^ uint64(b+1)<<40))
			row := rows[feat*f.blockBits : (feat+1)*f.blockBits]
			for i := range row {
				row[i] = src.NormFloat64()
			}
		}
		f.fblocks[b] = rows
	}
	f.ready[b].Store(true)
}

// signBlock computes the signature bits of block b for v and writes
// them into sig (whose capacity covers the whole signature).
func (f *BlockFamily) signBlock(v vector.Vector, b int, sig []uint64, acc []float64) {
	f.ensureBlock(b)
	bb := f.blockBits
	for i := range acc[:bb] {
		acc[i] = 0
	}
	if f.quantized {
		rows := f.qblocks[b]
		for i, ind := range v.Ind {
			w := v.Val[i]
			row := rows[int(ind)*bb : (int(ind)+1)*bb]
			for j, q := range row {
				acc[j] += w * (float64(q)/4096 - 8)
			}
		}
	} else {
		rows := f.fblocks[b]
		for i, ind := range v.Ind {
			w := v.Val[i]
			row := rows[int(ind)*bb : (int(ind)+1)*bb]
			for j, g := range row {
				acc[j] += w * g
			}
		}
	}
	base := b * bb
	for j := 0; j < bb; j++ {
		if acc[j] >= 0 {
			sig[(base+j)/64] |= 1 << ((base + j) % 64)
		}
	}
}

// SignatureN computes bits [0, nbits) of v's signature in one call,
// the hashing path for out-of-corpus query vectors. nbits is rounded
// up to whole blocks and must not exceed MaxBits. Blocks derive from
// the same (seed, feature, block) streams the lazy Store fills use, so
// a query vector equal to a corpus vector yields a prefix bit-identical
// to that vector's stored signature.
func (f *BlockFamily) SignatureN(v vector.Vector, nbits int) []uint64 {
	bb := f.blockBits
	to := (nbits + bb - 1) / bb
	if to*bb > f.maxBits {
		panic("sighash: SignatureN beyond family capacity")
	}
	sig := make([]uint64, to*bb/64)
	acc := make([]float64, bb)
	for b := 0; b < to; b++ {
		f.signBlock(v, b, sig, acc)
	}
	return sig
}

// Store lazily computes and caches packed bit signatures per vector,
// extending them block-by-block as verification demands deeper hash
// prefixes — the paper's "each point is only hashed as many times as
// is necessary". It is safe for concurrent use (synchronization via
// shard.Fill): a reader that calls Ensure(id, n) first — even if
// another goroutine did the fill — may read bits [0, n) of sigs[id]
// without further locking.
type Store struct {
	fam     *BlockFamily
	c       *vector.Collection
	sigs    [][]uint64 // full capacity allocated; filled lazily
	fill    *shard.Fill
	scratch sync.Pool // per-fill accumulator, []float64 of blockBits
}

// NewStore creates a signature store over the collection.
func NewStore(c *vector.Collection, fam *BlockFamily) *Store {
	words := fam.maxBits / 64
	s := &Store{
		fam:  fam,
		c:    c,
		sigs: make([][]uint64, len(c.Vecs)),
		fill: shard.NewFill(len(c.Vecs)),
	}
	s.scratch.New = func() any {
		acc := make([]float64, fam.blockBits)
		return &acc
	}
	backing := make([]uint64, words*len(c.Vecs))
	for i := range s.sigs {
		s.sigs[i], backing = backing[:words:words], backing[words:]
	}
	return s
}

// Sigs exposes the backing signature slices. Slice headers are stable
// for the store's lifetime; contents beyond the ensured prefix are
// zero until filled.
func (s *Store) Sigs() [][]uint64 { return s.sigs }

// MaxBits returns the signature capacity in bits.
func (s *Store) MaxBits() int { return s.fam.maxBits }

// Family returns the store's hash family, for hashing out-of-corpus
// query vectors against the same streams (see SignatureN).
func (s *Store) Family() *BlockFamily { return s.fam }

// FilledBits returns how many hash bits of vector id are computed.
func (s *Store) FilledBits(id int32) int { return s.fill.Filled(id) }

// Elapsed returns the cumulative wall-clock time spent hashing. Under
// concurrent fills it sums per-goroutine fill time, which can exceed
// the wall-clock time of the enclosing phase.
func (s *Store) Elapsed() time.Duration { return s.fill.Elapsed() }

// Ensure fills vector id's signature up to at least nbits bits.
func (s *Store) Ensure(id int32, nbits int) {
	s.fill.Ensure(id, nbits, func(from int) int {
		if s.c == nil {
			panic("sighash: fixed store cannot hash deeper than its persisted depth")
		}
		bb := s.fam.blockBits
		to := (nbits + bb - 1) / bb
		if to*bb > s.fam.maxBits {
			panic("sighash: Ensure beyond family capacity")
		}
		v := s.c.Vecs[id]
		accp := s.scratch.Get().(*[]float64)
		for b := from / bb; b < to; b++ {
			s.fam.signBlock(v, b, s.sigs[id], *accp)
		}
		s.scratch.Put(accp)
		return to * bb
	})
}

// Adopt copies an already-computed signature prefix of nbits bits
// (a whole number of family blocks, as every fill produces) into
// vector id's slot and marks it filled — the live index's merge path,
// which moves signatures from the outgoing base store and memtable
// into a fresh store instead of re-hashing the corpus. The source may
// keep being used (and deepened) independently: the prefix is copied,
// not aliased. Like the snapshot loader's restore, Adopt must run
// before the store is shared with concurrent Ensure/Sigs readers.
// Deeper demand later resumes hashing at nbits through the ordinary
// lazy fill, and the per-block hash streams are position-keyed, so the
// result is bit-identical to a store that hashed everything itself.
func (s *Store) Adopt(id int32, sig []uint64, nbits int) {
	if nbits <= 0 {
		return
	}
	if nbits%s.fam.blockBits != 0 || nbits > s.fam.maxBits || nbits > len(sig)*64 {
		panic("sighash: Adopt needs a block-aligned prefix within the family budget")
	}
	copy(s.sigs[id][:nbits/64], sig[:nbits/64])
	s.fill.Restore(id, nbits)
}

// EnsureAll fills every vector's signature up to nbits bits.
func (s *Store) EnsureAll(nbits int) {
	for id := range s.sigs {
		s.Ensure(int32(id), nbits)
	}
}

// EnsureAllParallel fills every vector's signature up to nbits bits
// using a pool of workers goroutines. Hash blocks derive from streams
// keyed by (seed, feature, block), so the signatures are identical to
// a sequential fill for any worker count.
func (s *Store) EnsureAllParallel(nbits, workers int) {
	if workers <= 1 {
		s.EnsureAll(nbits)
		return
	}
	shard.Run(len(s.sigs), workers, shard.Chunk(len(s.sigs), workers, 16), func(lo, hi, _ int) {
		for id := lo; id < hi; id++ {
			s.Ensure(int32(id), nbits)
		}
	})
}

// EnsureAllCtx is EnsureAllParallel with cooperative cancellation,
// polled between vectors. Vectors already filled stay filled — the
// lazy fill state remains consistent — so a later call resumes where
// a canceled one stopped, and a canceled fill wastes at most the
// blocks in flight.
func (s *Store) EnsureAllCtx(ctx context.Context, nbits, workers int) error {
	if ctx.Done() == nil {
		s.EnsureAllParallel(nbits, workers)
		return nil
	}
	stop := shard.NewStopper(ctx)
	defer stop.Close()
	return shard.RunCtx(ctx, len(s.sigs), workers, shard.Chunk(len(s.sigs), workers, 16), func(lo, hi, _ int) {
		for id := lo; id < hi; id++ {
			if stop.Stopped() {
				return
			}
			s.Ensure(int32(id), nbits)
		}
	})
}
