package sighash

import (
	"math"
	"math/bits"

	"bayeslsh/internal/rng"
	"bayeslsh/internal/vector"
)

// Quantize maps a float in (−8, 8) to the paper's 2-byte fixed-point
// representation.
func Quantize(x float64) uint16 {
	if x <= -8 {
		return 0
	}
	if x >= 8 {
		return math.MaxUint16
	}
	return uint16((x + 8) * 4096)
}

// Dequantize inverts Quantize up to the scheme's quantization error
// (at most 1/4096 ≈ 0.000244).
func Dequantize(q uint16) float64 {
	return float64(q)/4096 - 8
}

// Family is a set of random-hyperplane hash functions over a fixed
// feature space. It is safe for concurrent use after construction.
type Family struct {
	dim, nbits int
	quantized  bool
	// rows[feature] holds that feature's projection coefficient for
	// every hash function, in hash order — either quantized or exact.
	qrows [][]uint16
	frows [][]float64
}

// Option configures a Family.
type Option func(*Family)

// Exact stores projections as float64 instead of the default 2-byte
// quantized form. It exists to measure the accuracy/space trade-off of
// the paper's quantization scheme (see the ablation benchmarks).
func Exact() Option { return func(f *Family) { f.quantized = false } }

// NewFamily creates nbits random-hyperplane hash functions over a
// dim-dimensional feature space, derived deterministically from seed.
func NewFamily(dim, nbits int, seed uint64, opts ...Option) *Family {
	if dim <= 0 || nbits <= 0 {
		panic("sighash: NewFamily needs dim > 0 and nbits > 0")
	}
	f := &Family{dim: dim, nbits: nbits, quantized: true}
	for _, o := range opts {
		o(f)
	}
	// Per-feature generator streams keep generation deterministic and
	// independent of the order in which features are touched.
	if f.quantized {
		f.qrows = make([][]uint16, dim)
		for feat := 0; feat < dim; feat++ {
			src := rng.New(rng.Mix64(seed ^ uint64(feat+1)))
			row := make([]uint16, nbits)
			for b := range row {
				row[b] = Quantize(src.NormFloat64())
			}
			f.qrows[feat] = row
		}
		return f
	}
	f.frows = make([][]float64, dim)
	for feat := 0; feat < dim; feat++ {
		src := rng.New(rng.Mix64(seed ^ uint64(feat+1)))
		row := make([]float64, nbits)
		for b := range row {
			row[b] = src.NormFloat64()
		}
		f.frows[feat] = row
	}
	return f
}

// Bits returns the number of hash functions (signature length in bits).
func (f *Family) Bits() int { return f.nbits }

// Dim returns the feature-space dimensionality.
func (f *Family) Dim() int { return f.dim }

// Words returns the length in uint64 words of a packed signature.
func (f *Family) Words() int { return (f.nbits + 63) / 64 }

// Signature returns the packed bit signature of v. Bit i is hash
// function i's output (1 iff the projection onto hyperplane i is
// non-negative). The empty vector's projections are all zero, which by
// the >= 0 convention yields an all-ones signature; callers should
// drop empty vectors before indexing.
func (f *Family) Signature(v vector.Vector) []uint64 {
	acc := make([]float64, f.nbits)
	if f.quantized {
		for i, ind := range v.Ind {
			w := v.Val[i]
			row := f.qrows[ind]
			for b, q := range row {
				acc[b] += w * (float64(q)/4096 - 8)
			}
		}
	} else {
		for i, ind := range v.Ind {
			w := v.Val[i]
			row := f.frows[ind]
			for b, g := range row {
				acc[b] += w * g
			}
		}
	}
	sig := make([]uint64, f.Words())
	for b, a := range acc {
		if a >= 0 {
			sig[b/64] |= 1 << (b % 64)
		}
	}
	return sig
}

// SignatureAll computes signatures for every vector in the collection.
func (f *Family) SignatureAll(c *vector.Collection) [][]uint64 {
	sigs := make([][]uint64, len(c.Vecs))
	for i, v := range c.Vecs {
		sigs[i] = f.Signature(v)
	}
	return sigs
}

// MatchCount returns the number of agreeing bits of a and b in the
// half-open bit range [from, to): to − from minus the Hamming distance
// of that range. It panics if the range exceeds either signature.
func MatchCount(a, b []uint64, from, to int) int {
	if from < 0 || from > to || to > 64*len(a) || to > 64*len(b) {
		panic("sighash: MatchCount range out of bounds")
	}
	if from == to {
		return 0
	}
	firstWord, lastWord := from/64, (to-1)/64
	mismatches := 0
	for w := firstWord; w <= lastWord; w++ {
		x := a[w] ^ b[w]
		if w == firstWord {
			x &= ^uint64(0) << (from % 64)
		}
		if w == lastWord {
			if r := to % 64; r != 0 {
				x &= (1 << r) - 1
			}
		}
		mismatches += bits.OnesCount64(x)
	}
	return (to - from) - mismatches
}

// Bit returns bit i of signature sig.
func Bit(sig []uint64, i int) uint64 { return (sig[i/64] >> (i % 64)) & 1 }

// RToCosine converts a collision probability r = 1 − θ/π into the
// cosine similarity cos(π(1−r)) — the paper's r2c function.
func RToCosine(r float64) float64 { return math.Cos(math.Pi * (1 - r)) }

// CosineToR converts a cosine similarity into the collision
// probability 1 − arccos(c)/π — the paper's c2r function.
func CosineToR(c float64) float64 {
	if c > 1 {
		c = 1
	}
	if c < -1 {
		c = -1
	}
	return 1 - math.Acos(c)/math.Pi
}
