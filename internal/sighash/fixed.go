// Disk-servable (v3) codec of the bit-signature store. Where the v1
// stream codec persists per-vector fill depths and is decoded into a
// heap store, the v3 section is a flat fixed-stride matrix: every
// vector's signature prefix computed offline to one uniform depth and
// laid out for sequential scan, so an open can lay slice headers over
// the mapped section and serve without hashing a single corpus
// vector.

package sighash

import (
	"fmt"

	"bayeslsh/internal/shard"
	"bayeslsh/internal/snapshot"
)

// NewFixedStore serves signatures computed offline: row id holds bits
// [0, nbits) of vector id's signature (typically aliasing a mapped
// snapshot section), every vector is marked filled to nbits, and the
// store has no collection to hash from — demand beyond nbits is a
// programming error (the open path validates that no serving
// configuration needs deeper prefixes than were persisted). nbits
// must be a positive multiple of 64; each row must hold at least
// nbits/64 words.
func NewFixedStore(fam *BlockFamily, sigs [][]uint64, nbits int) *Store {
	if nbits <= 0 || nbits%64 != 0 || nbits > fam.maxBits {
		panic("sighash: NewFixedStore needs a word-aligned depth within the family")
	}
	s := &Store{fam: fam, sigs: sigs, fill: shard.NewFill(len(sigs))}
	s.scratch.New = func() any {
		acc := make([]float64, fam.blockBits)
		return &acc
	}
	for id := range sigs {
		s.fill.Restore(int32(id), nbits)
	}
	return s
}

// WriteFixedSection serializes the store for disk serving: depth,
// vector count, then every signature's first nbits bits as raw
// little-endian words, fixed stride, no per-row framing. Every vector
// must already be filled to nbits (the save path pre-fills).
func (s *Store) WriteFixedSection(w *snapshot.Writer, nbits int) {
	w.U32(uint32(nbits))
	w.U32(0) // pad: keeps the word matrix 8-aligned in the section
	w.U64(uint64(len(s.sigs)))
	words := nbits / 64
	for id := range s.sigs {
		for _, v := range s.sigs[id][:words] {
			w.U64(v)
		}
	}
}

// OpenFixedSection lays row views over a WriteFixedSection payload:
// sigs[id] aliases the buffer (zero-copy on little-endian platforms)
// and holds exactly nbits/64 words. Structure is validated against
// the buffer's actual length, so a hostile section cannot cause
// over-allocation; content integrity is the section checksum's job.
func OpenFixedSection(buf []byte) (sigs [][]uint64, nbits int, err error) {
	if len(buf) < 16 {
		return nil, 0, fmt.Errorf("%w: bit store section %d bytes", snapshot.ErrCorrupt, len(buf))
	}
	r := snapshot.NewReader(buf)
	nbits = int(r.U32())
	r.U32()
	n := r.U64()
	if nbits <= 0 || nbits%64 != 0 {
		return nil, 0, fmt.Errorf("%w: bit store depth %d not a positive word multiple", snapshot.ErrCorrupt, nbits)
	}
	words := nbits / 64
	body := buf[16:]
	if want := uint64(len(body) / (8 * words)); n != want || len(body)%(8*words) != 0 {
		return nil, 0, fmt.Errorf("%w: bit store declares %d vectors × %d words in %d bytes",
			snapshot.ErrCorrupt, n, words, len(body))
	}
	flat := snapshot.ViewU64s(body)
	sigs = make([][]uint64, n)
	for id := range sigs {
		sigs[id] = flat[id*words : (id+1)*words : (id+1)*words]
	}
	return sigs, nbits, nil
}
