// Package sighash implements the random-hyperplane LSH family for
// cosine similarity (Charikar, STOC'02), used by §4.2 of the BayesLSH
// paper: each hash function is a random Gaussian vector r, and
// h(x) = 1 iff dot(r, x) >= 0. For any pair,
//
//	Pr[h(a) = h(b)] = 1 − θ(a, b)/π
//
// where θ is the angle between a and b. RToCosine and CosineToR
// convert between that collision probability and cosine similarity
// (the paper's r2c/c2r functions).
//
// # Signatures and storage
//
// Signatures are packed bit vectors ([]uint64), so comparing hashes is
// XOR + popcount (MatchCount). The package also implements the paper's
// §4.3 storage optimization: Gaussian projection entries are quantized
// to two bytes each, x' = ⌊(x+8)·2¹⁶/16⌋, exploiting that standard
// normal samples essentially never leave (−8, 8); the Exact option
// switches back to float64 projections for ablations.
//
// # Lazy, deterministic hashing
//
// Two family types serve the two access patterns. Family materializes
// all projections up front. BlockFamily generates hash functions in
// blocks (rounded to 64-bit words), materializing a block's
// projections only when some signature first needs it — the paper's
// "each point is only hashed as many times as is necessary" — and
// Store caches per-vector signatures over a BlockFamily, extending
// them block-by-block as verification demands deeper prefixes. Every
// block derives from an independent stream keyed by (seed, feature,
// block), so signatures are bit-identical regardless of which
// goroutine materializes what in which order; Store is safe for
// concurrent use (synchronization via shard.Fill).
//
// # Query hashing
//
// BlockFamily.SignatureN hashes a single out-of-corpus vector against
// the same streams, the entry point of the engine's query-serving
// index: a query equal to a corpus vector hashes to exactly that
// vector's stored signature prefix.
package sighash
