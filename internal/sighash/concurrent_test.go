package sighash

import (
	"sync"
	"testing"

	"bayeslsh/internal/testutil"
)

// TestConcurrentEnsureMatchesSequential fills one store from many
// goroutines with overlapping, ragged depths and checks the signatures
// equal a sequentially filled store bit-for-bit — the store's
// determinism guarantee under the engine's worker pool (and, under
// -race, its synchronization).
func TestConcurrentEnsureMatchesSequential(t *testing.T) {
	c := testutil.SmallTextCorpus(t, 200, 41)
	fam := func() *BlockFamily { return NewBlockFamily(c.Dim, 512, 128, 5) }

	seq := NewStore(c, fam())
	seq.EnsureAll(512)

	par := NewStore(c, fam())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Overlapping ranges and depths across goroutines.
			depth := 128 * (g%4 + 1)
			for id := range par.Sigs() {
				par.Ensure(int32(id), depth)
			}
		}(g)
	}
	wg.Wait()
	par.EnsureAllParallel(512, 4)

	for id := range seq.Sigs() {
		if par.FilledBits(int32(id)) != 512 {
			t.Fatalf("vector %d filled to %d bits", id, par.FilledBits(int32(id)))
		}
		s, p := seq.Sigs()[id], par.Sigs()[id]
		for w := range s {
			if s[w] != p[w] {
				t.Fatalf("vector %d word %d: concurrent %x, sequential %x", id, w, p[w], s[w])
			}
		}
	}
}
