package sighash

import (
	"math"
	"testing"
	"testing/quick"

	"bayeslsh/internal/rng"
	"bayeslsh/internal/vector"
)

func TestQuantizeRoundTripError(t *testing.T) {
	src := rng.New(1)
	worst := 0.0
	for i := 0; i < 100000; i++ {
		x := src.NormFloat64()
		err := math.Abs(Dequantize(Quantize(x)) - x)
		if err > worst {
			worst = err
		}
	}
	// One quantization step is 16/65536 ≈ 0.000244.
	if worst > 16.0/65536+1e-9 {
		t.Errorf("worst quantization error %v exceeds one step", worst)
	}
}

func TestQuantizeClampsOutOfRange(t *testing.T) {
	if Quantize(-9) != 0 {
		t.Error("below-range value not clamped to 0")
	}
	if Quantize(9) != math.MaxUint16 {
		t.Error("above-range value not clamped to max")
	}
	if got := Dequantize(Quantize(0)); math.Abs(got) > 0.001 {
		t.Errorf("Dequantize(Quantize(0)) = %v", got)
	}
}

func TestNewFamilyPanics(t *testing.T) {
	for _, c := range []struct{ dim, bits int }{{dim: 0, bits: 8}, {dim: 8, bits: 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFamily(%d,%d) did not panic", c.dim, c.bits)
				}
			}()
			NewFamily(c.dim, c.bits, 1)
		}()
	}
}

func TestSignatureDeterministic(t *testing.T) {
	v := vector.New([]vector.Entry{{Ind: 1, Val: 0.5}, {Ind: 3, Val: -1.2}, {Ind: 7, Val: 2}})
	a := NewFamily(10, 128, 9).Signature(v)
	b := NewFamily(10, 128, 9).Signature(v)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestScaledVectorSameSignature(t *testing.T) {
	// h(x) depends only on the direction of x.
	f := NewFamily(16, 256, 3)
	v := vector.New([]vector.Entry{{Ind: 0, Val: 1}, {Ind: 5, Val: -2}, {Ind: 9, Val: 0.25}})
	w := v.Clone().Scale(17)
	a, b := f.Signature(v), f.Signature(w)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("positive scaling changed the signature")
		}
	}
}

func TestOppositeVectorFlipsAllBits(t *testing.T) {
	f := NewFamily(16, 192, 4)
	v := vector.New([]vector.Entry{{Ind: 2, Val: 1.5}, {Ind: 7, Val: -0.5}, {Ind: 11, Val: 3}})
	w := v.Clone().Scale(-1)
	a, b := f.Signature(v), f.Signature(w)
	if got := MatchCount(a, b, 0, f.Bits()); got != 0 {
		// Projections exactly at 0 could tie, but that is measure-zero.
		t.Errorf("antipodal vectors agree on %d bits", got)
	}
}

func TestCollisionRateApproximatesAngle(t *testing.T) {
	// Equation in §4.2: Pr[h(a)=h(b)] = 1 − θ/π. Verified over 4096
	// independent hyperplanes for a few planted angles.
	const nbits = 4096
	f := NewFamily(64, nbits, 5)
	src := rng.New(99)
	dense := func() vector.Vector {
		var es []vector.Entry
		for i := 0; i < 64; i++ {
			es = append(es, vector.Entry{Ind: uint32(i), Val: src.NormFloat64()})
		}
		return vector.New(es)
	}
	for trial := 0; trial < 3; trial++ {
		a, b := dense(), dense()
		want := CosineToR(vector.Cosine(a, b))
		got := float64(MatchCount(f.Signature(a), f.Signature(b), 0, nbits)) / nbits
		tol := 4 * math.Sqrt(want*(1-want)/nbits)
		if math.Abs(got-want) > tol {
			t.Errorf("trial %d: collision rate %v, want %v ± %v", trial, got, want, tol)
		}
	}
}

func TestQuantizedMatchesExactFamily(t *testing.T) {
	// The 2-byte storage scheme must agree with exact float projections
	// on essentially every bit (disagreement only when a projection is
	// within quantization error of zero).
	const nbits = 1024
	q := NewFamily(32, nbits, 6)
	e := NewFamily(32, nbits, 6, Exact())
	src := rng.New(123)
	var es []vector.Entry
	for i := 0; i < 32; i++ {
		es = append(es, vector.Entry{Ind: uint32(i), Val: src.NormFloat64()})
	}
	v := vector.New(es)
	agree := MatchCount(q.Signature(v), e.Signature(v), 0, nbits)
	if agree < nbits-8 {
		t.Errorf("quantized and exact families agree on only %d/%d bits", agree, nbits)
	}
}

func TestMatchCountSubrangesAgainstNaive(t *testing.T) {
	src := rng.New(77)
	a := []uint64{src.Uint64(), src.Uint64(), src.Uint64()}
	b := []uint64{src.Uint64(), src.Uint64(), src.Uint64()}
	naive := func(from, to int) int {
		n := 0
		for i := from; i < to; i++ {
			if Bit(a, i) == Bit(b, i) {
				n++
			}
		}
		return n
	}
	cases := [][2]int{{0, 192}, {0, 64}, {64, 128}, {10, 50}, {60, 70}, {0, 1}, {191, 192}, {33, 33}, {100, 180}}
	for _, c := range cases {
		if got, want := MatchCount(a, b, c[0], c[1]), naive(c[0], c[1]); got != want {
			t.Errorf("MatchCount(%d,%d) = %d, want %d", c[0], c[1], got, want)
		}
	}
}

func TestMatchCountPropertyAgainstNaive(t *testing.T) {
	f := func(aw, bw [4]uint64, fromRaw, toRaw uint8) bool {
		a, b := aw[:], bw[:]
		from := int(fromRaw) % 257
		to := int(toRaw) % 257
		if from > to {
			from, to = to, from
		}
		if to > 256 {
			to = 256
		}
		naive := 0
		for i := from; i < to; i++ {
			if Bit(a, i) == Bit(b, i) {
				naive++
			}
		}
		return MatchCount(a, b, from, to) == naive
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMatchCountPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MatchCount beyond signature did not panic")
		}
	}()
	MatchCount([]uint64{0}, []uint64{0}, 0, 65)
}

func TestRCosineTransformsInverse(t *testing.T) {
	for _, c := range []float64{-1, -0.5, 0, 0.3, 0.7, 0.95, 1} {
		if got := RToCosine(CosineToR(c)); math.Abs(got-c) > 1e-12 {
			t.Errorf("r2c(c2r(%v)) = %v", c, got)
		}
	}
	// Known anchors: cosine 0 ↔ r = 0.5; cosine 1 ↔ r = 1.
	if got := CosineToR(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("c2r(0) = %v, want 0.5", got)
	}
	if got := CosineToR(1); math.Abs(got-1) > 1e-12 {
		t.Errorf("c2r(1) = %v, want 1", got)
	}
	if got := CosineToR(5); math.Abs(got-1) > 1e-12 {
		t.Errorf("c2r clamps above: %v", got)
	}
}

func TestSignatureAllAndWords(t *testing.T) {
	f := NewFamily(8, 100, 2)
	if f.Words() != 2 || f.Bits() != 100 || f.Dim() != 8 {
		t.Fatalf("accessors wrong: words=%d bits=%d dim=%d", f.Words(), f.Bits(), f.Dim())
	}
	c := &vector.Collection{Dim: 8, Vecs: []vector.Vector{
		vector.New([]vector.Entry{{Ind: 1, Val: 1}}),
		vector.New([]vector.Entry{{Ind: 2, Val: -1}, {Ind: 3, Val: 0.5}}),
	}}
	sigs := f.SignatureAll(c)
	if len(sigs) != 2 || len(sigs[0]) != 2 {
		t.Fatalf("SignatureAll shape: %d x %d", len(sigs), len(sigs[0]))
	}
}
