// Snapshot codec of the bit-signature store: the hash family is fully
// determined by (dim, maxBits, blockBits, seed, quantization), all of
// which the engine re-derives from its config at load, so a snapshot
// carries only what cannot be recomputed cheaply — each vector's fill
// depth and the filled signature words. Restoring them makes a loaded
// store bit-identical to the one that was saved: already-filled
// prefixes are served as-is and deeper demands lazily extend them from
// the same (seed, feature, block) streams.

package sighash

import (
	"bayeslsh/internal/snapshot"
)

// WriteSnapshot serializes the per-vector fill state: fill depth in
// bits, then the filled prefix as packed words.
func (s *Store) WriteSnapshot(w *snapshot.Writer) {
	w.U64(uint64(len(s.sigs)))
	for id := range s.sigs {
		fill := s.fill.Filled(int32(id))
		w.U32(uint32(fill))
		w.U64s(s.sigs[id][:(fill+63)/64])
	}
}

// ReadSnapshot restores fill state written by WriteSnapshot into a
// freshly constructed store over the same collection and family. It
// must run before the store is shared with concurrent readers.
func (s *Store) ReadSnapshot(r *snapshot.Reader) error {
	n := r.Len(12) // per vector: fill depth + word-count prefix
	if r.Err() == nil && n != len(s.sigs) {
		return snapshot.Failf(r, "store has %d vectors, snapshot %d", len(s.sigs), n)
	}
	for id := 0; id < n; id++ {
		fill := int(r.U32())
		words := r.U64s()
		if r.Err() != nil {
			break
		}
		if fill < 0 || fill > s.fam.maxBits || len(words) != (fill+63)/64 {
			return snapshot.Failf(r, "vector %d: fill %d with %d words", id, fill, len(words))
		}
		copy(s.sigs[id], words)
		s.fill.Restore(int32(id), fill)
	}
	return r.Err()
}
