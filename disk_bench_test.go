// Benchmarks of disk-resident serving: the open-versus-load cost a
// serving process pays at startup, and steady-state query latency
// from the mapping versus the heap. Run with:
//
//	go test -bench 'OpenVsLoad|MmapQuery' -benchmem
//
// CI parses the output into BENCH_disk.json. The acceptance criterion
// of the disk subsystem shows up in OpenVsLoad's B/op column:
// OpenIndexFile allocates a few row-header slices over the mapping
// while ReadIndex materializes the whole corpus — orders of magnitude
// apart on the same snapshot, and the gap grows with corpus size.
// docs/PERSISTENCE.md and docs/TUNING.md quote a reference run.
package bayeslsh_test

import (
	"os"
	"path/filepath"
	"testing"

	"bayeslsh"
)

// benchDiskPaths saves the warmed reference index once in both
// formats and returns the two snapshot paths.
func benchDiskPaths(b *testing.B) (v1, v3 string) {
	b.Helper()
	ix, ds := benchSnapshotIndex(b)
	_ = ds
	dir := b.TempDir()
	v1 = filepath.Join(dir, "index.snap")
	if err := ix.SaveFile(v1); err != nil {
		b.Fatal(err)
	}
	v3 = filepath.Join(dir, "index.v3.snap")
	if err := ix.SaveFileV3(v3); err != nil {
		b.Fatal(err)
	}
	return v1, v3
}

// BenchmarkOpenVsLoad measures serving-process startup: mmap-opening
// the v3 snapshot against heap-loading the v1 snapshot of the same
// index. Open's time and bytes stay flat as the corpus grows (header
// page, directory, metadata, row headers); Load's scale with it.
func BenchmarkOpenVsLoad(b *testing.B) {
	v1, v3 := benchDiskPaths(b)
	fi, err := os.Stat(v3)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Open", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ix, err := bayeslsh.OpenIndexFile(v3)
			if err != nil {
				b.Fatal(err)
			}
			ix.Close()
		}
		b.ReportMetric(float64(fi.Size()), "snapshot-bytes")
	})
	b.Run("Load", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := bayeslsh.LoadFile(v1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMmapQuery measures steady-state point-query latency served
// from the mapping against the same index heap-loaded — the rent paid
// for the O(pages touched) startup, once the touched pages are warm.
func BenchmarkMmapQuery(b *testing.B) {
	v1, v3 := benchDiskPaths(b)
	ds, err := bayeslsh.Synthetic("RCV1-sim")
	if err != nil {
		b.Fatal(err)
	}
	ds = ds.TfIdf().Normalize()
	run := func(b *testing.B, ix *bayeslsh.Index) {
		b.Helper()
		// Warm the first-touch verification outside the timed region.
		if _, err := ix.Query(ds.Vector(0), bayeslsh.QueryOptions{}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ix.Query(ds.Vector(i%ds.Len()), bayeslsh.QueryOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("Disk", func(b *testing.B) {
		ix, err := bayeslsh.OpenIndexFile(v3)
		if err != nil {
			b.Fatal(err)
		}
		defer ix.Close()
		run(b, ix)
	})
	b.Run("Heap", func(b *testing.B) {
		ix, err := bayeslsh.LoadFile(v1)
		if err != nil {
			b.Fatal(err)
		}
		run(b, ix)
	})
}
