package bayeslsh

import (
	"bytes"
	"math"
	"testing"
)

// testDataset builds a small weighted corpus with planted similar
// pairs through the public API only.
func testDataset(t *testing.T) *Dataset {
	t.Helper()
	ds, err := Synthetic("RCV1-sim")
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// smallDataset trims the synthetic corpus for brute-force comparison.
func smallDataset(t *testing.T, n int) *Dataset {
	t.Helper()
	full := testDataset(t)
	ds := NewDataset(full.Dim())
	var buf bytes.Buffer
	if _, err := full.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	reread, err := ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ds.c.Vecs = reread.c.Vecs[:n]
	return ds
}

func keyset(rs []Result) map[[2]int]float64 {
	m := make(map[[2]int]float64, len(rs))
	for _, r := range rs {
		a, b := r.A, r.B
		if a > b {
			a, b = b, a
		}
		m[[2]int{a, b}] = r.Sim
	}
	return m
}

func recallOf(got, want []Result) float64 {
	if len(want) == 0 {
		return 1
	}
	gm := keyset(got)
	hit := 0
	for k := range keyset(want) {
		if _, ok := gm[k]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}

func TestDatasetBuilderRoundTrip(t *testing.T) {
	ds := NewDataset(10)
	id0 := ds.Add(map[uint32]float64{1: 2, 3: 1})
	id1 := ds.AddSet([]uint32{1, 3, 5})
	if id0 != 0 || id1 != 1 || ds.Len() != 2 {
		t.Fatalf("builder ids: %d %d len %d", id0, id1, ds.Len())
	}
	if ds.VectorLen(1) != 3 {
		t.Errorf("VectorLen = %d", ds.VectorLen(1))
	}
	if got := ds.Similarity(Jaccard, 0, 1); got != 2.0/3 {
		t.Errorf("Jaccard = %v", got)
	}
	st := ds.Stats()
	if st.Vectors != 2 || st.Dim != 10 || st.Nnz != 5 {
		t.Errorf("Stats = %+v", st)
	}
	var buf bytes.Buffer
	if _, err := ds.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 || back.Similarity(Jaccard, 0, 1) != 2.0/3 {
		t.Error("round trip changed the dataset")
	}
}

func TestSyntheticNamesAndErrors(t *testing.T) {
	names := SyntheticNames()
	if len(names) != 6 {
		t.Fatalf("expected 6 synthetic corpora, got %v", names)
	}
	if _, err := Synthetic("no-such-corpus"); err == nil {
		t.Error("unknown synthetic name accepted")
	}
}

func TestEngineRejectsBadInput(t *testing.T) {
	if _, err := NewEngine(nil, Cosine, EngineConfig{}); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := NewEngine(NewDataset(5), Cosine, EngineConfig{}); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := NewEngine(NewDataset(5), Measure(9), EngineConfig{}); err == nil {
		t.Error("unknown measure accepted")
	}
	ds := NewDataset(5)
	ds.AddSet([]uint32{1})
	eng, err := NewEngine(ds, Cosine, EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Search(Options{Algorithm: AllPairs, Threshold: 0}); err == nil {
		t.Error("threshold 0 accepted")
	}
	if _, err := eng.Search(Options{Algorithm: Algorithm(42), Threshold: 0.5}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := eng.Search(Options{Algorithm: PPJoin, Threshold: 0.5}); err == nil {
		t.Error("PPJoin accepted for weighted cosine")
	}
}

func TestAllAlgorithmsAgreeWithBruteForceCosine(t *testing.T) {
	ds := smallDataset(t, 400).TfIdf().Normalize()
	eng, err := NewEngine(ds, Cosine, EngineConfig{Seed: 7, SignatureBits: 1024})
	if err != nil {
		t.Fatal(err)
	}
	th := 0.7
	truth, err := eng.Search(Options{Algorithm: BruteForce, Threshold: th})
	if err != nil {
		t.Fatal(err)
	}
	if len(truth.Results) < 10 {
		t.Fatalf("corpus too sparse: %d true pairs", len(truth.Results))
	}
	for _, alg := range Algorithms(Cosine) {
		out, err := eng.Search(Options{Algorithm: alg, Threshold: th})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		rec := recallOf(out.Results, truth.Results)
		if rec < 0.9 {
			t.Errorf("%v: recall %v (found %d of %d)", alg, rec, len(out.Results), len(truth.Results))
		}
		// Exact pipelines must agree perfectly.
		if alg == AllPairs {
			if rec != 1 || len(out.Results) != len(truth.Results) {
				t.Errorf("AllPairs not exact: %d vs %d pairs", len(out.Results), len(truth.Results))
			}
		}
	}
}

func TestAllAlgorithmsAgreeWithBruteForceJaccard(t *testing.T) {
	ds := smallDataset(t, 400).Binarize()
	eng, err := NewEngine(ds, Jaccard, EngineConfig{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	th := 0.4
	truth, err := eng.Search(Options{Algorithm: BruteForce, Threshold: th})
	if err != nil {
		t.Fatal(err)
	}
	if len(truth.Results) < 10 {
		t.Fatalf("corpus too sparse: %d true pairs", len(truth.Results))
	}
	for _, alg := range Algorithms(Jaccard) {
		out, err := eng.Search(Options{Algorithm: alg, Threshold: th})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if rec := recallOf(out.Results, truth.Results); rec < 0.9 {
			t.Errorf("%v: recall %v", alg, rec)
		}
		if alg == AllPairs || alg == PPJoin {
			if len(out.Results) != len(truth.Results) {
				t.Errorf("%v not exact: %d vs %d pairs", alg, len(out.Results), len(truth.Results))
			}
		}
	}
}

func TestAllAlgorithmsAgreeWithBruteForceBinaryCosine(t *testing.T) {
	ds := smallDataset(t, 400)
	eng, err := NewEngine(ds, BinaryCosine, EngineConfig{Seed: 9, SignatureBits: 1024})
	if err != nil {
		t.Fatal(err)
	}
	th := 0.7
	truth, err := eng.Search(Options{Algorithm: BruteForce, Threshold: th})
	if err != nil {
		t.Fatal(err)
	}
	if len(truth.Results) < 10 {
		t.Fatalf("corpus too sparse: %d true pairs", len(truth.Results))
	}
	for _, alg := range Algorithms(BinaryCosine) {
		out, err := eng.Search(Options{Algorithm: alg, Threshold: th})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if rec := recallOf(out.Results, truth.Results); rec < 0.9 {
			t.Errorf("%v: recall %v", alg, rec)
		}
	}
}

func TestBayesLSHEstimateAccuracy(t *testing.T) {
	ds := smallDataset(t, 400).TfIdf().Normalize()
	eng, err := NewEngine(ds, Cosine, EngineConfig{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng.Search(Options{Algorithm: LSHBayesLSH, Threshold: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) == 0 {
		t.Fatal("no results")
	}
	bad := 0
	for _, r := range out.Results {
		if math.Abs(ds.Similarity(Cosine, r.A, r.B)-r.Sim) >= 0.05 {
			bad++
		}
	}
	if frac := float64(bad) / float64(len(out.Results)); frac > 0.15 {
		t.Errorf("%v of estimates off by >= δ", frac)
	}
}

func TestLiteReportsExactSimilarities(t *testing.T) {
	ds := smallDataset(t, 300).TfIdf().Normalize()
	eng, err := NewEngine(ds, Cosine, EngineConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng.Search(Options{Algorithm: AllPairsBayesLSHLite, Threshold: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range out.Results {
		if got := ds.Similarity(Cosine, r.A, r.B); math.Abs(got-r.Sim) > 1e-12 {
			t.Fatalf("Lite similarity %v != exact %v", r.Sim, got)
		}
		if r.Sim < 0.7 {
			t.Fatalf("Lite emitted sub-threshold pair: %v", r)
		}
	}
}

func TestOutputAccounting(t *testing.T) {
	ds := smallDataset(t, 300).TfIdf().Normalize()
	eng, err := NewEngine(ds, Cosine, EngineConfig{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng.Search(Options{Algorithm: LSHBayesLSH, Threshold: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if out.Candidates <= 0 {
		t.Error("no candidates recorded")
	}
	if out.Pruned+len(out.Results) != out.Candidates {
		t.Errorf("accounting: pruned %d + results %d != candidates %d",
			out.Pruned, len(out.Results), out.Candidates)
	}
	if out.Total < out.VerifyTime || out.Total < out.CandGenTime {
		t.Errorf("total %v below its parts (%v, %v)", out.Total, out.VerifyTime, out.CandGenTime)
	}
	if len(out.SurvivorsByRound) == 0 {
		t.Error("no pruning trace recorded")
	}
	// Second search reuses cached signatures: HashTime must be zero.
	out2, err := eng.Search(Options{Algorithm: LSHBayesLSH, Threshold: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if out2.HashTime != 0 {
		t.Errorf("second search recomputed hashes: %v", out2.HashTime)
	}
}

func TestAlgorithmsListAndStrings(t *testing.T) {
	if len(Algorithms(Cosine)) != 7 {
		t.Errorf("cosine algorithms: %v", Algorithms(Cosine))
	}
	if len(Algorithms(Jaccard)) != 8 {
		t.Errorf("jaccard algorithms: %v", Algorithms(Jaccard))
	}
	for _, a := range append(Algorithms(Jaccard), BruteForce) {
		if a.String() == "" {
			t.Errorf("algorithm %d has empty name", int(a))
		}
	}
	for _, m := range []Measure{Cosine, Jaccard, BinaryCosine, Measure(9)} {
		if m.String() == "" {
			t.Errorf("measure %d has empty name", int(m))
		}
	}
	if !AllPairsBayesLSH.UsesBayes() || AllPairs.UsesBayes() {
		t.Error("UsesBayes misclassifies")
	}
}

func TestOneBitMinhashOption(t *testing.T) {
	ds := smallDataset(t, 400).Binarize()
	eng, err := NewEngine(ds, Jaccard, EngineConfig{Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	th := 0.5
	truth, err := eng.Search(Options{Algorithm: BruteForce, Threshold: th})
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng.Search(Options{
		Algorithm: AllPairsBayesLSH, Threshold: th, OneBitMinhash: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec := recallOf(out.Results, truth.Results); rec < 0.9 {
		t.Errorf("1-bit minhash recall %v", rec)
	}
	bad := 0
	for _, r := range out.Results {
		if math.Abs(ds.Similarity(Jaccard, r.A, r.B)-r.Sim) >= 0.05 {
			bad++
		}
	}
	if len(out.Results) > 0 {
		if frac := float64(bad) / float64(len(out.Results)); frac > 0.2 {
			t.Errorf("1-bit estimates: %v off by >= δ", frac)
		}
	}
	// Lite variant works too.
	lite, err := eng.Search(Options{
		Algorithm: AllPairsBayesLSHLite, Threshold: th, OneBitMinhash: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec := recallOf(lite.Results, truth.Results); rec < 0.9 {
		t.Errorf("1-bit Lite recall %v", rec)
	}
}

func TestExactProjectionsOption(t *testing.T) {
	ds := smallDataset(t, 200).TfIdf().Normalize()
	q, err := NewEngine(ds, Cosine, EngineConfig{Seed: 13, SignatureBits: 512})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(ds, Cosine, EngineConfig{Seed: 13, SignatureBits: 512, ExactProjections: true})
	if err != nil {
		t.Fatal(err)
	}
	oq, err := q.Search(Options{Algorithm: LSHBayesLSH, Threshold: 0.7, MaxHashes: 512})
	if err != nil {
		t.Fatal(err)
	}
	oe, err := e.Search(Options{Algorithm: LSHBayesLSH, Threshold: 0.7, MaxHashes: 512})
	if err != nil {
		t.Fatal(err)
	}
	// The 2-byte quantization must not change results materially.
	if rec := recallOf(oq.Results, oe.Results); rec < 0.95 {
		t.Errorf("quantized vs exact projections recall %v", rec)
	}
}
