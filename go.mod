module bayeslsh

go 1.24
