package bayeslsh

import (
	"fmt"
	"io"

	"bayeslsh/internal/dataset"
	"bayeslsh/internal/exact"
	"bayeslsh/internal/vector"
)

// Dataset is a corpus of sparse vectors over a fixed feature space.
// Build one with NewDataset and Add/AddSet, load one with ReadDataset,
// or synthesize one with Synthetic.
type Dataset struct {
	c *vector.Collection
}

// NewDataset returns an empty dataset over dim features.
func NewDataset(dim int) *Dataset {
	return &Dataset{c: &vector.Collection{Dim: dim}}
}

// Add appends a vector given as a feature→weight map and returns its
// id. Zero weights are dropped.
func (d *Dataset) Add(features map[uint32]float64) int {
	d.c.Vecs = append(d.c.Vecs, vector.FromMap(features))
	return len(d.c.Vecs) - 1
}

// AddSet appends a binary vector given as a set of feature indices
// and returns its id.
func (d *Dataset) AddSet(indices []uint32) int {
	m := make(map[uint32]float64, len(indices))
	for _, i := range indices {
		m[i] = 1
	}
	return d.Add(m)
}

// Len returns the number of vectors.
func (d *Dataset) Len() int { return len(d.c.Vecs) }

// Slice returns a dataset over the same feature space holding vectors
// [lo, hi) of d, sharing their storage — vector i of the slice is
// vector lo+i of d, bit-identical. Slicing is how a corpus is
// partitioned across shards (see internal/cluster): the slices are
// views, so partitioning copies no vector data. Out-of-range bounds
// panic, matching Go slicing.
func (d *Dataset) Slice(lo, hi int) *Dataset {
	return &Dataset{c: &vector.Collection{Dim: d.c.Dim, Vecs: d.c.Vecs[lo:hi:hi]}}
}

// Dim returns the feature-space dimensionality.
func (d *Dataset) Dim() int { return d.c.Dim }

// VectorLen returns the number of non-zero features of vector id.
func (d *Dataset) VectorLen(id int) int { return d.c.Vecs[id].Len() }

// TfIdf returns a new dataset re-weighted by tf·idf (idf = ln(N/df);
// ubiquitous features are dropped), the paper's preprocessing for both
// text and graph corpora.
func (d *Dataset) TfIdf() *Dataset { return &Dataset{c: d.c.TfIdf()} }

// Normalize scales every vector to unit Euclidean norm in place and
// returns d. Required before cosine searches.
func (d *Dataset) Normalize() *Dataset {
	d.c.Normalize()
	return d
}

// Binarize returns a new dataset with all weights set to 1.
func (d *Dataset) Binarize() *Dataset { return &Dataset{c: d.c.Binarize()} }

// Similarity computes the exact similarity of vectors i and j under m.
func (d *Dataset) Similarity(m Measure, i, j int) float64 {
	return toExactMeasure(m).Sim(d.c.Vecs[i], d.c.Vecs[j])
}

// Stats summarizes the corpus as in Table 1 of the paper.
type Stats struct {
	Vectors int
	Dim     int
	AvgLen  float64
	Nnz     int64
}

// Stats returns corpus statistics.
func (d *Dataset) Stats() Stats {
	s := d.c.Stats()
	return Stats{Vectors: s.Vectors, Dim: s.Dim, AvgLen: s.AvgLen, Nnz: s.Nnz}
}

// WriteTo serializes the dataset in a plain-text format readable by
// ReadDataset.
func (d *Dataset) WriteTo(w io.Writer) (int64, error) { return d.c.WriteTo(w) }

// ReadDataset parses the format produced by WriteTo.
func ReadDataset(r io.Reader) (*Dataset, error) {
	c, err := vector.Read(r)
	if err != nil {
		return nil, err
	}
	return &Dataset{c: c}, nil
}

// SyntheticNames lists the built-in synthetic corpora, scaled-down
// analogues of the six datasets in Table 1 of the paper.
func SyntheticNames() []string {
	specs := dataset.Standard()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// Synthetic generates one of the built-in corpora by name (see
// SyntheticNames). The result carries raw term-frequency/adjacency
// weights; apply TfIdf().Normalize() for weighted cosine experiments
// or Binarize() for set experiments.
func Synthetic(name string) (*Dataset, error) {
	spec, err := dataset.ByName(name)
	if err != nil {
		return nil, err
	}
	c, err := dataset.Generate(spec)
	if err != nil {
		return nil, err
	}
	return &Dataset{c: c}, nil
}

func toExactMeasure(m Measure) exact.Measure {
	switch m {
	case Cosine:
		return exact.Cosine
	case Jaccard:
		return exact.Jaccard
	case BinaryCosine:
		return exact.BinaryCosine
	default:
		panic(fmt.Sprintf("bayeslsh: unknown measure %v", m))
	}
}
