package bayeslsh

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"bayeslsh/internal/allpairs"
	"bayeslsh/internal/diskidx"
	"bayeslsh/internal/lshindex"
	"bayeslsh/internal/minhash"
	"bayeslsh/internal/planner"
	"bayeslsh/internal/sighash"
	"bayeslsh/internal/snapshot"
	"bayeslsh/internal/vector"
)

// Disk-servable snapshots (format version 3) serve queries in place.
// Where a v1/v2 snapshot is decoded front to back into heap structures
// at load, a v3 file is a page-aligned section container
// (internal/diskidx) whose sections are laid out exactly the way
// queries read them — the corpus as flat columns, signatures as
// fixed-stride matrices, band tables as sorted bucket runs, AllPairs
// postings delta+varint compressed — so OpenIndexFile maps the file,
// lays read-only views over the mapping, and answers
// Query/TopK/QueryBatch bit-identically to the index that wrote it
// while the OS pages corpus bytes in on demand. Opening allocates
// section directories and per-row slice headers, never a copy of the
// corpus; each section's checksum (plus a deep structural walk) is
// verified once, when the first query touches it. See
// docs/PERSISTENCE.md for the layout and docs/TUNING.md for the
// heap-vs-mmap trade-off.

// DiskSnapshotVersion is the format version SaveFileV3 writes and
// OpenIndexFile reads — the disk-servable container of
// internal/diskidx.
const DiskSnapshotVersion = diskidx.Version

// ErrDiskBacked reports a write of an index that serves from a mapped
// v3 file: its snapshot already exists — the file it is serving from —
// and its candidate structures have no heap form to re-encode. Copy
// the file instead.
var ErrDiskBacked = errors.New("bayeslsh: index serves from a disk snapshot; its file is the snapshot (copy it instead)")

// diskState ties a disk-backed Index to its mapped file: the section
// handles a query may touch, each guarded by a once-only
// checksum-plus-deep-validation step, and the close latch.
type diskState struct {
	f *diskidx.File

	vectors *diskSection
	sigBits *diskSection
	sigMin  *diskSection
	cands   *diskSection // band tables or AllPairs postings; nil for BruteForce
	all     []*diskSection

	closeOnce sync.Once
	closeErr  error
}

// diskSection is the first-touch state of one mapped section: the
// checksum pass and the structure-specific deep walk run once, and
// every later touch returns the cached verdict.
type diskSection struct {
	lz   *diskidx.Lazy
	deep func() error // full structural walk; nil when open validated everything
	once sync.Once
	err  error
}

func (s *diskSection) touch() error {
	if s == nil {
		return nil
	}
	s.once.Do(func() {
		if err := s.lz.Verify(); err != nil {
			s.err = fmt.Errorf("%w: %v", ErrSnapshotChecksum, err)
			return
		}
		if s.deep != nil {
			if err := s.deep(); err != nil {
				s.err = fmt.Errorf("%w: %v", ErrSnapshotFormat, err)
			}
		}
	})
	return s.err
}

func (d *diskState) add(l *diskidx.Lazy, deep func() error) *diskSection {
	s := &diskSection{lz: l, deep: deep}
	d.all = append(d.all, s)
	return s
}

// ready verifies the sections a query of the given shape is about to
// read — the corpus, the candidate structure, and (for threshold
// queries, which verify with signatures) the signature matrices the
// verifier compares against. Heap-resident indexes return nil
// immediately.
func (ix *Index) ready(topK bool) error {
	d := ix.disk
	if d == nil {
		return nil
	}
	if err := d.vectors.touch(); err != nil {
		return err
	}
	if err := d.cands.touch(); err != nil {
		return err
	}
	if topK {
		return nil // exact similarities only; corpus signatures unread
	}
	if ix.verifyBits > 0 {
		if err := d.sigBits.touch(); err != nil {
			return err
		}
	}
	// The 1-bit pipeline verifies against a heap-packed copy built at
	// open (the section was verified then); only the plain minhash
	// verifiers read the mapped rows.
	if ix.verifyMin > 0 && !ix.packOneBit {
		if err := d.sigMin.touch(); err != nil {
			return err
		}
	}
	return nil
}

// readyAll verifies every section — the merge path's contract, which
// adopts signature prefixes and aliases corpus bytes wholesale rather
// than reading along one query shape.
func (ix *Index) readyAll() error {
	d := ix.disk
	if d == nil {
		return nil
	}
	for _, s := range d.all {
		if err := s.touch(); err != nil {
			return err
		}
	}
	return nil
}

// Close releases the mapping of a disk-backed index (a no-op for
// heap-resident ones). No query may be in flight, and no index derived
// from this one — a LiveFrom live index, including any generation it
// merged, which aliases the mapped corpus bytes — may still be
// serving. Close is idempotent.
func (ix *Index) Close() error {
	d := ix.disk
	if d == nil {
		return nil
	}
	d.closeOnce.Do(func() { d.closeErr = d.f.Close() })
	return d.closeErr
}

// IndexMemStats reports an index's relationship to its backing
// snapshot file.
type IndexMemStats struct {
	// DiskBacked is true for an index opened with OpenIndexFile; the
	// byte counts below are zero otherwise.
	DiskBacked bool
	// MappedBytes is the size of the mapped snapshot file.
	MappedBytes int64
	// ResidentBytes estimates how much of the mapping is materialized
	// in RAM (the OS page-residency answer where available, otherwise
	// the bytes of every section touched so far).
	ResidentBytes int64
}

// MemStats reports the mapped and resident byte counts of a
// disk-backed index; the zero value for a heap-resident one.
func (ix *Index) MemStats() IndexMemStats {
	d := ix.disk
	if d == nil {
		return IndexMemStats{}
	}
	return IndexMemStats{
		DiskBacked:    true,
		MappedBytes:   d.f.MappedBytes(),
		ResidentBytes: d.f.ResidentBytes(),
	}
}

// MemStats reports the current base segment's MemStats: after a merge
// folds the delta into a heap base it reports DiskBacked false, even
// though the merged corpus may still alias mapped bytes (the mapping
// stays open regardless; see OpenLiveFile).
func (li *LiveIndex) MemStats() IndexMemStats {
	return li.gen.Load().base.MemStats()
}

// fillDepths computes the uniform signature depths a v3 snapshot
// persists: deep enough for banding and for the deepest verifier
// prefix the resolved options can demand, so that a disk-served index
// never needs to hash a corpus vector. The verifier depths use the
// unrounded budget clamp (the verifier constructors re-derive their
// rounded working depth from the same clamp at open, so the persisted
// depth always covers it). Bit depths are word-aligned for the
// fixed-stride layout.
func (ix *Index) fillDepths() (bitFill, minFill int) {
	e, o := ix.engine(), ix.opts
	bitFill, minFill = ix.bandBits, ix.bandMin
	switch o.Algorithm {
	case AllPairsBayesLSH, AllPairsBayesLSHLite, LSHBayesLSH, LSHBayesLSHLite:
		if e.measure == Jaccard {
			minFill = max(minFill, min(o.MaxHashes, e.minSigStore().MaxHashes()))
		} else {
			bitFill = max(bitFill, min(o.MaxHashes, e.bitSigStore().MaxBits()))
		}
	case LSHApprox:
		if e.measure == Jaccard {
			minFill = max(minFill, ix.approxN)
		} else {
			bitFill = max(bitFill, ix.approxN)
		}
	}
	bitFill = (bitFill + 63) / 64 * 64
	return bitFill, minFill
}

// SaveFileV3 writes the index as a disk-servable (version 3) snapshot
// at path, atomically under the SaveFile contract. The write is the
// expensive side of the trade: every corpus signature is filled to the
// uniform persisted depth first (a disk-served index cannot hash), and
// the candidate structures are re-laid in probe order. An index that
// itself serves from a v3 file returns ErrDiskBacked — its file is the
// snapshot; copy it.
func (ix *Index) SaveFileV3(path string) error {
	if ix.disk != nil {
		return ErrDiskBacked
	}
	e := ix.engine()
	bitFill, minFill := ix.fillDepths()
	if bitFill > 0 {
		e.bitSigStore().EnsureAllParallel(bitFill, e.workers())
	}
	if minFill > 0 {
		e.minSigStore().EnsureAllParallel(minFill, e.workers())
	}
	bits, _ := ix.bits.(*lshindex.BitsTables)
	mins, _ := ix.mins.(*lshindex.MinhashTables)
	ap, _ := ix.ap.(*allpairs.Index)

	f, err := os.CreateTemp(filepath.Dir(path), ".snap-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	mode := os.FileMode(0o644)
	if fi, err := os.Stat(path); err == nil {
		mode = fi.Mode().Perm()
	}
	werr := f.Chmod(mode)
	if werr == nil {
		fw := diskidx.NewFileWriter(f)
		fw.Section(sectMeta, func(sw *snapshot.Writer) {
			ix.writeMeta(sw)
			sw.U32(uint32(bitFill))
			sw.U32(uint32(minFill))
		})
		fw.Section(sectVectors, e.ds.c.WriteFlat)
		if bitFill > 0 {
			fw.Section(sectBitStore, func(sw *snapshot.Writer) {
				e.bitSigStore().WriteFixedSection(sw, bitFill)
			})
		}
		if minFill > 0 {
			fw.Section(sectMinStore, func(sw *snapshot.Writer) {
				e.minSigStore().WriteFixedSection(sw, minFill)
			})
		}
		if bits != nil {
			fw.Section(sectBitTables, bits.WriteFixedSection)
		}
		if mins != nil {
			fw.Section(sectMinhashTables, mins.WriteFixedSection)
		}
		if ap != nil {
			fw.Section(sectAllPairs, ap.WriteFixedSection)
		}
		werr = fw.Finish()
	}
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return werr
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// OpenIndexFile opens a disk-servable (version 3) snapshot written by
// SaveFileV3 and returns a read-only Index serving from the mapping
// (or, under the apss_nommap build tag and on platforms without mmap,
// from once-per-section preads). Opening reads the section directory
// and the scalar metadata; corpus bytes, signatures and postings stay
// on disk until queries touch them, and each section is
// checksum-verified and structurally validated exactly once, at that
// first touch — a failure surfaces on the query as
// ErrSnapshotChecksum or ErrSnapshotFormat. Results are bit-identical
// to the saving index and to a heap load of the same corpus and
// options.
//
// The returned index serves queries and LiveFrom but cannot be
// re-saved (ErrDiskBacked) — its file is the snapshot. Call Close when
// no query or derived live index needs it anymore.
//
// Errors follow ReadIndex: ErrSnapshotFormat, ErrSnapshotVersion
// (naming the loader for v1/v2 files), ErrSnapshotChecksum.
func OpenIndexFile(path string) (*Index, error) {
	f, err := diskidx.Open(path)
	if err != nil {
		return nil, mapDiskOpenErr(err)
	}
	ix, err := openDisk(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return ix, nil
}

// mapDiskOpenErr translates container-open failures to the root
// package's snapshot error taxonomy.
func mapDiskOpenErr(err error) error {
	var ve *diskidx.VersionError
	if errors.As(err, &ve) {
		switch ve.Found {
		case SnapshotVersion:
			return fmt.Errorf("%w: found version %d (a base-index snapshot); load it with ReadIndex or LoadFile",
				ErrSnapshotVersion, ve.Found)
		case LiveSnapshotVersion:
			return fmt.Errorf("%w: found version %d (a live-index snapshot); load it with ReadLiveIndex or LoadLiveFile",
				ErrSnapshotVersion, ve.Found)
		default:
			return fmt.Errorf("%w: found version %d; this build reads versions %d (ReadIndex/LoadFile), %d (ReadLiveIndex/LoadLiveFile) and %d (OpenIndexFile)",
				ErrSnapshotVersion, ve.Found, SnapshotVersion, LiveSnapshotVersion, DiskSnapshotVersion)
		}
	}
	if errors.Is(err, snapshot.ErrCorrupt) {
		return fmt.Errorf("%w: %v", ErrSnapshotFormat, err)
	}
	return err
}

// openDisk assembles a servable Index over an open v3 container. It
// mirrors decodeIndex's wiring — same engine construction, same
// rewire — with views over the mapping in place of decoded heap
// structures. Only the metadata is verified here; every bulk section
// gets structural bounds checks now (so no view can index outside the
// mapping) and its checksum plus deep walk on first touch.
func openDisk(f *diskidx.File) (*Index, error) {
	formatf := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrSnapshotFormat, fmt.Sprintf(format, args...))
	}
	for _, s := range f.Sections() {
		if s.Tag < sectMeta || s.Tag > sectAllPairs {
			return nil, formatf("unknown section tag %d", s.Tag)
		}
	}

	// Metadata: the one eagerly-verified section, and the only one the
	// open path trusts byte-for-byte.
	ml, ok := f.Section(sectMeta)
	if !ok {
		return nil, formatf("no meta section")
	}
	if err := ml.Verify(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotChecksum, err)
	}
	mb, err := ml.Raw()
	if err != nil {
		return nil, formatf("meta: %v", err)
	}
	mr := snapshot.NewReader(mb)
	meta, err := readMeta(mr)
	if err != nil {
		return nil, formatf("meta: %v", err)
	}
	bitFill, minFill := int(mr.U32()), int(mr.U32())
	if err := mr.Err(); err != nil {
		return nil, formatf("meta: %v", err)
	}
	if mr.Remaining() != 0 {
		return nil, formatf("meta: %d trailing bytes", mr.Remaining())
	}
	if bitFill > maxSnapshotHashes || bitFill%64 != 0 || minFill > maxSnapshotHashes {
		return nil, formatf("signature fill depths %d/%d out of range", bitFill, minFill)
	}

	// Corpus: slice headers over the mapped columns. The set measures
	// binarize the corpus inside NewEngine — dereferencing every vector
	// byte right now — so for them the section's first touch is here;
	// for Cosine it stays with the first query.
	vl, ok := f.Section(sectVectors)
	if !ok {
		return nil, formatf("no vector section")
	}
	vb, err := vl.Raw()
	if err != nil {
		return nil, formatf("vectors: %v", err)
	}
	coll, err := vector.OpenFlat(vb)
	if err != nil {
		return nil, formatf("vectors: %v", err)
	}
	n := len(coll.Vecs)

	d := &diskState{f: f}
	d.vectors = d.add(vl, coll.Validate)
	if meta.measure != Cosine {
		if err := d.vectors.touch(); err != nil {
			return nil, err
		}
	}
	eng, err := NewEngine(&Dataset{c: coll}, meta.measure, meta.cfg)
	if err != nil {
		return nil, formatf("%v", err)
	}

	// cstats stays zero for pre-stats v3 files: recomputing would scan
	// (and fault in) the whole mapped corpus, defeating lazy serving.
	ix := &Index{opts: meta.opts, stats: meta.stats, prior: meta.prior, cstats: meta.cstats, disk: d}
	ix.plan = Plan{Pipeline: planner.Pipeline(meta.opts.Algorithm)}
	ix.eng.Store(eng)

	// Signature matrices: fixed stores whose rows alias the mapping,
	// pre-marked filled to the persisted depth — the depth checks below
	// guarantee no serving configuration ever asks deeper (a fixed
	// store has nothing to hash with).
	if l, ok := f.Section(sectBitStore); ok {
		if bitFill == 0 {
			return nil, formatf("bit store section without a declared fill depth")
		}
		b, err := l.Raw()
		if err != nil {
			return nil, formatf("bit store: %v", err)
		}
		sigs, nbits, err := sighash.OpenFixedSection(b)
		if err != nil {
			return nil, formatf("%v", err)
		}
		fam := eng.bitFamily()
		if nbits != bitFill || len(sigs) != n || nbits > fam.MaxBits() {
			return nil, formatf("bit store holds %d vectors × %d bits; meta declares %d × %d (family max %d)",
				len(sigs), nbits, n, bitFill, fam.MaxBits())
		}
		eng.bitStore = sighash.NewFixedStore(fam, sigs, nbits)
		d.sigBits = d.add(l, nil)
	} else if bitFill != 0 {
		return nil, formatf("meta declares %d-bit signatures, no bit store section", bitFill)
	}
	if l, ok := f.Section(sectMinStore); ok {
		if minFill == 0 {
			return nil, formatf("minhash store section without a declared fill depth")
		}
		b, err := l.Raw()
		if err != nil {
			return nil, formatf("minhash store: %v", err)
		}
		sigs, depth, err := minhash.OpenFixedSection(b)
		if err != nil {
			return nil, formatf("%v", err)
		}
		fam := eng.minFamily()
		if depth != minFill || len(sigs) != n || depth > fam.Size() {
			return nil, formatf("minhash store holds %d vectors × %d hashes; meta declares %d × %d (family max %d)",
				len(sigs), depth, n, minFill, fam.Size())
		}
		eng.minStore = minhash.NewFixedStore(fam, sigs, depth)
		d.sigMin = d.add(l, nil)
	} else if minFill != 0 {
		return nil, formatf("meta declares %d minhashes, no minhash store section", minFill)
	}

	// Candidate structures: views probing the mapped bytes in place.
	var bitsSect, minsSect, apSect *diskSection
	if l, ok := f.Section(sectBitTables); ok {
		b, err := l.Raw()
		if err != nil {
			return nil, formatf("band tables: %v", err)
		}
		v, err := lshindex.OpenBitsView(b, n)
		if err != nil {
			return nil, formatf("%v", err)
		}
		ix.bits = v
		bitsSect = d.add(l, v.Validate)
	}
	if l, ok := f.Section(sectMinhashTables); ok {
		b, err := l.Raw()
		if err != nil {
			return nil, formatf("band tables: %v", err)
		}
		v, err := lshindex.OpenMinhashView(b, n)
		if err != nil {
			return nil, formatf("%v", err)
		}
		ix.mins = v
		minsSect = d.add(l, v.Validate)
	}
	if l, ok := f.Section(sectAllPairs); ok {
		b, err := l.Raw()
		if err != nil {
			return nil, formatf("AllPairs postings: %v", err)
		}
		v, err := allpairs.OpenView(b)
		if err != nil {
			return nil, formatf("%v", err)
		}
		if v.Len() != n {
			return nil, formatf("AllPairs postings cover %d vectors, corpus has %d", v.Len(), n)
		}
		ix.ap = v
		apSect = d.add(l, v.Validate)
	}
	// cands follows Index.candidates' source priority.
	switch {
	case apSect != nil:
		d.cands = apSect
	case minsSect != nil:
		d.cands = minsSect
	default:
		d.cands = bitsSect
	}

	// The verifier constructors in rewire extend signatures to their
	// working depth via Ensure, which on a fixed store must be a no-op:
	// reject any file whose persisted depth cannot cover the depth the
	// resolved options demand, before rewire trips over it.
	switch o := meta.opts; o.Algorithm {
	case AllPairsBayesLSH, AllPairsBayesLSHLite, LSHBayesLSH, LSHBayesLSHLite:
		if meta.measure == Jaccard {
			if need := min(o.MaxHashes, eng.minSigStore().MaxHashes()); need > minFill {
				return nil, formatf("verifier needs %d minhashes, snapshot persists %d", need, minFill)
			}
			if o.OneBitMinhash {
				// rewire packs every mapped minhash row into the 1-bit heap
				// copy: that read is the section's first touch.
				if err := d.sigMin.touch(); err != nil {
					return nil, err
				}
			}
		} else {
			if need := min(o.MaxHashes, eng.bitSigStore().MaxBits()); need > bitFill {
				return nil, formatf("verifier needs %d signature bits, snapshot persists %d", need, bitFill)
			}
		}
	case LSHApprox:
		if meta.measure == Jaccard {
			if need := min(o.ApproxHashes, eng.minSigStore().MaxHashes()); need > minFill {
				return nil, formatf("estimator needs %d minhashes, snapshot persists %d", need, minFill)
			}
		} else {
			if need := min(o.ApproxHashes, eng.bitSigStore().MaxBits()); need > bitFill {
				return nil, formatf("estimator needs %d signature bits, snapshot persists %d", need, bitFill)
			}
		}
	}

	if err := ix.rewire(); err != nil {
		return nil, formatf("%v", err)
	}
	return ix, nil
}

// OpenLiveFile opens any snapshot version as a live index: a version-2
// file loads exactly like LoadLiveFile, a version-1 file loads as a
// heap base with an empty delta (LoadFile + LiveFrom), and a version-3
// file serves its base from the mapping (OpenIndexFile + LiveFrom) —
// the serving layer's one entry point for restoring a shard from
// whatever snapshot the builder produced. For a version-3 base the
// mapping stays open for the life of the process: merged generations
// alias the mapped corpus bytes, so there is no safe point to unmap
// while the live index exists.
func OpenLiveFile(path string, lc LiveConfig) (*LiveIndex, error) {
	pf, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var pro [len(snapshotMagic) + 4]byte
	_, rerr := io.ReadFull(pf, pro[:])
	pf.Close()
	if rerr != nil || string(pro[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("%w: missing magic", ErrSnapshotFormat)
	}
	switch v := binary.LittleEndian.Uint32(pro[len(snapshotMagic):]); v {
	case SnapshotVersion:
		ix, err := LoadFile(path)
		if err != nil {
			return nil, err
		}
		return LiveFrom(ix, lc)
	case LiveSnapshotVersion:
		return LoadLiveFile(path, lc)
	case DiskSnapshotVersion:
		ix, err := OpenIndexFile(path)
		if err != nil {
			return nil, err
		}
		return LiveFrom(ix, lc)
	default:
		return nil, fmt.Errorf("%w: found version %d; this build reads versions %d (ReadIndex/LoadFile), %d (ReadLiveIndex/LoadLiveFile) and %d (OpenIndexFile)",
			ErrSnapshotVersion, v, SnapshotVersion, LiveSnapshotVersion, DiskSnapshotVersion)
	}
}
