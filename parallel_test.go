package bayeslsh

import (
	"fmt"
	"testing"
)

// parallelTestDataset prepares a trimmed corpus for the measure, as
// the pipelines expect it. 1000 vectors keep every pipeline (including
// BruteForce) fast enough for the race detector while still producing
// tens of thousands of candidates.
func parallelTestDataset(t *testing.T, m Measure) *Dataset {
	t.Helper()
	ds := smallDataset(t, 1000)
	if m == Cosine {
		return ds.TfIdf().Normalize()
	}
	return ds.Binarize()
}

// searchWith runs one search on a fresh engine with the given worker
// count (and default BatchSize unless batch > 0).
func searchWith(t *testing.T, m Measure, opts Options, workers, batch int) *Output {
	t.Helper()
	eng, err := NewEngine(parallelTestDataset(t, m), m, EngineConfig{
		Seed:        42,
		Parallelism: workers,
		BatchSize:   batch,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng.Search(opts)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// requireIdentical fails unless the two outputs carry the same results
// in the same order and agree on every scheduling-independent counter.
func requireIdentical(t *testing.T, seq, par *Output) {
	t.Helper()
	if len(seq.Results) != len(par.Results) {
		t.Fatalf("parallel found %d pairs, sequential %d", len(par.Results), len(seq.Results))
	}
	for i := range seq.Results {
		if seq.Results[i] != par.Results[i] {
			t.Fatalf("result %d: parallel %+v, sequential %+v", i, par.Results[i], seq.Results[i])
		}
	}
	if seq.Candidates != par.Candidates {
		t.Errorf("candidates: parallel %d, sequential %d", par.Candidates, seq.Candidates)
	}
	if seq.Pruned != par.Pruned {
		t.Errorf("pruned: parallel %d, sequential %d", par.Pruned, seq.Pruned)
	}
	if seq.ExactVerified != par.ExactVerified {
		t.Errorf("exact verified: parallel %d, sequential %d", par.ExactVerified, seq.ExactVerified)
	}
	if seq.HashesCompared != par.HashesCompared {
		t.Errorf("hashes compared: parallel %d, sequential %d", par.HashesCompared, seq.HashesCompared)
	}
	if len(seq.SurvivorsByRound) != len(par.SurvivorsByRound) {
		t.Fatalf("survivor rounds: parallel %d, sequential %d",
			len(par.SurvivorsByRound), len(seq.SurvivorsByRound))
	}
	for i := range seq.SurvivorsByRound {
		if seq.SurvivorsByRound[i] != par.SurvivorsByRound[i] {
			t.Errorf("survivors round %d: parallel %d, sequential %d",
				i, par.SurvivorsByRound[i], seq.SurvivorsByRound[i])
		}
	}
}

// TestParallelMatchesSequential verifies the sharded pipeline's core
// guarantee: for a fixed Seed, every pipeline produces identical
// results (pairs, order, similarities, and cost counters) at
// Parallelism 1 and Parallelism 4.
func TestParallelMatchesSequential(t *testing.T) {
	cases := []struct {
		measure Measure
		t       float64
	}{
		{Cosine, 0.7},
		{Jaccard, 0.5},
		{BinaryCosine, 0.7},
	}
	for _, tc := range cases {
		for _, alg := range append(Algorithms(tc.measure), BruteForce) {
			if alg == PPJoin {
				continue // PPJoin has no parallel path yet
			}
			t.Run(fmt.Sprintf("%v/%v", tc.measure, alg), func(t *testing.T) {
				opts := Options{Algorithm: alg, Threshold: tc.t}
				seq := searchWith(t, tc.measure, opts, 1, 0)
				par := searchWith(t, tc.measure, opts, 4, 0)
				requireIdentical(t, seq, par)
			})
		}
	}
}

// TestParallelMatchesSequentialOptions covers the option paths that
// change the verification kernel: 1-bit minhash signatures and
// multi-probe candidate generation.
func TestParallelMatchesSequentialOptions(t *testing.T) {
	t.Run("one-bit-minhash", func(t *testing.T) {
		opts := Options{Algorithm: LSHBayesLSH, Threshold: 0.5, OneBitMinhash: true}
		requireIdentical(t,
			searchWith(t, Jaccard, opts, 1, 0),
			searchWith(t, Jaccard, opts, 4, 0))
	})
	t.Run("multi-probe", func(t *testing.T) {
		opts := Options{Algorithm: LSHBayesLSH, Threshold: 0.7, MultiProbe: true}
		requireIdentical(t,
			searchWith(t, Cosine, opts, 1, 0),
			searchWith(t, Cosine, opts, 4, 0))
	})
}

// TestParallelBatchSizeInvariance verifies that the verification batch
// size never changes results, only scheduling granularity.
func TestParallelBatchSizeInvariance(t *testing.T) {
	opts := Options{Algorithm: LSHBayesLSH, Threshold: 0.7}
	want := searchWith(t, Cosine, opts, 4, 0)
	for _, batch := range []int{1, 7, 64} {
		got := searchWith(t, Cosine, opts, 4, batch)
		requireIdentical(t, want, got)
	}
}
