// Command datagen emits one of the built-in synthetic corpora (the
// scaled analogues of the paper's six datasets) in the library's
// plain-text vector format, optionally Tf-Idf weighted, normalized or
// binarized.
//
// Usage:
//
//	datagen -name RCV1-sim -tfidf -normalize > rcv1.vec
//	datagen -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bayeslsh"
)

func main() {
	name := flag.String("name", "", "synthetic dataset name (see -list)")
	tfidf := flag.Bool("tfidf", false, "apply Tf-Idf weighting")
	normalize := flag.Bool("normalize", false, "scale vectors to unit norm")
	binarize := flag.Bool("binarize", false, "set all weights to 1")
	list := flag.Bool("list", false, "list dataset names and exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(bayeslsh.SyntheticNames(), "\n"))
		return
	}
	if *name == "" {
		fmt.Fprintln(os.Stderr, "datagen: -name is required (try -list)")
		os.Exit(2)
	}
	ds, err := bayeslsh.Synthetic(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	if *tfidf {
		ds = ds.TfIdf()
	}
	if *binarize {
		ds = ds.Binarize()
	}
	if *normalize {
		ds = ds.Normalize()
	}
	if _, err := ds.WriteTo(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	s := ds.Stats()
	fmt.Fprintf(os.Stderr, "datagen: %s: %d vectors, dim %d, avg len %.1f, %d non-zeros\n",
		*name, s.Vectors, s.Dim, s.AvgLen, s.Nnz)
}
