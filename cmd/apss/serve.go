package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"bayeslsh"
	"bayeslsh/internal/cluster"
	"bayeslsh/internal/server"
)

// serveMain implements the "apss serve" subcommand over a LiveIndex,
// the ingest-while-serving half of the production story. The corpus
// comes from a dataset flag pair, a base-index snapshot ("apss build
// -out", which is wrapped via LiveFrom), or a live snapshot written
// by a previous serve session.
//
// With -shards N (N > 1) the corpus is partitioned over N in-process
// LiveIndex shards behind a scatter-gather router (internal/cluster,
// docs/SHARDING.md). Every front-end operation — queries, ingest,
// deletes, stats, compact, save — routes through the same surface, so
// answers stay bit-identical to a single-node index over the same
// corpus; -drain-save and the save command write a cluster manifest
// plus per-shard snapshots, which POST /v1/load restores.
//
// With -http <addr> the index is served as a concurrent HTTP/JSON
// daemon (see docs/SERVING.md): /v1/query, /v1/topk and /v1/batch
// stream NDJSON results under per-request deadlines, /v1/add and
// /v1/delete mutate, /v1/stats, /v1/compact, /v1/save and /v1/load
// administer, /metrics and /debug/pprof observe. SIGTERM or SIGINT
// drains gracefully: in-flight requests finish, new ones are refused,
// and -drain-save writes a final snapshot.
//
// Without -http, the interactive line-oriented loop runs instead:
// commands arrive on stdin, one per line; results go to stdout,
// diagnostics to stderr:
//
//	add <f>[:<w>] ...    ingest a vector; prints "added <id>"
//	del <id>             tombstone a vector; prints "deleted" or "absent"
//	query <f>[:<w>] ...  threshold query; prints "<id>\t<sim>" lines
//	topk <k> <f>[:<w>] ...  k best matches, same output shape
//	stats                segment shape and merge counters
//	compact              force a merge and wait for it
//	save <path>          write a live snapshot atomically
//	quit                 exit (EOF works too)
//
// Both front ends parse vectors through the same
// server.ParseVecTokens helper, so the accepted "<f>[:<w>]" grammar
// and its error texts are identical on either path.
func serveMain(args []string) {
	fs := flag.NewFlagSet("apss serve", flag.ExitOnError)
	datasetName := fs.String("dataset", "", "built-in synthetic dataset name")
	file := fs.String("file", "", "dataset file in the library's vector format")
	measureName := fs.String("measure", "cosine", "cosine | jaccard | binary-cosine")
	algName := fs.String("algorithm", "LSH+BayesLSH", "pipeline the index is built for")
	threshold := fs.Float64("t", 0.7, "similarity threshold the index serves at")
	index := fs.String("index", "", "load an index snapshot (base or live) instead of building")
	seed := fs.Uint64("seed", 42, "random seed")
	parallel := fs.Int("parallel", 0, "batch/merge workers (0 = NumCPU, 1 = sequential)")
	maxDelta := fs.Int("maxdelta", 0, "merge once the delta holds this many vectors (0 = default 4096, negative = off)")
	maxRatio := fs.Float64("maxratio", 0, "merge once (delta+tombstones)/base exceeds this (0 = default 0.25, negative = off)")
	shards := fs.Int("shards", 1, "partition the corpus over this many in-process shards behind a scatter-gather router")
	shardTimeout := fs.Duration("shard-timeout", 0, "per-shard deadline on every scattered call (0 = none; sharded mode only)")
	httpAddr := fs.String("http", "", "serve HTTP/JSON on this address (e.g. :8080 or 127.0.0.1:0) instead of the stdin loop")
	httpTimeout := fs.Duration("http-timeout", time.Minute, "default per-request deadline (X-Apss-Timeout header overrides; 0 = none)")
	maxInflight := fs.Int("max-inflight", 0, "refuse requests beyond this many in flight with 429 (0 = default 256, negative = off)")
	drainSave := fs.String("drain-save", "", "write a live snapshot to this path after a graceful drain")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "bound on the graceful drain; remaining connections are dropped after it")
	cacheSize := fs.Int("cache-size", 0, "front the index with a result cache of this many entries (0 = off; HTTP mode only)")
	fs.Parse(args)

	const prog = "apss serve"
	measure, ok := measuresByName[*measureName]
	if !ok {
		usageError(prog, "unknown measure %q", *measureName)
	}
	alg, auto := algorithmFlag(prog, *algName)
	validateCommon(prog, *threshold, *parallel)
	if *httpTimeout < 0 {
		usageError(prog, "-http-timeout %v must be >= 0 (0 = no default deadline)", *httpTimeout)
	}
	if *drainTimeout <= 0 {
		usageError(prog, "-drain-timeout %v must be > 0", *drainTimeout)
	}
	if *shards < 1 {
		usageError(prog, "-shards %d must be >= 1", *shards)
	}
	if *shardTimeout < 0 {
		usageError(prog, "-shard-timeout %v must be >= 0 (0 = none)", *shardTimeout)
	}
	if *cacheSize < 0 {
		usageError(prog, "-cache-size %d must be >= 0 (0 = off)", *cacheSize)
	}
	if *cacheSize > 0 && *httpAddr == "" {
		usageError(prog, "-cache-size needs -http (the stdin loop serves the index directly)")
	}
	lc := bayeslsh.LiveConfig{MaxDelta: *maxDelta, MaxRatio: *maxRatio}
	rcfg := cluster.Config{ShardTimeout: *shardTimeout, Workers: *parallel}
	if *index != "" {
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "dataset", "file", "measure", "algorithm", "t", "seed":
				usageError(prog, "-%s cannot combine with -index (the snapshot fixes it)", f.Name)
			case "shards":
				usageError(prog, "-shards cannot combine with -index (start sharded and restore a cluster manifest via POST /v1/load)")
			}
		})
	}

	// loadSingle is the single-node restore chain, shared by -index and
	// the single-node /v1/load loader: OpenLiveFile sniffs the version,
	// so a live snapshot restores the whole generation state, a base
	// snapshot becomes the base segment of a fresh live index, and a
	// disk-servable v3 snapshot is mmapped and served in place (pages
	// fault in on demand instead of heap-loading the corpus).
	loadSingle := func(path string) (*bayeslsh.LiveIndex, error) {
		li, err := bayeslsh.OpenLiveFile(path, lc)
		if err != nil {
			return nil, err
		}
		li.SetRuntime(*parallel, 0)
		return li, nil
	}
	loader := func(path string) (server.Serveable, error) { return loadSingle(path) }
	if *shards > 1 {
		loader = func(path string) (server.Serveable, error) { return cluster.LoadLocal(path, lc, rcfg) }
	}

	var (
		idx server.Serveable
		err error
	)
	start := time.Now()
	switch {
	case *index != "":
		idx, err = loadSingle(*index)
	case *shards > 1:
		ds := loadDataset(*datasetName, *file, measure, prog)
		idx, err = cluster.NewLocal(ds, measure, bayeslsh.EngineConfig{
			Seed:        *seed,
			Parallelism: *parallel,
		}, bayeslsh.Options{Algorithm: alg, AutoPipeline: auto, Threshold: *threshold}, lc, *shards, rcfg)
	default:
		var li *bayeslsh.LiveIndex
		ds := loadDataset(*datasetName, *file, measure, prog)
		li, err = bayeslsh.NewLiveIndex(ds, measure, bayeslsh.EngineConfig{
			Seed:        *seed,
			Parallelism: *parallel,
		}, bayeslsh.Options{Algorithm: alg, AutoPipeline: auto, Threshold: *threshold}, lc)
		if err == nil {
			li.SetRuntime(*parallel, 0)
			idx = li
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, prog+":", err)
		os.Exit(1)
	}
	defer idx.Close()
	st := idx.Stats()
	if *shards > 1 {
		fmt.Fprintf(os.Stderr, "apss serve: corpus sharded %d ways behind a scatter-gather router\n", *shards)
	}

	if *httpAddr != "" {
		timeout := *httpTimeout
		if timeout == 0 {
			timeout = -1 // flag 0 = no default deadline; Config 0 = its own default
		}
		serveHTTP(idx, *httpAddr, server.Config{
			Timeout:     timeout,
			MaxInFlight: *maxInflight,
			DrainSave:   *drainSave,
			CacheSize:   *cacheSize,
			Loader:      loader,
		}, *drainTimeout, st, start)
		return
	}

	fmt.Fprintf(os.Stderr, "apss serve: %v live index (%v, t=%.2f): %d vectors ready in %v; commands on stdin (add/del/query/topk/stats/compact/save/quit)\n",
		idx.Options().Algorithm, idx.Measure(), idx.Threshold(), st.Live, time.Since(start).Round(time.Millisecond))

	// The stdin loop runs under a signal context so an interrupt
	// cancels the in-flight query or batch (the ctxflow contract: once
	// a ctx exists it flows into every ...Context callee) and then
	// ends the loop cleanly, flushing output and closing the index.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// After the first signal cancels ctx, restore the default signal
	// disposition so a second interrupt (e.g. while blocked reading
	// stdin) terminates the process the old-fashioned way.
	context.AfterFunc(ctx, stop)
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	for in.Scan() {
		serveCommand(ctx, idx, strings.Fields(in.Text()), out)
		out.Flush()
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "apss serve: interrupted")
			break
		}
	}
}

// serveHTTP runs the HTTP/JSON front end until SIGTERM/SIGINT, then
// drains: the listener closes, in-flight requests (streamed responses
// included) run to completion within the drain timeout, the optional
// -drain-save snapshot is written, and the process exits 0 on a clean
// drain. The bound address is printed to stderr before serving — with
// ":0" style addresses that line is how a supervisor (or the
// integration test) learns the port.
func serveHTTP(li server.Serveable, addr string, cfg server.Config, drainTimeout time.Duration, st bayeslsh.LiveStats, start time.Time) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apss serve:", err)
		os.Exit(1)
	}
	srv := server.New(li, cfg)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, os.Interrupt)
	drained := make(chan error, 1)
	//apsslint:allow gohygiene one process-lifetime signal watcher; it ends when the process does, so pool leak accounting has nothing to count
	go func() {
		sig := <-sigs
		fmt.Fprintf(os.Stderr, "apss serve: %v: draining (in-flight requests finish, new ones are refused)\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		drained <- srv.Shutdown(ctx)
	}()

	fmt.Fprintf(os.Stderr, "apss serve: %v live index (%v, t=%.2f): %d vectors ready in %v\n",
		li.Options().Algorithm, li.Measure(), li.Threshold(), st.Live, time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(os.Stderr, "apss serve: http listening on %v\n", ln.Addr())

	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "apss serve:", err)
		os.Exit(1)
	}
	if err := <-drained; err != nil {
		fmt.Fprintln(os.Stderr, "apss serve: drain:", err)
		os.Exit(1)
	}
	if cfg.DrainSave != "" {
		fmt.Fprintln(os.Stderr, "apss serve: drained; snapshot saved to", cfg.DrainSave)
	} else {
		fmt.Fprintln(os.Stderr, "apss serve: drained")
	}
}

// serveCommand executes one serve-loop command; malformed input
// prints an err line and keeps the loop alive. li is any Serveable —
// a single LiveIndex or a sharded router — so the stdin loop drives
// both topologies identically. ctx bounds the query paths: an
// interrupt aborts them mid-flight instead of killing the process.
func serveCommand(ctx context.Context, li server.Serveable, fields []string, out *bufio.Writer) {
	if len(fields) == 0 {
		return
	}
	switch cmd := fields[0]; cmd {
	case "quit":
		out.Flush()
		os.Exit(0)
	case "add":
		q, err := parseVec(fields[1:])
		if err != nil {
			fmt.Fprintln(out, "err:", err)
			return
		}
		id, err := li.Add(q)
		if err != nil {
			fmt.Fprintln(out, "err:", err)
			return
		}
		fmt.Fprintln(out, "added", id)
	case "del":
		if len(fields) != 2 {
			fmt.Fprintln(out, "err: usage: del <id>")
			return
		}
		id, err := strconv.Atoi(fields[1])
		if err != nil {
			fmt.Fprintln(out, "err: bad id:", fields[1])
			return
		}
		if li.Delete(id) {
			fmt.Fprintln(out, "deleted", id)
		} else {
			fmt.Fprintln(out, "absent", id)
		}
	case "query":
		q, err := parseVec(fields[1:])
		if err != nil {
			fmt.Fprintln(out, "err:", err)
			return
		}
		ms, err := li.QueryContext(ctx, q, bayeslsh.QueryOptions{})
		if err != nil {
			fmt.Fprintln(out, "err:", err)
			return
		}
		printMatches(out, ms)
	case "topk":
		if len(fields) < 2 {
			fmt.Fprintln(out, "err: usage: topk <k> <f>[:<w>] ...")
			return
		}
		k, err := strconv.Atoi(fields[1])
		if err != nil || k <= 0 {
			fmt.Fprintln(out, "err: bad k:", fields[1])
			return
		}
		q, err := parseVec(fields[2:])
		if err != nil {
			fmt.Fprintln(out, "err:", err)
			return
		}
		ms, err := li.TopKContext(ctx, q, k)
		if err != nil {
			fmt.Fprintln(out, "err:", err)
			return
		}
		printMatches(out, ms)
	case "stats":
		st := li.Stats()
		fmt.Fprintf(out, "stats base=%d delta=%d live=%d dead=%d next=%d merges=%d last_merge=%v\n",
			st.Base, st.Delta, st.Live, st.Dead, st.NextID, st.Merges, st.LastMerge.Round(time.Millisecond))
	case "compact":
		start := time.Now()
		if err := li.Compact(); err != nil {
			fmt.Fprintln(out, "err:", err)
			return
		}
		fmt.Fprintf(out, "compacted in %v\n", time.Since(start).Round(time.Millisecond))
	case "save":
		if len(fields) != 2 {
			fmt.Fprintln(out, "err: usage: save <path>")
			return
		}
		if err := li.SaveFile(fields[1]); err != nil {
			fmt.Fprintln(out, "err:", err)
			return
		}
		fmt.Fprintln(out, "saved", fields[1])
	default:
		fmt.Fprintf(out, "err: unknown command %q (add/del/query/topk/stats/compact/save/quit)\n", cmd)
	}
}

// printMatches writes query results followed by a terminator line, so
// a driving process can frame variable-length responses.
func printMatches(out *bufio.Writer, ms []bayeslsh.Match) {
	for _, m := range ms {
		fmt.Fprintf(out, "%d\t%.6f\n", m.ID, m.Sim)
	}
	fmt.Fprintln(out, "ok", len(ms))
}

// parseVec parses "<feature>[:<weight>]" tokens through the shared
// wire-grammar helper, so the stdin loop and the HTTP front end
// accept exactly the same vectors with exactly the same error texts.
func parseVec(tokens []string) (bayeslsh.Vec, error) {
	return server.ParseVecTokens(tokens)
}
