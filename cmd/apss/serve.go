package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"bayeslsh"
)

// serveMain implements the "apss serve" subcommand: an interactive
// (line-oriented) serving loop over a LiveIndex, the ingest-while-
// serving half of the production story. The corpus comes from a
// dataset flag pair, a base-index snapshot ("apss build -out", which
// is wrapped via LiveFrom), or a live snapshot written by a previous
// serve session's save command. Commands arrive on stdin, one per
// line; results go to stdout, diagnostics to stderr:
//
//	add <f>[:<w>] ...    ingest a vector; prints "added <id>"
//	del <id>             tombstone a vector; prints "deleted" or "absent"
//	query <f>[:<w>] ...  threshold query; prints "<id>\t<sim>" lines
//	topk <k> <f>[:<w>] ...  k best matches, same output shape
//	stats                segment shape and merge counters
//	compact              force a merge and wait for it
//	save <path>          write a live snapshot atomically
//	quit                 exit (EOF works too)
func serveMain(args []string) {
	fs := flag.NewFlagSet("apss serve", flag.ExitOnError)
	datasetName := fs.String("dataset", "", "built-in synthetic dataset name")
	file := fs.String("file", "", "dataset file in the library's vector format")
	measureName := fs.String("measure", "cosine", "cosine | jaccard | binary-cosine")
	algName := fs.String("algorithm", "LSH+BayesLSH", "pipeline the index is built for")
	threshold := fs.Float64("t", 0.7, "similarity threshold the index serves at")
	index := fs.String("index", "", "load an index snapshot (base or live) instead of building")
	seed := fs.Uint64("seed", 42, "random seed")
	parallel := fs.Int("parallel", 0, "batch/merge workers (0 = NumCPU, 1 = sequential)")
	maxDelta := fs.Int("maxdelta", 0, "merge once the delta holds this many vectors (0 = default 4096, negative = off)")
	maxRatio := fs.Float64("maxratio", 0, "merge once (delta+tombstones)/base exceeds this (0 = default 0.25, negative = off)")
	fs.Parse(args)

	const prog = "apss serve"
	measure, ok := measuresByName[*measureName]
	if !ok {
		usageError(prog, "unknown measure %q", *measureName)
	}
	alg, ok := algorithmsByName[*algName]
	if !ok {
		usageError(prog, "unknown algorithm %q", *algName)
	}
	validateCommon(prog, *threshold, *parallel)
	lc := bayeslsh.LiveConfig{MaxDelta: *maxDelta, MaxRatio: *maxRatio}
	if *index != "" {
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "dataset", "file", "measure", "algorithm", "t", "seed":
				usageError(prog, "-%s cannot combine with -index (the snapshot fixes it)", f.Name)
			}
		})
	}

	var (
		li  *bayeslsh.LiveIndex
		err error
	)
	start := time.Now()
	switch {
	case *index != "":
		// A live snapshot restores the whole generation state; a base
		// snapshot becomes the base segment of a fresh live index. The
		// fallback runs only on a version mismatch — any other failure
		// (corruption, truncation) keeps its original diagnosis.
		li, err = bayeslsh.LoadLiveFile(*index, lc)
		if errors.Is(err, bayeslsh.ErrSnapshotVersion) {
			var ix *bayeslsh.Index
			if ix, err = bayeslsh.LoadFile(*index); err == nil {
				li, err = bayeslsh.LiveFrom(ix, lc)
			}
		}
	default:
		ds := loadDataset(*datasetName, *file, measure, prog)
		li, err = bayeslsh.NewLiveIndex(ds, measure, bayeslsh.EngineConfig{
			Seed:        *seed,
			Parallelism: *parallel,
		}, bayeslsh.Options{Algorithm: alg, Threshold: *threshold}, lc)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, prog+":", err)
		os.Exit(1)
	}
	defer li.Close()
	li.SetRuntime(*parallel, 0)
	st := li.Stats()
	fmt.Fprintf(os.Stderr, "apss serve: %v live index (%v, t=%.2f): %d vectors ready in %v; commands on stdin (add/del/query/topk/stats/compact/save/quit)\n",
		li.Options().Algorithm, li.Measure(), li.Threshold(), st.Live, time.Since(start).Round(time.Millisecond))

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	for in.Scan() {
		serveCommand(li, strings.Fields(in.Text()), out)
		out.Flush()
	}
}

// serveCommand executes one serve-loop command; malformed input
// prints an err line and keeps the loop alive.
func serveCommand(li *bayeslsh.LiveIndex, fields []string, out *bufio.Writer) {
	if len(fields) == 0 {
		return
	}
	switch cmd := fields[0]; cmd {
	case "quit":
		out.Flush()
		os.Exit(0)
	case "add":
		q, err := parseVec(fields[1:])
		if err != nil {
			fmt.Fprintln(out, "err:", err)
			return
		}
		id, err := li.Add(q)
		if err != nil {
			fmt.Fprintln(out, "err:", err)
			return
		}
		fmt.Fprintln(out, "added", id)
	case "del":
		if len(fields) != 2 {
			fmt.Fprintln(out, "err: usage: del <id>")
			return
		}
		id, err := strconv.Atoi(fields[1])
		if err != nil {
			fmt.Fprintln(out, "err: bad id:", fields[1])
			return
		}
		if li.Delete(id) {
			fmt.Fprintln(out, "deleted", id)
		} else {
			fmt.Fprintln(out, "absent", id)
		}
	case "query":
		q, err := parseVec(fields[1:])
		if err != nil {
			fmt.Fprintln(out, "err:", err)
			return
		}
		ms, err := li.Query(q, bayeslsh.QueryOptions{})
		if err != nil {
			fmt.Fprintln(out, "err:", err)
			return
		}
		printMatches(out, ms)
	case "topk":
		if len(fields) < 2 {
			fmt.Fprintln(out, "err: usage: topk <k> <f>[:<w>] ...")
			return
		}
		k, err := strconv.Atoi(fields[1])
		if err != nil || k <= 0 {
			fmt.Fprintln(out, "err: bad k:", fields[1])
			return
		}
		q, err := parseVec(fields[2:])
		if err != nil {
			fmt.Fprintln(out, "err:", err)
			return
		}
		ms, err := li.TopK(q, k)
		if err != nil {
			fmt.Fprintln(out, "err:", err)
			return
		}
		printMatches(out, ms)
	case "stats":
		st := li.Stats()
		fmt.Fprintf(out, "stats base=%d delta=%d live=%d dead=%d next=%d merges=%d last_merge=%v\n",
			st.Base, st.Delta, st.Live, st.Dead, st.NextID, st.Merges, st.LastMerge.Round(time.Millisecond))
	case "compact":
		start := time.Now()
		if err := li.Compact(); err != nil {
			fmt.Fprintln(out, "err:", err)
			return
		}
		fmt.Fprintf(out, "compacted in %v\n", time.Since(start).Round(time.Millisecond))
	case "save":
		if len(fields) != 2 {
			fmt.Fprintln(out, "err: usage: save <path>")
			return
		}
		if err := li.SaveFile(fields[1]); err != nil {
			fmt.Fprintln(out, "err:", err)
			return
		}
		fmt.Fprintln(out, "saved", fields[1])
	default:
		fmt.Fprintf(out, "err: unknown command %q (add/del/query/topk/stats/compact/save/quit)\n", cmd)
	}
}

// printMatches writes query results followed by a terminator line, so
// a driving process can frame variable-length responses.
func printMatches(out *bufio.Writer, ms []bayeslsh.Match) {
	for _, m := range ms {
		fmt.Fprintf(out, "%d\t%.6f\n", m.ID, m.Sim)
	}
	fmt.Fprintln(out, "ok", len(ms))
}

// parseVec parses "<feature>[:<weight>]" tokens (weight 1 when
// omitted) into a query vector.
func parseVec(tokens []string) (bayeslsh.Vec, error) {
	if len(tokens) == 0 {
		return bayeslsh.Vec{}, fmt.Errorf("empty vector: need <f>[:<w>] tokens")
	}
	m := make(map[uint32]float64, len(tokens))
	for _, tok := range tokens {
		fs, ws, hasW := strings.Cut(tok, ":")
		f, err := strconv.ParseUint(fs, 10, 32)
		if err != nil {
			return bayeslsh.Vec{}, fmt.Errorf("bad feature %q", tok)
		}
		w := 1.0
		if hasW {
			if w, err = strconv.ParseFloat(ws, 64); err != nil {
				return bayeslsh.Vec{}, fmt.Errorf("bad weight %q", tok)
			}
		}
		m[uint32(f)] += w
	}
	return bayeslsh.NewVec(m), nil
}
