package main

import (
	"flag"
	"fmt"

	"bayeslsh"
)

// infoMain implements the "apss info" subcommand: a forensic view of
// a snapshot file — version, section table, corpus shape — produced
// by bayeslsh.InspectFile without building a servable index, so it
// works on files whose decoded structures would be too large (or too
// suspect) to load. Integrity is still verified: the whole-file
// checksum for v1/v2 streams, the header and every section checksum
// for v3 containers. Any failure — missing file, foreign bytes,
// flipped bits, unknown version — exits with status 2 and a one-line
// diagnosis, the same contract as flag-validation errors.
func infoMain(args []string) {
	fs := flag.NewFlagSet("apss info", flag.ExitOnError)
	fs.Parse(args)

	const prog = "apss info"
	if fs.NArg() != 1 {
		usageError(prog, "need exactly one snapshot path (got %d args)", fs.NArg())
	}
	path := fs.Arg(0)
	info, err := bayeslsh.InspectFile(path)
	if err != nil {
		usageError(prog, "%s: %v", path, err)
	}

	fmt.Printf("%s: format v%d, %d bytes\n", path, info.Version, info.Size)
	fmt.Printf("  %v index, %v measure, t=%.2f\n", info.Algorithm, info.Measure, info.Threshold)
	fmt.Printf("  corpus: %d vectors, dim %d\n", info.Vectors, info.Dim)
	if st := info.Stats; !st.Zero() {
		fmt.Printf("  stats: avg len %.1f, median %d, p90 %d, max %d, cv %.2f\n",
			st.AvgLen, st.MedianLen, st.P90Len, st.MaxLen, st.LenCV)
		fmt.Printf("         density %.4g, top-df %.2f, heavy %.2f\n",
			st.Density, st.TopDFFrac, st.HeavyFrac)
		plan := bayeslsh.ChoosePlan(st, bayeslsh.PlanQuery{
			Measure: info.Measure, Threshold: info.Threshold, Serving: true,
		})
		fmt.Printf("  planner would pick: %v (apss plan -why explains)\n", plan.Pipeline)
	}
	fmt.Printf("  sections (%d):\n", len(info.Sections))
	fmt.Printf("    %-4s %-15s %10s %12s %s\n", "tag", "name", "offset", "length", "crc32c")
	for _, s := range info.Sections {
		crc := "-" // v1/v2 carry one whole-file checksum, not per-section
		if info.Version == bayeslsh.DiskSnapshotVersion {
			crc = fmt.Sprintf("%08x", s.CRC)
		}
		fmt.Printf("    %-4d %-15s %10d %12d %s\n", s.Tag, s.Name, s.Off, s.Len, crc)
	}
}
