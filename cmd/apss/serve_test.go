package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"bayeslsh"
	"bayeslsh/internal/server"
)

// Integration test of the compiled binary: build apss, run
// "serve -http 127.0.0.1:0", learn the port from the "http listening
// on" stderr line, drive the HTTP API, and check every served result
// bit-identical against an in-process index built from the same
// corpus file with the same seed. SIGTERM must drain cleanly (exit
// 0) and leave a -drain-save snapshot that loads and agrees with
// what was served.

// buildApss compiles the apss binary once and returns its path.
func buildApss(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "apss")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// writeCorpus generates a deterministic clustered corpus (unit-
// normalized, since -file datasets are served as stored), writes it
// in the library's vector format, and returns the path plus the wire
// rendering of every vector.
func writeCorpus(t *testing.T, dir string, n int) (string, []string) {
	t.Helper()
	const dim = 300
	rng := rand.New(rand.NewSource(11))
	ds := bayeslsh.NewDataset(dim)
	wires := make([]string, 0, n)
	var center map[uint32]float64
	for i := 0; i < n; i++ {
		if i%3 == 0 || center == nil {
			center = make(map[uint32]float64, 16)
			for len(center) < 16 {
				center[uint32(rng.Intn(dim))] = 0.5 + rng.Float64()
			}
		}
		v := make(map[uint32]float64, len(center)+1)
		for f, w := range center {
			v[f] = w
		}
		if i%3 != 0 {
			v[uint32(rng.Intn(dim))] = 0.5 + rng.Float64()
		}
		var ss float64
		for _, w := range v {
			ss += w * w
		}
		norm := math.Sqrt(ss)
		for f, w := range v {
			v[f] = w / norm
		}
		ds.Add(v)
		wires = append(wires, wireVec(v))
	}
	path := filepath.Join(dir, "corpus.vec")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, wires
}

// wireVec renders a feature map in the wire grammar with exact
// shortest-round-trip weights, so the HTTP body parses back to the
// identical Vec.
func wireVec(v map[uint32]float64) string {
	feats := make([]uint32, 0, len(v))
	for f := range v {
		feats = append(feats, f)
	}
	sort.Slice(feats, func(i, j int) bool { return feats[i] < feats[j] })
	var b strings.Builder
	for i, f := range feats {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%s", f, strconv.FormatFloat(v[f], 'g', -1, 64))
	}
	return b.String()
}

// serveProc is a running "apss serve -http" child process.
type serveProc struct {
	cmd    *exec.Cmd
	addr   string
	stderr *strings.Builder
}

// startServe launches the binary and waits for the listening line.
func startServe(t *testing.T, bin string, args ...string) *serveProc {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"serve"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &serveProc{cmd: cmd, stderr: &strings.Builder{}}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(p.stderr, line)
			if _, a, ok := strings.Cut(line, "http listening on "); ok {
				select {
				case addrCh <- a:
				default:
				}
			}
		}
		close(addrCh)
	}()
	select {
	case a, ok := <-addrCh:
		if !ok {
			cmd.Wait()
			t.Fatalf("serve exited before listening:\n%s", p.stderr)
		}
		p.addr = a
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("timed out waiting for listening line:\n%s", p.stderr)
	}
	return p
}

func (p *serveProc) url(path string) string { return "http://" + p.addr + path }

// httpMatches posts a query/topk body and decodes the NDJSON stream,
// requiring the done marker.
func httpMatches(t *testing.T, url, body string) []bayeslsh.Match {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, raw)
	}
	var (
		ms   []bayeslsh.Match
		done bool
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var row struct {
			ID      *int    `json:"id"`
			Sim     float64 `json:"sim"`
			Done    bool    `json:"done"`
			Matches int     `json:"matches"`
			Error   string  `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if row.Error != "" {
			t.Fatalf("in-band stream error: %s", row.Error)
		}
		if row.Done {
			done = true
			if row.Matches != len(ms) {
				t.Fatalf("done marker counts %d matches, stream had %d", row.Matches, len(ms))
			}
			continue
		}
		if row.ID == nil {
			t.Fatalf("match row without id: %q", sc.Text())
		}
		ms = append(ms, bayeslsh.Match{ID: *row.ID, Sim: row.Sim})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("stream ended without done marker")
	}
	return ms
}

// wantMatches asserts strict equality of served and direct results.
func wantMatches(t *testing.T, what string, got, want []bayeslsh.Match) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d matches served, want %d\n got %v\nwant %v", what, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: match %d = %+v, want %+v", what, i, got[i], want[i])
		}
	}
}

func TestServeHTTPIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the apss binary")
	}
	bin := buildApss(t)
	dir := t.TempDir()
	corpusPath, wires := writeCorpus(t, dir, 60)
	snapPath := filepath.Join(dir, "drain.snap")

	// The expected side: the same corpus file, seed and worker count
	// the binary gets, loaded through the same reader.
	f, err := os.Open(corpusPath)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := bayeslsh.ReadDataset(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	li, err := bayeslsh.NewLiveIndex(ds, bayeslsh.Cosine,
		bayeslsh.EngineConfig{Seed: 42, Parallelism: 2},
		bayeslsh.Options{Algorithm: bayeslsh.LSHBayesLSH, Threshold: 0.7},
		bayeslsh.LiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer li.Close()

	p := startServe(t, bin,
		"-file", corpusPath, "-t", "0.7", "-parallel", "2",
		"-http", "127.0.0.1:0", "-drain-save", snapPath)
	defer p.cmd.Process.Kill() // no-op after a clean Wait

	// Served threshold queries and top-k, bit-identical to direct.
	for _, i := range []int{0, 1, 13, 59} {
		q, err := server.ParseVec(wires[i])
		if err != nil {
			t.Fatal(err)
		}
		want, err := li.Query(q, bayeslsh.QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		body, _ := json.Marshal(map[string]string{"vec": wires[i]})
		wantMatches(t, fmt.Sprintf("query %d", i),
			httpMatches(t, p.url("/v1/query"), string(body)), want)

		wantK, err := li.TopK(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		kbody, _ := json.Marshal(map[string]any{"vec": wires[i], "k": 3})
		wantMatches(t, fmt.Sprintf("topk %d", i),
			httpMatches(t, p.url("/v1/topk"), string(kbody)), wantK)
	}

	// Ingest over HTTP mirrors Add on the expected side: same id, and
	// queries agree afterwards.
	newVec := wires[0] // a duplicate of vector 0: guaranteed matches
	body, _ := json.Marshal(map[string]string{"vec": newVec})
	resp, err := http.Post(p.url("/v1/add"), "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	var added struct {
		ID int `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&added); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	q0, err := server.ParseVec(newVec)
	if err != nil {
		t.Fatal(err)
	}
	wantID, err := li.Add(q0)
	if err != nil {
		t.Fatal(err)
	}
	if added.ID != wantID {
		t.Fatalf("served add id %d, want %d", added.ID, wantID)
	}
	want, err := li.Query(q0, bayeslsh.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	served := httpMatches(t, p.url("/v1/query"), string(body))
	wantMatches(t, "query after add", served, want)

	// Stats reflect the ingest.
	sresp, err := http.Get(p.url("/v1/stats"))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Live int `json:"live"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if st.Live != li.Len() {
		t.Fatalf("served live = %d, want %d", st.Live, li.Len())
	}

	// SIGTERM: graceful drain, exit 0, snapshot written.
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := p.cmd.Wait(); err != nil {
		t.Fatalf("serve exited %v after SIGTERM:\n%s", err, p.stderr)
	}
	if !strings.Contains(p.stderr.String(), "drained") {
		t.Fatalf("no drain message in stderr:\n%s", p.stderr)
	}

	// The drain snapshot resumes to the served state: same length,
	// and the post-add query answers match what was served.
	loaded, err := bayeslsh.LoadLiveFile(snapPath, bayeslsh.LiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if loaded.Len() != li.Len() {
		t.Fatalf("snapshot holds %d vectors, want %d", loaded.Len(), li.Len())
	}
	fromSnap, err := loaded.Query(q0, bayeslsh.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantMatches(t, "drain snapshot query", fromSnap, served)
}

// TestServeShardedIntegration drives the compiled binary in -shards
// mode: the daemon partitions the corpus behind the scatter-gather
// router, serves answers bit-identical to a single-node in-process
// index, ingests over HTTP with the single-node id assignment, drains
// to a cluster manifest on SIGTERM — and a second daemon restores
// that manifest through POST /v1/load, serving the grown corpus.
func TestServeShardedIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the apss binary")
	}
	bin := buildApss(t)
	dir := t.TempDir()
	corpusPath, wires := writeCorpus(t, dir, 60)
	manifest := filepath.Join(dir, "cluster.snap")

	f, err := os.Open(corpusPath)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := bayeslsh.ReadDataset(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	li, err := bayeslsh.NewLiveIndex(ds, bayeslsh.Cosine,
		bayeslsh.EngineConfig{Seed: 42, Parallelism: 2},
		bayeslsh.Options{Algorithm: bayeslsh.LSHBayesLSH, Threshold: 0.7},
		bayeslsh.LiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer li.Close()

	p := startServe(t, bin,
		"-file", corpusPath, "-t", "0.7", "-parallel", "2", "-shards", "3",
		"-http", "127.0.0.1:0", "-drain-save", manifest)
	defer p.cmd.Process.Kill()
	if !strings.Contains(p.stderr.String(), "sharded 3 ways") {
		t.Fatalf("no sharding banner in stderr:\n%s", p.stderr)
	}

	for _, i := range []int{0, 7, 31, 59} {
		q, err := server.ParseVec(wires[i])
		if err != nil {
			t.Fatal(err)
		}
		want, err := li.Query(q, bayeslsh.QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		body, _ := json.Marshal(map[string]string{"vec": wires[i]})
		wantMatches(t, fmt.Sprintf("sharded query %d", i),
			httpMatches(t, p.url("/v1/query"), string(body)), want)

		wantK, err := li.TopK(q, 4)
		if err != nil {
			t.Fatal(err)
		}
		kbody, _ := json.Marshal(map[string]any{"vec": wires[i], "k": 4})
		wantMatches(t, fmt.Sprintf("sharded topk %d", i),
			httpMatches(t, p.url("/v1/topk"), string(kbody)), wantK)
	}

	// Sharded ingest assigns the same global id the single-node index
	// would, and queries agree afterwards.
	body, _ := json.Marshal(map[string]string{"vec": wires[1]})
	resp, err := http.Post(p.url("/v1/add"), "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	var added struct {
		ID int `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&added); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	q1, err := server.ParseVec(wires[1])
	if err != nil {
		t.Fatal(err)
	}
	wantID, err := li.Add(q1)
	if err != nil {
		t.Fatal(err)
	}
	if added.ID != wantID {
		t.Fatalf("sharded add id %d, want %d", added.ID, wantID)
	}
	want, err := li.Query(q1, bayeslsh.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	served := httpMatches(t, p.url("/v1/query"), string(body))
	wantMatches(t, "sharded query after add", served, want)

	// SIGTERM drains to a cluster manifest plus per-shard snapshots.
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := p.cmd.Wait(); err != nil {
		t.Fatalf("sharded serve exited %v after SIGTERM:\n%s", err, p.stderr)
	}
	if _, err := os.Stat(manifest); err != nil {
		t.Fatalf("no cluster manifest after drain: %v", err)
	}

	// A fresh sharded daemon hot-loads the manifest via POST /v1/load
	// and serves the grown (61-vector) corpus identically.
	p2 := startServe(t, bin,
		"-file", corpusPath, "-t", "0.7", "-parallel", "2", "-shards", "3",
		"-http", "127.0.0.1:0")
	defer p2.cmd.Process.Kill()
	lbody, _ := json.Marshal(map[string]string{"path": manifest})
	lresp, err := http.Post(p2.url("/v1/load"), "application/json", strings.NewReader(string(lbody)))
	if err != nil {
		t.Fatal(err)
	}
	var loaded struct {
		Live int `json:"live"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&loaded); err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	if lresp.StatusCode != http.StatusOK || loaded.Live != li.Len() {
		t.Fatalf("load status %d live %d, want 200 live %d:\n%s", lresp.StatusCode, loaded.Live, li.Len(), p2.stderr)
	}
	wantMatches(t, "restored sharded query", httpMatches(t, p2.url("/v1/query"), string(body)), served)
	p2.cmd.Process.Signal(syscall.SIGTERM)
	p2.cmd.Wait()
}
